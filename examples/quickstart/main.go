// Quickstart: build a small partitioned system, check its schedulability,
// and watch TimeDice randomize the schedule while every partition still
// receives its full budget.
package main

import (
	"fmt"
	"os"

	"timedice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// Three partitions; each runs one task that wants its whole budget.
	spec := timedice.ThreePartition()

	// Offline guarantee first: the system must be schedulable before any
	// randomization (TimeDice preserves, never creates, schedulability).
	if !timedice.SystemSchedulable(spec) {
		return fmt.Errorf("system %q is not schedulable", spec.Name)
	}
	rows, err := timedice.Analyze(spec)
	if err != nil {
		return err
	}
	fmt.Println("Analytic worst-case response times (ms):")
	for _, r := range rows {
		fmt.Printf("  %-4s deadline=%6.1f  NoRandom=%6.1f  TimeDice=%6.1f\n",
			r.Task, r.Deadline.Milliseconds(), r.NoRandom.Milliseconds(), r.TimeDice.Milliseconds())
	}

	names := make([]string, len(spec.Partitions))
	for i, p := range spec.Partitions {
		names[i] = p.Name
	}

	for _, kind := range []timedice.PolicyKind{timedice.NoRandom, timedice.TimeDiceW} {
		sys, built, err := timedice.NewBuiltSystem(spec, kind, 42)
		if err != nil {
			return err
		}
		misses, completions := 0, 0
		for _, p := range spec.Partitions {
			deadline := p.Tasks[0].Period // implicit deadlines
			built.Sched[p.Name].OnComplete = func(c timedice.TaskCompletion) {
				completions++
				if c.Response > deadline {
					misses++
				}
			}
		}
		rec := timedice.NewRecorder(0, timedice.Time(timedice.MS(60)))
		sys.TraceFn = rec.Hook()
		sys.Run(timedice.Time(2 * timedice.Second))

		fmt.Printf("\n%s schedule (first 60 ms):\n", kind)
		fmt.Print(timedice.RenderGantt(rec, names, timedice.Millisecond))
		fmt.Printf("  2 simulated seconds: %d jobs completed, %d deadline misses\n", completions, misses)
		for i, p := range spec.Partitions {
			fmt.Printf("  %-4s CPU share %5.1f%% (budget ratio %4.1f%%, tasks demand half of it)\n",
				p.Name, 100*sys.PartitionTime(i).Seconds()/2, 100*p.Budget.Seconds()/p.Period.Seconds())
		}
	}
	return nil
}
