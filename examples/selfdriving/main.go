// Selfdriving reproduces the paper's motivating scenario (§III-e): on the
// 1/10th-scale self-driving car platform of Fig. 5, the path-planning
// partition leaks the vehicle's precise location to the data-logging
// partition over a covert timing channel — then TimeDice is enabled and the
// channel collapses, while the control applications keep meeting their
// deadlines (Table III).
package main

import (
	"fmt"
	"os"

	"timedice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	car := timedice.Car()
	fmt.Println("Fig. 5 car platform:")
	for _, p := range car.Partitions {
		fmt.Printf("  %-9s T=%v B=%v\n", p.Name, p.Period, p.Budget)
	}

	// The ill-intentioned operator's channel: planner (Π3) → logger (Π4),
	// decoded with the paper's learning-based receiver (SVM on execution
	// vectors).
	for _, kind := range []timedice.PolicyKind{timedice.NoRandom, timedice.TimeDiceW} {
		res, err := timedice.RunChannel(timedice.ChannelConfig{
			Spec:           car,
			Sender:         2, // planner
			Receiver:       3, // logger
			Window:         timedice.MS(150),
			SenderPeriod:   timedice.MS(50), // "the planning task uses the period of 50 ms"
			ProfileWindows: 600,
			TestWindows:    1000,
			Policy:         kind,
			NoiseFraction:  0.05,
			Seed:           1,
		}, timedice.SVM{})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s: location leak decodes at %.2f%% (SVM), %.2f%% (response time), capacity %.3f b/window\n",
			kind, 100*res.VecAccuracy["svm-rbf"], 100*res.RTAccuracy, res.Capacity)
	}

	// End to end: literally exfiltrate the vehicle's coordinates over the
	// channel, with a 5× repetition code.
	secret := []byte("N37.4419 W122.143")
	for _, kind := range []timedice.PolicyKind{timedice.NoRandom, timedice.TimeDiceW} {
		res, err := timedice.SendCovertMessage(timedice.CovertMessageConfig{
			Channel: timedice.ChannelConfig{
				Spec: car, Sender: 2, Receiver: 3,
				Window: timedice.MS(150), SenderPeriod: timedice.MS(50),
				ProfileWindows: 400, NoiseFraction: 0.05, Policy: kind, Seed: 9,
			},
			Payload:    secret,
			Repetition: 5,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s: sent %q, operator receives %q (%.0f%% bytes intact, %.2f bit/s goodput)\n",
			kind, secret, res.Recovered, 100*res.ByteAccuracy, res.Goodput)
	}

	// Responsiveness: the applications still meet their deadlines with
	// TimeDice enabled.
	fmt.Println("\nApplication responsiveness under TimeDice (2 simulated minutes):")
	sys, built, err := timedice.NewBuiltSystem(car, timedice.TimeDiceW, 2)
	if err != nil {
		return err
	}
	type appStat struct {
		deadline timedice.Duration
		max      timedice.Duration
		misses   int
	}
	statsByApp := map[string]*appStat{}
	for _, p := range car.Partitions {
		for _, t := range p.Tasks {
			statsByApp[t.Name] = &appStat{deadline: t.Deadline}
		}
	}
	for name := range built.Sched {
		sched := built.Sched[name]
		sched.OnComplete = func(c timedice.TaskCompletion) {
			st := statsByApp[c.Job.Task.Name]
			if c.Response > st.max {
				st.max = c.Response
			}
			if st.deadline > 0 && c.Response > st.deadline {
				st.misses++
			}
		}
	}
	sys.Run(timedice.Time(120 * timedice.Second))
	for _, p := range car.Partitions {
		for _, t := range p.Tasks {
			st := statsByApp[t.Name]
			fmt.Printf("  %-9s max response %8v  deadline %8v  misses %d\n",
				t.Name, st.max, st.deadline, st.misses)
		}
	}
	return nil
}
