// Mitigation compares all four global scheduling policies side by side on
// the Table I system: covert-channel accuracy and capacity (what the
// adversary gets) against task responsiveness (what the randomization
// costs) — the trade-off at the heart of the paper.
package main

import (
	"fmt"
	"os"

	"timedice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	spec := timedice.TableIBase()
	kinds := []timedice.PolicyKind{timedice.NoRandom, timedice.TimeDiceU, timedice.TimeDiceW, timedice.TDMA}

	fmt.Println("Covert channel (sender Π2 → receiver Π4, Table I base load):")
	fmt.Printf("%-10s %10s %10s %10s\n", "policy", "RT acc", "SVM acc", "capacity")
	for _, kind := range kinds {
		res, err := timedice.RunChannel(timedice.ChannelConfig{
			Spec: spec, Sender: 1, Receiver: 3,
			ProfileWindows: 400, TestWindows: 1000,
			Policy: kind, Seed: 1,
		}, timedice.SVM{})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %9.2f%% %9.2f%% %10.3f\n",
			kind, 100*res.RTAccuracy, 100*res.VecAccuracy["svm-rbf"], res.Capacity)
	}

	// The cost side: measure the highest-priority partition's task response
	// times under each policy (they are the most affected by randomization).
	fmt.Println("\nResponsiveness cost (task t1,1 of Π1, 30 simulated seconds):")
	fmt.Printf("%-10s %10s %10s %10s\n", "policy", "mean (ms)", "max (ms)", "misses")
	for _, kind := range kinds {
		sys, built, err := timedice.NewBuiltSystem(spec, kind, 7)
		if err != nil {
			return err
		}
		var (
			n      int
			sum    float64
			maxMS  float64
			misses int
		)
		deadline := spec.Partitions[0].Tasks[0].Period
		built.Sched["P1"].OnComplete = func(c timedice.TaskCompletion) {
			if c.Job.Task.Name != "t1,1" {
				return
			}
			ms := c.Response.Milliseconds()
			n++
			sum += ms
			if ms > maxMS {
				maxMS = ms
			}
			if c.Response > deadline {
				misses++
			}
		}
		sys.Run(timedice.Time(30 * timedice.Second))
		fmt.Printf("%-10s %10.2f %10.2f %10d\n", kind, sum/float64(n), maxMS, misses)
	}

	fmt.Println("\nAnalytic worst cases confirm the cost is bounded (Table II):")
	rows, err := timedice.Analyze(spec)
	if err != nil {
		return err
	}
	for _, r := range rows[:5] {
		fmt.Printf("  %-5s NoRandom %6.1f ms → TimeDice %6.1f ms (deadline %5.0f ms)\n",
			r.Task, r.NoRandom.Milliseconds(), r.TimeDice.Milliseconds(), r.Deadline.Milliseconds())
	}
	return nil
}
