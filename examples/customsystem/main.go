// Customsystem shows the full workflow for a user-defined system: declare
// partitions and tasks (inline or from JSON), verify schedulability under
// both schedulers offline, then simulate with TimeDice and confirm the
// guarantees empirically.
package main

import (
	"fmt"
	"os"
	"strings"

	"timedice"
)

// A system an integrator might write: flight management (high priority),
// communications, and a vendor-supplied maintenance partition that is not
// trusted (the covert-channel threat of the paper's §III).
const systemJSON = `{
  "name": "avionics-demo",
  "partitions": [
    {"name": "flight",  "periodMillis": 25,  "budgetMillis": 5,
     "tasks": [
       {"name": "guidance", "periodMillis": 50,  "wcetMillis": 3},
       {"name": "autopilot", "periodMillis": 100, "wcetMillis": 4}
     ]},
    {"name": "comms",   "periodMillis": 40,  "budgetMillis": 6, "server": "deferrable",
     "tasks": [{"name": "radio", "periodMillis": 80, "wcetMillis": 5}]},
    {"name": "vendor",  "periodMillis": 100, "budgetMillis": 12,
     "tasks": [{"name": "maintenance", "periodMillis": 200, "wcetMillis": 10}]}
  ]
}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	spec, err := timedice.ReadSystem(strings.NewReader(systemJSON))
	if err != nil {
		return err
	}
	fmt.Printf("system %q: %d partitions, %.0f%% partition utilization\n",
		spec.Name, len(spec.Partitions), 100*spec.Utilization())

	// 1. Offline: is the partition set schedulable, and do the tasks meet
	// their deadlines under both schedulers?
	if !timedice.SystemSchedulable(spec) {
		return fmt.Errorf("partitions are not schedulable; TimeDice requires a schedulable baseline")
	}
	rows, err := timedice.Analyze(spec)
	if err != nil {
		return err
	}
	fmt.Println("\nWorst-case response times (ms):")
	fmt.Printf("%-14s %9s %9s %9s %7s\n", "task", "deadline", "NoRandom", "TimeDice", "ok")
	for _, r := range rows {
		fmt.Printf("%-14s %9.1f %9.1f %9.1f %7v\n", r.Task,
			r.Deadline.Milliseconds(), r.NoRandom.Milliseconds(), r.TimeDice.Milliseconds(), r.Schedulable())
	}

	// 2. Online: run 30 simulated seconds under TimeDice and verify no task
	// ever misses a deadline.
	sys, built, err := timedice.NewBuiltSystem(spec, timedice.TimeDiceW, 99)
	if err != nil {
		return err
	}
	misses := map[string]int{}
	for _, p := range spec.Partitions {
		deadlines := map[string]timedice.Duration{}
		for _, t := range p.Tasks {
			d := t.Deadline
			if d == 0 {
				d = t.Period
			}
			deadlines[t.Name] = d
		}
		built.Sched[p.Name].OnComplete = func(c timedice.TaskCompletion) {
			if c.Response > deadlines[c.Job.Task.Name] {
				misses[c.Job.Task.Name]++
			}
		}
	}
	sys.Run(timedice.Time(30 * timedice.Second))
	fmt.Printf("\n30 s under TimeDiceW: %d decisions, %d switches, deadline misses: %v (empty = none)\n",
		sys.Counters.Decisions, sys.Counters.Switches, misses)

	// 3. Threat check: a compromised task in the high-priority flight
	// partition could leak mission data to the untrusted vendor partition
	// by modulating its budget consumption (the sender must sit above the
	// receiver in priority, as in the paper's §III model).
	channel := func(kind timedice.PolicyKind) (*timedice.ChannelResult, error) {
		return timedice.RunChannel(timedice.ChannelConfig{
			Spec: spec, Sender: 0, Receiver: 2,
			ProfileWindows: 300, TestWindows: 800, Seed: 5,
			Policy: kind,
		})
	}
	res, err := channel(timedice.NoRandom)
	if err != nil {
		return err
	}
	resTD, err := channel(timedice.TimeDiceW)
	if err != nil {
		return err
	}
	fmt.Printf("\nflight→vendor covert channel: NoRandom %.1f%% (%.2f b/win) → TimeDice %.1f%% (%.2f b/win)\n",
		100*res.RTAccuracy, res.Capacity, 100*resTD.RTAccuracy, resTD.Capacity)
	return nil
}
