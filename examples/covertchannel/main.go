// Covertchannel runs the paper's §III feasibility test end to end on the
// Table I system: the sender partition (Π2) modulates its budget consumption
// to signal bits; the receiver partition (Π4) profiles its own response
// times and execution vectors, then decodes a random message. Both receiver
// types are evaluated, along with the channel capacity.
package main

import (
	"fmt"
	"os"

	"timedice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	for _, load := range []struct {
		name string
		spec timedice.SystemSpec
	}{
		{"base load (80% utilization)", timedice.TableIBase()},
		{"light load (40% utilization)", timedice.TableILight()},
	} {
		fmt.Printf("== %s ==\n", load.name)
		res, err := timedice.RunChannel(timedice.ChannelConfig{
			Spec:           load.spec,
			Sender:         1, // Π2
			Receiver:       3, // Π4, monitoring window 150 ms = 3·T4
			ProfileWindows: 600,
			TestWindows:    1500,
			Seed:           1,
		}, timedice.SVM{}, timedice.Forest{}, timedice.KNN{})
		if err != nil {
			return err
		}
		fmt.Printf("response-time receiver (Bayesian): %.2f%%\n", 100*res.RTAccuracy)
		for name, acc := range res.VecAccuracy {
			fmt.Printf("execution-vector receiver (%-7s): %.2f%%\n", name, 100*acc)
		}
		fmt.Printf("channel capacity: %.3f bits/window\n", res.Capacity)

		fmt.Println("\nprofiled Pr(R|X=0):")
		fmt.Print(res.Hist0.Render(30))
		fmt.Println("profiled Pr(R|X=1):")
		fmt.Print(res.Hist1.Render(30))
		fmt.Println()
	}
	fmt.Println("(Run examples/mitigation to see TimeDice close this channel.)")
	return nil
}
