// Monitoring is the system integrator's console: the overt channels flow
// through an auditable publish–subscribe bus, the telemetry event stream
// feeds live deadline-miss and inversion-window monitors, and a consumption
// monitor watches every partition's budget usage for covert-sender
// signatures — with TimeDice randomizing the schedule underneath. Defense in
// depth: TimeDice degrades the covert channel, the monitor identifies who
// was trying to use it, and the overt traffic is fully logged.
package main

import (
	"fmt"
	"os"

	"timedice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	spec := timedice.TableIBase()
	// Make P2 a covert sender: one task that alternates between consuming
	// its full budget and almost nothing, every 150 ms window.
	window := timedice.MS(150)
	spec.Partitions[1].Tasks = []timedice.TaskSpec{{
		Name: "exfil", Period: timedice.MS(50), WCET: spec.Partitions[1].Budget,
	}}

	// Live monitors fed by the structured event stream: every deadline miss
	// and every priority-inversion window the engine opens arrives here as a
	// typed event the moment it happens — no post-processing pass needed.
	misses := map[int]int{}
	var inversions int
	var inversionTime timedice.Duration
	watch := timedice.TelemetryFunc(func(ev timedice.TelemetryEvent) {
		switch ev.Kind {
		case timedice.EventDeadlineMiss:
			misses[ev.Partition]++
		case timedice.EventInversionOpen:
			inversions++
		case timedice.EventInversionClose:
			inversionTime += ev.Dur
		}
	})

	sys, built, err := timedice.NewBuiltSystem(spec, timedice.TimeDiceW, 4,
		timedice.WithTelemetry(watch))
	if err != nil {
		return err
	}
	budget := spec.Partitions[1].Budget
	built.Task["P2/exfil"].ExecFn = func(_ int64, arrival timedice.Time) timedice.Duration {
		if (arrival/timedice.Time(window))%2 == 1 {
			return budget
		}
		return timedice.US(10)
	}

	// Overt traffic: P1's task publishes a heartbeat every completion;
	// P5 subscribes and collects at its own completions.
	bus := timedice.NewBus()
	bus.Subscribe("heartbeat", "P5")
	heartbeats := 0
	var worstLatency timedice.Duration
	built.Sched["P1"].OnComplete = func(c timedice.TaskCompletion) {
		bus.Publish("heartbeat", "P1", c.Job.Index, c.Finish)
	}
	built.Sched["P5"].OnComplete = func(c timedice.TaskCompletion) {
		for _, d := range bus.Collect("heartbeat", "P5", c.Finish) {
			heartbeats++
			if l := d.Latency(); l > worstLatency {
				worstLatency = l
			}
		}
	}

	// The monitor: budget-consumption observer over the whole run.
	mon := timedice.NewConsumptionObserver(spec)
	sys.TraceFn = mon.Hook()

	sys.Run(timedice.Time(60 * timedice.Second))
	sys.FlushTelemetry() // close any inversion window still open at the horizon

	fmt.Println("Integrator's console after 60 simulated seconds under TimeDiceW:")
	fmt.Printf("  overt bus: %d heartbeats delivered, worst latency %v, %d messages audited\n",
		heartbeats, worstLatency, len(bus.Audit()))
	totalMisses := 0
	for _, n := range misses {
		totalMisses += n
	}
	fmt.Printf("  deadline monitor: %d misses", totalMisses)
	if totalMisses > 0 {
		for i := range spec.Partitions {
			if misses[i] > 0 {
				fmt.Printf("  %s:%d", spec.Partitions[i].Name, misses[i])
			}
		}
	}
	fmt.Println()
	fmt.Printf("  inversion monitor: %d schedulability-preserving inversion windows, %v total (%.1f%% of run)\n",
		inversions, inversionTime, 100*inversionTime.Seconds()/60)
	fmt.Println("  covert-sender scores (budget-modulation bimodality):")
	for _, r := range mon.Rank() {
		flag := ""
		if r.Score > 0.75 {
			flag = "  <-- FLAGGED"
		}
		fmt.Printf("    %-4s %.3f%s\n", r.Partition, r.Score, flag)
	}
	return nil
}
