// Command overheadbench regenerates the scheduling-overhead evaluation of
// the paper's §V-B3: Table IV (per-decision latency percentiles), Table V
// (decisions and switches per second), and Fig. 17 (randomization time per
// second of schedule) for |Π| ∈ {5, 10, 20}.
//
// Absolute latencies are those of this Go implementation on the host CPU,
// not of the paper's kernel implementation; the growth with |Π| is the
// reproducible shape.
package main

import (
	"flag"
	"fmt"
	"os"

	"timedice/internal/experiments"
	"timedice/internal/obs"
	"timedice/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "overheadbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("overheadbench", flag.ContinueOnError)
	secs := fs.Int("secs", 30, "simulated seconds per configuration")
	seed := fs.Uint64("seed", 1, "random seed")
	naive := fs.Bool("naive", false, "also run the unprincipled-randomization shortfall comparison")
	randomness := fs.Bool("entropy", false, "also run the schedule-randomness metrics (slot entropy, exhaustion spread)")
	parallel := fs.Int("parallel", 1, "trial workers: 0 = one per CPU, 1 = sequential (keeps Table IV latencies noise-free)")
	obsFlags := obs.AddFlags(fs)
	pf := prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ledger, srv, err := obsFlags.Start("overheadbench", fs, nil)
	if err != nil {
		return err
	}
	exitCode := 1
	defer func() {
		if srv != nil {
			srv.Close() //nolint:errcheck // shutting down
		}
		ledger.Finish(exitCode) //nolint:errcheck // the bench error dominates
	}()
	stopProf, err := pf.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	sc := experiments.Scale{SimSeconds: *secs, Seed: *seed, Parallel: *parallel}
	if _, err := experiments.Overhead(sc, os.Stdout); err != nil {
		return err
	}
	if *naive {
		fmt.Println()
		if _, err := experiments.Naive(sc, os.Stdout); err != nil {
			return err
		}
	}
	if *randomness {
		fmt.Println()
		if _, err := experiments.Randomness(sc, os.Stdout); err != nil {
			return err
		}
	}
	if err := stopProf(); err != nil {
		return err
	}
	exitCode = 0
	return nil
}
