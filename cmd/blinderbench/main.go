// Command blinderbench regenerates the §V-C comparison with BLINDER:
// the Fig. 18 task-order covert channel under no defense, under BLINDER's
// local-schedule transform, and under TimeDice — plus the paper's §III
// response-time channel with the receiver BLINDER-transformed.
package main

import (
	"flag"
	"fmt"
	"os"

	"timedice/internal/experiments"
)

func main() {
	fs := flag.NewFlagSet("blinderbench", flag.ContinueOnError)
	windows := fs.Int("windows", 2000, "signaled bits per configuration")
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "trial workers: 0 = one per CPU, 1 = sequential")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	sc := experiments.Scale{TestWindows: *windows, Seed: *seed, Parallel: *parallel}
	if _, err := experiments.Fig18(sc, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "blinderbench:", err)
		os.Exit(1)
	}
}
