// Command blinderbench regenerates the §V-C comparison with BLINDER:
// the Fig. 18 task-order covert channel under no defense, under BLINDER's
// local-schedule transform, and under TimeDice — plus the paper's §III
// response-time channel with the receiver BLINDER-transformed.
package main

import (
	"flag"
	"fmt"
	"os"

	"timedice/internal/experiments"
	"timedice/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("blinderbench", flag.ContinueOnError)
	windows := fs.Int("windows", 2000, "signaled bits per configuration")
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "trial workers: 0 = one per CPU, 1 = sequential")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	ledger, srv, err := obsFlags.Start("blinderbench", fs, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blinderbench:", err)
		os.Exit(2)
	}
	sc := experiments.Scale{TestWindows: *windows, Seed: *seed, Parallel: *parallel}
	_, runErr := experiments.Fig18(sc, os.Stdout)
	if srv != nil {
		srv.Close() //nolint:errcheck // shutting down
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "blinderbench:", runErr)
		ledger.Finish(1) //nolint:errcheck // the experiment error dominates
		os.Exit(1)
	}
	if err := ledger.Finish(0); err != nil {
		fmt.Fprintln(os.Stderr, "blinderbench:", err)
	}
}
