// Command figures renders the paper's visual artifacts as PNG files:
// the Fig. 6 schedule traces (NoRandom vs TimeDice), the Fig. 4(b)/13
// execution-vector heatmaps (NoRandom, TimeDiceU, TimeDiceW), and the
// Fig. 16 per-task response-time box plots (NoRandom vs TimeDice).
//
// Usage:
//
//	figures -out ./figures [-windows 120] [-seed 1] [-stream]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"timedice/internal/covert"
	"timedice/internal/engine"
	"timedice/internal/experiments"
	"timedice/internal/experiments/runner"
	"timedice/internal/obs"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/stats"
	"timedice/internal/trace"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	outDir := fs.String("out", "figures", "output directory")
	windows := fs.Int("windows", 120, "monitoring windows per heatmap")
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "render workers: 0 = one per CPU, 1 = sequential")
	stream := fs.Bool("stream", false, "streaming (constant-memory sketch) aggregation for the Fig. 16 boxes; exact is the default")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	ledger, srv, err := obsFlags.Start("figures", fs, nil)
	if err != nil {
		return err
	}
	exitCode := 1
	defer func() {
		if srv != nil {
			srv.Close() //nolint:errcheck // shutting down
		}
		ledger.Finish(exitCode) //nolint:errcheck // the render error dominates
	}()

	// The five renders simulate independent systems; fan them out.
	var renders []func() error
	// Fig. 6: schedule traces of the 3-partition example.
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
		renders = append(renders, func() error { return renderGantt(*outDir, kind, *seed) })
	}
	// Figs. 4(b)/13: execution-vector heatmaps under the three policies.
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW} {
		renders = append(renders, func() error { return renderHeatmap(*outDir, kind, *windows, *seed) })
	}
	// Fig. 16: per-task response-time box plots, NoRandom vs TimeDice.
	renders = append(renders, func() error { return renderBoxes(*outDir, *seed, *stream) })
	if err := runner.Do(*parallel, renders...); err != nil {
		return err
	}
	if abs, err := filepath.Abs(*outDir); err == nil {
		ledger.AddArtifact(abs)
	} else {
		ledger.AddArtifact(*outDir)
	}
	ledger.AddCounter("renders", int64(len(renders)))
	exitCode = 0
	return nil
}

// renderBoxes draws the Fig. 16 response-time spreads: one group per Table I
// task, NoRandom and TimeDiceW boxes side by side. With -stream the samples
// flow through per-task quantile sketches instead of buffers.
func renderBoxes(outDir string, seed uint64, stream bool) error {
	sc := experiments.Quick()
	sc.Seed = seed
	sc.Stream = stream
	sc.Parallel = 1 // already fanned out as one render among the others
	res, err := experiments.Fig16(sc, nil)
	if err != nil {
		return err
	}
	labels := make([]string, len(res.NoRandom.Tasks))
	nr := make([]stats.BoxPlot, len(res.NoRandom.Tasks))
	td := make([]stats.BoxPlot, len(res.NoRandom.Tasks))
	for i, t := range res.NoRandom.Tasks {
		labels[i] = t.Task
		nr[i] = t.Box()
		td[i] = res.TimeDice.Tasks[i].Box()
	}
	path := filepath.Join(outDir, "fig16_boxes.png")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = trace.BoxesPNG(labels, [][]stats.BoxPlot{nr, td}, f)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return fmt.Errorf("render %s: %w", path, err)
	}
	fmt.Println("wrote", path)
	return nil
}

func renderGantt(outDir string, kind policies.Kind, seed uint64) error {
	spec := workload.ThreePartition()
	built, err := spec.Build()
	if err != nil {
		return err
	}
	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		return err
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(seed))
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(0, vtime.Time(vtime.MS(200)))
	sys.TraceFn = rec.Hook()
	sys.Run(vtime.Time(vtime.MS(200)))

	path := filepath.Join(outDir, fmt.Sprintf("fig06_%s.png", kind))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = rec.GanttPNG(len(spec.Partitions), vtime.FromFloatMS(0.25), 12, f)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return fmt.Errorf("render %s: %w", path, err)
	}
	fmt.Println("wrote", path)
	return nil
}

func renderHeatmap(outDir string, kind policies.Kind, windows int, seed uint64) error {
	cfg := covert.Config{
		Spec:           workload.TableIBase(),
		Sender:         1,
		Receiver:       3,
		ProfileWindows: windows,
		TestWindows:    16, // heatmaps use the profile phase
		Policy:         kind,
		Seed:           seed,
	}
	res, err := covert.Run(cfg)
	if err != nil {
		return err
	}
	var vectors [][]float64
	var labels []int
	for _, ob := range res.Profile {
		vectors = append(vectors, ob.Vector)
		labels = append(labels, ob.Label)
	}
	name := "fig04b_NoRandom.png"
	if kind != policies.NoRandom {
		name = fmt.Sprintf("fig13_%s.png", kind)
	}
	path := filepath.Join(outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = trace.HeatmapPNG(vectors, labels, 3, f)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return fmt.Errorf("render %s: %w", path, err)
	}
	fmt.Println("wrote", path)
	return nil
}
