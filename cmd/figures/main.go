// Command figures renders the paper's visual artifacts as PNG files:
// the Fig. 6 schedule traces (NoRandom vs TimeDice) and the Fig. 4(b)/13
// execution-vector heatmaps (NoRandom, TimeDiceU, TimeDiceW).
//
// Usage:
//
//	figures -out ./figures [-windows 120] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"timedice/internal/covert"
	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/trace"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	outDir := fs.String("out", "figures", "output directory")
	windows := fs.Int("windows", 120, "monitoring windows per heatmap")
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "render workers: 0 = one per CPU, 1 = sequential")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	// The five renders simulate independent systems; fan them out.
	var renders []func() error
	// Fig. 6: schedule traces of the 3-partition example.
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
		renders = append(renders, func() error { return renderGantt(*outDir, kind, *seed) })
	}
	// Figs. 4(b)/13: execution-vector heatmaps under the three policies.
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW} {
		renders = append(renders, func() error { return renderHeatmap(*outDir, kind, *windows, *seed) })
	}
	return runner.Do(*parallel, renders...)
}

func renderGantt(outDir string, kind policies.Kind, seed uint64) error {
	spec := workload.ThreePartition()
	built, err := spec.Build()
	if err != nil {
		return err
	}
	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		return err
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(seed))
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(0, vtime.Time(vtime.MS(200)))
	sys.TraceFn = rec.Hook()
	sys.Run(vtime.Time(vtime.MS(200)))

	path := filepath.Join(outDir, fmt.Sprintf("fig06_%s.png", kind))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = rec.GanttPNG(len(spec.Partitions), vtime.FromFloatMS(0.25), 12, f)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return fmt.Errorf("render %s: %w", path, err)
	}
	fmt.Println("wrote", path)
	return nil
}

func renderHeatmap(outDir string, kind policies.Kind, windows int, seed uint64) error {
	cfg := covert.Config{
		Spec:           workload.TableIBase(),
		Sender:         1,
		Receiver:       3,
		ProfileWindows: windows,
		TestWindows:    16, // heatmaps use the profile phase
		Policy:         kind,
		Seed:           seed,
	}
	res, err := covert.Run(cfg)
	if err != nil {
		return err
	}
	var vectors [][]float64
	var labels []int
	for _, ob := range res.Profile {
		vectors = append(vectors, ob.Vector)
		labels = append(labels, ob.Label)
	}
	name := "fig04b_NoRandom.png"
	if kind != policies.NoRandom {
		name = fmt.Sprintf("fig13_%s.png", kind)
	}
	path := filepath.Join(outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = trace.HeatmapPNG(vectors, labels, 3, f)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return fmt.Errorf("render %s: %w", path, err)
	}
	fmt.Println("wrote", path)
	return nil
}
