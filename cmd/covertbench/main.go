// Command covertbench regenerates the covert-channel experiments of the
// paper: Fig. 4 (feasibility), Fig. 12 (mitigation grid), Fig. 13 (heatmaps),
// Fig. 14 (distributions), Fig. 15 (channel capacity), and the self-driving
// car scenario of §III-e.
//
// Usage:
//
//	covertbench -fig 12 -scale quick
//	covertbench -fig all -scale full      # paper-scale (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"timedice/internal/experiments"
	"timedice/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "covertbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("covertbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "experiment: 4 | 12 | 13 | 14 | 15 | car | ablation | rate | multipair | receivers | detect | campaign | all")
	scaleName := fs.String("scale", "quick", "experiment scale: quick | full")
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "trial workers: 0 = one per CPU, 1 = sequential")
	stream := fs.Bool("stream", false, "streaming (constant-memory sketch) aggregation for campaign/fig16; exact is the default")
	pf := prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := pf.Start()
	if err != nil {
		return err
	}
	sc := experiments.Quick()
	if strings.EqualFold(*scaleName, "full") {
		sc = experiments.Full()
	}
	sc.Seed = *seed
	sc.Parallel = *parallel
	sc.Stream = *stream

	type runner struct {
		name string
		fn   func() error
	}
	w := os.Stdout
	all := []runner{
		{"4", func() error { _, err := experiments.Fig04(sc, w); return err }},
		{"12", func() error { _, err := experiments.Fig12(sc, w); return err }},
		{"13", func() error { _, err := experiments.Fig13(sc, w); return err }},
		{"14", func() error { _, err := experiments.Fig14(sc, w); return err }},
		{"15", func() error { _, err := experiments.Fig15(sc, w); return err }},
		{"car", func() error { _, err := experiments.CarChannel(sc, w); return err }},
		{"ablation", func() error { _, err := experiments.Ablation(sc, w); return err }},
		{"rate", func() error { _, err := experiments.Rate(sc, w); return err }},
		{"multipair", func() error { _, err := experiments.MultiPairReport(sc, w); return err }},
		{"receivers", func() error { _, err := experiments.ReceiverZoo(sc, w); return err }},
		{"detect", func() error { _, err := experiments.Detection(sc, w); return err }},
		{"campaign", func() error { _, err := experiments.Campaign(sc, w); return err }},
	}
	want := strings.ToLower(*fig)
	ran := false
	for _, r := range all {
		if want != "all" && want != r.name {
			continue
		}
		fmt.Fprintf(w, "==== experiment %s (scale=%s, seed=%d) ====\n", r.name, *scaleName, *seed)
		if err := r.fn(); err != nil {
			stopProf()
			return fmt.Errorf("experiment %s: %w", r.name, err)
		}
		fmt.Fprintln(w)
		ran = true
	}
	if err := stopProf(); err != nil {
		return err
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *fig)
	}
	return nil
}
