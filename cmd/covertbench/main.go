// Command covertbench regenerates the covert-channel experiments of the
// paper: Fig. 4 (feasibility), Fig. 12 (mitigation grid), Fig. 13 (heatmaps),
// Fig. 14 (distributions), Fig. 15 (channel capacity), and the self-driving
// car scenario of §III-e.
//
// Usage:
//
//	covertbench -fig 12 -scale quick
//	covertbench -fig all -scale full      # paper-scale (slow)
//
// Campaign operations: -http serves /metrics, /statusz, /healthz, and
// /debug/pprof while the experiments run; -progress prints a periodic
// per-experiment status line to stderr; -runs writes a run.json provenance
// manifest. All three write off the report stream, so reports stay
// byte-identical with them on.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"timedice/internal/experiments"
	"timedice/internal/obs"
	"timedice/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "covertbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("covertbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "experiment: 4 | 12 | 13 | 14 | 15 | car | ablation | rate | multipair | receivers | detect | campaign | all")
	scaleName := fs.String("scale", "quick", "experiment scale: quick | full")
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "trial workers: 0 = one per CPU, 1 = sequential")
	workers := fs.Int("workers", 1, "sharded-stepping workers inside each simulation (1 = sequential); does not affect results")
	stream := fs.Bool("stream", false, "streaming (constant-memory sketch) aggregation for campaign/fig16; exact is the default")
	progress := fs.Bool("progress", false, "print a periodic progress line to stderr")
	obsFlags := obs.AddFlags(fs)
	pf := prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := experiments.Quick()
	if strings.EqualFold(*scaleName, "full") {
		sc = experiments.Full()
	}
	sc.Seed = *seed
	sc.Parallel = *parallel
	sc.Stream = *stream
	if *workers < 1 {
		*workers = 1
	}
	sc.ShardWorkers = *workers

	type runner struct {
		name string
		fn   func() error
	}
	w := os.Stdout
	all := []runner{
		{"4", func() error { _, err := experiments.Fig04(sc, w); return err }},
		{"12", func() error { _, err := experiments.Fig12(sc, w); return err }},
		{"13", func() error { _, err := experiments.Fig13(sc, w); return err }},
		{"14", func() error { _, err := experiments.Fig14(sc, w); return err }},
		{"15", func() error { _, err := experiments.Fig15(sc, w); return err }},
		{"car", func() error { _, err := experiments.CarChannel(sc, w); return err }},
		{"ablation", func() error { _, err := experiments.Ablation(sc, w); return err }},
		{"rate", func() error { _, err := experiments.Rate(sc, w); return err }},
		{"multipair", func() error { _, err := experiments.MultiPairReport(sc, w); return err }},
		{"receivers", func() error { _, err := experiments.ReceiverZoo(sc, w); return err }},
		{"detect", func() error { _, err := experiments.Detection(sc, w); return err }},
		{"campaign", func() error { _, err := experiments.Campaign(sc, w); return err }},
	}
	want := strings.ToLower(*fig)
	var selected []runner
	for _, r := range all {
		if want == "all" || want == r.name {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q", *fig)
	}

	// Campaign ops: one Progress "trial" per experiment, the run ledger, and
	// the exposition server for the duration.
	prog := obs.NewProgress("covertbench", int64(len(selected)))
	prog.SetShardWorkers(*workers)
	ledger, srv, err := obsFlags.Start("covertbench", fs, prog)
	if err != nil {
		return err
	}
	exitCode := 1 // assume failure; flipped to 0 on the success path
	defer func() {
		if srv != nil {
			srv.Close() //nolint:errcheck // shutting down
		}
		ledger.Finish(exitCode) //nolint:errcheck // the experiment error dominates
	}()
	var stopReport func()
	if *progress {
		stopReport = prog.StartReporter(os.Stderr, 2*time.Second)
		defer stopReport()
	}

	stopProf, err := pf.Start()
	if err != nil {
		return err
	}
	for _, r := range selected {
		fmt.Fprintf(w, "==== experiment %s (scale=%s, seed=%d) ====\n", r.name, *scaleName, *seed)
		prog.TrialStart()
		start := time.Now()
		err := r.fn()
		prog.TrialDone(0, 0, time.Since(start))
		if err != nil {
			stopProf()
			return fmt.Errorf("experiment %s: %w", r.name, err)
		}
		ledger.AddCounter("experiments", 1)
		fmt.Fprintln(w)
	}
	if err := stopProf(); err != nil {
		return err
	}
	exitCode = 0
	return nil
}
