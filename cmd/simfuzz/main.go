// Command simfuzz runs a deterministic simulation-fuzzing campaign: it
// generates schedulability-certified random scenarios (internal/gen), runs
// each through the engine with the full oracle suite attached
// (internal/check), and reports any invariant violation together with a
// shrunk reproducer.
//
// The campaign is reproducible bit-for-bit from -seed: scenario seeds are
// pre-drawn sequentially from one master rng, so the output — including the
// combined event-stream digest — is byte-identical for any -parallel value.
//
//	simfuzz -scenarios 10000 -seed 1 -parallel 4
//
// Campaign operations (all off the report stream, so the report stays
// byte-identical whether or not anyone is watching):
//
//   - -http :9090 serves /metrics (Prometheus text), /statusz (JSON),
//     /healthz, and /debug/pprof for the duration of the run.
//   - -progress prints a periodic one-line status to stderr.
//   - -runs DIR writes a run.json provenance manifest per invocation
//     (argv, flags, build info, seeds, digest, headline counters).
//   - Each worker carries a flight recorder (a bounded ring of the last
//     -recwindow telemetry events); on a worker panic or an oracle
//     violation a post-mortem bundle (events JSONL + Chrome trace +
//     scenario reproducer + meta.json) is dumped under the run directory.
//
// Exit status: 0 on a clean campaign, 1 when any oracle fired, 2 on setup
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"timedice/internal/check"
	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/gen"
	"timedice/internal/obs"
	"timedice/internal/policies"
	"timedice/internal/prof"
	"timedice/internal/rng"
	"timedice/internal/vtime"
)

type config struct {
	scenarios int
	seed      uint64
	parallel  int
	shrink    bool
	window    int    // flight-recorder window, events per worker
	bundleDir string // where post-mortem bundles land; empty disables them

	prog   *obs.Progress // live campaign state; nil ⇒ campaign makes its own
	ledger *obs.Run      // run manifest; nil-safe

	// injectFailure, when non-zero, forces trial injectFailure-1 to report
	// a synthetic oracle violation (1-based so the zero config is inert).
	// It exists so tests can drive the whole post-mortem path — bundle
	// dump, replay, digest cross-check — without needing a genuinely broken
	// scenario in the corpus.
	injectFailure int
}

func main() {
	var cfg config
	flag.IntVar(&cfg.scenarios, "scenarios", 1000, "number of scenarios to generate and check")
	flag.Uint64Var(&cfg.seed, "seed", 1, "master seed; the whole campaign is a pure function of it")
	flag.IntVar(&cfg.parallel, "parallel", 0, "worker count (<=0: one per CPU); does not affect output")
	flag.BoolVar(&cfg.shrink, "shrink", true, "minimize the first failing scenario before reporting it")
	flag.IntVar(&cfg.window, "recwindow", obs.DefaultRecorderWindow, "flight-recorder window per worker, in telemetry events")
	progress := flag.Bool("progress", false, "print a periodic progress line to stderr")
	obsFlags := obs.AddFlags(flag.CommandLine)
	pf := prof.AddFlags(flag.CommandLine)
	flag.Parse()

	cfg.prog = obs.NewProgress("simfuzz", int64(cfg.scenarios))
	run, srv, err := obsFlags.Start("simfuzz", flag.CommandLine, cfg.prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfuzz:", err)
		os.Exit(2)
	}
	cfg.ledger = run
	// Bundles land next to run.json when the ledger is on, under the runs
	// root otherwise; an empty -runs disables both.
	cfg.bundleDir = run.Dir()
	if cfg.bundleDir == "" && obsFlags.Runs != "" {
		cfg.bundleDir = obsFlags.Runs
	}

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfuzz:", err)
		run.Finish(2) //nolint:errcheck // exiting anyway
		os.Exit(2)
	}
	var stopReport func()
	if *progress {
		stopReport = cfg.prog.StartReporter(os.Stderr, 2*time.Second)
	}

	code := campaign(cfg, os.Stdout)

	if stopReport != nil {
		stopReport()
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "simfuzz:", err)
		if code == 0 {
			code = 2
		}
	}
	if srv != nil {
		srv.Close() //nolint:errcheck // shutting down
	}
	if err := run.Finish(code); err != nil {
		fmt.Fprintln(os.Stderr, "simfuzz:", err)
	}
	os.Exit(code)
}

// trial is the per-scenario record; everything the report needs is captured
// here so aggregation is a deterministic fold in index order.
type trial struct {
	policy policies.Kind
	events int64
	digest uint64
	viol   []check.Violation
	total  int
	seed   uint64
}

func campaign(cfg config, w io.Writer) int {
	prog := cfg.prog
	if prog == nil {
		prog = obs.NewProgress("simfuzz", int64(cfg.scenarios))
	}
	master := rng.New(cfg.seed)
	seeds := make([]uint64, cfg.scenarios)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}

	// One flight recorder per worker: the ring is reset at each trial start,
	// so after a failure it holds the tail of exactly the failing run.
	newRecorder := func() (*obs.Recorder, error) { return obs.NewRecorder(cfg.window), nil }

	trials, err := runner.MapPooled(cfg.parallel, newRecorder, seeds,
		func(rec *obs.Recorder, i int, seed uint64) (tr trial, err error) {
			prog.TrialStart()
			start := time.Now()
			rec.Reset()
			defer func() {
				if p := recover(); p != nil {
					// Dump the live window before the stack unwinds any
					// further: a worker panic is exactly the case where no
					// deterministic replay is available.
					dumpPanicBundle(cfg, i, seed, rec, p)
					err = fmt.Errorf("scenario %d (seed %#x): panic: %v", i, seed, p)
				}
				prog.TrialDone(tr.events, tr.total, time.Since(start))
			}()
			sc := gen.Generate(rng.New(seed), gen.DefaultOptions())
			suite, st, err := gen.RunRecorded(sc, rec)
			if err != nil {
				return trial{}, fmt.Errorf("scenario %d (seed %#x): %w", i, seed, err)
			}
			prog.AddCache(st.CacheHits, st.CacheMisses)
			prog.AddEngine(st.Counters.Decisions, st.Counters.ArenaBytesTouched)
			vs, total := suite.Violations()
			if i+1 == cfg.injectFailure {
				vs = append(vs, check.Violation{Oracle: "injected", Msg: "forced failure (test hook)"})
				total++
			}
			return trial{
				policy: sc.Policy,
				events: suite.Events(),
				digest: suite.Digest(),
				viol:   vs,
				total:  total,
				seed:   seed,
			}, nil
		})
	if err != nil {
		fmt.Fprintf(w, "simfuzz: %v\n", err)
		return 2
	}

	// Deterministic fold in index order: per-policy tallies and a combined
	// digest chaining every scenario's event-stream digest.
	const fnvOffset, fnvPrime = 0xcbf29ce484222325, 0x100000001b3
	combined := uint64(fnvOffset)
	perPolicy := map[policies.Kind]int{}
	perPolicyViol := map[policies.Kind]int{}
	violations, firstBad := 0, -1
	var events int64
	for i, tr := range trials {
		perPolicy[tr.policy]++
		perPolicyViol[tr.policy] += tr.total
		events += tr.events
		violations += tr.total
		if tr.total > 0 && firstBad < 0 {
			firstBad = i
		}
		for b := 0; b < 64; b += 8 {
			combined = (combined ^ (tr.digest >> b & 0xff)) * fnvPrime
		}
	}

	cfg.ledger.SetDigest(combined)
	cfg.ledger.AddCounter("scenarios", int64(cfg.scenarios))
	cfg.ledger.AddCounter("violations", int64(violations))
	cfg.ledger.AddCounter("events", events)

	fmt.Fprintf(w, "simfuzz: %d scenarios, seed %d\n", cfg.scenarios, cfg.seed)
	for _, k := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW} {
		fmt.Fprintf(w, "  %-9s %6d scenarios, %d violations\n", k, perPolicy[k], perPolicyViol[k])
	}
	fmt.Fprintf(w, "  events    %d\n", events)
	fmt.Fprintf(w, "  digest    %#016x\n", combined)

	if violations == 0 {
		fmt.Fprintf(w, "ok: 0 oracle violations\n")
		return 0
	}

	tr := trials[firstBad]
	fmt.Fprintf(w, "FAIL: %d oracle violations across %d scenarios\n", violations, countFailing(trials))
	fmt.Fprintf(w, "first failing scenario %d (seed %#x, policy %s):\n", firstBad, tr.seed, tr.policy)
	for _, v := range tr.viol {
		fmt.Fprintf(w, "  %v\n", v)
	}
	dumpViolationBundle(cfg, firstBad, tr)
	sc := gen.Generate(rng.New(tr.seed), gen.DefaultOptions())
	if cfg.shrink {
		sc = gen.Shrink(sc, gen.Fails, 2000)
	}
	if blob, err := gen.Encode(sc); err == nil {
		fmt.Fprintf(w, "reproducer (shrunk=%v):\n%s\n", cfg.shrink, blob)
	}
	return 1
}

// dumpViolationBundle re-runs the first failing scenario with a fresh flight
// recorder and writes the post-mortem bundle. The re-run is the determinism
// cross-check: the replay's event-stream digest must equal the live trial's,
// and both land in meta.json so a mismatch is diagnosable from the bundle
// alone. Failures to write are reported on stderr and otherwise ignored —
// the campaign verdict never depends on post-mortem IO.
func dumpViolationBundle(cfg config, index int, tr trial) {
	if cfg.bundleDir == "" {
		return
	}
	sc := gen.Generate(rng.New(tr.seed), gen.DefaultOptions())
	rec := obs.NewRecorder(cfg.window)
	suite, st, err := gen.RunRecorded(sc, rec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfuzz: post-mortem replay: %v\n", err)
		return
	}
	detail := make([]string, 0, len(tr.viol))
	for _, v := range tr.viol {
		detail = append(detail, v.String())
	}
	blob, _ := gen.Encode(sc)
	dir, err := obs.WriteBundle(cfg.bundleDir, obs.BundleInfo{
		Tool:          "simfuzz",
		Reason:        obs.ReasonOracleViolation,
		Detail:        detail,
		Seed:          tr.seed,
		TrialIndex:    index,
		Scenario:      blob,
		Events:        rec.Window(),
		EventsTotal:   rec.Total(),
		EventsDropped: rec.Dropped(),
		Partitions:    partitionNames(sc),
		LiveDigest:    tr.digest,
		ReplayDigest:  suite.Digest(),
		Counters:      counterMap(st.Counters),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfuzz: post-mortem bundle: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "simfuzz: post-mortem bundle: %s\n", dir)
	cfg.ledger.AddArtifact(dir)
	if suite.Digest() != tr.digest {
		fmt.Fprintf(os.Stderr, "simfuzz: WARNING: replay digest %#016x != live digest %#016x — nondeterminism\n",
			suite.Digest(), tr.digest)
	}
}

// dumpPanicBundle writes the flight-recorder window of a trial whose worker
// panicked. Called from the worker's recover, so it must not panic itself.
func dumpPanicBundle(cfg config, index int, seed uint64, rec *obs.Recorder, p any) {
	if cfg.bundleDir == "" {
		return
	}
	var blob []byte
	sc := gen.Generate(rng.New(seed), gen.DefaultOptions())
	blob, _ = gen.Encode(sc)
	dir, err := obs.WriteBundle(cfg.bundleDir, obs.BundleInfo{
		Tool:          "simfuzz",
		Reason:        obs.ReasonWorkerPanic,
		Detail:        []string{fmt.Sprint(p)},
		Seed:          seed,
		TrialIndex:    index,
		Scenario:      blob,
		Events:        rec.Window(),
		EventsTotal:   rec.Total(),
		EventsDropped: rec.Dropped(),
		Partitions:    partitionNames(sc),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfuzz: post-mortem bundle: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "simfuzz: post-mortem bundle: %s\n", dir)
	cfg.ledger.AddArtifact(dir)
}

func partitionNames(sc gen.Scenario) []string {
	names := make([]string, len(sc.Spec.Partitions))
	for i, p := range sc.Spec.Partitions {
		names[i] = p.Name
	}
	return names
}

func counterMap(c engine.Counters) map[string]int64 {
	return map[string]int64{
		"decisions":        c.Decisions,
		"switches":         c.Switches,
		"idleDecisions":    c.IdleDecisions,
		"busyMicros":       int64(c.BusyTime / vtime.Microsecond),
		"idleMicros":       int64(c.IdleTime / vtime.Microsecond),
		"deadlineMisses":   c.DeadlineMisses,
		"inversionWindows": c.InversionWindows,
		"minAdvances":      c.MinAdvances,
	}
}

func countFailing(trials []trial) int {
	n := 0
	for _, tr := range trials {
		if tr.total > 0 {
			n++
		}
	}
	return n
}
