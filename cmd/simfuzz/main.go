// Command simfuzz runs a deterministic simulation-fuzzing campaign: it
// generates schedulability-certified random scenarios (internal/gen), runs
// each through the engine with the full oracle suite attached
// (internal/check), and reports any invariant violation together with a
// shrunk reproducer.
//
// The campaign is reproducible bit-for-bit from -seed: scenario seeds are
// pre-drawn sequentially from one master rng, so the output — including the
// combined event-stream digest — is byte-identical for any -parallel value.
//
//	simfuzz -scenarios 10000 -seed 1 -parallel 4
//
// Exit status: 0 on a clean campaign, 1 when any oracle fired, 2 on setup
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"timedice/internal/check"
	"timedice/internal/experiments/runner"
	"timedice/internal/gen"
	"timedice/internal/policies"
	"timedice/internal/prof"
	"timedice/internal/rng"
)

type config struct {
	scenarios int
	seed      uint64
	parallel  int
	shrink    bool
}

func main() {
	var cfg config
	flag.IntVar(&cfg.scenarios, "scenarios", 1000, "number of scenarios to generate and check")
	flag.Uint64Var(&cfg.seed, "seed", 1, "master seed; the whole campaign is a pure function of it")
	flag.IntVar(&cfg.parallel, "parallel", 0, "worker count (<=0: one per CPU); does not affect output")
	flag.BoolVar(&cfg.shrink, "shrink", true, "minimize the first failing scenario before reporting it")
	pf := prof.AddFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfuzz:", err)
		os.Exit(2)
	}
	code := campaign(cfg, os.Stdout)
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "simfuzz:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

// trial is the per-scenario record; everything the report needs is captured
// here so aggregation is a deterministic fold in index order.
type trial struct {
	policy policies.Kind
	events int64
	digest uint64
	viol   []check.Violation
	total  int
	seed   uint64
}

func campaign(cfg config, w io.Writer) int {
	master := rng.New(cfg.seed)
	seeds := make([]uint64, cfg.scenarios)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}

	trials, err := runner.Map(cfg.parallel, seeds, func(i int, seed uint64) (trial, error) {
		sc := gen.Generate(rng.New(seed), gen.DefaultOptions())
		suite, err := gen.Run(sc)
		if err != nil {
			return trial{}, fmt.Errorf("scenario %d (seed %#x): %w", i, seed, err)
		}
		vs, total := suite.Violations()
		return trial{
			policy: sc.Policy,
			events: suite.Events(),
			digest: suite.Digest(),
			viol:   vs,
			total:  total,
			seed:   seed,
		}, nil
	})
	if err != nil {
		fmt.Fprintf(w, "simfuzz: %v\n", err)
		return 2
	}

	// Deterministic fold in index order: per-policy tallies and a combined
	// digest chaining every scenario's event-stream digest.
	const fnvOffset, fnvPrime = 0xcbf29ce484222325, 0x100000001b3
	combined := uint64(fnvOffset)
	perPolicy := map[policies.Kind]int{}
	perPolicyViol := map[policies.Kind]int{}
	violations, firstBad := 0, -1
	var events int64
	for i, tr := range trials {
		perPolicy[tr.policy]++
		perPolicyViol[tr.policy] += tr.total
		events += tr.events
		violations += tr.total
		if tr.total > 0 && firstBad < 0 {
			firstBad = i
		}
		for b := 0; b < 64; b += 8 {
			combined = (combined ^ (tr.digest >> b & 0xff)) * fnvPrime
		}
	}

	fmt.Fprintf(w, "simfuzz: %d scenarios, seed %d\n", cfg.scenarios, cfg.seed)
	for _, k := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW} {
		fmt.Fprintf(w, "  %-9s %6d scenarios, %d violations\n", k, perPolicy[k], perPolicyViol[k])
	}
	fmt.Fprintf(w, "  events    %d\n", events)
	fmt.Fprintf(w, "  digest    %#016x\n", combined)

	if violations == 0 {
		fmt.Fprintf(w, "ok: 0 oracle violations\n")
		return 0
	}

	tr := trials[firstBad]
	fmt.Fprintf(w, "FAIL: %d oracle violations across %d scenarios\n", violations, countFailing(trials))
	fmt.Fprintf(w, "first failing scenario %d (seed %#x, policy %s):\n", firstBad, tr.seed, tr.policy)
	for _, v := range tr.viol {
		fmt.Fprintf(w, "  %v\n", v)
	}
	sc := gen.Generate(rng.New(tr.seed), gen.DefaultOptions())
	if cfg.shrink {
		sc = gen.Shrink(sc, gen.Fails, 2000)
	}
	if blob, err := gen.Encode(sc); err == nil {
		fmt.Fprintf(w, "reproducer (shrunk=%v):\n%s\n", cfg.shrink, blob)
	}
	return 1
}

func countFailing(trials []trial) int {
	n := 0
	for _, tr := range trials {
		if tr.total > 0 {
			n++
		}
	}
	return n
}
