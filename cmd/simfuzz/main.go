// Command simfuzz runs a deterministic simulation-fuzzing campaign: it
// generates schedulability-certified random scenarios (internal/gen), runs
// each through the engine with the full oracle suite attached
// (internal/check), and reports any invariant violation together with a
// shrunk reproducer.
//
// The campaign is reproducible bit-for-bit from -seed: scenario seeds are
// pre-drawn sequentially from one master rng, so the output — including the
// combined event-stream digest — is byte-identical for any -parallel value.
// Orthogonally, -workers N shards each trial's simulation itself across N
// OS threads (internal/shard); sharded stepping is exact, so the report is
// also byte-identical for any -workers value.
//
//	simfuzz -scenarios 10000 -seed 1 -parallel 4
//
// Campaign operations (all off the report stream, so the report stays
// byte-identical whether or not anyone is watching):
//
//   - -http :9090 serves /metrics (Prometheus text), /statusz (JSON),
//     /healthz, and /debug/pprof for the duration of the run.
//   - -progress prints a periodic one-line status to stderr.
//   - -runs DIR writes a run.json provenance manifest per invocation
//     (argv, flags, build info, seeds, digest, headline counters).
//   - Each worker carries a flight recorder (a bounded ring of the last
//     -recwindow telemetry events); on a worker panic or an oracle
//     violation a post-mortem bundle (events JSONL + Chrome trace +
//     scenario reproducer + meta.json) is dumped under the run directory.
//
// Exit status: 0 on a clean campaign, 1 when any oracle fired, 2 on setup
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"timedice/internal/check"
	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/gen"
	"timedice/internal/obs"
	"timedice/internal/policies"
	"timedice/internal/prof"
	"timedice/internal/rng"
	"timedice/internal/shard"
	"timedice/internal/vtime"
)

type config struct {
	scenarios int
	seed      uint64
	parallel  int
	// workers is the sharded-stepping worker count inside each trial's
	// simulation (engine.System.SetSharding); 1 runs the sequential step
	// loop. Orthogonal to parallel, which fans whole trials across workers.
	workers   int
	shrink    bool
	window    int    // flight-recorder window, events per worker
	bundleDir string // where post-mortem bundles land; empty disables them

	// checkpoint, when non-empty, is a JSON campaign-state file updated
	// (atomically) after every chunk of checkpointEvery trials; resumeFrom
	// loads one and continues the campaign from its fold position. A resumed
	// campaign's report is byte-identical to the uninterrupted run's: the
	// report is generated purely from the folded state.
	checkpoint      string
	checkpointEvery int
	resumeFrom      string
	// explore, when positive, branches that many engine.Fork futures from up
	// to maxExplorePoints interesting states per scenario (see explore.go).
	explore int
	// stopAfter, when positive, stops the campaign cleanly (exit 0, no
	// report) once at least that many trials are folded — the test hook that
	// simulates an interrupted campaign for the resume round-trip.
	stopAfter int

	prog   *obs.Progress // live campaign state; nil ⇒ campaign makes its own
	ledger *obs.Run      // run manifest; nil-safe

	// injectFailure, when non-zero, forces trial injectFailure-1 to report
	// a synthetic oracle violation (1-based so the zero config is inert).
	// It exists so tests can drive the whole post-mortem path — bundle
	// dump, replay, digest cross-check — without needing a genuinely broken
	// scenario in the corpus.
	injectFailure int
}

func main() {
	var cfg config
	flag.IntVar(&cfg.scenarios, "scenarios", 1000, "number of scenarios to generate and check")
	flag.Uint64Var(&cfg.seed, "seed", 1, "master seed; the whole campaign is a pure function of it")
	flag.IntVar(&cfg.parallel, "parallel", 0, "worker count (<=0: one per CPU); does not affect output")
	flag.IntVar(&cfg.workers, "workers", 1, "sharded-stepping workers inside each simulation (1 = sequential); does not affect output")
	flag.BoolVar(&cfg.shrink, "shrink", true, "minimize the first failing scenario before reporting it")
	flag.IntVar(&cfg.window, "recwindow", obs.DefaultRecorderWindow, "flight-recorder window per worker, in telemetry events")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "write campaign state to this file after every chunk (enables resumption)")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", defaultCheckpointEvery, "trials per chunk between checkpoint writes")
	flag.StringVar(&cfg.resumeFrom, "resume-from", "", "resume a campaign from a -checkpoint file (flags must match)")
	flag.IntVar(&cfg.explore, "explore", 0, "fork-based exploration: futures to branch per interesting state (0 disables)")
	progress := flag.Bool("progress", false, "print a periodic progress line to stderr")
	obsFlags := obs.AddFlags(flag.CommandLine)
	pf := prof.AddFlags(flag.CommandLine)
	flag.Parse()

	if cfg.workers < 1 {
		cfg.workers = 1
	}
	cfg.prog = obs.NewProgress("simfuzz", int64(cfg.scenarios))
	cfg.prog.SetShardWorkers(cfg.workers)
	run, srv, err := obsFlags.Start("simfuzz", flag.CommandLine, cfg.prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfuzz:", err)
		os.Exit(2)
	}
	cfg.ledger = run
	// Bundles land next to run.json when the ledger is on, under the runs
	// root otherwise; an empty -runs disables both.
	cfg.bundleDir = run.Dir()
	if cfg.bundleDir == "" && obsFlags.Runs != "" {
		cfg.bundleDir = obsFlags.Runs
	}

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfuzz:", err)
		run.Finish(2) //nolint:errcheck // exiting anyway
		os.Exit(2)
	}
	var stopReport func()
	if *progress {
		stopReport = cfg.prog.StartReporter(os.Stderr, 2*time.Second)
	}

	code := campaign(cfg, os.Stdout)

	if stopReport != nil {
		stopReport()
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "simfuzz:", err)
		if code == 0 {
			code = 2
		}
	}
	if srv != nil {
		srv.Close() //nolint:errcheck // shutting down
	}
	if err := run.Finish(code); err != nil {
		fmt.Fprintln(os.Stderr, "simfuzz:", err)
	}
	os.Exit(code)
}

// trial is the per-scenario record; everything the report needs is captured
// here so aggregation is a deterministic fold in index order.
type trial struct {
	policy  policies.Kind
	events  int64
	digest  uint64
	viol    []check.Violation
	total   int
	seed    uint64
	explore exploreStats
}

const fnvOffset, fnvPrime = uint64(0xcbf29ce484222325), uint64(0x100000001b3)

// defaultCheckpointEvery is the chunk size between checkpoint writes: large
// enough that checkpoint IO is noise, small enough that an interrupted
// overnight campaign loses minutes, not hours.
const defaultCheckpointEvery = 4096

// campaignState is the complete fold state of a campaign: everything the
// final report derives from. It is what -checkpoint serializes after each
// chunk, so a resumed campaign that finishes the remaining trials prints a
// report byte-identical to the uninterrupted run's.
type campaignState struct {
	Version   int    `json:"version"`
	Scenarios int    `json:"scenarios"`
	Seed      uint64 `json:"seed"`
	Explore   int    `json:"explore"`

	Next          int            `json:"next"` // trials [0, Next) are folded
	Combined      uint64         `json:"combined"`
	Events        int64          `json:"events"`
	Violations    int            `json:"violations"`
	Failing       int            `json:"failing"`
	PerPolicy     map[string]int `json:"perPolicy"`
	PerPolicyViol map[string]int `json:"perPolicyViol"`

	FirstBad    int          `json:"firstBad"` // -1 while clean
	FirstSeed   uint64       `json:"firstSeed,omitempty"`
	FirstPolicy string       `json:"firstPolicy,omitempty"`
	FirstDigest uint64       `json:"firstDigest,omitempty"`
	FirstViol   []string     `json:"firstViol,omitempty"`
	ExploreSum  exploreStats `json:"exploreSum"`
}

func newCampaignState(cfg config) *campaignState {
	return &campaignState{
		Version:       1,
		Scenarios:     cfg.scenarios,
		Seed:          cfg.seed,
		Explore:       cfg.explore,
		Combined:      fnvOffset,
		PerPolicy:     map[string]int{},
		PerPolicyViol: map[string]int{},
		FirstBad:      -1,
	}
}

// fold accumulates trial i (a global campaign index) into the state. Called
// strictly in index order, which makes the combined digest — a chain over
// every scenario's event-stream digest — independent of worker count and of
// where checkpoint boundaries fell.
func (cs *campaignState) fold(i int, tr trial) {
	cs.PerPolicy[tr.policy.String()]++
	cs.PerPolicyViol[tr.policy.String()] += tr.total
	cs.Events += tr.events
	cs.Violations += tr.total
	if tr.total > 0 {
		cs.Failing++
		if cs.FirstBad < 0 {
			cs.FirstBad = i
			cs.FirstSeed = tr.seed
			cs.FirstPolicy = tr.policy.String()
			cs.FirstDigest = tr.digest
			for _, v := range tr.viol {
				cs.FirstViol = append(cs.FirstViol, v.String())
			}
		}
	}
	for b := 0; b < 64; b += 8 {
		cs.Combined = (cs.Combined ^ (tr.digest >> b & 0xff)) * fnvPrime
	}
	cs.ExploreSum.add(tr.explore)
	cs.Next = i + 1
}

// writeCheckpoint atomically replaces path with the serialized state
// (write-to-temp + rename, so a crash mid-write never corrupts a resumable
// checkpoint).
func writeCheckpoint(path string, cs *campaignState) error {
	blob, err := json.MarshalIndent(cs, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	_, werr := tmp.Write(append(blob, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: write %s: %v, %v", path, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

func loadCheckpoint(path string) (*campaignState, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	cs := &campaignState{}
	if err := json.Unmarshal(blob, cs); err != nil {
		return nil, fmt.Errorf("resume: %s: %w", path, err)
	}
	if cs.Version != 1 {
		return nil, fmt.Errorf("resume: %s: unsupported checkpoint version %d", path, cs.Version)
	}
	if cs.PerPolicy == nil {
		cs.PerPolicy = map[string]int{}
	}
	if cs.PerPolicyViol == nil {
		cs.PerPolicyViol = map[string]int{}
	}
	return cs, nil
}

func campaign(cfg config, w io.Writer) int {
	prog := cfg.prog
	if prog == nil {
		prog = obs.NewProgress("simfuzz", int64(cfg.scenarios))
	}
	master := rng.New(cfg.seed)
	seeds := make([]uint64, cfg.scenarios)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}

	cs := newCampaignState(cfg)
	if cfg.resumeFrom != "" {
		loaded, err := loadCheckpoint(cfg.resumeFrom)
		if err != nil {
			fmt.Fprintf(w, "simfuzz: %v\n", err)
			return 2
		}
		if loaded.Scenarios != cfg.scenarios || loaded.Seed != cfg.seed || loaded.Explore != cfg.explore {
			fmt.Fprintf(w, "simfuzz: checkpoint %s is from a different campaign (scenarios %d, seed %d, explore %d; flags say %d, %d, %d)\n",
				cfg.resumeFrom, loaded.Scenarios, loaded.Seed, loaded.Explore, cfg.scenarios, cfg.seed, cfg.explore)
			return 2
		}
		cs = loaded
	}
	every := cfg.checkpointEvery
	if every <= 0 {
		every = defaultCheckpointEvery
	}

	// One flight recorder per worker (the ring is reset at each trial start,
	// so after a failure it holds the tail of exactly the failing run) plus,
	// under -workers N>1, one persistent shard pool per worker that every
	// trial on that worker dispatches onto. MapPooled has no teardown hook,
	// so newState registers each pool for closing after its chunk drains.
	type workerState struct {
		rec  *obs.Recorder
		pool *shard.Pool // nil when cfg.workers == 1
	}
	var (
		poolMu sync.Mutex
		pools  []*shard.Pool
	)
	newState := func() (*workerState, error) {
		st := &workerState{rec: obs.NewRecorder(cfg.window)}
		if cfg.workers > 1 {
			st.pool = shard.NewPool(cfg.workers)
			poolMu.Lock()
			pools = append(pools, st.pool)
			poolMu.Unlock()
		}
		return st, nil
	}
	closePools := func() {
		poolMu.Lock()
		for _, p := range pools {
			p.Close()
		}
		pools = pools[:0]
		poolMu.Unlock()
	}

	for cs.Next < cfg.scenarios {
		start := cs.Next
		end := start + every
		if end > cfg.scenarios {
			end = cfg.scenarios
		}
		trials, err := runner.MapPooled(cfg.parallel, newState, seeds[start:end],
			func(ws *workerState, ci int, seed uint64) (tr trial, err error) {
				rec := ws.rec
				i := start + ci // global campaign index
				prog.TrialStart()
				t0 := time.Now()
				rec.Reset()
				defer func() {
					if p := recover(); p != nil {
						// Dump the live window before the stack unwinds any
						// further: a worker panic is exactly the case where no
						// deterministic replay is available.
						dumpPanicBundle(cfg, i, seed, rec, p)
						err = fmt.Errorf("scenario %d (seed %#x): panic: %v", i, seed, p)
					}
					prog.TrialDone(tr.events, tr.total, time.Since(t0))
				}()
				sc := gen.Generate(rng.New(seed), gen.DefaultOptions())
				var (
					suite *check.Suite
					st    gen.RunStats
				)
				if ws.pool != nil {
					suite, st, err = gen.RunShardedRecorded(sc, rec, ws.pool, 4*cfg.workers)
				} else {
					suite, st, err = gen.RunRecorded(sc, rec)
				}
				if err != nil {
					return trial{}, fmt.Errorf("scenario %d (seed %#x): %w", i, seed, err)
				}
				prog.AddCache(st.CacheHits, st.CacheMisses)
				prog.AddEngine(st.Counters.Decisions, st.Counters.ArenaBytesTouched,
					st.Counters.FixpointIters, st.Counters.InterferenceTerms)
				vs, total := suite.Violations()
				if i+1 == cfg.injectFailure {
					vs = append(vs, check.Violation{Oracle: "injected", Msg: "forced failure (test hook)"})
					total++
				}
				tr = trial{
					policy: sc.Policy,
					events: suite.Events(),
					digest: suite.Digest(),
					viol:   vs,
					total:  total,
					seed:   seed,
				}
				if cfg.explore > 0 {
					est, eviols, err := exploreScenario(sc, cfg.explore)
					if err != nil {
						return trial{}, fmt.Errorf("scenario %d (seed %#x): explore: %w", i, seed, err)
					}
					tr.explore = est
					tr.viol = append(tr.viol, eviols...)
					tr.total += len(eviols)
				}
				return tr, nil
			})
		closePools()
		if err != nil {
			fmt.Fprintf(w, "simfuzz: %v\n", err)
			return 2
		}
		// Deterministic fold in global index order.
		for ci, tr := range trials {
			cs.fold(start+ci, tr)
		}
		if cfg.checkpoint != "" {
			if err := writeCheckpoint(cfg.checkpoint, cs); err != nil {
				fmt.Fprintf(w, "simfuzz: %v\n", err)
				return 2
			}
		}
		if cfg.stopAfter > 0 && cs.Next >= cfg.stopAfter && cs.Next < cfg.scenarios {
			// Test hook: simulate an interruption. The status goes to stderr,
			// never the report stream, so the eventual resumed report stays
			// byte-identical to an uninterrupted run's.
			fmt.Fprintf(os.Stderr, "simfuzz: stopped after %d/%d scenarios (checkpoint %s)\n",
				cs.Next, cfg.scenarios, cfg.checkpoint)
			return 0
		}
	}

	cfg.ledger.SetDigest(cs.Combined)
	cfg.ledger.AddCounter("scenarios", int64(cfg.scenarios))
	cfg.ledger.AddCounter("violations", int64(cs.Violations))
	cfg.ledger.AddCounter("events", cs.Events)

	fmt.Fprintf(w, "simfuzz: %d scenarios, seed %d\n", cfg.scenarios, cfg.seed)
	for _, k := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW} {
		fmt.Fprintf(w, "  %-9s %6d scenarios, %d violations\n", k, cs.PerPolicy[k.String()], cs.PerPolicyViol[k.String()])
	}
	fmt.Fprintf(w, "  events    %d\n", cs.Events)
	if cfg.explore > 0 {
		fmt.Fprintf(w, "  explore   %d points, %d futures, %d distinct, %d control mismatches\n",
			cs.ExploreSum.Points, cs.ExploreSum.Futures, cs.ExploreSum.Distinct, cs.ExploreSum.ControlMismatches)
	}
	fmt.Fprintf(w, "  digest    %#016x\n", cs.Combined)

	if cs.Violations == 0 {
		fmt.Fprintf(w, "ok: 0 oracle violations\n")
		return 0
	}

	fmt.Fprintf(w, "FAIL: %d oracle violations across %d scenarios\n", cs.Violations, cs.Failing)
	fmt.Fprintf(w, "first failing scenario %d (seed %#x, policy %s):\n", cs.FirstBad, cs.FirstSeed, cs.FirstPolicy)
	for _, v := range cs.FirstViol {
		fmt.Fprintf(w, "  %s\n", v)
	}
	dumpViolationBundle(cfg, cs)
	sc := gen.Generate(rng.New(cs.FirstSeed), gen.DefaultOptions())
	if cfg.shrink {
		sc = gen.Shrink(sc, gen.Fails, 2000)
	}
	if blob, err := gen.Encode(sc); err == nil {
		fmt.Fprintf(w, "reproducer (shrunk=%v):\n%s\n", cfg.shrink, blob)
	}
	return 1
}

// dumpViolationBundle re-runs the first failing scenario with a fresh flight
// recorder and writes the post-mortem bundle. The re-run is the determinism
// cross-check: the replay's event-stream digest must equal the live trial's,
// and both land in meta.json so a mismatch is diagnosable from the bundle
// alone. The bundle also embeds a pre-violation engine snapshot
// (state.snapshot + its prefix digest), so diagnosis restores to just before
// the failing step instead of replaying the run from zero. Failures to write
// are reported on stderr and otherwise ignored — the campaign verdict never
// depends on post-mortem IO.
func dumpViolationBundle(cfg config, cs *campaignState) {
	if cfg.bundleDir == "" {
		return
	}
	sc := gen.Generate(rng.New(cs.FirstSeed), gen.DefaultOptions())
	rec := obs.NewRecorder(cfg.window)
	suite, st, err := gen.RunRecorded(sc, rec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfuzz: post-mortem replay: %v\n", err)
		return
	}
	info := obs.BundleInfo{
		Tool:          "simfuzz",
		Reason:        obs.ReasonOracleViolation,
		Detail:        cs.FirstViol,
		Seed:          cs.FirstSeed,
		TrialIndex:    cs.FirstBad,
		Events:        rec.Window(),
		EventsTotal:   rec.Total(),
		EventsDropped: rec.Dropped(),
		Partitions:    partitionNames(sc),
		LiveDigest:    cs.FirstDigest,
		ReplayDigest:  suite.Digest(),
		Counters:      counterMap(st.Counters),
	}
	info.Scenario, _ = gen.Encode(sc)
	// The pre-violation snapshot: the last step boundary before the first
	// oracle hit (or before the horizon, for failures the suite replay does
	// not reproduce, e.g. injected ones).
	if cp, _, err := gen.CheckpointBeforeViolation(sc); err == nil {
		info.Snapshot = cp.State
		info.SnapshotTime = cp.At
		info.PrefixDigest = cp.PrefixDigest
	} else {
		fmt.Fprintf(os.Stderr, "simfuzz: pre-violation checkpoint: %v\n", err)
	}
	dir, err := obs.WriteBundle(cfg.bundleDir, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfuzz: post-mortem bundle: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "simfuzz: post-mortem bundle: %s\n", dir)
	cfg.ledger.AddArtifact(dir)
	if suite.Digest() != cs.FirstDigest {
		fmt.Fprintf(os.Stderr, "simfuzz: WARNING: replay digest %#016x != live digest %#016x — nondeterminism\n",
			suite.Digest(), cs.FirstDigest)
	}
}

// dumpPanicBundle writes the flight-recorder window of a trial whose worker
// panicked. Called from the worker's recover, so it must not panic itself.
func dumpPanicBundle(cfg config, index int, seed uint64, rec *obs.Recorder, p any) {
	if cfg.bundleDir == "" {
		return
	}
	var blob []byte
	sc := gen.Generate(rng.New(seed), gen.DefaultOptions())
	blob, _ = gen.Encode(sc)
	dir, err := obs.WriteBundle(cfg.bundleDir, obs.BundleInfo{
		Tool:          "simfuzz",
		Reason:        obs.ReasonWorkerPanic,
		Detail:        []string{fmt.Sprint(p)},
		Seed:          seed,
		TrialIndex:    index,
		Scenario:      blob,
		Events:        rec.Window(),
		EventsTotal:   rec.Total(),
		EventsDropped: rec.Dropped(),
		Partitions:    partitionNames(sc),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfuzz: post-mortem bundle: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "simfuzz: post-mortem bundle: %s\n", dir)
	cfg.ledger.AddArtifact(dir)
}

func partitionNames(sc gen.Scenario) []string {
	names := make([]string, len(sc.Spec.Partitions))
	for i, p := range sc.Spec.Partitions {
		names[i] = p.Name
	}
	return names
}

func counterMap(c engine.Counters) map[string]int64 {
	return map[string]int64{
		"decisions":        c.Decisions,
		"switches":         c.Switches,
		"idleDecisions":    c.IdleDecisions,
		"busyMicros":       int64(c.BusyTime / vtime.Microsecond),
		"idleMicros":       int64(c.IdleTime / vtime.Microsecond),
		"deadlineMisses":   c.DeadlineMisses,
		"inversionWindows": c.InversionWindows,
		"minAdvances":      c.MinAdvances,
	}
}
