package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCampaignParallelInvariance is the CLI's determinism contract: the full
// report — counts, event totals, combined digest — is byte-identical
// whatever the worker count, because scenario seeds are pre-drawn and the
// fold runs in index order.
func TestCampaignParallelInvariance(t *testing.T) {
	base := config{scenarios: 150, seed: 5, parallel: 1, shrink: false}
	var seq, par bytes.Buffer
	if code := campaign(base, &seq); code != 0 {
		t.Fatalf("sequential campaign exited %d:\n%s", code, seq.String())
	}
	cfg4 := base
	cfg4.parallel = 4
	if code := campaign(cfg4, &par); code != 0 {
		t.Fatalf("parallel campaign exited %d:\n%s", code, par.String())
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("-parallel 1 and -parallel 4 outputs differ:\n--- parallel 1\n%s--- parallel 4\n%s", seq.String(), par.String())
	}
}

// TestCampaignRepeatable: the same seed reproduces the same report across
// invocations in one process (fresh rng state each call).
func TestCampaignRepeatable(t *testing.T) {
	cfg := config{scenarios: 60, seed: 9, parallel: 2, shrink: false}
	var a, b bytes.Buffer
	if code := campaign(cfg, &a); code != 0 {
		t.Fatalf("campaign exited %d:\n%s", code, a.String())
	}
	if code := campaign(cfg, &b); code != 0 {
		t.Fatalf("campaign exited %d:\n%s", code, b.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two runs of the same campaign differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestCampaignSeedSensitivity: different master seeds draw different
// campaigns (digest must move).
func TestCampaignSeedSensitivity(t *testing.T) {
	var a, b bytes.Buffer
	campaign(config{scenarios: 30, seed: 1, parallel: 2}, &a)
	campaign(config{scenarios: 30, seed: 2, parallel: 2}, &b)
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("campaigns with different seeds produced identical reports")
	}
}

// TestForcedViolationBundle drives the post-mortem path end to end: a forced
// oracle violation makes the campaign exit 1 and dump a bundle whose
// replayed event digest equals the live run's — the determinism cross-check
// recorded in meta.json.
func TestForcedViolationBundle(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		scenarios:     5,
		seed:          5,
		parallel:      2,
		shrink:        false,
		bundleDir:     dir,
		injectFailure: 3, // trial index 2 reports a synthetic violation
	}
	var out bytes.Buffer
	if code := campaign(cfg, &out); code != 1 {
		t.Fatalf("campaign exited %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "first failing scenario 2") {
		t.Fatalf("report does not blame trial 2:\n%s", out.String())
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bundle string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "postmortem-simfuzz-") && strings.HasSuffix(e.Name(), "-oracle-violation") {
			bundle = filepath.Join(dir, e.Name())
		}
	}
	if bundle == "" {
		t.Fatalf("no oracle-violation bundle under %s (found %v)", dir, entries)
	}

	var meta struct {
		Reason       string   `json:"reason"`
		TrialIndex   int      `json:"trialIndex"`
		LiveDigest   string   `json:"liveDigest"`
		ReplayDigest string   `json:"replayDigest"`
		Detail       []string `json:"detail"`
		Files        []string `json:"files"`
		SnapshotTime int64    `json:"snapshotTimeMicros"`
		PrefixDigest string   `json:"prefixDigest"`
	}
	mb, err := os.ReadFile(filepath.Join(bundle, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mb, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.TrialIndex != 2 {
		t.Fatalf("bundle blames trial %d, want 2", meta.TrialIndex)
	}
	if meta.LiveDigest == "" || meta.LiveDigest != meta.ReplayDigest {
		t.Fatalf("replay digest %q != live digest %q — the re-run diverged from the recorded trial", meta.ReplayDigest, meta.LiveDigest)
	}
	if len(meta.Detail) == 0 || !strings.Contains(meta.Detail[0], "injected") {
		t.Fatalf("detail = %v, want the forced violation message", meta.Detail)
	}
	// The reproducer, event dumps, and pre-violation snapshot ride along.
	for _, f := range []string{"scenario.json", "events.jsonl", "events.trace.json", "state.snapshot"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Fatalf("bundle file missing: %v", err)
		}
	}
	if meta.PrefixDigest == "" {
		t.Fatal("meta.json lacks prefixDigest for the embedded snapshot")
	}
}

// TestBundleDirDisabled: without a bundle dir (empty -runs), a failing
// campaign still reports but writes nothing.
func TestBundleDirDisabled(t *testing.T) {
	var out bytes.Buffer
	cfg := config{scenarios: 3, seed: 5, parallel: 1, injectFailure: 1}
	if code := campaign(cfg, &out); code != 1 {
		t.Fatalf("campaign exited %d, want 1", code)
	}
}

// TestCheckpointResume is the ISSUE acceptance pin for -checkpoint /
// -resume-from: interrupt a campaign mid-flight, resume it from the
// checkpoint file, and require the resumed report to be byte-identical to
// the uninterrupted run's.
func TestCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.checkpoint")
	base := config{scenarios: 40, seed: 7, parallel: 2, shrink: false}

	var want bytes.Buffer
	if code := campaign(base, &want); code != 0 {
		t.Fatalf("uninterrupted campaign exited %d:\n%s", code, want.String())
	}

	interrupted := base
	interrupted.checkpoint = ckpt
	interrupted.checkpointEvery = 10
	interrupted.stopAfter = 15
	var mid bytes.Buffer
	if code := campaign(interrupted, &mid); code != 0 {
		t.Fatalf("interrupted campaign exited %d:\n%s", code, mid.String())
	}
	if mid.Len() != 0 {
		t.Fatalf("interrupted campaign wrote to the report stream:\n%s", mid.String())
	}
	cs, err := loadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Next < 15 || cs.Next >= base.scenarios {
		t.Fatalf("checkpoint folded %d trials, want in [15, %d)", cs.Next, base.scenarios)
	}

	resumed := interrupted
	resumed.stopAfter = 0
	resumed.resumeFrom = ckpt
	var got bytes.Buffer
	if code := campaign(resumed, &got); code != 0 {
		t.Fatalf("resumed campaign exited %d:\n%s", code, got.String())
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- uninterrupted\n%s--- resumed\n%s", want.String(), got.String())
	}
	// The final checkpoint covers the whole campaign.
	if cs, err := loadCheckpoint(ckpt); err != nil || cs.Next != base.scenarios {
		t.Fatalf("final checkpoint Next = %d (err %v), want %d", cs.Next, err, base.scenarios)
	}
}

// TestCheckpointResumeMismatch: a checkpoint from a different campaign
// (other seed / scenario count / explore setting) must be refused, exit 2.
func TestCheckpointResumeMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.checkpoint")
	cfg := config{scenarios: 12, seed: 7, parallel: 1, shrink: false, checkpoint: ckpt, checkpointEvery: 4, stopAfter: 4}
	var out bytes.Buffer
	if code := campaign(cfg, &out); code != 0 {
		t.Fatalf("setup campaign exited %d:\n%s", code, out.String())
	}

	bad := cfg
	bad.stopAfter = 0
	bad.resumeFrom = ckpt
	bad.seed = 8 // different campaign
	out.Reset()
	if code := campaign(bad, &out); code != 2 {
		t.Fatalf("resume with mismatched seed exited %d, want 2:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "different campaign") {
		t.Fatalf("mismatch not diagnosed:\n%s", out.String())
	}
}

// TestExploreCampaign smokes -explore end to end: the report gains the
// explore summary line, stays clean (no fork-control digest mismatches —
// that is the Fork contract riding inside every campaign), and remains
// independent of the worker count.
func TestExploreCampaign(t *testing.T) {
	cfg := config{scenarios: 8, seed: 3, parallel: 1, shrink: false, explore: 2}
	var seq, par bytes.Buffer
	if code := campaign(cfg, &seq); code != 0 {
		t.Fatalf("explore campaign exited %d:\n%s", code, seq.String())
	}
	if !strings.Contains(seq.String(), "explore") || !strings.Contains(seq.String(), "0 control mismatches") {
		t.Fatalf("report lacks a clean explore line:\n%s", seq.String())
	}
	cfg4 := cfg
	cfg4.parallel = 4
	if code := campaign(cfg4, &par); code != 0 {
		t.Fatalf("explore campaign exited %d:\n%s", code, par.String())
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("explore report depends on worker count:\n--- parallel 1\n%s--- parallel 4\n%s", seq.String(), par.String())
	}
}
