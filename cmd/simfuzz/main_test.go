package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCampaignParallelInvariance is the CLI's determinism contract: the full
// report — counts, event totals, combined digest — is byte-identical
// whatever the worker count, because scenario seeds are pre-drawn and the
// fold runs in index order.
func TestCampaignParallelInvariance(t *testing.T) {
	base := config{scenarios: 150, seed: 5, parallel: 1, shrink: false}
	var seq, par bytes.Buffer
	if code := campaign(base, &seq); code != 0 {
		t.Fatalf("sequential campaign exited %d:\n%s", code, seq.String())
	}
	cfg4 := base
	cfg4.parallel = 4
	if code := campaign(cfg4, &par); code != 0 {
		t.Fatalf("parallel campaign exited %d:\n%s", code, par.String())
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("-parallel 1 and -parallel 4 outputs differ:\n--- parallel 1\n%s--- parallel 4\n%s", seq.String(), par.String())
	}
}

// TestCampaignRepeatable: the same seed reproduces the same report across
// invocations in one process (fresh rng state each call).
func TestCampaignRepeatable(t *testing.T) {
	cfg := config{scenarios: 60, seed: 9, parallel: 2, shrink: false}
	var a, b bytes.Buffer
	if code := campaign(cfg, &a); code != 0 {
		t.Fatalf("campaign exited %d:\n%s", code, a.String())
	}
	if code := campaign(cfg, &b); code != 0 {
		t.Fatalf("campaign exited %d:\n%s", code, b.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two runs of the same campaign differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestCampaignSeedSensitivity: different master seeds draw different
// campaigns (digest must move).
func TestCampaignSeedSensitivity(t *testing.T) {
	var a, b bytes.Buffer
	campaign(config{scenarios: 30, seed: 1, parallel: 2}, &a)
	campaign(config{scenarios: 30, seed: 2, parallel: 2}, &b)
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("campaigns with different seeds produced identical reports")
	}
}

// TestForcedViolationBundle drives the post-mortem path end to end: a forced
// oracle violation makes the campaign exit 1 and dump a bundle whose
// replayed event digest equals the live run's — the determinism cross-check
// recorded in meta.json.
func TestForcedViolationBundle(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		scenarios:     5,
		seed:          5,
		parallel:      2,
		shrink:        false,
		bundleDir:     dir,
		injectFailure: 3, // trial index 2 reports a synthetic violation
	}
	var out bytes.Buffer
	if code := campaign(cfg, &out); code != 1 {
		t.Fatalf("campaign exited %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "first failing scenario 2") {
		t.Fatalf("report does not blame trial 2:\n%s", out.String())
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bundle string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "postmortem-simfuzz-") && strings.HasSuffix(e.Name(), "-oracle-violation") {
			bundle = filepath.Join(dir, e.Name())
		}
	}
	if bundle == "" {
		t.Fatalf("no oracle-violation bundle under %s (found %v)", dir, entries)
	}

	var meta struct {
		Reason       string   `json:"reason"`
		TrialIndex   int      `json:"trialIndex"`
		LiveDigest   string   `json:"liveDigest"`
		ReplayDigest string   `json:"replayDigest"`
		Detail       []string `json:"detail"`
		Files        []string `json:"files"`
	}
	mb, err := os.ReadFile(filepath.Join(bundle, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mb, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.TrialIndex != 2 {
		t.Fatalf("bundle blames trial %d, want 2", meta.TrialIndex)
	}
	if meta.LiveDigest == "" || meta.LiveDigest != meta.ReplayDigest {
		t.Fatalf("replay digest %q != live digest %q — the re-run diverged from the recorded trial", meta.ReplayDigest, meta.LiveDigest)
	}
	if len(meta.Detail) == 0 || !strings.Contains(meta.Detail[0], "injected") {
		t.Fatalf("detail = %v, want the forced violation message", meta.Detail)
	}
	// The reproducer and event dumps ride along.
	for _, f := range []string{"scenario.json", "events.jsonl", "events.trace.json"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Fatalf("bundle file missing: %v", err)
		}
	}
}

// TestBundleDirDisabled: without a bundle dir (empty -runs), a failing
// campaign still reports but writes nothing.
func TestBundleDirDisabled(t *testing.T) {
	var out bytes.Buffer
	cfg := config{scenarios: 3, seed: 5, parallel: 1, injectFailure: 1}
	if code := campaign(cfg, &out); code != 1 {
		t.Fatalf("campaign exited %d, want 1", code)
	}
}
