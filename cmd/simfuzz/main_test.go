package main

import (
	"bytes"
	"testing"
)

// TestCampaignParallelInvariance is the CLI's determinism contract: the full
// report — counts, event totals, combined digest — is byte-identical
// whatever the worker count, because scenario seeds are pre-drawn and the
// fold runs in index order.
func TestCampaignParallelInvariance(t *testing.T) {
	base := config{scenarios: 150, seed: 5, parallel: 1, shrink: false}
	var seq, par bytes.Buffer
	if code := campaign(base, &seq); code != 0 {
		t.Fatalf("sequential campaign exited %d:\n%s", code, seq.String())
	}
	cfg4 := base
	cfg4.parallel = 4
	if code := campaign(cfg4, &par); code != 0 {
		t.Fatalf("parallel campaign exited %d:\n%s", code, par.String())
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("-parallel 1 and -parallel 4 outputs differ:\n--- parallel 1\n%s--- parallel 4\n%s", seq.String(), par.String())
	}
}

// TestCampaignRepeatable: the same seed reproduces the same report across
// invocations in one process (fresh rng state each call).
func TestCampaignRepeatable(t *testing.T) {
	cfg := config{scenarios: 60, seed: 9, parallel: 2, shrink: false}
	var a, b bytes.Buffer
	if code := campaign(cfg, &a); code != 0 {
		t.Fatalf("campaign exited %d:\n%s", code, a.String())
	}
	if code := campaign(cfg, &b); code != 0 {
		t.Fatalf("campaign exited %d:\n%s", code, b.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two runs of the same campaign differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestCampaignSeedSensitivity: different master seeds draw different
// campaigns (digest must move).
func TestCampaignSeedSensitivity(t *testing.T) {
	var a, b bytes.Buffer
	campaign(config{scenarios: 30, seed: 1, parallel: 2}, &a)
	campaign(config{scenarios: 30, seed: 2, parallel: 2}, &b)
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("campaigns with different seeds produced identical reports")
	}
}
