package main

// Fork-based exploration (-explore N): instead of judging each scenario by a
// single trajectory, the campaign re-runs it step-wise and, at states the
// oracles flag as interesting — an inversion window opening, a budget
// depletion, a completion that lands near its deadline — branches N futures
// off an engine.Fork with freshly seeded RNGs, measuring how many distinct
// outcomes the randomized policy can still reach from that state. A control
// fork (same state, same RNG position) runs alongside each branch point and
// must reproduce the parent's final event digest exactly; a mismatch means
// Fork failed the digest-identity contract and is reported as an oracle
// violation of the synthetic "fork-control" oracle.

import (
	"fmt"

	"timedice/internal/check"
	"timedice/internal/engine"
	"timedice/internal/gen"
	"timedice/internal/rng"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

// maxExplorePoints bounds the branch points per scenario so a pathologically
// eventful scenario cannot blow the campaign up quadratically.
const maxExplorePoints = 4

// exploreStats aggregates one scenario's (or the whole campaign's)
// exploration outcome.
type exploreStats struct {
	Points            int64 `json:"points"`            // branch points taken
	Futures           int64 `json:"futures"`           // seeded futures run
	Distinct          int64 `json:"distinct"`          // Σ distinct final digests per point
	ControlMismatches int64 `json:"controlMismatches"` // control forks that broke digest identity
}

func (a *exploreStats) add(b exploreStats) {
	a.Points += b.Points
	a.Futures += b.Futures
	a.Distinct += b.Distinct
	a.ControlMismatches += b.ControlMismatches
}

// foldSink folds events into a running event-stream digest.
type foldSink struct{ h uint64 }

func (s *foldSink) Event(e telemetry.Event) { s.h = check.FoldEvent(s.h, e) }

// interestSink folds the parent run's digest and raises the interesting flag
// on the oracle-adjacent events worth branching from.
type interestSink struct {
	foldSink
	interesting bool
	// deadlines[partition][task] is the task's effective relative deadline,
	// from the scenario spec (spec order == engine priority order).
	deadlines []map[string]vtime.Duration
}

func (s *interestSink) Event(e telemetry.Event) {
	s.foldSink.Event(e)
	switch e.Kind {
	case telemetry.KindInversionOpen, telemetry.KindBudgetDeplete:
		s.interesting = true
	case telemetry.KindTaskComplete:
		// WCRT near-miss: the response time reached 90% of the deadline.
		if d := s.deadlines[e.Partition][e.Task]; d > 0 && e.Dur*10 >= d*9 {
			s.interesting = true
		}
	}
}

// runForkDigest runs a fork to the horizon, folding its events onto seed, and
// returns the final digest.
func runForkDigest(f *engine.System, seed uint64, horizon vtime.Time) uint64 {
	ds := &foldSink{h: seed}
	f.AttachTelemetry(ds)
	f.Run(horizon)
	f.FlushTelemetry()
	return ds.h
}

// exploreScenario re-runs sc step-wise and branches `futures` forks at up to
// maxExplorePoints interesting boundaries. Any control-fork digest mismatch
// is returned as a violation.
func exploreScenario(sc gen.Scenario, futures int) (exploreStats, []check.Violation, error) {
	sys, err := gen.Build(sc)
	if err != nil {
		return exploreStats{}, nil, err
	}
	sink := &interestSink{foldSink: foldSink{h: check.DigestSeed}}
	for _, p := range sc.Spec.Partitions {
		m := make(map[string]vtime.Duration, len(p.Tasks))
		for _, t := range p.Tasks {
			d := t.Deadline
			if d == 0 {
				d = t.Period
			}
			m[t.Name] = d
		}
		sink.deadlines = append(sink.deadlines, m)
	}
	sys.AttachTelemetry(sink)

	horizon := vtime.Time(0).Add(sc.Horizon)
	seeder := rng.New(sc.Seed ^ 0x9e3779b97f4a7c15)
	var st exploreStats
	type control struct {
		at     vtime.Time
		digest uint64
	}
	var controls []control
	distinct := make(map[uint64]struct{})
	for sys.Now() < horizon {
		sink.interesting = false
		sys.Step(horizon)
		if !sink.interesting || st.Points >= maxExplorePoints || sys.Now() >= horizon {
			continue
		}
		st.Points++
		// Control: same state, same RNG position — its suffix, folded onto
		// the parent's prefix digest, must land on the parent's final digest.
		controls = append(controls, control{
			at:     sys.Now(),
			digest: runForkDigest(sys.Fork(), sink.h, horizon),
		})
		// Futures: same state, fresh seeds — how many schedules can the
		// policy still reach from here?
		clear(distinct)
		for k := 0; k < futures; k++ {
			f := sys.Fork()
			f.Rand.Seed(seeder.Uint64())
			distinct[runForkDigest(f, check.DigestSeed, horizon)] = struct{}{}
			st.Futures++
		}
		st.Distinct += int64(len(distinct))
	}
	sys.FlushTelemetry()

	var viols []check.Violation
	for _, c := range controls {
		if c.digest != sink.h {
			st.ControlMismatches++
			viols = append(viols, check.Violation{
				Oracle: "fork-control", Time: c.at,
				Msg: fmt.Sprintf("control fork digest %#016x != parent %#016x", c.digest, sink.h),
			})
		}
	}
	return st, viols, nil
}
