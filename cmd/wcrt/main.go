// Command wcrt prints Table II of the paper: the analytic worst-case
// response time of every task of the Table I system under NoRandom (Davis &
// Burns hierarchical analysis) and under TimeDice (Eqs. 4–5), next to
// empirical maxima measured from simulation.
//
// Usage:
//
//	wcrt                 # analytic only (instant)
//	wcrt -empirical 60   # plus 60 simulated seconds of measurement
package main

import (
	"flag"
	"fmt"
	"os"

	"timedice/internal/analysis"
	"timedice/internal/experiments"
	"timedice/internal/model"
	"timedice/internal/obs"
	"timedice/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wcrt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wcrt", flag.ContinueOnError)
	empirical := fs.Int("empirical", 0, "simulated seconds of empirical measurement (0 = analytic only)")
	alpha := fs.Float64("alpha", workload.DefaultAlpha, "budget fraction B_i = alpha*T_i")
	beta := fs.Float64("beta", workload.DefaultBeta, "WCET fraction e_ij = beta*p_ij")
	seed := fs.Uint64("seed", 1, "random seed for the empirical run")
	parallel := fs.Int("parallel", 0, "trial workers for the empirical run: 0 = one per CPU, 1 = sequential")
	configPath := fs.String("config", "", "analyze a JSON system spec instead of Table I (analytic only)")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ledger, srv, err := obsFlags.Start("wcrt", fs, nil)
	if err != nil {
		return err
	}
	exitCode := 1
	defer func() {
		if srv != nil {
			srv.Close() //nolint:errcheck // shutting down
		}
		ledger.Finish(exitCode) //nolint:errcheck // the analysis error dominates
	}()
	finish := func(err error) error {
		if err == nil {
			exitCode = 0
		}
		return err
	}

	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		spec, err := model.ReadSystem(f)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		return finish(printAnalysis(spec))
	}

	spec := workload.TableI(*alpha, *beta)
	if *empirical > 0 {
		sc := experiments.Scale{SimSeconds: *empirical, Seed: *seed, Parallel: *parallel}
		_, err := experiments.Table02(sc, os.Stdout)
		return finish(err)
	}

	return finish(printAnalysis(spec))
}

func printAnalysis(spec model.SystemSpec) error {
	rows, err := analysis.AnalyzeSystem(spec)
	if err != nil {
		return err
	}
	fmt.Printf("Analytic WCRT (ms) for %s\n", spec.Name)
	fmt.Printf("%-8s %9s %9s %9s %9s %6s\n", "task", "deadline", "NoRandom", "TimeDice", "TD-NR", "sched")
	for _, r := range rows {
		fmt.Printf("%-8s %9.2f %9.2f %9.2f %9.2f %6v\n",
			r.Task, r.Deadline.Milliseconds(), r.NoRandom.Milliseconds(), r.TimeDice.Milliseconds(),
			r.TimeDice.Milliseconds()-r.NoRandom.Milliseconds(), r.Schedulable())
	}
	return nil
}
