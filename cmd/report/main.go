// Command report runs the complete evaluation — every table and figure of
// the paper plus the extension sweeps — and writes one self-contained
// markdown report. It is the "regenerate everything" entry point:
//
//	report -out report.md -scale quick     # minutes
//	report -out report.md -scale full      # paper-scale
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"timedice/internal/experiments"
	"timedice/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	outPath := fs.String("out", "report.md", "output markdown file (- for stdout)")
	scaleName := fs.String("scale", "quick", "experiment scale: quick | full")
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "trial workers: 0 = one per CPU, 1 = sequential")
	stream := fs.Bool("stream", false, "streaming (constant-memory sketch) aggregation for campaign/fig16; exact is the default")
	progress := fs.Bool("progress", false, "print a periodic progress line to stderr")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := experiments.Quick()
	if strings.EqualFold(*scaleName, "full") {
		sc = experiments.Full()
	}
	sc.Seed = *seed
	sc.Parallel = *parallel
	sc.Stream = *stream

	var w io.Writer
	if *outPath == "-" {
		w = os.Stdout
	} else {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "report: close:", err)
			}
		}()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}

	fmt.Fprintf(w, "# TimeDice evaluation report\n\n")
	fmt.Fprintf(w, "scale=%s seed=%d generated=%s\n\n", *scaleName, *seed,
		time.Now().Format(time.RFC3339))

	sections := []struct {
		title string
		fn    func(experiments.Scale, io.Writer) error
	}{
		{"Fig. 4 — covert-channel feasibility", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Fig04(s, w) })},
		{"Fig. 6 — schedule traces", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Fig06(s, w) })},
		{"Fig. 12 — mitigation grid", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Fig12(s, w) })},
		{"Fig. 13 — execution vectors under TimeDice", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Fig13(s, w) })},
		{"Fig. 14 — response-time distributions", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Fig14(s, w) })},
		{"Fig. 15 — channel capacity", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Fig15(s, w) })},
		{"Fig. 16 — task response times", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Fig16(s, w) })},
		{"Table II — WCRTs", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Table02(s, w) })},
		{"Table III — car responsiveness", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Table03(s, w) })},
		{"Tables IV–V / Fig. 17 — overhead", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Overhead(s, w) })},
		{"Fig. 18 / §V-C — BLINDER comparison", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Fig18(s, w) })},
		{"§III-e — car covert channel", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.CarChannel(s, w) })},
		{"Extension — ablations", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Ablation(s, w) })},
		{"Extension — signaling rate", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Rate(s, w) })},
		{"Extension — unprincipled randomization", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Naive(s, w) })},
		{"Extension — schedule randomness", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Randomness(s, w) })},
		{"Extension — utilization sweep", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.UtilizationSweep(s, w) })},
		{"Extension — concurrent pairs", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.MultiPairReport(s, w) })},
		{"Extension — receiver zoo", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.ReceiverZoo(s, w) })},
		{"Extension — sender detection", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Detection(s, w) })},
		{"Extension — cross-seed campaign", wrap(func(s experiments.Scale, w io.Writer) (any, error) { return experiments.Campaign(s, w) })},
	}
	// Campaign ops: one Progress "trial" per section, the run ledger, and
	// the exposition server while the (potentially hours-long at -scale
	// full) report regenerates.
	prog := obs.NewProgress("report", int64(len(sections)))
	ledger, srv, err := obsFlags.Start("report", fs, prog)
	if err != nil {
		return err
	}
	exitCode := 1
	defer func() {
		if srv != nil {
			srv.Close() //nolint:errcheck // shutting down
		}
		ledger.Finish(exitCode) //nolint:errcheck // the section error dominates
	}()
	if *progress {
		defer prog.StartReporter(os.Stderr, 2*time.Second)()
	}

	for _, sec := range sections {
		fmt.Fprintf(w, "## %s\n\n```\n", sec.title)
		prog.TrialStart()
		start := time.Now()
		err := sec.fn(sc, w)
		prog.TrialDone(0, 0, time.Since(start))
		if err != nil {
			return fmt.Errorf("%s: %w", sec.title, err)
		}
		ledger.AddCounter("sections", 1)
		fmt.Fprintf(w, "```\n(%.1fs)\n\n", time.Since(start).Seconds())
	}
	if *outPath != "-" {
		if abs, err := filepath.Abs(*outPath); err == nil {
			ledger.AddArtifact(abs)
		} else {
			ledger.AddArtifact(*outPath)
		}
		fmt.Fprintln(os.Stderr, "wrote", *outPath)
	}
	exitCode = 0
	return nil
}

// wrap adapts a result-returning harness to an error-only section function.
func wrap(fn func(experiments.Scale, io.Writer) (any, error)) func(experiments.Scale, io.Writer) error {
	return func(s experiments.Scale, w io.Writer) error {
		_, err := fn(s, w)
		return err
	}
}
