// Command timedice-sim runs a configured system under a chosen global
// scheduling policy and prints a schedule trace (ASCII Gantt or CSV) plus
// summary statistics — the tool behind the paper's Fig. 6.
//
// Usage:
//
//	timedice-sim -system three -policy TimeDiceW -dur 100ms -trace gantt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/trace"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "timedice-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("timedice-sim", flag.ContinueOnError)
	systemName := fs.String("system", "three", "workload: three | tableI | tableI-light | car | tableI-x2 | tableI-x4")
	configPath := fs.String("config", "", "path to a JSON system spec (overrides -system)")
	policyName := fs.String("policy", "TimeDiceW", "policy: NoRandom | TimeDiceU | TimeDiceW | TDMA")
	dur := fs.Duration("dur", 100*time.Millisecond, "simulated duration")
	traceMode := fs.String("trace", "gantt", "trace output: gantt | csv | none")
	pngPath := fs.String("png", "", "also write the trace as a PNG Gantt chart to this path")
	cell := fs.Duration("cell", time.Millisecond, "gantt cell size")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec model.SystemSpec
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		spec, err = model.ReadSystem(f)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
	} else {
		var err error
		spec, err = systemByName(*systemName)
		if err != nil {
			return err
		}
	}
	kind, err := policyByName(*policyName)
	if err != nil {
		return err
	}

	built, err := spec.Build()
	if err != nil {
		return err
	}
	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		return err
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(*seed))
	if err != nil {
		return err
	}

	horizon := vtime.Time(vtime.Duration(dur.Microseconds()))
	rec := trace.NewRecorder(0, horizon)
	if *traceMode != "none" || *pngPath != "" {
		sys.TraceFn = rec.Hook()
	}
	sys.Run(horizon)

	if *pngPath != "" {
		f, err := os.Create(*pngPath)
		if err != nil {
			return err
		}
		err = rec.GanttPNG(len(spec.Partitions), vtime.Duration((*cell).Microseconds()), 8, f)
		if closeErr := f.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			return fmt.Errorf("write png: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *pngPath)
	}

	names := make([]string, len(spec.Partitions))
	for i, p := range spec.Partitions {
		names[i] = p.Name
	}
	switch *traceMode {
	case "gantt":
		fmt.Printf("system=%s policy=%s dur=%v seed=%d\n", spec.Name, pol.Name(), dur, *seed)
		fmt.Print(rec.Gantt(names, vtime.Duration((*cell).Microseconds())))
	case "csv":
		fmt.Print(rec.CSV())
	case "none":
	default:
		return fmt.Errorf("unknown trace mode %q", *traceMode)
	}

	c := sys.Counters
	secs := vtime.Duration(dur.Microseconds()).Seconds()
	fmt.Printf("\ndecisions=%d (%.1f/s) switches=%d (%.1f/s) busy=%.1f%% idle=%.1f%%\n",
		c.Decisions, float64(c.Decisions)/secs, c.Switches, float64(c.Switches)/secs,
		100*c.BusyTime.Seconds()/secs, 100*c.IdleTime.Seconds()/secs)
	for i, p := range spec.Partitions {
		fmt.Printf("%-12s budget=%v/%v  cpu=%v (%.1f%%)\n",
			p.Name, p.Budget, p.Period, sys.PartitionTime(i),
			100*sys.PartitionTime(i).Seconds()/secs)
	}
	return nil
}

func systemByName(name string) (model.SystemSpec, error) {
	switch strings.ToLower(name) {
	case "three":
		return workload.ThreePartition(), nil
	case "tablei", "table1":
		return workload.TableIBase(), nil
	case "tablei-light", "table1-light":
		return workload.TableILight(), nil
	case "car":
		return workload.Car(), nil
	case "tablei-x2":
		return workload.Scale(workload.TableIBase(), 2), nil
	case "tablei-x4":
		return workload.Scale(workload.TableIBase(), 4), nil
	default:
		return model.SystemSpec{}, fmt.Errorf("unknown system %q", name)
	}
}

func policyByName(name string) (policies.Kind, error) {
	switch strings.ToLower(name) {
	case "norandom", "nr":
		return policies.NoRandom, nil
	case "timediceu", "tdu":
		return policies.TimeDiceU, nil
	case "timedicew", "tdw", "timedice", "td":
		return policies.TimeDiceW, nil
	case "tdma":
		return policies.TDMA, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}
