package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSystemByName(t *testing.T) {
	cases := map[string]int{
		"three":        3,
		"tableI":       5,
		"tablei-light": 5,
		"car":          4,
		"tableI-x2":    10,
		"tableI-x4":    20,
	}
	for name, wantParts := range cases {
		spec, err := systemByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(spec.Partitions) != wantParts {
			t.Errorf("%s: %d partitions, want %d", name, len(spec.Partitions), wantParts)
		}
	}
	if _, err := systemByName("nope"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"NoRandom", "nr", "TimeDiceU", "tdu", "TimeDiceW", "td", "timedice", "TDMA"} {
		if _, err := policyByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := policyByName("rr"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Smoke the whole CLI path including PNG and config loading.
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "sys.json")
	png := filepath.Join(dir, "out.png")
	const doc = `{"name":"t","partitions":[
	  {"name":"A","periodMillis":10,"budgetMillis":2,
	   "tasks":[{"name":"a","periodMillis":20,"wcetMillis":2}]}]}`
	if err := os.WriteFile(cfgPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-config", cfgPath, "-policy", "TimeDiceW", "-dur", "50ms", "-trace", "none", "-png", png})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(png); err != nil || st.Size() == 0 {
		t.Errorf("png not written: %v", err)
	}
	if err := run([]string{"-system", "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown system") {
		t.Errorf("bogus system: %v", err)
	}
	if err := run([]string{"-trace", "wat"}); err == nil {
		t.Error("bad trace mode accepted")
	}
}
