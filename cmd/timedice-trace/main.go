// Command timedice-trace runs a named scenario under a chosen global
// scheduling policy with full telemetry attached and writes the observability
// artifacts:
//
//	<out>/trace.json    Chrome trace-event JSON — open in Perfetto
//	                    (https://ui.perfetto.dev) or chrome://tracing; one
//	                    track per partition plus policy-decision and
//	                    inversion-window tracks
//	<out>/events.jsonl  the full structured event log, one event per line
//	<out>/metrics.txt   metrics-registry dump (human-readable)
//	<out>/metrics.csv   metrics-registry dump (machine-readable)
//
// and prints the run summary to stdout. With -summary FILE it instead
// recomputes and prints the summary from a previously saved events.jsonl —
// the offline audit path.
//
// Usage:
//
//	timedice-trace -scenario tableI -policy TimeDiceW -dur 2s -seed 1 -out trace-out
//	timedice-trace -summary trace-out/events.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "timedice-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("timedice-trace", flag.ContinueOnError)
	scenario := fs.String("scenario", "tableI", "scenario: tableI | tableI-light | covert | car | three")
	policyName := fs.String("policy", "TimeDiceW", "policy: NoRandom | TimeDiceU | TimeDiceW | TDMA")
	dur := fs.Duration("dur", 2*time.Second, "simulated duration")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "trace-out", "output directory for trace/event/metrics artifacts")
	summaryPath := fs.String("summary", "", "print the summary of a saved events.jsonl and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *summaryPath != "" {
		return printSummary(*summaryPath, stdout)
	}

	res, err := executeTrace(traceConfig{
		Scenario: *scenario,
		Policy:   *policyName,
		Dur:      vtime.Duration(dur.Microseconds()),
		Seed:     *seed,
		OutDir:   *out,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "scenario %s under %s for %v (seed %d)\nartifacts in %s: trace.json, events.jsonl, metrics.txt, metrics.csv\n\n",
		*scenario, *policyName, vtime.Duration(dur.Microseconds()), *seed, *out)
	return res.Summary.WriteText(stdout, res.PartitionNames)
}

func printSummary(path string, stdout *os.File) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		return err
	}
	sum := telemetry.Summarize(events)
	fmt.Fprintf(stdout, "summary of %s:\n", path)
	return sum.WriteText(stdout, nil)
}

// traceConfig parameterizes one traced run.
type traceConfig struct {
	Scenario string
	Policy   string
	Dur      vtime.Duration
	Seed     uint64
	OutDir   string
}

// traceResult reports what a traced run produced, for the CLI output and the
// round-trip tests.
type traceResult struct {
	System         *engine.System
	PartitionNames []string
	Events         []telemetry.Event
	Summary        telemetry.Summary
	EventsPath     string
	TracePath      string
}

// executeTrace builds the scenario, runs it with a recorder + JSONL sink +
// metrics collector attached, and writes all artifacts.
func executeTrace(cfg traceConfig) (*traceResult, error) {
	spec, sender, err := buildScenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	kind, err := parsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	built, err := spec.Build()
	if err != nil {
		return nil, err
	}
	if sender != nil {
		sender(built)
	}
	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		return nil, err
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}

	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return nil, err
	}
	eventsPath := filepath.Join(cfg.OutDir, "events.jsonl")
	ef, err := os.Create(eventsPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()

	names := make([]string, len(sys.Partitions))
	for i, p := range sys.Partitions {
		names[i] = p.Name
	}
	rec := telemetry.NewRecorder()
	jsonl := telemetry.NewJSONLSink(ef)
	coll := telemetry.NewCollector(nil, names)
	sys.AttachTelemetry(telemetry.Multi{rec, jsonl, coll})
	sys.MeasureLatency = true

	sys.Run(vtime.Time(cfg.Dur))
	sys.FlushTelemetry()
	if err := jsonl.Flush(); err != nil {
		return nil, err
	}

	tracePath := filepath.Join(cfg.OutDir, "trace.json")
	tf, err := os.Create(tracePath)
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	if err := telemetry.WriteChromeTrace(tf, rec.Events(), names); err != nil {
		return nil, err
	}

	// Fold the Pick-latency histogram into the registry before dumping.
	if h := sys.Counters.PolicyLatency; h != nil {
		coll.Registry().Gauge("policy.pick_latency_p50_us").Set(h.Quantile(0.5))
		coll.Registry().Gauge("policy.pick_latency_p99_us").Set(h.Quantile(0.99))
		coll.Registry().Gauge("policy.pick_latency_max_us").Set(h.Max())
	}
	mf, err := os.Create(filepath.Join(cfg.OutDir, "metrics.txt"))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	if err := coll.Registry().WriteText(mf); err != nil {
		return nil, err
	}
	cf, err := os.Create(filepath.Join(cfg.OutDir, "metrics.csv"))
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	if err := coll.Registry().WriteCSV(cf); err != nil {
		return nil, err
	}

	return &traceResult{
		System:         sys,
		PartitionNames: names,
		Events:         rec.Events(),
		Summary:        telemetry.Summarize(rec.Events()),
		EventsPath:     eventsPath,
		TracePath:      tracePath,
	}, nil
}

// buildScenario maps a scenario name to its system spec plus an optional
// instrumentation step applied to the built system (the covert sender).
func buildScenario(name string) (model.SystemSpec, func(*model.Built), error) {
	switch name {
	case "tableI":
		return workload.TableIBase(), nil, nil
	case "tableI-light":
		return workload.TableILight(), nil, nil
	case "car":
		return workload.Car(), nil, nil
	case "three":
		return workload.ThreePartition(), nil, nil
	case "covert":
		// The Table I base system with P2 as a covert sender: one task that
		// alternates between consuming the whole budget and almost nothing
		// every 150 ms monitoring window (the §III amplitude channel).
		spec := workload.TableIBase()
		budget := spec.Partitions[1].Budget
		spec.Partitions[1].Tasks = []model.TaskSpec{{
			Name: "exfil", Period: vtime.MS(50), WCET: budget,
		}}
		window := vtime.MS(150)
		instrument := func(b *model.Built) {
			b.Task[model.TaskKey(spec.Partitions[1].Name, "exfil")].ExecFn =
				func(_ int64, arrival vtime.Time) vtime.Duration {
					if (arrival/vtime.Time(window))%2 == 1 {
						return budget
					}
					return vtime.US(10)
				}
		}
		return spec, instrument, nil
	default:
		return model.SystemSpec{}, nil, fmt.Errorf("unknown scenario %q (want tableI | tableI-light | covert | car | three)", name)
	}
}

func parsePolicy(name string) (policies.Kind, error) {
	switch name {
	case "NoRandom":
		return policies.NoRandom, nil
	case "TimeDiceU":
		return policies.TimeDiceU, nil
	case "TimeDiceW":
		return policies.TimeDiceW, nil
	case "TDMA":
		return policies.TDMA, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want NoRandom | TimeDiceU | TimeDiceW | TDMA)", name)
	}
}
