package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

// TestRoundTrip is the acceptance test for the trace pipeline: a seeded
// Table-I-base run must produce a JSONL event log whose recomputed summary
// matches the engine's own counters, and a Chrome trace that is valid JSON
// with one named track per partition.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res, err := executeTrace(traceConfig{
		Scenario: "tableI",
		Policy:   "TimeDiceW",
		Dur:      2 * vtime.Second,
		Seed:     42,
		OutDir:   dir,
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(res.EventsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(events) != len(res.Events) {
		t.Fatalf("JSONL has %d events, recorder saw %d", len(events), len(res.Events))
	}
	sum := telemetry.Summarize(events)

	c := res.System.Counters
	if sum.Decisions != c.Decisions {
		t.Errorf("decisions: summary %d, engine %d", sum.Decisions, c.Decisions)
	}
	if sum.IdleDecisions != c.IdleDecisions {
		t.Errorf("idle decisions: summary %d, engine %d", sum.IdleDecisions, c.IdleDecisions)
	}
	if sum.Switches != c.Switches {
		t.Errorf("switches: summary %d, engine %d", sum.Switches, c.Switches)
	}
	if sum.BusyTime != c.BusyTime {
		t.Errorf("busy time: summary %v, engine %v", sum.BusyTime, c.BusyTime)
	}
	if sum.IdleTime != c.IdleTime {
		t.Errorf("idle time: summary %v, engine %v", sum.IdleTime, c.IdleTime)
	}
	if sum.DeadlineMisses != c.DeadlineMisses {
		t.Errorf("deadline misses: summary %d, engine %d", sum.DeadlineMisses, c.DeadlineMisses)
	}
	if sum.InversionWindows != c.InversionWindows {
		t.Errorf("inversion windows: summary %d, engine %d", sum.InversionWindows, c.InversionWindows)
	}
	if sum.InversionTime != c.InversionTime {
		t.Errorf("inversion time: summary %v, engine %v", sum.InversionTime, c.InversionTime)
	}
	if sum.InversionWindows == 0 {
		t.Error("expected the randomizing policy to produce inversion windows")
	}

	checkChromeTrace(t, res.TracePath, res.PartitionNames)
}

// checkChromeTrace parses the trace with the standard JSON decoder and
// verifies the per-partition thread-name metadata the viewers key tracks on.
func checkChromeTrace(t *testing.T, path string, partitions []string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Tid  int    `json:"tid"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace.json is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	tracks := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			tracks[ev.Tid] = ev.Args.Name
		}
	}
	for i, name := range partitions {
		if got := tracks[i+1]; got != name {
			t.Errorf("track tid=%d named %q, want partition %q", i+1, got, name)
		}
	}
	if got := tracks[len(partitions)+1]; got != "policy" {
		t.Errorf("policy track named %q", got)
	}
	if got := tracks[len(partitions)+2]; got != "inversions" {
		t.Errorf("inversions track named %q", got)
	}
}

// TestScenarios ensures every named scenario builds and runs under every
// accepted policy name for a short horizon.
func TestScenarios(t *testing.T) {
	for _, sc := range []string{"tableI", "tableI-light", "covert", "car", "three"} {
		for _, pol := range []string{"NoRandom", "TimeDiceU", "TimeDiceW", "TDMA"} {
			res, err := executeTrace(traceConfig{
				Scenario: sc,
				Policy:   pol,
				Dur:      200 * vtime.Millisecond,
				Seed:     1,
				OutDir:   t.TempDir(),
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", sc, pol, err)
			}
			if res.Summary.Decisions == 0 {
				t.Errorf("%s/%s: no decisions recorded", sc, pol)
			}
		}
	}
}

// TestCovertSenderModulates checks the covert scenario actually alternates
// P2's consumption between monitoring windows — without modulation there is
// no channel to trace.
func TestCovertSenderModulates(t *testing.T) {
	res, err := executeTrace(traceConfig{
		Scenario: "covert",
		Policy:   "NoRandom",
		Dur:      1200 * vtime.Millisecond,
		Seed:     1,
		OutDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	window := vtime.Duration(150 * vtime.Millisecond)
	busy := make(map[int64]vtime.Duration)
	for _, ev := range res.Events {
		if ev.Kind == telemetry.KindSlice && ev.Partition == 1 {
			busy[int64(ev.Time)/int64(window)] += ev.Dur
		}
	}
	// High windows are capped by P2's server budget (~14.4 ms of supply per
	// 150 ms window), so the low/high split sits well below that.
	var lo, hi int
	for w := int64(0); w < int64(1200*vtime.Millisecond)/int64(window); w++ {
		if busy[w] < window/30 {
			lo++
		} else {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Errorf("covert sender did not modulate: %d low windows, %d high windows", lo, hi)
	}
}

// TestSummaryMode runs the CLI -summary path over a freshly written log.
func TestSummaryMode(t *testing.T) {
	dir := t.TempDir()
	if _, err := executeTrace(traceConfig{
		Scenario: "three", Policy: "NoRandom",
		Dur: 100 * vtime.Millisecond, Seed: 3, OutDir: dir,
	}); err != nil {
		t.Fatal(err)
	}
	out, err := os.CreateTemp(dir, "summary")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run([]string{"-summary", filepath.Join(dir, "events.jsonl")}, out); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf, []byte("deadline misses")) {
		t.Errorf("summary output missing statistics:\n%s", buf)
	}
}

// TestBadInputs covers the error paths.
func TestBadInputs(t *testing.T) {
	if _, _, err := buildScenario("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := parsePolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}
