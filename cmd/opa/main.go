// Command opa assigns partition priorities with Audsley's Optimal Priority
// Assignment: given a JSON system spec (in any declaration order), it finds
// an ordering under which every partition passes the busy-interval
// schedulability test — the precondition TimeDice preserves — or reports
// that none exists.
//
// Usage:
//
//	opa -config system.json [-emit]
package main

import (
	"flag"
	"fmt"
	"os"

	"timedice/internal/analysis"
	"timedice/internal/model"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "opa:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("opa", flag.ContinueOnError)
	configPath := fs.String("config", "", "path to a JSON system spec (required)")
	emit := fs.Bool("emit", false, "print the reordered spec as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("-config is required")
	}
	f, err := os.Open(*configPath)
	if err != nil {
		return err
	}
	spec, err := model.ReadSystem(f)
	closeErr := f.Close()
	if err != nil {
		return err
	}
	if closeErr != nil {
		return closeErr
	}

	order, err := analysis.AssignPriorities(spec)
	if err != nil {
		return err
	}
	re, err := analysis.Reorder(spec, order)
	if err != nil {
		return err
	}
	fmt.Printf("schedulable priority order for %q (highest first):\n", spec.Name)
	for pos, idx := range order {
		p := spec.Partitions[idx]
		fmt.Printf("  %2d. %-12s B=%v T=%v (u=%.3f)\n", pos+1, p.Name, p.Budget, p.Period, p.Utilization())
	}
	if declared := analysis.SystemSchedulable(spec); !declared {
		fmt.Println("note: the declared order was NOT schedulable; use the order above.")
	}
	if *emit {
		data, err := re.MarshalJSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	}
	return nil
}
