package timedice

import (
	"io"
	"testing"

	"timedice/internal/core"
	"timedice/internal/covert"
	"timedice/internal/engine"
	"timedice/internal/experiments"
	"timedice/internal/ml"
	"timedice/internal/multicore"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/server"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// benchScale keeps per-iteration experiment cost small; the harnesses accept
// any scale, so `go run ./cmd/covertbench -scale full` reproduces
// paper-scale numbers with the same code paths.
func benchScale() experiments.Scale {
	return experiments.Scale{ProfileWindows: 64, TestWindows: 128, SimSeconds: 2, Seed: 1}
}

// --- One benchmark per table/figure of the paper ---

// BenchmarkFig04Distributions regenerates Fig. 4(a): the receiver's Pr(R)
// and Pr(R|X) response-time distributions under NoRandom.
func BenchmarkFig04Distributions(b *testing.B) {
	var sep float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig04(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		sep = res.Separation
	}
	b.ReportMetric(sep, "separation")
}

// BenchmarkFig04Heatmap regenerates Fig. 4(b): execution-vector heatmaps.
func BenchmarkFig04Heatmap(b *testing.B) {
	var dist float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig04(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		dist = res.DensityDistance
	}
	b.ReportMetric(dist, "densityDist")
}

// BenchmarkFig04Accuracy regenerates Fig. 4(c): channel accuracy vs
// profiling effort under NoRandom, base and light load.
func BenchmarkFig04Accuracy(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig04(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy[len(res.Accuracy)-1].RTAccuracy
	}
	b.ReportMetric(100*acc, "acc%")
}

// BenchmarkCarChannel regenerates the §III-e motivating scenario on the
// Fig. 5 car platform (and its §V-B1 TimeDice follow-up).
func BenchmarkCarChannel(b *testing.B) {
	var nr, td float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.CarChannel(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		nr, td = res.NoRandomAccuracy, res.TimeDiceAccuracy
	}
	b.ReportMetric(100*nr, "NoRandom-acc%")
	b.ReportMetric(100*td, "TimeDice-acc%")
}

// BenchmarkFig06Trace regenerates the Fig. 6 schedule traces.
func BenchmarkFig06Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig06(benchScale(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Mitigation regenerates Fig. 12: accuracy under NoRandom /
// TimeDiceU / TimeDiceW × base/light load × both receivers.
func BenchmarkFig12Mitigation(b *testing.B) {
	var nr, tdw float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		c1, _ := res.Cell(policies.NoRandom, experiments.BaseLoad)
		c2, _ := res.Cell(policies.TimeDiceW, experiments.BaseLoad)
		nr, tdw = c1.RTAccuracy, c2.RTAccuracy
	}
	b.ReportMetric(100*nr, "NoRandom-acc%")
	b.ReportMetric(100*tdw, "TimeDiceW-acc%")
}

// BenchmarkFig13Heatmap regenerates Fig. 13: execution-vector heatmaps under
// TimeDice.
func BenchmarkFig13Heatmap(b *testing.B) {
	var collapse float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		collapse = res.NoRandomDistance - res.TimeDiceWDistance
	}
	b.ReportMetric(collapse, "distCollapse")
}

// BenchmarkFig14Distributions regenerates Fig. 14: light-load Pr(R|X) under
// the three policies.
func BenchmarkFig14Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(benchScale(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15Capacity regenerates Fig. 15: channel capacity per policy
// and load.
func BenchmarkFig15Capacity(b *testing.B) {
	var nr, tdw float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		nr, _ = res.Bar(policies.NoRandom, experiments.BaseLoad)
		tdw, _ = res.Bar(policies.TimeDiceW, experiments.BaseLoad)
	}
	b.ReportMetric(nr, "NoRandom-bits")
	b.ReportMetric(tdw, "TimeDiceW-bits")
}

// BenchmarkFig16Boxplots regenerates Fig. 16: per-task response-time spreads
// under NoRandom vs TimeDice.
func BenchmarkFig16Boxplots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16(benchScale(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable02WCRT regenerates Table II: analytic and empirical WCRTs.
func BenchmarkTable02WCRT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table02(benchScale(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable03Car regenerates Table III: car-application responsiveness.
func BenchmarkTable03Car(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table03(benchScale(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable04Latency regenerates Table IV: per-decision latency
// percentiles for |Π| = 5/10/20.
func BenchmarkTable04Latency(b *testing.B) {
	var p50 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Overhead(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		row, _ := res.Row(20, policies.TimeDiceW)
		p50 = row.P50
	}
	b.ReportMetric(p50, "p50-us-at-20")
}

// BenchmarkFig17Overhead regenerates Fig. 17: randomization time per second
// of schedule.
func BenchmarkFig17Overhead(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Overhead(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		row, _ := res.Row(5, policies.TimeDiceW)
		us = row.PolicyMicrosPerSec
	}
	b.ReportMetric(us, "us-per-simsec")
}

// BenchmarkTable05Switches regenerates Table V: decisions and switches per
// second for |Π| = 5/10/20 under both schedulers.
func BenchmarkTable05Switches(b *testing.B) {
	var nr, td float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Overhead(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		r1, _ := res.Row(5, policies.NoRandom)
		r2, _ := res.Row(5, policies.TimeDiceW)
		nr, td = r1.DecisionsPerSec, r2.DecisionsPerSec
	}
	b.ReportMetric(nr, "NR-dec/s")
	b.ReportMetric(td, "TD-dec/s")
}

// BenchmarkFig18Blinder regenerates Fig. 18 / §V-C: the BLINDER comparison.
func BenchmarkFig18Blinder(b *testing.B) {
	var order float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig18(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		order = res.OrderBlinder
	}
	b.ReportMetric(100*order, "blinder-order-acc%")
}

// BenchmarkRateSweep regenerates the §V-B1 bits-per-second discussion: the
// covert rate as a function of the monitoring-window length.
func BenchmarkRateSweep(b *testing.B) {
	var nr, td float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Rate(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		p1, _ := res.Point(policies.NoRandom, vtime.MS(100))
		p2, _ := res.Point(policies.TimeDiceW, vtime.MS(100))
		nr, td = p1.BitsPerS, p2.BitsPerS
	}
	b.ReportMetric(nr, "NR-bits/s")
	b.ReportMetric(td, "TD-bits/s")
}

// BenchmarkNaiveShortfall regenerates the §IV motivation: unprincipled
// randomization under-serves budgets; TimeDice never does.
func BenchmarkNaiveShortfall(b *testing.B) {
	var naiveShort float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Naive(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		row, _ := res.Row("NaiveRandom")
		tdw, _ := res.Row("TimeDiceW")
		if tdw.PeriodsShort != 0 {
			b.Fatalf("TimeDiceW under-served %d periods", tdw.PeriodsShort)
		}
		naiveShort = float64(row.PeriodsShort) / float64(row.PeriodsChecked)
	}
	b.ReportMetric(100*naiveShort, "naive-short%")
}

// --- Ablations of the design choices DESIGN.md calls out ---

// BenchmarkAblationQuantum sweeps MIN_INV_SIZE: larger quanta randomize less
// often (fewer decisions) but cost less overhead.
func BenchmarkAblationQuantum(b *testing.B) {
	for _, q := range []vtime.Duration{vtime.FromFloatMS(0.5), vtime.MS(1), vtime.MS(2), vtime.MS(4)} {
		b.Run(q.String(), func(b *testing.B) {
			var decisions float64
			for i := 0; i < b.N; i++ {
				built, err := workload.TableIBase().Build()
				if err != nil {
					b.Fatal(err)
				}
				pol := core.NewPolicy(core.WithQuantum(q))
				sys, err := engine.New(built.Partitions, pol, rng.New(1))
				if err != nil {
					b.Fatal(err)
				}
				sys.Run(vtime.Time(2 * vtime.Second))
				decisions = float64(sys.Counters.Decisions) / 2
			}
			b.ReportMetric(decisions, "dec/s")
		})
	}
}

// BenchmarkAblationServers compares the three budget-server policies under
// the covert channel: the polling server's idle-discard changes the channel
// dynamics.
func BenchmarkAblationServers(b *testing.B) {
	for _, srv := range []server.Policy{server.Polling, server.Deferrable, server.Sporadic} {
		b.Run(srv.String(), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := covert.Config{
					Spec: workload.TableIBase(), Sender: 1, Receiver: 3,
					ProfileWindows: 64, TestWindows: 128,
					Servers: srv, Seed: 1,
				}
				res, err := covert.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.RTAccuracy
			}
			b.ReportMetric(100*acc, "acc%")
		})
	}
}

// BenchmarkAblationSelection compares uniform vs weighted random selection
// (Theorem 1) on light load, where the difference is most pronounced.
func BenchmarkAblationSelection(b *testing.B) {
	for _, kind := range []policies.Kind{policies.TimeDiceU, policies.TimeDiceW} {
		b.Run(kind.String(), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := covert.Config{
					Spec: workload.TableILight(), Sender: 1, Receiver: 3,
					ProfileWindows: 64, TestWindows: 128,
					Policy: kind, Seed: 1,
				}
				res, err := covert.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.RTAccuracy
			}
			b.ReportMetric(100*acc, "acc%")
		})
	}
}

// BenchmarkRandomness regenerates the schedule-uncertainty metrics (the
// quantitative Fig. 6 / Theorem 1 validation).
func BenchmarkRandomness(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Randomness(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		nr, _ := res.Row(policies.NoRandom, experiments.LightLoad)
		tdw, _ := res.Row(policies.TimeDiceW, experiments.LightLoad)
		gap = tdw.SlotEntropy - nr.SlotEntropy
	}
	b.ReportMetric(gap, "entropyGain")
}

// BenchmarkUtilizationSweep regenerates the load sweep (base/light dichotomy
// extended to a curve).
func BenchmarkUtilizationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.UtilizationSweep(benchScale(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossCoreChannel verifies the partitioned-multicore isolation
// result: the same channel that decodes on one core collapses across cores.
func BenchmarkCrossCoreChannel(b *testing.B) {
	spec := workload.TableIBase()
	for i := range spec.Partitions {
		spec.Partitions[i].Server = server.Deferrable
	}
	var same, cross float64
	for i := 0; i < b.N; i++ {
		rSame, err := multicore.Channel(multicore.ChannelConfig{
			Spec: spec, Assignment: multicore.Assignment{Cores: 1, CoreOf: []int{0, 0, 0, 0, 0}},
			Sender: 1, Receiver: 3, Windows: 300, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		rCross, err := multicore.Channel(multicore.ChannelConfig{
			Spec: spec, Assignment: multicore.Assignment{Cores: 2, CoreOf: []int{0, 0, 1, 1, 0}},
			Sender: 1, Receiver: 3, Windows: 300, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		same, cross = rSame.Accuracy, rCross.Accuracy
	}
	b.ReportMetric(100*same, "same-core-acc%")
	b.ReportMetric(100*cross, "cross-core-acc%")
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkTimeDiceDecision measures one full Pick (snapshot + candidate
// search + weighted selection) on the 5-partition Table I system.
func BenchmarkTimeDiceDecision(b *testing.B) {
	for _, mult := range []int{1, 2, 4} {
		spec := workload.Scale(workload.TableIBase(), mult)
		b.Run(spec.Name, func(b *testing.B) {
			built, err := spec.Build()
			if err != nil {
				b.Fatal(err)
			}
			pol := core.NewPolicy()
			sys, err := engine.New(built.Partitions, pol, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			// Warm the system into a representative state.
			sys.Run(vtime.Time(vtime.MS(500)))
			now := sys.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol.Pick(sys, now)
			}
		})
	}
}

// BenchmarkSchedulabilityTest measures one Algorithm-3 busy-interval test.
func BenchmarkSchedulabilityTest(b *testing.B) {
	spec := workload.Scale(workload.TableIBase(), 4)
	built, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	pol := core.NewPolicy()
	sys, err := engine.New(built.Partitions, pol, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	sys.Run(vtime.Time(vtime.MS(500)))
	states := core.Snapshot(sys, nil)
	now := sys.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SchedulabilityTest(states, len(states)-1, now, core.DefaultQuantum, nil)
	}
}

// BenchmarkEngineNoRandom measures raw simulation throughput (simulated
// seconds per wall second) under the event-driven fixed-priority scheduler.
func BenchmarkEngineNoRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(workload.TableIBase(), NoRandom, 1)
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(Time(10 * Second))
	}
}

// BenchmarkEngineTimeDice is the same throughput measure under TimeDiceW.
func BenchmarkEngineTimeDice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(workload.TableIBase(), TimeDiceW, 1)
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(Time(10 * Second))
	}
}

// BenchmarkEngineTimeDiceTelemetry measures the sink-attached engine: the
// same run as BenchmarkEngineTimeDice but with every event counted through a
// minimal sink. The gap between the two benchmarks is the full cost of the
// telemetry layer when enabled; BenchmarkEngineTimeDice itself is the
// nil-sink guard and must stay within noise of the pre-telemetry seed.
func BenchmarkEngineTimeDiceTelemetry(b *testing.B) {
	var events int64
	for i := 0; i < b.N; i++ {
		var n int64
		sink := TelemetryFunc(func(TelemetryEvent) { n++ })
		sys, err := NewSystem(workload.TableIBase(), TimeDiceW, 1, WithTelemetry(sink))
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(Time(10 * Second))
		events = n
	}
	b.ReportMetric(float64(events), "events/run")
}

// BenchmarkEngineTimeDiceCollector is the realistic enabled configuration: a
// metrics Collector aggregating the stream into histograms and counters.
func BenchmarkEngineTimeDiceCollector(b *testing.B) {
	names := make([]string, len(workload.TableIBase().Partitions))
	for i, p := range workload.TableIBase().Partitions {
		names[i] = p.Name
	}
	for i := 0; i < b.N; i++ {
		coll := NewMetricsCollector(nil, names)
		sys, err := NewSystem(workload.TableIBase(), TimeDiceW, 1, WithTelemetry(coll))
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(Time(10 * Second))
	}
}

// BenchmarkSVMTrain measures training the paper's execution-vector
// classifier on channel-sized data (150-dim binary vectors).
func BenchmarkSVMTrain(b *testing.B) {
	r := rng.New(1)
	const n, dim = 256, 150
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		y := r.Bit()
		v := make([]float64, dim)
		for d := range v {
			p := 0.3
			if y == 1 && d > dim/2 {
				p = 0.6
			}
			if r.Bool(p) {
				v[d] = 1
			}
		}
		xs[i], ys[i] = v, y
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (ml.SVM{}).Train(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalysis measures the full Table II analytic computation.
func BenchmarkAnalysis(b *testing.B) {
	spec := workload.TableIBase()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetection regenerates the defender-side sender-detection
// extension.
func BenchmarkDetection(b *testing.B) {
	var margin float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Detection(benchScale(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[len(res.Rows)-1] // TimeDiceW
		margin = row.SenderScore - row.RunnerUp
	}
	b.ReportMetric(margin, "detect-margin")
}

// BenchmarkMultiPair regenerates the concurrent-pairs extension.
func BenchmarkMultiPair(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiPair(policies.NoRandom, 200, 1)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy1
	}
	b.ReportMetric(100*acc, "pair1-acc%")
}

// BenchmarkReceiverZoo regenerates the learner comparison.
func BenchmarkReceiverZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ReceiverZoo(benchScale(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSendMessage measures end-to-end covert exfiltration of a 8-byte
// payload (profiling + transmission).
func BenchmarkSendMessage(b *testing.B) {
	var byteAcc float64
	for i := 0; i < b.N; i++ {
		res, err := covert.SendMessage(covert.MessageConfig{
			Channel: covert.Config{
				Spec: workload.TableIBase(), Sender: 1, Receiver: 3,
				ProfileWindows: 64, Seed: 1,
			},
			Payload:    []byte("SECRET01"),
			Repetition: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		byteAcc = res.ByteAccuracy
	}
	b.ReportMetric(100*byteAcc, "bytes-intact%")
}
