package policies_test

import (
	"testing"

	"timedice/internal/core"
	"timedice/internal/policies"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func TestStrings(t *testing.T) {
	cases := map[policies.Kind]string{
		policies.NoRandom:  "NoRandom",
		policies.TimeDiceU: "TimeDiceU",
		policies.TimeDiceW: "TimeDiceW",
		policies.TDMA:      "TDMA",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestRandomizing(t *testing.T) {
	if policies.NoRandom.Randomizing() || policies.TDMA.Randomizing() {
		t.Error("non-randomizing kinds misreported")
	}
	if !policies.TimeDiceU.Randomizing() || !policies.TimeDiceW.Randomizing() {
		t.Error("TimeDice kinds misreported")
	}
}

func TestBuildAllKinds(t *testing.T) {
	built, err := workload.ThreePartition().Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW, policies.TDMA} {
		pol, err := policies.Build(k, built.Partitions, policies.Options{})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if pol.Name() != k.String() {
			t.Errorf("%v built as %q", k, pol.Name())
		}
	}
	if _, err := policies.Build(policies.Kind(0), built.Partitions, policies.Options{}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestQuantumOption(t *testing.T) {
	built, err := workload.ThreePartition().Build()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policies.Build(policies.TimeDiceW, built.Partitions, policies.Options{Quantum: vtime.MS(2)})
	if err != nil {
		t.Fatal(err)
	}
	if pol.Quantum() != vtime.MS(2) {
		t.Errorf("quantum %v", pol.Quantum())
	}
	// Default quantum is MIN_INV_SIZE = 1ms.
	def, err := policies.Build(policies.TimeDiceW, built.Partitions, policies.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if def.Quantum() != core.DefaultQuantum {
		t.Errorf("default quantum %v", def.Quantum())
	}
}
