// Package policies names the global scheduling policies compared throughout
// the evaluation and builds them uniformly for a given partition set.
package policies

import (
	"fmt"

	"timedice/internal/core"
	"timedice/internal/engine"
	"timedice/internal/partition"
	"timedice/internal/sched"
	"timedice/internal/vtime"
)

// Kind selects a global scheduling policy.
type Kind int

const (
	// NoRandom is the default fixed-priority scheduler (the paper's
	// baseline).
	NoRandom Kind = iota + 1
	// TimeDiceU is TimeDice with uniform random selection.
	TimeDiceU
	// TimeDiceW is TimeDice with weighted random selection (the default
	// "TimeDice" of the paper).
	TimeDiceW
	// TDMA is the static-partitioning reference.
	TDMA
)

// String returns the paper's name for the policy.
func (k Kind) String() string {
	switch k {
	case NoRandom:
		return "NoRandom"
	case TimeDiceU:
		return "TimeDiceU"
	case TimeDiceW:
		return "TimeDiceW"
	case TDMA:
		return "TDMA"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Randomizing reports whether the policy randomizes the schedule.
func (k Kind) Randomizing() bool { return k == TimeDiceU || k == TimeDiceW }

// Options tune policy construction.
type Options struct {
	// Quantum is MIN_INV_SIZE for the TimeDice policies (default 1 ms).
	Quantum vtime.Duration
	// UncachedTimeDice disables the incremental schedulability-verdict
	// cache in the TimeDice policies. The cache is exact, so this only
	// changes speed, never the schedule; it exists for differential
	// testing (cached vs uncached digests must match) and as a baseline
	// for the overhead benchmarks.
	UncachedTimeDice bool
}

// Build constructs the policy. parts is needed only by TDMA (slot table).
func Build(k Kind, parts []*partition.Partition, opts Options) (engine.GlobalPolicy, error) {
	q := opts.Quantum
	if q <= 0 {
		q = core.DefaultQuantum
	}
	switch k {
	case NoRandom:
		return sched.FixedPriority{}, nil
	case TimeDiceU:
		return core.NewPolicy(core.WithQuantum(q), core.WithSelection(core.SelectUniform),
			core.WithVerdictCache(!opts.UncachedTimeDice)), nil
	case TimeDiceW:
		return core.NewPolicy(core.WithQuantum(q), core.WithSelection(core.SelectWeighted),
			core.WithVerdictCache(!opts.UncachedTimeDice)), nil
	case TDMA:
		return sched.NewTDMA(parts)
	default:
		return nil, fmt.Errorf("policies: unknown kind %v", k)
	}
}
