// Package bitset provides the two-level hierarchical bitset the engine uses
// for its runnable-partition set at large P. Level 0 is a flat []uint64 with
// one bit per element; level 1 is a summary word layer with one bit per
// level-0 word, set iff that word is non-empty. Scans (first set bit, ordered
// iteration, emptiness below a bound) walk the summary first and descend only
// into occupied 64-element groups, so their cost is proportional to the
// occupied groups — at P=16384 with a handful of runnable partitions that is
// 4 summary words plus one or two group words, instead of 256 words for a
// flat mask.
//
// The zero value of Hier is an empty set over zero elements; build a sized
// one with New. Hier is not safe for concurrent use.
package bitset

import "math/bits"

// Hier is a two-level hierarchical bitset over the fixed universe 0..n-1.
type Hier struct {
	// words is level 0: bit i of words[i/64] marks element i.
	words []uint64
	// summary is level 1: bit g of summary[g/64] marks words[g] != 0.
	summary []uint64
	n       int
}

// New returns an empty set over the universe 0..n-1.
func New(n int) *Hier {
	groups := (n + 63) / 64
	return &Hier{
		words:   make([]uint64, groups),
		summary: make([]uint64, (groups+63)/64),
		n:       n,
	}
}

// Len returns the (fixed) universe size n.
func (b *Hier) Len() int { return b.n }

// Set adds element i to the set.
func (b *Hier) Set(i int) {
	g := i >> 6
	b.words[g] |= 1 << uint(i&63)
	b.summary[g>>6] |= 1 << uint(g&63)
}

// Clear removes element i from the set.
func (b *Hier) Clear(i int) {
	g := i >> 6
	b.words[g] &^= 1 << uint(i&63)
	if b.words[g] == 0 {
		b.summary[g>>6] &^= 1 << uint(g&63)
	}
}

// Test reports whether element i is in the set.
func (b *Hier) Test(i int) bool {
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Any reports whether the set is non-empty, reading only the summary.
func (b *Hier) Any() bool {
	for _, s := range b.summary {
		if s != 0 {
			return true
		}
	}
	return false
}

// ForEachSet calls fn for every set element in ascending order, stopping
// early when fn returns false. It visits only occupied groups: the walk reads
// the summary words, descends into each non-empty group, and never touches an
// empty one. This is the one shared mask-walk loop — System.Runnable, the
// engine's priority-inversion scan (via First), and sched.FixedPriority's
// pick all layer on it.
func (b *Hier) ForEachSet(fn func(i int) bool) {
	for sw, s := range b.summary {
		for s != 0 {
			g := sw<<6 + bits.TrailingZeros64(s)
			s &= s - 1
			for w := b.words[g]; w != 0; w &= w - 1 {
				if !fn(g<<6 + bits.TrailingZeros64(w)) {
					return
				}
			}
		}
	}
}

// First returns the smallest set element, or -1 when the set is empty.
func (b *Hier) First() int {
	first := -1
	b.ForEachSet(func(i int) bool {
		first = i
		return false
	})
	return first
}

// NextSet returns the smallest set element >= i, or -1 when there is none.
// Iterating `for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1)` visits the
// set in ascending order with the same group-pruning as ForEachSet.
func (b *Hier) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	g := i >> 6
	if w := b.words[g] &^ (1<<uint(i&63) - 1); w != 0 {
		return g<<6 + bits.TrailingZeros64(w)
	}
	// Remaining groups, via the summary.
	g++
	for sw := g >> 6; sw < len(b.summary); sw++ {
		s := b.summary[sw]
		if sw == g>>6 {
			s &^= 1<<uint(g&63) - 1
		}
		if s != 0 {
			ng := sw<<6 + bits.TrailingZeros64(s)
			return ng<<6 + bits.TrailingZeros64(b.words[ng])
		}
	}
	return -1
}

// ForEachSetRange calls fn for every set element in [lo, hi), ascending,
// stopping early when fn returns false. It is the shard-local form of
// ForEachSet: a walk over shard [lo, hi) touches only that range's groups
// (clipping the boundary words), so concurrent walks over disjoint shards
// read disjoint words apart from the two shared boundary groups — reads
// only, which is why the engine's sharded phases may run it concurrently
// with each other (never concurrently with Set/Clear).
func (b *Hier) ForEachSetRange(lo, hi int, fn func(i int) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return
	}
	gLo, gHi := lo>>6, (hi-1)>>6
	for g := gLo; g <= gHi; g++ {
		w := b.words[g]
		if g == gLo {
			w &^= 1<<uint(lo&63) - 1
		}
		if g == gHi && hi&63 != 0 {
			w &= 1<<uint(hi&63) - 1
		}
		for ; w != 0; w &= w - 1 {
			if !fn(g<<6 + bits.TrailingZeros64(w)) {
				return
			}
		}
	}
}

// CountRange returns the number of set elements in [lo, hi), touching only
// that range's words.
func (b *Hier) CountRange(lo, hi int) int {
	n := 0
	b.ForEachSetRange(lo, hi, func(int) bool { n++; return true })
	return n
}

// Count returns the number of set elements, visiting only occupied groups.
func (b *Hier) Count() int {
	n := 0
	for sw, s := range b.summary {
		for s != 0 {
			g := sw<<6 + bits.TrailingZeros64(s)
			s &= s - 1
			n += bits.OnesCount64(b.words[g])
		}
	}
	return n
}

// OccupiedGroups returns the number of non-empty 64-element groups — the
// level-0 words a scan actually touches. The engine's cache-traffic proxy
// charges word reads from this.
func (b *Hier) OccupiedGroups() int {
	n := 0
	for _, s := range b.summary {
		n += bits.OnesCount64(s)
	}
	return n
}

// SummaryWords returns the number of level-1 words (the fixed cost every
// scan pays before descending).
func (b *Hier) SummaryWords() int { return len(b.summary) }

// Reset empties the set, retaining capacity.
func (b *Hier) Reset() {
	// Clear only the occupied groups (summary-guided), then the summary
	// itself: at sparse occupancy a reset touches O(occupied + P/4096) words.
	for sw, s := range b.summary {
		for s != 0 {
			g := sw<<6 + bits.TrailingZeros64(s)
			s &= s - 1
			b.words[g] = 0
		}
		b.summary[sw] = 0
	}
}
