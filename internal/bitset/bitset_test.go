package bitset

import (
	"math/bits"
	"slices"
	"testing"

	"timedice/internal/rng"
)

// flat is the reference implementation the hierarchical set must agree with:
// the plain []uint64 mask the engine used before the summary layer.
type flat struct {
	words []uint64
	n     int
}

func newFlat(n int) *flat { return &flat{words: make([]uint64, (n+63)/64), n: n} }

func (f *flat) set(i int)       { f.words[i>>6] |= 1 << uint(i&63) }
func (f *flat) clear(i int)     { f.words[i>>6] &^= 1 << uint(i&63) }
func (f *flat) test(i int) bool { return f.words[i>>6]&(1<<uint(i&63)) != 0 }

func (f *flat) forEachSet(fn func(i int) bool) {
	for w, word := range f.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			if !fn(w<<6 + b) {
				return
			}
		}
	}
}

func (f *flat) first() int {
	r := -1
	f.forEachSet(func(i int) bool { r = i; return false })
	return r
}

func (f *flat) nextSet(i int) int {
	for ; i < f.n; i++ {
		if f.test(i) {
			return i
		}
	}
	return -1
}

func (f *flat) count() int {
	n := 0
	for _, w := range f.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// compare checks every query of h against the reference f.
func compare(t *testing.T, h *Hier, f *flat, ctx string) {
	t.Helper()
	if got, want := h.Count(), f.count(); got != want {
		t.Fatalf("%s: Count = %d, want %d", ctx, got, want)
	}
	if got, want := h.Any(), f.count() > 0; got != want {
		t.Fatalf("%s: Any = %v, want %v", ctx, got, want)
	}
	if got, want := h.First(), f.first(); got != want {
		t.Fatalf("%s: First = %d, want %d", ctx, got, want)
	}
	var hs, fs []int
	h.ForEachSet(func(i int) bool { hs = append(hs, i); return true })
	f.forEachSet(func(i int) bool { fs = append(fs, i); return true })
	if len(hs) != len(fs) {
		t.Fatalf("%s: ForEachSet yields %d elements, want %d", ctx, len(hs), len(fs))
	}
	for k := range hs {
		if hs[k] != fs[k] {
			t.Fatalf("%s: ForEachSet[%d] = %d, want %d", ctx, k, hs[k], fs[k])
		}
	}
	// NextSet chains must reproduce the ordered iteration, and agree with the
	// reference from a few scattered anchors.
	k := 0
	for i := h.NextSet(0); i >= 0; i = h.NextSet(i + 1) {
		if k >= len(fs) || i != fs[k] {
			t.Fatalf("%s: NextSet chain diverges at step %d: got %d", ctx, k, i)
		}
		k++
	}
	if k != len(fs) {
		t.Fatalf("%s: NextSet chain stopped after %d of %d elements", ctx, k, len(fs))
	}
}

// TestHierMatchesFlat drives random set/clear/scan sequences against the flat
// reference mask over a spread of universe sizes, including the awkward ones
// (word boundaries, single-summary-word, multi-summary-word).
func TestHierMatchesFlat(t *testing.T) {
	r := rng.New(0xb17537)
	for _, n := range []int{1, 2, 63, 64, 65, 127, 128, 129, 4095, 4096, 4097, 9001} {
		h := New(n)
		f := newFlat(n)
		compare(t, h, f, "empty")
		ops := 2000
		if n > 1000 {
			ops = 5000
		}
		for op := 0; op < ops; op++ {
			i := r.Intn(n)
			if r.Bool(0.5) {
				h.Set(i)
				f.set(i)
			} else {
				h.Clear(i)
				f.clear(i)
			}
			if h.Test(i) != f.test(i) {
				t.Fatalf("n=%d op=%d: Test(%d) mismatch", n, op, i)
			}
			if op%97 == 0 {
				compare(t, h, f, "mid-sequence")
			}
			// NextSet from a random anchor, not just from iteration starts.
			if a := r.Intn(n); h.NextSet(a) != f.nextSet(a) {
				t.Fatalf("n=%d op=%d: NextSet(%d) = %d, want %d",
					n, op, a, h.NextSet(a), f.nextSet(a))
			}
		}
		compare(t, h, f, "final")
		h.Reset()
		if h.Any() || h.Count() != 0 || h.First() != -1 {
			t.Fatalf("n=%d: Reset left the set non-empty", n)
		}
		compare(t, h, newFlat(n), "after reset")
	}
}

// TestHierSparseOccupancy is the P=16384 property test: with k elements set
// in a 16384 universe, every scan must touch only the occupied groups (plus
// the fixed summary layer), and the ordered iteration must return exactly
// the elements set — for many random sparse populations.
func TestHierSparseOccupancy(t *testing.T) {
	const n = 16384
	r := rng.New(0x5a135e7)
	h := New(n)
	if got, want := h.SummaryWords(), 4; got != want {
		t.Fatalf("SummaryWords = %d, want %d at P=%d", got, want, n)
	}
	for trial := 0; trial < 200; trial++ {
		h.Reset()
		k := 1 + r.Intn(8) // sparse: at most 8 runnable of 16384
		want := map[int]bool{}
		for j := 0; j < k; j++ {
			i := r.Intn(n)
			h.Set(i)
			want[i] = true
		}
		if got := h.Count(); got != len(want) {
			t.Fatalf("trial %d: Count = %d, want %d", trial, got, len(want))
		}
		// Occupancy bound: k elements occupy at most k groups.
		if got := h.OccupiedGroups(); got > len(want) {
			t.Fatalf("trial %d: %d occupied groups for %d elements", trial, got, len(want))
		}
		got := map[int]bool{}
		prev := -1
		h.ForEachSet(func(i int) bool {
			if i <= prev {
				t.Fatalf("trial %d: ForEachSet out of order: %d after %d", trial, i, prev)
			}
			prev = i
			got[i] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: iterated %d elements, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if !got[i] {
				t.Fatalf("trial %d: element %d set but not iterated", trial, i)
			}
			if !h.Test(i) {
				t.Fatalf("trial %d: Test(%d) false after Set", trial, i)
			}
		}
	}
}

// TestHierZeroAlloc pins the allocation contract: every query on a built set
// is allocation-free (the engine calls these on its hot path).
func TestHierZeroAlloc(t *testing.T) {
	h := New(16384)
	for _, i := range []int{0, 63, 64, 1000, 8191, 16383} {
		h.Set(i)
	}
	var sink int
	allocs := testing.AllocsPerRun(100, func() {
		h.ForEachSet(func(i int) bool { sink += i; return true })
		sink += h.First()
		sink += h.Count()
		sink += h.OccupiedGroups()
		for i := h.NextSet(0); i >= 0; i = h.NextSet(i + 1) {
			sink += i
		}
		if h.Any() {
			sink++
		}
		h.Clear(1000)
		h.Set(1000)
	})
	if allocs != 0 {
		t.Errorf("hot-path queries allocate %.1f times per run, want 0 (sink %d)", allocs, sink)
	}
}

// TestForEachSetRange pins the range walk against the reference full walk
// filtered to the range, across shard boundaries that split words unevenly.
func TestForEachSetRange(t *testing.T) {
	const n = 300
	b := New(n)
	r := rng.New(99)
	ref := make(map[int]bool)
	for i := 0; i < 120; i++ {
		e := r.Intn(n)
		if ref[e] {
			b.Clear(e)
			delete(ref, e)
		} else {
			b.Set(e)
			ref[e] = true
		}
	}
	for _, tc := range [][2]int{{0, n}, {0, 0}, {64, 128}, {63, 65}, {1, 299}, {130, 131}, {200, 200}, {-5, 400}} {
		lo, hi := tc[0], tc[1]
		var got []int
		b.ForEachSetRange(lo, hi, func(i int) bool { got = append(got, i); return true })
		var want []int
		b.ForEachSet(func(i int) bool {
			if i >= lo && i < hi {
				want = append(want, i)
			}
			return true
		})
		if !slices.Equal(got, want) {
			t.Errorf("ForEachSetRange(%d,%d) = %v, want %v", lo, hi, got, want)
		}
		if c := b.CountRange(lo, hi); c != len(want) {
			t.Errorf("CountRange(%d,%d) = %d, want %d", lo, hi, c, len(want))
		}
	}
	// Early stop.
	calls := 0
	b.ForEachSetRange(0, n, func(i int) bool { calls++; return false })
	if calls > 1 {
		t.Errorf("early-stop walk made %d calls, want 1", calls)
	}
}
