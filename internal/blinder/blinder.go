// Package blinder implements the comparison baseline of the paper's §V-C:
// BLINDER (Yoon et al., USENIX Security 2021), a partition-oblivious
// local-schedule transformation, together with the task-order covert channel
// of Fig. 18 that BLINDER was designed to defeat.
//
// BLINDER's idea is to make each partition's local schedule a deterministic
// function of the partition's own progress, independent of when the global
// scheduler supplies budget. We reproduce its defensive property with a
// lag-based release transform: every local job release is deferred to the
// partition's next budget-replenishment boundary, so the set of ready jobs
// the local scheduler sees in any budget window depends only on the window
// index — never on how a higher-priority partition stretched or compressed
// the supply within the window. This closes the task-order channel while, by
// construction, leaving physical-time observations fully intact — which is
// exactly the limitation the paper demonstrates (§V-C: BLINDER "cannot defend
// against the covert channel presented in this paper").
package blinder

import (
	"fmt"

	"timedice/internal/model"
	"timedice/internal/vtime"
)

// Transform applies the BLINDER release transform to the named partition of
// an already-built system: each local task's job releases are quantized to
// the partition's replenishment boundaries (period T). The task's nominal
// sporadic arrival times are preserved as lower bounds; only visibility to
// the local scheduler is deferred.
func Transform(built *model.Built, spec model.SystemSpec, partitionName string) error {
	var ps *model.PartitionSpec
	for i := range spec.Partitions {
		if spec.Partitions[i].Name == partitionName {
			ps = &spec.Partitions[i]
			break
		}
	}
	if ps == nil {
		return fmt.Errorf("blinder: partition %q not in spec", partitionName)
	}
	T := ps.Period
	for _, ts := range ps.Tasks {
		tk, ok := built.Task[model.TaskKey(partitionName, ts.Name)]
		if !ok {
			return fmt.Errorf("blinder: task %q not built", ts.Name)
		}
		nominalPeriod := ts.Period
		nominalOffset := ts.Offset
		// Quantize the k-th nominal arrival (offset + k·p) up to the next
		// replenishment boundary.
		release := func(k int64) vtime.Time {
			nominal := vtime.Time(0).Add(nominalOffset).Add(vtime.Duration(k) * nominalPeriod)
			q := vtime.CeilDiv(vtime.Duration(nominal), T)
			return vtime.Time(q * int64(T))
		}
		tk.Offset = vtime.Duration(release(0))
		tk.PeriodFn = func(k int64, _ vtime.Time) vtime.Duration {
			gap := release(k + 1).Sub(release(k))
			if gap < vtime.Microsecond {
				gap = vtime.Microsecond
			}
			return gap
		}
	}
	return nil
}
