package blinder

import (
	"fmt"

	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/server"
	"timedice/internal/task"
	"timedice/internal/vtime"
)

// OrderChannelConfig parameterizes the Fig. 18 covert channel: the sender
// τ_S,1 varies its execution length; the receiver partition hosts two local
// tasks τ_R,1 (higher local priority, released at an offset δ) and τ_R,2
// (lower priority, released at the window start). The receiver decodes the
// sender's bit from the ORDER in which its two tasks complete — an
// observation that requires no clock at all, which is why BLINDER's
// clock-free threat model targets it.
type OrderChannelConfig struct {
	// Period is the common partition period / signaling window (default 20 ms).
	Period vtime.Duration
	// Budget is each partition's budget (default 0.3·Period).
	Budget vtime.Duration
	// Delta is τ_R,1's release offset within the window (default Budget/2).
	Delta vtime.Duration
	// ShortLen and LongLen are the sender's execution lengths for X=0 and
	// X=1 (defaults Delta/3 and Budget).
	ShortLen, LongLen vtime.Duration

	// Windows is the number of signaled bits (default 2000).
	Windows int
	// Defense selects the receiver-side / system-side mitigation.
	Policy policies.Kind
	// Blinder applies the BLINDER transform to the receiver partition.
	Blinder bool

	Seed uint64
}

func (c *OrderChannelConfig) fill() {
	if c.Period <= 0 {
		c.Period = vtime.MS(20)
	}
	if c.Budget <= 0 {
		c.Budget = c.Period * 3 / 10
	}
	if c.Delta <= 0 {
		c.Delta = c.Budget / 2
	}
	if c.ShortLen <= 0 {
		c.ShortLen = c.Delta / 3
	}
	if c.LongLen <= 0 {
		c.LongLen = c.Budget
	}
	if c.Windows <= 0 {
		c.Windows = 2000
	}
	if c.Policy == 0 {
		c.Policy = policies.NoRandom
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// OrderChannelResult reports both decoders' accuracies over the run.
type OrderChannelResult struct {
	// OrderAccuracy is the clock-free task-order decoder's accuracy
	// (bit = 1 iff τ_R,1 of window k completed before τ_R,2 of window k).
	OrderAccuracy float64
	// ResponseAccuracy is the physical-time decoder's accuracy on τ_R,2's
	// response time (threshold at the midpoint of the profiled means),
	// the channel BLINDER cannot close.
	ResponseAccuracy float64
	Windows          int
}

// RunOrderChannel simulates the Fig. 18 scenario and decodes with both
// receivers.
func RunOrderChannel(cfg OrderChannelConfig) (*OrderChannelResult, error) {
	cfg.fill()
	if cfg.ShortLen >= cfg.Delta {
		return nil, fmt.Errorf("blinder: ShortLen %v must be below Delta %v", cfg.ShortLen, cfg.Delta)
	}
	if cfg.LongLen <= cfg.Delta {
		return nil, fmt.Errorf("blinder: LongLen %v must exceed Delta %v", cfg.LongLen, cfg.Delta)
	}

	r2exec := cfg.Delta / 2            // finishes before Delta when undisturbed
	r1exec := (cfg.Delta / 4).Max(100) // short high-priority probe

	spec := model.SystemSpec{
		Name: "fig18",
		Partitions: []model.PartitionSpec{
			{
				Name: "S", Budget: cfg.Budget, Period: cfg.Period, Server: server.Deferrable,
				Tasks: []model.TaskSpec{{Name: "s1", Period: cfg.Period, WCET: cfg.LongLen}},
			},
			{
				Name: "R", Budget: cfg.Budget, Period: cfg.Period, Server: server.Deferrable,
				Tasks: []model.TaskSpec{
					{Name: "r1", Period: cfg.Period, WCET: r1exec, Offset: cfg.Delta, Deadline: 4 * cfg.Period},
					{Name: "r2", Period: cfg.Period, WCET: r2exec, Deadline: 4 * cfg.Period},
				},
			},
		},
	}

	root := rng.New(cfg.Seed)
	bits := make([]int, cfg.Windows+4)
	for i := range bits {
		bits[i] = root.Bit()
	}

	built, err := spec.Build()
	if err != nil {
		return nil, err
	}
	sender := built.Task[model.TaskKey("S", "s1")]
	sender.ExecFn = func(_ int64, arrival vtime.Time) vtime.Duration {
		w := int(arrival / vtime.Time(cfg.Period))
		if w >= len(bits) {
			w = len(bits) - 1
		}
		if bits[w] == 1 {
			return cfg.LongLen
		}
		return cfg.ShortLen
	}

	if cfg.Blinder {
		if err := Transform(built, spec, "R"); err != nil {
			return nil, err
		}
	}

	// Record per-job completion instants of both receiver tasks.
	finishR1 := make(map[int64]vtime.Time)
	finishR2 := make(map[int64]vtime.Time)
	respR2 := make(map[int64]vtime.Duration)
	built.Sched["R"].OnComplete = func(c task.Completion) {
		switch c.Job.Task.Name {
		case "r1":
			finishR1[c.Job.Index] = c.Finish
		case "r2":
			finishR2[c.Job.Index] = c.Finish
			respR2[c.Job.Index] = c.Response
		}
	}

	pol, err := policies.Build(cfg.Policy, built.Partitions, policies.Options{})
	if err != nil {
		return nil, err
	}
	sys, err := engine.New(built.Partitions, pol, root.Split())
	if err != nil {
		return nil, err
	}
	sys.Run(vtime.Time(vtime.Duration(cfg.Windows+4) * cfg.Period))

	res := &OrderChannelResult{}
	// Profile the response-time decoder threshold on the first half, score
	// on the second half.
	half := cfg.Windows / 2
	var sum0, sum1 float64
	var n0, n1 int
	for k := 0; k < half; k++ {
		r, ok := respR2[int64(k)]
		if !ok {
			continue
		}
		if bits[k] == 0 {
			sum0 += r.Milliseconds()
			n0++
		} else {
			sum1 += r.Milliseconds()
			n1++
		}
	}
	var threshold float64
	inverted := false
	if n0 > 0 && n1 > 0 {
		m0, m1 := sum0/float64(n0), sum1/float64(n1)
		threshold = (m0 + m1) / 2
		inverted = m1 < m0
	}

	orderOK, respOK, total := 0, 0, 0
	for k := half; k < cfg.Windows; k++ {
		f1, ok1 := finishR1[int64(k)]
		f2, ok2 := finishR2[int64(k)]
		r, okR := respR2[int64(k)]
		if !ok1 || !ok2 || !okR {
			continue
		}
		total++
		orderBit := 0
		if f1.Before(f2) {
			orderBit = 1
		}
		if orderBit == bits[k] {
			orderOK++
		}
		respBit := 0
		if r.Milliseconds() > threshold {
			respBit = 1
		}
		if inverted {
			respBit = 1 - respBit
		}
		if respBit == bits[k] {
			respOK++
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("blinder: no complete observations")
	}
	res.Windows = total
	res.OrderAccuracy = float64(orderOK) / float64(total)
	res.ResponseAccuracy = float64(respOK) / float64(total)
	return res, nil
}
