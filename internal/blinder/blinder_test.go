package blinder

import (
	"testing"

	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/vtime"
)

func TestOrderChannelNoDefense(t *testing.T) {
	// Fig. 18(a)/(b): under the plain fixed-priority scheduler the order
	// channel decodes near-perfectly, and so does the physical-time channel.
	res, err := RunOrderChannel(OrderChannelConfig{Windows: 600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.OrderAccuracy < 0.95 {
		t.Errorf("order-channel accuracy %.3f, want >= 0.95 under NoRandom", res.OrderAccuracy)
	}
	if res.ResponseAccuracy < 0.95 {
		t.Errorf("response-channel accuracy %.3f, want >= 0.95 under NoRandom", res.ResponseAccuracy)
	}
}

func TestBlinderClosesOrderChannelButNotTimeChannel(t *testing.T) {
	// §V-C: BLINDER defeats the order channel (its design goal) but cannot
	// defend the physical-time response channel.
	res, err := RunOrderChannel(OrderChannelConfig{Windows: 600, Seed: 5, Blinder: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.OrderAccuracy > 0.62 {
		t.Errorf("order-channel accuracy %.3f under BLINDER, want ≈0.5", res.OrderAccuracy)
	}
	if res.ResponseAccuracy < 0.90 {
		t.Errorf("response-channel accuracy %.3f under BLINDER, want still high (BLINDER cannot close it)", res.ResponseAccuracy)
	}
}

func TestTimeDiceDegradesOrderChannel(t *testing.T) {
	// Fig. 18(d): TimeDice splits long preemptions randomly, so the order
	// decoder degrades substantially from its ~1.0 baseline.
	res, err := RunOrderChannel(OrderChannelConfig{Windows: 1200, Seed: 5, Policy: policies.TimeDiceW})
	if err != nil {
		t.Fatal(err)
	}
	if res.OrderAccuracy > 0.85 {
		t.Errorf("order-channel accuracy %.3f under TimeDice, want substantially degraded", res.OrderAccuracy)
	}
	if res.ResponseAccuracy > 0.85 {
		t.Errorf("response-channel accuracy %.3f under TimeDice, want substantially degraded", res.ResponseAccuracy)
	}
}

func TestConfigValidation(t *testing.T) {
	_, err := RunOrderChannel(OrderChannelConfig{ShortLen: vtime.MS(5), Delta: vtime.MS(3)})
	if err == nil {
		t.Error("ShortLen >= Delta must be rejected")
	}
	_, err = RunOrderChannel(OrderChannelConfig{LongLen: vtime.MS(2), Delta: vtime.MS(3)})
	if err == nil {
		t.Error("LongLen <= Delta must be rejected")
	}
}

func TestTransformQuantizesReleases(t *testing.T) {
	spec := model.SystemSpec{
		Name: "q",
		Partitions: []model.PartitionSpec{{
			Name: "P", Budget: vtime.MS(5), Period: vtime.MS(10),
			Tasks: []model.TaskSpec{{Name: "t", Period: vtime.MS(25), WCET: vtime.MS(1), Offset: vtime.MS(3)}},
		}},
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Transform(built, spec, "P"); err != nil {
		t.Fatal(err)
	}
	tk := built.Task[model.TaskKey("P", "t")]
	// Nominal arrivals 3, 28, 53, 78 → quantized releases 10, 30, 60, 80.
	if tk.Offset != vtime.MS(10) {
		t.Errorf("first release %v, want 10ms", tk.Offset)
	}
	gaps := []vtime.Duration{
		tk.PeriodFn(0, 0),
		tk.PeriodFn(1, 0),
		tk.PeriodFn(2, 0),
	}
	want := []vtime.Duration{vtime.MS(20), vtime.MS(30), vtime.MS(20)}
	for i, w := range want {
		if gaps[i] != w {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], w)
		}
	}
}

func TestTransformUnknownPartition(t *testing.T) {
	spec := model.SystemSpec{
		Name: "q",
		Partitions: []model.PartitionSpec{{
			Name: "P", Budget: vtime.MS(5), Period: vtime.MS(10),
			Tasks: []model.TaskSpec{{Name: "t", Period: vtime.MS(20), WCET: vtime.MS(1)}},
		}},
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Transform(built, spec, "missing"); err == nil {
		t.Error("unknown partition accepted")
	}
}
