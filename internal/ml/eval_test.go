package ml

import (
	"math"
	"testing"

	"timedice/internal/rng"
)

type constClassifier int

func (c constClassifier) Predict([]float64) int { return int(c) }
func (c constClassifier) Name() string          { return "const" }

func TestConfusionMetrics(t *testing.T) {
	xs := [][]float64{{0}, {0}, {0}, {0}}
	ys := []int{1, 1, 0, 0}
	c := Evaluate(constClassifier(1), xs, ys)
	if c.Total() != 4 {
		t.Fatalf("total %d", c.Total())
	}
	if c.Accuracy() != 0.5 {
		t.Errorf("accuracy %v", c.Accuracy())
	}
	if c.Precision() != 0.5 {
		t.Errorf("precision %v", c.Precision())
	}
	if c.Recall() != 1 {
		t.Errorf("recall %v", c.Recall())
	}
	if f1 := c.F1(); math.Abs(f1-2.0/3.0) > 1e-12 {
		t.Errorf("f1 %v", f1)
	}
	if c.String() == "" {
		t.Error("empty string form")
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("empty confusion should be all zeros")
	}
}

func TestCrossValidate(t *testing.T) {
	r := rng.New(10)
	xs, ys := twoBlobs(r, 300, 4, 4)
	mean, skipped, err := CrossValidate(LogReg{}, xs, ys, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d folds", skipped)
	}
	if mean < 0.9 {
		t.Errorf("cross-validated accuracy %.3f on separable blobs", mean)
	}
}

func TestCrossValidateValidation(t *testing.T) {
	if _, _, err := CrossValidate(KNN{}, [][]float64{{1}}, []int{0}, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, _, err := CrossValidate(KNN{}, [][]float64{{1}}, []int{0}, 5, 1); err == nil {
		t.Error("too few samples accepted")
	}
	if _, _, err := CrossValidate(KNN{}, [][]float64{{1}, {2}}, []int{0}, 2, 1); err == nil {
		t.Error("ragged labels accepted")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	r := rng.New(11)
	xs, ys := twoBlobs(r, 120, 3, 3)
	a, _, err := CrossValidate(KNN{K: 3}, xs, ys, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := CrossValidate(KNN{K: 3}, xs, ys, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cross validation with the same seed must be deterministic")
	}
}
