package ml

import (
	"math"
)

// LogReg trains L2-regularized logistic regression by full-batch gradient
// descent with a fixed schedule. It is the cheap, well-understood baseline
// for the execution-vector receiver.
type LogReg struct {
	// Rate is the learning rate (default 0.5).
	Rate float64
	// Epochs is the number of gradient steps (default 200).
	Epochs int
	// Lambda is the L2 penalty (default 1e-4).
	Lambda float64
}

var _ Trainer = LogReg{}

// Name implements Trainer.
func (l LogReg) Name() string { return "logreg" }

type logRegModel struct {
	w []float64
	b float64
}

var _ Classifier = (*logRegModel)(nil)

func (m *logRegModel) Name() string { return "logreg" }

// Predict implements Classifier.
func (m *logRegModel) Predict(x []float64) int {
	if dot(m.w, x)+m.b >= 0 {
		return 1
	}
	return 0
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Train implements Trainer.
func (l LogReg) Train(xs [][]float64, ys []int) (Classifier, error) {
	dim, err := validate(xs, ys)
	if err != nil {
		return nil, err
	}
	rate := l.Rate
	if rate <= 0 {
		rate = 0.5
	}
	epochs := l.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lambda := l.Lambda
	if lambda <= 0 {
		lambda = 1e-4
	}
	n := float64(len(xs))
	w := make([]float64, dim)
	var b float64
	gw := make([]float64, dim)
	for e := 0; e < epochs; e++ {
		for i := range gw {
			gw[i] = lambda * w[i]
		}
		var gb float64
		for i, x := range xs {
			p := sigmoid(dot(w, x) + b)
			diff := (p - float64(ys[i])) / n
			for j, xj := range x {
				gw[j] += diff * xj
			}
			gb += diff
		}
		step := rate / (1 + 0.01*float64(e))
		for j := range w {
			w[j] -= step * gw[j]
		}
		b -= step * gb
	}
	return &logRegModel{w: w, b: b}, nil
}
