package ml

import (
	"fmt"

	"timedice/internal/rng"
)

// Confusion is a binary confusion matrix: Counts[actual][predicted].
type Confusion struct {
	Counts [2][2]int
}

// Evaluate fills a confusion matrix from clf's predictions on (xs, ys).
func Evaluate(clf Classifier, xs [][]float64, ys []int) Confusion {
	var c Confusion
	for i, x := range xs {
		c.Counts[ys[i]&1][clf.Predict(x)&1]++
	}
	return c
}

// Total returns the number of evaluated samples.
func (c Confusion) Total() int {
	return c.Counts[0][0] + c.Counts[0][1] + c.Counts[1][0] + c.Counts[1][1]
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.Counts[0][0]+c.Counts[1][1]) / float64(t)
}

// Precision returns TP/(TP+FP) for class 1.
func (c Confusion) Precision() float64 {
	den := c.Counts[1][1] + c.Counts[0][1]
	if den == 0 {
		return 0
	}
	return float64(c.Counts[1][1]) / float64(den)
}

// Recall returns TP/(TP+FN) for class 1.
func (c Confusion) Recall() float64 {
	den := c.Counts[1][1] + c.Counts[1][0]
	if den == 0 {
		return 0
	}
	return float64(c.Counts[1][1]) / float64(den)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix and derived metrics on one line.
func (c Confusion) String() string {
	return fmt.Sprintf("[[%d %d][%d %d]] acc=%.3f p=%.3f r=%.3f f1=%.3f",
		c.Counts[0][0], c.Counts[0][1], c.Counts[1][0], c.Counts[1][1],
		c.Accuracy(), c.Precision(), c.Recall(), c.F1())
}

// CrossValidate estimates tr's accuracy by k-fold cross validation with a
// seeded shuffle; it returns the mean accuracy over the folds. Folds that
// end up single-class in training are skipped (and reported in skipped).
func CrossValidate(tr Trainer, xs [][]float64, ys []int, k int, seed uint64) (mean float64, skipped int, err error) {
	if k < 2 {
		return 0, 0, fmt.Errorf("ml: cross validation needs k >= 2, got %d", k)
	}
	if len(xs) < k {
		return 0, 0, fmt.Errorf("ml: %d samples for %d folds", len(xs), k)
	}
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("%w: %d vectors, %d labels", ErrBadTrainingSet, len(xs), len(ys))
	}
	perm := rng.New(seed).Perm(len(xs))
	var sum float64
	folds := 0
	for f := 0; f < k; f++ {
		var trainX, testX [][]float64
		var trainY, testY []int
		for i, idx := range perm {
			if i%k == f {
				testX = append(testX, xs[idx])
				testY = append(testY, ys[idx])
			} else {
				trainX = append(trainX, xs[idx])
				trainY = append(trainY, ys[idx])
			}
		}
		clf, err := tr.Train(trainX, trainY)
		if err != nil {
			skipped++
			continue
		}
		sum += Accuracy(clf, testX, testY)
		folds++
	}
	if folds == 0 {
		return 0, skipped, fmt.Errorf("ml: every fold failed to train")
	}
	return sum / float64(folds), skipped, nil
}
