package ml

import (
	"math"

	"timedice/internal/rng"
)

// Forest trains a random forest of CART-style decision trees on bootstrap
// samples with random feature subsetting — the other learner the paper names
// for the execution-vector receiver (§III-d).
type Forest struct {
	// Trees is the ensemble size (default 25).
	Trees int
	// MaxDepth bounds tree depth (default 10).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
	// Features is the number of features tried per split (default √dim).
	Features int
	// Seed makes training deterministic (default 1).
	Seed uint64
}

var _ Trainer = Forest{}

// Name implements Trainer.
func (f Forest) Name() string { return "forest" }

type treeNode struct {
	feature  int
	thresh   float64
	left     *treeNode
	right    *treeNode
	leafVote int
	isLeaf   bool
}

func (n *treeNode) predict(x []float64) int {
	for !n.isLeaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafVote
}

type forestModel struct {
	trees []*treeNode
}

var _ Classifier = (*forestModel)(nil)

func (m *forestModel) Name() string { return "forest" }

// Predict implements Classifier (majority vote).
func (m *forestModel) Predict(x []float64) int {
	ones := 0
	for _, t := range m.trees {
		ones += t.predict(x)
	}
	if 2*ones >= len(m.trees) {
		return 1
	}
	return 0
}

// Train implements Trainer.
func (f Forest) Train(xs [][]float64, ys []int) (Classifier, error) {
	dim, err := validate(xs, ys)
	if err != nil {
		return nil, err
	}
	trees := f.Trees
	if trees <= 0 {
		trees = 25
	}
	maxDepth := f.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 10
	}
	minLeaf := f.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	features := f.Features
	if features <= 0 {
		features = int(math.Sqrt(float64(dim)))
		if features < 1 {
			features = 1
		}
	}
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	r := rng.New(seed)

	n := len(xs)
	model := &forestModel{}
	idx := make([]int, n)
	for t := 0; t < trees; t++ {
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		b := treeBuilder{xs: xs, ys: ys, r: r, features: features, minLeaf: minLeaf, dim: dim}
		model.trees = append(model.trees, b.build(append([]int(nil), idx...), maxDepth))
	}
	return model, nil
}

type treeBuilder struct {
	xs       [][]float64
	ys       []int
	r        *rng.Rand
	features int
	minLeaf  int
	dim      int
}

func (b *treeBuilder) build(idx []int, depth int) *treeNode {
	ones := 0
	for _, i := range idx {
		ones += b.ys[i]
	}
	vote := 0
	if 2*ones >= len(idx) {
		vote = 1
	}
	if depth == 0 || len(idx) < 2*b.minLeaf || ones == 0 || ones == len(idx) {
		return &treeNode{isLeaf: true, leafVote: vote}
	}

	bestGini := math.Inf(1)
	bestFeature, bestThresh := -1, 0.0
	for f := 0; f < b.features; f++ {
		feat := b.r.Intn(b.dim)
		// Candidate thresholds: a few random sample values.
		for trial := 0; trial < 4; trial++ {
			pivot := b.xs[idx[b.r.Intn(len(idx))]][feat]
			var lN, lOnes, rN, rOnes int
			for _, i := range idx {
				if b.xs[i][feat] <= pivot {
					lN++
					lOnes += b.ys[i]
				} else {
					rN++
					rOnes += b.ys[i]
				}
			}
			if lN < b.minLeaf || rN < b.minLeaf {
				continue
			}
			g := gini(lOnes, lN)*float64(lN) + gini(rOnes, rN)*float64(rN)
			if g < bestGini {
				bestGini, bestFeature, bestThresh = g, feat, pivot
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{isLeaf: true, leafVote: vote}
	}
	var left, right []int
	for _, i := range idx {
		if b.xs[i][bestFeature] <= bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &treeNode{
		feature: bestFeature,
		thresh:  bestThresh,
		left:    b.build(left, depth-1),
		right:   b.build(right, depth-1),
	}
}

func gini(ones, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(ones) / float64(n)
	return 2 * p * (1 - p)
}
