// Package ml implements the supervised learners used by the paper's
// learning-based covert-channel receiver (§III-d): a Support Vector Machine
// with RBF kernel trained by Sequential Minimal Optimization (the paper's
// classifier), plus Random Forest (also named by the paper), logistic
// regression, and k-nearest-neighbors baselines. Everything is standard
// library only.
package ml

import (
	"errors"
	"fmt"
)

// Classifier is a trained binary classifier over float vectors with labels
// 0 and 1.
type Classifier interface {
	// Predict returns the predicted label (0 or 1) for x.
	Predict(x []float64) int
	// Name identifies the learner.
	Name() string
}

// Trainer builds a classifier from labeled data.
type Trainer interface {
	// Train fits a model. Labels must be 0 or 1; every vector must have the
	// same dimension.
	Train(xs [][]float64, ys []int) (Classifier, error)
	Name() string
}

// ErrBadTrainingSet is returned when the data is empty, ragged, or
// single-class.
var ErrBadTrainingSet = errors.New("ml: bad training set")

// validate checks shape and returns the dimension.
func validate(xs [][]float64, ys []int) (int, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, fmt.Errorf("%w: %d vectors, %d labels", ErrBadTrainingSet, len(xs), len(ys))
	}
	dim := len(xs[0])
	if dim == 0 {
		return 0, fmt.Errorf("%w: zero-dimensional vectors", ErrBadTrainingSet)
	}
	seen := [2]bool{}
	for i, x := range xs {
		if len(x) != dim {
			return 0, fmt.Errorf("%w: vector %d has dim %d, want %d", ErrBadTrainingSet, i, len(x), dim)
		}
		if ys[i] != 0 && ys[i] != 1 {
			return 0, fmt.Errorf("%w: label %d is %d, want 0 or 1", ErrBadTrainingSet, i, ys[i])
		}
		seen[ys[i]] = true
	}
	if !seen[0] || !seen[1] {
		return 0, fmt.Errorf("%w: training set contains a single class", ErrBadTrainingSet)
	}
	return dim, nil
}

// Accuracy returns the fraction of samples clf labels correctly.
func Accuracy(clf Classifier, xs [][]float64, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if clf.Predict(x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// dot returns the inner product of equal-length vectors.
func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// sqDist returns ‖a−b‖².
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
