package ml

import (
	"math"
)

// SVM trains a soft-margin binary SVM with an RBF kernel using a simplified
// Sequential Minimal Optimization (Platt's SMO with the standard
// first/second-heuristic working-set selection), matching the paper's
// "SVM with Radial Basis Function kernel" receiver.
type SVM struct {
	// C is the soft-margin penalty (default 1).
	C float64
	// Gamma is the RBF width exp(-Gamma‖x−y‖²); 0 ⇒ 1/dim ("scale"-ish).
	Gamma float64
	// Tol is the KKT tolerance (default 1e-3).
	Tol float64
	// MaxPasses is the number of consecutive full passes without updates
	// before stopping (default 3).
	MaxPasses int
	// MaxIter caps total optimization sweeps (default 300).
	MaxIter int
}

var _ Trainer = SVM{}

// Name implements Trainer.
func (s SVM) Name() string { return "svm-rbf" }

type svmModel struct {
	vectors [][]float64
	alphaY  []float64 // α_i·y_i for support vectors
	b       float64
	gamma   float64
}

var _ Classifier = (*svmModel)(nil)

func (m *svmModel) Name() string { return "svm-rbf" }

func (m *svmModel) decision(x []float64) float64 {
	sum := -m.b
	for i, v := range m.vectors {
		sum += m.alphaY[i] * math.Exp(-m.gamma*sqDist(v, x))
	}
	return sum
}

// Predict implements Classifier.
func (m *svmModel) Predict(x []float64) int {
	if m.decision(x) >= 0 {
		return 1
	}
	return 0
}

// Train implements Trainer.
func (s SVM) Train(xs [][]float64, ys []int) (Classifier, error) {
	dim, err := validate(xs, ys)
	if err != nil {
		return nil, err
	}
	c := s.C
	if c <= 0 {
		c = 1
	}
	gamma := s.Gamma
	if gamma <= 0 {
		gamma = 1 / float64(dim)
	}
	tol := s.Tol
	if tol <= 0 {
		tol = 1e-3
	}
	maxPasses := s.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 3
	}
	maxIter := s.MaxIter
	if maxIter <= 0 {
		maxIter = 300
	}

	n := len(xs)
	y := make([]float64, n)
	for i, l := range ys {
		if l == 1 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}

	kern := newKernelCache(xs, gamma)
	alpha := make([]float64, n)
	var b float64

	// f(i) = decision value for sample i under current (alpha, b).
	f := func(i int) float64 {
		sum := -b
		row := kern.row(i)
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				sum += alpha[j] * y[j] * row[j]
			}
		}
		return sum
	}

	// rnd: a tiny deterministic LCG for the second-choice heuristic fallback,
	// so training is reproducible.
	var lcg uint64 = 0x2545F4914F6CDD1D
	nextRand := func(n int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int((lcg >> 33) % uint64(n))
	}

	passes := 0
	for iter := 0; passes < maxPasses && iter < maxIter; iter++ {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if (y[i]*ei < -tol && alpha[i] < c) || (y[i]*ei > tol && alpha[i] > 0) {
				j := nextRand(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - y[j]

				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(c, c+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-c)
					hi = math.Min(c, ai+aj)
				}
				if lo == hi {
					continue
				}
				kii := kern.at(i, i)
				kjj := kern.at(j, j)
				kij := kern.at(i, j)
				eta := 2*kij - kii - kjj
				if eta >= 0 {
					continue
				}
				ajNew := aj - y[j]*(ei-ej)/eta
				if ajNew > hi {
					ajNew = hi
				} else if ajNew < lo {
					ajNew = lo
				}
				if math.Abs(ajNew-aj) < 1e-5 {
					continue
				}
				aiNew := ai + y[i]*y[j]*(aj-ajNew)

				b1 := b + ei + y[i]*(aiNew-ai)*kii + y[j]*(ajNew-aj)*kij
				b2 := b + ej + y[i]*(aiNew-ai)*kij + y[j]*(ajNew-aj)*kjj
				switch {
				case aiNew > 0 && aiNew < c:
					b = b1
				case ajNew > 0 && ajNew < c:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				alpha[i], alpha[j] = aiNew, ajNew
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Keep only support vectors.
	m := &svmModel{gamma: gamma, b: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-9 {
			m.vectors = append(m.vectors, xs[i])
			m.alphaY = append(m.alphaY, alpha[i]*y[i])
		}
	}
	return m, nil
}

// kernelCache computes and caches RBF kernel rows. For small n it
// materializes the full Gram matrix; for large n it keeps a bounded set of
// rows and recomputes on miss.
type kernelCache struct {
	xs    [][]float64
	gamma float64
	full  [][]float64 // nil when too large
	rows  map[int][]float64
	order []int // FIFO eviction
	limit int
}

const fullKernelLimit = 2200 // ≈38 MB of float64 at the limit

func newKernelCache(xs [][]float64, gamma float64) *kernelCache {
	k := &kernelCache{xs: xs, gamma: gamma}
	n := len(xs)
	if n <= fullKernelLimit {
		k.full = make([][]float64, n)
		for i := range k.full {
			k.full[i] = make([]float64, n)
			for j := 0; j <= i; j++ {
				v := math.Exp(-gamma * sqDist(xs[i], xs[j]))
				k.full[i][j] = v
				k.full[j][i] = v // fills lower triangle of later rows lazily
			}
		}
		// Complete the upper triangles (rows j<i were only partially filled
		// when row i was built); easiest is symmetric copy.
		for i := range k.full {
			for j := i + 1; j < n; j++ {
				k.full[i][j] = k.full[j][i]
			}
		}
		return k
	}
	k.rows = make(map[int][]float64)
	k.limit = 256
	return k
}

func (k *kernelCache) computeRow(i int) []float64 {
	row := make([]float64, len(k.xs))
	for j := range k.xs {
		row[j] = math.Exp(-k.gamma * sqDist(k.xs[i], k.xs[j]))
	}
	return row
}

func (k *kernelCache) row(i int) []float64 {
	if k.full != nil {
		return k.full[i]
	}
	if r, ok := k.rows[i]; ok {
		return r
	}
	r := k.computeRow(i)
	if len(k.order) >= k.limit {
		evict := k.order[0]
		k.order = k.order[1:]
		delete(k.rows, evict)
	}
	k.rows[i] = r
	k.order = append(k.order, i)
	return r
}

func (k *kernelCache) at(i, j int) float64 {
	if k.full != nil {
		return k.full[i][j]
	}
	if r, ok := k.rows[i]; ok {
		return r[j]
	}
	if r, ok := k.rows[j]; ok {
		return r[i]
	}
	return math.Exp(-k.gamma * sqDist(k.xs[i], k.xs[j]))
}
