package ml

import "math"

// NaiveBayes is a Bernoulli naive Bayes classifier: the natural generative
// model for the receiver's binary execution vectors (each micro-interval is
// a Bernoulli "did I run here" feature). It is fast, interpretable (its
// per-feature log-odds ARE the Fig. 4(b)/13 column densities), and serves as
// a middle ground between the response-time decoder and the SVM.
type NaiveBayes struct {
	// Alpha is the Laplace smoothing constant (default 1).
	Alpha float64
	// Threshold binarizes features (feature > Threshold ⇒ 1; default 0.5).
	Threshold float64
}

var _ Trainer = NaiveBayes{}

// Name implements Trainer.
func (NaiveBayes) Name() string { return "naive-bayes" }

type nbModel struct {
	logPrior [2]float64
	// logOn[c][d] / logOff[c][d]: log P(x_d=1|c), log P(x_d=0|c).
	logOn, logOff [2][]float64
	threshold     float64
}

var _ Classifier = (*nbModel)(nil)

func (m *nbModel) Name() string { return "naive-bayes" }

// Predict implements Classifier.
func (m *nbModel) Predict(x []float64) int {
	score := [2]float64{m.logPrior[0], m.logPrior[1]}
	for c := 0; c < 2; c++ {
		on, off := m.logOn[c], m.logOff[c]
		for d, v := range x {
			if d >= len(on) {
				break
			}
			if v > m.threshold {
				score[c] += on[d]
			} else {
				score[c] += off[d]
			}
		}
	}
	if score[1] >= score[0] {
		return 1
	}
	return 0
}

// Train implements Trainer.
func (nb NaiveBayes) Train(xs [][]float64, ys []int) (Classifier, error) {
	dim, err := validate(xs, ys)
	if err != nil {
		return nil, err
	}
	alpha := nb.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	threshold := nb.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}

	var n [2]float64
	on := [2][]float64{make([]float64, dim), make([]float64, dim)}
	for i, x := range xs {
		c := ys[i] & 1
		n[c]++
		for d, v := range x {
			if v > threshold {
				on[c][d]++
			}
		}
	}
	m := &nbModel{threshold: threshold}
	total := n[0] + n[1]
	for c := 0; c < 2; c++ {
		m.logPrior[c] = math.Log((n[c] + alpha) / (total + 2*alpha))
		m.logOn[c] = make([]float64, dim)
		m.logOff[c] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			p := (on[c][d] + alpha) / (n[c] + 2*alpha)
			m.logOn[c][d] = math.Log(p)
			m.logOff[c][d] = math.Log(1 - p)
		}
	}
	return m, nil
}
