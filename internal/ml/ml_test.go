package ml

import (
	"math"
	"testing"

	"timedice/internal/rng"
)

// twoBlobs generates two Gaussian blobs in dim dimensions separated along
// every axis by sep; label 1 for the positive blob.
func twoBlobs(r *rng.Rand, n, dim int, sep float64) (xs [][]float64, ys []int) {
	for i := 0; i < n; i++ {
		y := r.Bit()
		x := make([]float64, dim)
		center := -sep / 2
		if y == 1 {
			center = sep / 2
		}
		for d := range x {
			x[d] = center + r.NormFloat64()
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys
}

// xorData generates the classic non-linearly-separable XOR problem.
func xorData(r *rng.Rand, n int) (xs [][]float64, ys []int) {
	for i := 0; i < n; i++ {
		a, b := r.Bit(), r.Bit()
		x := []float64{float64(a)*4 - 2 + 0.3*r.NormFloat64(), float64(b)*4 - 2 + 0.3*r.NormFloat64()}
		xs = append(xs, x)
		ys = append(ys, a^b)
	}
	return xs, ys
}

func trainEval(t *testing.T, tr Trainer, xs [][]float64, ys []int, tx [][]float64, ty []int) float64 {
	t.Helper()
	clf, err := tr.Train(xs, ys)
	if err != nil {
		t.Fatalf("%s: %v", tr.Name(), err)
	}
	return Accuracy(clf, tx, ty)
}

func TestAllLearnersOnSeparableBlobs(t *testing.T) {
	r := rng.New(1)
	xs, ys := twoBlobs(r, 400, 5, 4)
	tx, ty := twoBlobs(r, 400, 5, 4)
	for _, tr := range []Trainer{SVM{}, LogReg{}, Forest{}, KNN{}} {
		if acc := trainEval(t, tr, xs, ys, tx, ty); acc < 0.93 {
			t.Errorf("%s: accuracy %.3f on separable blobs, want >= 0.93", tr.Name(), acc)
		}
	}
}

func TestNonlinearLearnersOnXOR(t *testing.T) {
	r := rng.New(2)
	xs, ys := xorData(r, 500)
	tx, ty := xorData(r, 500)
	// RBF-SVM, forest and kNN handle XOR; linear logistic regression cannot.
	for _, tr := range []Trainer{SVM{C: 5, Gamma: 0.5}, Forest{Trees: 40}, KNN{K: 7}} {
		if acc := trainEval(t, tr, xs, ys, tx, ty); acc < 0.9 {
			t.Errorf("%s: accuracy %.3f on XOR, want >= 0.9", tr.Name(), acc)
		}
	}
	if acc := trainEval(t, LogReg{}, xs, ys, tx, ty); acc > 0.7 {
		t.Errorf("logreg on XOR: accuracy %.3f — a linear model should fail (sanity of the data)", acc)
	}
}

func TestValidation(t *testing.T) {
	for _, tr := range []Trainer{SVM{}, LogReg{}, Forest{}, KNN{}} {
		if _, err := tr.Train(nil, nil); err == nil {
			t.Errorf("%s: empty set accepted", tr.Name())
		}
		if _, err := tr.Train([][]float64{{1}, {2}}, []int{0, 0}); err == nil {
			t.Errorf("%s: single-class set accepted", tr.Name())
		}
		if _, err := tr.Train([][]float64{{1}, {2, 3}}, []int{0, 1}); err == nil {
			t.Errorf("%s: ragged set accepted", tr.Name())
		}
		if _, err := tr.Train([][]float64{{1}, {2}}, []int{0, 2}); err == nil {
			t.Errorf("%s: bad label accepted", tr.Name())
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	clf, err := KNN{}.Train([][]float64{{0}, {1}}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if Accuracy(clf, nil, nil) != 0 {
		t.Error("accuracy on empty test set should be 0")
	}
}

func TestSVMDeterministic(t *testing.T) {
	r := rng.New(3)
	xs, ys := twoBlobs(r, 200, 4, 3)
	probe := make([]float64, 4)
	a, err := SVM{}.Train(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SVM{}.Train(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		for d := range probe {
			probe[d] = 4*rFloat(r) - 2
		}
		if a.Predict(probe) != b.Predict(probe) {
			t.Fatal("SVM training is not deterministic")
		}
	}
}

func rFloat(r *rng.Rand) float64 { return r.Float64() }

func TestForestDeterministicWithSeed(t *testing.T) {
	r := rng.New(4)
	xs, ys := twoBlobs(r, 200, 4, 3)
	a, _ := Forest{Seed: 9}.Train(xs, ys)
	b, _ := Forest{Seed: 9}.Train(xs, ys)
	tx, ty := twoBlobs(r, 100, 4, 3)
	if Accuracy(a, tx, ty) != Accuracy(b, tx, ty) {
		t.Error("forest with fixed seed is not deterministic")
	}
}

func TestKNNSmallK(t *testing.T) {
	xs := [][]float64{{0}, {0.1}, {10}, {10.1}}
	ys := []int{0, 0, 1, 1}
	clf, err := KNN{K: 1}.Train(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if clf.Predict([]float64{0.2}) != 0 || clf.Predict([]float64{9.9}) != 1 {
		t.Error("1-NN misclassifies trivial points")
	}
}

func TestLogRegProbabilityMonotone(t *testing.T) {
	// On a 1-D threshold problem, predictions must be monotone in x.
	r := rng.New(5)
	var xs [][]float64
	var ys []int
	for i := 0; i < 500; i++ {
		v := 4*r.Float64() - 2
		y := 0
		if v > 0 {
			y = 1
		}
		xs = append(xs, []float64{v})
		ys = append(ys, y)
	}
	clf, err := LogReg{Epochs: 500}.Train(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	prev := clf.Predict([]float64{-2})
	for x := -2.0; x <= 2; x += 0.05 {
		cur := clf.Predict([]float64{x})
		if cur < prev {
			t.Fatalf("non-monotone predictions at x=%v", x)
		}
		prev = cur
	}
	if clf.Predict([]float64{-1.5}) != 0 || clf.Predict([]float64{1.5}) != 1 {
		t.Error("threshold problem misclassified")
	}
}

func TestSigmoid(t *testing.T) {
	if sigmoid(0) != 0.5 {
		t.Error("sigmoid(0) != 0.5")
	}
	if s := sigmoid(50); math.Abs(s-1) > 1e-9 {
		t.Errorf("sigmoid(50) = %v", s)
	}
	if s := sigmoid(-50); s > 1e-9 {
		t.Errorf("sigmoid(-50) = %v", s)
	}
	// Numerical symmetry: σ(-z) = 1 - σ(z).
	for _, z := range []float64{0.1, 1, 3, 10} {
		if math.Abs(sigmoid(-z)-(1-sigmoid(z))) > 1e-12 {
			t.Errorf("sigmoid asymmetry at %v", z)
		}
	}
}

func TestKernelCacheConsistency(t *testing.T) {
	r := rng.New(6)
	xs, _ := twoBlobs(r, 50, 3, 2)
	k := newKernelCache(xs, 0.3)
	for i := 0; i < 50; i += 7 {
		for j := 0; j < 50; j += 11 {
			want := math.Exp(-0.3 * sqDist(xs[i], xs[j]))
			if got := k.at(i, j); math.Abs(got-want) > 1e-12 {
				t.Fatalf("kernel(%d,%d) = %v, want %v", i, j, got, want)
			}
			if got := k.row(i)[j]; math.Abs(got-want) > 1e-12 {
				t.Fatalf("row kernel(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestBinaryVectorsLikeExecutionVectors(t *testing.T) {
	// The covert-channel receiver feeds 0/1 vectors with class-dependent
	// column densities; every learner should beat 0.8 on a clean version.
	r := rng.New(8)
	const dim = 60
	gen := func(n int) ([][]float64, []int) {
		var xs [][]float64
		var ys []int
		for i := 0; i < n; i++ {
			y := r.Bit()
			x := make([]float64, dim)
			for d := range x {
				p := 0.3
				if y == 1 && d >= dim/2 {
					p = 0.7
				}
				if r.Bool(p) {
					x[d] = 1
				}
			}
			xs = append(xs, x)
			ys = append(ys, y)
		}
		return xs, ys
	}
	xs, ys := gen(400)
	tx, ty := gen(400)
	for _, tr := range []Trainer{SVM{}, LogReg{}, Forest{}, KNN{}} {
		if acc := trainEval(t, tr, xs, ys, tx, ty); acc < 0.8 {
			t.Errorf("%s: accuracy %.3f on execution-vector-like data", tr.Name(), acc)
		}
	}
}

func TestNaiveBayesOnBinaryVectors(t *testing.T) {
	r := rng.New(21)
	const dim = 60
	gen := func(n int) ([][]float64, []int) {
		var xs [][]float64
		var ys []int
		for i := 0; i < n; i++ {
			y := r.Bit()
			x := make([]float64, dim)
			for d := range x {
				p := 0.25
				if y == 1 && d >= dim/2 {
					p = 0.75
				}
				if r.Bool(p) {
					x[d] = 1
				}
			}
			xs = append(xs, x)
			ys = append(ys, y)
		}
		return xs, ys
	}
	xs, ys := gen(400)
	tx, ty := gen(400)
	if acc := trainEval(t, NaiveBayes{}, xs, ys, tx, ty); acc < 0.9 {
		t.Errorf("naive bayes accuracy %.3f on Bernoulli data, want >= 0.9", acc)
	}
}

func TestNaiveBayesValidation(t *testing.T) {
	if _, err := (NaiveBayes{}).Train(nil, nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := (NaiveBayes{}).Train([][]float64{{1}, {0}}, []int{1, 1}); err == nil {
		t.Error("single-class set accepted")
	}
}

func TestNaiveBayesSkewedPrior(t *testing.T) {
	// With identical likelihoods, the prior decides.
	xs := [][]float64{{1}, {1}, {1}, {1}, {1}, {0}}
	ys := []int{1, 1, 1, 1, 1, 0}
	clf, err := NaiveBayes{}.Train(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if clf.Predict([]float64{1}) != 1 {
		t.Error("majority-class feature should predict 1")
	}
}
