package ml

import "sort"

// KNN is a k-nearest-neighbors classifier (Euclidean distance); the simplest
// possible execution-vector decoder, useful as a floor for the learned
// receivers.
type KNN struct {
	// K is the neighborhood size (default 5).
	K int
}

var _ Trainer = KNN{}

// Name implements Trainer.
func (k KNN) Name() string { return "knn" }

type knnModel struct {
	xs [][]float64
	ys []int
	k  int
}

var _ Classifier = (*knnModel)(nil)

func (m *knnModel) Name() string { return "knn" }

// Predict implements Classifier.
func (m *knnModel) Predict(x []float64) int {
	type cand struct {
		d float64
		y int
	}
	cands := make([]cand, len(m.xs))
	for i, v := range m.xs {
		cands[i] = cand{d: sqDist(v, x), y: m.ys[i]}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	k := m.k
	if k > len(cands) {
		k = len(cands)
	}
	ones := 0
	for i := 0; i < k; i++ {
		ones += cands[i].y
	}
	if 2*ones >= k {
		return 1
	}
	return 0
}

// Train implements Trainer.
func (k KNN) Train(xs [][]float64, ys []int) (Classifier, error) {
	if _, err := validate(xs, ys); err != nil {
		return nil, err
	}
	kk := k.K
	if kk <= 0 {
		kk = 5
	}
	return &knnModel{xs: xs, ys: ys, k: kk}, nil
}
