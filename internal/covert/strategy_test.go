package covert

import (
	"testing"

	"timedice/internal/ml"
	"timedice/internal/policies"
)

func TestPulsePositionLevelsCapped(t *testing.T) {
	cfg := baseConfig()
	cfg.Strategy = PulsePosition
	cfg.Levels = 10 // only 3 sender arrivals per 150ms window at 50ms period
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Levels != 3 {
		t.Errorf("levels = %d, want capped at 3", cfg.Levels)
	}
}

func TestStrategyString(t *testing.T) {
	if AmplitudeModulation.String() != "amplitude" || PulsePosition.String() != "pulse-position" {
		t.Error("strategy names")
	}
}

// TestPulsePositionChannel captures the smarter-adversary finding: position
// modulation is invisible to the response-time receiver (the burst position
// barely moves the completion instant) but clearly readable from execution
// vectors; TimeDice degrades the vector receiver but — consistent with
// §V-C's "communication is still possible at a slow rate" — does not
// eliminate it.
func TestPulsePositionChannel(t *testing.T) {
	run := func(pol policies.Kind) *Result {
		cfg := baseConfig()
		cfg.Strategy = PulsePosition
		cfg.ProfileWindows = 400
		cfg.TestWindows = 800
		cfg.Policy = pol
		res, err := Run(cfg, ml.SVM{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	nr := run(policies.NoRandom)
	td := run(policies.TimeDiceW)

	// Stealth: the RT receiver is near chance even with no defense.
	if nr.RTAccuracy > 0.62 {
		t.Errorf("PPM should evade the response-time receiver; got %.3f", nr.RTAccuracy)
	}
	// The vector receiver reads it clearly...
	if nr.VecAccuracy["svm-rbf"] < 0.9 {
		t.Errorf("SVM on PPM under NoRandom: %.3f, want >= 0.9", nr.VecAccuracy["svm-rbf"])
	}
	// ...and TimeDice knocks it down substantially.
	if td.VecAccuracy["svm-rbf"] > nr.VecAccuracy["svm-rbf"]-0.10 {
		t.Errorf("TimeDice vs PPM: SVM %.3f vs NoRandom %.3f — insufficient drop",
			td.VecAccuracy["svm-rbf"], nr.VecAccuracy["svm-rbf"])
	}
}

// TestLocalShufflingDoesNotCloseTheChannel is the TaskShuffler negative
// result: randomizing the order of tasks INSIDE partitions leaves the
// partition-level CPU occupancy — the channel's medium — untouched, so the
// covert channel survives essentially intact. Only partition-level
// randomization (TimeDice) closes it.
func TestLocalShufflingDoesNotCloseTheChannel(t *testing.T) {
	base, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.ShuffleLocal = true
	shuffled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shuffled.RTAccuracy < base.RTAccuracy-0.08 {
		t.Errorf("local shuffling dropped accuracy from %.3f to %.3f — it should not close the channel",
			base.RTAccuracy, shuffled.RTAccuracy)
	}
	if shuffled.RTAccuracy < 0.8 {
		t.Errorf("channel under local shuffling: %.3f, want still high", shuffled.RTAccuracy)
	}
}
