// Package covert implements the paper's §III covert timing channel between
// real-time partitions, end to end:
//
//   - a sender partition that modulates how it consumes its CPU budget to
//     signal bits (full consumption = 1, minimal = 0, Fig. 3);
//   - a receiver partition whose single task measures its own response time
//     over fixed monitoring windows, and additionally records an execution
//     vector of M micro-intervals per window for the learning-based receiver
//     (§III-d);
//   - the profiling phase (alternating bits; odd/even grouping; empirical
//     Pr(R|X) models) and the communication phase (Bayesian inference on new
//     observations, or a trained classifier on execution vectors);
//   - noise partitions that perturb their periods and execution times by a
//     bounded random fraction, as in the feasibility test (§III-f);
//   - channel metrics: decoding accuracy and the information-theoretic
//     channel capacity of §V-B1.
//
// The same experiment runs under any global policy, which is how Figs. 4, 12,
// 13, 14 and 15 are regenerated.
package covert

import (
	"fmt"

	"timedice/internal/engine"
	"timedice/internal/infotheory"
	"timedice/internal/ml"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/server"
	"timedice/internal/stats"
	"timedice/internal/task"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

// Config describes one covert-channel experiment.
type Config struct {
	// Spec is the system; sender and receiver partitions get their task sets
	// replaced by the channel tasks, the rest become noise partitions.
	Spec model.SystemSpec
	// Sender and Receiver are partition indices into Spec.Partitions.
	Sender, Receiver int

	// Window is the monitoring window length (§III-a); one bit is signaled
	// per window. Default: 3× the receiver partition's period, as in the
	// feasibility test (150 ms for Table I).
	Window vtime.Duration
	// MicroIntervals is M, the execution-vector length (default 150).
	MicroIntervals int
	// DemandFactor sizes the receiver's per-window code block as a fraction
	// of its per-window budget supply (demand = DemandFactor · (Window/T_R)
	// · B_R). The paper's block needs "three full budget-replenishments of
	// Π_4 in the worst case", i.e. slightly more than two budgets of demand:
	// the default 0.70 of the 3-period supply reproduces Fig. 4(a)'s
	// response-time range (just past 2·T_R) and leaves slack so one window's
	// measurement never bleeds into the next.
	DemandFactor float64
	// SenderPeriod is the sender task's period. The default Window/3 makes
	// the sender "execute three times during a monitoring window" as in
	// Fig. 3 and §III-e (50 ms for the Table I configuration).
	SenderPeriod vtime.Duration
	// Servers is the budget-server policy used by every partition in the
	// channel experiments (default server.Deferrable). The paper's
	// sporadic-polling server retains budget for deferred arrivals, which is
	// what lets a sender job released mid-period burst against the receiver;
	// a pure polling server would discard the budget and structurally close
	// the channel in a phase-locked simulation.
	Servers server.Policy
	// NoiseFraction is the bounded random variation of the noise partitions'
	// task periods and execution times (default 0.20 as in §III-f). Set
	// NoNoise to run them at exactly nominal parameters instead.
	NoiseFraction float64
	// NoNoise disables the noise partitions' random variation.
	NoNoise bool

	// ProfileWindows and TestWindows size the two phases.
	ProfileWindows, TestWindows int
	// WarmupWindows run before profiling and are discarded (default 10).
	WarmupWindows int

	// Policy is the global scheduler under test (default policies.NoRandom).
	Policy policies.Kind
	// Quantum is MIN_INV_SIZE for the TimeDice policies (default 1 ms).
	Quantum vtime.Duration

	// Levels enables the multi-bit extension: the sender signals one of
	// Levels budget-consumption levels per window and the receiver decodes a
	// symbol (default 2 = binary).
	Levels int
	// TestSymbols, when non-empty, replaces the uniformly random
	// communication-phase symbols with the given sequence (values in
	// [0, Levels)), truncated or zero-padded to TestWindows. The message
	// layer (SendMessage) uses it to transmit real payloads.
	TestSymbols []int
	// Strategy selects the sender's modulation (default AmplitudeModulation).
	Strategy SenderStrategy
	// ShuffleLocal applies TaskShuffler-style randomization to every
	// partition's LOCAL scheduler (random dispatch among backlogged tasks).
	// It demonstrates the negative result that task-level randomization
	// cannot close the partition-level channel: the partitions' CPU
	// occupancy — the channel's medium — is unchanged.
	ShuffleLocal bool

	Seed uint64

	// ShardWorkers, when > 1, steps the trial's simulation sharded across
	// that many OS threads (engine.System.SetSharding; the Harness owns the
	// worker pool). Sharded stepping is exact, so every Result is identical
	// to the sequential run's — the setting trades goroutines for wall-clock
	// time on multi-core hosts and is recorded here for provenance only.
	ShardWorkers int

	// Telemetry, when non-nil, receives the simulation's event stream
	// (slices, decisions, inversion windows) — e.g. an obs.Recorder for
	// flight-recording a channel trial. Attaching a sink must not change
	// any Result; TestHarnessTelemetryInvariance pins that.
	Telemetry telemetry.Sink
}

func (c *Config) fill() error {
	if c.Sender < 0 || c.Sender >= len(c.Spec.Partitions) ||
		c.Receiver < 0 || c.Receiver >= len(c.Spec.Partitions) || c.Sender == c.Receiver {
		return fmt.Errorf("covert: invalid sender/receiver indices %d/%d", c.Sender, c.Receiver)
	}
	if c.Window <= 0 {
		c.Window = 3 * c.Spec.Partitions[c.Receiver].Period
	}
	if c.MicroIntervals <= 0 {
		c.MicroIntervals = 150
	}
	if c.DemandFactor <= 0 {
		c.DemandFactor = 0.90
	}
	if c.SenderPeriod <= 0 {
		c.SenderPeriod = c.Window / 3
	}
	if c.Servers == 0 {
		c.Servers = server.Deferrable
	}
	switch {
	case c.NoNoise:
		c.NoiseFraction = 0
	case c.NoiseFraction <= 0:
		c.NoiseFraction = 0.20
	}
	if c.ProfileWindows <= 0 {
		c.ProfileWindows = 500
	}
	if c.TestWindows <= 0 {
		c.TestWindows = 1000
	}
	if c.WarmupWindows <= 0 {
		c.WarmupWindows = 10
	}
	if c.Policy == 0 {
		c.Policy = policies.NoRandom
	}
	if c.Levels < 2 {
		c.Levels = 2
	}
	if c.Strategy == PulsePosition {
		if slots := int(c.Window / c.SenderPeriod); c.Levels > slots {
			c.Levels = slots
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// SenderStrategy selects how the sender encodes a symbol into its budget
// consumption.
type SenderStrategy int

const (
	// AmplitudeModulation is the paper's scheme (Fig. 3): the symbol scales
	// HOW MUCH budget every sender job in the window consumes.
	AmplitudeModulation SenderStrategy = iota
	// PulsePosition encodes the symbol in WHICH of the window's sender jobs
	// consumes the full budget (the others consume minimally) — a smarter
	// adversary probing whether TimeDice's defense depends on the
	// modulation family. Levels is capped at the number of sender arrivals
	// per window.
	PulsePosition
)

// String names the strategy.
func (s SenderStrategy) String() string {
	if s == PulsePosition {
		return "pulse-position"
	}
	return "amplitude"
}

// Observation is one monitoring window's worth of receiver-side evidence.
type Observation struct {
	Window   int
	Label    int            // the sender's symbol (ground truth)
	Response vtime.Duration // receiver's measured response time
	Vector   []float64      // execution vector (length M)
}

// Result is the outcome of one experiment.
type Result struct {
	Config Config

	Profile []Observation
	Test    []Observation

	// RTAccuracy is the response-time (Bayesian) decoder's accuracy over the
	// test phase.
	RTAccuracy float64
	// OnlineRTAccuracy is the adaptive (decision-directed, exponentially
	// forgetting) response-time decoder's accuracy — an extension checking
	// that TimeDice's protection is not an artifact of model staleness.
	OnlineRTAccuracy float64
	// VecAccuracy maps learner name to execution-vector decoding accuracy.
	VecAccuracy map[string]float64
	// Capacity is the histogram-based channel capacity (bits per window)
	// over the test phase with uniform input, Eq. (6) as the paper
	// evaluates it.
	Capacity float64
	// CapacityOpt maximizes over the input distribution via Blahut–Arimoto
	// (the full C = max_{p(X)} (H(X) − H(X|R)) definition); ≥ Capacity up
	// to estimation noise.
	CapacityOpt float64
	// Hist0 and Hist1 are the profiled Pr(R|X) histograms (ms bins).
	Hist0, Hist1 *stats.Histogram
}

// Run executes the experiment: build the system, attach sender/receiver/noise
// instrumentation, simulate warmup+profile+test, then decode. vecTrainers,
// when non-empty, are trained on the profile-phase vectors and evaluated on
// the test phase (the §III-d learning-based approach).
//
// Run is the one-shot form of the trial Harness: campaigns that sweep many
// seeds over one configuration should build a Harness (or use RunSeeds,
// which does) and reuse it instead of reconstructing the system per trial.
func Run(cfg Config, vecTrainers ...ml.Trainer) (*Result, error) {
	h, err := NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	return h.Run(h.cfg.Seed, vecTrainers...)
}

// decode turns one simulated trial's collected windows into a Result.
func decode(cfg Config, cs *channelState, symbols []int, vecTrainers []ml.Trainer) (*Result, error) {
	res := &Result{Config: cfg, VecAccuracy: make(map[string]float64)}
	res.Profile, res.Test = cs.observations(cfg, symbols)
	if len(res.Profile) == 0 || len(res.Test) == 0 {
		return nil, fmt.Errorf("covert: no observations collected (profile=%d test=%d)", len(res.Profile), len(res.Test))
	}

	dec := profileResponses(res.Profile, cfg.Levels)
	res.Hist0, res.Hist1 = dec.hist(0), dec.hist(1)
	online := newOnlineDecoder(dec, 0)
	correct, onlineCorrect := 0, 0
	for _, ob := range res.Test {
		if dec.classify(ob.Response) == ob.Label {
			correct++
		}
		if online.Classify(ob.Response) == ob.Label {
			onlineCorrect++
		}
	}
	res.RTAccuracy = float64(correct) / float64(len(res.Test))
	res.OnlineRTAccuracy = float64(onlineCorrect) / float64(len(res.Test))
	res.Capacity, res.CapacityOpt = capacity(res.Test)

	for _, tr := range vecTrainers {
		acc, err := vectorAccuracy(tr, res.Profile, res.Test)
		if err != nil {
			return nil, fmt.Errorf("covert: %s: %w", tr.Name(), err)
		}
		res.VecAccuracy[tr.Name()] = acc
	}
	return res, nil
}

// makeSymbols builds the per-window sender symbols: warmup zeros, a balanced
// profile sequence, and uniform random test symbols.
//
// The profile sequence cycles through all levels in blocks, but the order
// within each block follows an agreed-upon pseudo-random permutation (both
// parties derive it from the channel protocol). A plain alternation would
// lock the profiling pattern to any periodic ambient interference whose
// period divides the alternation cycle — the Table I system's hyperperiod is
// exactly 4 monitoring windows — and the receiver would profile the ambient
// phase instead of the sender's signal. Block-shuffling makes every level
// sample every ambient phase.
func makeSymbols(cfg Config, r *rng.Rand, total int) []int {
	symbols := make([]int, total)
	fillSymbols(cfg, r, symbols)
	return symbols
}

// fillSymbols writes the per-window symbol sequence into an existing slice,
// so a reused Harness can redraw a trial's symbols without reallocating (the
// sender's modulation closure captures the slice's backing array).
func fillSymbols(cfg Config, r *rng.Rand, symbols []int) {
	total := len(symbols)
	// The permutation stream is part of the channel protocol: fixed seed,
	// independent of the experiment's noise/selection randomness.
	proto := rng.New(0x7a11eb0a ^ uint64(cfg.Levels))
	block := make([]int, cfg.Levels)
	for w := 0; w < total; w++ {
		switch {
		case w < cfg.WarmupWindows:
			symbols[w] = 0
		case w < cfg.WarmupWindows+cfg.ProfileWindows:
			k := (w - cfg.WarmupWindows) % cfg.Levels
			if k == 0 {
				for i := range block {
					block[i] = i
				}
				proto.Shuffle(len(block), func(i, j int) { block[i], block[j] = block[j], block[i] })
			}
			symbols[w] = block[k]
		default:
			k := w - cfg.WarmupWindows - cfg.ProfileWindows
			if k < len(cfg.TestSymbols) {
				s := cfg.TestSymbols[k]
				if s < 0 || s >= cfg.Levels {
					s = 0
				}
				symbols[w] = s
			} else if len(cfg.TestSymbols) > 0 {
				symbols[w] = 0
			} else {
				symbols[w] = r.Intn(cfg.Levels)
			}
		}
	}
}

// capacity estimates the channel capacity from the test observations with
// 1 ms response-time bins: both the paper's uniform-input evaluation
// (Eq. 6) and the input-optimized Blahut–Arimoto value. For the multi-bit
// extension it reports binary capacity over the low bit.
func capacity(obs []Observation) (uniform, optimal float64) {
	if len(obs) == 0 {
		return 0, 0
	}
	maxMS := 1
	for _, ob := range obs {
		if ms := int(ob.Response / vtime.Millisecond); ms > maxMS {
			maxMS = ms
		}
	}
	j := infotheory.NewJointCounts(maxMS + 2)
	for _, ob := range obs {
		j.Add(ob.Label&1, int(ob.Response/vtime.Millisecond))
	}
	return j.Capacity(), j.OptimalCapacity()
}

// vectorAccuracy trains tr on the profile vectors and scores the test phase.
func vectorAccuracy(tr ml.Trainer, profile, test []Observation) (float64, error) {
	xs := make([][]float64, 0, len(profile))
	ys := make([]int, 0, len(profile))
	for _, ob := range profile {
		xs = append(xs, ob.Vector)
		ys = append(ys, ob.Label&1)
	}
	clf, err := tr.Train(xs, ys)
	if err != nil {
		return 0, err
	}
	tx := make([][]float64, 0, len(test))
	ty := make([]int, 0, len(test))
	for _, ob := range test {
		tx = append(tx, ob.Vector)
		ty = append(ty, ob.Label&1)
	}
	return ml.Accuracy(clf, tx, ty), nil
}

// channelState wires the instrumentation into a built system.
type channelState struct {
	window     vtime.Duration
	micro      int
	total      int
	receiver   int // partition index
	responses  []vtime.Duration
	haveResp   []bool
	vectors    [][]float64
	receiverTk *task.Task
	sched      *task.Scheduler
	// noiseSplits retains, in creation order, every generator split off the
	// noise stream during instrumentation (shuffle hooks first, then noise
	// tasks). A reused Harness reseeds them in this exact order to replay a
	// fresh run's split sequence.
	noiseSplits []*rng.Rand
}

// resetBuffers clears the per-trial observation state so the instrumented
// system can run another trial.
func (cs *channelState) resetBuffers() {
	for i := range cs.responses {
		cs.responses[i] = 0
		cs.haveResp[i] = false
	}
	for _, v := range cs.vectors {
		for i := range v {
			v[i] = 0
		}
	}
}

// instrument replaces the sender's and receiver's task sets with the channel
// tasks and adds noise hooks to all other partitions.
func instrument(cfg Config, spec model.SystemSpec, symbols []int, noise *rng.Rand) (*model.Built, *channelState, error) {
	sSpec := spec.Partitions[cfg.Sender]
	rSpec := spec.Partitions[cfg.Receiver]

	// Copy the spec so we can replace the channel partitions' task sets and
	// apply the experiment's server policy.
	parts := make([]model.PartitionSpec, len(spec.Partitions))
	copy(parts, spec.Partitions)
	for i := range parts {
		parts[i].Server = cfg.Servers
	}
	senderBudget := sSpec.Budget
	parts[cfg.Sender].Tasks = []model.TaskSpec{{
		Name:   "sender",
		Period: cfg.SenderPeriod,
		WCET:   senderBudget,
	}}
	supplyPerWindow := rSpec.Budget.Scale(int64(cfg.Window), int64(rSpec.Period))
	demand := vtime.Duration(cfg.DemandFactor * float64(supplyPerWindow))
	if demand < vtime.Millisecond {
		demand = vtime.Millisecond
	}
	parts[cfg.Receiver].Tasks = []model.TaskSpec{{
		Name:   "receiver",
		Period: cfg.Window,
		WCET:   demand,
		// Responses can exceed the window under randomization; give the
		// validation an explicit deadline.
		Deadline: 8 * cfg.Window,
	}}
	spec.Partitions = parts

	built, err := spec.Build()
	if err != nil {
		return nil, nil, err
	}

	cs := &channelState{
		window:    cfg.Window,
		micro:     cfg.MicroIntervals,
		total:     len(symbols),
		receiver:  cfg.Receiver,
		responses: make([]vtime.Duration, len(symbols)),
		haveResp:  make([]bool, len(symbols)),
		vectors:   make([][]float64, len(symbols)),
	}
	for w := range cs.vectors {
		cs.vectors[w] = make([]float64, cfg.MicroIntervals)
	}

	// Sender modulation.
	levels := cfg.Levels
	sender := built.Task[model.TaskKey(sSpec.Name, "sender")]
	const minBurst = 10 * vtime.Microsecond
	switch cfg.Strategy {
	case PulsePosition:
		// Symbol s: only the s-th sender arrival of the window bursts.
		period := cfg.SenderPeriod
		sender.ExecFn = func(_ int64, arrival vtime.Time) vtime.Duration {
			w := int(arrival / vtime.Time(cfg.Window))
			if w >= len(symbols) {
				w = len(symbols) - 1
			}
			offset := vtime.Duration(arrival) % cfg.Window
			pos := int(offset / period)
			if pos == symbols[w] {
				return senderBudget
			}
			return minBurst
		}
	default: // AmplitudeModulation
		sender.ExecFn = func(_ int64, arrival vtime.Time) vtime.Duration {
			w := int(arrival / vtime.Time(cfg.Window))
			if w >= len(symbols) {
				w = len(symbols) - 1
			}
			level := symbols[w]
			if level <= 0 {
				return minBurst
			}
			return senderBudget.Scale(int64(level), int64(levels-1))
		}
	}

	// Receiver: record response times by window index (its job k arrives at
	// exactly k·Window).
	cs.sched = built.Sched[rSpec.Name]
	cs.sched.OnComplete = func(c task.Completion) {
		w := int(c.Job.Index)
		if w >= 0 && w < len(cs.responses) {
			cs.responses[w] = c.Response
			cs.haveResp[w] = true
		}
	}

	if cfg.ShuffleLocal {
		for _, ps := range spec.Partitions {
			sr := noise.Split()
			cs.noiseSplits = append(cs.noiseSplits, sr)
			built.Sched[ps.Name].Shuffle = sr.Intn
		}
	}

	// Noise partitions: bounded random variation of period and execution.
	if cfg.NoiseFraction > 0 {
		frac := cfg.NoiseFraction
		for pi, ps := range spec.Partitions {
			if pi == cfg.Sender || pi == cfg.Receiver {
				continue
			}
			for _, ts := range ps.Tasks {
				t := built.Task[model.TaskKey(ps.Name, ts.Name)]
				wcet, period := t.WCET, t.Period
				nr := noise.Split()
				cs.noiseSplits = append(cs.noiseSplits, nr)
				t.ExecFn = func(int64, vtime.Time) vtime.Duration {
					// Execution varies downward (WCET is the upper bound).
					return vtime.Duration(float64(wcet) * (1 - frac*nr.Float64()))
				}
				t.PeriodFn = func(int64, vtime.Time) vtime.Duration {
					// Inter-arrival varies upward (Period is the minimum).
					return vtime.Duration(float64(period) * (1 + frac*nr.Float64()))
				}
			}
		}
	}
	return built, cs, nil
}

// install hooks the execution-vector collection into the engine.
func (cs *channelState) install(sys *engine.System) {
	sys.TraceFn = func(seg engine.Segment) {
		if seg.Partition != cs.receiver {
			return
		}
		cs.mark(seg.Start, seg.End)
	}
}

// mark sets the micro-interval bits overlapped by [start, end).
func (cs *channelState) mark(start, end vtime.Time) {
	microLen := cs.window / vtime.Duration(cs.micro)
	if microLen <= 0 {
		microLen = vtime.Microsecond
	}
	for t := start; t < end; {
		w := int(t / vtime.Time(cs.window))
		if w >= cs.total {
			return
		}
		inWindow := vtime.Duration(t - vtime.Time(w)*vtime.Time(cs.window))
		mi := int(inWindow / microLen)
		if mi >= cs.micro {
			mi = cs.micro - 1
		}
		cs.vectors[w][mi] = 1
		// Advance to the start of the next micro interval.
		next := vtime.Time(w)*vtime.Time(cs.window) + vtime.Time(vtime.Duration(mi+1)*microLen)
		if next <= t {
			next = t + 1
		}
		t = next
	}
}

// observations splits the collected windows into profile and test sets,
// discarding warmup and any window whose response never completed.
func (cs *channelState) observations(cfg Config, symbols []int) (profile, test []Observation) {
	for w := cfg.WarmupWindows; w < cs.total; w++ {
		if !cs.haveResp[w] {
			continue
		}
		ob := Observation{
			Window:   w,
			Label:    symbols[w],
			Response: cs.responses[w],
			Vector:   cs.vectors[w],
		}
		if w < cfg.WarmupWindows+cfg.ProfileWindows {
			profile = append(profile, ob)
		} else {
			test = append(test, ob)
		}
	}
	return profile, test
}
