package covert

import (
	"testing"

	"timedice/internal/ml"
	"timedice/internal/policies"
	"timedice/internal/server"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func baseConfig() Config {
	return Config{
		Spec:           workload.TableIBase(),
		Sender:         1,
		Receiver:       3,
		ProfileWindows: 200,
		TestWindows:    400,
		Seed:           7,
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := baseConfig()
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Window != vtime.MS(150) {
		t.Errorf("window %v, want 3·T_R = 150ms", cfg.Window)
	}
	if cfg.SenderPeriod != vtime.MS(50) {
		t.Errorf("sender period %v, want Window/3 = 50ms", cfg.SenderPeriod)
	}
	if cfg.MicroIntervals != 150 || cfg.Levels != 2 {
		t.Error("defaults")
	}
	if cfg.Servers != server.Deferrable {
		t.Error("default server policy for channel experiments must be deferrable")
	}
	if cfg.NoiseFraction != 0.20 {
		t.Errorf("noise fraction %v, want 0.20", cfg.NoiseFraction)
	}
	if cfg.Policy != policies.NoRandom {
		t.Error("default policy")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Sender = 9
	if _, err := Run(cfg); err == nil {
		t.Error("bad sender index accepted")
	}
	cfg = baseConfig()
	cfg.Receiver = cfg.Sender
	if _, err := Run(cfg); err == nil {
		t.Error("sender == receiver accepted")
	}
}

func TestNoNoiseOption(t *testing.T) {
	cfg := baseConfig()
	cfg.NoNoise = true
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.NoiseFraction != 0 {
		t.Error("NoNoise must zero the noise fraction")
	}
}

func TestChannelWorksUnderNoRandom(t *testing.T) {
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.RTAccuracy < 0.85 {
		t.Errorf("NoRandom RT accuracy %.3f, want >= 0.85 (paper: 95.7%%)", res.RTAccuracy)
	}
	if res.Capacity < 0.4 {
		t.Errorf("NoRandom capacity %.3f b/window, want high (paper: 0.8-0.9)", res.Capacity)
	}
	if len(res.Profile) != 200 || len(res.Test) != 400 {
		t.Errorf("observation counts: %d/%d", len(res.Profile), len(res.Test))
	}
	// Every observation carries a full execution vector.
	for _, ob := range res.Test[:5] {
		if len(ob.Vector) != 150 {
			t.Fatalf("vector length %d", len(ob.Vector))
		}
	}
}

func TestTimeDiceMitigates(t *testing.T) {
	nr, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.Policy = policies.TimeDiceW
	td, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if td.RTAccuracy > nr.RTAccuracy-0.2 {
		t.Errorf("TimeDiceW accuracy %.3f vs NoRandom %.3f", td.RTAccuracy, nr.RTAccuracy)
	}
	if td.Capacity > nr.Capacity/2 {
		t.Errorf("TimeDiceW capacity %.3f vs NoRandom %.3f", td.Capacity, nr.Capacity)
	}
}

func TestVectorReceiverBeatsOrMatchesRT(t *testing.T) {
	// §III-d: the execution vector embeds more information than the response
	// time (the latter is derivable from the former), so a competent learner
	// should at least roughly match the RT decoder under NoRandom.
	res, err := Run(baseConfig(), ml.SVM{}, ml.LogReg{})
	if err != nil {
		t.Fatal(err)
	}
	svm := res.VecAccuracy["svm-rbf"]
	if svm < res.RTAccuracy-0.08 {
		t.Errorf("SVM accuracy %.3f well below RT accuracy %.3f", svm, res.RTAccuracy)
	}
	if _, ok := res.VecAccuracy["logreg"]; !ok {
		t.Error("second learner missing from results")
	}
}

func TestMultiBitChannel(t *testing.T) {
	cfg := baseConfig()
	cfg.Levels = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4-level decoding is harder than binary but must beat the 25% guess
	// under NoRandom.
	if res.RTAccuracy < 0.5 {
		t.Errorf("4-level accuracy %.3f, want well above 0.25", res.RTAccuracy)
	}
}

func TestSeedReproducibility(t *testing.T) {
	a, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.RTAccuracy != b.RTAccuracy || a.Capacity != b.Capacity {
		t.Error("same seed must reproduce identical results")
	}
	cfg := baseConfig()
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.RTAccuracy == a.RTAccuracy && c.Capacity == a.Capacity {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestSeparationBounds(t *testing.T) {
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	sep := Separation(res.Hist0, res.Hist1)
	if sep < 0 || sep > 1 {
		t.Fatalf("separation %v out of [0,1]", sep)
	}
	if Separation(nil, res.Hist1) != 0 || Separation(res.Hist0, nil) != 0 {
		t.Error("nil histograms should give 0")
	}
	if got := Separation(res.Hist0, res.Hist0); got != 0 {
		t.Errorf("self separation %v", got)
	}
}

func TestPollingServerOptionStillRuns(t *testing.T) {
	// Ablation path: the experiment runs under a polling server too (the
	// phase-locked lattice weakens the channel, but the machinery works).
	cfg := baseConfig()
	cfg.Servers = server.Polling
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Test) == 0 {
		t.Fatal("no observations under polling server")
	}
}

func TestSporadicServerOptionStillRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.Servers = server.Sporadic
	cfg.ProfileWindows = 100
	cfg.TestWindows = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Test) == 0 {
		t.Fatal("no observations under sporadic server")
	}
}

func TestExecutionVectorsConsistentWithResponses(t *testing.T) {
	// A window in which the receiver never executed cannot have a recorded
	// response; conversely windows with responses must show execution.
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ob := range res.Test {
		var ran bool
		for _, v := range ob.Vector {
			if v > 0 {
				ran = true
				break
			}
		}
		if !ran {
			t.Fatalf("window %d has a response (%v) but an empty execution vector", ob.Window, ob.Response)
		}
	}
}

func TestDecoderOrdersGroupsByMean(t *testing.T) {
	// Construct synthetic profile observations where the alternation is
	// inverted (even windows slow); the decoder must still map the
	// smaller-mean group to X=0.
	var profile []Observation
	for i := 0; i < 100; i++ {
		r := vtime.MS(100)
		if i%2 == 0 {
			r = vtime.MS(110) // group 0 is SLOWER
		}
		profile = append(profile, Observation{Window: i, Label: i % 2, Response: r})
	}
	dec := profileResponses(profile, 2)
	if got := dec.classify(vtime.MS(100)); got != 0 {
		t.Errorf("fast response classified as %d, want 0", got)
	}
	if got := dec.classify(vtime.MS(110)); got != 1 {
		t.Errorf("slow response classified as %d, want 1", got)
	}
}

func TestOptimalCapacityAtLeastUniform(t *testing.T) {
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
		cfg := baseConfig()
		cfg.Policy = kind
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CapacityOpt < res.Capacity-0.02 {
			t.Errorf("%v: optimal capacity %.3f below uniform-input %.3f", kind, res.CapacityOpt, res.Capacity)
		}
		if res.CapacityOpt > 1 {
			t.Errorf("%v: binary capacity above 1 bit: %.3f", kind, res.CapacityOpt)
		}
	}
}

func TestDeriveResponseTracksTrueResponse(t *testing.T) {
	// §III-d: the response time is derivable from the execution vector. For
	// windows whose job completed inside the window, the derived estimate
	// must match the measured response within one micro-interval.
	cfg := baseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := vtime.MS(150)
	micro := window / 150
	checked := 0
	for _, ob := range res.Test {
		if ob.Response > window {
			continue // job spilled into the next window; derivation is a lower bound
		}
		derived := DeriveResponse(ob.Vector, window)
		diff := derived - ob.Response
		if diff < 0 {
			diff = -diff
		}
		if diff > micro {
			t.Fatalf("window %d: derived %v vs true %v (tolerance %v)", ob.Window, derived, ob.Response, micro)
		}
		checked++
	}
	if checked < len(res.Test)/2 {
		t.Fatalf("only %d/%d windows checkable", checked, len(res.Test))
	}
}

func TestDeriveResponseDegenerate(t *testing.T) {
	if DeriveResponse(nil, vtime.MS(150)) != 0 {
		t.Error("empty vector")
	}
	if DeriveResponse([]float64{0, 0, 0}, vtime.MS(150)) != 0 {
		t.Error("all-idle vector")
	}
	if got := DeriveResponse([]float64{0, 1, 0}, vtime.MS(150)); got != vtime.MS(100) {
		t.Errorf("derived %v, want 100ms (end of 2nd of 3 intervals)", got)
	}
}
