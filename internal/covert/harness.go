package covert

import (
	"timedice/internal/engine"
	"timedice/internal/ml"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/shard"
	"timedice/internal/vtime"
)

// Harness is a reusable covert-channel trial runner: the instrumented system
// — partitions, servers, channel tasks, noise hooks, policy, telemetry
// buffers — is built once, and each Run replays the construction's entire
// randomness derivation for a new seed before resetting and re-simulating.
// A trial on a reused Harness is bit-identical to a fresh covert.Run with
// the same Config and seed (pinned by TestHarnessMatchesRun), it just skips
// the ~system's worth of allocations per trial that construction would cost.
//
// A Harness is single-threaded, like the simulation it owns. Campaigns
// parallelize by giving each worker its own Harness (see RunSeeds /
// RunSeedsParallel, built on runner.MapPooled).
type Harness struct {
	cfg     Config // filled copy
	sys     *engine.System
	cs      *channelState
	symbols []int

	// The fresh-run randomness tree, retained so Run can reseed it in the
	// exact order Run's construction consumed it: root seeds bitRand,
	// noiseRand, and polRand by Split, then instrument splits noiseRand
	// into cs.noiseSplits, in order.
	root, bitRand, noiseRand, polRand *rng.Rand

	// pool backs cfg.ShardWorkers > 1: the Harness owns it for its lifetime
	// (Close releases the worker goroutines). nil when stepping sequentially.
	pool *shard.Pool

	horizon vtime.Time
}

// NewHarness validates and fills cfg and builds the instrumented system.
// cfg.Seed only sets the default for Run; every Run reseeds everything.
func NewHarness(cfg Config) (*Harness, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	h := &Harness{cfg: cfg}
	h.root = rng.New(cfg.Seed)
	h.bitRand = h.root.Split()
	h.noiseRand = h.root.Split()
	h.polRand = h.root.Split()

	totalWindows := cfg.WarmupWindows + cfg.ProfileWindows + cfg.TestWindows
	h.symbols = makeSymbols(cfg, h.bitRand, totalWindows)

	built, cs, err := instrument(cfg, cfg.Spec, h.symbols, h.noiseRand)
	if err != nil {
		return nil, err
	}
	h.cs = cs
	pol, err := policies.Build(cfg.Policy, built.Partitions, policies.Options{Quantum: cfg.Quantum})
	if err != nil {
		return nil, err
	}
	h.sys, err = engine.New(built.Partitions, pol, h.polRand)
	if err != nil {
		return nil, err
	}
	cs.install(h.sys)
	if cfg.Telemetry != nil {
		h.sys.AttachTelemetry(cfg.Telemetry)
	}
	if cfg.ShardWorkers > 1 {
		h.pool = shard.NewPool(cfg.ShardWorkers)
		h.sys.SetSharding(h.pool, 4*cfg.ShardWorkers)
	}

	// Simulate long enough for the last test window's response to land;
	// responses can spill a few windows past their arrival.
	h.horizon = vtime.Time(0).Add(vtime.Duration(totalWindows+8) * cfg.Window)
	return h, nil
}

// Run executes one trial with the given seed and returns its decoded Result.
// The returned Result's Observation.Vector slices alias the Harness's
// internal buffers and are overwritten by the next Run call; the scalar
// metrics (accuracies, capacity, histograms) are stable. Copy the vectors
// first if a caller needs them across trials.
func (h *Harness) Run(seed uint64, vecTrainers ...ml.Trainer) (*Result, error) {
	cfg := h.cfg
	cfg.Seed = seed

	// Replay the fresh-run derivation: root → bit/noise/policy streams →
	// instrumentation splits, each consuming exactly the draws a fresh
	// construction would.
	h.root.Seed(seed)
	h.root.SplitInto(h.bitRand)
	h.root.SplitInto(h.noiseRand)
	h.root.SplitInto(h.polRand)
	fillSymbols(cfg, h.bitRand, h.symbols)
	for _, r := range h.cs.noiseSplits {
		h.noiseRand.SplitInto(r)
	}

	h.cs.resetBuffers()
	h.sys.Reset()
	h.sys.Run(h.horizon)
	return decode(cfg, h.cs, h.symbols, vecTrainers)
}

// Close releases the sharded-stepping worker pool, if any. A closed Harness
// must not Run again; Close is a no-op for sequential harnesses and is safe
// to call more than once.
func (h *Harness) Close() { h.pool.Close() }
