package covert

import (
	"bytes"
	"testing"

	"timedice/internal/policies"
	"timedice/internal/workload"
)

func messageBase() MessageConfig {
	ch := baseConfig()
	ch.ProfileWindows = 200
	ch.TestWindows = 0
	return MessageConfig{
		Channel:    ch,
		Payload:    []byte("N37.4419 W122.143"), // a "precise location"
		Repetition: 5,
	}
}

func TestSendMessageNoRandomRecoversPayload(t *testing.T) {
	res, err := SendMessage(messageBase())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Recovered, []byte("N37.4419 W122.143")) {
		t.Errorf("payload corrupted: %q (payload-bit errors %d/%d, raw %d/%d)",
			res.Recovered, res.PayloadBitErrors, 8*len(res.Recovered), res.BitErrors, res.TotalBits)
	}
	if res.ByteAccuracy != 1 {
		t.Errorf("byte accuracy %.3f", res.ByteAccuracy)
	}
	if res.Goodput <= 0 {
		t.Errorf("goodput %.3f", res.Goodput)
	}
}

func TestSendMessageTimeDiceGarblesPayload(t *testing.T) {
	cfg := messageBase()
	cfg.Channel.Policy = policies.TimeDiceW
	res, err := SendMessage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Raw bit error rate near 50% ⇒ even the repetition code cannot save the
	// payload: most bytes corrupt.
	if res.ByteAccuracy > 0.5 {
		t.Errorf("TimeDice left %.0f%% of payload bytes intact; expected most corrupted",
			100*res.ByteAccuracy)
	}
	if float64(res.BitErrors)/float64(res.TotalBits) < 0.2 {
		t.Errorf("raw BER %.3f under TimeDice, expected substantial",
			float64(res.BitErrors)/float64(res.TotalBits))
	}
}

func TestSendMessageValidation(t *testing.T) {
	cfg := messageBase()
	cfg.Payload = nil
	if _, err := SendMessage(cfg); err == nil {
		t.Error("empty payload accepted")
	}
	cfg = messageBase()
	cfg.Repetition = 2
	if _, err := SendMessage(cfg); err == nil {
		t.Error("even repetition accepted")
	}
	cfg = messageBase()
	cfg.Channel.TestWindows = 10
	if _, err := SendMessage(cfg); err == nil {
		t.Error("pre-set TestWindows accepted")
	}
	cfg = messageBase()
	cfg.Channel.Levels = 4
	if _, err := SendMessage(cfg); err == nil {
		t.Error("multi-level message accepted")
	}
}

func TestSendMessageRepetitionHelps(t *testing.T) {
	// With a mildly noisy channel (TDMA would be hopeless, NoRandom too
	// clean), higher repetition should not hurt; use sporadic servers to add
	// channel noise.
	mk := func(rep int) float64 {
		cfg := messageBase()
		cfg.Channel.Spec = workload.TableIBase()
		cfg.Channel.NoiseFraction = 0.4
		cfg.Repetition = rep
		res, err := SendMessage(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.ByteAccuracy
	}
	r1, r5 := mk(1), mk(5)
	if r5+0.10 < r1 {
		t.Errorf("repetition 5 (%.3f) markedly worse than repetition 1 (%.3f)", r5, r1)
	}
}
