package covert

import (
	"testing"

	"timedice/internal/policies"
	"timedice/internal/telemetry"
)

// sameResult compares the per-trial channel metrics and observation streams
// of two results (vectors compared by value, since a Harness result aliases
// reusable buffers).
func sameResult(t *testing.T, label string, fresh, reused *Result) {
	t.Helper()
	if fresh.RTAccuracy != reused.RTAccuracy ||
		fresh.OnlineRTAccuracy != reused.OnlineRTAccuracy ||
		fresh.Capacity != reused.Capacity ||
		fresh.CapacityOpt != reused.CapacityOpt {
		t.Errorf("%s: metrics diverge: fresh RT=%v/%v cap=%v/%v, reused RT=%v/%v cap=%v/%v",
			label,
			fresh.RTAccuracy, fresh.OnlineRTAccuracy, fresh.Capacity, fresh.CapacityOpt,
			reused.RTAccuracy, reused.OnlineRTAccuracy, reused.Capacity, reused.CapacityOpt)
		return
	}
	if len(fresh.Profile) != len(reused.Profile) || len(fresh.Test) != len(reused.Test) {
		t.Errorf("%s: observation counts diverge: %d/%d vs %d/%d", label,
			len(fresh.Profile), len(fresh.Test), len(reused.Profile), len(reused.Test))
		return
	}
	check := func(phase string, a, b []Observation) {
		for i := range a {
			if a[i].Window != b[i].Window || a[i].Label != b[i].Label || a[i].Response != b[i].Response {
				t.Errorf("%s: %s observation %d diverges: %+v vs %+v", label, phase, i, a[i], b[i])
				return
			}
			for m := range a[i].Vector {
				if a[i].Vector[m] != b[i].Vector[m] {
					t.Errorf("%s: %s observation %d vector[%d] diverges", label, phase, i, m)
					return
				}
			}
		}
	}
	check("profile", fresh.Profile, reused.Profile)
	check("test", fresh.Test, reused.Test)
}

// TestHarnessMatchesRun is the reuse-identity contract: a Harness run N times
// over different seeds produces, for every seed, exactly the result of a
// fresh covert.Run with that seed — every response time, every execution
// vector, every metric. This covers the whole reseeding chain (root split
// order, symbol refill, per-task noise streams, local shuffle streams,
// policy stream) and the engine/scheduler/server/policy Reset path, under
// both a non-randomizing and a randomizing policy with local shuffling on.
func TestHarnessMatchesRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"NoRandom", func(c *Config) { c.Policy = policies.NoRandom }},
		{"TimeDiceW-shuffled", func(c *Config) {
			c.Policy = policies.TimeDiceW
			c.ShuffleLocal = true
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig()
			cfg.ProfileWindows = 60
			cfg.TestWindows = 120
			tc.mut(&cfg)

			h, err := NewHarness(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []uint64{3, 7, 3, 11} { // repeat 3: reuse must not drift
				c := cfg
				c.Seed = seed
				fresh, err := Run(c)
				if err != nil {
					t.Fatalf("seed %d fresh: %v", seed, err)
				}
				reused, err := h.Run(seed)
				if err != nil {
					t.Fatalf("seed %d reused: %v", seed, err)
				}
				sameResult(t, tc.name, fresh, reused)
			}
		})
	}
}

// countingSink counts events; attaching it exercises the full telemetry
// emission path without retaining anything.
type countingSink struct{ n int }

func (c *countingSink) Event(telemetry.Event) { c.n++ }

// TestHarnessTelemetryInvariance pins the Config.Telemetry contract: a
// covert trial with a sink attached (e.g. a flight recorder) decodes to
// exactly the same Result as one without, and the sink actually observes
// the simulation.
func TestHarnessTelemetryInvariance(t *testing.T) {
	cfg := baseConfig()
	cfg.Policy = policies.TimeDiceW
	cfg.ProfileWindows = 60
	cfg.TestWindows = 120

	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countingSink{}
	cfg.Telemetry = sink
	recorded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sink.n == 0 {
		t.Fatal("attached telemetry sink observed no events")
	}
	sameResult(t, "telemetry-attached", plain, recorded)
}

// TestHarnessShardedInvariance pins the Config.ShardWorkers contract behind
// covertbench -workers: a channel trial stepped sharded across a worker pool
// decodes to exactly the same Result as the sequential run — every response
// time, every execution vector, every metric — under both a non-randomizing
// and a randomizing policy, including across harness reuse.
func TestHarnessShardedInvariance(t *testing.T) {
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := baseConfig()
			cfg.Policy = kind
			cfg.ProfileWindows = 60
			cfg.TestWindows = 120

			cfg.ShardWorkers = 4
			sharded, err := NewHarness(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer sharded.Close()
			cfg.ShardWorkers = 0
			for _, seed := range []uint64{3, 7, 11} {
				c := cfg
				c.Seed = seed
				plain, err := Run(c)
				if err != nil {
					t.Fatalf("seed %d sequential: %v", seed, err)
				}
				got, err := sharded.Run(seed)
				if err != nil {
					t.Fatalf("seed %d sharded: %v", seed, err)
				}
				sameResult(t, "sharded", plain, got)
			}
		})
	}
}
