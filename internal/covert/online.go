package covert

import (
	"math"

	"timedice/internal/vtime"
)

// OnlineDecoder is an adaptive extension of the response-time receiver: it
// starts from the profiled Pr(R|X) models and keeps re-estimating them during
// the communication phase using its own decoded labels (decision-directed
// adaptation with exponential forgetting). A real adversary would deploy it
// against a drifting system; the evaluation uses it to check that TimeDice's
// protection does not rest on the receiver's model going stale — the paper's
// position is that the randomization itself, not profiling decay, closes the
// channel, so the adaptive receiver should fare no better than the static one
// under TimeDice.
type OnlineDecoder struct {
	lo, width float64
	weights   [][]float64 // per level, forgetting-weighted bin masses
	totals    []float64
	decay     float64
}

// newOnlineDecoder clones the profiled models. decay ∈ (0,1) is the
// forgetting factor applied to the decoded class before each update.
func newOnlineDecoder(d *decoder, decay float64) *OnlineDecoder {
	if decay <= 0 || decay >= 1 {
		decay = 0.995
	}
	od := &OnlineDecoder{decay: decay}
	for _, h := range d.hists {
		od.lo, od.width = h.Lo, h.Width
		w := make([]float64, len(h.Counts))
		var total float64
		for i, c := range h.Counts {
			w[i] = float64(c)
			total += float64(c)
		}
		od.weights = append(od.weights, w)
		od.totals = append(od.totals, total)
	}
	return od
}

func (od *OnlineDecoder) binOf(ms float64) int {
	if len(od.weights) == 0 || len(od.weights[0]) == 0 {
		return 0
	}
	i := int(math.Floor((ms - od.lo) / od.width))
	if i < 0 {
		i = 0
	}
	if n := len(od.weights[0]); i >= n {
		i = n - 1
	}
	return i
}

// Classify decodes r, then folds the observation back into the decoded
// class's model with exponential forgetting.
func (od *OnlineDecoder) Classify(r vtime.Duration) int {
	ms := r.Milliseconds()
	bin := od.binOf(ms)
	best, bestScore := 0, -1.0
	for level := range od.weights {
		score := (od.weights[level][bin] + 1) / (od.totals[level] + float64(len(od.weights[level])))
		if score > bestScore {
			best, bestScore = level, score
		}
	}
	w := od.weights[best]
	for i := range w {
		w[i] *= od.decay
	}
	od.totals[best] = od.totals[best]*od.decay + 1
	w[bin]++
	return best
}
