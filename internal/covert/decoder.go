package covert

import (
	"sort"

	"timedice/internal/stats"
	"timedice/internal/vtime"
)

// decoder is the response-time receiver of §III-b/c: empirical Pr(R|X)
// models built during profiling, and maximum-likelihood (Bayesian with
// uniform prior) classification during communication.
type decoder struct {
	hists []*stats.Histogram // per symbol level, 1 ms bins
}

// profileResponses implements the profiling phase. The receiver knows the
// agreed pattern cycles through the symbol levels, so it groups its profile
// measurements by window residue; it then assigns levels to groups by
// ordering the group means (the paper's "group whose mean value is smaller
// estimates Pr(R|X=0)"), which makes the decoder robust to the receiver not
// knowing which group came first.
func profileResponses(profile []Observation, levels int) *decoder {
	groups := make([][]float64, levels)
	for _, ob := range profile {
		g := ob.Label % levels // residue known by protocol (alternating bits)
		groups[g] = append(groups[g], ob.Response.Milliseconds())
	}
	// Order groups by mean: smallest mean ⇒ level 0.
	type gm struct {
		idx  int
		mean float64
	}
	means := make([]gm, 0, levels)
	for i, g := range groups {
		var s stats.Summary
		for _, v := range g {
			s.Add(v)
		}
		means = append(means, gm{idx: i, mean: s.Mean()})
	}
	sort.Slice(means, func(a, b int) bool { return means[a].mean < means[b].mean })

	// Common histogram range across groups.
	maxMS := 1.0
	for _, g := range groups {
		for _, v := range g {
			if v > maxMS {
				maxMS = v
			}
		}
	}
	bins := int(maxMS) + 4
	d := &decoder{hists: make([]*stats.Histogram, levels)}
	for rank, m := range means {
		h := stats.NewHistogram(0, 1, bins)
		for _, v := range groups[m.idx] {
			h.Add(v)
		}
		d.hists[rank] = h
	}
	return d
}

// hist exposes the profiled Pr(R|X=level) histogram.
func (d *decoder) hist(level int) *stats.Histogram {
	if level < 0 || level >= len(d.hists) {
		return nil
	}
	return d.hists[level]
}

// classify returns the most likely symbol for response r: with a uniform
// prior Pr(X=l), the posterior comparison reduces to comparing the
// Laplace-smoothed likelihoods Pr(R=r|X=l) (§III-c).
func (d *decoder) classify(r vtime.Duration) int {
	ms := r.Milliseconds()
	best, bestScore := 0, -1.0
	for level, h := range d.hists {
		bin := h.BinOf(ms)
		score := (float64(h.Counts[bin]) + 1) / (float64(h.Total) + float64(len(h.Counts)))
		if score > bestScore {
			best, bestScore = level, score
		}
	}
	return best
}

// Separation quantifies how distinguishable two profiled response
// distributions are: the total variation distance between Pr(R|X=0) and
// Pr(R|X=1) in [0,1]. Near 1 under NoRandom (Fig. 4a), near 0 under
// TimeDiceW (Fig. 14 bottom).
func Separation(h0, h1 *stats.Histogram) float64 {
	if h0 == nil || h1 == nil || h0.Total == 0 || h1.Total == 0 {
		return 0
	}
	n := len(h0.Counts)
	if len(h1.Counts) < n {
		n = len(h1.Counts)
	}
	var tv float64
	for i := 0; i < n; i++ {
		diff := h0.Density(i) - h1.Density(i)
		if diff < 0 {
			diff = -diff
		}
		tv += diff
	}
	// Mass beyond the shared range counts fully toward the distance.
	for i := n; i < len(h0.Counts); i++ {
		tv += h0.Density(i)
	}
	for i := n; i < len(h1.Counts); i++ {
		tv += h1.Density(i)
	}
	return tv / 2
}
