package covert

import (
	"testing"

	"timedice/internal/vtime"
)

// newState builds a channelState with the given window/micro configuration.
func newState(window vtime.Duration, micro, totalWindows int) *channelState {
	cs := &channelState{
		window:  window,
		micro:   micro,
		total:   totalWindows,
		vectors: make([][]float64, totalWindows),
	}
	for i := range cs.vectors {
		cs.vectors[i] = make([]float64, micro)
	}
	return cs
}

func TestMarkSingleInterval(t *testing.T) {
	cs := newState(vtime.MS(150), 150, 4)
	// Execution entirely within micro-interval 3 of window 0: [3ms, 3.5ms).
	cs.mark(vtime.Time(vtime.MS(3)), vtime.Time(vtime.FromFloatMS(3.5)))
	for i, v := range cs.vectors[0] {
		want := 0.0
		if i == 3 {
			want = 1
		}
		if v != want {
			t.Fatalf("interval %d = %v, want %v", i, v, want)
		}
	}
}

func TestMarkSpansIntervals(t *testing.T) {
	cs := newState(vtime.MS(150), 150, 4)
	// [2.5ms, 5.2ms) touches intervals 2,3,4,5.
	cs.mark(vtime.Time(vtime.FromFloatMS(2.5)), vtime.Time(vtime.FromFloatMS(5.2)))
	for i := 0; i < 10; i++ {
		want := 0.0
		if i >= 2 && i <= 5 {
			want = 1
		}
		if cs.vectors[0][i] != want {
			t.Fatalf("interval %d = %v, want %v", i, cs.vectors[0][i], want)
		}
	}
}

func TestMarkSpansWindows(t *testing.T) {
	cs := newState(vtime.MS(150), 150, 4)
	// [149.5ms, 151ms) touches the last interval of window 0 and the first
	// of window 1.
	cs.mark(vtime.Time(vtime.FromFloatMS(149.5)), vtime.Time(vtime.MS(151)))
	if cs.vectors[0][149] != 1 {
		t.Error("last interval of window 0 not marked")
	}
	if cs.vectors[1][0] != 1 {
		t.Error("first interval of window 1 not marked")
	}
	if cs.vectors[1][1] != 0 {
		t.Error("interval past the execution marked")
	}
}

func TestMarkBeyondTotalIgnored(t *testing.T) {
	cs := newState(vtime.MS(150), 150, 2)
	// Execution after the last tracked window must not panic or write.
	cs.mark(vtime.Time(vtime.MS(400)), vtime.Time(vtime.MS(410)))
	for w := range cs.vectors {
		for i, v := range cs.vectors[w] {
			if v != 0 {
				t.Fatalf("window %d interval %d unexpectedly marked", w, i)
			}
		}
	}
}

func TestMarkExactBoundary(t *testing.T) {
	cs := newState(vtime.MS(150), 150, 2)
	// A segment ending exactly on an interval boundary marks only the
	// intervals it overlaps.
	cs.mark(vtime.Time(vtime.MS(1)), vtime.Time(vtime.MS(2)))
	if cs.vectors[0][1] != 1 {
		t.Error("interval 1 not marked")
	}
	if cs.vectors[0][2] != 0 {
		t.Error("interval 2 marked by a segment ending at its start")
	}
}
