package covert

import (
	"fmt"

	"timedice/internal/experiments/runner"
	"timedice/internal/ml"
	"timedice/internal/stats"
)

// Aggregate summarizes a channel metric over multiple independent runs.
type Aggregate struct {
	RTAccuracy       stats.Summary
	OnlineRTAccuracy stats.Summary
	Capacity         stats.Summary
	VecAccuracy      map[string]*stats.Summary
	Runs             int
}

// String renders the aggregate on one line.
func (a *Aggregate) String() string {
	return fmt.Sprintf("RT %.2f%%±%.2f cap %.3f±%.3f (n=%d)",
		100*a.RTAccuracy.Mean(), 100*a.RTAccuracy.Std(),
		a.Capacity.Mean(), a.Capacity.Std(), a.Runs)
}

// RunSeeds executes the experiment once per seed and aggregates the channel
// metrics, for statistically robust comparisons across policies. Each run is
// fully independent (noise, selection, and test bits all derive from the
// seed). The trials run sequentially on one reused Harness, so only the
// first trial pays for system construction.
func RunSeeds(cfg Config, seeds []uint64, vecTrainers ...ml.Trainer) (*Aggregate, error) {
	return runSeeds(cfg, seeds, 1, vecTrainers)
}

// RunSeedsParallel is RunSeeds with the independent runs spread across a
// bounded worker pool (each simulation is single-threaded and owns all of
// its state, so runs parallelize perfectly). workers ≤ 0 uses GOMAXPROCS.
// Each worker reuses its own Harness across the trials it claims. The
// aggregate is identical to RunSeeds' for the same seeds: a reused Harness
// replays a fresh run bit for bit, and results are folded in seed order.
func RunSeedsParallel(cfg Config, seeds []uint64, workers int, vecTrainers ...ml.Trainer) (*Aggregate, error) {
	return runSeeds(cfg, seeds, workers, vecTrainers)
}

func runSeeds(cfg Config, seeds []uint64, workers int, vecTrainers []ml.Trainer) (*Aggregate, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("covert: RunSeeds needs at least one seed")
	}
	results, err := runner.MapPooled(workers,
		func() (*Harness, error) { return NewHarness(cfg) },
		seeds,
		func(h *Harness, _ int, seed uint64) (*Result, error) {
			res, err := h.Run(seed, vecTrainers...)
			if err != nil {
				return nil, fmt.Errorf("seed %d: %w", seed, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	return aggregate(results), nil
}

// StreamAggregate is Aggregate extended with constant-memory quantile
// sketches over the per-seed channel metrics. Campaign memory is
// O(workers · sketch) regardless of how many seeds run, unlike collecting
// per-seed results for exact quantiles.
type StreamAggregate struct {
	Aggregate
	// RTAccuracyQ and CapacityQ stream the per-seed RT-decoder accuracy and
	// channel capacity; quantile answers are exact below the sketch's
	// small-N capacity and carry its documented relative error above it.
	RTAccuracyQ *stats.Sketch
	CapacityQ   *stats.Sketch
}

// NewStreamAggregate returns an empty streaming aggregate.
func NewStreamAggregate() *StreamAggregate {
	return &StreamAggregate{
		Aggregate:   Aggregate{VecAccuracy: make(map[string]*stats.Summary)},
		RTAccuracyQ: stats.NewSketch(),
		CapacityQ:   stats.NewSketch(),
	}
}

// fold adds one run's metrics.
func (a *StreamAggregate) fold(res *Result) {
	a.RTAccuracy.Add(res.RTAccuracy)
	a.OnlineRTAccuracy.Add(res.OnlineRTAccuracy)
	a.Capacity.Add(res.Capacity)
	for name, acc := range res.VecAccuracy {
		s, ok := a.VecAccuracy[name]
		if !ok {
			s = &stats.Summary{}
			a.VecAccuracy[name] = s
		}
		s.Add(acc)
	}
	a.RTAccuracyQ.Add(res.RTAccuracy)
	a.CapacityQ.Add(res.Capacity)
	a.Runs++
}

// merge folds another streaming aggregate into a.
func (a *StreamAggregate) merge(o *StreamAggregate) {
	a.RTAccuracy.Merge(&o.RTAccuracy)
	a.OnlineRTAccuracy.Merge(&o.OnlineRTAccuracy)
	a.Capacity.Merge(&o.Capacity)
	for name, src := range o.VecAccuracy {
		s, ok := a.VecAccuracy[name]
		if !ok {
			s = &stats.Summary{}
			a.VecAccuracy[name] = s
		}
		s.Merge(src)
	}
	a.RTAccuracyQ.Merge(o.RTAccuracyQ)
	a.CapacityQ.Merge(o.CapacityQ)
	a.Runs += o.Runs
}

// RunSeedsStream is RunSeedsParallel with streaming aggregation: each
// worker folds the trials it claims into its own StreamAggregate and the
// per-worker aggregates merge at fan-in, so memory stays bounded no matter
// how many seeds the campaign sweeps. The sketch quantiles are exactly
// worker-count-independent (stats.Sketch merges are order-insensitive);
// the Summary means/stds match the exact path up to floating-point
// rounding in the parallel-variance combine, which is why paper tables
// default to the exact path (CollectSeeds / RunSeedsParallel).
func RunSeedsStream(cfg Config, seeds []uint64, workers int, vecTrainers ...ml.Trainer) (*StreamAggregate, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("covert: RunSeedsStream needs at least one seed")
	}
	return runner.ReducePooled(workers,
		func() (*Harness, error) { return NewHarness(cfg) },
		NewStreamAggregate,
		seeds,
		func(h *Harness, acc *StreamAggregate, _ int, seed uint64) error {
			res, err := h.Run(seed, vecTrainers...)
			if err != nil {
				return fmt.Errorf("seed %d: %w", seed, err)
			}
			acc.fold(res)
			return nil
		},
		func(dst, src *StreamAggregate) { dst.merge(src) })
}

// CollectSeeds runs the experiment once per seed on a worker pool and
// returns the per-seed results in seed order — the exact-path counterpart
// of RunSeedsStream for callers that need exact quantiles over a campaign.
func CollectSeeds(cfg Config, seeds []uint64, workers int, vecTrainers ...ml.Trainer) ([]*Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("covert: CollectSeeds needs at least one seed")
	}
	return runner.MapPooled(workers,
		func() (*Harness, error) { return NewHarness(cfg) },
		seeds,
		func(h *Harness, _ int, seed uint64) (*Result, error) {
			res, err := h.Run(seed, vecTrainers...)
			if err != nil {
				return nil, fmt.Errorf("seed %d: %w", seed, err)
			}
			return res, nil
		})
}

// aggregate folds per-seed results in order.
func aggregate(results []*Result) *Aggregate {
	agg := &Aggregate{VecAccuracy: make(map[string]*stats.Summary)}
	for _, res := range results {
		agg.RTAccuracy.Add(res.RTAccuracy)
		agg.OnlineRTAccuracy.Add(res.OnlineRTAccuracy)
		agg.Capacity.Add(res.Capacity)
		for name, acc := range res.VecAccuracy {
			s, ok := agg.VecAccuracy[name]
			if !ok {
				s = &stats.Summary{}
				agg.VecAccuracy[name] = s
			}
			s.Add(acc)
		}
		agg.Runs++
	}
	return agg
}
