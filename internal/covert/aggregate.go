package covert

import (
	"fmt"

	"timedice/internal/experiments/runner"
	"timedice/internal/ml"
	"timedice/internal/stats"
)

// Aggregate summarizes a channel metric over multiple independent runs.
type Aggregate struct {
	RTAccuracy       stats.Summary
	OnlineRTAccuracy stats.Summary
	Capacity         stats.Summary
	VecAccuracy      map[string]*stats.Summary
	Runs             int
}

// String renders the aggregate on one line.
func (a *Aggregate) String() string {
	return fmt.Sprintf("RT %.2f%%±%.2f cap %.3f±%.3f (n=%d)",
		100*a.RTAccuracy.Mean(), 100*a.RTAccuracy.Std(),
		a.Capacity.Mean(), a.Capacity.Std(), a.Runs)
}

// RunSeeds executes the experiment once per seed and aggregates the channel
// metrics, for statistically robust comparisons across policies. Each run is
// fully independent (noise, selection, and test bits all derive from the
// seed). The trials run sequentially on one reused Harness, so only the
// first trial pays for system construction.
func RunSeeds(cfg Config, seeds []uint64, vecTrainers ...ml.Trainer) (*Aggregate, error) {
	return runSeeds(cfg, seeds, 1, vecTrainers)
}

// RunSeedsParallel is RunSeeds with the independent runs spread across a
// bounded worker pool (each simulation is single-threaded and owns all of
// its state, so runs parallelize perfectly). workers ≤ 0 uses GOMAXPROCS.
// Each worker reuses its own Harness across the trials it claims. The
// aggregate is identical to RunSeeds' for the same seeds: a reused Harness
// replays a fresh run bit for bit, and results are folded in seed order.
func RunSeedsParallel(cfg Config, seeds []uint64, workers int, vecTrainers ...ml.Trainer) (*Aggregate, error) {
	return runSeeds(cfg, seeds, workers, vecTrainers)
}

func runSeeds(cfg Config, seeds []uint64, workers int, vecTrainers []ml.Trainer) (*Aggregate, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("covert: RunSeeds needs at least one seed")
	}
	results, err := runner.MapPooled(workers,
		func() (*Harness, error) { return NewHarness(cfg) },
		seeds,
		func(h *Harness, _ int, seed uint64) (*Result, error) {
			res, err := h.Run(seed, vecTrainers...)
			if err != nil {
				return nil, fmt.Errorf("seed %d: %w", seed, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	return aggregate(results), nil
}

// aggregate folds per-seed results in order.
func aggregate(results []*Result) *Aggregate {
	agg := &Aggregate{VecAccuracy: make(map[string]*stats.Summary)}
	for _, res := range results {
		agg.RTAccuracy.Add(res.RTAccuracy)
		agg.OnlineRTAccuracy.Add(res.OnlineRTAccuracy)
		agg.Capacity.Add(res.Capacity)
		for name, acc := range res.VecAccuracy {
			s, ok := agg.VecAccuracy[name]
			if !ok {
				s = &stats.Summary{}
				agg.VecAccuracy[name] = s
			}
			s.Add(acc)
		}
		agg.Runs++
	}
	return agg
}
