package covert

import (
	"fmt"
	"runtime"
	"sync"

	"timedice/internal/ml"
	"timedice/internal/stats"
)

// Aggregate summarizes a channel metric over multiple independent runs.
type Aggregate struct {
	RTAccuracy       stats.Summary
	OnlineRTAccuracy stats.Summary
	Capacity         stats.Summary
	VecAccuracy      map[string]*stats.Summary
	Runs             int
}

// String renders the aggregate on one line.
func (a *Aggregate) String() string {
	return fmt.Sprintf("RT %.2f%%±%.2f cap %.3f±%.3f (n=%d)",
		100*a.RTAccuracy.Mean(), 100*a.RTAccuracy.Std(),
		a.Capacity.Mean(), a.Capacity.Std(), a.Runs)
}

// RunSeeds executes the experiment once per seed and aggregates the channel
// metrics, for statistically robust comparisons across policies. Each run is
// fully independent (noise, selection, and test bits all derive from the
// seed).
func RunSeeds(cfg Config, seeds []uint64, vecTrainers ...ml.Trainer) (*Aggregate, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("covert: RunSeeds needs at least one seed")
	}
	results := make([]*Result, len(seeds))
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		res, err := Run(c, vecTrainers...)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		results[i] = res
	}
	return aggregate(results), nil
}

// RunSeedsParallel is RunSeeds with the independent runs spread across a
// bounded worker pool (each simulation is single-threaded and owns all of
// its state, so runs parallelize perfectly). workers ≤ 0 uses GOMAXPROCS.
// The aggregate is identical to RunSeeds' for the same seeds: results are
// folded in seed order.
func RunSeedsParallel(cfg Config, seeds []uint64, workers int, vecTrainers ...ml.Trainer) (*Aggregate, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("covert: RunSeedsParallel needs at least one seed")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}

	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cfg
				c.Seed = seeds[i]
				res, err := Run(c, vecTrainers...)
				if err != nil {
					errs[i] = fmt.Errorf("seed %d: %w", seeds[i], err)
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range seeds {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return aggregate(results), nil
}

// aggregate folds per-seed results in order.
func aggregate(results []*Result) *Aggregate {
	agg := &Aggregate{VecAccuracy: make(map[string]*stats.Summary)}
	for _, res := range results {
		agg.RTAccuracy.Add(res.RTAccuracy)
		agg.OnlineRTAccuracy.Add(res.OnlineRTAccuracy)
		agg.Capacity.Add(res.Capacity)
		for name, acc := range res.VecAccuracy {
			s, ok := agg.VecAccuracy[name]
			if !ok {
				s = &stats.Summary{}
				agg.VecAccuracy[name] = s
			}
			s.Add(acc)
		}
		agg.Runs++
	}
	return agg
}
