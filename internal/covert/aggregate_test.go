package covert

import (
	"testing"

	"timedice/internal/policies"
	"timedice/internal/stats"
)

func TestRunSeedsAggregates(t *testing.T) {
	cfg := baseConfig()
	cfg.ProfileWindows = 100
	cfg.TestWindows = 200
	agg, err := RunSeeds(cfg, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 3 || agg.RTAccuracy.N() != 3 {
		t.Fatalf("aggregate counts: %+v", agg)
	}
	if agg.RTAccuracy.Mean() < 0.7 {
		t.Errorf("mean NoRandom accuracy %.3f", agg.RTAccuracy.Mean())
	}
	if agg.String() == "" {
		t.Error("empty string form")
	}
}

func TestRunSeedsSeparatesPoliciesRobustly(t *testing.T) {
	seeds := []uint64{11, 12, 13}
	mk := func(kind policies.Kind) *Aggregate {
		cfg := baseConfig()
		cfg.Policy = kind
		cfg.ProfileWindows = 100
		cfg.TestWindows = 200
		agg, err := RunSeeds(cfg, seeds)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	nr := mk(policies.NoRandom)
	td := mk(policies.TimeDiceW)
	// The gap must dwarf the cross-seed spread.
	gap := nr.RTAccuracy.Mean() - td.RTAccuracy.Mean()
	if gap < 3*(nr.RTAccuracy.Std()+td.RTAccuracy.Std())/2 && gap < 0.15 {
		t.Errorf("policy separation %.3f not robust (stds %.3f / %.3f)",
			gap, nr.RTAccuracy.Std(), td.RTAccuracy.Std())
	}
}

func TestRunSeedsEmpty(t *testing.T) {
	if _, err := RunSeeds(baseConfig(), nil); err == nil {
		t.Error("empty seed list accepted")
	}
	if _, err := RunSeedsParallel(baseConfig(), nil, 2); err == nil {
		t.Error("empty seed list accepted (parallel)")
	}
}

func TestRunSeedsParallelMatchesSequential(t *testing.T) {
	cfg := baseConfig()
	cfg.ProfileWindows = 80
	cfg.TestWindows = 160
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	seq, err := RunSeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSeedsParallel(cfg, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq.RTAccuracy.Mean() != par.RTAccuracy.Mean() || seq.RTAccuracy.Std() != par.RTAccuracy.Std() {
		t.Errorf("parallel aggregate diverged: %v vs %v", seq, par)
	}
	if seq.Capacity.Mean() != par.Capacity.Mean() {
		t.Errorf("capacity diverged: %v vs %v", seq.Capacity.Mean(), par.Capacity.Mean())
	}
	if par.Runs != len(seeds) {
		t.Errorf("runs = %d", par.Runs)
	}
}

// TestRunSeedsStreamMatchesExact: the streaming path must reproduce the
// exact aggregate — sketch quantiles are bit-identical to exact quantiles
// over the per-seed results while in the small-N regime, and the summary
// means match up to parallel-combine rounding.
func TestRunSeedsStreamMatchesExact(t *testing.T) {
	cfg := baseConfig()
	cfg.ProfileWindows = 80
	cfg.TestWindows = 160
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	results, err := CollectSeeds(cfg, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		sa, err := RunSeedsStream(cfg, seeds, workers)
		if err != nil {
			t.Fatal(err)
		}
		if sa.Runs != len(seeds) || sa.RTAccuracyQ.N() != int64(len(seeds)) {
			t.Fatalf("workers=%d: runs=%d sketchN=%d", workers, sa.Runs, sa.RTAccuracyQ.N())
		}
		accs := make([]float64, len(results))
		caps := make([]float64, len(results))
		for i, r := range results {
			accs[i] = r.RTAccuracy
			caps[i] = r.Capacity
		}
		qs := []float64{0.1, 0.5, 0.9}
		wantAcc := stats.Quantiles(accs, qs...)
		wantCap := stats.Quantiles(caps, qs...)
		gotAcc := sa.RTAccuracyQ.Quantiles(qs...)
		gotCap := sa.CapacityQ.Quantiles(qs...)
		for i := range qs {
			if gotAcc[i] != wantAcc[i] || gotCap[i] != wantCap[i] {
				t.Errorf("workers=%d q=%v: stream (%v, %v) != exact (%v, %v)",
					workers, qs[i], gotAcc[i], gotCap[i], wantAcc[i], wantCap[i])
			}
		}
		if d := sa.RTAccuracy.Mean() - mean(accs); d > 1e-12 || d < -1e-12 {
			t.Errorf("workers=%d: stream mean off by %v", workers, d)
		}
	}
	if _, err := RunSeedsStream(cfg, nil, 2); err == nil {
		t.Error("empty seed list accepted (stream)")
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
