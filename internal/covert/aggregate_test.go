package covert

import (
	"testing"

	"timedice/internal/policies"
)

func TestRunSeedsAggregates(t *testing.T) {
	cfg := baseConfig()
	cfg.ProfileWindows = 100
	cfg.TestWindows = 200
	agg, err := RunSeeds(cfg, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 3 || agg.RTAccuracy.N() != 3 {
		t.Fatalf("aggregate counts: %+v", agg)
	}
	if agg.RTAccuracy.Mean() < 0.7 {
		t.Errorf("mean NoRandom accuracy %.3f", agg.RTAccuracy.Mean())
	}
	if agg.String() == "" {
		t.Error("empty string form")
	}
}

func TestRunSeedsSeparatesPoliciesRobustly(t *testing.T) {
	seeds := []uint64{11, 12, 13}
	mk := func(kind policies.Kind) *Aggregate {
		cfg := baseConfig()
		cfg.Policy = kind
		cfg.ProfileWindows = 100
		cfg.TestWindows = 200
		agg, err := RunSeeds(cfg, seeds)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	nr := mk(policies.NoRandom)
	td := mk(policies.TimeDiceW)
	// The gap must dwarf the cross-seed spread.
	gap := nr.RTAccuracy.Mean() - td.RTAccuracy.Mean()
	if gap < 3*(nr.RTAccuracy.Std()+td.RTAccuracy.Std())/2 && gap < 0.15 {
		t.Errorf("policy separation %.3f not robust (stds %.3f / %.3f)",
			gap, nr.RTAccuracy.Std(), td.RTAccuracy.Std())
	}
}

func TestRunSeedsEmpty(t *testing.T) {
	if _, err := RunSeeds(baseConfig(), nil); err == nil {
		t.Error("empty seed list accepted")
	}
	if _, err := RunSeedsParallel(baseConfig(), nil, 2); err == nil {
		t.Error("empty seed list accepted (parallel)")
	}
}

func TestRunSeedsParallelMatchesSequential(t *testing.T) {
	cfg := baseConfig()
	cfg.ProfileWindows = 80
	cfg.TestWindows = 160
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	seq, err := RunSeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSeedsParallel(cfg, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq.RTAccuracy.Mean() != par.RTAccuracy.Mean() || seq.RTAccuracy.Std() != par.RTAccuracy.Std() {
		t.Errorf("parallel aggregate diverged: %v vs %v", seq, par)
	}
	if seq.Capacity.Mean() != par.Capacity.Mean() {
		t.Errorf("capacity diverged: %v vs %v", seq.Capacity.Mean(), par.Capacity.Mean())
	}
	if par.Runs != len(seeds) {
		t.Errorf("runs = %d", par.Runs)
	}
}
