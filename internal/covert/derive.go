package covert

import "timedice/internal/vtime"

// DeriveResponse estimates the receiver's response time from its execution
// vector alone: the end of the last micro-interval in which the receiver
// executed within the window. §III-d observes that the response time "can be
// derived from" the execution vector — which is why the learning-based
// receiver can only be more informed than the response-time receiver. The
// estimate is exact up to one micro-interval of quantization whenever the
// receiver's job finishes within its own window and its last execution
// belongs to that job.
func DeriveResponse(vector []float64, window vtime.Duration) vtime.Duration {
	if len(vector) == 0 {
		return 0
	}
	micro := window / vtime.Duration(len(vector))
	last := -1
	for i, v := range vector {
		if v > 0.5 {
			last = i
		}
	}
	if last < 0 {
		return 0
	}
	return vtime.Duration(last+1) * micro
}
