package covert

import (
	"fmt"

	"timedice/internal/vtime"
)

// MessageConfig transmits a real payload over the covert channel: the §III-e
// scenario ("collect the trace of the vehicle's precise location") made
// end-to-end. The payload is serialized LSB-first, each bit repeated
// Repetition times (a simple repetition code), and decoded by majority vote
// at the receiver.
type MessageConfig struct {
	// Channel is the underlying experiment configuration. ProfileWindows
	// sizes the profiling phase as usual; TestWindows and TestSymbols are
	// derived from the payload and must be left zero.
	Channel Config
	// Payload is the secret to exfiltrate.
	Payload []byte
	// Repetition is the per-bit repetition factor (odd; default 3).
	Repetition int
}

// MessageResult reports the transmission outcome.
type MessageResult struct {
	// Recovered is the receiver's decoded payload (same length as the
	// original).
	Recovered []byte
	// BitErrors counts raw channel-bit errors (before majority decoding);
	// TotalBits is the number of transmitted channel bits.
	BitErrors, TotalBits int
	// PayloadBitErrors counts errors after majority decoding.
	PayloadBitErrors int
	// ByteAccuracy is the fraction of payload bytes recovered exactly.
	ByteAccuracy float64
	// Goodput is the effective payload rate in bits per second of schedule
	// (payload bits / transmission time), counting only correct bits.
	Goodput float64
}

// SendMessage runs profiling and then transmits the payload.
func SendMessage(cfg MessageConfig) (*MessageResult, error) {
	if len(cfg.Payload) == 0 {
		return nil, fmt.Errorf("covert: empty payload")
	}
	rep := cfg.Repetition
	if rep <= 0 {
		rep = 3
	}
	if rep%2 == 0 {
		return nil, fmt.Errorf("covert: repetition factor must be odd, got %d", rep)
	}
	ch := cfg.Channel
	if ch.Levels > 2 {
		return nil, fmt.Errorf("covert: message layer is binary; Levels=%d unsupported", ch.Levels)
	}
	ch.Levels = 2
	if len(ch.TestSymbols) != 0 || ch.TestWindows != 0 {
		return nil, fmt.Errorf("covert: TestWindows/TestSymbols are derived from the payload")
	}
	// Resolve defaults now so the window bookkeeping below agrees with the
	// configuration Run will actually use (warmup windows in particular).
	if err := ch.fill(); err != nil {
		return nil, err
	}

	// Encode: LSB-first bits, each repeated rep times. The copies are
	// interleaved copy-major (all first copies, then all second copies, …)
	// so that the ambient interference pattern — which is periodic in the
	// window index — cannot wipe out all copies of one bit (burst errors
	// decorrelate across copies).
	payloadBits := make([]int, 0, len(cfg.Payload)*8)
	for _, b := range cfg.Payload {
		for i := 0; i < 8; i++ {
			payloadBits = append(payloadBits, int(b>>i)&1)
		}
	}
	// Each copy is also cyclically shifted by its copy index: if the payload
	// length happens to be a multiple of the ambient pattern's period, plain
	// copy-major interleaving would land every copy of a bit on the same
	// phase; the shift breaks that alignment for any payload length.
	n := len(payloadBits)
	symbols := make([]int, n*rep)
	for copyIdx := 0; copyIdx < rep; copyIdx++ {
		for i, bit := range payloadBits {
			symbols[copyIdx*n+(i+copyIdx)%n] = bit
		}
	}
	ch.TestSymbols = symbols
	ch.TestWindows = len(symbols)

	run, err := Run(ch)
	if err != nil {
		return nil, err
	}
	// Reassemble by window index: Observation.Window identifies the slot, so
	// lost observations (none in practice) default to bit 0.
	received := make([]int, len(symbols))
	decoded := make([]bool, len(symbols))
	dec := profileResponses(run.Profile, 2)
	base := ch.WarmupWindows + ch.ProfileWindows
	for _, ob := range run.Test {
		k := ob.Window - base
		if k < 0 || k >= len(symbols) {
			continue
		}
		received[k] = dec.classify(ob.Response)
		decoded[k] = true
	}

	res := &MessageResult{TotalBits: len(symbols)}
	for k, want := range symbols {
		if !decoded[k] || received[k] != want {
			res.BitErrors++
		}
	}

	// Majority-decode each payload bit across its interleaved copies.
	res.Recovered = make([]byte, len(cfg.Payload))
	for i, want := range payloadBits {
		ones := 0
		for j := 0; j < rep; j++ {
			ones += received[j*n+(i+j)%n]
		}
		bit := 0
		if 2*ones > rep {
			bit = 1
		}
		if bit != want {
			res.PayloadBitErrors++
		}
		if bit == 1 {
			res.Recovered[i/8] |= 1 << (i % 8)
		}
	}
	okBytes := 0
	for i := range cfg.Payload {
		if res.Recovered[i] == cfg.Payload[i] {
			okBytes++
		}
	}
	res.ByteAccuracy = float64(okBytes) / float64(len(cfg.Payload))

	window := ch.Window
	if window <= 0 {
		window = 3 * ch.Spec.Partitions[ch.Receiver].Period
	}
	duration := vtime.Duration(len(symbols)) * window
	correctBits := len(payloadBits) - res.PayloadBitErrors
	res.Goodput = float64(correctBits) / duration.Seconds()
	return res, nil
}
