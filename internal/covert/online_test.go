package covert

import (
	"testing"

	"timedice/internal/policies"
	"timedice/internal/vtime"
)

func TestOnlineDecoderTracksStaticOnStationaryChannel(t *testing.T) {
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlineRTAccuracy < res.RTAccuracy-0.05 {
		t.Errorf("online decoder %.3f far below static %.3f on a stationary channel",
			res.OnlineRTAccuracy, res.RTAccuracy)
	}
}

func TestOnlineDecoderDoesNotDefeatTimeDice(t *testing.T) {
	// The extension's point: an adaptive receiver cannot reopen the channel;
	// TimeDice's noise is in the schedule, not in model drift.
	cfg := baseConfig()
	cfg.Policy = policies.TimeDiceW
	cfg.TestWindows = 800
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlineRTAccuracy > res.RTAccuracy+0.10 {
		t.Errorf("online decoder %.3f substantially beats static %.3f under TimeDice — adaptation should not help",
			res.OnlineRTAccuracy, res.RTAccuracy)
	}
	if res.OnlineRTAccuracy > 0.75 {
		t.Errorf("online decoder accuracy %.3f under TimeDiceW — channel should stay degraded", res.OnlineRTAccuracy)
	}
}

func TestOnlineDecoderSelfConsistency(t *testing.T) {
	// Classifying the same strongly-separated response repeatedly must keep
	// returning the same level (decision-directed updates reinforce it).
	profile := make([]Observation, 0, 100)
	for i := 0; i < 100; i++ {
		r := vtime.MS(100)
		if i%2 == 1 {
			r = vtime.MS(130)
		}
		profile = append(profile, Observation{Window: i, Label: i % 2, Response: r})
	}
	dec := profileResponses(profile, 2)
	od := newOnlineDecoder(dec, 0.99)
	for i := 0; i < 200; i++ {
		if got := od.Classify(vtime.MS(100)); got != 0 {
			t.Fatalf("iteration %d: fast response classified as %d", i, got)
		}
		if got := od.Classify(vtime.MS(130)); got != 1 {
			t.Fatalf("iteration %d: slow response classified as %d", i, got)
		}
	}
}

func TestOnlineDecoderDecayBounds(t *testing.T) {
	dec := profileResponses([]Observation{
		{Window: 0, Label: 0, Response: vtime.MS(100)},
		{Window: 1, Label: 1, Response: vtime.MS(120)},
	}, 2)
	// Out-of-range decay falls back to the default.
	od := newOnlineDecoder(dec, 5)
	if od.decay != 0.995 {
		t.Errorf("decay fallback = %v", od.decay)
	}
}
