package multicore

// Core-level parallelism and aggregation. Cores share nothing (the paper's
// partitioned model has no cross-core resources), so advancing them on a
// bounded worker pool is embarrassingly parallel and exact: each core's
// schedule, digest, and counters are byte-identical whether it ran alone or
// alongside the others. The only ordering obligation is the aggregation —
// the combined digest folds per-core digests in core index order, so it too
// is independent of execution interleaving. RunParallel against Run is the
// parallel-vs-sequential oracle the tests pin.

import (
	"timedice/internal/check"
	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/vtime"
)

// AttachDigests attaches one check.Digester per core (replacing any
// previously attached telemetry sink) and returns them in core index order.
// Attach before running; the digesters then witness each core's full event
// stream.
func (s *System) AttachDigests() []*check.Digester {
	ds := make([]*check.Digester, len(s.Cores))
	for c, eng := range s.Cores {
		ds[c] = check.NewDigester()
		eng.AttachTelemetry(ds[c])
	}
	s.digests = ds
	return ds
}

// Digest returns the combined check digest of the multiprocessor run: the
// per-core event-stream digests (and event counts, so an empty stream still
// distinguishes core boundaries) folded in core index order. It requires a
// prior AttachDigests; without one it returns check.DigestSeed over zero
// cores. Because the fold order is the static core order, the value is
// invariant under how core execution interleaved — equal for Run and for
// RunParallel at any worker count.
func (s *System) Digest() uint64 {
	h := check.DigestSeed
	for _, d := range s.digests {
		h = check.Fold64(h, d.Digest())
		h = check.Fold64(h, uint64(d.Events()))
	}
	return h
}

// CombinedCounters sums the deterministic scheduler counters across cores —
// the aggregate the parallel-vs-sequential oracle compares alongside the
// digest. Wall-clock fields (PolicyTime, PolicySamples, ShardMergeTime,
// PolicyLatency) are host observations, not simulation outputs, and are
// excluded (left zero/nil).
func (s *System) CombinedCounters() engine.Counters {
	var out engine.Counters
	for _, c := range s.Cores {
		out.Decisions += c.Counters.Decisions
		out.Switches += c.Counters.Switches
		out.IdleDecisions += c.Counters.IdleDecisions
		out.BusyTime += c.Counters.BusyTime
		out.IdleTime += c.Counters.IdleTime
		out.DeadlineMisses += c.Counters.DeadlineMisses
		out.InversionWindows += c.Counters.InversionWindows
		out.InversionTime += c.Counters.InversionTime
		out.MinAdvances += c.Counters.MinAdvances
		out.ArenaBytesTouched += c.Counters.ArenaBytesTouched
		out.FixpointIters += c.Counters.FixpointIters
		out.InterferenceTerms += c.Counters.InterferenceTerms
	}
	return out
}

// RunParallel advances every core to the given instant across a bounded
// worker pool (workers <= 1 degenerates to the sequential Run). Cores are
// share-nothing, so the result — every core's state, digest, and counters —
// is identical to Run's; the tests pin digest and combined-counter equality.
func (s *System) RunParallel(until vtime.Time, workers int) {
	if workers <= 1 || len(s.Cores) <= 1 {
		s.Run(until)
		return
	}
	// runner.Map's per-item goroutines write only their own core's state;
	// its join gives the happens-before edge back to the caller. The fn
	// never errors, so the aggregate error is always nil.
	_, _ = runner.Map(workers, s.Cores, func(_ int, c *engine.System) (struct{}, error) {
		c.Run(until)
		return struct{}{}, nil
	})
}
