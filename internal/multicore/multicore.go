// Package multicore extends the uniprocessor model of the paper to
// partitioned multiprocessor scheduling, the deployment model of the
// LITMUS^RT platform the paper builds on: every partition is statically
// assigned to one core, and each core runs its own independent hierarchical
// scheduler (optionally TimeDice).
//
// The covert timing channel of §III uses the shared CPU as its medium, so
// partitioned placement is itself a defense: a sender and receiver on
// different cores share no CPU time and the algorithmic channel disappears
// (microarchitectural channels are outside the paper's model, §III-g). The
// package provides utilization-based placement (first-fit decreasing), the
// multi-core simulator, and the cross-core channel experiment that verifies
// the isolation.
package multicore

import (
	"fmt"
	"sort"

	"timedice/internal/check"
	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/vtime"
)

// Assignment maps each partition (by index into the source spec) to a core.
type Assignment struct {
	Cores int
	// CoreOf[i] is the core of spec partition i.
	CoreOf []int
}

// PerCore returns the partition indices assigned to each core.
func (a Assignment) PerCore() [][]int {
	out := make([][]int, a.Cores)
	for p, c := range a.CoreOf {
		out[c] = append(out[c], p)
	}
	return out
}

// FirstFitDecreasing packs the partitions of spec onto the fewest cores such
// that each core's total partition utilization stays within capacity (e.g.
// 0.8 to keep the per-core systems schedulable with headroom). maxCores
// bounds the search (0 = unbounded). It returns an error if any single
// partition exceeds the capacity.
func FirstFitDecreasing(spec model.SystemSpec, capacity float64, maxCores int) (Assignment, error) {
	if capacity <= 0 || capacity > 1 {
		return Assignment{}, fmt.Errorf("multicore: capacity must be in (0,1], got %v", capacity)
	}
	type item struct {
		idx  int
		util float64
	}
	items := make([]item, len(spec.Partitions))
	for i, p := range spec.Partitions {
		items[i] = item{idx: i, util: p.Utilization()}
		if items[i].util > capacity {
			return Assignment{}, fmt.Errorf("multicore: partition %q utilization %.3f exceeds core capacity %.3f",
				p.Name, items[i].util, capacity)
		}
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].util > items[b].util })

	var loads []float64
	coreOf := make([]int, len(spec.Partitions))
	for _, it := range items {
		placed := false
		for c := range loads {
			if loads[c]+it.util <= capacity+1e-12 {
				loads[c] += it.util
				coreOf[it.idx] = c
				placed = true
				break
			}
		}
		if !placed {
			if maxCores > 0 && len(loads) >= maxCores {
				return Assignment{}, fmt.Errorf("multicore: %d cores insufficient at capacity %.2f", maxCores, capacity)
			}
			loads = append(loads, it.util)
			coreOf[it.idx] = len(loads) - 1
		}
	}
	return Assignment{Cores: len(loads), CoreOf: coreOf}, nil
}

// System is a partitioned multiprocessor: one independent hierarchical
// scheduler per core. Cores share nothing (the paper's model has no
// cross-partition resources), so they can be advanced independently and the
// combined schedule is exact.
type System struct {
	Cores []*engine.System
	// Built exposes each core's task/scheduler handles.
	Built []*model.Built
	// Specs are the per-core system specs (partition subsets).
	Specs []model.SystemSpec
	// SourceCore maps source-spec partition index → (core, local index).
	SourceCore  []int
	SourceLocal []int
	// digests are the per-core stream digesters installed by AttachDigests,
	// in core index order; nil until attached.
	digests []*check.Digester
}

// New splits spec per the assignment and builds one engine per core, all
// under the same policy kind. Per-core RNG streams are derived by repeated
// Split from one base generator seeded with seed — NOT seed+c, which made
// adjacent multicore seeds share streams (system(seed)'s core c+1 ran the
// identical stream as system(seed+1)'s core c, so two "independent" trials
// of a sweep were correlated wherever their core layouts aligned). The split
// chain keeps each core's stream a deterministic function of (seed, core
// index) while decorrelating across both axes.
func New(spec model.SystemSpec, asg Assignment, kind policies.Kind, seed uint64) (*System, error) {
	if len(asg.CoreOf) != len(spec.Partitions) {
		return nil, fmt.Errorf("multicore: assignment covers %d partitions, spec has %d",
			len(asg.CoreOf), len(spec.Partitions))
	}
	sys := &System{
		SourceCore:  make([]int, len(spec.Partitions)),
		SourceLocal: make([]int, len(spec.Partitions)),
	}
	base := rng.New(seed)
	perCore := asg.PerCore()
	for c, idxs := range perCore {
		sub := model.SystemSpec{Name: fmt.Sprintf("%s/core%d", spec.Name, c)}
		for local, pi := range idxs {
			sub.Partitions = append(sub.Partitions, spec.Partitions[pi])
			sys.SourceCore[pi] = c
			sys.SourceLocal[pi] = local
		}
		// One split per core slot, drawn before the empty-core skip so core
		// c's stream depends only on (seed, c), not on which other slots
		// happen to be populated.
		coreRand := base.Split()
		if len(sub.Partitions) == 0 {
			continue
		}
		built, err := sub.Build()
		if err != nil {
			return nil, fmt.Errorf("core %d: %w", c, err)
		}
		pol, err := policies.Build(kind, built.Partitions, policies.Options{})
		if err != nil {
			return nil, fmt.Errorf("core %d: %w", c, err)
		}
		eng, err := engine.New(built.Partitions, pol, coreRand)
		if err != nil {
			return nil, fmt.Errorf("core %d: %w", c, err)
		}
		sys.Cores = append(sys.Cores, eng)
		sys.Built = append(sys.Built, built)
		sys.Specs = append(sys.Specs, sub)
	}
	return sys, nil
}

// Run advances every core to the given instant.
func (s *System) Run(until vtime.Time) {
	for _, c := range s.Cores {
		c.Run(until)
	}
}

// TotalDecisions sums the scheduling decisions across cores.
func (s *System) TotalDecisions() int64 {
	var n int64
	for _, c := range s.Cores {
		n += c.Counters.Decisions
	}
	return n
}
