package multicore

import (
	"fmt"

	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/task"
	"timedice/internal/vtime"
)

// ChannelConfig is the cross-core covert-channel experiment: the §III sender
// and receiver are placed per the assignment, and the receiver tries to
// decode the sender's bits from its own response times.
type ChannelConfig struct {
	Spec       model.SystemSpec
	Assignment Assignment
	// Sender and Receiver are partition indices into Spec.Partitions.
	Sender, Receiver int
	// Window is the monitoring window (default 3× the receiver's period).
	Window vtime.Duration
	// Windows is the number of signaled bits (default 1000).
	Windows int
	Policy  policies.Kind
	Seed    uint64
}

// ChannelResult reports the decoding accuracy and the placement relation.
type ChannelResult struct {
	Accuracy float64
	SameCore bool
	Windows  int
}

// Channel runs the experiment. With sender and receiver on the same core the
// channel behaves as in the uniprocessor experiments; across cores the
// shared-CPU medium is gone and the accuracy collapses to a coin flip.
func Channel(cfg ChannelConfig) (*ChannelResult, error) {
	if cfg.Sender == cfg.Receiver {
		return nil, fmt.Errorf("multicore: sender and receiver must differ")
	}
	spec := cfg.Spec
	if cfg.Window <= 0 {
		cfg.Window = 3 * spec.Partitions[cfg.Receiver].Period
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 1000
	}
	if cfg.Policy == 0 {
		cfg.Policy = policies.NoRandom
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}

	// Replace the channel partitions' tasks, as in the uniprocessor
	// experiment: the sender's task consumes its budget per the bit; the
	// receiver's task is a per-window code block.
	parts := make([]model.PartitionSpec, len(spec.Partitions))
	copy(parts, spec.Partitions)
	sBudget := parts[cfg.Sender].Budget
	parts[cfg.Sender].Tasks = []model.TaskSpec{{
		Name: "sender", Period: cfg.Window / 3, WCET: sBudget,
	}}
	rSpec := parts[cfg.Receiver]
	supply := rSpec.Budget.Scale(int64(cfg.Window), int64(rSpec.Period))
	demand := vtime.Duration(0.9 * float64(supply))
	if demand < vtime.Millisecond {
		demand = vtime.Millisecond
	}
	parts[cfg.Receiver].Tasks = []model.TaskSpec{{
		Name: "receiver", Period: cfg.Window, WCET: demand, Deadline: 8 * cfg.Window,
	}}
	spec.Partitions = parts

	sys, err := New(spec, cfg.Assignment, cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}

	bits := make([]int, cfg.Windows+6)
	r := rng.New(cfg.Seed ^ 0xbeef)
	for i := range bits {
		bits[i] = r.Bit()
	}

	senderCore := sys.SourceCore[cfg.Sender]
	receiverCore := sys.SourceCore[cfg.Receiver]
	senderName := spec.Partitions[cfg.Sender].Name
	receiverName := spec.Partitions[cfg.Receiver].Name

	sTask := sys.Built[senderCore].Task[model.TaskKey(senderName, "sender")]
	sTask.ExecFn = func(_ int64, arrival vtime.Time) vtime.Duration {
		w := int(arrival / vtime.Time(cfg.Window))
		if w >= len(bits) {
			w = len(bits) - 1
		}
		if bits[w] == 1 {
			return sBudget
		}
		return 10 * vtime.Microsecond
	}

	responses := make(map[int64]vtime.Duration, cfg.Windows)
	sys.Built[receiverCore].Sched[receiverName].OnComplete = func(c task.Completion) {
		if c.Job.Task.Name == "receiver" {
			responses[c.Job.Index] = c.Response
		}
	}

	sys.Run(vtime.Time(vtime.Duration(cfg.Windows+6) * cfg.Window))

	// Threshold decoder profiled on the first half.
	half := cfg.Windows / 2
	var sum0, sum1 float64
	var n0, n1 int
	for k := 0; k < half; k++ {
		resp, ok := responses[int64(k)]
		if !ok {
			continue
		}
		if bits[k] == 0 {
			sum0 += resp.Milliseconds()
			n0++
		} else {
			sum1 += resp.Milliseconds()
			n1++
		}
	}
	if n0 == 0 || n1 == 0 {
		return nil, fmt.Errorf("multicore: profile phase incomplete")
	}
	m0, m1 := sum0/float64(n0), sum1/float64(n1)
	threshold := (m0 + m1) / 2
	inverted := m1 < m0

	correct, total := 0, 0
	for k := half; k < cfg.Windows; k++ {
		resp, ok := responses[int64(k)]
		if !ok {
			continue
		}
		total++
		bit := 0
		if resp.Milliseconds() > threshold {
			bit = 1
		}
		if inverted {
			bit = 1 - bit
		}
		if bit == bits[k] {
			correct++
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("multicore: no test observations")
	}
	return &ChannelResult{
		Accuracy: float64(correct) / float64(total),
		SameCore: senderCore == receiverCore,
		Windows:  total,
	}, nil
}
