package multicore

import (
	"testing"

	"timedice/internal/check"
	"timedice/internal/policies"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func buildMC(t *testing.T, seed uint64) *System {
	t.Helper()
	spec := workload.TableIBase()
	asg, err := FirstFitDecreasing(spec, 0.40, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(spec, asg, policies.TimeDiceW, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestCoreSeedingDecorrelated is the regression test for the old seed+c
// per-core seeding: under it, system(seed)'s core c+1 and system(seed+1)'s
// core c received the same seed and therefore ran byte-identical RNG
// streams, correlating "independent" trials of a seed sweep. Split-derived
// streams must collide on neither axis, while staying deterministic for a
// fixed (seed, core).
func TestCoreSeedingDecorrelated(t *testing.T) {
	a := buildMC(t, 4)
	b := buildMC(t, 5)
	if len(a.Cores) < 2 {
		t.Fatal("fixture needs >= 2 cores")
	}
	for c := 1; c < len(a.Cores); c++ {
		if a.Cores[c].Rand.State() == b.Cores[c-1].Rand.State() {
			t.Errorf("seed 4 core %d shares its RNG stream with seed 5 core %d (the seed+c collision)", c, c-1)
		}
	}
	// Within one system, cores must not share streams either.
	for i := range a.Cores {
		for j := i + 1; j < len(a.Cores); j++ {
			if a.Cores[i].Rand.State() == a.Cores[j].Rand.State() {
				t.Errorf("seed 4: cores %d and %d share an RNG stream", i, j)
			}
		}
	}
	// Determinism: same seed, same per-core streams.
	a2 := buildMC(t, 4)
	for c := range a.Cores {
		if a.Cores[c].Rand.State() != a2.Cores[c].Rand.State() {
			t.Errorf("core %d stream not deterministic for fixed seed", c)
		}
	}
}

// TestRunParallelMatchesSequential is the core-level half of the
// parallel-vs-sequential oracle: advancing the share-nothing per-core
// engines across a worker pool must leave every aggregate — the combined
// digest (per-core digests folded in core order) and the summed
// deterministic counters — byte-identical to the sequential Run, at every
// worker count. Run under -race this also checks the fan-out shares no
// state across cores.
func TestRunParallelMatchesSequential(t *testing.T) {
	const until = vtime.Time(2 * vtime.Second)
	ref := buildMC(t, 11)
	ref.AttachDigests()
	ref.Run(until)
	wantDigest := ref.Digest()
	wantCounters := ref.CombinedCounters()
	if wantDigest == check.DigestSeed || wantCounters.Decisions == 0 {
		t.Fatal("sequential reference run produced no events")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		sys := buildMC(t, 11)
		sys.AttachDigests()
		sys.RunParallel(until, workers)
		if got := sys.Digest(); got != wantDigest {
			t.Errorf("workers=%d: digest %#x, sequential %#x", workers, got, wantDigest)
		}
		if got := sys.CombinedCounters(); got != wantCounters {
			t.Errorf("workers=%d: counters %+v, sequential %+v", workers, got, wantCounters)
		}
	}
}

// TestCombinedDigestFoldsInCoreOrder pins the aggregation rule itself: the
// combined digest is the order-sensitive fold of (digest, events) per core.
func TestCombinedDigestFoldsInCoreOrder(t *testing.T) {
	sys := buildMC(t, 7)
	ds := sys.AttachDigests()
	sys.Run(vtime.Time(500 * vtime.Millisecond))
	want := check.DigestSeed
	for _, d := range ds {
		want = check.Fold64(want, d.Digest())
		want = check.Fold64(want, uint64(d.Events()))
	}
	if got := sys.Digest(); got != want {
		t.Errorf("Digest() = %#x, manual core-order fold = %#x", got, want)
	}
}
