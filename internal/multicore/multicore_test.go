package multicore

import (
	"testing"

	"timedice/internal/policies"
	"timedice/internal/server"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func TestFirstFitDecreasing(t *testing.T) {
	spec := workload.TableIBase() // five partitions at 16% each
	asg, err := FirstFitDecreasing(spec, 0.40, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 5 × 0.16 at 0.40 capacity → 2 per core → 3 cores.
	if asg.Cores != 3 {
		t.Errorf("cores = %d, want 3", asg.Cores)
	}
	// Every core's load within capacity.
	loads := make([]float64, asg.Cores)
	for i, c := range asg.CoreOf {
		loads[c] += spec.Partitions[i].Utilization()
	}
	for c, l := range loads {
		if l > 0.40+1e-9 {
			t.Errorf("core %d overloaded: %.3f", c, l)
		}
	}
}

func TestFirstFitDecreasingErrors(t *testing.T) {
	spec := workload.TableIBase()
	if _, err := FirstFitDecreasing(spec, 0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := FirstFitDecreasing(spec, 0.10, 0); err == nil {
		t.Error("partition larger than capacity accepted")
	}
	if _, err := FirstFitDecreasing(spec, 0.17, 2); err == nil {
		t.Error("insufficient core bound accepted")
	}
}

func TestFirstFitSingleCore(t *testing.T) {
	spec := workload.TableIBase()
	asg, err := FirstFitDecreasing(spec, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Cores != 1 {
		t.Errorf("80%% total fits one core, got %d", asg.Cores)
	}
}

func TestMulticoreSystemRuns(t *testing.T) {
	spec := workload.TableIBase()
	asg, err := FirstFitDecreasing(spec, 0.40, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(spec, asg, policies.TimeDiceW, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Cores) != asg.Cores {
		t.Fatalf("engines = %d", len(sys.Cores))
	}
	sys.Run(vtime.Time(2 * vtime.Second))
	if sys.TotalDecisions() == 0 {
		t.Error("no decisions across cores")
	}
	// Every partition keeps its budget guarantee on its own core.
	for c, eng := range sys.Cores {
		for i, p := range sys.Specs[c].Partitions {
			maxShare := p.Utilization()
			got := eng.PartitionTime(i).Seconds() / 2
			if got > maxShare+1e-9 {
				t.Errorf("core %d %s: share %.4f > budget ratio %.4f", c, p.Name, got, maxShare)
			}
		}
	}
}

func TestChannelSameCoreVsCrossCore(t *testing.T) {
	spec := workload.TableIBase()
	// Channel partitions need budget-retaining servers, as in the
	// uniprocessor experiments.
	for i := range spec.Partitions {
		spec.Partitions[i].Server = server.Deferrable
	}

	// Same core: everything on core 0 (the uniprocessor baseline).
	same := Assignment{Cores: 1, CoreOf: []int{0, 0, 0, 0, 0}}
	resSame, err := Channel(ChannelConfig{
		Spec: spec, Assignment: same, Sender: 1, Receiver: 3, Windows: 600, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resSame.SameCore {
		t.Fatal("placement bookkeeping wrong")
	}
	if resSame.Accuracy < 0.8 {
		t.Errorf("same-core channel accuracy %.3f, want high", resSame.Accuracy)
	}

	// Cross core: sender on core 0, receiver on core 1.
	cross := Assignment{Cores: 2, CoreOf: []int{0, 0, 1, 1, 0}}
	resCross, err := Channel(ChannelConfig{
		Spec: spec, Assignment: cross, Sender: 1, Receiver: 3, Windows: 600, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resCross.SameCore {
		t.Fatal("placement bookkeeping wrong (cross)")
	}
	if resCross.Accuracy < 0.4 || resCross.Accuracy > 0.6 {
		t.Errorf("cross-core channel accuracy %.3f, want ≈0.5 (no shared CPU medium)", resCross.Accuracy)
	}
}

func TestChannelValidation(t *testing.T) {
	spec := workload.TableIBase()
	asg := Assignment{Cores: 1, CoreOf: []int{0, 0, 0, 0, 0}}
	if _, err := Channel(ChannelConfig{Spec: spec, Assignment: asg, Sender: 2, Receiver: 2}); err == nil {
		t.Error("sender == receiver accepted")
	}
}

func TestNewValidatesAssignment(t *testing.T) {
	spec := workload.ThreePartition()
	if _, err := New(spec, Assignment{Cores: 1, CoreOf: []int{0}}, policies.NoRandom, 1); err == nil {
		t.Error("short assignment accepted")
	}
}

func TestAssignmentPerCore(t *testing.T) {
	asg := Assignment{Cores: 2, CoreOf: []int{0, 1, 0}}
	per := asg.PerCore()
	if len(per) != 2 || len(per[0]) != 2 || len(per[1]) != 1 {
		t.Errorf("per-core split: %v", per)
	}
}
