//go:build race

package shard

// raceEnabled: see race_off_test.go.
const raceEnabled = true
