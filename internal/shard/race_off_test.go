//go:build !race

package shard

// raceEnabled reports whether the race detector instruments this test
// binary; the zero-allocation pin is skipped under it (instrumentation
// allocates on paths the contract does not cover).
const raceEnabled = false
