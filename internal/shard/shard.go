// Package shard provides the persistent worker-pool execution layer for
// running one simulated system across OS cores: a fixed set of long-lived
// workers released and joined through a sense-reversing barrier, plus the
// contiguous range arithmetic that partitions an index universe into shards.
//
// The design contract is determinism-first: the pool never decides *what*
// runs, only *where*. Callers hand every worker the same function; the
// function maps its worker id onto a static set of shard ranges (worker w
// owns shards w, w+W, w+2W, …), so the assignment of work to workers — and
// therefore every per-shard result buffer — is a pure function of the
// configuration, independent of scheduling order. The deterministic merge
// (fold per-shard results in shard index order) then produces output
// byte-identical to a sequential run, which is what the engine's sharded
// stepping and the multicore fan-out both rely on.
//
// Steady-state cost: one Run is two barrier crossings (release, join) with
// no goroutine spawn and no allocation — the workers are created once by
// NewPool and parked between rounds. A Pool with one worker degenerates to a
// plain inline call, byte- and allocation-identical to not having a pool at
// all, which keeps workers=1 configurations on exactly today's code path.
package shard

import "sync"

// Range is one contiguous shard of an index universe: the half-open
// interval [Lo, Hi). An empty shard has Lo == Hi.
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions the universe 0..n-1 into exactly k contiguous ranges in
// ascending order, with sizes differing by at most one (the first n%k shards
// get the extra element). k > n yields trailing empty shards — legal, and
// exercised by the shard-boundary property tests: an empty shard contributes
// nothing to any phase and nothing to the merge. Split(0, k) is k empty
// shards; k <= 0 is treated as 1.
func Split(n, k int) []Range {
	if k <= 0 {
		k = 1
	}
	out := make([]Range, k)
	base, rem := n/k, n%k
	lo := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// barrier is a counter-based sense-reversing barrier over a fixed party
// count. Each crossing flips the sense: parties arriving in round r wait for
// the sense word to leave round r's value, so consecutive crossings never
// confuse each other and no reinitialization is needed between rounds.
// Waiters park on a sync.Cond rather than spinning — the pool must behave on
// oversubscribed and single-core hosts, where a spin-waiter would steal the
// timeslice the working goroutines need.
type barrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	sense bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond.L = &b.mu
	return b
}

// await blocks until all n parties have arrived, then releases them all.
// The last arriver flips the sense and broadcasts; the others wait for the
// flip. No allocation per crossing.
func (b *barrier) await() {
	b.mu.Lock()
	s := b.sense
	b.count++
	if b.count == b.n {
		b.count = 0
		b.sense = !s
		b.cond.Broadcast()
	} else {
		for b.sense == s {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Pool is a persistent pool of workers executing one function at a time
// across all workers. The caller participates as worker 0, so a Pool of W
// workers owns W−1 goroutines. Run may be called any number of times;
// concurrent Run calls on one Pool are not allowed (the engine issues at
// most one dispatch at a time, per step phase).
type Pool struct {
	workers int
	bar     *barrier // nil when workers == 1 (pure inline mode)
	fn      func(worker int)
	stop    bool
	closed  bool
}

// NewPool creates a pool of the given worker count (minimum 1). With
// workers <= 1 no goroutines are created and Run calls the function inline —
// the exact sequential behaviour of having no pool.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.bar = newBarrier(workers)
		for w := 1; w < workers; w++ {
			go p.worker(w)
		}
	}
	return p
}

// Workers returns the configured worker count (including the caller).
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker(id int) {
	for {
		p.bar.await() // release: Run (or Close) has published fn/stop
		if p.stop {
			return
		}
		p.fn(id)
		p.bar.await() // join
	}
}

// Run executes fn(w) for every worker id w in 0..Workers()-1, the caller
// running as worker 0, and returns when all workers have finished. fn must
// be safe to call concurrently from distinct goroutines with distinct ids.
// Passing a prebuilt closure keeps the steady state allocation-free: Run
// itself allocates nothing.
//
// The release barrier publishes fn (and everything the caller wrote before
// Run) to the workers; the join barrier publishes everything the workers
// wrote back to the caller — the happens-before edges the engine's
// read-only-arena phases rely on.
func (p *Pool) Run(fn func(worker int)) {
	if p.bar == nil {
		fn(0)
		return
	}
	p.fn = fn
	p.bar.await() // release
	fn(0)
	p.bar.await() // join
	p.fn = nil
}

// Close shuts the worker goroutines down. Idempotent and safe on nil; the
// pool must not be used after Close. A 1-worker pool has nothing to stop.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	if p.bar == nil {
		return
	}
	p.stop = true
	p.bar.await() // release the workers into their stop check; they exit without joining
}
