package shard

import (
	"sync/atomic"
	"testing"
)

func TestSplitProperties(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 1}, {0, 4}, {1, 1}, {1, 4}, {5, 2}, {7, 3}, {64, 8},
		{100, 7}, {3, 8}, {16384, 16}, {10, 0}, {10, -2},
	} {
		rs := Split(tc.n, tc.k)
		wantK := tc.k
		if wantK <= 0 {
			wantK = 1
		}
		if len(rs) != wantK {
			t.Fatalf("Split(%d,%d): %d ranges, want %d", tc.n, tc.k, len(rs), wantK)
		}
		// Contiguous ascending cover of [0, n).
		lo := 0
		minLen, maxLen := tc.n+1, -1
		for _, r := range rs {
			if r.Lo != lo || r.Hi < r.Lo {
				t.Fatalf("Split(%d,%d): bad range %+v at lo=%d", tc.n, tc.k, r, lo)
			}
			lo = r.Hi
			if l := r.Len(); l < minLen {
				minLen = l
			}
			if l := r.Len(); l > maxLen {
				maxLen = l
			}
		}
		if lo != tc.n {
			t.Fatalf("Split(%d,%d): covers [0,%d), want [0,%d)", tc.n, tc.k, lo, tc.n)
		}
		if maxLen-minLen > 1 {
			t.Errorf("Split(%d,%d): shard sizes differ by %d, want <=1", tc.n, tc.k, maxLen-minLen)
		}
	}
}

func TestPoolRunsEveryWorkerOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		p := NewPool(w)
		counts := make([]atomic.Int64, w)
		for round := 0; round < 50; round++ {
			p.Run(func(id int) { counts[id].Add(1) })
		}
		for id := range counts {
			if got := counts[id].Load(); got != 50 {
				t.Errorf("workers=%d: worker %d ran %d times, want 50", w, id, got)
			}
		}
		p.Close()
	}
}

// TestPoolPublishes pins the happens-before contract: values written by the
// caller before Run are visible to every worker, and per-worker results
// written during Run are visible to the caller after Run. Run under -race
// this is the memory-model test for the engine's sharded phases.
func TestPoolPublishes(t *testing.T) {
	const w = 4
	p := NewPool(w)
	defer p.Close()
	in := make([]int, w)
	out := make([]int, w)
	for round := 1; round <= 100; round++ {
		for i := range in {
			in[i] = round * (i + 1)
		}
		p.Run(func(id int) { out[id] = in[id] * 2 })
		for i := range out {
			if out[i] != 2*round*(i+1) {
				t.Fatalf("round %d: out[%d] = %d, want %d", round, i, out[i], 2*round*(i+1))
			}
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(4)
	p.Run(func(int) {})
	p.Close()
	p.Close()
	p1 := NewPool(1)
	p1.Close()
	p1.Close()
}

func TestPoolSingleWorkerInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ran := false
	p.Run(func(id int) {
		if id != 0 {
			t.Fatalf("inline worker id %d", id)
		}
		ran = true
	})
	if !ran {
		t.Fatal("inline Run did not execute")
	}
}

// TestPoolDispatchZeroAlloc pins the steady-state cost contract: a Run round
// with a prebuilt closure allocates nothing.
func TestPoolDispatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	p := NewPool(4)
	defer p.Close()
	var sink [4]int64
	fn := func(id int) { sink[id]++ }
	p.Run(fn) // warm
	allocs := testing.AllocsPerRun(100, func() { p.Run(fn) })
	if allocs != 0 {
		t.Errorf("pool dispatch allocates %.1f times per round, want 0", allocs)
	}
}
