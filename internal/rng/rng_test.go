package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniforms = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 7; v++ {
		if seen[v] == 0 {
			t.Errorf("value %d never drawn", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestWeightedIndexDistribution(t *testing.T) {
	r := New(5)
	w := []float64{1, 3, 0, 6}
	counts := make([]int, len(w))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedIndex(w)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[2])
	}
	for i, want := range []float64{0.1, 0.3, 0, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %v, want ≈%v", i, got, want)
		}
	}
}

func TestWeightedIndexAllZeroFallsBackUniform(t *testing.T) {
	r := New(9)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[r.WeightedIndex([]float64{0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 700 {
			t.Errorf("uniform fallback skewed: index %d drawn %d/3000", i, c)
		}
	}
}

func TestWeightedIndexNegativeTreatedAsZero(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if got := r.WeightedIndex([]float64{-5, 1, -2}); got != 1 {
			t.Fatalf("negative weights should never win, got index %d", got)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(17)
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	if f := float64(trues) / 10000; math.Abs(f-0.25) > 0.02 {
		t.Errorf("Bool(0.25) frequency %v", f)
	}
}

func TestJitterBounds(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		j := r.Jitter(0.2)
		if j < 0.8 || j > 1.2 {
			t.Fatalf("Jitter(0.2) = %v out of [0.8,1.2]", j)
		}
	}
	if r.Jitter(0) != 1 {
		t.Error("Jitter(0) must be exactly 1")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	// Child stream differs from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split stream collided %d times", same)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(37)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v", variance)
	}
}
