// Package rng provides a small, fast, deterministic pseudo-random number
// generator for the simulator. Every source of randomness in a TimeDice
// simulation flows from one seeded Rand so that experiments are reproducible
// bit-for-bit given a seed.
//
// The generator is xoshiro256**, seeded through SplitMix64, following the
// reference constructions by Blackman and Vigna. It is not cryptographically
// secure; the paper's randomization only needs statistical quality, and the
// threat model does not include an adversary predicting the scheduler's PRNG.
package rng

import (
	"errors"
	"math"
)

// Rand is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; each simulation owns its own Rand.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded from seed via SplitMix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed via SplitMix64.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro256** requires a non-zero state; SplitMix64 of any seed gives
	// all-zero with negligible probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bit returns a uniform random bit as an int (0 or 1).
func (r *Rand) Bit() int { return int(r.Uint64() >> 63) }

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Jitter returns a multiplicative factor uniform in [1-frac, 1+frac]. It is
// used by noise tasks that vary their periods and execution times by "up to
// 20%" as in the paper's feasibility test (frac = 0.2).
func (r *Rand) Jitter(frac float64) float64 {
	if frac <= 0 {
		return 1
	}
	return 1 + frac*(2*r.Float64()-1)
}

// WeightedIndex returns an index in [0, len(w)) chosen with probability
// proportional to w[i]. Non-positive weights are treated as zero. If all
// weights are zero it falls back to a uniform choice. It panics on an empty
// slice.
func (r *Rand) WeightedIndex(w []float64) int {
	if len(w) == 0 {
		panic("rng: WeightedIndex with empty weights")
	}
	var total float64
	for _, x := range w {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		return r.Intn(len(w))
	}
	target := r.Float64() * total
	var acc float64
	for i, x := range w {
		if x <= 0 {
			continue
		}
		acc += x
		if target < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	return len(w) - 1
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// State returns the raw xoshiro256** state. Together with SetState it lets
// snapshot/restore machinery capture and replay the generator's exact
// position in its stream.
func (r *Rand) State() [4]uint64 { return r.s }

// ErrZeroState is returned by SetState for the all-zero state, which is the
// one state xoshiro256** cannot occupy (it would emit zeros forever).
var ErrZeroState = errors.New("rng: all-zero state")

// SetState restores a state previously obtained from State.
func (r *Rand) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return ErrZeroState
	}
	r.s = s
	return nil
}

// Clone returns an independent generator positioned at exactly r's point in
// the stream: both produce the same subsequent values, and advancing one
// never affects the other.
func (r *Rand) Clone() *Rand { return &Rand{s: r.s} }

// Split derives an independent generator from r, for components that need
// their own stream without perturbing the parent's sequence consumption
// pattern.
func (r *Rand) Split() *Rand {
	child := &Rand{}
	r.SplitInto(child)
	return child
}

// SplitInto reseeds child in place exactly as Split would seed a fresh
// generator, consuming the same single draw from r. Harnesses that retain
// their component generators across trials use it to replay a fresh run's
// split sequence without reallocating.
func (r *Rand) SplitInto(child *Rand) {
	child.Seed(r.Uint64() ^ 0xd1b54a32d192ed03)
}
