package gen

import (
	"encoding/json"
	"fmt"

	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/vtime"
)

// wireScenario is the JSON envelope of an encoded scenario. The system spec
// uses model's own schema (periods/budgets in fractional milliseconds), so a
// scenario file embeds a valid `timedice-sim` system verbatim.
type wireScenario struct {
	System        model.SystemSpec `json:"system"`
	Policy        string           `json:"policy"`
	QuantumMillis float64          `json:"quantumMillis"`
	Seed          uint64           `json:"seed"`
	HorizonMillis float64          `json:"horizonMillis"`
}

// Decode bounds. Fuzzed inputs are arbitrary, so decoding enforces hard caps
// that keep a single simulation cheap (the horizon cap bounds total events;
// the period floors bound event density) before any simulation work happens.
const (
	maxPartitions  = 16
	maxTasksPer    = 16
	minPartPeriod  = vtime.Millisecond
	maxPartPeriod  = vtime.Second
	minTaskPeriod  = 500 * vtime.Microsecond
	minQuantum     = 100 * vtime.Microsecond
	maxQuantum     = 100 * vtime.Millisecond
	maxHorizon     = 2 * vtime.Second
	maxScenarioLen = 1 << 20
)

// Encode serializes the scenario to its canonical JSON form.
func Encode(sc Scenario) ([]byte, error) {
	w := wireScenario{
		System:        sc.Spec,
		Policy:        sc.Policy.String(),
		QuantumMillis: sc.Quantum.Milliseconds(),
		Seed:          sc.Seed,
		HorizonMillis: sc.Horizon.Milliseconds(),
	}
	return json.Marshal(w)
}

// KindFromString parses a policy name as produced by policies.Kind.String.
// Only the policies the fuzz oracles cover are accepted; TDMA is not
// schedulability-preserving in the paper's sense and is rejected.
func KindFromString(s string) (policies.Kind, error) {
	switch s {
	case "NoRandom":
		return policies.NoRandom, nil
	case "TimeDiceU":
		return policies.TimeDiceU, nil
	case "TimeDiceW":
		return policies.TimeDiceW, nil
	default:
		return 0, fmt.Errorf("gen: unknown or unsupported policy %q", s)
	}
}

// Decode parses an encoded scenario and validates it against the fuzzing
// bounds: structural validity (model.SystemSpec.Validate), size caps, event
// density floors, and a supported policy. Any scenario it accepts is safe to
// simulate in bounded time.
func Decode(data []byte) (Scenario, error) {
	var sc Scenario
	if len(data) > maxScenarioLen {
		return sc, fmt.Errorf("gen: scenario blob too large (%d bytes)", len(data))
	}
	var w wireScenario
	if err := json.Unmarshal(data, &w); err != nil {
		return sc, err
	}
	kind, err := KindFromString(w.Policy)
	if err != nil {
		return sc, err
	}
	if err := w.System.Validate(); err != nil {
		return sc, err
	}
	if n := len(w.System.Partitions); n == 0 || n > maxPartitions {
		return sc, fmt.Errorf("gen: partition count %d outside [1, %d]", n, maxPartitions)
	}
	for _, p := range w.System.Partitions {
		if p.Period < minPartPeriod || p.Period > maxPartPeriod {
			return sc, fmt.Errorf("gen: partition %q period %v outside [%v, %v]",
				p.Name, p.Period, minPartPeriod, maxPartPeriod)
		}
		if len(p.Tasks) > maxTasksPer {
			return sc, fmt.Errorf("gen: partition %q has %d tasks (max %d)",
				p.Name, len(p.Tasks), maxTasksPer)
		}
		for _, t := range p.Tasks {
			if t.Period < minTaskPeriod {
				return sc, fmt.Errorf("gen: task %q period %v below %v",
					t.Name, t.Period, minTaskPeriod)
			}
		}
	}
	quantum := vtime.FromFloatMS(w.QuantumMillis)
	if quantum < minQuantum || quantum > maxQuantum {
		return sc, fmt.Errorf("gen: quantum %v outside [%v, %v]", quantum, minQuantum, maxQuantum)
	}
	horizon := vtime.FromFloatMS(w.HorizonMillis)
	if horizon <= 0 || horizon > maxHorizon {
		return sc, fmt.Errorf("gen: horizon %v outside (0, %v]", horizon, maxHorizon)
	}
	sc = Scenario{
		Spec:    w.System,
		Policy:  kind,
		Quantum: quantum,
		Seed:    w.Seed,
		Horizon: horizon,
	}
	return sc, nil
}
