package gen

import (
	"testing"

	"timedice/internal/rng"
	"timedice/internal/vtime"
)

// TestCheckpointRoundTrip: a checkpoint taken a third of the way into a run
// restores into a fresh system whose suffix, folded onto the checkpoint's
// prefix digest, reproduces the straight-line run's digest and event count.
func TestCheckpointRoundTrip(t *testing.T) {
	sc := Generate(rng.New(7), DefaultOptions())
	horizon := vtime.Time(0).Add(sc.Horizon)

	sys, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	full := newDigestSink()
	sys.AttachTelemetry(full)
	sys.Run(horizon)
	sys.FlushTelemetry()

	cp, err := CheckpointAt(sc, vtime.Time(0).Add(sc.Horizon/3))
	if err != nil {
		t.Fatal(err)
	}
	if cp.At < vtime.Time(0).Add(sc.Horizon/3) || cp.At >= horizon {
		t.Fatalf("checkpoint at %v, want in [%v, %v)", cp.At, vtime.Time(0).Add(sc.Horizon/3), horizon)
	}

	restored, err := RestoreCheckpoint(sc, cp)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Now() != cp.At {
		t.Fatalf("restored system at %v, want %v", restored.Now(), cp.At)
	}
	suffix := &digestSink{h: cp.PrefixDigest, n: cp.Events}
	restored.AttachTelemetry(suffix)
	restored.Run(horizon)
	restored.FlushTelemetry()

	if suffix.h != full.h || suffix.n != full.n {
		t.Fatalf("restore-and-replay digest %#016x (%d events) != straight line %#016x (%d events)",
			suffix.h, suffix.n, full.h, full.n)
	}
}

// TestCheckpointBeforeViolationClean: on a clean scenario the checkpoint is
// the last step boundary before the horizon, found is false, and stepping the
// restored system once completes the run digest-identically.
func TestCheckpointBeforeViolationClean(t *testing.T) {
	sc := Generate(rng.New(11), DefaultOptions())
	horizon := vtime.Time(0).Add(sc.Horizon)

	sys, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	full := newDigestSink()
	sys.AttachTelemetry(full)
	sys.Run(horizon)
	sys.FlushTelemetry()

	cp, found, err := CheckpointBeforeViolation(sc)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatalf("certified-clean scenario reported a violation checkpoint at %v", cp.At)
	}
	if cp.At >= horizon {
		t.Fatalf("checkpoint at %v, want before horizon %v", cp.At, horizon)
	}

	restored, err := RestoreCheckpoint(sc, cp)
	if err != nil {
		t.Fatal(err)
	}
	suffix := &digestSink{h: cp.PrefixDigest, n: cp.Events}
	restored.AttachTelemetry(suffix)
	restored.Step(horizon)
	if restored.Now() != horizon {
		t.Fatalf("one step from the final boundary ended at %v, want %v", restored.Now(), horizon)
	}
	restored.FlushTelemetry()
	if suffix.h != full.h || suffix.n != full.n {
		t.Fatalf("final step digest %#016x (%d events) != straight line %#016x (%d events)",
			suffix.h, suffix.n, full.h, full.n)
	}
}
