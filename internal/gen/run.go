package gen

import (
	"timedice/internal/check"
	"timedice/internal/core"
	"timedice/internal/engine"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/shard"
	"timedice/internal/telemetry"
)

// Run simulates the scenario with a full check.Suite attached as the
// telemetry sink and returns the finished suite. The suite holds the oracle
// verdict (Violations), the event-stream digest, and observed response
// statistics; the engine's cheap counters are cross-checked against the
// suite's own event-derived tallies before returning.
func Run(sc Scenario) (*check.Suite, error) {
	suite, _, err := run(sc, policies.Options{Quantum: sc.Quantum}, nil)
	return suite, err
}

// RunStats carries a recorded run's aggregates: the engine's cheap counters
// (for post-mortem bundles) and the TimeDice verdict-cache tallies (for live
// exposition). CacheHits/CacheMisses are zero under non-caching policies.
type RunStats struct {
	Counters               engine.Counters
	CacheHits, CacheMisses int64
}

// RunRecorded is Run with an additional telemetry sink — canonically an
// obs.Recorder flight recorder — attached alongside the oracle suite, and
// the run's aggregate statistics returned. The extra sink observes the
// identical event stream the suite digests, so a recorder window covering
// the whole run replays to suite.Digest().
func RunRecorded(sc Scenario, extra telemetry.Sink) (*check.Suite, RunStats, error) {
	suite, sys, err := run(sc, policies.Options{Quantum: sc.Quantum}, extra)
	if err != nil {
		return nil, RunStats{}, err
	}
	st := RunStats{Counters: sys.Counters}
	if cp, ok := sys.Policy.(interface{ Stats() core.Stats }); ok {
		cs := cp.Stats()
		st.CacheHits, st.CacheMisses = cs.CacheHits, cs.CacheMisses
	}
	return suite, st, nil
}

// RunScanRecorded is RunScan with the run's aggregate statistics returned,
// the scan-side twin of RunRecorded. The differential suite uses the pair to
// pin the engine's deterministic counters equal across stepping paths (except
// the two that are path-dependent by design, ArenaBytesTouched and
// InterferenceTerms).
func RunScanRecorded(sc Scenario, extra telemetry.Sink) (*check.Suite, RunStats, error) {
	suite, sys, err := run(sc, policies.Options{Quantum: sc.Quantum}, extra, scanStepping)
	if err != nil {
		return nil, RunStats{}, err
	}
	st := RunStats{Counters: sys.Counters}
	if cp, ok := sys.Policy.(interface{ Stats() core.Stats }); ok {
		cs := cp.Stats()
		st.CacheHits, st.CacheMisses = cs.CacheHits, cs.CacheMisses
	}
	return suite, st, nil
}

// RunShardedRecorded is RunRecorded under sharded stepping: the scenario's
// system is split into the given shard count and stepped across the
// caller-owned pool (the caller Closes it; one pool may serve many runs in
// sequence). Sharded stepping is exact, so the returned suite and stats must
// be indistinguishable from RunRecorded's apart from wall-clock fields —
// same digest, same violations, byte-identical deterministic counters —
// which the shard differential suite pins over the scenario corpus at
// workers ∈ {1,2,4,8}.
func RunShardedRecorded(sc Scenario, extra telemetry.Sink, pool *shard.Pool, shards int) (*check.Suite, RunStats, error) {
	suite, sys, err := run(sc, policies.Options{Quantum: sc.Quantum}, extra, func(sys *engine.System) {
		sys.SetSharding(pool, shards)
	})
	if err != nil {
		return nil, RunStats{}, err
	}
	st := RunStats{Counters: sys.Counters}
	if cp, ok := sys.Policy.(interface{ Stats() core.Stats }); ok {
		cs := cp.Stats()
		st.CacheHits, st.CacheMisses = cs.CacheHits, cs.CacheMisses
	}
	return suite, st, nil
}

// RunUncached is Run with the TimeDice schedulability-verdict cache disabled.
// Because the cache is exact, the returned suite must be indistinguishable
// from Run's — same digest, same violations, same statistics — which the
// differential tests pin over the simfuzz scenario corpus.
func RunUncached(sc Scenario) (*check.Suite, error) {
	suite, _, err := run(sc, policies.Options{Quantum: sc.Quantum, UncachedTimeDice: true}, nil)
	return suite, err
}

// RunScan is Run with the engine's reference O(P) scan stepping
// (engine.System.ScanStepping) instead of the indexed event queue. The two
// stepping modes are required to be observationally identical — same digest,
// same violations — which the differential tests pin over the scenario
// corpus.
func RunScan(sc Scenario) (*check.Suite, error) {
	suite, _, err := run(sc, policies.Options{Quantum: sc.Quantum}, nil, scanStepping)
	return suite, err
}

// scanStepping flips the built system to the reference stepping path.
func scanStepping(sys *engine.System) { sys.ScanStepping = true }

func run(sc Scenario, opts policies.Options, extra telemetry.Sink, tweaks ...func(*engine.System)) (*check.Suite, *engine.System, error) {
	suite, err := check.NewSuite(sc.Spec, sc.Policy)
	if err != nil {
		return nil, nil, err
	}
	built, err := sc.Spec.Build()
	if err != nil {
		return nil, nil, err
	}
	pol, err := policies.Build(sc.Policy, built.Partitions, opts)
	if err != nil {
		return nil, nil, err
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(sc.Seed))
	if err != nil {
		return nil, nil, err
	}
	for _, tw := range tweaks {
		tw(sys)
	}
	if extra != nil {
		sys.AttachTelemetry(telemetry.Multi{suite, extra})
	} else {
		sys.AttachTelemetry(suite)
	}
	sys.RunFor(sc.Horizon)
	sys.FlushTelemetry()
	suite.Finish(sys.Now())
	suite.CheckCounters(&sys.Counters, sc.Horizon)
	return suite, sys, nil
}

// Fails reports whether the scenario produces at least one oracle violation
// (setup errors count as failures: a scenario that stops decoding or building
// mid-shrink is rejected by returning false from the shrinker's predicate
// instead, so this is only used on scenarios that ran once already).
func Fails(sc Scenario) bool {
	suite, err := Run(sc)
	if err != nil {
		return false
	}
	_, n := suite.Violations()
	return n > 0
}
