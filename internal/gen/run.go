package gen

import (
	"timedice/internal/check"
	"timedice/internal/engine"
	"timedice/internal/policies"
	"timedice/internal/rng"
)

// Run simulates the scenario with a full check.Suite attached as the
// telemetry sink and returns the finished suite. The suite holds the oracle
// verdict (Violations), the event-stream digest, and observed response
// statistics; the engine's cheap counters are cross-checked against the
// suite's own event-derived tallies before returning.
func Run(sc Scenario) (*check.Suite, error) {
	return run(sc, policies.Options{Quantum: sc.Quantum})
}

// RunUncached is Run with the TimeDice schedulability-verdict cache disabled.
// Because the cache is exact, the returned suite must be indistinguishable
// from Run's — same digest, same violations, same statistics — which the
// differential tests pin over the simfuzz scenario corpus.
func RunUncached(sc Scenario) (*check.Suite, error) {
	return run(sc, policies.Options{Quantum: sc.Quantum, UncachedTimeDice: true})
}

// RunScan is Run with the engine's reference O(P) scan stepping
// (engine.System.ScanStepping) instead of the indexed event queue. The two
// stepping modes are required to be observationally identical — same digest,
// same violations — which the differential tests pin over the scenario
// corpus.
func RunScan(sc Scenario) (*check.Suite, error) {
	return run(sc, policies.Options{Quantum: sc.Quantum}, scanStepping)
}

// scanStepping flips the built system to the reference stepping path.
func scanStepping(sys *engine.System) { sys.ScanStepping = true }

func run(sc Scenario, opts policies.Options, tweaks ...func(*engine.System)) (*check.Suite, error) {
	suite, err := check.NewSuite(sc.Spec, sc.Policy)
	if err != nil {
		return nil, err
	}
	built, err := sc.Spec.Build()
	if err != nil {
		return nil, err
	}
	pol, err := policies.Build(sc.Policy, built.Partitions, opts)
	if err != nil {
		return nil, err
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(sc.Seed))
	if err != nil {
		return nil, err
	}
	for _, tw := range tweaks {
		tw(sys)
	}
	sys.AttachTelemetry(suite)
	sys.RunFor(sc.Horizon)
	sys.FlushTelemetry()
	suite.Finish(sys.Now())
	suite.CheckCounters(&sys.Counters, sc.Horizon)
	return suite, nil
}

// Fails reports whether the scenario produces at least one oracle violation
// (setup errors count as failures: a scenario that stops decoding or building
// mid-shrink is rejected by returning false from the shrinker's predicate
// instead, so this is only used on scenarios that ran once already).
func Fails(sc Scenario) bool {
	suite, err := Run(sc)
	if err != nil {
		return false
	}
	_, n := suite.Violations()
	return n > 0
}
