package gen

// Checkpointing scenario runs: Build exposes the exact system construction
// Run uses, and CheckpointAt / CheckpointBeforeViolation capture an
// engine.Snapshot of a scenario mid-run together with the event-digest prefix
// up to that point. A checkpoint restores into a freshly built system and
// continues digest-identically, which is what lets post-mortem bundles
// restore-and-replay instead of replaying from zero, and lets simfuzz branch
// exploration forks from interesting states.

import (
	"bytes"
	"fmt"

	"timedice/internal/check"
	"timedice/internal/engine"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

// Build constructs the scenario's system exactly as Run does — built spec,
// policy from the scenario's kind and quantum, engine seeded with the
// scenario seed — without running it or attaching any telemetry. Two Build
// calls on the same scenario produce configuration-identical systems, so a
// snapshot taken from one restores into the other.
func Build(sc Scenario) (*engine.System, error) {
	built, err := sc.Spec.Build()
	if err != nil {
		return nil, err
	}
	pol, err := policies.Build(sc.Policy, built.Partitions, policies.Options{Quantum: sc.Quantum})
	if err != nil {
		return nil, err
	}
	return engine.New(built.Partitions, pol, rng.New(sc.Seed))
}

// Checkpoint is a mid-run capture of a scenario: the engine snapshot, the
// instant it was taken, and the digest and count of the events emitted before
// it. Restoring State and folding the post-restore events onto PrefixDigest
// reproduces the straight-line run's final digest.
type Checkpoint struct {
	State        []byte
	At           vtime.Time
	PrefixDigest uint64
	Events       int64
}

// digestSink folds every event into a running check digest.
type digestSink struct {
	h uint64
	n int64
}

func newDigestSink() *digestSink { return &digestSink{h: check.DigestSeed} }

func (d *digestSink) Event(e telemetry.Event) {
	d.h = check.FoldEvent(d.h, e)
	d.n++
}

// CheckpointAt runs the scenario from zero to the first step boundary at or
// after `at` (capped at the horizon) and captures a checkpoint there.
func CheckpointAt(sc Scenario, at vtime.Time) (Checkpoint, error) {
	sys, err := Build(sc)
	if err != nil {
		return Checkpoint{}, err
	}
	sink := newDigestSink()
	sys.AttachTelemetry(sink)
	horizon := vtime.Time(0).Add(sc.Horizon)
	for sys.Now() < at && sys.Now() < horizon {
		sys.Step(horizon)
	}
	var buf bytes.Buffer
	if err := sys.Snapshot(&buf); err != nil {
		return Checkpoint{}, err
	}
	return Checkpoint{State: buf.Bytes(), At: sys.Now(), PrefixDigest: sink.h, Events: sink.n}, nil
}

// CheckpointBeforeViolation runs the scenario with the full oracle suite
// attached, checkpointing before every step, and returns the checkpoint taken
// immediately before the step that produced the first oracle violation. found
// is false when the run is clean; the returned checkpoint is then the last
// step boundary before the horizon. Restoring the checkpoint and stepping
// once reproduces the violating step.
func CheckpointBeforeViolation(sc Scenario) (cp Checkpoint, found bool, err error) {
	suite, err := check.NewSuite(sc.Spec, sc.Policy)
	if err != nil {
		return Checkpoint{}, false, err
	}
	sys, err := Build(sc)
	if err != nil {
		return Checkpoint{}, false, err
	}
	sink := newDigestSink()
	sys.AttachTelemetry(telemetry.Multi{suite, sink})
	horizon := vtime.Time(0).Add(sc.Horizon)
	var buf bytes.Buffer
	for sys.Now() < horizon {
		buf.Reset()
		if err := sys.Snapshot(&buf); err != nil {
			return Checkpoint{}, false, err
		}
		cp = Checkpoint{
			State:        bytes.Clone(buf.Bytes()),
			At:           sys.Now(),
			PrefixDigest: sink.h,
			Events:       sink.n,
		}
		sys.Step(horizon)
		if _, n := suite.Violations(); n > 0 {
			return cp, true, nil
		}
	}
	return cp, false, nil
}

// RestoreCheckpoint builds the scenario's system afresh and restores the
// checkpoint into it. The returned system is at cp.At with no telemetry
// attached; attach a sink and run to the horizon to reproduce the
// straight-line run's suffix.
func RestoreCheckpoint(sc Scenario, cp Checkpoint) (*engine.System, error) {
	sys, err := Build(sc)
	if err != nil {
		return nil, err
	}
	if err := sys.Restore(bytes.NewReader(cp.State)); err != nil {
		return nil, fmt.Errorf("gen: restoring checkpoint: %w", err)
	}
	return sys, nil
}
