package gen

import (
	"testing"

	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/rng"
	"timedice/internal/shard"
)

// wallClockless zeroes the wall-clock host observations of a Counters — the
// only fields sharded stepping is allowed to change. Everything else,
// including the path-dependent ArenaBytesTouched and InterferenceTerms that
// the indexed-vs-scan differential must exclude, is required byte-identical
// here: sharding re-hosts the same indexed algorithm, it does not change it.
func wallClockless(c engine.Counters) engine.Counters {
	c.PolicyTime = 0
	c.PolicySamples = 0
	c.ShardMergeTime = 0
	c.PolicyLatency = nil
	return c
}

// TestShardedDigestsMatch is the end-to-end exactness proof for sharded
// stepping: over the generated corpus (every policy — due-phase sharding is
// policy-independent, and the TimeDice policies additionally exercise the
// speculate-then-replay decision phase), running the identical scenario
// sequentially and sharded across worker counts {1,2,4,8} (shards =
// 4·workers) must produce byte-identical event streams, identical oracle
// verdicts, byte-identical deterministic counters (full struct, wall-clock
// zeroed), and identical verdict-cache hit/miss tallies. Any drift in due
// ordering, horizon folding, speculation/replay agreement, or the merge
// shows up here. The race lane runs this same test under -race, making it
// the system-level concurrency check too.
func TestShardedDigestsMatch(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 150
	}
	r := rng.New(0x54a4d)
	opts := DefaultOptions()
	scs := make([]Scenario, n)
	for i := range scs {
		scs[i] = Generate(r, opts)
	}
	workerCounts := []int{1, 2, 4, 8}
	// One persistent pool per worker count, shared across the whole corpus —
	// the production shape (pools are long-lived, scenarios churn).
	pools := make(map[int]*shard.Pool, len(workerCounts))
	for _, w := range workerCounts {
		pools[w] = shard.NewPool(w)
		defer pools[w].Close()
	}
	type ref struct {
		digest     uint64
		violations int
		counters   engine.Counters
		hits, miss int64
	}
	// Sequential baselines once per scenario, in parallel across scenarios.
	refs := make([]ref, n)
	_, err := runner.Map(0, scs, func(i int, sc Scenario) (struct{}, error) {
		suite, st, err := RunRecorded(sc, nil)
		if err != nil {
			t.Errorf("scenario %d sequential: %v", i, err)
			return struct{}{}, nil
		}
		_, v := suite.Violations()
		refs[i] = ref{suite.Digest(), v, wallClockless(st.Counters), st.CacheHits, st.CacheMisses}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sharded runs dispatch onto their own pools, so the corpus sweep itself
	// stays sequential per worker count (one pool, one system at a time).
	for _, w := range workerCounts {
		pool := pools[w]
		for i, sc := range scs {
			suite, st, err := RunShardedRecorded(sc, nil, pool, 4*w)
			if err != nil {
				t.Errorf("workers=%d scenario %d: %v", w, i, err)
				continue
			}
			if d := suite.Digest(); d != refs[i].digest {
				enc, _ := Encode(sc)
				t.Errorf("workers=%d scenario %d: sharded digest %#x != sequential %#x\nscenario: %s",
					w, i, d, refs[i].digest, enc)
			}
			if _, v := suite.Violations(); v != refs[i].violations {
				t.Errorf("workers=%d scenario %d: sharded %d violations, sequential %d", w, i, v, refs[i].violations)
			}
			if c := wallClockless(st.Counters); c != refs[i].counters {
				t.Errorf("workers=%d scenario %d: counter divergence:\nsharded:    %+v\nsequential: %+v",
					w, i, c, refs[i].counters)
			}
			if st.CacheHits != refs[i].hits || st.CacheMisses != refs[i].miss {
				t.Errorf("workers=%d scenario %d: verdict-cache divergence: sharded %d/%d, sequential %d/%d",
					w, i, st.CacheHits, st.CacheMisses, refs[i].hits, refs[i].miss)
			}
		}
	}
}
