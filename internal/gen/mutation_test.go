//go:build timedice_mutation

package gen

import (
	"testing"

	"timedice/internal/experiments/runner"
)

// TestCacheMutationCaught proves the differential digest test has teeth
// against the cache-invalidation mutant: built with -tags timedice_mutation,
// core.Cache.lookup ignores the per-partition state stamps and serves stale
// verdicts across releases, completions, depletions, and replenishments. The
// uncached run is immune (it has no cache to poison; the tag's server-side
// replenishment mutation applies to both runs equally and cancels out), so at
// least one scenario in the differential corpus must diverge in digest. If
// every scenario still matches, the invalidation machinery is dead weight —
// or the mutant stopped compiling to a behaviour change — and this test
// fails.
func TestCacheMutationCaught(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 60
	}
	scs := diffScenarios(n, 0xd1ce)
	diverged, err := runner.Map(0, scs, func(i int, sc Scenario) (bool, error) {
		cached, err := Run(sc)
		if err != nil {
			return false, err
		}
		uncached, err := RunUncached(sc)
		if err != nil {
			return false, err
		}
		return cached.Digest() != uncached.Digest(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, d := range diverged {
		if d {
			count++
		}
	}
	if count == 0 {
		t.Fatalf("invalidation-skipping mutant survived %d scenarios: differential digest test cannot catch stale cache verdicts", n)
	}
	t.Logf("mutant caught: %d/%d scenarios diverged", count, n)
}

// TestRecipMutationCaught proves the indexed-vs-scan differential has teeth
// against the corrupted-reciprocal mutant: under -tags timedice_mutation,
// vtime.NewReciprocal derives its magic constants for divisor d+1 instead of
// d (see vtime/mutation_on.go), silently skewing every divisionless
// interference count in the batched decision kernel. Only the indexed path
// consumes reciprocals — the AoS scan path deliberately keeps plain hardware
// division as the oracle — so the corruption must surface as a digest
// divergence between the two stepping modes on at least one scenario. If
// every scenario still matches, the kernel is not actually exercising the
// reciprocal arena (or the differential lost its sensitivity) and this test
// fails. The tag's other mutations (cache invalidation, snapshot supply,
// server replenishment) apply to both runs equally and cancel out of this
// comparison.
func TestRecipMutationCaught(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 60
	}
	scs := diffScenarios(n, 0xd1ce)
	diverged, err := runner.Map(0, scs, func(i int, sc Scenario) (bool, error) {
		indexed, err := Run(sc)
		if err != nil {
			return false, err
		}
		scan, err := RunScan(sc)
		if err != nil {
			return false, err
		}
		return indexed.Digest() != scan.Digest(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, d := range diverged {
		if d {
			count++
		}
	}
	if count == 0 {
		t.Fatalf("corrupted-reciprocal mutant survived %d scenarios: the kernel differential cannot catch divisionless arithmetic drift", n)
	}
	t.Logf("mutant caught: %d/%d scenarios diverged", count, n)
}
