//go:build timedice_mutation

package gen

import (
	"testing"

	"timedice/internal/experiments/runner"
)

// TestCacheMutationCaught proves the differential digest test has teeth
// against the cache-invalidation mutant: built with -tags timedice_mutation,
// core.Cache.lookup ignores the per-partition state stamps and serves stale
// verdicts across releases, completions, depletions, and replenishments. The
// uncached run is immune (it has no cache to poison; the tag's server-side
// replenishment mutation applies to both runs equally and cancels out), so at
// least one scenario in the differential corpus must diverge in digest. If
// every scenario still matches, the invalidation machinery is dead weight —
// or the mutant stopped compiling to a behaviour change — and this test
// fails.
func TestCacheMutationCaught(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 60
	}
	scs := diffScenarios(n, 0xd1ce)
	diverged, err := runner.Map(0, scs, func(i int, sc Scenario) (bool, error) {
		cached, err := Run(sc)
		if err != nil {
			return false, err
		}
		uncached, err := RunUncached(sc)
		if err != nil {
			return false, err
		}
		return cached.Digest() != uncached.Digest(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, d := range diverged {
		if d {
			count++
		}
	}
	if count == 0 {
		t.Fatalf("invalidation-skipping mutant survived %d scenarios: differential digest test cannot catch stale cache verdicts", n)
	}
	t.Logf("mutant caught: %d/%d scenarios diverged", count, n)
}
