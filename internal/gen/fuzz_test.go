package gen

import (
	"testing"

	"timedice/internal/rng"
)

// FuzzScenarioParams fuzzes the generator's own input space: any master seed
// must yield a certified scenario that runs clean through the full oracle
// suite. A failure here is a soundness bug in the generator, the analyses,
// the engine, or the oracles — the fuzzer does not care which; the shrunk
// encoding in the failure message says where to look.
func FuzzScenarioParams(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(0xfeed))
	f.Add(uint64(0x2c41718470bb8b3)) // past campaign counterexample (WCRT carry-in)
	f.Fuzz(func(t *testing.T, seed uint64) {
		sc := Generate(rng.New(seed), DefaultOptions())
		suite, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		if vs, total := suite.Violations(); total > 0 {
			blob, _ := Encode(sc)
			t.Fatalf("seed %#x: %d oracle violations\n%v\nreproducer: %s", seed, total, vs, blob)
		}
	})
}

// FuzzScenarioBytes fuzzes the encoded scenario format: every blob Decode
// accepts — including hand-mutated JSON well outside the generator's
// distribution — must simulate without a single oracle violation. The
// differential oracles self-gate on the analyses, so uncertified systems
// exercise the server/engine invariants while certified ones also arm the
// schedulability-preservation claim.
func FuzzScenarioBytes(f *testing.F) {
	// Seed the corpus with generator output across the policy space (the
	// checked-in corpus under testdata/fuzz adds past counterexamples).
	r := rng.New(0xc0ffee)
	for i := 0; i < 4; i++ {
		if blob, err := Encode(Generate(r, DefaultOptions())); err == nil {
			f.Add(blob)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Decode(data)
		if err != nil {
			t.Skip() // rejected blobs are the parser's concern, not the oracles'
		}
		suite, err := Run(sc)
		if err != nil {
			t.Fatalf("decoded scenario failed to run: %v\n%s", err, data)
		}
		if vs, total := suite.Violations(); total > 0 {
			t.Fatalf("%d oracle violations\n%v\nscenario: %s", total, vs, data)
		}
	})
}
