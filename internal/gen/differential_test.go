package gen

import (
	"testing"

	"timedice/internal/experiments/runner"
	"timedice/internal/policies"
	"timedice/internal/rng"
)

// diffOptions narrows the sampling space to the TimeDice policies: the
// verdict cache only exists there, so NoRandom scenarios would compare a
// policy against itself.
func diffOptions() Options {
	opts := DefaultOptions()
	opts.Policies = []policies.Kind{policies.TimeDiceU, policies.TimeDiceW}
	return opts
}

// diffScenarios draws n scenarios from one seed for the differential tests.
func diffScenarios(n int, seed uint64) []Scenario {
	r := rng.New(seed)
	opts := diffOptions()
	scs := make([]Scenario, n)
	for i := range scs {
		scs[i] = Generate(r, opts)
	}
	return scs
}

// TestCachedUncachedDigestsMatch is the exactness proof for the incremental
// schedulability-verdict cache: over a large corpus of generated scenarios,
// running with the cache enabled and disabled must produce byte-identical
// event streams (compared by digest) and identical oracle verdicts. Any
// unsound cache hit — a stale verdict served
// past its validity horizon or across an invalidation — flips at least one
// scheduling decision and shows up as a digest mismatch.
func TestCachedUncachedDigestsMatch(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 150
	}
	scs := diffScenarios(n, 0xd1ce)
	_, err := runner.Map(0, scs, func(i int, sc Scenario) (struct{}, error) {
		cached, err := Run(sc)
		if err != nil {
			t.Errorf("scenario %d cached: %v", i, err)
			return struct{}{}, nil
		}
		uncached, err := RunUncached(sc)
		if err != nil {
			t.Errorf("scenario %d uncached: %v", i, err)
			return struct{}{}, nil
		}
		if cd, ud := cached.Digest(), uncached.Digest(); cd != ud {
			enc, _ := Encode(sc)
			t.Errorf("scenario %d: cached digest %#x != uncached %#x\nscenario: %s", i, cd, ud, enc)
		}
		_, cv := cached.Violations()
		_, uv := uncached.Violations()
		if cv != uv {
			t.Errorf("scenario %d: cached %d violations, uncached %d", i, cv, uv)
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
