package gen

import (
	"testing"

	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/policies"
	"timedice/internal/rng"
)

// diffOptions narrows the sampling space to the TimeDice policies: the
// verdict cache only exists there, so NoRandom scenarios would compare a
// policy against itself.
func diffOptions() Options {
	opts := DefaultOptions()
	opts.Policies = []policies.Kind{policies.TimeDiceU, policies.TimeDiceW}
	return opts
}

// diffScenarios draws n scenarios from one seed for the differential tests.
func diffScenarios(n int, seed uint64) []Scenario {
	r := rng.New(seed)
	opts := diffOptions()
	scs := make([]Scenario, n)
	for i := range scs {
		scs[i] = Generate(r, opts)
	}
	return scs
}

// TestCachedUncachedDigestsMatch is the exactness proof for the incremental
// schedulability-verdict cache: over a large corpus of generated scenarios,
// running with the cache enabled and disabled must produce byte-identical
// event streams (compared by digest) and identical oracle verdicts. Any
// unsound cache hit — a stale verdict served
// past its validity horizon or across an invalidation — flips at least one
// scheduling decision and shows up as a digest mismatch.
func TestCachedUncachedDigestsMatch(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 150
	}
	scs := diffScenarios(n, 0xd1ce)
	_, err := runner.Map(0, scs, func(i int, sc Scenario) (struct{}, error) {
		cached, err := Run(sc)
		if err != nil {
			t.Errorf("scenario %d cached: %v", i, err)
			return struct{}{}, nil
		}
		uncached, err := RunUncached(sc)
		if err != nil {
			t.Errorf("scenario %d uncached: %v", i, err)
			return struct{}{}, nil
		}
		if cd, ud := cached.Digest(), uncached.Digest(); cd != ud {
			enc, _ := Encode(sc)
			t.Errorf("scenario %d: cached digest %#x != uncached %#x\nscenario: %s", i, cd, ud, enc)
		}
		_, cv := cached.Violations()
		_, uv := uncached.Violations()
		if cv != uv {
			t.Errorf("scenario %d: cached %d violations, uncached %d", i, cv, uv)
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// comparableCounters projects an engine.Counters to the subset that must be
// bit-identical across stepping paths: everything except ArenaBytesTouched
// and InterferenceTerms, which are path-dependent by design (the scan path
// visits every partition and re-sums every interference term; the indexed
// path's kernel touches only what changed), and the wall-clock measurements,
// which are host observations. Notably FixpointIters IS compared: the
// divisionless kernel must replay the reference's iteration sequence exactly.
func comparableCounters(c engine.Counters) engine.Counters {
	c.ArenaBytesTouched = 0
	c.InterferenceTerms = 0
	c.PolicyTime = 0
	c.PolicySamples = 0
	c.PolicyLatency = nil
	return c
}

// TestIndexedScanDigestsMatch is the exactness proof for the indexed
// stepping path: over the generated corpus (all policies this time — the
// event queue is policy-independent), the default indexed stepping and the
// reference O(P) scan must produce byte-identical event streams, identical
// oracle verdicts, and identical deterministic engine counters (modulo the
// deliberately path-dependent ones, see comparableCounters). Any divergence
// in delivery order, idle notification, or horizon selection flips at least
// one event and shows up as a digest mismatch; any drift in the decision
// kernel's iteration replay shows up as a FixpointIters mismatch even when
// the schedule happens to agree.
func TestIndexedScanDigestsMatch(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 150
	}
	r := rng.New(0x5ca1ab1e)
	opts := DefaultOptions()
	scs := make([]Scenario, n)
	for i := range scs {
		scs[i] = Generate(r, opts)
	}
	_, err := runner.Map(0, scs, func(i int, sc Scenario) (struct{}, error) {
		indexed, ist, err := RunRecorded(sc, nil)
		if err != nil {
			t.Errorf("scenario %d indexed: %v", i, err)
			return struct{}{}, nil
		}
		scan, sst, err := RunScanRecorded(sc, nil)
		if err != nil {
			t.Errorf("scenario %d scan: %v", i, err)
			return struct{}{}, nil
		}
		if id, sd := indexed.Digest(), scan.Digest(); id != sd {
			enc, _ := Encode(sc)
			t.Errorf("scenario %d: indexed digest %#x != scan %#x\nscenario: %s", i, id, sd, enc)
		}
		_, iv := indexed.Violations()
		_, sv := scan.Violations()
		if iv != sv {
			t.Errorf("scenario %d: indexed %d violations, scan %d", i, iv, sv)
		}
		if ic, sc2 := comparableCounters(ist.Counters), comparableCounters(sst.Counters); ic != sc2 {
			t.Errorf("scenario %d: counter divergence across stepping paths:\nindexed: %+v\nscan:    %+v", i, ic, sc2)
		}
		if ist.CacheHits != sst.CacheHits || ist.CacheMisses != sst.CacheMisses {
			t.Errorf("scenario %d: verdict-cache divergence: indexed %d/%d, scan %d/%d",
				i, ist.CacheHits, ist.CacheMisses, sst.CacheHits, sst.CacheMisses)
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
