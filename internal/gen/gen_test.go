package gen

import (
	"reflect"
	"testing"

	"timedice/internal/check"
	"timedice/internal/policies"
	"timedice/internal/rng"
)

// TestGeneratedScenariosPassOracles is the in-tree slice of the simfuzz
// campaign: every generated scenario must run clean through the full oracle
// suite under its drawn policy.
func TestGeneratedScenariosPassOracles(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	r := rng.New(0xfeed)
	opts := DefaultOptions()
	for i := 0; i < n; i++ {
		sc := Generate(r, opts)
		suite, err := Run(sc)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if vs, total := suite.Violations(); total != 0 {
			enc, _ := Encode(sc)
			t.Errorf("scenario %d: %d violations, first %v\nscenario: %s", i, total, vs[0], enc)
		}
	}
}

// TestGenerateDeterministic pins seed reproducibility of the generator: one
// seed, one scenario, bit for bit.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rng.New(42), DefaultOptions())
	b := Generate(rng.New(42), DefaultOptions())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different scenarios:\n%+v\n%+v", a, b)
	}
	c := Generate(rng.New(43), DefaultOptions())
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scenarios")
	}
}

// TestRunDeterministic pins simulation reproducibility: the same scenario
// yields the same event-stream digest on every run.
func TestRunDeterministic(t *testing.T) {
	sc := Generate(rng.New(7), DefaultOptions())
	s1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Digest() != s2.Digest() {
		t.Fatalf("digest mismatch: %#x vs %#x", s1.Digest(), s2.Digest())
	}
	if s1.Events() == 0 {
		t.Fatal("scenario produced no events")
	}
}

// TestNoRandomIgnoresSeed is the metamorphic NoRandom ≡ strict-priority
// check: the baseline policy consumes no randomness, so changing the
// simulation seed must not change a single event.
func TestNoRandomIgnoresSeed(t *testing.T) {
	sc := Generate(rng.New(11), DefaultOptions())
	sc.Policy = policies.NoRandom
	sc.Seed = 1
	s1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 999
	s2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Digest() != s2.Digest() {
		t.Fatalf("NoRandom schedule depends on the rng seed: %#x vs %#x", s1.Digest(), s2.Digest())
	}
}

// TestGeneratedSpecsCertified pins the generator contract: every emitted spec
// is certified miss-free by the offline analyses.
func TestGeneratedSpecsCertified(t *testing.T) {
	r := rng.New(3)
	for i := 0; i < 20; i++ {
		spec := GenerateSpec(r, DefaultOptions())
		if !check.GuaranteedMissFree(spec) {
			t.Fatalf("spec %d not certified miss-free: %+v", i, spec)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("spec %d invalid: %v", i, err)
		}
	}
}

// TestEncodeDecodeRoundTrip pins the wire format.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 10; i++ {
		sc := Generate(r, DefaultOptions())
		blob, err := Encode(sc)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(blob)
		if err != nil {
			t.Fatalf("decode of encoded scenario failed: %v\n%s", err, blob)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", sc, back)
		}
	}
}

// TestDecodeRejects exercises the decode guards.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		blob string
	}{
		{"garbage", "{"},
		{"tdma", `{"system":{"name":"x","partitions":[{"name":"P1","periodMillis":10,"budgetMillis":5}]},"policy":"TDMA","quantumMillis":1,"seed":1,"horizonMillis":100}`},
		{"no policy", `{"system":{"name":"x","partitions":[{"name":"P1","periodMillis":10,"budgetMillis":5}]},"quantumMillis":1,"seed":1,"horizonMillis":100}`},
		{"huge horizon", `{"system":{"name":"x","partitions":[{"name":"P1","periodMillis":10,"budgetMillis":5}]},"policy":"NoRandom","quantumMillis":1,"seed":1,"horizonMillis":1e9}`},
		{"zero horizon", `{"system":{"name":"x","partitions":[{"name":"P1","periodMillis":10,"budgetMillis":5}]},"policy":"NoRandom","quantumMillis":1,"seed":1,"horizonMillis":0}`},
		{"tiny quantum", `{"system":{"name":"x","partitions":[{"name":"P1","periodMillis":10,"budgetMillis":5}]},"policy":"NoRandom","quantumMillis":0.01,"seed":1,"horizonMillis":100}`},
		{"no partitions", `{"system":{"name":"x","partitions":[]},"policy":"NoRandom","quantumMillis":1,"seed":1,"horizonMillis":100}`},
		{"budget over period", `{"system":{"name":"x","partitions":[{"name":"P1","periodMillis":10,"budgetMillis":50}]},"policy":"NoRandom","quantumMillis":1,"seed":1,"horizonMillis":100}`},
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c.blob)); err == nil {
			t.Errorf("%s: decode accepted invalid scenario", c.name)
		}
	}
}

// TestShrinkMinimizes checks the minimizer against a synthetic predicate:
// "fails" whenever partition P1 is present with at least one task and the
// horizon exceeds a floor. Shrink must strip everything else.
func TestShrinkMinimizes(t *testing.T) {
	sc := Generate(rng.New(21), DefaultOptions())
	if len(sc.Spec.Partitions) < 2 {
		sc = Generate(rng.New(22), DefaultOptions())
	}
	fails := func(c Scenario) bool {
		if c.Horizon < 10 {
			return false
		}
		for _, p := range c.Spec.Partitions {
			if p.Name == "P1" && len(p.Tasks) >= 1 {
				return true
			}
		}
		return false
	}
	if !fails(sc) {
		t.Skip("generated scenario lacks P1 with tasks")
	}
	min := Shrink(sc, fails, 10_000)
	if !fails(min) {
		t.Fatal("shrink returned a non-failing scenario")
	}
	if len(min.Spec.Partitions) != 1 {
		t.Fatalf("shrink kept %d partitions, want 1", len(min.Spec.Partitions))
	}
	if n := len(min.Spec.Partitions[0].Tasks); n != 1 {
		t.Fatalf("shrink kept %d tasks, want 1", n)
	}
	if min.Horizon >= sc.Horizon {
		t.Fatalf("shrink did not reduce horizon: %v -> %v", sc.Horizon, min.Horizon)
	}
}
