package gen

import "timedice/internal/model"

// Shrink greedily minimizes a failing scenario while the predicate keeps
// reporting failure. It tries, in order of expected payoff: halving the
// horizon, dropping whole partitions, dropping individual tasks, and halving
// task WCETs — accepting any candidate that still fails and restarting the
// pass, until a full pass makes no progress or maxSteps candidate evaluations
// have been spent. The result is the smallest failing scenario found.
//
// The predicate is typically Fails (re-simulate and check the oracles), but
// tests substitute cheaper or more specific reproduction checks. Shrink never
// re-validates schedulability: oracles that are gated on analysis results
// re-derive their gates from the shrunk spec, so a candidate that shrinks
// away the precondition simply stops failing and is rejected.
func Shrink(sc Scenario, fails func(Scenario) bool, maxSteps int) Scenario {
	steps := 0
	try := func(cand Scenario) bool {
		if steps >= maxSteps {
			return false
		}
		steps++
		return fails(cand)
	}
	for progress := true; progress && steps < maxSteps; {
		progress = false

		// Halve the horizon while the violation still reproduces.
		for sc.Horizon > 1 {
			cand := sc
			cand.Horizon = sc.Horizon / 2
			if !try(cand) {
				break
			}
			sc = cand
			progress = true
		}

		// Drop whole partitions, highest index (lowest priority) first so
		// the interference structure above a failing partition survives.
		for pi := len(sc.Spec.Partitions) - 1; pi >= 0; pi-- {
			if len(sc.Spec.Partitions) <= 1 {
				break
			}
			cand := sc
			cand.Spec = cloneSpec(sc.Spec)
			cand.Spec.Partitions = append(cand.Spec.Partitions[:pi], cand.Spec.Partitions[pi+1:]...)
			if try(cand) {
				sc = cand
				progress = true
			}
		}

		// Drop individual tasks.
		for pi := range sc.Spec.Partitions {
			for tj := len(sc.Spec.Partitions[pi].Tasks) - 1; tj >= 0; tj-- {
				cand := sc
				cand.Spec = cloneSpec(sc.Spec)
				ts := cand.Spec.Partitions[pi].Tasks
				cand.Spec.Partitions[pi].Tasks = append(ts[:tj], ts[tj+1:]...)
				if try(cand) {
					sc = cand
					progress = true
				}
			}
		}

		// Halve WCETs of the remaining tasks.
		for pi := range sc.Spec.Partitions {
			for tj := range sc.Spec.Partitions[pi].Tasks {
				w := sc.Spec.Partitions[pi].Tasks[tj].WCET
				if w <= minWCET {
					continue
				}
				cand := sc
				cand.Spec = cloneSpec(sc.Spec)
				cand.Spec.Partitions[pi].Tasks[tj].WCET = (w / 2).Max(minWCET)
				if try(cand) {
					sc = cand
					progress = true
				}
			}
		}
	}
	return sc
}

// cloneSpec deep-copies the partition and task slices so shrink candidates
// never alias the original scenario.
func cloneSpec(s model.SystemSpec) model.SystemSpec {
	out := s
	out.Partitions = make([]model.PartitionSpec, len(s.Partitions))
	copy(out.Partitions, s.Partitions)
	for i := range out.Partitions {
		tasks := make([]model.TaskSpec, len(out.Partitions[i].Tasks))
		copy(tasks, out.Partitions[i].Tasks)
		out.Partitions[i].Tasks = tasks
	}
	return out
}
