// Package gen is the deterministic scenario generator of the simulation
// fuzzer: schedulability-aware random sampling of partition sets, budget
// servers, and local task sets, plus an encoded scenario format and a
// shrinking minimizer. Everything is driven by one seeded rng.Rand, so a
// campaign is reproducible bit-for-bit from its seed.
//
// The generator only emits systems that pass the conservative offline
// schedulability test and whose every task has a finite analytic WCRT bound
// within its deadline — the precondition under which the check package's
// differential oracle may demand zero deadline misses from every
// schedulability-preserving policy. Utilizations are split with the UUniFast
// algorithm (Bini & Buttazzo) at both levels: across partitions and across
// each partition's local tasks.
package gen

import (
	"fmt"
	"math"

	"timedice/internal/analysis"
	"timedice/internal/check"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/server"
	"timedice/internal/vtime"
)

// Scenario is one complete fuzz trial: a system, the global policy to run it
// under, the policy quantum, the RNG seed for the simulation, and the
// simulated horizon.
type Scenario struct {
	Spec    model.SystemSpec
	Policy  policies.Kind
	Quantum vtime.Duration
	Seed    uint64
	Horizon vtime.Duration
}

// Options bound the sampling space. The zero value is unusable; start from
// DefaultOptions.
type Options struct {
	MinPartitions, MaxPartitions int
	MinTasks, MaxTasks           int     // local tasks per partition
	MinUtil, MaxUtil             float64 // total Σ B_i/T_i target
	MinPeriodMS, MaxPeriodMS     int64   // partition period grid
	Servers                      []server.Policy
	Policies                     []policies.Kind
	Quantums                     []vtime.Duration
	MinHorizon, MaxHorizon       vtime.Duration
}

// DefaultOptions mirrors the scale of the paper's benchmark systems while
// covering all three budget-server policies and both TimeDice selection
// modes.
func DefaultOptions() Options {
	return Options{
		MinPartitions: 2,
		MaxPartitions: 6,
		MinTasks:      1,
		MaxTasks:      4,
		MinUtil:       0.30,
		MaxUtil:       0.85,
		MinPeriodMS:   5,
		MaxPeriodMS:   80,
		Servers:       []server.Policy{server.Polling, server.Deferrable, server.Sporadic},
		Policies:      []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW},
		Quantums:      []vtime.Duration{500 * vtime.Microsecond, vtime.Millisecond, 2 * vtime.Millisecond},
		MinHorizon:    200 * vtime.Millisecond,
		MaxHorizon:    500 * vtime.Millisecond,
	}
}

const (
	minBudget = 500 * vtime.Microsecond
	minWCET   = 50 * vtime.Microsecond
)

// Generate draws one scenario: a repaired, analytically certified system plus
// a random policy, quantum, simulation seed, and horizon from opts.
func Generate(r *rng.Rand, opts Options) Scenario {
	spec := GenerateSpec(r, opts)
	horizonSpan := int64(opts.MaxHorizon - opts.MinHorizon)
	horizon := opts.MinHorizon
	if horizonSpan > 0 {
		horizon += vtime.Duration(r.Int63n(horizonSpan + 1))
	}
	return Scenario{
		Spec:    spec,
		Policy:  opts.Policies[r.Intn(len(opts.Policies))],
		Quantum: opts.Quantums[r.Intn(len(opts.Quantums))],
		Seed:    r.Uint64(),
		Horizon: horizon,
	}
}

// GenerateSpec draws one system: partition budgets/periods via UUniFast,
// server policies, a priority order (rate-monotonic or Audsley's OPA), and
// per-partition task sets — then repairs it until it passes the conservative
// schedulability test with every task's universal WCRT bound inside its
// deadline. The result is guaranteed miss-free per check.GuaranteedMissFree.
func GenerateSpec(r *rng.Rand, opts Options) model.SystemSpec {
	for {
		spec := samplePartitions(r, opts)
		if !repairPartitions(&spec) {
			continue // pathological draw; resample
		}
		sampleTasks(r, opts, &spec)
		repairTasks(&spec)
		if check.GuaranteedMissFree(spec) {
			return spec
		}
	}
}

// samplePartitions draws the partition layer: count, total utilization split
// by UUniFast, periods on a millisecond grid, server policies, and a priority
// order.
func samplePartitions(r *rng.Rand, opts Options) model.SystemSpec {
	n := opts.MinPartitions + r.Intn(opts.MaxPartitions-opts.MinPartitions+1)
	total := opts.MinUtil + r.Float64()*(opts.MaxUtil-opts.MinUtil)
	utils := uuniFast(r, n, total)
	spec := model.SystemSpec{Name: "fuzz"}
	for i := 0; i < n; i++ {
		tms := opts.MinPeriodMS + r.Int63n(opts.MaxPeriodMS-opts.MinPeriodMS+1)
		T := vtime.MS(tms)
		B := vtime.FromFloatMS(utils[i] * float64(tms))
		if B < minBudget {
			B = minBudget
		}
		if B > T {
			B = T
		}
		spec.Partitions = append(spec.Partitions, model.PartitionSpec{
			Name:   fmt.Sprintf("P%d", i+1),
			Period: T,
			Budget: B,
			Server: opts.Servers[r.Intn(len(opts.Servers))],
		})
	}
	// Priority order: rate-monotonic, or Audsley's OPA on the raw draw.
	sortRM(spec.Partitions)
	if r.Bool(0.5) {
		if order, err := analysis.AssignPriorities(spec); err == nil {
			if re, err := analysis.Reorder(spec, order); err == nil {
				spec = re
			}
		}
	}
	return spec
}

func sortRM(ps []model.PartitionSpec) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Period < ps[j-1].Period; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// repairPartitions shrinks budgets (and ultimately drops the lowest-priority
// partition) until the system passes the conservative schedulability test.
// It reports false if no usable system remains.
func repairPartitions(spec *model.SystemSpec) bool {
	for iter := 0; iter < 256; iter++ {
		if analysis.SystemSchedulableConservative(*spec) {
			return true
		}
		shrunk := false
		for i := range spec.Partitions {
			p := &spec.Partitions[i]
			if p.Budget > minBudget {
				p.Budget = (p.Budget * 3 / 4).Max(minBudget)
				shrunk = true
			}
		}
		if !shrunk {
			if len(spec.Partitions) <= 1 {
				return false
			}
			spec.Partitions = spec.Partitions[:len(spec.Partitions)-1]
		}
	}
	return false
}

// sampleTasks fills each partition with local tasks. Tasks are either aligned
// (period an integer multiple of the partition period, zero offset — the
// critical-instant shape of the WCRT analyses) or free-phase (arbitrary
// period in [4T, 32T] with a random offset, exercising mid-period arrivals);
// local WCETs split a fraction of the partition's bandwidth via UUniFast.
func sampleTasks(r *rng.Rand, opts Options, spec *model.SystemSpec) {
	alignedMults := []int64{2, 3, 4, 6, 8, 16}
	for pi := range spec.Partitions {
		p := &spec.Partitions[pi]
		m := opts.MinTasks + r.Intn(opts.MaxTasks-opts.MinTasks+1)
		if m == 0 {
			continue
		}
		bw := float64(p.Budget) / float64(p.Period)
		target := (0.3 + 0.55*r.Float64()) * bw
		utils := uuniFast(r, m, target)
		for j := 0; j < m; j++ {
			var period vtime.Duration
			var offset vtime.Duration
			if r.Bool(0.6) { // aligned
				period = vtime.Duration(alignedMults[r.Intn(len(alignedMults))]) * p.Period
			} else { // free phase
				period = vtime.Duration(math.Round(float64(p.Period) * (4 + 28*r.Float64())))
				offset = vtime.Duration(r.Int63n(int64(period)))
			}
			wcet := vtime.Duration(utils[j] * float64(period))
			if wcet < minWCET {
				wcet = minWCET
			}
			if wcet > period/2 {
				wcet = period / 2
			}
			p.Tasks = append(p.Tasks, model.TaskSpec{
				Name:   fmt.Sprintf("t%d.%d", pi+1, j+1),
				Period: period,
				WCET:   wcet,
				Offset: offset,
			})
		}
		// Local priority: rate monotonic over the drawn periods.
		ts := p.Tasks
		for i := 1; i < len(ts); i++ {
			for j := i; j > 0 && ts[j].Period < ts[j-1].Period; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
		// Stable names after the sort.
		for j := range ts {
			ts[j].Name = fmt.Sprintf("t%d.%d", pi+1, j+1)
		}
	}
}

// repairTasks halves (and ultimately removes) task WCETs until every task's
// universal WCRT bound fits its deadline. The bound is modular — it depends
// only on the task's own partition — so repairs never invalidate other
// partitions. Tasks in sporadic partitions have no claimable bound (see
// check.UniversalBound); they are repaired against the same delayed-supply
// recurrence as a plausibility target so most runs stay miss-free, without
// any oracle arming on them.
func repairTasks(spec *model.SystemSpec) {
	for pi := range spec.Partitions {
		p := &spec.Partitions[pi]
		for rounds := 0; rounds < 128; rounds++ {
			fixed := true
			for tj := 0; tj < len(p.Tasks); {
				t := &p.Tasks[tj]
				d := t.Deadline
				if d == 0 {
					d = t.Period
				}
				b := check.UniversalBound(*spec, pi, tj)
				if b == analysis.Unschedulable && p.Server == server.Sporadic {
					b = analysis.WCRTTimeDiceDelayed(*spec, pi, tj, p.Period)
				}
				if b != analysis.Unschedulable && b <= d {
					tj++
					continue
				}
				fixed = false
				if t.WCET > minWCET {
					t.WCET = (t.WCET / 2).Max(minWCET)
					tj++
				} else {
					p.Tasks = append(p.Tasks[:tj], p.Tasks[tj+1:]...)
				}
			}
			if fixed {
				break
			}
		}
	}
}

// ConstrainDeadlines tightens some implicit deadlines to constrained ones
// that still clear the task's universal bound (midpoint between the bound and
// the period). Call after GenerateSpec when deadline variety is wanted; the
// result remains guaranteed miss-free.
func ConstrainDeadlines(r *rng.Rand, spec *model.SystemSpec, prob float64) {
	for pi := range spec.Partitions {
		p := &spec.Partitions[pi]
		for tj := range p.Tasks {
			t := &p.Tasks[tj]
			if t.Deadline != 0 || !r.Bool(prob) {
				continue
			}
			u := check.UniversalBound(*spec, pi, tj)
			if u == analysis.Unschedulable || u >= t.Period {
				continue
			}
			d := u + (t.Period-u)/2
			if d >= t.WCET && d < t.Period {
				t.Deadline = d
			}
		}
	}
}

// uuniFast draws n non-negative utilizations summing to total, uniformly over
// the simplex (Bini & Buttazzo).
func uuniFast(r *rng.Rand, n int, total float64) []float64 {
	out := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(r.Float64(), 1/float64(n-i-1))
		out[i] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}
