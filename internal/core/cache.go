package core

import (
	"timedice/internal/vtime"
)

// This file implements the incremental schedulability-test cache: the Fig. 9
// observation taken one step further. A verdict computed by Algorithm 3 at
// decision time t stays exactly reproducible for a computable span of virtual
// time, so Pick can reuse it instead of re-running the busy-interval fixpoint,
// provided nothing discontinuous happened to the partitions it reads.
//
// Soundness (and exactness — cached and uncached runs must produce
// byte-identical schedules, pinned differentially against the simfuzz corpus):
//
// The verdict for Π_h reads only partitions 0..h: budgets B_j and periods T_j
// (constants), remaining budgets B_j(t), replenishment-stream anchors
// (NextSupply/NextReplenish), the deadline, and Π_h's activity flag. The
// engine stamps a partition whenever one of those changes discontinuously —
// job release/completion, budget depletion, replenishment delivery, a silent
// period-boundary advance, or a sporadic server scheduling a future chunk.
// Between stamps the only evolution is the passage of time: remaining budgets
// decrease by at most the elapsed δ (execution), and every anchor and deadline
// is constant in absolute time.
//
// Write the test at time t as the least fixpoint E of
//
//	E = t + w + R_h(t) + Σ_j B_j · N_j(E)
//
// (absolute form of Eqs. 1–2), where R_h(t) is the sum of remaining budgets
// and N_j(E) counts stream arrivals strictly before E. PASS ⇔ E ≤ d.
//
//   - FAIL is valid for the rest of the epoch: at t' = t+δ the base term
//     t' + R_h(t') ≥ t + R_h(t) (execution consumes at most δ of budget per
//     δ of time), so the new fixpoint E' ≥ E > d.
//   - PASS is valid while now ≤ t + min(d_rel, ρ_next) − E_rel: as long as
//     the interval end E+δ neither passes the deadline nor captures a stream
//     arrival that E did not (ρ_next is the earliest arrival ≥ E among the
//     streams the test charges), E+δ is a fixpoint of the shifted equation
//     and the verdict is unchanged.
//
// Invalidation is per-partition: a stamp on Π_j stales the cached verdicts of
// every Π_h with h ≥ j and leaves h < j untouched, tracked with a prefix-max
// over the engine's stamp vector.

// verdictEntry is one memoized Algorithm-3 outcome.
type verdictEntry struct {
	stamp      uint64     // prefix-max state stamp the verdict was computed under
	validUntil vtime.Time // last instant (inclusive) the verdict is reusable
	ok         bool
}

// Cache memoizes per-partition schedulability verdicts across decision
// points. The zero value is ready to use; it is sized on first begin call.
// A Cache belongs to one Policy and is not safe for concurrent use.
type Cache struct {
	entries []verdictEntry
	prefix  []uint64 // prefix[h] = max(stamps[0..h]) for the current decision
	hits    int64
	misses  int64
	// searchValid accumulates, across one candidate search, the minimum
	// validUntil of every verdict the search consulted. Until that instant —
	// and as long as no partition is stamped — the whole search outcome
	// (candidate list and idle eligibility) is reproducible, which Pick
	// exploits to skip the snapshot and search entirely.
	searchValid vtime.Time
}

// begin prepares the cache for one decision over n partitions whose current
// state stamps are stamps[0..n-1].
func (c *Cache) begin(stamps []uint64, n int) {
	if len(c.entries) != n {
		if cap(c.entries) < n {
			c.entries = make([]verdictEntry, n)
			c.prefix = make([]uint64, n)
		}
		c.entries = c.entries[:n]
		c.prefix = c.prefix[:n]
		c.Reset()
	}
	var m uint64
	for i := 0; i < n; i++ {
		if stamps[i] > m {
			m = stamps[i]
		}
		c.prefix[i] = m
	}
	c.searchValid = vtime.Infinity
}

// lookup returns the cached verdict for partition h if it is still valid at
// instant now. cacheIgnoresInvalidation is the timedice_mutation hook: normal
// builds compile it to false and the branch folds away.
func (c *Cache) lookup(h int, now vtime.Time) (ok, hit bool) {
	e := &c.entries[h]
	if (cacheIgnoresInvalidation || e.stamp >= c.prefix[h]) && now <= e.validUntil {
		c.hits++
		if e.validUntil < c.searchValid {
			c.searchValid = e.validUntil
		}
		return e.ok, true
	}
	c.misses++
	return false, false
}

// peek reports whether a lookup(h, now) would hit, without mutating any
// cache state (no hit/miss counters, no searchValid update). The speculative
// workers of the parallel candidate search use it to decide which verdicts
// need computing: because the sequential search tests each h at most once and
// in strictly increasing order, every store it performs lands at an index
// already consumed, so the entry peek reads is exactly the entry the replay's
// lookup will read — peek and the replayed lookup always agree.
func (c *Cache) peek(h int, now vtime.Time) bool {
	e := &c.entries[h]
	return (cacheIgnoresInvalidation || e.stamp >= c.prefix[h]) && now <= e.validUntil
}

// store memoizes a freshly computed verdict for partition h.
func (c *Cache) store(h int, ok bool, validUntil vtime.Time) {
	c.entries[h] = verdictEntry{stamp: c.prefix[h], validUntil: validUntil, ok: ok}
	if validUntil < c.searchValid {
		c.searchValid = validUntil
	}
}

// Hits returns the number of decision-level test invocations served from the
// cache so far.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of lookups that found no valid verdict (each
// miss triggers one Algorithm-3 computation, so misses equals the tests
// actually run through the cache).
func (c *Cache) Misses() int64 { return c.misses }

// Lookups returns the total number of cache consultations. Hits and misses
// partition the lookups exactly: Hits() + Misses() == Lookups() always (a
// unit test pins this), so the hit ratio reported by /metrics and the
// tests/decision numbers in HACKING derive from one source.
func (c *Cache) Lookups() int64 { return c.hits + c.misses }

// HitRatio returns Hits/Lookups, or 0 before any lookup.
func (c *Cache) HitRatio() float64 {
	l := c.hits + c.misses
	if l == 0 {
		return 0
	}
	return float64(c.hits) / float64(l)
}

// Reset clears every memoized verdict and the hit/miss counters; entries
// become unreusable at any instant (validUntil −1 precedes every virtual
// time).
func (c *Cache) Reset() {
	for i := range c.entries {
		c.entries[i] = verdictEntry{validUntil: -1}
	}
	c.hits = 0
	c.misses = 0
}

// schedFixpoint runs the Algorithm-3 busy-interval iteration and returns the
// verdict together with the fixpoint value cur and the deadline (both
// relative to now) that passHorizon needs, plus the work tallies (iterations
// and interference terms evaluated); wrappers account for the invocation
// itself. This is the plain-division reference form — the decision kernel
// (stateView.fixpoint) is pinned against it, so it must stay naive: every
// iteration re-sums every charged stream through hardware division.
func schedFixpoint(states []PartitionState, h int, now vtime.Time, w vtime.Duration) (ok bool, cur, deadline vtime.Duration, cost fixCost) {
	s := &states[h]
	var w0 vtime.Duration = w
	if s.Active {
		w0 += s.Remaining
		deadline = s.NextReplenish.Sub(now)
	} else {
		deadline = s.NextReplenish.Add(s.Period).Sub(now)
	}
	for j := 0; j < h; j++ {
		w0 += states[j].Remaining
	}
	if w0 > deadline {
		return false, 0, deadline, cost
	}
	cur = w0
	for {
		cost.iters++
		next := w0
		for j := 0; j < h; j++ {
			o := states[j].supplyTime().Sub(now)
			next += streamInterference(cur, o, states[j].Period, states[j].Budget)
		}
		cost.terms += int64(h)
		if !s.Active {
			o := s.supplyTime().Sub(now)
			next += streamInterference(cur, o, s.Period, s.Budget)
			cost.terms++
		}
		if next > deadline {
			return false, cur, deadline, cost
		}
		if next == cur {
			return true, cur, deadline, cost
		}
		cur = next
	}
}

// passHorizon computes how far past now a passing verdict stays exact: the
// minimum of the deadline slack (deadline − cur) and, over every stream the
// test charges (hp(Π_h), plus Π_h's own when inactive), the gap from the
// busy-interval end cur to that stream's next arrival at or after cur.
func passHorizon(states []PartitionState, h int, now vtime.Time, cur, deadline vtime.Duration) vtime.Duration {
	horizon := deadline - cur
	for j := 0; j <= h; j++ {
		if j == h && states[h].Active {
			break
		}
		st := &states[j]
		o := st.supplyTime().Sub(now)
		arr := streamNextArrival(cur, o, st.Period)
		if gap := arr - cur; gap < horizon {
			horizon = gap
		}
	}
	return horizon
}

// testVerdict is the cache-aware front end of SchedulabilityTest used by the
// candidate search: with a nil cache it behaves identically to
// SchedulabilityTest; with a cache it serves valid memoized verdicts and
// memoizes fresh ones with their validity horizon. res.Tests counts only
// actual Algorithm-3 computations, never cache hits; the fixpoint's work
// tallies accumulate alongside.
func testVerdict(states []PartitionState, h int, now vtime.Time, w vtime.Duration, res *SearchResult, cache *Cache) bool {
	if cache != nil {
		if ok, hit := cache.lookup(h, now); hit {
			return ok
		}
	}
	res.Tests++
	ok, cur, deadline, cost := schedFixpoint(states, h, now, w)
	res.FixpointIters += cost.iters
	res.InterferenceTerms += cost.terms
	if cache != nil {
		validUntil := vtime.Infinity // FAIL holds for the rest of the epoch
		if ok {
			validUntil = now.Add(passHorizon(states, h, now, cur, deadline))
		}
		cache.store(h, ok, validUntil)
	}
	return ok
}
