package core

// This file is the batched Algorithm-3 path: the same candidate search,
// busy-interval fixpoint, horizon computation, and lottery selection as
// timedice.go, re-expressed over the engine's struct-of-arrays hot arenas
// (engine.Hot) instead of a []PartitionState snapshot.
//
// Why it exists: under indexed stepping the engine already maintains exact
// per-partition hot state in contiguous slices (remaining, deadline, supply,
// budget, period) plus a hierarchical ready bitset. Snapshotting that into
// PartitionState structs costs an O(P) pointer chase per decision — the
// dominant term at P=4096+ where a decision touches a handful of partitions.
// The view path aliases the arenas directly (bind is O(1)), walks runnable
// partitions through the bitset, and hoists the two loop-invariant terms of
// Eq. 1–2 out of the fixpoint iteration:
//
//   - off[j]       = supply_j − now      (the stream anchor, constant per decision)
//   - remPrefix[h] = Σ_{j<h} remaining_j (term (b), the hp remaining-budget sum)
//
// Both are filled lazily in index order (extend), so a decision that tests up
// to partition h pays O(h) hoisting total — amortized O(1) per test.
//
// The fixpoint itself runs the decision kernel (kernel.go): no hardware
// division (interference counts come from the precomputed vtime.Reciprocal
// arena) and no redundant re-summation (the busy-interval length cur is
// monotone nondecreasing within a run, so the kernel maintains each tracked
// stream's next charged arrival in narr and a running interference sum,
// advancing only the streams whose arrival was crossed — O(changed) per
// iteration instead of O(h)). At convergence narr holds exactly the arrivals
// passHorizon would recompute, so the verdict's validity horizon falls out of
// the recorded minimum for free.
//
// Exactness contract: every arithmetic step computes the same values as
// schedFixpoint/passHorizon/Select (including the NextSupply==0 fallback and
// the float64 lottery weights), so verdicts, candidate lists, and random
// draws are bit-identical to the AoS reference, which deliberately keeps
// plain division as the oracle. TestViewMatchesAoS pins that per function
// (including per-iteration equality of the incremental sum); the
// indexed-vs-scan digest suite pins it end-to-end, because ScanStepping runs
// keep using the AoS path against live servers.

import (
	"timedice/internal/bitset"
	"timedice/internal/engine"
	"timedice/internal/partition"
	"timedice/internal/rng"
	"timedice/internal/vtime"
)

// stateView is the per-decision view over the engine's hot arenas. The six
// arena slices and the ready bitset are aliased, never copied; off, remPrefix,
// and narr are policy-owned scratch reused across decisions.
type stateView struct {
	remaining []vtime.Duration
	budget    []vtime.Duration
	period    []vtime.Duration
	deadline  []vtime.Time
	supply    []vtime.Time
	recip     []vtime.Reciprocal
	ready     *bitset.Hier

	now vtime.Time

	// Hoisted per-decision terms, valid for indices < hoistN.
	off       []vtime.Duration // supplyAt(j) − now
	remPrefix []vtime.Duration // Σ_{j<h} remaining[j]
	hoistN    int

	// Fixpoint scratch: narr[j] is stream j's next charged arrival during the
	// current fixpoint run. The sequential path passes this one slice to every
	// fixpoint call; the parallel search hands each worker its own slice so
	// concurrent speculative fixpoints over the shared read-only view never
	// alias scratch.
	narr []vtime.Duration
}

// bind aliases the arena view for one decision at instant now. O(1) apart
// from one-time scratch growth.
func (v *stateView) bind(hot engine.Hot, now vtime.Time) {
	v.remaining = hot.Remaining
	v.budget = hot.Budget
	v.period = hot.Period
	v.deadline = hot.Deadline
	v.supply = hot.Supply
	v.recip = hot.Recip
	v.ready = hot.Ready
	v.now = now
	n := len(hot.Remaining)
	if cap(v.off) < n {
		v.off = make([]vtime.Duration, n)
		v.remPrefix = make([]vtime.Duration, n)
		v.narr = make([]vtime.Duration, n)
	}
	v.off = v.off[:n]
	v.remPrefix = v.remPrefix[:n]
	v.narr = v.narr[:n]
	v.hoistN = 0
}

func (v *stateView) n() int { return len(v.remaining) }

// supplyAt mirrors PartitionState.supplyTime: the earliest future budget gain,
// defaulting to the replenishment deadline when the supply anchor is unset.
func (v *stateView) supplyAt(j int) vtime.Time {
	if v.supply[j] != 0 {
		return v.supply[j]
	}
	return v.deadline[j]
}

// extend fills off and remPrefix up through index h. Tests run in increasing
// h, so across one decision the total work is O(max h), not O(h) per test.
func (v *stateView) extend(h int) {
	for j := v.hoistN; j <= h; j++ {
		if j == 0 {
			v.remPrefix[0] = 0
		} else {
			v.remPrefix[j] = v.remPrefix[j-1] + v.remaining[j-1]
		}
		v.off[j] = v.supplyAt(j).Sub(v.now)
	}
	if h+1 > v.hoistN {
		v.hoistN = h + 1
	}
}

// fixpoint is schedFixpoint over the arena view — the Algorithm-3
// busy-interval iteration for partition h under an inversion of w — run as the
// incremental, divisionless decision kernel. Callers must extend(h) first.
//
// The tracked stream set is hp(Π_h), plus Π_h's own replenishment stream when
// it is inactive (its indirect interference term) — exactly the streams
// passHorizon charges. kernelInit opens the run at cur = w0 with one
// divisionless sweep, leaving narr[j] = the first arrival of stream j at or
// after cur. Each subsequent iteration exploits that cur only grows: streams
// whose recorded arrival is still at or beyond the new cur contribute no new
// replenishments, so their count, sum share, and arrival carry over untouched,
// and the rescan (guarded by the running minimum arrival) advances only the
// crossed ones. The running sum therefore always equals the reference's
// from-scratch Σ ⌈(cur−o)/T⌉₀·B — in exact integers, hence bit-for-bit in
// int64 — and the iteration sequence (and so the verdict and converged cur)
// replays the reference exactly. At convergence narr holds precisely the
// arrivals passHorizon recomputes; their minimum is returned in minArr for
// horizonOf.
//
// scratch is the caller-owned arrival buffer (at least h+1 long); apart from
// it and the returned values, fixpoint reads the view but writes nothing, so
// calls with distinct scratch slices may run concurrently over one view.
func (v *stateView) fixpoint(h int, w vtime.Duration, scratch []vtime.Duration) (ok bool, cur, deadline, minArr vtime.Duration, cost fixCost) {
	active := v.remaining[h] > 0
	w0 := w + v.remPrefix[h]
	if active {
		w0 += v.remaining[h]
		deadline = v.deadline[h].Sub(v.now)
	} else {
		deadline = v.deadline[h].Add(v.period[h]).Sub(v.now)
	}
	if w0 > deadline {
		return false, 0, deadline, 0, cost
	}
	m := h
	if !active {
		m = h + 1
	}
	off := v.off[:m]
	per := v.period[:m]
	bud := v.budget[:m]
	rec := v.recip[:m]
	narr := scratch[:m]
	cur = w0
	sum, minArr := kernelInit(off, per, bud, rec, narr, cur)
	cost.terms = int64(m)
	for {
		cost.iters++
		if fixpointIterHook != nil {
			fixpointIterHook(h, cur, sum)
		}
		next := w0 + sum
		if next > deadline {
			return false, cur, deadline, 0, cost
		}
		if next == cur {
			return true, cur, deadline, minArr, cost
		}
		cur = next
		if cur > minArr {
			minArr = vtime.Forever
			for j, a := range narr {
				if a < cur {
					d := vtime.Duration(rec[j].CeilDiv(cur - a))
					sum += d * bud[j]
					a += d * per[j]
					narr[j] = a
					cost.terms++
				}
				if a < minArr {
					minArr = a
				}
			}
		}
	}
}

// horizonOf is passHorizon over the view: how far past now a passing verdict
// stays exact, from the converged fixpoint value cur, the relative deadline,
// and the minimum next charged arrival minArr the fixpoint returned — the
// tracked streams' first arrivals at or after cur are already in hand, so no
// division and no O(h) rescan. When the tracked set is empty (h = 0 and
// active), minArr is Forever and only the deadline slack bounds the horizon,
// as in the reference. A pure function of its arguments, so speculative
// workers can fold it into their recorded verdicts.
func horizonOf(cur, deadline, minArr vtime.Duration) vtime.Duration {
	horizon := deadline - cur
	if gap := minArr - cur; gap < horizon {
		horizon = gap
	}
	return horizon
}

// testVerdict is the cache-aware test front end over the view, sharing Cache
// (and therefore verdict validity and hit accounting) with the AoS path. The
// fixpoint's work tallies accumulate into res.
func (v *stateView) testVerdict(h int, w vtime.Duration, res *SearchResult, cache *Cache) bool {
	if cache != nil {
		if ok, hit := cache.lookup(h, v.now); hit {
			return ok
		}
	}
	res.Tests++
	v.extend(h)
	ok, cur, deadline, minArr, cost := v.fixpoint(h, w, v.narr)
	res.FixpointIters += cost.iters
	res.InterferenceTerms += cost.terms
	if cache != nil {
		validUntil := vtime.Infinity // FAIL holds for the rest of the epoch
		if ok {
			validUntil = v.now.Add(horizonOf(cur, deadline, minArr))
		}
		cache.store(h, ok, validUntil)
	}
	return ok
}

// search is candidateSearch over the view. Instead of scanning all P states
// for the Runnable flag, it walks the set bits of the ready set — O(occupied
// groups + runnable) — and runs the same incremental coverage of the
// partitions between candidates.
func (v *stateView) search(w vtime.Duration, scratch []int, cache *Cache) SearchResult {
	res := SearchResult{Candidates: scratch[:0]}
	examined := 0
	first := true
	failed := false
	v.ready.ForEachSet(func(i int) bool {
		if first {
			res.Candidates = append(res.Candidates, i)
			if examined < i {
				examined = i
			}
			first = false
			return true
		}
		for h := examined; h < i; h++ {
			if !v.testVerdict(h, w, &res, cache) {
				failed = true
				return false
			}
			examined = h + 1
		}
		res.Candidates = append(res.Candidates, i)
		if examined < i {
			examined = i
		}
		return true
	})
	if failed || first {
		return res
	}
	idleOK := true
	for h := examined; h < v.n(); h++ {
		if !v.testVerdict(h, w, &res, cache) {
			idleOK = false
			break
		}
		examined = h + 1
	}
	res.IdleOK = idleOK
	return res
}

// selectFrom is Select over the view: identical option counting, weight
// arithmetic, and random-stream consumption, reading the candidates' draining
// budgets and deadlines straight from the arenas (which are live, so reused
// searches need no per-candidate refresh).
func (v *stateView) selectFrom(res SearchResult, mode SelectionMode, rnd *rng.Rand, weights []float64) int {
	n := len(res.Candidates)
	options := n
	if res.IdleOK {
		options++
	}
	if options == 0 {
		panic("core: selectFrom with no options")
	}
	if mode == SelectUniform {
		k := rnd.Intn(options)
		if k == n {
			return IdleChoice
		}
		return res.Candidates[k]
	}
	weights = weights[:0]
	var sum float64
	for _, i := range res.Candidates {
		den := v.deadline[i].Sub(v.now)
		var u float64
		if den > 0 {
			u = float64(v.remaining[i]) / float64(den)
		}
		weights = append(weights, u)
		sum += u
	}
	if res.IdleOK {
		idleW := 1 - sum
		if idleW < 0 {
			idleW = 0
		}
		weights = append(weights, idleW)
	}
	k := rnd.WeightedIndex(weights)
	if k == n {
		return IdleChoice
	}
	return res.Candidates[k]
}

// pickView is Pick's decision body under indexed stepping: alias the arenas,
// reuse or rerun the search, select. The search-reuse fast path is even
// cheaper than the AoS one — the arenas are live, so the candidates'
// remaining/deadline values selection reads need no refresh at all.
func (p *Policy) pickView(sys *engine.System, now vtime.Time, rnd *rng.Rand) *partition.Partition {
	v := &p.view
	v.bind(sys.Hot(), now)
	var res SearchResult
	if reuse, maxStamp := p.searchReusable(sys, now); reuse {
		res = SearchResult{Candidates: p.scratch, IdleOK: p.searchIdle}
		p.stats.SearchReuses++
	} else {
		if p.cache != nil {
			p.cache.begin(sys.StateStamps(), v.n())
		}
		if pool, ranges := sys.ShardExec(); pool != nil {
			res = p.searchParallel(v, pool, ranges, p.scratch, p.cache)
		} else {
			res = v.search(p.quantum, p.scratch, p.cache)
		}
		p.scratch = res.Candidates
		if p.cache != nil {
			p.searchInit = true
			p.searchIdle = res.IdleOK
			p.searchStamp = maxStamp
			p.searchValid = p.cache.searchValid
			p.searchLen = v.n()
		}
	}
	p.stats.SchedTests += res.Tests
	sys.Counters.FixpointIters += res.FixpointIters
	sys.Counters.InterferenceTerms += res.InterferenceTerms
	p.stats.CandidateSum += int64(len(res.Candidates))
	p.lastCandidates, p.lastTests = int64(len(res.Candidates)), res.Tests
	if res.IdleOK {
		p.stats.IdleEligible++
	}
	if len(res.Candidates) == 0 {
		return nil
	}
	if cap(p.weights) < v.n()+1 {
		p.weights = make([]float64, 0, v.n()+1)
	}
	choice := v.selectFrom(res, p.mode, rnd, p.weights)
	if choice == IdleChoice {
		p.stats.IdleSelected++
		return nil
	}
	if choice != res.Candidates[0] {
		p.stats.InversionsWon++
	}
	return sys.Partitions[choice]
}
