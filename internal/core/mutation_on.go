//go:build timedice_mutation

package core

// cacheIgnoresInvalidation under the timedice_mutation tag: Cache.lookup
// serves memoized verdicts without checking the per-partition state stamps,
// so epoch-bumping events (releases, completions, depletions,
// replenishments, sporadic chunks) no longer invalidate entries and stale
// verdicts — including FAIL verdicts memoized with an unbounded horizon —
// leak into later epochs. The run stays internally consistent, so only the
// cached-vs-uncached differential digest comparison can catch it;
// TestCacheMutationCaught asserts it does.
const cacheIgnoresInvalidation = true
