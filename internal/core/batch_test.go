package core

import (
	"testing"

	"timedice/internal/bitset"
	"timedice/internal/rng"
	"timedice/internal/vtime"
)

// viewFromStates builds a stateView (plus its ready bitset) holding exactly
// the same facts as the AoS snapshot, the way the engine arenas would.
func viewFromStates(states []PartitionState, now vtime.Time) *stateView {
	n := len(states)
	v := &stateView{
		remaining: make([]vtime.Duration, n),
		budget:    make([]vtime.Duration, n),
		period:    make([]vtime.Duration, n),
		deadline:  make([]vtime.Time, n),
		supply:    make([]vtime.Time, n),
		recip:     make([]vtime.Reciprocal, n),
		ready:     bitset.New(n),
		now:       now,
		off:       make([]vtime.Duration, n),
		remPrefix: make([]vtime.Duration, n),
		narr:      make([]vtime.Duration, n),
	}
	for i := range states {
		s := &states[i]
		v.remaining[i] = s.Remaining
		v.budget[i] = s.Budget
		v.period[i] = s.Period
		v.deadline[i] = s.NextReplenish
		v.supply[i] = s.NextSupply
		v.recip[i] = vtime.NewReciprocal(s.Period)
		if s.Runnable {
			v.ready.Set(i)
		}
	}
	return v
}

// randomStates generates a priority-ordered system snapshot with a mix of
// active/inactive, runnable/blocked partitions, supply anchors both set and
// unset (the NextSupply==0 fallback), and occasional sporadic early chunks.
func randomStates(r *rng.Rand, n int, now vtime.Time) []PartitionState {
	states := make([]PartitionState, n)
	for i := range states {
		period := vtime.Duration(1+r.Intn(50)) * vtime.Millisecond
		budget := vtime.Duration(1+r.Intn(int(period/vtime.Millisecond))) * vtime.Millisecond / 2
		if budget <= 0 {
			budget = vtime.Millisecond / 2
		}
		st := PartitionState{Budget: budget, Period: period}
		// Deadline lands somewhere in (now, now+period].
		st.NextReplenish = now.Add(vtime.Duration(1 + r.Intn(int(period))))
		switch r.Intn(4) {
		case 0: // inactive
		case 1: // active, blocked (no ready work)
			st.Remaining = vtime.Duration(1 + r.Intn(int(budget)))
		default: // active and runnable
			st.Remaining = vtime.Duration(1 + r.Intn(int(budget)))
			st.Runnable = true
		}
		st.Active = st.Remaining > 0
		switch r.Intn(3) {
		case 0:
			st.NextSupply = 0 // unset: falls back to NextReplenish
		case 1:
			st.NextSupply = st.NextReplenish
		default: // sporadic chunk strictly before the deadline
			st.NextSupply = now.Add(vtime.Duration(1 + r.Intn(int(st.NextReplenish.Sub(now)))))
		}
		states[i] = st
	}
	return states
}

// TestViewMatchesAoS is the differential pin for the batched path: on random
// snapshots, the view fixpoint (the divisionless incremental kernel), the
// full candidate search (cached and uncached), and the lottery selection must
// reproduce the AoS reference bit-for-bit — same verdicts, same candidates,
// same test and iteration counts, same random draws. A fixpointIterHook
// additionally re-sums the interference from scratch with plain division at
// every kernel iteration and requires the incrementally maintained sum to
// match exactly.
func TestViewMatchesAoS(t *testing.T) {
	r := rng.New(0xd1ce)
	now := vtime.Time(17 * vtime.Millisecond)
	w := DefaultQuantum

	// The hook sees every kernel iteration of the trial's fixpoints,
	// including those run inside the searches below.
	var hookStates []PartitionState
	fixpointIterHook = func(h int, cur, sum vtime.Duration) {
		m := h
		if !hookStates[h].Active {
			m = h + 1
		}
		var ref vtime.Duration
		for j := 0; j < m; j++ {
			o := hookStates[j].supplyTime().Sub(now)
			ref += streamInterference(cur, o, hookStates[j].Period, hookStates[j].Budget)
		}
		if sum != ref {
			t.Fatalf("h=%d cur=%v: incremental sum %v, re-summed reference %v", h, cur, sum, ref)
		}
	}
	defer func() { fixpointIterHook = nil }()

	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(24)
		states := randomStates(r, n, now)
		hookStates = states
		v := viewFromStates(states, now)

		// Per-partition fixpoint verdicts.
		v.extend(n - 1)
		for h := 0; h < n; h++ {
			aok, acur, adl, acost := schedFixpoint(states, h, now, w)
			vok, vcur, vdl, vmin, vcost := v.fixpoint(h, w, v.narr)
			if aok != vok || acur != vcur || adl != vdl {
				t.Fatalf("trial %d h=%d: fixpoint (%v,%v,%v) vs view (%v,%v,%v)",
					trial, h, aok, acur, adl, vok, vcur, vdl)
			}
			if acost.iters != vcost.iters {
				t.Fatalf("trial %d h=%d: reference ran %d iterations, kernel %d — the kernel must replay the iteration sequence exactly",
					trial, h, acost.iters, vcost.iters)
			}
			if vcost.terms > acost.terms {
				t.Fatalf("trial %d h=%d: kernel evaluated %d interference terms, reference %d — incremental advance must never exceed full re-summation",
					trial, h, vcost.terms, acost.terms)
			}
			if aok {
				ah := passHorizon(states, h, now, acur, adl)
				vh := horizonOf(vcur, vdl, vmin)
				if ah != vh {
					t.Fatalf("trial %d h=%d: passHorizon %v vs view %v", trial, h, ah, vh)
				}
			}
		}

		// Uncached search.
		ares := candidateSearch(states, now, w, nil, nil)
		vres := v.search(w, nil, nil)
		compareSearch(t, trial, "uncached", ares, vres)

		// Cached search: two fresh caches fed identical stamps must behave
		// identically (verdicts, hit/miss counts, searchValid).
		stamps := make([]uint64, n)
		for i := range stamps {
			stamps[i] = uint64(r.Intn(5))
		}
		ac, vc := &Cache{}, &Cache{}
		ac.begin(stamps, n)
		vc.begin(stamps, n)
		ares = candidateSearch(states, now, w, nil, ac)
		vres = v.search(w, nil, vc)
		compareSearch(t, trial, "cached", ares, vres)
		if ac.Hits() != vc.Hits() || ac.Misses() != vc.Misses() || ac.searchValid != vc.searchValid {
			t.Fatalf("trial %d: cache divergence: AoS %d/%d valid %v, view %d/%d valid %v",
				trial, ac.Hits(), ac.Misses(), ac.searchValid, vc.Hits(), vc.Misses(), vc.searchValid)
		}

		// Selection: identical seeds must yield identical choices in both
		// modes (weighted exercises the float weight arithmetic).
		if len(ares.Candidates) > 0 || ares.IdleOK {
			for _, mode := range []SelectionMode{SelectWeighted, SelectUniform} {
				seed := uint64(trial)*2 + uint64(mode)
				got := v.selectFrom(vres, mode, rng.New(seed), nil)
				want := Select(states, ares, now, mode, rng.New(seed), nil)
				if got != want {
					t.Fatalf("trial %d mode %v: selectFrom = %d, Select = %d", trial, mode, got, want)
				}
			}
		}
	}
}

func compareSearch(t *testing.T, trial int, ctx string, a, b SearchResult) {
	t.Helper()
	if a.IdleOK != b.IdleOK || a.Tests != b.Tests || len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("trial %d %s: AoS (cand %d, idle %v, tests %d) vs view (cand %d, idle %v, tests %d)",
			trial, ctx, len(a.Candidates), a.IdleOK, a.Tests, len(b.Candidates), b.IdleOK, b.Tests)
	}
	// Iteration counts are path-independent; term counts are not (the kernel
	// skips unchanged streams) but can only save work, never add it.
	if a.FixpointIters != b.FixpointIters {
		t.Fatalf("trial %d %s: AoS ran %d fixpoint iterations, view %d", trial, ctx, a.FixpointIters, b.FixpointIters)
	}
	if b.InterferenceTerms > a.InterferenceTerms {
		t.Fatalf("trial %d %s: view evaluated %d interference terms, AoS %d", trial, ctx, b.InterferenceTerms, a.InterferenceTerms)
	}
	for k := range a.Candidates {
		if a.Candidates[k] != b.Candidates[k] {
			t.Fatalf("trial %d %s: candidate[%d] = %d vs %d", trial, ctx, k, a.Candidates[k], b.Candidates[k])
		}
	}
}

// TestViewExtendLazy pins the amortization property: a search that tests only
// a prefix of the system must hoist only that prefix (plus the candidates'
// own entries), never all P.
func TestViewExtendLazy(t *testing.T) {
	const n = 4096
	now := vtime.Time(5 * vtime.Millisecond)
	states := make([]PartitionState, n)
	for i := range states {
		states[i] = PartitionState{
			Budget:        vtime.Millisecond,
			Period:        20 * vtime.Millisecond,
			NextReplenish: now.Add(10 * vtime.Millisecond),
		}
	}
	// Only partitions 3 and 7 runnable: the search tests h in [3,7) and then
	// idle coverage h in [7,n) — but a failing test at h=8 stops it early.
	states[3].Remaining = vtime.Millisecond
	states[3].Runnable = true
	states[3].Active = true
	states[7].Remaining = vtime.Millisecond
	states[7].Runnable = true
	states[7].Active = true
	// Make h=8 fail: inactive with an already-passed effective deadline is
	// impossible (deadline includes +Period), so overload it instead — huge
	// remaining demand above it cannot fit. Simplest: give h=8 a deadline so
	// tight the base term misses it.
	states[8].Remaining = 9 * vtime.Millisecond
	states[8].Active = true
	states[8].NextReplenish = now.Add(2 * vtime.Millisecond)
	v := viewFromStates(states, now)
	res := v.search(DefaultQuantum, nil, nil)
	if len(res.Candidates) != 2 || res.IdleOK {
		t.Fatalf("unexpected search result: %+v", res)
	}
	if v.hoistN > 16 {
		t.Fatalf("hoistN = %d after a prefix-only search; lazy extension is broken", v.hoistN)
	}
	aos := candidateSearch(states, now, DefaultQuantum, nil, nil)
	compareSearch(t, 0, "lazy", aos, res)
}
