package core

import (
	"testing"

	"timedice/internal/rng"
	"timedice/internal/shard"
	"timedice/internal/vtime"
)

// TestPeekMatchesLookup pins the contract the speculation phase stands on:
// peek returns exactly lookup's hit decision and mutates nothing.
func TestPeekMatchesLookup(t *testing.T) {
	r := rng.New(7)
	now := vtime.Time(9 * vtime.Millisecond)
	const n = 40
	c := &Cache{}
	stamps := make([]uint64, n)
	for i := range stamps {
		stamps[i] = uint64(r.Intn(4))
	}
	c.begin(stamps, n)
	// Populate a mix of entries: valid, expired, stale-stamped, and never
	// stored.
	for h := 0; h < n; h++ {
		switch r.Intn(4) {
		case 0:
			c.store(h, r.Intn(2) == 0, now.Add(vtime.Duration(r.Intn(int(vtime.Millisecond)))))
		case 1:
			c.store(h, true, now.Add(-1)) // expired
		case 2:
			c.entries[h] = verdictEntry{stamp: 0, validUntil: vtime.Infinity} // possibly stale stamp
		}
	}
	for h := 0; h < n; h++ {
		hitsBefore, missesBefore, validBefore := c.hits, c.misses, c.searchValid
		pk := c.peek(h, now)
		if c.hits != hitsBefore || c.misses != missesBefore || c.searchValid != validBefore {
			t.Fatalf("h=%d: peek mutated cache state", h)
		}
		_, hit := c.lookup(h, now)
		if pk != hit {
			t.Fatalf("h=%d: peek = %v, lookup hit = %v", h, pk, hit)
		}
	}
}

// TestParallelSearchMatchesSequential is the decision-phase half of the
// exactness contract: on random snapshots the speculate-then-replay search
// must reproduce the sequential search byte for byte — candidates, idle
// eligibility, test/iteration/term counts, cache hit/miss counters,
// searchValid, and the full memoized entry table — across worker counts,
// shard counts (including shards ≫ n, i.e. empty shards), warm and cold
// caches, and with the cache disabled. Run under -race this is also the
// concurrency test for speculative fixpoints over one shared read-only view.
func TestParallelSearchMatchesSequential(t *testing.T) {
	r := rng.New(0x5eed)
	w := DefaultQuantum
	for _, workers := range []int{2, 4, 8} {
		pool := shard.NewPool(workers)
		for trial := 0; trial < 120; trial++ {
			n := parMinSpan + r.Intn(80)
			now := vtime.Time(11 * vtime.Millisecond)
			states := randomStates(r, n, now)
			v := viewFromStates(states, now)
			shards := []int{2, 4 * workers, n, 3 * n}[trial%4]
			ranges := shard.Split(n, shards)
			stamps := make([]uint64, n)
			for i := range stamps {
				stamps[i] = uint64(r.Intn(3))
			}

			// Cache-less round: every verdict recomputed on both sides.
			seqRes := v.search(w, nil, nil)
			p := &Policy{quantum: w}
			parRes := p.searchParallel(v, pool, ranges, nil, nil)
			compareSearchFull(t, trial, workers, "nocache", seqRes, parRes)

			// Two cached rounds against the same snapshot: the first all
			// misses, the second (same stamps, slightly later instant) a mix
			// of hits, expirations, and fresh stores.
			sc, pc := &Cache{}, &Cache{}
			for round, dt := range []vtime.Duration{0, vtime.Millisecond / 4} {
				at := now.Add(dt)
				v2 := viewFromStates(states, at)
				sc.begin(stamps, n)
				seqRes = v2.search(w, nil, sc)
				pc.begin(stamps, n)
				parRes = p.searchParallel(v2, pool, ranges, nil, pc)
				compareSearchFull(t, trial, workers, "cached", seqRes, parRes)
				if sc.hits != pc.hits || sc.misses != pc.misses || sc.searchValid != pc.searchValid {
					t.Fatalf("workers=%d trial %d round %d: cache counters diverge: seq %d/%d valid %v, par %d/%d valid %v",
						workers, trial, round, sc.hits, sc.misses, sc.searchValid, pc.hits, pc.misses, pc.searchValid)
				}
				for h := 0; h < n; h++ {
					if sc.entries[h] != pc.entries[h] {
						t.Fatalf("workers=%d trial %d round %d: entry %d diverges: seq %+v, par %+v",
							workers, trial, round, h, sc.entries[h], pc.entries[h])
					}
				}
			}
		}
		pool.Close()
	}
}

func compareSearchFull(t *testing.T, trial, workers int, ctx string, seq, par SearchResult) {
	t.Helper()
	if seq.IdleOK != par.IdleOK || seq.Tests != par.Tests ||
		seq.FixpointIters != par.FixpointIters || seq.InterferenceTerms != par.InterferenceTerms {
		t.Fatalf("workers=%d trial %d %s: seq (idle %v, tests %d, iters %d, terms %d) vs par (idle %v, tests %d, iters %d, terms %d)",
			workers, trial, ctx, seq.IdleOK, seq.Tests, seq.FixpointIters, seq.InterferenceTerms,
			par.IdleOK, par.Tests, par.FixpointIters, par.InterferenceTerms)
	}
	if len(seq.Candidates) != len(par.Candidates) {
		t.Fatalf("workers=%d trial %d %s: %d vs %d candidates", workers, trial, ctx, len(seq.Candidates), len(par.Candidates))
	}
	for i := range seq.Candidates {
		if seq.Candidates[i] != par.Candidates[i] {
			t.Fatalf("workers=%d trial %d %s: candidate %d: %d vs %d", workers, trial, ctx, i, seq.Candidates[i], par.Candidates[i])
		}
	}
}
