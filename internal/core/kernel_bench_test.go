package core

import (
	"testing"

	"timedice/internal/rng"
	"timedice/internal/vtime"
)

// denseKernelStates builds the dense decision-kernel fixture: every partition
// active and runnable on a shared 40 ms period with uniform small remaining
// budgets (total utilization ≈ 0.4 — each budget is charged twice, as
// remaining demand and as one in-interval replenishment, so every level-h
// test still passes) and
// staggered early sporadic supply chunks, which pull the interference streams
// inside the busy interval and force the fixpoint through multiple
// iterations. This is the shape where Algorithm 3 is hottest: O(h) charged
// streams per test and a growing interval, i.e. the Table-I all-partitions-
// busy case scaled along the partition axis.
func denseKernelStates(n int, now vtime.Time) []PartitionState {
	period := 40 * vtime.Millisecond
	budget := period * 4 / (10 * vtime.Duration(n))
	if budget <= 0 {
		budget = 1
	}
	states := make([]PartitionState, n)
	for i := range states {
		states[i] = PartitionState{
			Budget:        budget,
			Period:        period,
			Remaining:     budget,
			NextReplenish: now.Add(period),
			NextSupply:    now.Add(vtime.Duration(1+i%8) * vtime.Millisecond),
			Active:        true,
			Runnable:      true,
		}
	}
	return states
}

var benchVerdictSink bool

// BenchmarkDecisionKernel times one full per-partition Algorithm-3 sweep
// (h = 0..P−1, uncached — exactly the fixpoint work of a worst-case decision)
// through the two implementations that the differential suite pins equal:
//
//   - reference: the AoS schedFixpoint, hardware division, full re-summation
//     every iteration;
//   - kernel: the batched stateView fixpoint, reciprocal division, incremental
//     interference maintenance.
//
// CI runs both from the same binary and gates the dense kernel/reference
// ratio (see .github/workflows/ci.yml); the dense fixture is the multi-
// iteration high-interference shape, sparse is the randomized mostly-inactive
// mix where early convergence dominates.
func BenchmarkDecisionKernel(b *testing.B) {
	now := vtime.Time(17 * vtime.Millisecond)
	w := DefaultQuantum
	fixtures := []struct {
		name   string
		states []PartitionState
	}{
		{"dense_P64", denseKernelStates(64, now)},
		{"dense_P1024", denseKernelStates(1024, now)},
		{"sparse_P1024", randomStates(rng.New(0xd1ce), 1024, now)},
	}
	for _, fx := range fixtures {
		n := len(fx.states)
		b.Run(fx.name+"/reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for h := 0; h < n; h++ {
					ok, _, _, _ := schedFixpoint(fx.states, h, now, w)
					benchVerdictSink = benchVerdictSink != ok
				}
			}
		})
		b.Run(fx.name+"/kernel", func(b *testing.B) {
			v := viewFromStates(fx.states, now)
			v.extend(n - 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for h := 0; h < n; h++ {
					ok, _, _, _, _ := v.fixpoint(h, w, v.narr)
					benchVerdictSink = benchVerdictSink != ok
				}
			}
		})
	}
}

// TestDecisionKernelBenchFixture guards the dense fixture's premise: every
// level passes (so the benchmark exercises full fixpoints, not early
// failures) and the runs take multiple iterations (so the incremental
// maintenance actually has work to skip).
func TestDecisionKernelBenchFixture(t *testing.T) {
	now := vtime.Time(17 * vtime.Millisecond)
	states := denseKernelStates(64, now)
	var iters int64
	for h := range states {
		ok, _, _, cost := schedFixpoint(states, h, now, DefaultQuantum)
		if !ok {
			t.Fatalf("dense fixture fails at h=%d; benchmark would measure early exits", h)
		}
		iters += cost.iters
	}
	if iters < int64(len(states))*3/2 {
		t.Fatalf("dense fixture converged in %d total iterations over %d levels; need multi-iteration fixpoints", iters, len(states))
	}
}
