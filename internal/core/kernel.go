package core

// The decision kernel's shared arithmetic. Algorithm 3's busy-interval
// fixpoint charges, for every tracked replenishment stream, the Eq. (1)
// interference term ⌈(cur − o)/T⌉₀ · B, and its validity horizon needs the
// stream's first arrival at or after the converged interval end. Those two
// formulas used to live in four places — the AoS loops in cache.go and the
// SoA loops in batch.go — and a change to one could silently miss the
// others. They now live here, in two forms that are pinned equal:
//
//   - the plain-division reference forms (streamInterference,
//     streamNextArrival), used by the AoS path (schedFixpoint/passHorizon)
//     that ScanStepping and the public SchedulabilityTest run. The reference
//     deliberately keeps hardware division: it is the oracle the
//     divisionless kernel is differentially pinned against, and the
//     corrupted-reciprocal timedice_mutation mutant is caught precisely
//     because this path does not share the reciprocal constants.
//   - the divisionless kernel forms (kernelInit and the incremental advance
//     inside stateView.fixpoint), which compute the identical values through
//     vtime.Reciprocal over the engine's constant SoA arenas.
//
// vtime's recip_test.go proves the two division forms agree on the entire
// int64 domain; TestViewMatchesAoS and the indexed-vs-scan differential pin
// the composed loops.

import "timedice/internal/vtime"

// fixCost tallies the work of one Algorithm-3 busy-interval run:
// fixpoint iterations and interference terms actually evaluated. Iterations
// are path-independent — the incremental kernel replays the reference
// iteration sequence exactly — while term counts depend on the evaluation
// strategy (the reference re-sums every stream per iteration, the kernel
// advances only the streams whose next arrival was crossed).
type fixCost struct {
	iters int64
	terms int64
}

// add folds another run's tallies in.
func (c *fixCost) add(o fixCost) {
	c.iters += o.iters
	c.terms += o.terms
}

// fixpointIterHook, when non-nil, observes every busy-interval iteration of
// the incremental kernel before the convergence check: the level h, the
// current interval length cur, and the incrementally maintained interference
// sum at cur. Tests install it to assert per-iteration equality of the
// running sum against a from-scratch re-summation; production leaves it nil
// (one predictable branch per iteration).
var fixpointIterHook func(h int, cur, sum vtime.Duration)

// streamInterference is the Eq. (1) interference term of one replenishment
// stream anchored at offset o (relative to now) with period T and budget B:
// the number of replenishments strictly inside the busy interval [0, cur),
// times the budget each delivers.
func streamInterference(cur, o, period, budget vtime.Duration) vtime.Duration {
	return vtime.Duration(vtime.CeilDiv(cur-o, period)) * budget
}

// streamNextArrival is the stream's first replenishment at or after cur:
// arrivals land at o + k·T and CeilDiv counts those strictly before cur.
func streamNextArrival(cur, o, period vtime.Duration) vtime.Duration {
	return o + vtime.Duration(vtime.CeilDiv(cur-o, period))*period
}

// kernelInit is the unrolled SoA sweep that opens one kernel fixpoint run:
// for every tracked stream j it derives — divisionlessly — the number of
// replenishments strictly before cur, accumulates the interference sum, and
// records the stream's next arrival at or after cur in narr. It returns the
// sum and the minimum recorded arrival (vtime.Forever when no stream is
// tracked). The four slices must share the same length as off (the caller
// reslices them so the compiler drops the bounds checks); the 4-wide
// unrolling keeps four independent multiply chains in flight per trip, which
// is where the reciprocal's pipelining pays off over a divide-per-term loop.
func kernelInit(off, per, bud []vtime.Duration, rec []vtime.Reciprocal, narr []vtime.Duration, cur vtime.Duration) (sum, minArr vtime.Duration) {
	minArr = vtime.Forever
	j := 0
	for ; j+4 <= len(off); j += 4 {
		c0 := vtime.Duration(rec[j].CeilDiv(cur - off[j]))
		c1 := vtime.Duration(rec[j+1].CeilDiv(cur - off[j+1]))
		c2 := vtime.Duration(rec[j+2].CeilDiv(cur - off[j+2]))
		c3 := vtime.Duration(rec[j+3].CeilDiv(cur - off[j+3]))
		sum += c0*bud[j] + c1*bud[j+1] + c2*bud[j+2] + c3*bud[j+3]
		a0 := off[j] + c0*per[j]
		a1 := off[j+1] + c1*per[j+1]
		a2 := off[j+2] + c2*per[j+2]
		a3 := off[j+3] + c3*per[j+3]
		narr[j], narr[j+1], narr[j+2], narr[j+3] = a0, a1, a2, a3
		if a1 < a0 {
			a0 = a1
		}
		if a3 < a2 {
			a2 = a3
		}
		if a2 < a0 {
			a0 = a2
		}
		if a0 < minArr {
			minArr = a0
		}
	}
	for ; j < len(off); j++ {
		c := vtime.Duration(rec[j].CeilDiv(cur - off[j]))
		sum += c * bud[j]
		a := off[j] + c*per[j]
		narr[j] = a
		if a < minArr {
			minArr = a
		}
	}
	return sum, minArr
}
