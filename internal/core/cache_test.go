package core

import (
	"testing"

	"timedice/internal/engine"
	"timedice/internal/rng"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// twoPartStates builds a small two-partition snapshot at the given instant:
// both active with budget remaining and periodic supply. The values are
// loose enough that the verdict for either partition passes comfortably.
func twoPartStates(now vtime.Time) []PartitionState {
	return []PartitionState{
		{Budget: vtime.MS(2), Period: vtime.MS(10), Remaining: vtime.MS(2),
			NextReplenish: now.Add(vtime.MS(10)), Active: true, Runnable: true},
		{Budget: vtime.MS(3), Period: vtime.MS(20), Remaining: vtime.MS(3),
			NextReplenish: now.Add(vtime.MS(20)), Active: true, Runnable: true},
	}
}

// TestCachePrefixStaleness pins the per-partition invalidation rule: a stamp
// on partition j stales the cached verdict of every h >= j and leaves every
// h < j untouched, because the verdict for h reads only partitions 0..h.
func TestCachePrefixStaleness(t *testing.T) {
	now := vtime.Time(0)
	states := twoPartStates(now)
	var c Cache

	stamps := []uint64{1, 1}
	c.begin(stamps, 2)
	var res SearchResult
	for h := 0; h < 2; h++ {
		testVerdict(states, h, now, 0, &res, &c)
	}
	if res.Tests != 2 {
		t.Fatalf("cold cache ran %d tests, want 2", res.Tests)
	}

	// No new stamps: both verdicts must be served from cache.
	c.begin(stamps, 2)
	for h := 0; h < 2; h++ {
		testVerdict(states, h, now, 0, &res, &c)
	}
	if res.Tests != 2 {
		t.Fatalf("warm cache ran %d tests total, want still 2", res.Tests)
	}

	// Stamp partition 1 only: verdict 0 stays cached, verdict 1 recomputes.
	stamps[1] = 2
	c.begin(stamps, 2)
	for h := 0; h < 2; h++ {
		testVerdict(states, h, now, 0, &res, &c)
	}
	if res.Tests != 3 {
		t.Fatalf("after stamping partition 1: %d tests total, want 3 (only h=1 recomputes)", res.Tests)
	}

	// Stamp partition 0: both verdicts read partition 0, both recompute.
	stamps[0] = 3
	c.begin(stamps, 2)
	for h := 0; h < 2; h++ {
		testVerdict(states, h, now, 0, &res, &c)
	}
	if res.Tests != 5 {
		t.Fatalf("after stamping partition 0: %d tests total, want 5 (both recompute)", res.Tests)
	}
}

// TestCacheHorizonExpiry pins the temporal half of validity: with no stamp
// movement at all, a PASS verdict is still only served while now is within
// its computed validity horizon — after that the fixpoint must be rerun.
func TestCacheHorizonExpiry(t *testing.T) {
	now := vtime.Time(0)
	states := twoPartStates(now)
	var c Cache
	stamps := []uint64{1, 1}

	c.begin(stamps, 2)
	var res SearchResult
	ok := testVerdict(states, 1, now, 0, &res, &c)
	if !ok || res.Tests != 1 {
		t.Fatalf("cold verdict: ok=%v tests=%d, want pass in 1 test", ok, res.Tests)
	}
	horizon := c.entries[1].validUntil
	if horizon <= now || horizon == vtime.Infinity {
		t.Fatalf("PASS validity horizon = %v, want finite instant after now", horizon)
	}

	// One instant before the horizon: still a hit.
	c.begin(stamps, 2)
	testVerdict(states, 1, horizon-1, 0, &res, &c)
	if res.Tests != 1 {
		t.Fatalf("within horizon: %d tests total, want still 1", res.Tests)
	}
	// The horizon instant itself is inclusive.
	c.begin(stamps, 2)
	testVerdict(states, 1, horizon, 0, &res, &c)
	if res.Tests != 1 {
		t.Fatalf("at horizon: %d tests total, want still 1", res.Tests)
	}
	// Past it: recompute.
	c.begin(stamps, 2)
	testVerdict(states, 1, horizon+1, 0, &res, &c)
	if res.Tests != 2 {
		t.Fatalf("past horizon: %d tests total, want 2", res.Tests)
	}
}

// TestCacheFailForever pins the FAIL rule: a failing verdict only becomes
// stale through invalidation, never through the passage of time, because the
// busy interval can only grow as time advances within an epoch.
func TestCacheFailForever(t *testing.T) {
	now := vtime.Time(0)
	states := twoPartStates(now)
	// Make partition 1 hopeless: deadline before its own remaining budget
	// plus the higher-priority interference can complete.
	states[1].NextReplenish = now.Add(vtime.MS(4))

	var c Cache
	stamps := []uint64{1, 1}
	c.begin(stamps, 2)
	var res SearchResult
	if ok := testVerdict(states, 1, now, 0, &res, &c); ok {
		t.Fatal("verdict unexpectedly passed; fixture needs a tighter deadline")
	}
	if got := c.entries[1].validUntil; got != vtime.Infinity {
		t.Fatalf("FAIL validUntil = %v, want Infinity", got)
	}

	// Arbitrarily far in the future, same epoch: still served from cache.
	c.begin(stamps, 2)
	testVerdict(states, 1, now.Add(vtime.MS(1_000_000)), 0, &res, &c)
	if res.Tests != 1 {
		t.Fatalf("far-future FAIL lookup ran %d tests total, want still 1", res.Tests)
	}

	// A stamp anywhere in 0..1 drops it.
	stamps[0] = 2
	c.begin(stamps, 2)
	testVerdict(states, 1, now, 0, &res, &c)
	if res.Tests != 2 {
		t.Fatalf("after stamp: %d tests total, want 2", res.Tests)
	}
}

// TestCacheHitMissAccounting pins the satellite contract behind the
// /metrics hit-ratio gauge: hits and misses partition the lookups exactly
// (Hits + Misses == Lookups after any call sequence), every miss runs
// exactly one Algorithm-3 computation, and HitRatio derives from the same
// two counters.
func TestCacheHitMissAccounting(t *testing.T) {
	now := vtime.Time(0)
	states := twoPartStates(now)
	var c Cache

	stamps := []uint64{1, 1}
	lookups := 0
	var res SearchResult
	consult := func(h int, at vtime.Time) {
		c.begin(stamps, 2)
		testVerdict(states, h, at, 0, &res, &c)
		lookups++
	}

	// Cold, warm, stale, and far-future consultations in one sequence.
	consult(0, now)                          // miss (cold)
	consult(1, now)                          // miss (cold)
	consult(0, now)                          // hit
	consult(1, now)                          // hit
	stamps[1] = 2                            // stale partition 1 only
	consult(0, now)                          // hit (prefix below the stamp)
	consult(1, now)                          // miss (stamped)
	consult(1, now.Add(vtime.MS(1_000_000))) // miss (past validUntil)

	if got := c.Lookups(); got != int64(lookups) {
		t.Fatalf("Lookups() = %d, want the %d consultations made", got, lookups)
	}
	if c.Hits()+c.Misses() != c.Lookups() {
		t.Fatalf("hits %d + misses %d != lookups %d", c.Hits(), c.Misses(), c.Lookups())
	}
	if c.Misses() != res.Tests {
		t.Fatalf("misses %d, but %d Algorithm-3 computations ran — each miss must compute exactly once", c.Misses(), res.Tests)
	}
	wantRatio := float64(c.Hits()) / float64(c.Lookups())
	if got := c.HitRatio(); got != wantRatio {
		t.Fatalf("HitRatio() = %v, want %v", got, wantRatio)
	}

	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 || c.Lookups() != 0 || c.HitRatio() != 0 {
		t.Fatal("Reset must zero hits, misses, and the derived ratio")
	}
}

// TestPolicyStatsCacheMisses pins the policy-level wiring on a real run:
// with the verdict cache enabled, every Algorithm-3 computation the policy
// reports (SchedTests) was a cache miss, so Stats.CacheMisses ==
// Stats.SchedTests and the lookup total is SchedTests + CacheHits.
func TestPolicyStatsCacheMisses(t *testing.T) {
	built, err := workload.TableIBase().Build()
	if err != nil {
		t.Fatal(err)
	}
	pol := NewPolicy(WithRand(rng.New(7)))
	sys, err := engine.New(built.Partitions, pol, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.RunFor(2 * vtime.Second)

	st := pol.Stats()
	if st.Decisions == 0 || st.CacheHits == 0 {
		t.Fatalf("run too quiet to exercise the cache: %+v", st)
	}
	if st.CacheMisses != st.SchedTests {
		t.Fatalf("CacheMisses = %d, SchedTests = %d: with the cache on, every computation must be a miss", st.CacheMisses, st.SchedTests)
	}
	if st.CacheHits+st.CacheMisses == 0 {
		t.Fatal("no lookups recorded")
	}
}
