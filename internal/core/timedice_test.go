package core_test

import (
	"testing"

	"timedice/internal/analysis"
	"timedice/internal/core"
	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/rng"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// state builds a PartitionState for tests: full parameters with r_{i,t}+T_i
// given directly.
func state(b, t int64, remaining int64, nextRepl int64, runnable bool) core.PartitionState {
	return core.PartitionState{
		Budget:        vtime.MS(b),
		Period:        vtime.MS(t),
		Remaining:     vtime.MS(remaining),
		NextReplenish: vtime.Time(vtime.MS(nextRepl)),
		Active:        remaining > 0,
		Runnable:      runnable && remaining > 0,
	}
}

func TestSchedulabilityTestActiveSimple(t *testing.T) {
	// One high-priority partition P0: B=2,T=10, full budget, deadline at 10.
	// An inversion of w at t=0 leaves the busy interval w+2, schedulable iff
	// w+2 <= 10 (no other hp partitions, no future arrivals inside).
	states := []core.PartitionState{state(2, 10, 2, 10, true)}
	if !core.SchedulabilityTest(states, 0, 0, vtime.MS(8), nil) {
		t.Error("w=8: 8+2=10 <= 10 should pass")
	}
	if core.SchedulabilityTest(states, 0, 0, vtime.MS(8)+1, nil) {
		t.Error("w=8+1us: busy interval exceeds the deadline")
	}
}

func TestSchedulabilityTestWithHigherPriorityInterference(t *testing.T) {
	// P0: B=2,T=10 (full, next replenish 10); P1: B=3,T=15 (full, deadline 15).
	// Level-P1 busy interval with w: W0 = w + 3 + 2; P0's replenishment at 10
	// adds 2 more if the interval reaches past 10.
	states := []core.PartitionState{
		state(2, 10, 2, 10, true),
		state(3, 15, 3, 15, true),
	}
	// w = 5: W0 = 10, interval reaches exactly 10 → the arrival at offset 10
	// is outside [t, t+10), converges at 10 <= 15: pass.
	if !core.SchedulabilityTest(states, 1, 0, vtime.MS(5), nil) {
		t.Error("w=5 should pass")
	}
	// w = 6: W0 = 11 > 10 → P0's second budget lands inside: W = 13 <= 15: pass.
	if !core.SchedulabilityTest(states, 1, 0, vtime.MS(6), nil) {
		t.Error("w=6 should pass (13 <= 15)")
	}
	// w = 9: W0 = 14 → with P0 at 10: 16 > 15: fail.
	if core.SchedulabilityTest(states, 1, 0, vtime.MS(9), nil) {
		t.Error("w=9 should fail")
	}
}

func TestSchedulabilityTestInactiveIndirectInterference(t *testing.T) {
	// The Fig. 8 case: P1 is inactive (budget consumed); its next arrival is
	// at its replenishment and must meet the deadline r+2T. A large inversion
	// plus P0's interference can still delay that future execution.
	states := []core.PartitionState{
		state(4, 10, 4, 10, true),  // P0 active, full
		state(8, 12, 0, 12, false), // P1 inactive, arrives at 12, deadline 24
	}
	// w=1: W0 = 1 + 0 + 4 = 5; P0 replenishes at 10 (+4 → 9... iterate:
	// cur=5 → next = 5 + ceil((5-10)/10)*4=0 + P1 self at 12: 0 → 5 ≤ 24 ✓
	if !core.SchedulabilityTest(states, 1, 0, vtime.MS(1), nil) {
		t.Error("small inversion must pass for the inactive partition")
	}
	// Huge inversion: w=9 → W0 = 13; P0 at 10 (+4) → 17; P1 self arrival at
	// 12 (+8) → 25 > 24: fail. (Iterating adds both, order-independent.)
	if core.SchedulabilityTest(states, 1, 0, vtime.MS(9), nil) {
		t.Error("w=9 must fail: the future arrival misses its deadline")
	}
}

func TestSchedulabilityTestCountsTests(t *testing.T) {
	states := []core.PartitionState{state(2, 10, 2, 10, true)}
	var n int64
	core.SchedulabilityTest(states, 0, 0, vtime.Millisecond, &n)
	if n != 1 {
		t.Errorf("test counter = %d", n)
	}
}

func TestCandidateSearchTopAlwaysCandidate(t *testing.T) {
	// Even with zero slack, the highest-priority active partition is a
	// candidate (it causes no inversion).
	states := []core.PartitionState{
		state(10, 10, 10, 10, true), // 100% utilization, no slack
		state(5, 50, 5, 50, true),
	}
	res := core.CandidateSearch(states, 0, vtime.Millisecond, nil)
	if len(res.Candidates) != 1 || res.Candidates[0] != 0 {
		t.Fatalf("candidates = %v, want [0]", res.Candidates)
	}
	if res.IdleOK {
		t.Error("idle cannot be allowed when P0 has zero slack")
	}
}

func TestCandidateSearchAllPassWithSlack(t *testing.T) {
	// Lightly loaded: everything including idle passes.
	states := []core.PartitionState{
		state(1, 10, 1, 10, true),
		state(1, 20, 1, 20, true),
		state(1, 40, 1, 40, true),
	}
	res := core.CandidateSearch(states, 0, vtime.Millisecond, nil)
	if len(res.Candidates) != 3 {
		t.Fatalf("candidates = %v, want all three", res.Candidates)
	}
	if !res.IdleOK {
		t.Error("idle should pass in a lightly loaded system")
	}
}

func TestCandidateSearchStopsAtFirstFailure(t *testing.T) {
	// P0 has zero slack; P1 and P2 are runnable but any inversion breaks P0.
	states := []core.PartitionState{
		state(10, 10, 10, 10, true),
		state(1, 100, 1, 100, true),
		state(1, 200, 1, 200, true),
	}
	res := core.CandidateSearch(states, 0, vtime.Millisecond, nil)
	if len(res.Candidates) != 1 {
		t.Fatalf("candidates = %v, want only the top partition", res.Candidates)
	}
	// The failed test for P0 must short-circuit further tests: exactly 1 test.
	if res.Tests != 1 {
		t.Errorf("tests = %d, want 1 (short-circuit)", res.Tests)
	}
}

func TestCandidateSearchSkipsAboveTopActive(t *testing.T) {
	// hp(Π_(1)) is never tested (Algorithm 2's incremental rule): inactive
	// partitions ABOVE the top active partition do not block candidacy of
	// the top active partition, and are not tested for lower candidates
	// either, per hp(Π_(i)) − hp(Π_(i−1)).
	states := []core.PartitionState{
		state(9, 10, 0, 10, false), // inactive, nearly saturating
		state(2, 20, 2, 20, true),
		state(2, 40, 2, 40, true),
	}
	res := core.CandidateSearch(states, 0, vtime.Millisecond, nil)
	if len(res.Candidates) < 1 || res.Candidates[0] != 1 {
		t.Fatalf("candidates = %v, want first candidate = partition 1", res.Candidates)
	}
}

func TestCandidateSearchNoRunnable(t *testing.T) {
	states := []core.PartitionState{state(2, 10, 0, 10, false)}
	res := core.CandidateSearch(states, 0, vtime.Millisecond, nil)
	if len(res.Candidates) != 0 || res.IdleOK {
		t.Errorf("empty system: %+v", res)
	}
}

func TestSelectUniformCoversAllOptions(t *testing.T) {
	states := []core.PartitionState{
		state(1, 10, 1, 10, true),
		state(1, 20, 1, 20, true),
	}
	res := core.CandidateSearch(states, 0, vtime.Millisecond, nil)
	if !res.IdleOK {
		t.Fatal("precondition: idle allowed")
	}
	r := rng.New(1)
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		counts[core.Select(states, res, 0, core.SelectUniform, r, nil)]++
	}
	for _, opt := range []int{0, 1, core.IdleChoice} {
		if counts[opt] < 700 {
			t.Errorf("option %d drawn only %d/3000 under uniform", opt, counts[opt])
		}
	}
}

func TestSelectWeightedFollowsRemainingUtilization(t *testing.T) {
	// P0: u = 1/10; P1: u = 8/10. Weighted selection should strongly favor
	// P1, and idle gets 1 - 0.9 = 0.1.
	states := []core.PartitionState{
		state(1, 10, 1, 10, true),
		state(8, 10, 8, 10, true),
	}
	res := core.SearchResult{Candidates: []int{0, 1}, IdleOK: true}
	r := rng.New(2)
	counts := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[core.Select(states, res, 0, core.SelectWeighted, r, nil)]++
	}
	f0 := float64(counts[0]) / n
	f1 := float64(counts[1]) / n
	fi := float64(counts[core.IdleChoice]) / n
	if f1 < 0.75 || f1 > 0.85 {
		t.Errorf("P1 frequency %v, want ≈0.8", f1)
	}
	if f0 < 0.07 || f0 > 0.13 {
		t.Errorf("P0 frequency %v, want ≈0.1", f0)
	}
	if fi < 0.07 || fi > 0.13 {
		t.Errorf("idle frequency %v, want ≈0.1", fi)
	}
}

func TestPolicyNameAndQuantum(t *testing.T) {
	w := core.NewPolicy()
	if w.Name() != "TimeDiceW" || w.Quantum() != core.DefaultQuantum {
		t.Error("defaults wrong")
	}
	u := core.NewPolicy(core.WithSelection(core.SelectUniform), core.WithQuantum(vtime.MS(2)))
	if u.Name() != "TimeDiceU" || u.Quantum() != vtime.MS(2) {
		t.Error("options not applied")
	}
}

// budgetGuaranteeSystem builds a system where every partition's single task
// demands exactly the full budget every period, so any failure to deliver
// B_i within a period is observable as a shortfall.
func budgetGuaranteeSystem(t *testing.T, spec model.SystemSpec, policy engine.GlobalPolicy, seed uint64) *engine.System {
	t.Helper()
	greedy := spec
	greedy.Partitions = make([]model.PartitionSpec, len(spec.Partitions))
	copy(greedy.Partitions, spec.Partitions)
	for i := range greedy.Partitions {
		p := &greedy.Partitions[i]
		p.Tasks = []model.TaskSpec{{
			Name:   "greedy",
			Period: p.Period,
			WCET:   p.Budget,
		}}
	}
	built, err := greedy.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, policy, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSchedulabilityPreservation is the paper's central guarantee: partitions
// schedulable under fixed priority remain schedulable under TimeDice — every
// partition receives its full budget B_i in every replenishment period T_i.
func TestSchedulabilityPreservation(t *testing.T) {
	specs := []model.SystemSpec{workload.TableIBase(), workload.TableILight(), workload.ThreePartition()}
	for _, spec := range specs {
		if !analysis.SystemSchedulable(spec) {
			t.Fatalf("precondition: %q must be schedulable", spec.Name)
		}
		for _, mode := range []core.SelectionMode{core.SelectWeighted, core.SelectUniform} {
			for seed := uint64(1); seed <= 3; seed++ {
				pol := core.NewPolicy(core.WithSelection(mode))
				sys := budgetGuaranteeSystem(t, spec, pol, seed)
				verifyBudgetPerPeriod(t, sys, spec, vtime.Time(3*vtime.Second))
			}
		}
	}
}

// verifyBudgetPerPeriod runs sys until horizon and asserts each partition
// executed exactly B_i in every complete window [kT_i, (k+1)T_i).
func verifyBudgetPerPeriod(t *testing.T, sys *engine.System, spec model.SystemSpec, horizon vtime.Time) {
	t.Helper()
	n := len(spec.Partitions)
	got := make([]map[int64]vtime.Duration, n)
	for i := range got {
		got[i] = make(map[int64]vtime.Duration)
	}
	sys.TraceFn = func(seg engine.Segment) {
		if seg.Partition < 0 {
			return
		}
		T := spec.Partitions[seg.Partition].Period
		for t0 := seg.Start; t0 < seg.End; {
			k := int64(t0) / int64(T)
			winEnd := vtime.Time((k + 1) * int64(T))
			chunk := seg.End.Min(winEnd).Sub(t0)
			got[seg.Partition][k] += chunk
			t0 = t0.Add(chunk)
		}
	}
	sys.Run(horizon)
	for i, p := range spec.Partitions {
		periods := int64(horizon) / int64(p.Period)
		for k := int64(0); k < periods; k++ {
			if got[i][k] != p.Budget {
				t.Fatalf("%s (%s): period %d received %v, want full budget %v",
					spec.Name, p.Name, k, got[i][k], p.Budget)
			}
		}
	}
}

// TestTimeDiceActuallyRandomizes ensures the policy is not degenerate: it
// does select non-top candidates and sometimes idles the CPU.
func TestTimeDiceActuallyRandomizes(t *testing.T) {
	spec := workload.TableILight()
	pol := core.NewPolicy()
	sys := budgetGuaranteeSystem(t, spec, pol, 9)
	sys.Run(vtime.Time(2 * vtime.Second))
	st := pol.Stats()
	if st.Decisions == 0 {
		t.Fatal("no decisions")
	}
	if st.InversionsWon == 0 {
		t.Error("TimeDice never inverted priorities — not randomizing")
	}
	if st.IdleSelected == 0 {
		t.Error("TimeDice never idled the CPU in a lightly loaded system")
	}
	if st.SchedTests == 0 {
		t.Error("no schedulability tests recorded")
	}
	if avg := float64(st.CandidateSum) / float64(st.Decisions); avg < 1.2 {
		t.Errorf("average candidate-list size %.2f; expected >1 under light load", avg)
	}
}

// TestTimeDiceDiffersAcrossSeeds checks the schedule depends on the seed.
func TestTimeDiceDiffersAcrossSeeds(t *testing.T) {
	spec := workload.ThreePartition()
	traces := make([]string, 2)
	for i := range traces {
		pol := core.NewPolicy()
		sys := budgetGuaranteeSystem(t, spec, pol, uint64(100+i))
		var sig []byte
		sys.TraceFn = func(seg engine.Segment) {
			sig = append(sig, byte('0'+seg.Partition+1))
		}
		sys.Run(vtime.Time(vtime.MS(500)))
		traces[i] = string(sig)
	}
	if traces[0] == traces[1] {
		t.Error("different seeds produced identical randomized schedules")
	}
}

// TestSearchComplexityLinear verifies the O(|Π|) bound: per decision, at most
// one schedulability test per partition.
func TestSearchComplexityLinear(t *testing.T) {
	spec := workload.Scale(workload.TableIBase(), 2) // 10 partitions
	pol := core.NewPolicy()
	sys := budgetGuaranteeSystem(t, spec, pol, 3)
	sys.Run(vtime.Time(vtime.Second))
	st := pol.Stats()
	if st.Decisions == 0 {
		t.Fatal("no decisions")
	}
	maxTests := st.Decisions * int64(len(spec.Partitions))
	if st.SchedTests > maxTests {
		t.Errorf("schedulability tests %d exceed |Π|·decisions = %d", st.SchedTests, maxTests)
	}
}

func TestSnapshotMatchesServers(t *testing.T) {
	spec := workload.ThreePartition()
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, core.NewPolicy(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	states := core.Snapshot(sys, nil)
	if len(states) != 3 {
		t.Fatalf("snapshot size %d", len(states))
	}
	for i, st := range states {
		srv := sys.Partitions[i].Server
		if st.Budget != srv.Budget() || st.Period != srv.Period() ||
			st.Remaining != srv.Remaining() || st.NextReplenish != srv.Deadline() {
			t.Errorf("state %d mismatch: %+v", i, st)
		}
	}
}
