//go:build !timedice_mutation

package core

// cacheIgnoresInvalidation is the mutation-testing hook for the verdict
// cache: normal builds honour the per-partition state stamps, so any
// discontinuous change (release, completion, depletion, replenishment,
// sporadic chunk) recomputes the affected verdicts. Building with
// -tags timedice_mutation makes lookup skip the stamp comparison (see
// mutation_on.go), an injected staleness bug that the cached-vs-uncached
// differential digest test must detect end-to-end.
const cacheIgnoresInvalidation = false
