package core

// This file is the policy half of sharded stepping: the parallel candidate
// search. It parallelizes the one decision phase whose work decomposes by
// partition index — the batched Algorithm-3 fixpoints — while leaving every
// observable byte of the decision identical to the sequential search,
// including the counters (Tests, FixpointIters, InterferenceTerms, cache
// hits/misses) and the verdict-cache contents.
//
// The scheme is speculate-then-replay:
//
//  1. Speculate (parallel): after cache.begin and one upfront extend(n−1),
//     the arena view is frozen read-only for the duration of the dispatch.
//     Workers sweep the shard ranges intersected with [c0, n) — c0 the first
//     ready partition, below which the search never tests — and for every h
//     whose cached verdict would miss (cache.peek, non-mutating) run the
//     fixpoint with per-worker arrival scratch, recording the verdict, its
//     validity horizon, and its work tallies into per-h slots. Writes are
//     disjoint by construction (each h belongs to exactly one shard, each
//     shard to exactly one worker).
//
//  2. Replay (sequential): rerun the exact control flow of stateView.search,
//     with testVerdict consuming recorded results instead of computing.
//     Lookups, misses, stores, searchValid accounting, and early exits all
//     happen here, in sequential order — so the cache state and every
//     counter land byte-identical to the sequential run, and speculative
//     work past the sequential stopping point is simply discarded.
//
// Why peek agrees with the replayed lookup: the search tests each h at most
// once, in strictly increasing order, so every store during replay lands at
// an index the replay has already consumed; the entry peek read during
// speculation is exactly the entry the replay's lookup reads. (prefix is
// fixed at begin.)
//
// The RNG draw (selectFrom) stays outside all of this, sequential and
// unchanged: parallelism ends at the join barrier, before the first random
// number is consumed.

import (
	"timedice/internal/shard"
	"timedice/internal/vtime"
)

// parMinSpan is the minimum test span n−c0 dispatched to the pool: below
// it the two barrier crossings cost more than the handful of fixpoints they
// would parallelize. Kept small so correctness coverage (the differential
// suite) exercises the parallel path even on modest-P scenarios.
const parMinSpan = 4

// parState is the Policy-owned scratch of the parallel search. The per-h
// record slices are indexed by partition; narr is per-worker fixpoint
// scratch. Everything is reused across decisions — steady state allocates
// nothing.
type parState struct {
	// Published to the workers by Pool.Run's release barrier; read-only
	// until the join barrier.
	v      *stateView
	cache  *Cache
	w      vtime.Duration
	c0     int
	pool   *shard.Pool
	ranges []shard.Range

	// Per-h speculation records (disjoint writes across workers).
	done  []bool
	ok    []bool
	valid []vtime.Time
	iters []int64
	terms []int64

	// Per-worker arrival scratch for concurrent fixpoints.
	narr [][]vtime.Duration

	fn func(worker int) // prebuilt dispatch closure (specWorker)
}

// prepare sizes the scratch for n partitions and w workers and publishes
// this decision's inputs.
func (ps *parState) prepare(v *stateView, cache *Cache, w vtime.Duration, c0 int, pool *shard.Pool, ranges []shard.Range) {
	n := v.n()
	if cap(ps.done) < n {
		ps.done = make([]bool, n)
		ps.ok = make([]bool, n)
		ps.valid = make([]vtime.Time, n)
		ps.iters = make([]int64, n)
		ps.terms = make([]int64, n)
	}
	ps.done = ps.done[:n]
	ps.ok = ps.ok[:n]
	ps.valid = ps.valid[:n]
	ps.iters = ps.iters[:n]
	ps.terms = ps.terms[:n]
	for h := c0; h < n; h++ {
		ps.done[h] = false
	}
	if len(ps.narr) < pool.Workers() || (len(ps.narr) > 0 && cap(ps.narr[0]) < n) {
		ps.narr = make([][]vtime.Duration, pool.Workers())
		for i := range ps.narr {
			ps.narr[i] = make([]vtime.Duration, n)
		}
	}
	if ps.fn == nil {
		ps.fn = ps.specWorker
	}
	ps.v, ps.cache, ps.w, ps.c0, ps.pool, ps.ranges = v, cache, w, c0, pool, ranges
}

// specWorker is the speculation phase body for one worker: sweep the owned
// shards (worker w owns shards w, w+W, …, same assignment as the engine's
// due phase) intersected with [c0, n), computing every verdict the replay
// could need.
func (ps *parState) specWorker(worker int) {
	wn := ps.pool.Workers()
	narr := ps.narr[worker]
	v, cache, now, w := ps.v, ps.cache, ps.v.now, ps.w
	for k := worker; k < len(ps.ranges); k += wn {
		r := ps.ranges[k]
		lo := r.Lo
		if lo < ps.c0 {
			lo = ps.c0
		}
		for h := lo; h < r.Hi; h++ {
			if cache != nil && cache.peek(h, now) {
				continue // replay's lookup will hit; nothing to compute
			}
			ok, cur, deadline, minArr, cost := v.fixpoint(h, w, narr)
			vu := vtime.Infinity // FAIL holds for the rest of the epoch
			if ok {
				vu = now.Add(horizonOf(cur, deadline, minArr))
			}
			ps.ok[h] = ok
			ps.valid[h] = vu
			ps.iters[h] = cost.iters
			ps.terms[h] = cost.terms
			ps.done[h] = true
		}
	}
}

// testVerdict is the replay-phase counterpart of stateView.testVerdict:
// identical cache interaction and counter accounting, with the fixpoint
// replaced by the recorded speculation result.
func (ps *parState) testVerdict(h int, res *SearchResult) bool {
	v, cache := ps.v, ps.cache
	if cache != nil {
		if ok, hit := cache.lookup(h, v.now); hit {
			return ok
		}
	}
	res.Tests++
	if !ps.done[h] {
		// Defensive inline fallback. Unreachable while peek and lookup agree
		// (they read the same entry — see the file comment); kept so a future
		// cache change degrades to correct-but-slower instead of wrong.
		v.extend(h)
		ok, cur, deadline, minArr, cost := v.fixpoint(h, ps.w, v.narr)
		res.FixpointIters += cost.iters
		res.InterferenceTerms += cost.terms
		if cache != nil {
			vu := vtime.Infinity
			if ok {
				vu = v.now.Add(horizonOf(cur, deadline, minArr))
			}
			cache.store(h, ok, vu)
		}
		return ok
	}
	res.FixpointIters += ps.iters[h]
	res.InterferenceTerms += ps.terms[h]
	if cache != nil {
		cache.store(h, ps.ok[h], ps.valid[h])
	}
	return ps.ok[h]
}

// searchParallel is stateView.search with the fixpoints precomputed across
// the pool. It falls back to the sequential search when the span is too
// small to amortize a dispatch, when the pool is effectively sequential, or
// when the per-iteration test hook is armed (the hook observes iteration
// order, which speculation would scramble).
func (p *Policy) searchParallel(v *stateView, pool *shard.Pool, ranges []shard.Range, scratch []int, cache *Cache) SearchResult {
	c0 := v.ready.First()
	n := v.n()
	if c0 < 0 || n-c0 < parMinSpan || pool.Workers() < 2 || fixpointIterHook != nil {
		return v.search(p.quantum, scratch, cache)
	}
	p.par.prepare(v, cache, p.quantum, c0, pool, ranges)
	v.extend(n - 1) // freeze the hoisted terms before the workers read them
	pool.Run(p.par.fn)
	return p.replaySearch(scratch)
}

// replaySearch mirrors stateView.search line for line — same first-candidate
// handling, same incremental coverage between candidates, same idle tail —
// with parState.testVerdict consuming the speculation records. Any change to
// search must be mirrored here; the equivalence test in parallel_test.go and
// the full-counter shard differential pin the two against each other.
func (p *Policy) replaySearch(scratch []int) SearchResult {
	ps := &p.par
	v := ps.v
	res := SearchResult{Candidates: scratch[:0]}
	examined := 0
	first := true
	failed := false
	v.ready.ForEachSet(func(i int) bool {
		if first {
			res.Candidates = append(res.Candidates, i)
			if examined < i {
				examined = i
			}
			first = false
			return true
		}
		for h := examined; h < i; h++ {
			if !ps.testVerdict(h, &res) {
				failed = true
				return false
			}
			examined = h + 1
		}
		res.Candidates = append(res.Candidates, i)
		if examined < i {
			examined = i
		}
		return true
	})
	if failed || first {
		return res
	}
	idleOK := true
	for h := examined; h < v.n(); h++ {
		if !ps.testVerdict(h, &res) {
			idleOK = false
			break
		}
		examined = h + 1
	}
	res.IdleOK = idleOK
	return res
}
