package core_test

import (
	"testing"

	"timedice/internal/core"
	"timedice/internal/rng"
	"timedice/internal/vtime"
)

// randomStates generates a priority-ordered vector of plausible partition
// states at a decision instant `now`: each partition has T ∈ [10,100] ms,
// B ≤ T·u with Σu bounded, remaining ∈ [0,B], and a next replenishment in
// (now, now+T].
func randomStates(r *rng.Rand, n int, now vtime.Time) []core.PartitionState {
	states := make([]core.PartitionState, n)
	for i := range states {
		T := vtime.MS(10 + r.Int63n(91))
		B := vtime.Duration(1 + r.Int63n(int64(T)/4)) // ≤ 25% each
		rem := vtime.Duration(r.Int63n(int64(B) + 1))
		// Next replenishment strictly in the future, at most T away.
		next := now.Add(vtime.Duration(1 + r.Int63n(int64(T))))
		active := rem > 0
		states[i] = core.PartitionState{
			Budget:        B,
			Period:        T,
			Remaining:     rem,
			NextReplenish: next,
			Active:        active,
			Runnable:      active && r.Bool(0.7),
		}
	}
	return states
}

// TestPropertySchedulabilityMonotoneInW: if a partition passes the test for
// inversion length w, it passes for any shorter inversion.
func TestPropertySchedulabilityMonotoneInW(t *testing.T) {
	r := rng.New(501)
	now := vtime.Time(vtime.MS(1000))
	for trial := 0; trial < 2000; trial++ {
		states := randomStates(r, 1+r.Intn(8), now)
		h := r.Intn(len(states))
		w := vtime.Duration(1 + r.Int63n(int64(vtime.MS(5))))
		if core.SchedulabilityTest(states, h, now, w, nil) {
			smaller := vtime.Duration(1 + r.Int63n(int64(w)))
			if !core.SchedulabilityTest(states, h, now, smaller, nil) {
				t.Fatalf("trial %d: pass at w=%v but fail at smaller w=%v (states=%+v, h=%d)",
					trial, w, smaller, states, h)
			}
		}
	}
}

// TestPropertySchedulabilityAntitoneInLoad: adding remaining budget to a
// higher-priority partition can only make the level-h test harder.
func TestPropertySchedulabilityAntitoneInLoad(t *testing.T) {
	r := rng.New(502)
	now := vtime.Time(vtime.MS(1000))
	for trial := 0; trial < 2000; trial++ {
		states := randomStates(r, 2+r.Intn(7), now)
		h := 1 + r.Intn(len(states)-1)
		w := core.DefaultQuantum
		pass := core.SchedulabilityTest(states, h, now, w, nil)
		if pass {
			continue
		}
		// Reduce every higher-priority partition's remaining budget to zero;
		// the test must not get worse (failure may flip to success, never
		// the reverse — verified by re-adding).
		relaxed := append([]core.PartitionState(nil), states...)
		for j := 0; j < h; j++ {
			relaxed[j].Remaining = 0
		}
		// If even the relaxed system fails, the original must fail too
		// (trivially true); the meaningful direction: if original passes,
		// the relaxed must pass. Check it from the relaxed side:
		if !core.SchedulabilityTest(relaxed, h, now, w, nil) {
			// then original (with ≥ interference) must fail as well.
			if pass {
				t.Fatalf("trial %d: monotonicity violated", trial)
			}
		}
	}
}

// TestPropertyCandidateListStructure: the candidate list is always a set of
// runnable indices in increasing (priority) order, starting with the
// highest-priority runnable partition, and contiguous over the runnable
// subsequence (the search stops at the first failure).
func TestPropertyCandidateListStructure(t *testing.T) {
	r := rng.New(503)
	now := vtime.Time(vtime.MS(1000))
	for trial := 0; trial < 3000; trial++ {
		states := randomStates(r, 1+r.Intn(10), now)
		res := core.CandidateSearch(states, now, core.DefaultQuantum, nil)

		var runnable []int
		for i, s := range states {
			if s.Runnable {
				runnable = append(runnable, i)
			}
		}
		if len(runnable) == 0 {
			if len(res.Candidates) != 0 || res.IdleOK {
				t.Fatalf("trial %d: no runnable but candidates=%v idle=%v", trial, res.Candidates, res.IdleOK)
			}
			continue
		}
		if len(res.Candidates) == 0 {
			t.Fatalf("trial %d: runnable exists but no candidates", trial)
		}
		if res.Candidates[0] != runnable[0] {
			t.Fatalf("trial %d: first candidate %d != top runnable %d", trial, res.Candidates[0], runnable[0])
		}
		// Candidates must be exactly the first k runnable indices.
		for i, c := range res.Candidates {
			if c != runnable[i] {
				t.Fatalf("trial %d: candidates %v are not a prefix of runnable %v", trial, res.Candidates, runnable)
			}
		}
		// Idle is only allowed when every runnable partition is a candidate.
		if res.IdleOK && len(res.Candidates) != len(runnable) {
			t.Fatalf("trial %d: idle allowed with non-candidates remaining", trial)
		}
		// Test count bounded by one per partition.
		if res.Tests > int64(len(states)) {
			t.Fatalf("trial %d: %d tests for %d partitions", trial, res.Tests, len(states))
		}
	}
}

// TestPropertySelectReturnsValidOption: Select always returns either a
// candidate index or IdleChoice (only when idle is allowed).
func TestPropertySelectReturnsValidOption(t *testing.T) {
	r := rng.New(504)
	now := vtime.Time(vtime.MS(1000))
	for trial := 0; trial < 3000; trial++ {
		states := randomStates(r, 1+r.Intn(10), now)
		res := core.CandidateSearch(states, now, core.DefaultQuantum, nil)
		if len(res.Candidates) == 0 {
			continue
		}
		for _, mode := range []core.SelectionMode{core.SelectUniform, core.SelectWeighted} {
			choice := core.Select(states, res, now, mode, r, nil)
			if choice == core.IdleChoice {
				if !res.IdleOK {
					t.Fatalf("trial %d: idle chosen but not allowed", trial)
				}
				continue
			}
			found := false
			for _, c := range res.Candidates {
				if c == choice {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: choice %d not in candidates %v", trial, choice, res.Candidates)
			}
		}
	}
}

// TestPropertyTopCandidateUnaffectedByW: the highest-priority runnable
// partition is a candidate regardless of the inversion length.
func TestPropertyTopCandidateUnaffectedByW(t *testing.T) {
	r := rng.New(505)
	now := vtime.Time(vtime.MS(1000))
	for trial := 0; trial < 1000; trial++ {
		states := randomStates(r, 1+r.Intn(10), now)
		anyRunnable := false
		for _, s := range states {
			if s.Runnable {
				anyRunnable = true
				break
			}
		}
		if !anyRunnable {
			continue
		}
		for _, w := range []vtime.Duration{vtime.Microsecond, vtime.MS(1), vtime.MS(100)} {
			res := core.CandidateSearch(states, now, w, nil)
			if len(res.Candidates) == 0 {
				t.Fatalf("trial %d: top runnable lost candidacy at w=%v", trial, w)
			}
		}
	}
}

// TestPropertyWeightedSelectionFrequencies: over many draws from a fixed
// 2-candidate state, the empirical selection frequencies approach the
// remaining-utilization weights (the lottery-scheduling semantics of §IV-A2).
func TestPropertyWeightedSelectionFrequencies(t *testing.T) {
	now := vtime.Time(0)
	states := []core.PartitionState{
		{Budget: vtime.MS(2), Period: vtime.MS(10), Remaining: vtime.MS(2),
			NextReplenish: vtime.Time(vtime.MS(10)), Active: true, Runnable: true},
		{Budget: vtime.MS(6), Period: vtime.MS(20), Remaining: vtime.MS(6),
			NextReplenish: vtime.Time(vtime.MS(20)), Active: true, Runnable: true},
	}
	res := core.SearchResult{Candidates: []int{0, 1}, IdleOK: true}
	// u0 = 0.2, u1 = 0.3, idle = 0.5.
	r := rng.New(506)
	counts := map[int]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[core.Select(states, res, now, core.SelectWeighted, r, nil)]++
	}
	check := func(opt int, want float64) {
		got := float64(counts[opt]) / n
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("option %d frequency %.4f, want ≈%.2f", opt, got, want)
		}
	}
	check(0, 0.2)
	check(1, 0.3)
	check(core.IdleChoice, 0.5)
}
