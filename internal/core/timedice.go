// Package core implements the TIMEDICE algorithm, the paper's primary
// contribution (§IV): schedulability-preserving randomization of a
// priority-based partition schedule by bounded random priority inversion.
//
// At every scheduling decision point the algorithm
//
//  1. (candidate search, Algorithms 1–2) walks the active partitions in
//     decreasing priority order and admits Π_(i) to the candidate list iff a
//     priority inversion of one quantum by Π_(i) would still let every
//     higher-priority partition — including currently inactive ones, which
//     can suffer indirect interference (Fig. 8) — meet its budget deadline,
//     as established by the level-Π_h busy-interval test (Algorithm 3,
//     Eqs. 1–3); and
//  2. (random selection) picks one candidate, either uniformly (TimeDiceU)
//     or weighted by remaining utilization u_{i,t} = B_i(t)/(d_{i,t}−t)
//     (TimeDiceW, justified by Theorem 1). CPU idling is itself a candidate
//     when even the idle "partition" passes the candidacy test.
//
// The search performs at most one schedulability test per partition per
// decision, so a decision costs O(|Π|) tests (Fig. 9's incremental rule).
//
// The package exposes both a pure, allocation-light functional core operating
// on PartitionState snapshots (unit- and property-testable in isolation) and
// a Policy adapter satisfying engine.GlobalPolicy.
package core

import (
	"fmt"

	"timedice/internal/engine"
	"timedice/internal/partition"
	"timedice/internal/rng"
	"timedice/internal/vtime"
)

// DefaultQuantum is the paper's MIN_INV_SIZE: the length of one random
// priority inversion (1 ms in the LITMUS^RT implementation, §V-A).
const DefaultQuantum = vtime.Millisecond

// PartitionState is the per-partition snapshot the candidate search reads at
// a decision point. States are indexed in decreasing priority order over ALL
// partitions of the system, active or not.
type PartitionState struct {
	Budget    vtime.Duration // B_i
	Period    vtime.Duration // T_i
	Remaining vtime.Duration // B_i(t); 0 when inactive
	// NextReplenish is r_{i,t} + T_i: the next replenishment instant, which
	// is also the current budget deadline d_{i,t}.
	NextReplenish vtime.Time
	// NextSupply is the earliest future instant at which the server can gain
	// budget. Periodic servers (polling, deferrable) replenish exactly at
	// NextReplenish, but a sporadic server's queued chunks may land before
	// the period boundary; interference terms must use this earlier instant
	// or the test under-counts preemption and grants unsafe inversions. The
	// zero value means "equal to NextReplenish".
	NextSupply vtime.Time
	// Active is the paper's activity predicate: non-zero remaining budget.
	Active bool
	// Runnable marks partitions eligible for selection (active with ready
	// work). Only runnable partitions enter the candidate list; all
	// partitions participate in schedulability tests.
	Runnable bool
}

// supplyTime resolves the earliest-future-replenishment instant, defaulting
// to NextReplenish for states that never set NextSupply.
func (s *PartitionState) supplyTime() vtime.Time {
	if s.NextSupply != 0 {
		return s.NextSupply
	}
	return s.NextReplenish
}

// SchedulabilityTest is Algorithm 3: it reports whether partition h (an index
// into states) would still meet its deadline if a lower-priority partition
// executed for w starting at now.
//
// For an active Π_h the busy interval starts with the inversion (a), the
// remaining budgets of hp(Π_h) (b) and of Π_h itself (d), and is extended by
// the future replenishments of hp(Π_h) that arrive inside it (c), per
// Eqs. (1)–(2); Π_h is schedulable iff the interval ends by its next
// replenishment (Eq. 3). For an inactive Π_h the test guards the upcoming
// execution (deadline r_{h,t}+2T_h) and folds Π_h's own future arrivals into
// the interference, per the indirect-interference extension.
//
// testsRun, when non-nil, is incremented once (for overhead accounting).
//
// The busy-interval iteration lives in schedFixpoint (cache.go), shared with
// the verdict-caching front end testVerdict.
func SchedulabilityTest(states []PartitionState, h int, now vtime.Time, w vtime.Duration, testsRun *int64) bool {
	if testsRun != nil {
		*testsRun++
	}
	ok, _, _, _ := schedFixpoint(states, h, now, w)
	return ok
}

// SearchResult is the outcome of one candidate search.
type SearchResult struct {
	// Candidates are indices into the states slice, in decreasing priority
	// order. Empty iff no partition is runnable.
	Candidates []int
	// IdleOK reports whether idling the CPU passed the candidacy test and is
	// a selectable option.
	IdleOK bool
	// Tests is the number of schedulability tests performed.
	Tests int64
	// FixpointIters and InterferenceTerms tally the Algorithm-3 work behind
	// those tests: busy-interval iterations run, and interference terms
	// evaluated. Iteration counts are path-independent — the batched decision
	// kernel replays the reference's iteration sequence exactly — while term
	// counts depend on the evaluation strategy (the reference re-sums every
	// charged stream per iteration; the kernel advances only the streams
	// whose next arrival was crossed).
	FixpointIters     int64
	InterferenceTerms int64
}

// CandidateSearch is Step 1 of Algorithm 1. states covers every partition in
// decreasing priority order; the search walks the runnable ones, admitting
// each while every not-yet-examined higher-priority partition passes the
// schedulability test, and stopping at the first failure (a failure for
// Π_(i) implies failure for all lower-priority candidates). If every
// partition passes, CPU idling becomes an additional candidate.
//
// The scratch slice, when non-nil, is reused for the candidate list to avoid
// per-decision allocation.
func CandidateSearch(states []PartitionState, now vtime.Time, w vtime.Duration, scratch []int) SearchResult {
	return candidateSearch(states, now, w, scratch, nil)
}

// candidateSearch is CandidateSearch with an optional verdict cache: every
// schedulability test goes through testVerdict, which serves still-valid
// memoized verdicts without recomputation. With a nil cache the search is the
// uncached reference used by the differential digest pin.
func candidateSearch(states []PartitionState, now vtime.Time, w vtime.Duration, scratch []int, cache *Cache) SearchResult {
	res := SearchResult{Candidates: scratch[:0]}
	examined := 0 // states[0:examined] have passed a schedulability test
	first := true
	for i := range states {
		if !states[i].Runnable {
			continue
		}
		if first {
			// Π_(1): its execution causes no priority inversion, so it is
			// always a candidate — but the partitions above it still need to
			// be covered before lower candidates are examined.
			res.Candidates = append(res.Candidates, i)
			if examined < i {
				examined = i
			}
			first = false
			continue
		}
		ok := true
		for h := examined; h < i; h++ {
			if !testVerdict(states, h, now, w, &res, cache) {
				ok = false
				break
			}
			examined = h + 1
		}
		if !ok {
			return res
		}
		res.Candidates = append(res.Candidates, i)
		if examined < i {
			examined = i
		}
	}
	if first {
		// Nothing runnable: the CPU necessarily idles; no candidates.
		return res
	}
	// Idle candidacy: the imaginary Π_IDLE has the lowest priority, so every
	// remaining partition must pass.
	idleOK := true
	for h := examined; h < len(states); h++ {
		if !testVerdict(states, h, now, w, &res, cache) {
			idleOK = false
			break
		}
		examined = h + 1
	}
	res.IdleOK = idleOK
	return res
}

// SelectionMode chooses the Step-2 randomization of Algorithm 1.
type SelectionMode int

const (
	// SelectWeighted assigns each candidate a lottery weight proportional to
	// its remaining utilization u_{i,t}, and the idle option the leftover
	// 1−Σu (TimeDiceW, the paper's default).
	SelectWeighted SelectionMode = iota + 1
	// SelectUniform gives every candidate (and the idle option) an equal
	// chance (TimeDiceU).
	SelectUniform
)

// String returns the mode's name.
func (m SelectionMode) String() string {
	switch m {
	case SelectWeighted:
		return "weighted"
	case SelectUniform:
		return "uniform"
	default:
		return fmt.Sprintf("SelectionMode(%d)", int(m))
	}
}

// IdleChoice is the sentinel Select returns when the idle option wins.
const IdleChoice = -1

// Select is Step 2 of Algorithm 1: it picks one element of res.Candidates
// (returning its states index) or IdleChoice. weights is a reusable scratch
// slice. It panics if res has neither candidates nor idle (the caller idles
// without selection in that case).
func Select(states []PartitionState, res SearchResult, now vtime.Time, mode SelectionMode, rnd *rng.Rand, weights []float64) int {
	n := len(res.Candidates)
	options := n
	if res.IdleOK {
		options++
	}
	if options == 0 {
		panic("core: Select with no options")
	}
	if mode == SelectUniform {
		k := rnd.Intn(options)
		if k == n {
			return IdleChoice
		}
		return res.Candidates[k]
	}
	// Weighted: u_{i,t} = B_i(t)/(d_{i,t}-t); idle gets 1-Σu (clamped).
	weights = weights[:0]
	var sum float64
	for _, i := range res.Candidates {
		den := states[i].NextReplenish.Sub(now)
		var u float64
		if den > 0 {
			u = float64(states[i].Remaining) / float64(den)
		}
		weights = append(weights, u)
		sum += u
	}
	if res.IdleOK {
		idleW := 1 - sum
		if idleW < 0 {
			idleW = 0
		}
		weights = append(weights, idleW)
	}
	k := rnd.WeightedIndex(weights)
	if k == n {
		return IdleChoice
	}
	return res.Candidates[k]
}

// Stats aggregates per-policy counters for the overhead evaluation
// (Table IV, Fig. 17).
type Stats struct {
	Decisions     int64
	SchedTests    int64 // Algorithm-3 computations actually performed
	CacheHits     int64 // test invocations served by the verdict cache
	CacheMisses   int64 // cache consultations that computed fresh (hits+misses = lookups)
	SearchReuses  int64 // decisions whose whole candidate search was reused
	CandidateSum  int64 // Σ candidate-list sizes, for the mean
	IdleEligible  int64 // decisions where idling was a candidate
	IdleSelected  int64
	InversionsWon int64 // decisions won by a non-top-priority candidate
}

// Policy adapts the TimeDice algorithm to the simulation engine.
type Policy struct {
	quantum vtime.Duration
	mode    SelectionMode
	rnd     *rng.Rand

	stats   Stats
	states  []PartitionState
	view    stateView // batched arena view (batch.go), used under indexed stepping
	scratch []int
	weights []float64
	cache   *Cache   // nil when the verdict cache is disabled
	par     parState // parallel-search scratch (parallel.go), used when the engine is sharded

	// Decision-level search reuse: while no partition has been stamped since
	// the last full search (searchStamp) and now is within the minimum
	// validity horizon of every verdict that search consulted (searchValid),
	// the candidate list in scratch and searchIdle are exactly what a fresh
	// search would produce, so Pick skips the snapshot and search and goes
	// straight to selection on live weights.
	searchInit  bool
	searchIdle  bool
	searchStamp uint64
	searchValid vtime.Time
	searchLen   int // partition count the stored search covered

	lastCandidates int64
	lastTests      int64
}

var (
	_ engine.GlobalPolicy     = (*Policy)(nil)
	_ engine.DecisionDetailer = (*Policy)(nil)
	_ engine.PolicyForker     = (*Policy)(nil)
)

// Option configures a Policy.
type Option func(*Policy)

// WithQuantum overrides MIN_INV_SIZE (default 1 ms).
func WithQuantum(q vtime.Duration) Option {
	return func(p *Policy) { p.quantum = q }
}

// WithSelection sets the Step-2 randomization mode (default SelectWeighted).
func WithSelection(m SelectionMode) Option {
	return func(p *Policy) { p.mode = m }
}

// WithRand gives the policy its own random stream; by default it uses the
// engine's system stream.
func WithRand(r *rng.Rand) Option {
	return func(p *Policy) { p.rnd = r }
}

// WithVerdictCache enables or disables the incremental verdict cache
// (enabled by default). Disabling it recomputes every schedulability test
// from scratch — the reference behaviour the differential digest pin
// compares against; the schedules are identical either way.
func WithVerdictCache(on bool) Option {
	return func(p *Policy) {
		if on {
			if p.cache == nil {
				p.cache = &Cache{}
			}
		} else {
			p.cache = nil
		}
	}
}

// NewPolicy builds a TimeDice policy (TimeDiceW unless configured otherwise).
func NewPolicy(opts ...Option) *Policy {
	p := &Policy{quantum: DefaultQuantum, mode: SelectWeighted, cache: &Cache{}}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements engine.GlobalPolicy.
func (p *Policy) Name() string {
	if p.mode == SelectUniform {
		return "TimeDiceU"
	}
	return "TimeDiceW"
}

// Quantum implements engine.GlobalPolicy.
func (p *Policy) Quantum() vtime.Duration { return p.quantum }

// Stats returns the accumulated counters.
func (p *Policy) Stats() Stats {
	st := p.stats
	if p.cache != nil {
		st.CacheHits = p.cache.Hits()
		st.CacheMisses = p.cache.Misses()
	}
	return st
}

// DecisionDetail implements engine.DecisionDetailer: the candidate-set size
// and schedulability tests of the most recent Pick.
func (p *Policy) DecisionDetail() (candidates, tests int64) {
	return p.lastCandidates, p.lastTests
}

// ResetStats zeroes the counters.
func (p *Policy) ResetStats() {
	p.stats = Stats{}
	if p.cache != nil {
		p.cache.hits = 0
		p.cache.misses = 0
	}
}

// Reset restores the policy to its initial state — counters zeroed, every
// cached verdict dropped, scratch capacity retained — so a reused policy is
// indistinguishable from a freshly constructed one. The engine's
// System.Reset calls it automatically; the policy's random stream (WithRand)
// is owned by the caller and must be reseeded separately.
func (p *Policy) Reset() {
	p.ResetStats()
	p.lastCandidates, p.lastTests = 0, 0
	p.searchInit = false
	p.searchIdle = false
	p.searchStamp = 0
	p.searchValid = 0
	p.searchLen = 0
	if p.cache != nil {
		p.cache.Reset()
	}
}

// ForkPolicy implements engine.PolicyForker: an independent policy with the
// same configuration (quantum, selection mode, cache enablement) and fresh
// decision state, plus a cloned position of the private random stream when
// WithRand gave the policy one. Starting the fork with an empty verdict cache
// and no reusable search is digest-exact — both are pinned equivalent to the
// uncached/unreused paths — so a fork schedules identically to its parent.
func (p *Policy) ForkPolicy() engine.GlobalPolicy {
	np := &Policy{quantum: p.quantum, mode: p.mode}
	if p.cache != nil {
		np.cache = &Cache{}
	}
	if p.rnd != nil {
		np.rnd = p.rnd.Clone()
	}
	return np
}

// Snapshot fills states (reusing its backing array) with the current view of
// the system's partitions in priority order.
func Snapshot(sys *engine.System, states []PartitionState) []PartitionState {
	states = states[:0]
	for _, part := range sys.Partitions {
		srv := part.Server
		states = append(states, PartitionState{
			Budget:        srv.Budget(),
			Period:        srv.Period(),
			Remaining:     srv.Remaining(),
			NextReplenish: srv.Deadline(),
			NextSupply:    srv.NextReplenish(),
			Active:        srv.Active(),
			Runnable:      part.Runnable(),
		})
	}
	return states
}

// searchReusable reports whether the previous decision's candidate search is
// still exact at now, and returns the current maximum state stamp either way.
// Under the timedice_mutation tag the stamp comparison is skipped, mirroring
// the entry-level mutation (see mutation_on.go).
func (p *Policy) searchReusable(sys *engine.System, now vtime.Time) (bool, uint64) {
	// Epoch is by construction the maximum of the per-partition stamps, so
	// the staleness check is O(1) instead of an O(P) scan.
	m := sys.Epoch()
	if p.cache == nil || !p.searchInit || p.searchLen != len(sys.Partitions) {
		return false, m
	}
	return (cacheIgnoresInvalidation || m == p.searchStamp) && now <= p.searchValid, m
}

// refreshStates updates the policy's persistent snapshot in place, writing
// only the fields that change between decisions; Budget and Period are
// constants filled by the initial full Snapshot.
func (p *Policy) refreshStates(sys *engine.System) {
	parts := sys.Partitions
	if len(p.states) != len(parts) {
		p.states = Snapshot(sys, p.states[:0])
		return
	}
	for i, part := range parts {
		srv := part.Server
		st := &p.states[i]
		rem := srv.Remaining()
		st.Remaining = rem
		st.NextReplenish = srv.Deadline()
		st.NextSupply = srv.NextReplenish()
		st.Active = rem > 0
		st.Runnable = rem > 0 && part.Local.HasReady()
	}
}

// Pick implements engine.GlobalPolicy: one full TimeDice decision. Under
// indexed stepping it runs the batched arena-view path (batch.go); under
// ScanStepping it runs the AoS reference below, whose snapshot re-reads every
// live server — the differential digest suite pins the two paths (and hence
// the engine's arena publication discipline) to byte-identical schedules.
func (p *Policy) Pick(sys *engine.System, now vtime.Time) *partition.Partition {
	rnd := p.rnd
	if rnd == nil {
		rnd = sys.Rand
	}
	p.stats.Decisions++
	if !sys.ScanStepping {
		return p.pickView(sys, now, rnd)
	}

	var res SearchResult
	if reuse, maxStamp := p.searchReusable(sys, now); reuse {
		// Refresh only what selection reads — the draining budget and the
		// deadline gap of each candidate; verdicts and runnable flags are
		// unchanged by construction.
		for _, i := range p.scratch {
			srv := sys.Partitions[i].Server
			p.states[i].Remaining = srv.Remaining()
			p.states[i].NextReplenish = srv.Deadline()
		}
		res = SearchResult{Candidates: p.scratch, IdleOK: p.searchIdle}
		p.stats.SearchReuses++
	} else {
		p.refreshStates(sys)
		if p.cache != nil {
			p.cache.begin(sys.StateStamps(), len(p.states))
		}
		res = candidateSearch(p.states, now, p.quantum, p.scratch, p.cache)
		p.scratch = res.Candidates
		if p.cache != nil {
			p.searchInit = true
			p.searchIdle = res.IdleOK
			p.searchStamp = maxStamp
			p.searchValid = p.cache.searchValid
			p.searchLen = len(p.states)
		}
	}
	p.stats.SchedTests += res.Tests
	sys.Counters.FixpointIters += res.FixpointIters
	sys.Counters.InterferenceTerms += res.InterferenceTerms
	p.stats.CandidateSum += int64(len(res.Candidates))
	p.lastCandidates, p.lastTests = int64(len(res.Candidates)), res.Tests
	if res.IdleOK {
		p.stats.IdleEligible++
	}
	if len(res.Candidates) == 0 {
		return nil
	}
	// Select trims weights to length zero and appends at most one entry per
	// candidate plus the idle option; holding capacity for that here keeps
	// the whole decision allocation-free.
	if cap(p.weights) < len(p.states)+1 {
		p.weights = make([]float64, 0, len(p.states)+1)
	}
	choice := Select(p.states, res, now, p.mode, rnd, p.weights)
	if choice == IdleChoice {
		p.stats.IdleSelected++
		return nil
	}
	if choice != res.Candidates[0] {
		p.stats.InversionsWon++
	}
	return sys.Partitions[choice]
}
