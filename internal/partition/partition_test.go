package partition

import (
	"testing"

	"timedice/internal/server"
	"timedice/internal/task"
	"timedice/internal/vtime"
)

func newPart(t *testing.T) *Partition {
	t.Helper()
	p, err := New("P", 1, server.MustNew(vtime.MS(2), vtime.MS(10), server.Polling),
		[]*task.Task{{Name: "t", Period: vtime.MS(20), WCET: vtime.MS(1), Offset: vtime.MS(5)}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 1, nil, nil); err == nil {
		t.Error("nil server accepted")
	}
	if _, err := New("x", 1, server.MustNew(1, 2, server.Polling),
		[]*task.Task{{Name: "bad", Period: 0, WCET: 1}}); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestActiveVsRunnable(t *testing.T) {
	p := newPart(t)
	// Budget full but the task arrives only at 5ms: active yet not runnable.
	p.Local.ReleaseUpTo(0)
	if !p.Active() {
		t.Error("fresh partition must be active")
	}
	if p.Runnable() {
		t.Error("no ready job yet: must not be runnable")
	}
	p.Local.ReleaseUpTo(vtime.Time(vtime.MS(5)))
	if !p.Runnable() {
		t.Error("job released: must be runnable")
	}
	p.Server.Consume(vtime.Time(vtime.MS(5)), vtime.MS(2))
	if p.Runnable() || p.Active() {
		t.Error("budget exhausted: inactive and not runnable")
	}
}

func TestHigherPriorityThan(t *testing.T) {
	a, _ := New("a", 1, server.MustNew(1, 2, server.Polling), nil)
	b, _ := New("b", 2, server.MustNew(1, 2, server.Polling), nil)
	if !a.HigherPriorityThan(b) || b.HigherPriorityThan(a) {
		t.Error("priority comparison broken")
	}
}

func TestNextLocalEvent(t *testing.T) {
	p := newPart(t)
	p.Local.ReleaseUpTo(0)
	// Next events: replenishment at 10ms, arrival at 5ms → 5ms.
	if got := p.NextLocalEvent(); got != vtime.Time(vtime.MS(5)) {
		t.Errorf("next event %v, want 5ms", got)
	}
	p.Local.ReleaseUpTo(vtime.Time(vtime.MS(5)))
	if got := p.NextLocalEvent(); got != vtime.Time(vtime.MS(10)) {
		t.Errorf("next event %v, want 10ms (replenishment)", got)
	}
}

func TestReset(t *testing.T) {
	p := newPart(t)
	p.Local.ReleaseUpTo(vtime.Time(vtime.MS(5)))
	p.Server.Consume(vtime.Time(vtime.MS(5)), vtime.MS(1))
	p.Reset()
	if p.Server.Remaining() != vtime.MS(2) || p.Local.HasReady() {
		t.Error("Reset incomplete")
	}
}
