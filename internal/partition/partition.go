// Package partition ties together a priority, a budget server, and a local
// task scheduler into the real-time partition of the paper's system model
// (§II): Π_i = (Pri, B_i, T_i, {τ_{i,1}, ..., τ_{i,|Π_i|}}).
package partition

import (
	"fmt"

	"timedice/internal/server"
	"timedice/internal/task"
	"timedice/internal/vtime"
)

// Partition is one time partition. Partitions are compared by Priority;
// a numerically smaller Priority is a higher priority, matching the paper's
// Pri(Π_i) > Pri(Π_{i+1}) ordering when partitions are declared in index
// order. Priorities must be unique within a system.
type Partition struct {
	Name     string
	Priority int
	Server   *server.Server
	Local    *task.Scheduler

	// Index is the partition's position in its System's priority-ordered
	// slice; the engine assigns it.
	Index int
}

// New builds a partition. tasks are in decreasing local-priority order.
func New(name string, priority int, srv *server.Server, tasks []*task.Task) (*Partition, error) {
	if srv == nil {
		return nil, fmt.Errorf("partition %q: nil server", name)
	}
	local, err := task.NewScheduler(tasks)
	if err != nil {
		return nil, fmt.Errorf("partition %q: %w", name, err)
	}
	return &Partition{Name: name, Priority: priority, Server: srv, Local: local}, nil
}

// Active reports whether the partition has non-zero remaining budget
// (the paper's Definition of "active").
func (p *Partition) Active() bool { return p.Server.Active() }

// Runnable reports whether the partition could make progress if granted the
// CPU right now: it is active and has a ready job. Under the polling server
// the two coincide (idle budget is discarded immediately).
func (p *Partition) Runnable() bool { return p.Server.Active() && p.Local.HasReady() }

// HigherPriorityThan reports whether p has strictly higher priority than o.
func (p *Partition) HigherPriorityThan(o *Partition) bool { return p.Priority < o.Priority }

// SetObservers installs the budget and job lifecycle observers on the
// partition's server and local scheduler in one step. The engine wires the
// telemetry plumbing through here so a partition stays the single assembly
// point for its server + scheduler pair.
func (p *Partition) SetObservers(to task.Observer, so server.Observer) {
	p.Local.Observer = to
	p.Server.SetObserver(so)
}

// Reset restores server and local-scheduler state for a fresh run.
func (p *Partition) Reset() {
	p.Server.Reset()
	p.Local.Reset()
}

// Clone returns an independent deep copy of the partition — cloned server and
// local scheduler, shared static task descriptors — with no observers
// installed. The engine's Fork reinstalls its own observers on the copy.
func (p *Partition) Clone() *Partition {
	return &Partition{
		Name:     p.Name,
		Priority: p.Priority,
		Server:   p.Server.Clone(),
		Local:    p.Local.Clone(),
		Index:    p.Index,
	}
}

// NextLocalEvent returns the earliest future instant at which this partition
// generates a scheduling event on its own: a budget replenishment or a task
// arrival.
func (p *Partition) NextLocalEvent() vtime.Time {
	next := p.Server.NextReplenish()
	if a := p.Local.NextArrival(); a < next {
		next = a
	}
	return next
}

// HotState is the flat snapshot of the scheduling-hot scalars of one
// partition: everything the engine mirrors into its struct-of-arrays arenas
// after an event delivery or an execution slice. Gathering them in one call
// keeps the pointer chase per touched partition to a single visit of the
// server and local-scheduler structs.
type HotState struct {
	Remaining vtime.Duration // B_i(t)
	Deadline  vtime.Time     // d_{i,t} = r_{i,t} + T_i
	Supply    vtime.Time     // earliest future budget gain (sporadic chunks may precede Deadline)
	NextEvent vtime.Time     // NextLocalEvent: min(Supply, next task arrival)
	Runnable  bool           // active ∧ ready work
}

// Hot assembles the HotState snapshot. It is equivalent to calling Remaining/
// Deadline/NextReplenish/NextLocalEvent/Runnable individually, with one pass
// over the local scheduler's task states instead of two.
func (p *Partition) Hot() HotState {
	rem := p.Server.Remaining()
	supply := p.Server.NextReplenish()
	ready, arrival := p.Local.ReadyAndNext()
	next := supply
	if arrival < next {
		next = arrival
	}
	return HotState{
		Remaining: rem,
		Deadline:  p.Server.Deadline(),
		Supply:    supply,
		NextEvent: next,
		Runnable:  rem > 0 && ready,
	}
}
