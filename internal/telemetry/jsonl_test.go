package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"timedice/internal/vtime"
)

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Time: 0, Kind: KindTaskArrival, Partition: 0, Task: "t1,1", Job: 0},
		{Time: 100, Kind: KindDecision, Partition: 2, Aux: 3},
		{Time: 100, Kind: KindInversionOpen, Partition: 2},
		{Time: 100, Kind: KindTaskStart, Partition: 2, Task: "t3,1", Job: 5, Aux: 1},
		{Time: 1200, Kind: KindTaskPreempt, Partition: 2, Task: "t3,1", Job: 5},
		{Time: 1200, Kind: KindSlice, Partition: 2, Dur: 1100},
		{Time: 1200, Kind: KindDecision, Partition: -1, Aux: -1},
		{Time: 1300, Kind: KindInversionClose, Partition: -1, Dur: 200},
		{Time: 1300, Kind: KindSlice, Partition: -1, Dur: 100},
		{Time: 2000, Kind: KindBudgetReplenish, Partition: 1, Dur: 8000, Aux: 8000},
		{Time: 2500, Kind: KindBudgetDeplete, Partition: 1, Dur: 5500, Aux: 1},
		{Time: 9000, Kind: KindTaskComplete, Partition: 2, Task: "t3,1", Job: 5, Dur: 8900},
		{Time: 9000, Kind: KindDeadlineMiss, Partition: 2, Task: "t3,1", Job: 5, Dur: 400},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, e := range in {
		sink.Event(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, wrote %d", len(out), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(out[i], in[i]) {
			t.Errorf("event %d: wrote %+v, read %+v", i, in[i], out[i])
		}
	}
}

func TestJSONLWireFormat(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Event(Event{Time: vtime.Time(12 * vtime.Millisecond), Kind: KindTaskComplete,
		Partition: 2, Task: "t3,1", Job: 5, Dur: 1500})
	sink.Event(Event{Time: 42, Kind: KindDecision, Partition: -1})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"t":12000,"k":"complete","p":2,"task":"t3,1","job":5,"dur":1500}` + "\n" +
		`{"t":42,"k":"decision"}` + "\n"
	if buf.String() != want {
		t.Errorf("wire format drifted:\ngot  %q\nwant %q", buf.String(), want)
	}
}

func TestJSONLReadErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"t":1,"k":"nope"}` + "\n")); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("{broken\n")); err == nil {
		t.Error("malformed line accepted")
	}
	// Blank lines are fine.
	evs, err := ReadJSONL(strings.NewReader("\n" + `{"t":1,"k":"slice","dur":5}` + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Partition != -1 || evs[0].Dur != 5 {
		t.Errorf("got %+v", evs)
	}
}

// errWriter fails after n bytes, to exercise the sticky-error path.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errFull
	}
	w.n -= len(p)
	return len(p), nil
}

var errFull = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestJSONLStickyError(t *testing.T) {
	sink := NewJSONLSink(&errWriter{n: 8})
	for i := 0; i < 10000; i++ {
		sink.Event(Event{Time: vtime.Time(i), Kind: KindSlice, Partition: -1, Dur: 1})
	}
	if sink.Flush() == nil || sink.Err() == nil {
		t.Error("write error was swallowed")
	}
}
