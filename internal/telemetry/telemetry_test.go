package telemetry

import (
	"math"
	"strings"
	"testing"

	"timedice/internal/vtime"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(1); k < kindEnd; k++ {
		s := k.String()
		if strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no wire name", k)
		}
		if got := KindFromString(s); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", s, got, k)
		}
	}
	if got := KindFromString("nope"); got != 0 {
		t.Errorf("KindFromString(nope) = %v, want 0", got)
	}
	if s := Kind(200).String(); s != "Kind(200)" {
		t.Errorf("out-of-range kind string = %q", s)
	}
}

func TestRecorderMultiFilter(t *testing.T) {
	rec := NewRecorder()
	var misses int
	watch := NewFilter(Func(func(Event) { misses++ }), KindDeadlineMiss)
	sink := Multi{rec, watch}

	sink.Event(Event{Time: 1, Kind: KindTaskArrival, Partition: 0})
	sink.Event(Event{Time: 2, Kind: KindDeadlineMiss, Partition: 1})
	sink.Event(Event{Time: 3, Kind: KindSlice, Partition: -1})

	if rec.Len() != 3 {
		t.Errorf("recorder saw %d events, want 3", rec.Len())
	}
	if misses != 1 {
		t.Errorf("filter passed %d deadline misses, want 1", misses)
	}
	if rec.Events()[1].Kind != KindDeadlineMiss {
		t.Errorf("event order not preserved: %+v", rec.Events())
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Errorf("recorder not empty after Reset")
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(1.5)
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Errorf("gauge = %v, want 0.25", g.Value())
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // 10,20,...,100
	for _, v := range []float64{5, 15, 25, 35, 250} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 330 {
		t.Errorf("sum = %v", h.Sum())
	}
	if h.Mean() != 66 {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Min() != 5 || h.Max() != 250 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Quantiles are clamped to the observed range even for samples in the
	// overflow bucket.
	if q := h.Quantile(1); q != 250 {
		t.Errorf("p100 = %v, want 250", q)
	}
	if q := h.Quantile(0); q != 5 {
		t.Errorf("p0 = %v, want 5", q)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// 1000 uniform samples in [0, 1000) against 100 linear buckets: the
	// interpolated quantiles must land within one bucket width of the truth.
	h := NewHistogram(LinearBuckets(10, 10, 100))
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i))
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		want := q * 1000
		got := h.Quantile(q)
		if math.Abs(got-want) > 10 {
			t.Errorf("p%v = %v, want %v ± 10", q*100, got, want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram([]float64{1})
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1.5)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("reset did not clear")
	}
	h.Observe(3)
	if h.Count() != 1 || h.Max() != 3 {
		t.Error("histogram unusable after reset")
	}
}

func TestBucketBuilders(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Errorf("exp[%d] = %v, want %v", i, exp[i], want)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	for i, want := range []float64{0, 5, 10} {
		if lin[i] != want {
			t.Errorf("lin[%d] = %v, want %v", i, lin[i], want)
		}
	}
	if len(LatencyBuckets()) != 56 || len(ResponseBuckets()) != 48 {
		t.Error("default bucket layouts changed size")
	}
	mustPanic(t, func() { NewHistogram(nil) })
	mustPanic(t, func() { NewHistogram([]float64{2, 1}) })
	mustPanic(t, func() { ExponentialBuckets(0, 2, 3) })
	mustPanic(t, func() { LinearBuckets(0, 0, 3) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestRegistryDumps(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.total").Add(7)
	r.Gauge("b.util").Set(0.5)
	h := r.Histogram("c.lat", []float64{1, 10, 100})
	h.Observe(5)
	h.Observe(50)
	// Get-or-create: same instance on second lookup, bounds ignored.
	if r.Histogram("c.lat", []float64{9}) != h {
		t.Error("histogram lookup did not return the existing metric")
	}
	if r.Counter("a.total").Value() != 7 {
		t.Error("counter lookup did not return the existing metric")
	}

	var text strings.Builder
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(text.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("text dump has %d lines, want 3:\n%s", len(lines), text.String())
	}
	// Registration order, not alphabetical.
	for i, prefix := range []string{"counter   a.total", "gauge     b.util", "histogram c.lat"} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}

	var csv strings.Builder
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	csvLines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if csvLines[0] != "type,name,value,count,sum,mean,min,p25,p50,p75,p90,p99,max" {
		t.Errorf("csv header = %q", csvLines[0])
	}
	if len(csvLines) != 4 {
		t.Fatalf("csv dump has %d lines, want 4", len(csvLines))
	}
	if !strings.HasPrefix(csvLines[1], "counter,a.total,7,") {
		t.Errorf("csv counter line = %q", csvLines[1])
	}
	if !strings.HasPrefix(csvLines[3], "histogram,c.lat,,2,55.000,27.500,5.000,") {
		t.Errorf("csv histogram line = %q", csvLines[3])
	}
}

func TestCollectorCounts(t *testing.T) {
	coll := NewCollector(nil, []string{"A", "B"})
	ms := vtime.Millisecond
	for _, ev := range []Event{
		{Time: 0, Kind: KindDecision, Partition: 0, Aux: 2},
		{Time: 0, Kind: KindTaskArrival, Partition: 0, Task: "t", Job: 0},
		{Time: 0, Kind: KindSlice, Partition: 0, Dur: 2 * ms},
		{Time: vtime.Time(2 * ms), Kind: KindDecision, Partition: 1, Aux: 1},
		{Time: vtime.Time(2 * ms), Kind: KindInversionOpen, Partition: 1},
		{Time: vtime.Time(2 * ms), Kind: KindTaskComplete, Partition: 0, Task: "t", Job: 0, Dur: 2 * ms},
		{Time: vtime.Time(2 * ms), Kind: KindDeadlineMiss, Partition: 0, Task: "t", Job: 0, Dur: ms},
		{Time: vtime.Time(2 * ms), Kind: KindSlice, Partition: 1, Dur: ms},
		{Time: vtime.Time(3 * ms), Kind: KindInversionClose, Dur: ms},
		{Time: vtime.Time(3 * ms), Kind: KindDecision, Partition: -1},
		{Time: vtime.Time(3 * ms), Kind: KindSlice, Partition: -1, Dur: ms},
		{Time: vtime.Time(4 * ms), Kind: KindBudgetDeplete, Partition: 1, Aux: 1, Dur: ms},
		{Time: vtime.Time(4 * ms), Kind: KindBudgetReplenish, Partition: 1, Dur: 5 * ms, Aux: 5000},
	} {
		coll.Event(ev)
	}
	reg := coll.Registry()
	checks := []struct {
		name string
		want int64
	}{
		{"decisions.total", 3},
		{"decisions.idle", 1},
		{"switches.total", 3}, // 0 → 1 → idle, first decision counts too
		{"inversion.windows", 1},
		{"busy_us.total", 3000},
		{"idle_us.total", 1000},
		{"deadline_miss.total", 1},
		{"arrivals.A", 1},
		{"completions.A", 1},
		{"deadline_miss.A", 1},
		{"busy_us.A", 2000},
		{"busy_us.B", 1000},
		{"budget.depletions.B", 1},
		{"budget.replenish_us.B", 5000},
	}
	for _, c := range checks {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if got := reg.Histogram("inversion.len_us", ResponseBuckets()).Count(); got != 1 {
		t.Errorf("inversion.len_us count = %d, want 1", got)
	}
	if got := reg.Histogram("response_us.A", ResponseBuckets()).Count(); got != 1 {
		t.Errorf("response_us.A count = %d, want 1", got)
	}
	// B's slice runs [2ms, 3ms): cumulative 1 ms busy over the first 3 ms.
	if got := reg.Gauge("util.B").Value(); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("util.B = %v, want 1/3", got)
	}
}
