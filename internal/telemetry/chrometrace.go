package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// Chrome trace-event export: serializes a recorded event stream into the
// JSON trace-event format understood by Perfetto (https://ui.perfetto.dev)
// and chrome://tracing. The layout is
//
//	pid 1 "schedule"
//	  tid 1..n      one track per partition, in priority order: execution
//	                slices ("X" events), with deadline misses and budget
//	                depletions as instant markers on the owning track
//	  tid n+1       "policy": one instant per global scheduling decision
//	  tid n+2       "inversions": one slice per priority-inversion window
//
// Timestamps are virtual microseconds, which is exactly the trace-event
// unit, so the Perfetto timeline reads in simulated time. Output is written
// with a fixed key order so a deterministic run exports byte-stable JSON.

// WriteChromeTrace writes events as a Chrome trace-event JSON object.
// partitions are the partition names in system priority order; they label
// the per-partition tracks.
func WriteChromeTrace(w io.Writer, events []Event, partitions []string) error {
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw}
	cw.raw(`{"displayTimeUnit":"ms","traceEvents":[`)

	// Track metadata.
	cw.meta("process_name", 0, "schedule")
	for i, name := range partitions {
		cw.meta("thread_name", i+1, name)
	}
	policyTID := len(partitions) + 1
	invTID := len(partitions) + 2
	cw.meta("thread_name", policyTID, "policy")
	cw.meta("thread_name", invTID, "inversions")

	var invOpen bool
	var invStart, lastTime int64
	for _, e := range events {
		lastTime = int64(e.Time)
		switch e.Kind {
		case KindSlice:
			if e.Partition < 0 || e.Dur <= 0 {
				continue
			}
			cw.slice(partitionName(partitions, e.Partition), "partition",
				e.Partition+1, int64(e.Time), int64(e.Dur))
		case KindDecision:
			name := "pick:idle"
			if e.Partition >= 0 {
				name = "pick:" + partitionName(partitions, e.Partition)
			}
			cw.instant(name, "decision", policyTID, int64(e.Time))
		case KindInversionOpen:
			invOpen, invStart = true, int64(e.Time)
		case KindInversionClose:
			if invOpen {
				cw.slice("inversion", "inversion", invTID, invStart, int64(e.Time)-invStart)
				invOpen = false
			}
		case KindDeadlineMiss:
			if e.Partition >= 0 {
				cw.instant("miss:"+e.Task, "deadline", e.Partition+1, int64(e.Time))
			}
		case KindBudgetDeplete:
			if e.Partition >= 0 {
				cw.instant("budget-depleted", "budget", e.Partition+1, int64(e.Time))
			}
		}
	}
	// An inversion window still open when the event stream ends is rendered
	// up to the last event instead of dropped. Whole-run exports never hit
	// this (FlushTelemetry closes open windows at the horizon); bounded
	// flight-recorder windows cut off mid-inversion do, and the state
	// leading into a failure is exactly what a post-mortem trace is for.
	if invOpen && lastTime >= invStart {
		cw.slice("inversion (open at stream end)", "inversion", invTID, invStart, lastTime-invStart)
	}
	cw.raw("\n]}\n")
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

func partitionName(names []string, i int) string {
	if i >= 0 && i < len(names) {
		return names[i]
	}
	return "p" + strconv.Itoa(i)
}

// chromeWriter emits trace-event entries with a fixed key order and sticky
// error handling.
type chromeWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (c *chromeWriter) raw(s string) {
	if c.err == nil {
		_, c.err = c.w.WriteString(s)
	}
}

func (c *chromeWriter) sep() {
	if c.first {
		c.raw(",")
	}
	c.raw("\n")
	c.first = true
}

func (c *chromeWriter) meta(kind string, tid int, name string) {
	c.sep()
	c.raw(`{"ph":"M","pid":1,"tid":` + strconv.Itoa(tid) +
		`,"name":"` + kind + `","args":{"name":` + strconv.Quote(name) + `}}`)
}

func (c *chromeWriter) slice(name, cat string, tid int, ts, dur int64) {
	c.sep()
	c.raw(`{"ph":"X","pid":1,"tid":` + strconv.Itoa(tid) +
		`,"ts":` + strconv.FormatInt(ts, 10) +
		`,"dur":` + strconv.FormatInt(dur, 10) +
		`,"name":` + strconv.Quote(name) +
		`,"cat":"` + cat + `"}`)
}

func (c *chromeWriter) instant(name, cat string, tid int, ts int64) {
	c.sep()
	c.raw(`{"ph":"i","pid":1,"tid":` + strconv.Itoa(tid) +
		`,"ts":` + strconv.FormatInt(ts, 10) +
		`,"s":"t","name":` + strconv.Quote(name) +
		`,"cat":"` + cat + `"}`)
}
