package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"timedice/internal/vtime"
)

// A bounded flight-recorder window can be cut on either side of an
// inversion pair. The exporter must stay valid JSON and render what it can:
// a Close without a prior Open is dropped, an Open without a Close is drawn
// up to the last event in the window.
func TestChromeTracePartialWindow(t *testing.T) {
	events := []Event{
		// Orphan close from an inversion opened before the window started.
		{Time: vtime.Time(0).Add(vtime.MS(1)), Kind: KindInversionClose},
		{Time: vtime.Time(0).Add(vtime.MS(2)), Kind: KindSlice, Partition: 0, Dur: vtime.MS(1)},
		// Opens and never closes: the window ends mid-inversion.
		{Time: vtime.Time(0).Add(vtime.MS(4)), Kind: KindInversionOpen},
		{Time: vtime.Time(0).Add(vtime.MS(6)), Kind: KindSlice, Partition: 1, Dur: vtime.MS(1)},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, []string{"P1", "P2"}); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			TS   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}

	var open, closed int
	for _, e := range trace.TraceEvents {
		if !strings.HasPrefix(e.Name, "inversion") {
			continue
		}
		if e.Name == "inversion (open at stream end)" {
			open++
			if e.TS != 4000 || e.Dur != 2000 {
				t.Errorf("dangling inversion slice = ts %d dur %d, want ts 4000 dur 2000", e.TS, e.Dur)
			}
		} else if e.Name == "inversion" {
			closed++
		}
	}
	if closed != 0 {
		t.Errorf("orphan InversionClose produced %d closed slices, want 0", closed)
	}
	if open != 1 {
		t.Errorf("dangling InversionOpen produced %d open-at-end slices, want 1", open)
	}
}

// A balanced stream must not grow an extra trailing slice.
func TestChromeTraceBalancedInversions(t *testing.T) {
	events := []Event{
		{Time: vtime.Time(0).Add(vtime.MS(1)), Kind: KindInversionOpen},
		{Time: vtime.Time(0).Add(vtime.MS(3)), Kind: KindInversionClose},
		{Time: vtime.Time(0).Add(vtime.MS(5)), Kind: KindSlice, Partition: 0, Dur: vtime.MS(1)},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, []string{"P1"}); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if strings.Contains(buf.String(), "open at stream end") {
		t.Errorf("balanced stream emitted a dangling-inversion slice:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"name":"inversion"`) {
		t.Errorf("balanced stream missing its closed inversion slice:\n%s", buf.String())
	}
}
