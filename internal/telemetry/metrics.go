package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds d (d must be >= 0; negative deltas are ignored).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v += d
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a last-value metric.
type Gauge struct {
	v float64
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the last recorded value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket streaming histogram: constant memory no matter
// how many samples are observed (unlike a raw sample slice, which grows with
// the run length). Bucket i counts samples in (bounds[i-1], bounds[i]]; an
// implicit overflow bucket catches samples above the last bound. Alongside
// the buckets it tracks exact count, sum, min and max, so means are exact and
// only quantiles are approximated (by linear interpolation inside a bucket).
type Histogram struct {
	bounds []float64 // ascending upper bounds
	counts []int64   // len(bounds)+1; last = overflow
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds. It panics on an empty or unsorted bounds slice.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// ExponentialBuckets returns n bounds start, start·factor, start·factor², …
// start and factor must be > 0 and > 1 respectively.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("telemetry: ExponentialBuckets needs start>0, factor>1, n>0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, start+2·width, …
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n <= 0 {
		panic("telemetry: LinearBuckets needs width>0, n>0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// LatencyBuckets returns the default bucket bounds for wall-clock policy
// latencies in microseconds: 56 exponential buckets from 0.05 µs to ≈ 80 ms.
func LatencyBuckets() []float64 { return ExponentialBuckets(0.05, 1.3, 56) }

// ResponseBuckets returns the default bucket bounds for virtual-time
// response times and window lengths in microseconds: 48 exponential buckets
// from 50 µs to ≈ 10 s.
func ResponseBuckets() []float64 { return ExponentialBuckets(50, 1.3, 48) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// containing the target rank and interpolating linearly inside it, clamped
// to the exact observed [min, max]. With no samples it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	var cum int64
	for i, c := range h.counts {
		if float64(cum+c) < target {
			cum += c
			continue
		}
		lo, hi := h.bucketEdges(i)
		var v float64
		if c == 0 {
			v = hi
		} else {
			frac := (target - float64(cum)) / float64(c)
			v = lo + frac*(hi-lo)
		}
		return math.Max(h.min, math.Min(h.max, v))
	}
	return h.max
}

// bucketEdges returns the interpolation range of bucket i, substituting the
// observed min/max for the open outer edges.
func (h *Histogram) bucketEdges(i int) (lo, hi float64) {
	if i == 0 {
		lo = math.Min(h.min, h.bounds[0])
	} else {
		lo = h.bounds[i-1]
	}
	if i == len(h.bounds) {
		hi = math.Max(h.max, h.bounds[len(h.bounds)-1])
	} else {
		hi = h.bounds[i]
	}
	return lo, hi
}

// Reset zeroes the histogram, keeping its bucket layout.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
}

// metricKind tags registry entries for deterministic dumps.
type metricKind uint8

const (
	metricCounter metricKind = iota + 1
	metricGauge
	metricHistogram
)

type metricEntry struct {
	name string
	kind metricKind
}

// Registry holds named metrics. Lookups create metrics on first use; a dump
// lists metrics in first-registration order, so the output of a
// deterministic run is byte-stable. The registry is not goroutine-safe: one
// simulated system updates it from a single goroutine.
type Registry struct {
	order      []metricEntry
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.order = append(r.order, metricEntry{name, metricCounter})
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.order = append(r.order, metricEntry{name, metricGauge})
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := NewHistogram(bounds)
	r.histograms[name] = h
	r.order = append(r.order, metricEntry{name, metricHistogram})
	return h
}

// hquantiles are the quantiles reported by the dumps.
var hquantiles = []float64{0.25, 0.5, 0.75, 0.9, 0.99}

// WriteText writes a human-readable dump: one metric per line, in
// registration order.
func (r *Registry) WriteText(w io.Writer) error {
	for _, e := range r.order {
		var err error
		switch e.kind {
		case metricCounter:
			_, err = fmt.Fprintf(w, "counter   %-40s %d\n", e.name, r.counters[e.name].Value())
		case metricGauge:
			_, err = fmt.Fprintf(w, "gauge     %-40s %.6f\n", e.name, r.gauges[e.name].Value())
		case metricHistogram:
			h := r.histograms[e.name]
			_, err = fmt.Fprintf(w,
				"histogram %-40s n=%d mean=%.3f min=%.3f p25=%.3f p50=%.3f p75=%.3f p90=%.3f p99=%.3f max=%.3f\n",
				e.name, h.Count(), h.Mean(), h.Min(),
				h.Quantile(0.25), h.Quantile(0.5), h.Quantile(0.75),
				h.Quantile(0.9), h.Quantile(0.99), h.Max())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes a machine-readable dump with a fixed header, in
// registration order. Fields that do not apply to a metric type are empty.
func (r *Registry) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "type,name,value,count,sum,mean,min,p25,p50,p75,p90,p99,max"); err != nil {
		return err
	}
	for _, e := range r.order {
		var err error
		switch e.kind {
		case metricCounter:
			_, err = fmt.Fprintf(w, "counter,%s,%d,,,,,,,,,,\n", e.name, r.counters[e.name].Value())
		case metricGauge:
			_, err = fmt.Fprintf(w, "gauge,%s,%.6f,,,,,,,,,,\n", e.name, r.gauges[e.name].Value())
		case metricHistogram:
			h := r.histograms[e.name]
			_, err = fmt.Fprintf(w, "histogram,%s,,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
				e.name, h.Count(), h.Sum(), h.Mean(), h.Min(),
				h.Quantile(0.25), h.Quantile(0.5), h.Quantile(0.75),
				h.Quantile(0.9), h.Quantile(0.99), h.Max())
		}
		if err != nil {
			return err
		}
	}
	return nil
}
