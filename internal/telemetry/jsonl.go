package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"timedice/internal/vtime"
)

// JSONL wire format: one event per line, fixed key order, e.g.
//
//	{"t":12000,"k":"complete","p":2,"task":"t3,1","job":5,"dur":1500}
//
// Keys: t (virtual time, µs), k (Kind wire name), p (partition index,
// omitted when -1), task/job (task kinds only), dur and aux (omitted when
// zero). The fixed key order and the omission rules make the output of a
// deterministic run byte-stable, which the golden tests rely on.

// JSONLSink streams events to w as JSONL. It buffers internally; call Flush
// (or Close) when the run ends. Write errors are sticky and reported by
// Flush/Err.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONLSink wraps w in a streaming JSONL event sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w), buf: make([]byte, 0, 128)}
}

// Event implements Sink.
func (s *JSONLSink) Event(e Event) {
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(e.Time), 10)
	b = append(b, `,"k":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, '"')
	if e.Partition >= 0 {
		b = append(b, `,"p":`...)
		b = strconv.AppendInt(b, int64(e.Partition), 10)
	}
	if e.Task != "" {
		b = append(b, `,"task":`...)
		b = strconv.AppendQuote(b, e.Task)
		b = append(b, `,"job":`...)
		b = strconv.AppendInt(b, e.Job, 10)
	}
	if e.Dur != 0 {
		b = append(b, `,"dur":`...)
		b = strconv.AppendInt(b, int64(e.Dur), 10)
	}
	if e.Aux != 0 {
		b = append(b, `,"aux":`...)
		b = strconv.AppendInt(b, e.Aux, 10)
	}
	b = append(b, '}', '\n')
	s.buf = b[:0]
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Flush drains the buffer and returns the first error seen.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// jsonlEvent is the decode target for one JSONL line.
type jsonlEvent struct {
	T    int64  `json:"t"`
	K    string `json:"k"`
	P    *int   `json:"p"`
	Task string `json:"task"`
	Job  int64  `json:"job"`
	Dur  int64  `json:"dur"`
	Aux  int64  `json:"aux"`
}

// ReadJSONL parses a JSONL event stream written by JSONLSink. Blank lines
// are skipped; an unknown kind or malformed line is an error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("telemetry: jsonl line %d: %w", line, err)
		}
		k := KindFromString(je.K)
		if k == 0 {
			return nil, fmt.Errorf("telemetry: jsonl line %d: unknown event kind %q", line, je.K)
		}
		e := Event{
			Time:      vtime.Time(je.T),
			Kind:      k,
			Partition: -1,
			Task:      je.Task,
			Job:       je.Job,
			Dur:       vtime.Duration(je.Dur),
			Aux:       je.Aux,
		}
		if je.P != nil {
			e.Partition = *je.P
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: jsonl: %w", err)
	}
	return out, nil
}
