package telemetry

import (
	"fmt"
	"io"
	"sort"

	"timedice/internal/vtime"
)

// PartitionSummary aggregates one partition's slice of a run.
type PartitionSummary struct {
	Partition      int
	Arrivals       int64
	Completions    int64
	DeadlineMisses int64
	BusyTime       vtime.Duration
	WorstResponse  vtime.Duration
	MeanResponse   float64 // µs
}

// Summary is the roll-up of a recorded (or re-read) event stream — the
// numbers the engine's Counters report, recomputed purely from events, so a
// saved JSONL log can be audited offline against the live run.
type Summary struct {
	Events           int64
	Horizon          vtime.Time // latest instant covered by any event
	Decisions        int64
	IdleDecisions    int64
	Switches         int64
	BusyTime         vtime.Duration
	IdleTime         vtime.Duration
	Completions      int64
	DeadlineMisses   int64
	InversionWindows int64 // opened windows
	InversionTime    vtime.Duration
	Preemptions      int64
	BudgetDepletions int64
	Partitions       []PartitionSummary // indexed by partition, dense
}

// Summarize folds an event stream into a Summary. It accepts streams from a
// Recorder or from ReadJSONL; order must be emission order.
func Summarize(events []Event) Summary {
	s := Summary{}
	parts := map[int]*PartitionSummary{}
	part := func(i int) *PartitionSummary {
		if p, ok := parts[i]; ok {
			return p
		}
		p := &PartitionSummary{Partition: i}
		parts[i] = p
		return p
	}
	respSum := map[int]float64{}
	lastPick, started := -1, false
	for _, e := range events {
		s.Events++
		if e.Time > s.Horizon {
			s.Horizon = e.Time
		}
		if end := e.Time.Add(e.Dur); e.Kind == KindSlice && end > s.Horizon {
			s.Horizon = end
		}
		switch e.Kind {
		case KindDecision:
			s.Decisions++
			if e.Partition < 0 {
				s.IdleDecisions++
			}
			if !started || e.Partition != lastPick {
				s.Switches++
			}
			started, lastPick = true, e.Partition
		case KindSlice:
			if e.Partition < 0 {
				s.IdleTime += e.Dur
			} else {
				s.BusyTime += e.Dur
				part(e.Partition).BusyTime += e.Dur
			}
		case KindTaskArrival:
			part(e.Partition).Arrivals++
		case KindTaskComplete:
			s.Completions++
			p := part(e.Partition)
			p.Completions++
			if e.Dur > p.WorstResponse {
				p.WorstResponse = e.Dur
			}
			respSum[e.Partition] += float64(e.Dur)
		case KindDeadlineMiss:
			s.DeadlineMisses++
			part(e.Partition).DeadlineMisses++
		case KindTaskPreempt:
			s.Preemptions++
		case KindInversionOpen:
			s.InversionWindows++
		case KindInversionClose:
			s.InversionTime += e.Dur
		case KindBudgetDeplete:
			s.BudgetDepletions++
		}
	}
	idxs := make([]int, 0, len(parts))
	for i := range parts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		p := parts[i]
		if p.Completions > 0 {
			p.MeanResponse = respSum[i] / float64(p.Completions)
		}
		s.Partitions = append(s.Partitions, *p)
	}
	return s
}

// WriteText renders the summary as a small report. names labels partitions
// (may be nil or shorter than the partition list).
func (s Summary) WriteText(w io.Writer, names []string) error {
	total := s.BusyTime + s.IdleTime
	util := 0.0
	if total > 0 {
		util = float64(s.BusyTime) / float64(total)
	}
	if _, err := fmt.Fprintf(w,
		"events            %d\nhorizon           %v\ndecisions         %d (%d idle, %d switches)\nbusy/idle         %v / %v (utilization %.1f%%)\ncompletions       %d\ndeadline misses   %d\npreemptions       %d\nbudget depletions %d\ninversion windows %d (total %v)\n",
		s.Events, s.Horizon, s.Decisions, s.IdleDecisions, s.Switches,
		s.BusyTime, s.IdleTime, 100*util,
		s.Completions, s.DeadlineMisses, s.Preemptions, s.BudgetDepletions,
		s.InversionWindows, s.InversionTime); err != nil {
		return err
	}
	if len(s.Partitions) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-10s %9s %9s %7s %12s %12s %12s\n",
		"partition", "arrivals", "complete", "misses", "busy", "worst-resp", "mean-resp"); err != nil {
		return err
	}
	for _, p := range s.Partitions {
		label := partitionName(names, p.Partition)
		if _, err := fmt.Fprintf(w, "%-10s %9d %9d %7d %12v %12v %9.3fms\n",
			label, p.Arrivals, p.Completions, p.DeadlineMisses, p.BusyTime,
			p.WorstResponse, p.MeanResponse/1000); err != nil {
			return err
		}
	}
	return nil
}
