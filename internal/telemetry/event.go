// Package telemetry is the simulator's observability layer: a structured
// stream of typed scheduler events, a metrics registry with streaming
// fixed-bucket histograms, and exporters for the Chrome trace-event format
// (loadable in Perfetto / chrome://tracing), JSONL event logs, and text/CSV
// metrics dumps.
//
// The package deliberately depends only on vtime and the standard library so
// every layer of the simulator (engine, servers, local schedulers, policies)
// can emit into it without import cycles. Emission is pull-free and
// allocation-free: producers call Sink.Event with an Event value; with no
// sink attached the producers skip the call entirely (a nil check), so the
// telemetry-disabled hot path costs nothing.
//
// # Event taxonomy
//
// Every Event carries a Kind, the virtual Time it happened, and a subset of
// the remaining fields depending on the kind:
//
//	KindTaskArrival      a job was released. Partition, Task, Job.
//	KindTaskStart        a job was dispatched on the CPU. Partition, Task,
//	                     Job; Aux=1 for the job's first dispatch, 0 for a
//	                     resume after preemption.
//	KindTaskPreempt      a mid-execution job lost the CPU (to a local
//	                     higher-priority job or to a partition switch).
//	                     Partition, Task, Job.
//	KindTaskComplete     a job finished. Partition, Task, Job; Dur=response
//	                     time (finish − arrival).
//	KindDeadlineMiss     a job finished after its absolute deadline.
//	                     Partition, Task, Job; Dur=lateness.
//	KindBudgetDeplete    a partition's budget reached zero: consumed by
//	                     execution (Dur=0, Aux=0) or discarded by an idle
//	                     polling server (Dur=discarded amount, Aux=1).
//	                     Partition.
//	KindBudgetReplenish  a partition's budget was replenished. Partition;
//	                     Dur=amount added, Aux=remaining budget (µs) after.
//	KindDecision         a global scheduling decision. Partition=picked
//	                     partition index or -1 for idle; Aux=candidate-set
//	                     size when the policy reports it, else -1.
//	KindInversionOpen    a priority-inversion window opened: the decision
//	                     ran a partition (or idled) while a strictly
//	                     higher-priority partition was runnable. Partition=
//	                     the picked partition (-1 for idle inversion).
//	KindInversionClose   the inversion window closed. Dur=window length.
//	KindSlice            one maximal execution interval. Partition (or -1
//	                     for idle), Dur=length. Mirrors engine.Segment.
//
// Events are totally ordered by emission; within one instant the order is
// the engine's processing order (replenishments/arrivals, then the decision,
// then execution effects).
package telemetry

import (
	"fmt"

	"timedice/internal/vtime"
)

// Kind discriminates Event records.
type Kind uint8

// Event kinds. See the package comment for the per-kind field semantics.
const (
	KindTaskArrival Kind = iota + 1
	KindTaskStart
	KindTaskPreempt
	KindTaskComplete
	KindDeadlineMiss
	KindBudgetDeplete
	KindBudgetReplenish
	KindDecision
	KindInversionOpen
	KindInversionClose
	KindSlice
	kindEnd // one past the last valid kind
)

var kindNames = [...]string{
	KindTaskArrival:     "arrival",
	KindTaskStart:       "start",
	KindTaskPreempt:     "preempt",
	KindTaskComplete:    "complete",
	KindDeadlineMiss:    "deadline_miss",
	KindBudgetDeplete:   "budget_deplete",
	KindBudgetReplenish: "budget_replenish",
	KindDecision:        "decision",
	KindInversionOpen:   "inversion_open",
	KindInversionClose:  "inversion_close",
	KindSlice:           "slice",
}

// String returns the kind's wire name (the JSONL "k" field).
func (k Kind) String() string {
	if k > 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromString is the inverse of Kind.String; it returns 0 for an unknown
// name.
func KindFromString(s string) Kind {
	for k := Kind(1); k < kindEnd; k++ {
		if kindNames[k] == s {
			return k
		}
	}
	return 0
}

// Event is one structured telemetry record. It is a plain value — emitting
// one allocates nothing.
type Event struct {
	Time vtime.Time
	Kind Kind
	// Partition is the index of the partition concerned in the system's
	// priority-ordered slice, or -1 when no partition applies (idle slices,
	// idle decisions).
	Partition int
	// Task is the task name for task-lifecycle kinds, empty otherwise. It
	// aliases the task's static name; no copy is made.
	Task string
	// Job is the per-task job index (k-th release, from 0) for task kinds.
	Job int64
	// Dur is the kind-specific duration payload (response time, slice
	// length, inversion-window length, replenished amount, ...).
	Dur vtime.Duration
	// Aux is a kind-specific extra integer (see the package comment).
	Aux int64
}

// Sink receives emitted events. Implementations are invoked synchronously
// from the simulation loop and must not retain pointers into the engine;
// Event values may be retained freely.
//
// Sinks are not required to be goroutine-safe: one simulated system emits
// from a single goroutine. Sharing one sink between concurrently running
// systems requires external locking.
type Sink interface {
	Event(Event)
}

// Func adapts a plain function to a Sink, for quick inline subscriptions.
type Func func(Event)

// Event implements Sink.
func (f Func) Event(e Event) { f(e) }

// Multi fans every event out to each member sink in order.
type Multi []Sink

// Event implements Sink.
func (m Multi) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// Recorder is an in-memory sink: it appends every event to a slice. Use it
// when an exporter needs the whole stream at once (e.g. WriteChromeTrace).
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Event implements Sink.
func (r *Recorder) Event(e Event) { r.events = append(r.events, e) }

// Events returns the recorded stream in emission order. The slice is owned
// by the recorder; callers must not mutate it.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Reset discards all recorded events, keeping the backing capacity.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// Filter is a sink decorator passing through only events whose kind is in
// the set, for cheap subscriptions ("deadline misses only").
type Filter struct {
	Next  Sink
	Kinds map[Kind]bool
}

// NewFilter builds a filter around next keeping only the given kinds.
func NewFilter(next Sink, kinds ...Kind) *Filter {
	set := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return &Filter{Next: next, Kinds: set}
}

// Event implements Sink.
func (f *Filter) Event(e Event) {
	if f.Kinds[e.Kind] {
		f.Next.Event(e)
	}
}
