package telemetry_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"timedice/internal/engine"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenRun executes the fixed scenario the golden files were recorded from:
// the three-partition demo system under TimeDiceW, seed 7, 200 ms. Everything
// in the exporters' output derives from virtual time and the seeded RNG, so
// the bytes must be identical on every platform and every run.
func goldenRun(t *testing.T) ([]telemetry.Event, []string, *engine.System) {
	t.Helper()
	built, err := workload.ThreePartition().Build()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policies.Build(policies.TimeDiceW, built.Partitions, policies.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	sys.AttachTelemetry(rec)
	sys.Run(vtime.Time(200 * vtime.Millisecond))
	sys.FlushTelemetry()
	names := make([]string, len(sys.Partitions))
	for i, p := range sys.Partitions {
		names[i] = p.Name
	}
	return rec.Events(), names, sys
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -run Golden -update` to record)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (%d bytes vs %d); rerun with -update if the change is intended",
			name, len(got), len(want))
	}
}

func TestGoldenJSONL(t *testing.T) {
	events, _, _ := goldenRun(t)
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	for _, e := range events {
		sink.Event(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "three_events.jsonl", buf.Bytes())

	// The golden must round-trip losslessly too.
	back, err := telemetry.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round-trip lost events: %d vs %d", len(back), len(events))
	}
}

func TestGoldenChromeTrace(t *testing.T) {
	events, names, _ := goldenRun(t)
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, events, names); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "three_trace.json", buf.Bytes())
}

func TestGoldenSummaryText(t *testing.T) {
	events, names, _ := goldenRun(t)
	var buf bytes.Buffer
	if err := telemetry.Summarize(events).WriteText(&buf, names); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "three_summary.txt", buf.Bytes())
}

// TestEngineSummaryConsistency is the engine-level contract: for several
// policies and seeds, the roll-up recomputed purely from the event stream
// must agree with the engine's own counters.
func TestEngineSummaryConsistency(t *testing.T) {
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW, policies.TDMA} {
		for _, seed := range []uint64{1, 99} {
			built, err := workload.TableIBase().Build()
			if err != nil {
				t.Fatal(err)
			}
			pol, err := policies.Build(kind, built.Partitions, policies.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sys, err := engine.New(built.Partitions, pol, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			rec := telemetry.NewRecorder()
			sys.AttachTelemetry(rec)
			sys.Run(vtime.Time(vtime.Second))
			sys.FlushTelemetry()

			sum := telemetry.Summarize(rec.Events())
			c := sys.Counters
			if sum.Decisions != c.Decisions || sum.IdleDecisions != c.IdleDecisions ||
				sum.Switches != c.Switches {
				t.Errorf("%v/seed=%d: decisions %d/%d/%d vs engine %d/%d/%d",
					kind, seed, sum.Decisions, sum.IdleDecisions, sum.Switches,
					c.Decisions, c.IdleDecisions, c.Switches)
			}
			if sum.BusyTime != c.BusyTime || sum.IdleTime != c.IdleTime {
				t.Errorf("%v/seed=%d: busy/idle %v/%v vs engine %v/%v",
					kind, seed, sum.BusyTime, sum.IdleTime, c.BusyTime, c.IdleTime)
			}
			if sum.DeadlineMisses != c.DeadlineMisses {
				t.Errorf("%v/seed=%d: misses %d vs engine %d",
					kind, seed, sum.DeadlineMisses, c.DeadlineMisses)
			}
			if sum.InversionWindows != c.InversionWindows || sum.InversionTime != c.InversionTime {
				t.Errorf("%v/seed=%d: inversions %d/%v vs engine %d/%v",
					kind, seed, sum.InversionWindows, sum.InversionTime,
					c.InversionWindows, c.InversionTime)
			}
		}
	}
}

// TestDisabledTelemetryCountersMatch verifies the cheap counters maintained
// without a sink (deadline misses) agree with a sink-attached run of the
// same seed, and that the sink-gated inversion counters stay zero when
// disabled.
func TestDisabledTelemetryCountersMatch(t *testing.T) {
	runOnce := func(attach bool) *engine.System {
		built, err := workload.TableIBase().Build()
		if err != nil {
			t.Fatal(err)
		}
		pol, err := policies.Build(policies.TimeDiceW, built.Partitions, policies.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := engine.New(built.Partitions, pol, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			sys.AttachTelemetry(telemetry.NewRecorder())
		}
		sys.Run(vtime.Time(vtime.Second))
		sys.FlushTelemetry()
		return sys
	}
	on, off := runOnce(true), runOnce(false)
	if on.Counters.Decisions != off.Counters.Decisions ||
		on.Counters.BusyTime != off.Counters.BusyTime {
		t.Errorf("telemetry changed the schedule: %+v vs %+v", on.Counters, off.Counters)
	}
	if on.Counters.DeadlineMisses != off.Counters.DeadlineMisses {
		t.Errorf("deadline misses diverge: %d with sink, %d without",
			on.Counters.DeadlineMisses, off.Counters.DeadlineMisses)
	}
	if off.Counters.InversionWindows != 0 || off.Counters.InversionTime != 0 {
		t.Errorf("inversion counters are documented sink-gated but ran disabled: %d/%v",
			off.Counters.InversionWindows, off.Counters.InversionTime)
	}
	if on.Counters.InversionWindows == 0 {
		t.Error("sink-attached run recorded no inversion windows under TimeDiceW")
	}
}

// TestGoldenScanStepping pins the stepping-mode equivalence on the golden
// scenario: rerunning it with the engine's reference O(P) scan path
// (System.ScanStepping) must reproduce every committed golden artifact byte
// for byte. Together with the corpus-wide digest differential in
// internal/gen this makes the indexed event queue observationally invisible.
func TestGoldenScanStepping(t *testing.T) {
	built, err := workload.ThreePartition().Build()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policies.Build(policies.TimeDiceW, built.Partitions, policies.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	sys.ScanStepping = true
	rec := telemetry.NewRecorder()
	sys.AttachTelemetry(rec)
	sys.Run(vtime.Time(200 * vtime.Millisecond))
	sys.FlushTelemetry()
	events := rec.Events()
	names := make([]string, len(sys.Partitions))
	for i, p := range sys.Partitions {
		names[i] = p.Name
	}

	var jsonl bytes.Buffer
	sink := telemetry.NewJSONLSink(&jsonl)
	for _, e := range events {
		sink.Event(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "three_events.jsonl", jsonl.Bytes())

	var chrome bytes.Buffer
	if err := telemetry.WriteChromeTrace(&chrome, events, names); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "three_trace.json", chrome.Bytes())

	var sum bytes.Buffer
	if err := telemetry.Summarize(events).WriteText(&sum, names); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "three_summary.txt", sum.Bytes())
}
