package telemetry

import (
	"fmt"

	"timedice/internal/vtime"
)

// Collector is a Sink that aggregates the event stream into a metrics
// Registry — the bridge between the structured trace and the numbers the
// evaluation reports. It maintains, per run:
//
//	decisions.total / decisions.idle      counters
//	switches.total                        counter (decision outcome changed)
//	inversion.windows                     counter
//	inversion.len_us                      histogram of window lengths
//	busy_us.total / idle_us.total         counters (µs)
//	busy_us.<part> / util.<part>          per-partition busy time and
//	                                      budget-utilization gauge
//	arrivals.<part> / completions.<part>  counters
//	deadline_miss.total / .<part>         counters
//	response_us.<part>                    per-partition response-time
//	                                      histograms (µs)
//	budget.depletions.<part>              counter (exhausted or discarded)
//	budget.replenish_us.<part>            counter of replenished µs
//
// Partition labels use the names given to NewCollector, falling back to
// "p<i>" for indices outside the name list.
type Collector struct {
	reg   *Registry
	names []string

	lastPick int
	started  bool
	busy     []vtime.Duration
}

// NewCollector builds a collector labelling partitions with names (in system
// priority order). A nil registry allocates a fresh one.
func NewCollector(reg *Registry, names []string) *Collector {
	if reg == nil {
		reg = NewRegistry()
	}
	c := &Collector{reg: reg, names: names, lastPick: -1, busy: make([]vtime.Duration, len(names))}
	// Pre-register the run-wide metrics so dumps have a stable layout even
	// for runs in which some kinds never occur.
	reg.Counter("decisions.total")
	reg.Counter("decisions.idle")
	reg.Counter("switches.total")
	reg.Counter("inversion.windows")
	reg.Histogram("inversion.len_us", ResponseBuckets())
	reg.Counter("busy_us.total")
	reg.Counter("idle_us.total")
	reg.Counter("deadline_miss.total")
	for i := range names {
		reg.Counter("arrivals." + c.label(i))
		reg.Counter("completions." + c.label(i))
		reg.Counter("deadline_miss." + c.label(i))
		reg.Histogram("response_us."+c.label(i), ResponseBuckets())
		reg.Counter("busy_us." + c.label(i))
		reg.Gauge("util." + c.label(i))
		reg.Counter("budget.depletions." + c.label(i))
		reg.Counter("budget.replenish_us." + c.label(i))
	}
	return c
}

// Registry returns the backing registry.
func (c *Collector) Registry() *Registry { return c.reg }

func (c *Collector) label(part int) string {
	if part >= 0 && part < len(c.names) {
		return c.names[part]
	}
	return fmt.Sprintf("p%d", part)
}

// Event implements Sink.
func (c *Collector) Event(e Event) {
	switch e.Kind {
	case KindDecision:
		c.reg.Counter("decisions.total").Inc()
		if e.Partition < 0 {
			c.reg.Counter("decisions.idle").Inc()
		}
		if !c.started || e.Partition != c.lastPick {
			c.reg.Counter("switches.total").Inc()
		}
		c.started, c.lastPick = true, e.Partition
	case KindSlice:
		if e.Partition < 0 {
			c.reg.Counter("idle_us.total").Add(int64(e.Dur))
			return
		}
		c.reg.Counter("busy_us.total").Add(int64(e.Dur))
		c.reg.Counter("busy_us." + c.label(e.Partition)).Add(int64(e.Dur))
		for int(e.Partition) >= len(c.busy) {
			c.busy = append(c.busy, 0)
		}
		c.busy[e.Partition] += e.Dur
		if end := e.Time.Add(e.Dur); end > 0 {
			c.reg.Gauge("util." + c.label(e.Partition)).
				Set(float64(c.busy[e.Partition]) / float64(end))
		}
	case KindTaskArrival:
		c.reg.Counter("arrivals." + c.label(e.Partition)).Inc()
	case KindTaskComplete:
		c.reg.Counter("completions." + c.label(e.Partition)).Inc()
		c.reg.Histogram("response_us."+c.label(e.Partition), ResponseBuckets()).
			Observe(float64(e.Dur))
	case KindDeadlineMiss:
		c.reg.Counter("deadline_miss.total").Inc()
		c.reg.Counter("deadline_miss." + c.label(e.Partition)).Inc()
	case KindInversionOpen:
		c.reg.Counter("inversion.windows").Inc()
	case KindInversionClose:
		c.reg.Histogram("inversion.len_us", ResponseBuckets()).Observe(float64(e.Dur))
	case KindBudgetDeplete:
		c.reg.Counter("budget.depletions." + c.label(e.Partition)).Inc()
	case KindBudgetReplenish:
		c.reg.Counter("budget.replenish_us." + c.label(e.Partition)).Add(int64(e.Dur))
	}
}
