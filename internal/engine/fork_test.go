package engine_test

// Fork contract tests: a fork run to the horizon is digest-identical to its
// parent's suffix, forks and parent are fully isolated (raced under -race in
// CI), and Fork's allocation count is pinned to O(live state) — it must not
// grow with how long the parent has been running.

import (
	"sync"
	"testing"

	"timedice/internal/check"
	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/gen"
	"timedice/internal/policies"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

// TestForkDigestsMatch: over generated scenarios across all policies, fork at
// a mid-run step boundary, run parent and fork to the horizon, and require
// the fork's event digest and deterministic counters to match the parent's
// suffix exactly.
func TestForkDigestsMatch(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	scs := snapshotScenarios(n, 0xf0f0)
	_, err := runner.Map(0, scs, func(i int, sc gen.Scenario) (struct{}, error) {
		sys, err := gen.Build(sc)
		if err != nil {
			return struct{}{}, nil // unbuildable (TDMA slot rounding); not a fork property
		}
		horizon := vtime.Time(0).Add(sc.Horizon)
		mid := vtime.Time(0).Add(vtime.Duration(int64(sc.Horizon) / 10 * int64(1+sc.Seed%8)))
		rec := telemetry.NewRecorder()
		sys.AttachTelemetry(rec)
		for sys.Now() < mid {
			sys.Step(horizon)
		}
		prefixLen := rec.Len()

		// Fork before the parent moves again, then run both to the horizon.
		fk := sys.Fork()
		frec := telemetry.NewRecorder()
		fk.AttachTelemetry(frec)

		sys.Run(horizon)
		sys.FlushTelemetry()
		fk.Run(horizon)
		fk.FlushTelemetry()

		parentSuffix := rec.Events()[prefixLen:]
		want := check.DigestEvents(parentSuffix)
		got := check.DigestEvents(frec.Events())
		if want != got {
			enc, _ := gen.Encode(sc)
			t.Errorf("scenario %d: fork digest %#016x != parent suffix %#016x\nscenario: %s", i, got, want, enc)
			return struct{}{}, nil
		}
		if pc, fc := deterministicCounters(sys.Counters), deterministicCounters(fk.Counters); pc != fc {
			enc, _ := gen.Encode(sc)
			t.Errorf("scenario %d: fork counters %v != parent %v\nscenario: %s", i, fc, pc, enc)
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestForkIsolationRace runs a parent and several differently-seeded forks
// concurrently. Under -race (the CI race lane) any state shared between them
// is a detector hit; in all lanes each system must independently reach the
// horizon.
func TestForkIsolationRace(t *testing.T) {
	sc := goldenScenario()
	sc.Policy = policies.TimeDiceW // randomized: RNG sharing would be visible
	sys, err := gen.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachTelemetry(telemetry.NewRecorder())
	horizon := vtime.Time(0).Add(sc.Horizon)
	mid := vtime.Time(0).Add(sc.Horizon / 2)
	for sys.Now() < mid {
		sys.Step(horizon)
	}

	const nForks = 4
	var wg sync.WaitGroup
	systems := make([]*engine.System, 0, nForks+1)
	run := func(s *engine.System) {
		defer wg.Done()
		s.Run(horizon)
		s.FlushTelemetry()
	}
	for i := 0; i < nForks; i++ {
		fk := sys.Fork()
		fk.Rand.Seed(uint64(1000 + i))
		fk.AttachTelemetry(telemetry.NewRecorder())
		systems = append(systems, fk)
		wg.Add(1)
		go run(fk)
	}
	systems = append(systems, sys)
	wg.Add(1)
	go run(sys)
	wg.Wait()

	for i, s := range systems {
		if s.Now() != horizon {
			t.Errorf("system %d stopped at %v, want %v", i, s.Now(), horizon)
		}
	}
}

// TestForkBoundedAlloc pins Fork's allocation count to the live state: forking
// after a long run must not allocate more than forking after a short one.
// Skipped under -race (instrumentation inflates allocation counts).
func TestForkBoundedAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	sys := buildSystem(t, policies.TimeDiceW)
	sys.Run(vtime.Time(0).Add(vtime.Second))
	early := testing.AllocsPerRun(20, func() { _ = sys.Fork() })

	sys.RunFor(5 * vtime.Second)
	late := testing.AllocsPerRun(20, func() { _ = sys.Fork() })

	const ceiling = 400 // generous bound for TableI's live state
	if early > ceiling || late > ceiling {
		t.Errorf("Fork allocates too much: %.0f early, %.0f late (ceiling %d)", early, late, ceiling)
	}
	if late > early*2+16 {
		t.Errorf("Fork allocations grew with run length: %.0f early vs %.0f late", early, late)
	}
	t.Logf("Fork allocs: %.0f after 1s, %.0f after 6s", early, late)
}

// BenchmarkFork measures a bare fork of a warmed-up TableI system.
func BenchmarkFork(b *testing.B) {
	sys := buildSystem(b, policies.TimeDiceW)
	sys.Run(vtime.Time(0).Add(vtime.Second))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Fork()
	}
}

// BenchmarkForkExploreVsReplay compares the two ways to branch an alternate
// future from t=1s: forking the live system versus re-running from zero with
// the same seed. The ratio is the speedup fork-based exploration buys simfuzz
// (see EXPERIMENTS.md).
func BenchmarkForkExploreVsReplay(b *testing.B) {
	const (
		prefix = vtime.Second           // how deep the branch point is
		tail   = 10 * vtime.Millisecond // how far each future runs
	)
	b.Run("fork", func(b *testing.B) {
		sys := buildSystem(b, policies.TimeDiceW)
		sys.Run(vtime.Time(0).Add(prefix))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fk := sys.Fork()
			fk.Rand.Seed(uint64(i) + 2)
			fk.RunFor(tail)
		}
	})
	b.Run("replay", func(b *testing.B) {
		sys := buildSystem(b, policies.TimeDiceW)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.ResetSeed(1)
			sys.Run(vtime.Time(0).Add(prefix))
			sys.Rand.Seed(uint64(i) + 2)
			sys.RunFor(tail)
		}
	})
}
