package engine_test

import (
	"testing"

	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/rng"
	"timedice/internal/sched"
	"timedice/internal/server"
	"timedice/internal/vtime"
)

func buildStampSystem(t *testing.T, spec model.SystemSpec) *engine.System {
	t.Helper()
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, sched.FixedPriority{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestStampBumpSites drives a two-partition deferrable system through each
// epoch-bumping event kind and asserts that exactly the affected partition's
// state stamp moves: releases, completions, budget depletion, replenishments,
// and the silent period-boundary advance that fires no observer callback.
// The stamps are what invalidate cached schedulability verdicts (a stamp on
// partition j stales the cached verdicts of every h >= j via the prefix-max
// in core.Cache), so per-partition precision here is per-partition cache
// invalidation precision.
func TestStampBumpSites(t *testing.T) {
	// Deferrable servers retain budget while idle, so no NoteIdle discards
	// muddy the per-event attribution. Timeline (ms):
	//   0     initial delivery               -> both stamped
	//   3     task a released (P0)           -> P0 only
	//   3..5  a executes 2ms = full budget   -> P0 completion + depletion at 5
	//   7     task b released (P1)           -> P1 only
	//   7..8  b executes (P1 keeps 2ms left) -> P1 completion at 8
	//   10    P0 boundary replenishment      -> P0 only
	//   15    P1 boundary replenishment      -> P1 only
	//   20    P0 boundary with full budget   -> P0 only (silent advance:
	//         no Replenished callback fires, but the deadline anchor moves)
	spec := model.SystemSpec{
		Name: "stamps",
		Partitions: []model.PartitionSpec{
			{Name: "P0", Budget: vtime.MS(2), Period: vtime.MS(10), Server: server.Deferrable,
				Tasks: []model.TaskSpec{{Name: "a", Period: vtime.MS(50), WCET: vtime.MS(2), Offset: vtime.MS(3)}}},
			{Name: "P1", Budget: vtime.MS(3), Period: vtime.MS(15), Server: server.Deferrable,
				Tasks: []model.TaskSpec{{Name: "b", Period: vtime.MS(60), WCET: vtime.MS(1), Offset: vtime.MS(7)}}},
		},
	}
	sys := buildStampSystem(t, spec)

	probe := func() [2]uint64 {
		st := sys.StateStamps()
		return [2]uint64{st[0], st[1]}
	}

	steps := []struct {
		name  string
		runTo vtime.Duration // absolute instant to advance past (ms timeline above)
		want  [2]bool        // which partitions must have been stamped in the window
	}{
		{"initial delivery", vtime.MS(1), [2]bool{true, true}},
		{"quiet window before first release", vtime.MS(2) + vtime.MS(1)/2, [2]bool{false, false}},
		{"release of a stamps P0 only", vtime.MS(4), [2]bool{true, false}},
		{"completion+depletion of a stamps P0 only", vtime.MS(6), [2]bool{true, false}},
		{"release of b stamps P1 only", vtime.MS(7) + vtime.MS(1)/2, [2]bool{false, true}},
		{"completion of b stamps P1 only", vtime.MS(9), [2]bool{false, true}},
		{"P0 replenishment at 10 stamps P0 only", vtime.MS(12), [2]bool{true, false}},
		{"P1 replenishment at 15 stamps P1 only", vtime.MS(17), [2]bool{false, true}},
		{"silent boundary advance at 20 stamps P0 only", vtime.MS(22), [2]bool{true, false}},
	}
	for _, step := range steps {
		before := probe()
		sys.Run(vtime.Time(step.runTo))
		after := probe()
		for i := 0; i < 2; i++ {
			moved := after[i] != before[i]
			if moved != step.want[i] {
				t.Errorf("%s: partition %d stamp moved=%v, want %v (before=%v after=%v)",
					step.name, i, moved, step.want[i], before, after)
			}
		}
	}
}

// TestStampBumpSporadic pins the two sporadic-server bump sites: consuming
// budget schedules a future supply chunk (a discontinuous change to the
// supply stream the moment it happens), and the chunk's later delivery is a
// replenishment.
func TestStampBumpSporadic(t *testing.T) {
	spec := model.SystemSpec{
		Name: "sporadic-stamps",
		Partitions: []model.PartitionSpec{
			{Name: "S", Budget: vtime.MS(2), Period: vtime.MS(10), Server: server.Sporadic,
				Tasks: []model.TaskSpec{{Name: "s", Period: vtime.MS(50), WCET: vtime.MS(1), Offset: vtime.MS(2)}}},
		},
	}
	sys := buildStampSystem(t, spec)

	windows := []struct {
		name  string
		runTo vtime.Duration
		want  bool
	}{
		{"initial delivery", vtime.MS(1), true},
		{"quiet before execution", vtime.MS(2) - vtime.MS(1)/2, false},
		{"execution 2..3 schedules a chunk (consume bump)", vtime.MS(4), true},
		{"quiet until the period boundary", vtime.MS(9), false},
		{"silent boundary advance at 10", vtime.MS(11), true},
		{"chunk delivery at 12 replenishes", vtime.MS(13), true},
	}
	for _, w := range windows {
		before := sys.StateStamps()[0]
		sys.Run(vtime.Time(w.runTo))
		after := sys.StateStamps()[0]
		if moved := after != before; moved != w.want {
			t.Errorf("%s: stamp moved=%v, want %v", w.name, moved, w.want)
		}
	}
}
