package engine

// Fork: an O(live-state) deep copy of a running System. Where Snapshot/Restore
// serialize state through a byte stream, Fork clones it structurally — same
// contract (call at a step boundary; the copy continues digest-identically),
// no encoding cost, and the parent is never mutated (Fork reads fields
// directly and never calls the mutating accessors like Partition.Hot, whose
// lazy arrival-anchor refresh would perturb the parent).

import (
	"slices"

	"timedice/internal/bitset"
	"timedice/internal/eventq"
	"timedice/internal/partition"
)

// PolicyForker is the optional extension a global policy implements to
// participate in Fork: ForkPolicy returns an independent policy equivalent to
// the receiver after a Reset — same configuration (quantum, selection mode),
// fresh scratch/cache state, and a cloned RNG position when the policy owns
// one. Because the verdict cache and search-reuse state are exact
// (digest-pinned against the uncached path), starting the fork with them
// empty never changes a schedule.
type PolicyForker interface {
	ForkPolicy() GlobalPolicy
}

// Fork returns an independent deep copy of the system at the current step
// boundary: cloned partitions (servers, schedulers, pending jobs), a cloned
// RNG position, copied counters, and rebuilt index structures sharing no
// mutable memory with the parent. Running the fork to a horizon is
// digest-identical to running the parent there; the two only diverge through
// injected differences (reseeding the fork's Rand, swapping its Policy).
//
// The policy is forked via PolicyForker when implemented; otherwise it is
// shared, which is only safe for stateless policies (sched.FixedPriority —
// every built-in policy implements PolicyForker, so sharing arises only with
// custom policies). The telemetry sink, TraceFn, and the wall-clock latency
// histogram are not carried over: a fork starts unobserved, and the caller
// attaches its own sink before running.
func (s *System) Fork() *System {
	n := len(s.Partitions)
	parts := make([]*partition.Partition, n)
	for i, p := range s.Partitions {
		parts[i] = p.Clone()
	}
	pol := s.Policy
	if pf, ok := s.Policy.(PolicyForker); ok {
		pol = pf.ForkPolicy()
	}
	f := &System{
		Partitions:     parts,
		Policy:         pol,
		Rand:           s.Rand.Clone(),
		MeasureLatency: s.MeasureLatency,
		ScanStepping:   s.ScanStepping,
		Counters:       s.Counters,
		now:            s.now,
		running:        s.running,
		perPart:        slices.Clone(s.perPart),
		nextEv:         slices.Clone(s.nextEv),
		evq:            eventq.NewIndexMin(n),
		ready:          bitset.New(n),
		hotRemaining:   slices.Clone(s.hotRemaining),
		hotDeadline:    slices.Clone(s.hotDeadline),
		hotSupply:      slices.Clone(s.hotSupply),
		hotBudget:      slices.Clone(s.hotBudget),
		hotPeriod:      slices.Clone(s.hotPeriod),
		hotRecip:       slices.Clone(s.hotRecip),
		dueBuf:         make([]int32, 0, n),
		runnableBuf:    make([]*partition.Partition, 0, n),
		epoch:          s.epoch,
		stamps:         slices.Clone(s.stamps),
		invOpen:        s.invOpen,
		invStart:       s.invStart,
	}
	// Wall-clock measurements are host observations, not simulation state.
	f.Counters.PolicyTime = 0
	f.Counters.PolicySamples = 0
	f.Counters.PolicyLatency = nil
	// Decision-cost proxies depend on verdict-cache warmth, and the fork's
	// policy starts with a cold cache (ForkPolicy); its observation starts
	// fresh, mirroring Restore.
	f.Counters.FixpointIters = 0
	f.Counters.InterferenceTerms = 0
	// Rebuild the heap from the copied keys (layout among equal keys is
	// unobservable) and the ready set from the parent's bits.
	for i, t := range f.nextEv {
		f.evq.Update(i, t)
	}
	s.ready.ForEachSet(func(i int) bool {
		f.ready.Set(i)
		return true
	})
	for i, p := range parts {
		obs := &partObserver{sys: f, part: i}
		p.SetObservers(obs, obs)
	}
	return f
}
