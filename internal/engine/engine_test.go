package engine_test

import (
	"slices"
	"testing"

	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/partition"
	"timedice/internal/rng"
	"timedice/internal/sched"
	"timedice/internal/server"
	"timedice/internal/vtime"
)

// buildTwo builds a 2-partition system: P0 (B=2,T=10) with one task (e=2,p=10)
// and P1 (B=4,T=20) with one task (e=4,p=20).
func buildTwo(t *testing.T, policy engine.GlobalPolicy) *engine.System {
	t.Helper()
	spec := model.SystemSpec{
		Name: "two",
		Partitions: []model.PartitionSpec{
			{Name: "P0", Budget: vtime.MS(2), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(2)}}},
			{Name: "P1", Budget: vtime.MS(4), Period: vtime.MS(20),
				Tasks: []model.TaskSpec{{Name: "b", Period: vtime.MS(20), WCET: vtime.MS(4)}}},
		},
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, policy, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewValidation(t *testing.T) {
	if _, err := engine.New(nil, sched.FixedPriority{}, nil); err == nil {
		t.Error("empty partition list accepted")
	}
	p1, _ := partition.New("a", 1, server.MustNew(1, 2, server.Polling), nil)
	p2, _ := partition.New("b", 1, server.MustNew(1, 2, server.Polling), nil)
	if _, err := engine.New([]*partition.Partition{p1, p2}, sched.FixedPriority{}, nil); err == nil {
		t.Error("duplicate priorities accepted")
	}
	if _, err := engine.New([]*partition.Partition{p1}, nil, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestPrioritySortOnConstruction(t *testing.T) {
	pLow, _ := partition.New("low", 5, server.MustNew(1, 10, server.Polling), nil)
	pHigh, _ := partition.New("high", 1, server.MustNew(1, 10, server.Polling), nil)
	sys, err := engine.New([]*partition.Partition{pLow, pHigh}, sched.FixedPriority{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Partitions[0] != pHigh || pHigh.Index != 0 || pLow.Index != 1 {
		t.Error("partitions not sorted by priority")
	}
}

func TestFixedPrioritySchedule(t *testing.T) {
	sys := buildTwo(t, sched.FixedPriority{})
	var segs []engine.Segment
	sys.TraceFn = func(s engine.Segment) { segs = append(segs, s) }
	sys.Run(vtime.Time(vtime.MS(20)))

	// Expected: P0 runs [0,2), P1 [2,6), idle [6,10), P0 [10,12), idle [12,20).
	want := []engine.Segment{
		{Start: 0, End: vtime.Time(vtime.MS(2)), Partition: 0},
		{Start: vtime.Time(vtime.MS(2)), End: vtime.Time(vtime.MS(6)), Partition: 1},
		{Start: vtime.Time(vtime.MS(6)), End: vtime.Time(vtime.MS(10)), Partition: -1},
		{Start: vtime.Time(vtime.MS(10)), End: vtime.Time(vtime.MS(12)), Partition: 0},
		{Start: vtime.Time(vtime.MS(12)), End: vtime.Time(vtime.MS(20)), Partition: -1},
	}
	if len(segs) != len(want) {
		t.Fatalf("segments: got %d %v, want %d", len(segs), segs, len(want))
	}
	for i, w := range want {
		if segs[i] != w {
			t.Errorf("segment %d = %+v, want %+v", i, segs[i], w)
		}
	}
}

func TestCountersAndAccounting(t *testing.T) {
	sys := buildTwo(t, sched.FixedPriority{})
	horizon := vtime.Time(vtime.MS(1000))
	sys.Run(horizon)
	c := sys.Counters
	if c.Decisions == 0 || c.Switches == 0 {
		t.Fatal("no decisions/switches recorded")
	}
	if got := c.BusyTime + c.IdleTime; got != vtime.Duration(horizon) {
		t.Errorf("busy+idle = %v, want %v", got, horizon)
	}
	// P0 runs 2ms per 10ms, P1 4ms per 20ms → busy = 40% of 1s.
	if c.BusyTime != vtime.MS(400) {
		t.Errorf("busy = %v, want 400ms", c.BusyTime)
	}
	if sys.PartitionTime(0) != vtime.MS(200) || sys.PartitionTime(1) != vtime.MS(200) {
		t.Errorf("per-partition time: %v, %v", sys.PartitionTime(0), sys.PartitionTime(1))
	}
}

func TestSegmentsContiguous(t *testing.T) {
	sys := buildTwo(t, sched.FixedPriority{})
	var prevEnd vtime.Time
	sys.TraceFn = func(s engine.Segment) {
		if s.Start != prevEnd {
			t.Fatalf("gap in trace: segment starts at %v, previous ended at %v", s.Start, prevEnd)
		}
		if s.End < s.Start {
			t.Fatalf("negative segment %+v", s)
		}
		prevEnd = s.End
	}
	sys.Run(vtime.Time(vtime.MS(500)))
	if prevEnd != vtime.Time(vtime.MS(500)) {
		t.Errorf("trace ends at %v, want 500ms", prevEnd)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() [5]int64 {
		sys := buildTwo(t, sched.FixedPriority{})
		sys.Run(vtime.Time(vtime.MS(777)))
		c := sys.Counters
		return [5]int64{c.Decisions, c.Switches, c.IdleDecisions, int64(c.BusyTime), int64(c.IdleTime)}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs diverged: %v vs %v", a, b)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	sys := buildTwo(t, sched.FixedPriority{})
	sys.Run(vtime.Time(vtime.MS(100)))
	sys.Reset()
	if sys.Now() != 0 || sys.Counters.Decisions != 0 || sys.PartitionTime(0) != 0 {
		t.Fatal("Reset incomplete")
	}
	// The re-run reproduces the same schedule.
	var segs []engine.Segment
	sys.TraceFn = func(s engine.Segment) { segs = append(segs, s) }
	sys.Run(vtime.Time(vtime.MS(10)))
	if len(segs) == 0 || segs[0].Partition != 0 || segs[0].End != vtime.Time(vtime.MS(2)) {
		t.Errorf("post-reset schedule wrong: %+v", segs)
	}
}

func TestRunnableOrder(t *testing.T) {
	sys := buildTwo(t, sched.FixedPriority{})
	// Partition state is mutated behind the engine's back here, which the
	// runnable bitset cannot observe; the scan path re-derives runnability
	// on every call and is the documented escape hatch for this.
	sys.ScanStepping = true
	// At t=0 both are runnable, in priority order.
	for _, p := range sys.Partitions {
		p.Server.AdvanceTo(0)
		p.Local.ReleaseUpTo(0)
	}
	r := sys.Runnable()
	if len(r) != 2 || r[0].Index != 0 || r[1].Index != 1 {
		t.Errorf("runnable = %v", r)
	}
}

// TestRunnableMaskMatchesScan pins the indexed-mode Runnable (bitset walk)
// to the linear-scan reference on an engine-driven schedule: after every
// segment the two must agree element for element.
func TestRunnableMaskMatchesScan(t *testing.T) {
	sys := buildTwo(t, sched.FixedPriority{})
	sys.TraceFn = func(engine.Segment) {
		masked := sys.Runnable()
		got := make([]int, len(masked))
		for i, p := range masked {
			got[i] = p.Index
		}
		var want []int
		for _, p := range sys.Partitions {
			if p.Runnable() {
				want = append(want, p.Index)
			}
		}
		if !slices.Equal(got, want) {
			t.Fatalf("at %v: mask runnable %v, scan runnable %v", sys.Now(), got, want)
		}
	}
	sys.Run(vtime.Time(vtime.MS(500)))
}

func TestTDMAIsolation(t *testing.T) {
	// Under TDMA, each partition only ever runs inside its own slot.
	spec := model.SystemSpec{
		Name: "tdma",
		Partitions: []model.PartitionSpec{
			{Name: "A", Budget: vtime.MS(2), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(2)}}},
			{Name: "B", Budget: vtime.MS(3), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "b", Period: vtime.MS(10), WCET: vtime.MS(3)}}},
		},
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := sched.NewTDMA(built.Partitions)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Frame() != vtime.MS(10) {
		t.Fatalf("frame = %v, want 10ms", pol.Frame())
	}
	sys, err := engine.New(built.Partitions, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.TraceFn = func(s engine.Segment) {
		if s.Partition < 0 {
			return
		}
		off := vtime.Duration(int64(s.Start) % int64(vtime.MS(10)))
		endOff := off + s.End.Sub(s.Start)
		switch s.Partition {
		case 0:
			if off < 0 || endOff > vtime.MS(2) {
				t.Fatalf("A ran outside its slot: %+v", s)
			}
		case 1:
			if off < vtime.MS(2) || endOff > vtime.MS(5) {
				t.Fatalf("B ran outside its slot: %+v", s)
			}
		}
	}
	sys.Run(vtime.Time(vtime.MS(200)))
	// Both partitions still get their full budget.
	if sys.PartitionTime(0) != vtime.MS(40) || sys.PartitionTime(1) != vtime.MS(60) {
		t.Errorf("TDMA partition times: %v, %v", sys.PartitionTime(0), sys.PartitionTime(1))
	}
}

// misbehavingPolicy returns the LOWEST-priority partition regardless of
// runnability — exercising the engine's defensive used==0 path.
type misbehavingPolicy struct{}

func (misbehavingPolicy) Name() string            { return "misbehaving" }
func (misbehavingPolicy) Quantum() vtime.Duration { return vtime.Millisecond }
func (m misbehavingPolicy) Pick(sys *engine.System, _ vtime.Time) *partition.Partition {
	return sys.Partitions[len(sys.Partitions)-1]
}

func TestEngineSurvivesMisbehavingPolicy(t *testing.T) {
	sys := buildTwo(t, misbehavingPolicy{})
	// The policy insists on P1 even when it has no ready work or budget;
	// the engine must keep time moving and account the slack as idle.
	sys.Run(vtime.Time(vtime.MS(200)))
	if sys.Now() != vtime.Time(vtime.MS(200)) {
		t.Fatalf("simulation stalled at %v", sys.Now())
	}
	c := sys.Counters
	if c.BusyTime+c.IdleTime != vtime.MS(200) {
		t.Errorf("accounting broken: busy %v + idle %v", c.BusyTime, c.IdleTime)
	}
	// P1 can still never exceed its budget ratio.
	if share := sys.PartitionTime(1).Seconds() / 0.2; share > 0.2+1e-9 {
		t.Errorf("P1 share %.4f above budget ratio", share)
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	sys := buildTwo(t, sched.FixedPriority{})
	sys.RunFor(vtime.MS(30))
	if sys.Now() != vtime.Time(vtime.MS(30)) {
		t.Errorf("now = %v", sys.Now())
	}
	sys.RunFor(vtime.MS(15))
	if sys.Now() != vtime.Time(vtime.MS(45)) {
		t.Errorf("now = %v", sys.Now())
	}
}

func TestMisbehavingPolicyCannotOverdrawBudget(t *testing.T) {
	// A partition whose task outlasts its budget stays ready while inactive;
	// a policy that insists on running it must not overdraw the budget (the
	// engine clamps execution to the remaining budget).
	spec := model.SystemSpec{
		Name: "overrun",
		Partitions: []model.PartitionSpec{
			{Name: "P0", Budget: vtime.MS(2), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(2)}}},
			{Name: "P1", Budget: vtime.MS(4), Period: vtime.MS(20),
				Tasks: []model.TaskSpec{{Name: "b", Period: vtime.MS(20), WCET: vtime.MS(6)}}},
		},
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, misbehavingPolicy{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(vtime.Time(vtime.MS(500))) // must not panic
	if share := sys.PartitionTime(1).Seconds() / 0.5; share > 0.2+1e-9 {
		t.Errorf("P1 overdrew its budget: share %.4f", share)
	}
}
