package engine_test

import (
	"bytes"
	"fmt"
	"testing"

	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

// equalPart builds one partition spec with budget b, period p, and one task
// at the same rate, so releases and replenishments of same-parameter
// partitions collide on the timeline.
func equalPart(name string, b, p vtime.Duration) model.PartitionSpec {
	return model.PartitionSpec{
		Name: name, Budget: b, Period: p,
		Tasks: []model.TaskSpec{{Name: name + ".t", Period: p, WCET: b}},
	}
}

// tieSpecs are workloads constructed so per-partition next-event times
// collide: the delivery order at an equal timestamp is the visible
// tie-break. Every spec is run under both stepping modes and the telemetry
// streams must match byte for byte.
var tieSpecs = []struct {
	name string
	spec model.SystemSpec
}{
	{"all-equal", model.SystemSpec{Name: "all-equal", Partitions: []model.PartitionSpec{
		equalPart("P0", vtime.MS(1), vtime.MS(8)),
		equalPart("P1", vtime.MS(1), vtime.MS(8)),
		equalPart("P2", vtime.MS(1), vtime.MS(8)),
		equalPart("P3", vtime.MS(1), vtime.MS(8)),
	}}},
	{"pairwise", model.SystemSpec{Name: "pairwise", Partitions: []model.PartitionSpec{
		equalPart("A0", vtime.MS(1), vtime.MS(10)),
		equalPart("A1", vtime.MS(1), vtime.MS(10)),
		equalPart("B0", vtime.MS(2), vtime.MS(20)),
		equalPart("B1", vtime.MS(2), vtime.MS(20)),
	}}},
	{"harmonic", model.SystemSpec{Name: "harmonic", Partitions: []model.PartitionSpec{
		equalPart("H0", vtime.MS(1), vtime.MS(5)),
		equalPart("H1", vtime.MS(1), vtime.MS(10)),
		equalPart("H2", vtime.MS(2), vtime.MS(20)),
	}}},
}

// tieRun executes spec under kind for dur and returns the JSONL-serialized
// telemetry stream.
func tieRun(t *testing.T, spec model.SystemSpec, kind policies.Kind, seed uint64, dur vtime.Duration, scan bool) []byte {
	t.Helper()
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	sys.ScanStepping = scan
	rec := telemetry.NewRecorder()
	sys.AttachTelemetry(rec)
	sys.Run(vtime.Time(dur))
	sys.FlushTelemetry()
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	for _, e := range rec.Events() {
		sink.Event(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTieBreakDeterminism pins the equal-timestamp contract: when several
// partitions have local events due at the same instant, both stepping modes
// deliver them in ascending partition index, so the full telemetry streams
// are byte-identical. The workloads are built to collide (equal and harmonic
// periods); any heap-order leak in the indexed path would reorder Release or
// Depleted events and break the comparison.
func TestTieBreakDeterminism(t *testing.T) {
	for _, tc := range tieSpecs {
		for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
			t.Run(fmt.Sprintf("%s/%s", tc.name, kind), func(t *testing.T) {
				indexed := tieRun(t, tc.spec, kind, 7, vtime.MS(200), false)
				scan := tieRun(t, tc.spec, kind, 7, vtime.MS(200), true)
				if !bytes.Equal(indexed, scan) {
					t.Errorf("telemetry streams diverge: indexed %d bytes, scan %d bytes",
						len(indexed), len(scan))
				}
				if len(indexed) == 0 {
					t.Error("empty telemetry stream")
				}
			})
		}
	}
}

// TestTieBreakOrderPinned fixes the visible order itself, not just
// mode-equivalence: four identical partitions all release at t=0 and every
// 8 ms after, and under fixed priority the engine must run them in ascending
// partition index each round. This is the order the scan path has always
// produced; the indexed path sorts its due set to preserve it.
func TestTieBreakOrderPinned(t *testing.T) {
	for _, scan := range []bool{false, true} {
		built, err := tieSpecs[0].spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		pol, err := policies.Build(policies.NoRandom, built.Partitions, policies.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := engine.New(built.Partitions, pol, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		sys.ScanStepping = scan
		var segs []engine.Segment
		sys.TraceFn = func(s engine.Segment) { segs = append(segs, s) }
		sys.Run(vtime.Time(vtime.MS(16)))

		want := []engine.Segment{
			{Start: 0, End: vtime.Time(vtime.MS(1)), Partition: 0},
			{Start: vtime.Time(vtime.MS(1)), End: vtime.Time(vtime.MS(2)), Partition: 1},
			{Start: vtime.Time(vtime.MS(2)), End: vtime.Time(vtime.MS(3)), Partition: 2},
			{Start: vtime.Time(vtime.MS(3)), End: vtime.Time(vtime.MS(4)), Partition: 3},
			{Start: vtime.Time(vtime.MS(4)), End: vtime.Time(vtime.MS(8)), Partition: -1},
			{Start: vtime.Time(vtime.MS(8)), End: vtime.Time(vtime.MS(9)), Partition: 0},
			{Start: vtime.Time(vtime.MS(9)), End: vtime.Time(vtime.MS(10)), Partition: 1},
			{Start: vtime.Time(vtime.MS(10)), End: vtime.Time(vtime.MS(11)), Partition: 2},
			{Start: vtime.Time(vtime.MS(11)), End: vtime.Time(vtime.MS(12)), Partition: 3},
			{Start: vtime.Time(vtime.MS(12)), End: vtime.Time(vtime.MS(16)), Partition: -1},
		}
		if len(segs) != len(want) {
			t.Fatalf("scan=%v: %d segments %v, want %d", scan, len(segs), segs, len(want))
		}
		for i, w := range want {
			if segs[i] != w {
				t.Errorf("scan=%v: segment %d = %+v, want %+v", scan, i, segs[i], w)
			}
		}
	}
}
