//go:build timedice_mutation

package engine_test

// Mutation test for the snapshot battery itself: built with -tags
// timedice_mutation the encoder silently drops sporadic-server replenishment
// chunks (see mutation_on.go), and the differential restore harness MUST
// notice — a restored system that lost its pending supply replenishes later
// and diverges from the straight line. If this test fails, the battery has a
// blind spot.

import (
	"sync"
	"testing"

	"timedice/internal/experiments/runner"
	"timedice/internal/gen"
	"timedice/internal/rng"
	"timedice/internal/server"
)

func TestSnapshotMutationCaught(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 60
	}
	opts := gen.DefaultOptions()
	opts.Servers = []server.Policy{server.Sporadic} // the mutated state
	r := rng.New(0xdead)
	scs := make([]gen.Scenario, n)
	for i := range scs {
		scs[i] = gen.Generate(r, opts)
	}
	var mu sync.Mutex
	caught := 0
	_, err := runner.Map(0, scs, func(i int, sc gen.Scenario) (struct{}, error) {
		mismatch, err := snapshotRoundTrip(sc)
		if err != nil {
			return struct{}{}, err
		}
		if mismatch != "" {
			mu.Lock()
			caught++
			mu.Unlock()
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if caught == 0 {
		t.Fatalf("mutant encoder (dropped sporadic supply) survived %d scenarios: the differential restore battery has a blind spot", n)
	}
	t.Logf("mutant caught by %d/%d scenarios", caught, n)
}
