package engine_test

import (
	"fmt"
	"testing"

	"timedice/internal/core"
	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/partition"
	"timedice/internal/rng"
	"timedice/internal/sched"
	"timedice/internal/server"
	"timedice/internal/task"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// policiesUnderTest builds one of each global policy for the partitions.
func policiesUnderTest(t *testing.T, parts []*partition.Partition) []engine.GlobalPolicy {
	t.Helper()
	tdma, err := sched.NewTDMA(parts)
	if err != nil {
		t.Fatalf("tdma: %v", err)
	}
	return []engine.GlobalPolicy{
		sched.FixedPriority{},
		core.NewPolicy(),
		core.NewPolicy(core.WithSelection(core.SelectUniform)),
		tdma,
	}
}

// TestEngineInvariantsAcrossPoliciesAndServers runs randomized systems under
// every (policy × server) combination and checks the engine's fundamental
// invariants:
//
//  1. time accounting: busy + idle == elapsed;
//  2. supply upper bound: no partition executes more than B_i in any
//     replenishment-aligned window [kT_i, (k+1)T_i) (for the periodic
//     servers) — the temporal-isolation guarantee;
//  3. trace segments are contiguous, non-overlapping, and only name valid
//     partitions;
//  4. determinism: identical seeds yield identical counters.
func TestEngineInvariantsAcrossPoliciesAndServers(t *testing.T) {
	r := rng.New(2024)
	horizon := vtime.Time(2 * vtime.Second)

	for sysIdx := 0; sysIdx < 6; sysIdx++ {
		spec := workload.Random(r, workload.DefaultRandomOptions())
		for _, srv := range []server.Policy{server.Polling, server.Deferrable} {
			localSpec := spec
			localSpec.Partitions = append([]model.PartitionSpec(nil), spec.Partitions...)
			for i := range localSpec.Partitions {
				localSpec.Partitions[i].Server = srv
			}
			built, err := localSpec.Build()
			if err != nil {
				t.Fatalf("system %d: %v", sysIdx, err)
			}
			for _, pol := range policiesUnderTest(t, built.Partitions) {
				name := fmt.Sprintf("sys%d/%v/%s", sysIdx, srv, pol.Name())
				t.Run(name, func(t *testing.T) {
					// Fresh build per run (policies may keep state).
					b2, err := localSpec.Build()
					if err != nil {
						t.Fatal(err)
					}
					var pol2 engine.GlobalPolicy
					switch pol.Name() {
					case "NoRandom":
						pol2 = sched.FixedPriority{}
					case "TimeDiceW":
						pol2 = core.NewPolicy()
					case "TimeDiceU":
						pol2 = core.NewPolicy(core.WithSelection(core.SelectUniform))
					case "TDMA":
						pol2, err = sched.NewTDMA(b2.Partitions)
						if err != nil {
							t.Skipf("tdma infeasible: %v", err)
						}
					}
					sys, err := engine.New(b2.Partitions, pol2, rng.New(7))
					if err != nil {
						t.Fatal(err)
					}

					supply := make([]map[int64]vtime.Duration, len(localSpec.Partitions))
					for i := range supply {
						supply[i] = make(map[int64]vtime.Duration)
					}
					var prevEnd vtime.Time
					sys.TraceFn = func(seg engine.Segment) {
						if seg.Start != prevEnd {
							t.Fatalf("trace gap at %v (prev end %v)", seg.Start, prevEnd)
						}
						prevEnd = seg.End
						if seg.Partition < -1 || seg.Partition >= len(localSpec.Partitions) {
							t.Fatalf("segment names invalid partition %d", seg.Partition)
						}
						if seg.Partition < 0 {
							return
						}
						T := localSpec.Partitions[seg.Partition].Period
						for t0 := seg.Start; t0 < seg.End; {
							k := int64(t0) / int64(T)
							winEnd := vtime.Time((k + 1) * int64(T))
							chunk := seg.End.Min(winEnd).Sub(t0)
							supply[seg.Partition][k] += chunk
							t0 = t0.Add(chunk)
						}
					}
					sys.Run(horizon)

					c := sys.Counters
					if got := c.BusyTime + c.IdleTime; got != vtime.Duration(horizon) {
						t.Errorf("busy+idle = %v, want %v", got, horizon)
					}
					for i, p := range localSpec.Partitions {
						for k, used := range supply[i] {
							if used > p.Budget {
								t.Errorf("%s exceeded budget in period %d: %v > %v",
									p.Name, k, used, p.Budget)
							}
						}
					}
				})
			}
		}
	}
}

// TestSporadicServerInvariant verifies the sliding-window supply bound for
// the sporadic server: no partition consumes more than B_i in ANY window of
// length T_i (the defining property of the sporadic server, stronger than
// the periodic-window bound).
func TestSporadicServerInvariant(t *testing.T) {
	spec := workload.ThreePartition()
	spec.Partitions = append([]model.PartitionSpec(nil), spec.Partitions...)
	for i := range spec.Partitions {
		spec.Partitions[i].Server = server.Sporadic
		// Make every task hungry: demand = budget at every period.
		spec.Partitions[i].Tasks = []model.TaskSpec{{
			Name:   "greedy",
			Period: spec.Partitions[i].Period,
			WCET:   spec.Partitions[i].Budget,
		}}
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, sched.FixedPriority{}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	type segment struct {
		start, end vtime.Time
	}
	perPart := make([][]segment, len(spec.Partitions))
	sys.TraceFn = func(seg engine.Segment) {
		if seg.Partition >= 0 {
			perPart[seg.Partition] = append(perPart[seg.Partition], segment{seg.Start, seg.End})
		}
	}
	sys.Run(vtime.Time(2 * vtime.Second))

	for i, p := range spec.Partitions {
		T, B := p.Period, p.Budget
		segs := perPart[i]
		// Slide a window starting at each segment start.
		for a := range segs {
			winStart := segs[a].start
			winEnd := winStart.Add(T)
			var used vtime.Duration
			for _, s := range segs[a:] {
				if s.start >= winEnd {
					break
				}
				used += s.end.Min(winEnd).Sub(s.start)
			}
			if used > B {
				t.Fatalf("%s: %v consumed in sliding window [%v,%v), budget %v",
					p.Name, used, winStart, winEnd, B)
			}
		}
	}
}

// TestEngineLongRunStability pushes a 20-partition system for a longer
// horizon under TimeDice and checks nothing degenerates (steady decision
// rate, no budget violations at the aggregate level).
func TestEngineLongRunStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	spec := workload.Scale(workload.TableIBase(), 4)
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, core.NewPolicy(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 20 * vtime.Second
	sys.Run(vtime.Time(horizon))
	c := sys.Counters
	decRate := float64(c.Decisions) / horizon.Seconds()
	if decRate < 500 || decRate > 20000 {
		t.Errorf("decision rate %v/s out of sane range", decRate)
	}
	for i, p := range spec.Partitions {
		maxShare := float64(p.Budget) / float64(p.Period)
		got := sys.PartitionTime(i).Seconds() / horizon.Seconds()
		if got > maxShare+1e-9 {
			t.Errorf("%s CPU share %.4f exceeds budget ratio %.4f", p.Name, got, maxShare)
		}
	}
}

// TestAdversarialTasksCannotBreachIsolation pits a misbehaving partition —
// tasks that arrive as fast as allowed and always demand their full WCET —
// against well-behaved ones, under every policy. Temporal isolation must
// hold: no partition exceeds its budget in any replenishment period, and the
// well-behaved partitions never miss deadlines.
func TestAdversarialTasksCannotBreachIsolation(t *testing.T) {
	spec := model.SystemSpec{
		Name: "adversarial",
		Partitions: []model.PartitionSpec{
			{Name: "victim", Budget: vtime.MS(2), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "v", Period: vtime.MS(20), WCET: vtime.MS(2)}}},
			{Name: "attacker", Budget: vtime.MS(4), Period: vtime.MS(20),
				Tasks: []model.TaskSpec{
					{Name: "burst1", Period: vtime.MS(5), WCET: vtime.MS(4)},
					{Name: "burst2", Period: vtime.MS(5), WCET: vtime.MS(4)},
				}},
			{Name: "victim2", Budget: vtime.MS(3), Period: vtime.MS(30),
				Tasks: []model.TaskSpec{{Name: "w", Period: vtime.MS(60), WCET: vtime.MS(3)}}},
		},
	}
	for _, mk := range []func([]*partition.Partition) (engine.GlobalPolicy, error){
		func([]*partition.Partition) (engine.GlobalPolicy, error) { return sched.FixedPriority{}, nil },
		func([]*partition.Partition) (engine.GlobalPolicy, error) { return core.NewPolicy(), nil },
	} {
		built, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		pol, err := mk(built.Partitions)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := engine.New(built.Partitions, pol, rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		// The attacker's backlog grows without bound (demand 160% of its
		// budget); the victims must be unaffected.
		missesV, missesW := 0, 0
		built.Sched["victim"].OnComplete = func(c task.Completion) {
			if c.Response > vtime.MS(20) {
				missesV++
			}
		}
		built.Sched["victim2"].OnComplete = func(c task.Completion) {
			if c.Response > vtime.MS(60) {
				missesW++
			}
		}
		const horizon = 5 * vtime.Second
		sys.Run(vtime.Time(horizon))
		if missesV > 0 || missesW > 0 {
			t.Errorf("%s: victims missed deadlines (v=%d, w=%d) despite budget isolation",
				pol.Name(), missesV, missesW)
		}
		// The attacker is confined to its budget share.
		share := sys.PartitionTime(1).Seconds() / horizon.Seconds()
		if share > 0.2+1e-9 {
			t.Errorf("%s: attacker CPU share %.4f exceeds its 20%% budget ratio", pol.Name(), share)
		}
	}
}
