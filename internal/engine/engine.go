// Package engine is the hierarchical scheduling simulator: a discrete-event
// engine that reproduces the two-level scheduling of the paper's Fig. 1.
// At every scheduling decision point — task arrival, task completion, budget
// depletion, budget replenishment, or quantum expiry — the engine asks the
// configured global policy which partition takes the CPU, then lets that
// partition's local fixed-priority scheduler run its tasks until the next
// decision point, depleting the partition's budget for the amount executed.
//
// The engine is single-threaded and deterministic: given the same
// configuration and seed it produces the identical schedule, which the test
// suite relies on.
package engine

import (
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"time"

	"timedice/internal/eventq"
	"timedice/internal/partition"
	"timedice/internal/rng"
	"timedice/internal/server"
	"timedice/internal/task"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

// GlobalPolicy selects the partition to execute at each decision point.
//
// Pick returns the partition that takes the CPU for the upcoming slice, or
// nil to idle the CPU. Implementations must only return partitions that are
// Runnable, or nil. Quantum bounds the slice length for randomizing policies
// (the paper's MIN_INV_SIZE); a zero quantum means the slice runs until the
// next natural event, which is the behaviour of the default (NoRandom)
// scheduler.
type GlobalPolicy interface {
	Name() string
	Quantum() vtime.Duration
	Pick(sys *System, now vtime.Time) *partition.Partition
}

// BoundaryPolicy is an optional extension of GlobalPolicy for policies with
// their own decision boundaries beyond a fixed quantum (e.g. TDMA slot
// edges). NextBoundary returns the next instant strictly after now at which
// the policy must be consulted again.
type BoundaryPolicy interface {
	NextBoundary(now vtime.Time) vtime.Time
}

// DecisionDetailer is an optional extension of GlobalPolicy that reports
// detail about the most recent Pick: the candidate-set size considered and
// the number of schedulability tests run. The engine attaches the candidate
// count to the telemetry KindDecision event when available.
type DecisionDetailer interface {
	DecisionDetail() (candidates, tests int64)
}

// Segment is one maximal interval of the schedule trace during which the CPU
// ran a single partition (or idled).
type Segment struct {
	Start, End vtime.Time
	// Partition is the index of the executing partition in the system's
	// priority-ordered slice, or -1 for idle time.
	Partition int
}

// Counters aggregates the schedule statistics reported in Table V and
// Fig. 17 of the paper.
type Counters struct {
	Decisions     int64          // global scheduling decisions made
	Switches      int64          // decisions whose outcome differed from the previous one
	IdleDecisions int64          // decisions that chose to idle
	BusyTime      vtime.Duration // CPU time spent executing partitions
	IdleTime      vtime.Duration // CPU time spent idle
	// PolicyTime and PolicySamples accumulate the wall-clock time inside Pick
	// (Fig. 17) and the number of timed calls. They are maintained only when
	// System.MeasureLatency is set — the unmeasured hot path makes no clock
	// syscalls at all — and are zero otherwise.
	PolicyTime    time.Duration
	PolicySamples int64

	// DeadlineMisses counts jobs that completed after their absolute
	// deadline (arrival + relative deadline). Jobs still pending when the
	// run ends are not counted. Always maintained.
	DeadlineMisses int64
	// InversionWindows and InversionTime count/accumulate the
	// priority-inversion windows of the schedule: maximal runs of decisions
	// during which the CPU ran a partition (or idled) while a strictly
	// higher-priority partition was runnable. They are maintained only while
	// a telemetry sink is attached, because the detection scan is extra
	// hot-path work the nil-sink configuration must not pay.
	InversionWindows int64
	InversionTime    vtime.Duration
	// PolicyLatency is a fixed-bucket streaming histogram (microseconds) of
	// individual Pick wall-clock latencies, populated when MeasureLatency is
	// set. Constant memory regardless of run length. Allocated once at the
	// start of Run (never mid-step) and retained across Reset.
	PolicyLatency *telemetry.Histogram

	// MinAdvances counts activations of the defensive minimum-advance
	// fallback: steps where every horizon bound collapsed to now and the
	// engine forced a 1µs advance to keep the simulation moving. Well-behaved
	// policies never trigger it — the simfuzz oracles treat a non-zero count
	// as a violation — so it is a tripwire for misbehaving custom policies.
	MinAdvances int64
}

// System is a complete simulated system: partitions under one global policy.
type System struct {
	// Partitions in decreasing priority order (index 0 = highest).
	Partitions []*partition.Partition
	Policy     GlobalPolicy
	Rand       *rng.Rand

	// TraceFn, when non-nil, receives every schedule segment as it is
	// produced. Segments are contiguous and non-overlapping.
	TraceFn func(Segment)
	// MeasureLatency streams the wall-clock latency of every Pick call into
	// the Counters.PolicyLatency histogram (Table IV). Off by default.
	MeasureLatency bool
	// ScanStepping selects the reference O(P) stepping implementation: full
	// partition scans for event delivery, polling-idle notification, and the
	// horizon min-reduce, exactly as the engine worked before the indexed
	// stepping path. The default (false) uses the index-min heap and the
	// runnable bitset, whose per-step cost depends on the number of due and
	// runnable partitions rather than on P. Both paths produce byte-identical
	// event streams (pinned by the gen differential suite); the scan path
	// exists as the differential/benchmark baseline, like UncachedTimeDice
	// does for the verdict cache. Toggling mid-run is safe: the heap keys and
	// the bitset are maintained in both modes.
	ScanStepping bool

	Counters Counters

	now     vtime.Time
	running int // index of last picked partition, or -1
	perPart []vtime.Duration

	// nextEv caches each partition's NextLocalEvent (earliest replenishment
	// or task arrival). An entry is exact between refreshes: a partition's
	// next event can only change when events due at or before now are
	// delivered to it, or when it executes (budget consumption schedules the
	// replacement replenishment) — both sites refresh the entry. This lets
	// step skip the full-partition delivery and horizon scans for quiescent
	// partitions. Entries start at zero so the first step touches everyone
	// (task arrival anchors are computed lazily on first delivery).
	nextEv []vtime.Time
	// evq mirrors nextEv as a 4-ary index-min heap: evq.Key(i) == nextEv[i]
	// at every instant (setNextEv writes both). The heap answers the two
	// questions step asks of nextEv — "who is due?" (CollectDue) and "what is
	// the earliest future event?" (MinKey) — in time proportional to the
	// answer instead of O(P).
	evq *eventq.IndexMin
	// readyMask is a bitset over partition indices with bit i set iff
	// Partitions[i].Runnable() (active server ∧ ready work). It is refreshed
	// at the only sites where runnability can change — event delivery and
	// execution — and backs Runnable and the inversion scan in indexed mode.
	// NoteIdle never flips a bit: it only fires on partitions with no ready
	// work, which are not runnable before or after the discard.
	readyMask []uint64
	// dueBuf is the reusable scratch for the delivery phase's due set.
	dueBuf []int32
	// runnableBuf is the reusable backing array for Runnable.
	runnableBuf []*partition.Partition

	// epoch and stamps drive the incremental schedulability-verdict cache
	// (core.Cache). epoch counts discontinuous state changes; stamps[i] is the
	// epoch value at partition i's most recent one — job release, completion,
	// budget depletion, replenishment delivery, a silent period-boundary
	// advance, or a sporadic server scheduling a future supply chunk. Between
	// stamps a partition's scheduling state evolves only by the passage of
	// time (budget draining while it runs), which cached verdicts account for.
	epoch  uint64
	stamps []uint64

	sink     telemetry.Sink // nil ⇒ telemetry disabled (fast path)
	invOpen  bool           // an inversion window is currently open
	invStart vtime.Time
}

// ErrNoPartitions is returned by New when the partition list is empty.
var ErrNoPartitions = errors.New("engine: system needs at least one partition")

// New assembles a system. Partitions are sorted by priority internally; the
// priorities must be unique. A nil Rand defaults to seed 1.
func New(parts []*partition.Partition, policy GlobalPolicy, rnd *rng.Rand) (*System, error) {
	if len(parts) == 0 {
		return nil, ErrNoPartitions
	}
	if policy == nil {
		return nil, errors.New("engine: nil global policy")
	}
	ordered := make([]*partition.Partition, len(parts))
	copy(ordered, parts)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].Priority < ordered[j-1].Priority; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	for i := 1; i < len(ordered); i++ {
		if ordered[i].Priority == ordered[i-1].Priority {
			return nil, fmt.Errorf("engine: duplicate partition priority %d (%q, %q)",
				ordered[i].Priority, ordered[i-1].Name, ordered[i].Name)
		}
	}
	for i, p := range ordered {
		p.Index = i
	}
	if rnd == nil {
		rnd = rng.New(1)
	}
	s := &System{
		Partitions:  ordered,
		Policy:      policy,
		Rand:        rnd,
		running:     -1,
		perPart:     make([]vtime.Duration, len(ordered)),
		nextEv:      make([]vtime.Time, len(ordered)),
		evq:         eventq.NewIndexMin(len(ordered)),
		readyMask:   make([]uint64, (len(ordered)+63)/64),
		dueBuf:      make([]int32, 0, len(ordered)),
		runnableBuf: make([]*partition.Partition, 0, len(ordered)),
		stamps:      make([]uint64, len(ordered)),
	}
	// The lifecycle observers are installed unconditionally: they maintain
	// the always-on Counters (deadline misses) and forward to the telemetry
	// sink when one is attached. With no sink each callback is a nil check.
	for i, p := range ordered {
		obs := &partObserver{sys: s, part: i}
		p.SetObservers(obs, obs)
	}
	return s, nil
}

// AttachTelemetry connects a telemetry sink to the system. All subsequent
// scheduling activity is emitted as structured events (see package
// telemetry for the taxonomy). Pass nil to detach; detached, the emission
// paths reduce to nil checks and the engine benchmarks are unaffected.
// Attach before Run — events are not back-filled.
func (s *System) AttachTelemetry(sink telemetry.Sink) { s.sink = sink }

// Telemetry returns the attached sink, or nil.
func (s *System) Telemetry() telemetry.Sink { return s.sink }

// partObserver forwards one partition's job and budget lifecycle into the
// system: always-on counters plus the telemetry sink when attached. It
// implements task.Observer and server.Observer.
type partObserver struct {
	sys  *System
	part int
}

var (
	_ task.Observer = (*partObserver)(nil)
)

func (o *partObserver) JobReleased(j *task.Job) {
	o.sys.bumpStamp(o.part)
	if sink := o.sys.sink; sink != nil {
		sink.Event(telemetry.Event{
			Time: j.Arrival, Kind: telemetry.KindTaskArrival,
			Partition: o.part, Task: j.Task.Name, Job: j.Index,
		})
	}
}

func (o *partObserver) JobDispatched(j *task.Job, at vtime.Time, first bool) {
	if sink := o.sys.sink; sink != nil {
		var aux int64
		if first {
			aux = 1
		}
		sink.Event(telemetry.Event{
			Time: at, Kind: telemetry.KindTaskStart,
			Partition: o.part, Task: j.Task.Name, Job: j.Index, Aux: aux,
		})
	}
}

func (o *partObserver) JobPreempted(j *task.Job, at vtime.Time) {
	if sink := o.sys.sink; sink != nil {
		sink.Event(telemetry.Event{
			Time: at, Kind: telemetry.KindTaskPreempt,
			Partition: o.part, Task: j.Task.Name, Job: j.Index,
		})
	}
}

func (o *partObserver) JobCompleted(c task.Completion) {
	o.sys.bumpStamp(o.part)
	lateness := c.Response - c.Job.Task.EffectiveDeadline()
	if lateness > 0 {
		o.sys.Counters.DeadlineMisses++
	}
	if sink := o.sys.sink; sink != nil {
		sink.Event(telemetry.Event{
			Time: c.Finish, Kind: telemetry.KindTaskComplete,
			Partition: o.part, Task: c.Job.Task.Name, Job: c.Job.Index,
			Dur: c.Response,
		})
		if lateness > 0 {
			sink.Event(telemetry.Event{
				Time: c.Finish, Kind: telemetry.KindDeadlineMiss,
				Partition: o.part, Task: c.Job.Task.Name, Job: c.Job.Index,
				Dur: lateness,
			})
		}
	}
}

func (o *partObserver) Replenished(at vtime.Time, amount, remaining vtime.Duration) {
	o.sys.bumpStamp(o.part)
	if sink := o.sys.sink; sink != nil {
		sink.Event(telemetry.Event{
			Time: at, Kind: telemetry.KindBudgetReplenish,
			Partition: o.part, Dur: amount, Aux: int64(remaining),
		})
	}
}

func (o *partObserver) Depleted(at vtime.Time, discarded vtime.Duration) {
	o.sys.bumpStamp(o.part)
	if sink := o.sys.sink; sink != nil {
		var aux int64
		if discarded > 0 {
			aux = 1
		}
		sink.Event(telemetry.Event{
			Time: at, Kind: telemetry.KindBudgetDeplete,
			Partition: o.part, Dur: discarded, Aux: aux,
		})
	}
}

// StateStamps returns the per-partition state stamps (see the field doc), in
// the same priority order as Partitions. The slice is owned by the System:
// read-only, valid until the next step.
func (s *System) StateStamps() []uint64 { return s.stamps }

// Epoch returns the current state epoch. Because every stamp bump assigns
// the freshly incremented epoch to the touched partition, Epoch always
// equals the maximum of StateStamps — an O(1) substitute for scanning them.
func (s *System) Epoch() uint64 { return s.epoch }

// bumpStamp records a discontinuous state change on partition i.
func (s *System) bumpStamp(i int) {
	s.epoch++
	s.stamps[i] = s.epoch
}

// setNextEv refreshes partition i's cached next-local-event time in both the
// linear cache and the index-min heap, keeping the two views identical.
func (s *System) setNextEv(i int, t vtime.Time) {
	s.nextEv[i] = t
	s.evq.Update(i, t)
}

// updateRunnableBit re-derives readyMask bit i from the partition's current
// state. Called after the two sites that can change runnability: event
// delivery and execution.
func (s *System) updateRunnableBit(i int) {
	w, b := i>>6, uint(i&63)
	if s.Partitions[i].Runnable() {
		s.readyMask[w] |= 1 << b
	} else {
		s.readyMask[w] &^= 1 << b
	}
}

// anyRunnableBelow reports whether any partition with index < n is runnable,
// from the bitset (indexed mode only).
func (s *System) anyRunnableBelow(n int) bool {
	w := 0
	for ; (w+1)*64 <= n; w++ {
		if s.readyMask[w] != 0 {
			return true
		}
	}
	if rem := n - w*64; rem > 0 {
		return s.readyMask[w]&(1<<uint(rem)-1) != 0
	}
	return false
}

// Now returns the current simulated instant.
func (s *System) Now() vtime.Time { return s.now }

// PartitionTime returns the accumulated CPU time of partition index i.
func (s *System) PartitionTime(i int) vtime.Duration { return s.perPart[i] }

// Runnable returns the partitions that are active and have ready work, in
// decreasing priority order. This is the candidate universe global policies
// choose from; under the polling server it equals the paper's list of active
// partitions L_t.
//
// The returned slice shares a scratch buffer owned by the System: it is valid
// only until the next Runnable call and must not be retained or mutated.
func (s *System) Runnable() []*partition.Partition {
	out := s.runnableBuf[:0]
	if s.ScanStepping {
		// Reference implementation: the linear scan the bitset must agree
		// with (pinned by the differential suite).
		for _, p := range s.Partitions {
			if p.Runnable() {
				out = append(out, p)
			}
		}
	} else {
		for w, word := range s.readyMask {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				out = append(out, s.Partitions[w<<6+b])
			}
		}
	}
	s.runnableBuf = out
	return out
}

// Run advances the simulation until the given instant.
func (s *System) Run(until vtime.Time) {
	// The latency histogram is allocated here, outside the hot loop, so the
	// first measured step never allocates mid-step. It survives Reset (reset
	// to empty), so a reused system replays measured trials allocation-free.
	if s.MeasureLatency && s.Counters.PolicyLatency == nil {
		s.Counters.PolicyLatency = telemetry.NewHistogram(telemetry.LatencyBuckets())
	}
	for s.now < until {
		s.step(until)
	}
}

// RunFor advances the simulation by d.
func (s *System) RunFor(d vtime.Duration) { s.Run(s.now.Add(d)) }

// deliver applies all events due at or before now to partition i:
// replenishment-boundary advance and job releases, then refreshes the
// next-event cache/heap and the runnable bit.
func (s *System) deliver(i int, p *partition.Partition, now vtime.Time) {
	// Delivery can change the partition's replenishment anchors even without
	// firing an observer callback (a boundary advance that restores an
	// already-full budget), so the stamp bump is unconditional here.
	s.bumpStamp(i)
	p.Server.AdvanceTo(now)
	p.Local.ReleaseUpTo(now)
	s.setNextEv(i, p.NextLocalEvent())
	s.updateRunnableBit(i)
}

// noteIdleTouched gives polling servers with no pending workload the chance
// to discard their budget, visiting only the partitions that can have newly
// entered the (active ∧ no-ready-work) state this step instead of all P.
//
// The touched set is due ∪ {previously running partition}, and it is
// exhaustive: a partition's ready count only changes when jobs are released
// to it (delivery — in due) or when its jobs complete (it executed last
// step — it is s.running, still the previous pick here since the new pick
// happens after this phase), and its server only becomes active through a
// replenishment (delivery — in due). Any partition outside the set that is
// idle-active now was already idle-active when it was last touched, and its
// server discarded then. The first step after construction or Reset
// delivers to every partition (nextEv entries start at zero), which covers
// the initial full-budget/no-jobs state. Visiting in ascending index order
// replays the scan path's Depleted-event order exactly.
func (s *System) noteIdleTouched(now vtime.Time, due []int32) {
	prev := int32(-1)
	if s.running >= 0 {
		prev = int32(s.running)
	}
	merged := prev < 0
	for _, i := range due {
		if !merged && prev < i {
			s.noteIdleOne(int(prev), now)
			merged = true
		}
		if i == prev {
			merged = true
		}
		s.noteIdleOne(int(i), now)
	}
	if !merged {
		s.noteIdleOne(int(prev), now)
	}
}

func (s *System) noteIdleOne(i int, now vtime.Time) {
	p := s.Partitions[i]
	if !p.Local.HasReady() {
		// Discarding leaves the partition non-runnable either way (no ready
		// work before and after), so the readyMask bit is already clear.
		p.Server.NoteIdle(now)
	}
}

func (s *System) step(until vtime.Time) {
	now := s.now

	// Deliver every event due at or before now: replenishments and arrivals.
	// Partitions whose cached next event is still in the future are quiescent
	// and skipped — nothing is due for them. The indexed path finds the due
	// set by pruned heap descent and replays the scan path's ascending
	// partition-index delivery order exactly (the due set is sorted), so both
	// paths emit byte-identical event streams.
	if s.ScanStepping {
		for i, p := range s.Partitions {
			if s.nextEv[i] <= now {
				s.deliver(i, p, now)
			}
		}
		// Polling servers discard budget the moment they hold it with no
		// pending workload.
		for _, p := range s.Partitions {
			if !p.Local.HasReady() {
				p.Server.NoteIdle(now)
			}
		}
	} else {
		due := s.evq.CollectDue(now, s.dueBuf[:0])
		slices.Sort(due)
		s.dueBuf = due
		for _, i := range due {
			s.deliver(int(i), s.Partitions[i], now)
		}
		s.noteIdleTouched(now, due)
	}

	// Global scheduling decision. The clock reads exist only under
	// MeasureLatency; the default path makes no syscalls.
	s.Counters.Decisions++
	var pick *partition.Partition
	if s.MeasureLatency {
		t0 := time.Now()
		pick = s.Policy.Pick(s, now)
		lat := time.Since(t0)
		s.Counters.PolicyTime += lat
		s.Counters.PolicySamples++
		if h := s.Counters.PolicyLatency; h != nil { // allocated by Run
			h.Observe(float64(lat.Nanoseconds()) / 1e3)
		}
	} else {
		pick = s.Policy.Pick(s, now)
	}

	pickIdx := -1
	if pick != nil {
		pickIdx = pick.Index
	}
	if s.sink != nil {
		s.observeDecision(now, pick, pickIdx)
	}
	if pickIdx != s.running {
		s.Counters.Switches++
		s.running = pickIdx
	}
	if pick == nil {
		s.Counters.IdleDecisions++
	}

	// The slice ends at the earliest of: the horizon, any partition's next
	// replenishment or arrival (from the cache — exact, see nextEv), the
	// quantum boundary, and — if a partition runs — its budget depletion or
	// current-job completion.
	horizon := until
	if s.ScanStepping {
		for _, e := range s.nextEv {
			if e < horizon {
				horizon = e
			}
		}
	} else if e := s.evq.MinKey(); e < horizon {
		// MinKey == min(nextEv): the heap mirrors the cache exactly.
		horizon = e
	}
	if q := s.Policy.Quantum(); q > 0 {
		if qe := now.Add(q); qe < horizon {
			horizon = qe
		}
	}
	if bp, ok := s.Policy.(BoundaryPolicy); ok {
		if be := bp.NextBoundary(now); be > now && be < horizon {
			horizon = be
		}
	}
	if pick != nil {
		if be := now.Add(pick.Server.Remaining()); be < horizon {
			horizon = be
		}
		if jr := pick.Local.ShortestRemaining(); jr != vtime.Forever {
			if je := now.Add(jr); je < horizon {
				horizon = je
			}
		}
	}
	if horizon <= now {
		// All events at now were already delivered, so the earliest future
		// event is strictly later; this is a defensive fallback that keeps
		// the simulation moving even if a policy misbehaves. Counted so
		// oracles can flag policies that trigger it.
		s.Counters.MinAdvances++
		horizon = now.Add(vtime.Microsecond)
		if horizon > until {
			horizon = until
		}
	}

	d := horizon.Sub(now)
	if pick != nil {
		// Never execute beyond the remaining budget: a well-behaved policy
		// ensures d <= Remaining via the depletion bound above, but a
		// misbehaving one could pick an inactive partition with pending
		// work, and the defensive minimum-advance must not overdraw it.
		used := pick.Local.Run(now, d.Min(pick.Server.Remaining()))
		pick.Server.Consume(now, used)
		// Consuming budget schedules the replacement replenishment, so the
		// executed partition's next event may have moved; refresh its cache.
		// For a sporadic server the consumption also queues a future supply
		// chunk, which shifts the partition's supply stream mid-epoch — a
		// discontinuous change the verdict cache must observe. Plain budget
		// draining on the other policies is the time-monotone evolution cached
		// verdicts already account for, so no stamp is needed there.
		if used > 0 && pick.Server.PolicyKind() == server.Sporadic {
			s.bumpStamp(pick.Index)
		}
		s.setNextEv(pick.Index, pick.NextLocalEvent())
		s.updateRunnableBit(pick.Index)
		s.perPart[pick.Index] += used
		s.Counters.BusyTime += used
		end := now.Add(used)
		if used == 0 {
			// Defensive: a policy returned a partition with no ready work.
			end = horizon
			s.Counters.IdleTime += d
		}
		if s.TraceFn != nil {
			s.TraceFn(Segment{Start: now, End: end, Partition: pick.Index})
		}
		if s.sink != nil && end > now {
			slicePart := pick.Index
			if used == 0 {
				// Defensive branch above: the slice was actually idle.
				slicePart = -1
			}
			s.sink.Event(telemetry.Event{
				Time: now, Kind: telemetry.KindSlice,
				Partition: slicePart, Dur: end.Sub(now),
			})
		}
		s.now = end
		return
	}
	s.Counters.IdleTime += d
	if s.TraceFn != nil {
		s.TraceFn(Segment{Start: now, End: horizon, Partition: -1})
	}
	if s.sink != nil && horizon > now {
		s.sink.Event(telemetry.Event{
			Time: now, Kind: telemetry.KindSlice,
			Partition: -1, Dur: horizon.Sub(now),
		})
	}
	s.now = horizon
}

// observeDecision emits the telemetry records of one global decision:
// the decision itself, partition-level preemption of the previously running
// job on a switch, and priority-inversion window open/close edges. Called
// only with a sink attached.
func (s *System) observeDecision(now vtime.Time, pick *partition.Partition, pickIdx int) {
	candidates := int64(-1)
	if dd, ok := s.Policy.(DecisionDetailer); ok {
		candidates, _ = dd.DecisionDetail()
	}
	s.sink.Event(telemetry.Event{
		Time: now, Kind: telemetry.KindDecision,
		Partition: pickIdx, Aux: candidates,
	})

	// Partition-level preemption: the previously running partition lost the
	// CPU while one of its jobs was mid-execution.
	if pickIdx != s.running && s.running >= 0 {
		if j := s.Partitions[s.running].Local.TakeInFlight(); j != nil {
			s.sink.Event(telemetry.Event{
				Time: now, Kind: telemetry.KindTaskPreempt,
				Partition: s.running, Task: j.Task.Name, Job: j.Index,
			})
		}
	}

	// Priority inversion: the decision ran a partition (or idled) while a
	// strictly higher-priority partition was runnable. Consecutive inverted
	// decisions form one window.
	inverted := false
	upTo := len(s.Partitions)
	if pick != nil {
		upTo = pick.Index
	}
	if s.ScanStepping {
		for i := 0; i < upTo; i++ {
			if s.Partitions[i].Runnable() {
				inverted = true
				break
			}
		}
	} else {
		inverted = s.anyRunnableBelow(upTo)
	}
	switch {
	case inverted && !s.invOpen:
		s.invOpen, s.invStart = true, now
		s.Counters.InversionWindows++
		s.sink.Event(telemetry.Event{
			Time: now, Kind: telemetry.KindInversionOpen, Partition: pickIdx,
		})
	case !inverted && s.invOpen:
		s.closeInversion(now)
	}
}

func (s *System) closeInversion(now vtime.Time) {
	s.invOpen = false
	d := now.Sub(s.invStart)
	s.Counters.InversionTime += d
	s.sink.Event(telemetry.Event{
		Time: now, Kind: telemetry.KindInversionClose, Partition: -1, Dur: d,
	})
}

// FlushTelemetry closes any open priority-inversion window at the current
// instant and emits its close event. Call it when a run ends before reading
// final inversion statistics; it is idempotent.
func (s *System) FlushTelemetry() {
	if s.sink != nil && s.invOpen {
		s.closeInversion(s.now)
	}
}

// PolicyResetter is the optional extension a global policy implements to
// participate in deterministic system reuse: Reset must restore the policy's
// initial state (counters, caches) while retaining scratch capacity.
// core.Policy implements it; the stateless policies don't need to.
type PolicyResetter interface {
	Reset()
}

// Reset restores the system to its initial state: time zero, full budgets,
// no pending jobs, zeroed counters, and — when the policy implements
// PolicyResetter — a reset policy. Buffers everywhere retain their capacity,
// so a reset system replays a trial without allocating. The RNG is kept
// as-is; use ResetSeed to rewind it too.
func (s *System) Reset() {
	for _, p := range s.Partitions {
		p.Reset()
	}
	s.now = 0
	s.running = -1
	// The latency histogram survives (emptied): dropping it would force the
	// next measured Run to reallocate, breaking the allocation-free reuse
	// contract. A reset histogram is indistinguishable from a fresh one.
	h := s.Counters.PolicyLatency
	s.Counters = Counters{}
	if h != nil {
		h.Reset()
		s.Counters.PolicyLatency = h
	}
	s.invOpen = false
	s.invStart = 0
	s.epoch = 0
	for i := range s.perPart {
		s.perPart[i] = 0
		s.nextEv[i] = 0
		s.stamps[i] = 0
	}
	s.evq.Reset()
	for i := range s.readyMask {
		s.readyMask[i] = 0
	}
	if pr, ok := s.Policy.(PolicyResetter); ok {
		pr.Reset()
	}
}

// ResetSeed is Reset plus reseeding the system RNG, making the reused system
// bit-for-bit equivalent to a freshly constructed one with that seed: same
// schedule, same telemetry digests, no construction allocations.
func (s *System) ResetSeed(seed uint64) {
	s.Reset()
	s.Rand.Seed(seed)
}
