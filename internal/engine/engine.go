// Package engine is the hierarchical scheduling simulator: a discrete-event
// engine that reproduces the two-level scheduling of the paper's Fig. 1.
// At every scheduling decision point — task arrival, task completion, budget
// depletion, budget replenishment, or quantum expiry — the engine asks the
// configured global policy which partition takes the CPU, then lets that
// partition's local fixed-priority scheduler run its tasks until the next
// decision point, depleting the partition's budget for the amount executed.
//
// The engine is single-threaded and deterministic: given the same
// configuration and seed it produces the identical schedule, which the test
// suite relies on.
package engine

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"timedice/internal/bitset"
	"timedice/internal/eventq"
	"timedice/internal/partition"
	"timedice/internal/rng"
	"timedice/internal/server"
	"timedice/internal/shard"
	"timedice/internal/task"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

// GlobalPolicy selects the partition to execute at each decision point.
//
// Pick returns the partition that takes the CPU for the upcoming slice, or
// nil to idle the CPU. Implementations must only return partitions that are
// Runnable, or nil. Quantum bounds the slice length for randomizing policies
// (the paper's MIN_INV_SIZE); a zero quantum means the slice runs until the
// next natural event, which is the behaviour of the default (NoRandom)
// scheduler.
type GlobalPolicy interface {
	Name() string
	Quantum() vtime.Duration
	Pick(sys *System, now vtime.Time) *partition.Partition
}

// BoundaryPolicy is an optional extension of GlobalPolicy for policies with
// their own decision boundaries beyond a fixed quantum (e.g. TDMA slot
// edges). NextBoundary returns the next instant strictly after now at which
// the policy must be consulted again.
type BoundaryPolicy interface {
	NextBoundary(now vtime.Time) vtime.Time
}

// DecisionDetailer is an optional extension of GlobalPolicy that reports
// detail about the most recent Pick: the candidate-set size considered and
// the number of schedulability tests run. The engine attaches the candidate
// count to the telemetry KindDecision event when available.
type DecisionDetailer interface {
	DecisionDetail() (candidates, tests int64)
}

// Segment is one maximal interval of the schedule trace during which the CPU
// ran a single partition (or idled).
type Segment struct {
	Start, End vtime.Time
	// Partition is the index of the executing partition in the system's
	// priority-ordered slice, or -1 for idle time.
	Partition int
}

// Counters aggregates the schedule statistics reported in Table V and
// Fig. 17 of the paper.
type Counters struct {
	Decisions     int64          // global scheduling decisions made
	Switches      int64          // decisions whose outcome differed from the previous one
	IdleDecisions int64          // decisions that chose to idle
	BusyTime      vtime.Duration // CPU time spent executing partitions
	IdleTime      vtime.Duration // CPU time spent idle
	// PolicyTime and PolicySamples accumulate the wall-clock time inside Pick
	// (Fig. 17) and the number of timed calls. They are maintained only when
	// System.MeasureLatency is set — the unmeasured hot path makes no clock
	// syscalls at all — and are zero otherwise.
	PolicyTime    time.Duration
	PolicySamples int64
	// ShardMergeTime accumulates the wall-clock time of the sharded due
	// phase's deterministic merge (concatenating per-shard due sets in shard
	// index order). Like PolicyTime it is a host observation, maintained only
	// under MeasureLatency, excluded from snapshots, and zeroed before
	// deterministic comparisons.
	ShardMergeTime time.Duration

	// DeadlineMisses counts jobs that completed after their absolute
	// deadline (arrival + relative deadline). Jobs still pending when the
	// run ends are not counted. Always maintained.
	DeadlineMisses int64
	// InversionWindows and InversionTime count/accumulate the
	// priority-inversion windows of the schedule: maximal runs of decisions
	// during which the CPU ran a partition (or idled) while a strictly
	// higher-priority partition was runnable. They are maintained only while
	// a telemetry sink is attached, because the detection scan is extra
	// hot-path work the nil-sink configuration must not pay.
	InversionWindows int64
	InversionTime    vtime.Duration
	// PolicyLatency is a fixed-bucket streaming histogram (microseconds) of
	// individual Pick wall-clock latencies, populated when MeasureLatency is
	// set. Constant memory regardless of run length. Allocated once at the
	// start of Run (never mid-step) and retained across Reset.
	PolicyLatency *telemetry.Histogram

	// MinAdvances counts activations of the defensive minimum-advance
	// fallback: steps where every horizon bound collapsed to now and the
	// engine forced a 1µs advance to keep the simulation moving. Well-behaved
	// policies never trigger it — the simfuzz oracles treat a non-zero count
	// as a violation — so it is a tripwire for misbehaving custom policies.
	MinAdvances int64

	// ArenaBytesTouched is a deterministic proxy for the step loop's cache
	// traffic: bytes of engine-owned hot state (arena slots, heap nodes,
	// bitset words) the stepping algorithm reads or writes per step, charging
	// one 64-byte line for every pointer-chased partition visit (deliver,
	// NoteIdle, execute). It is not a hardware measurement — it counts what
	// the algorithm touches, so a quiescent partition costs zero bytes in
	// indexed mode and a full visit per step in scan mode, which is exactly
	// the contrast BenchmarkEngineStepScale's B/qpart metric and the obs
	// /metrics arena-bytes exposition quantify. Always maintained (a handful
	// of integer adds per step, no memory traffic of its own).
	ArenaBytesTouched int64

	// FixpointIters and InterferenceTerms are the decision-cost proxies of
	// the Algorithm-3 kernel, maintained by the TimeDice policy (zero under
	// non-TimeDice policies): busy-interval fixpoint iterations run, and
	// interference terms actually evaluated (one CeilDiv-and-accumulate
	// each). FixpointIters is path-independent — the divisionless kernel
	// replays the reference iteration sequence exactly, and the
	// indexed-vs-scan differential pins the counter equal across paths.
	// InterferenceTerms is deliberately path-dependent: the scan/AoS
	// reference re-sums every charged stream each iteration while the
	// incremental kernel advances only the streams whose next arrival was
	// crossed, so the scan-vs-indexed gap in /metrics is the live view of
	// the kernel's algorithmic savings (the same design as
	// ArenaBytesTouched). Both depend on verdict-cache warmth (a cache hit
	// skips the fixpoint entirely), so like the wall-clock measurements they
	// are excluded from the snapshot/fork digest contract and start at zero
	// after Restore/Fork.
	FixpointIters     int64
	InterferenceTerms int64
}

// Cache-traffic proxy constants for Counters.ArenaBytesTouched. The arena
// stride is one partition's slot across the four hot arrays the engine owns
// (nextEv + remaining + deadline + supply, 8 bytes each); a partition visit
// charges one cache line for the pointer chase into its server and local
// scheduler; a heap node is one IndexMin slot (int32 id + 8-byte key).
const (
	arenaStrideBytes = 4 * 8
	partVisitBytes   = 64
	heapNodeBytes    = 12
)

// System is a complete simulated system: partitions under one global policy.
type System struct {
	// Partitions in decreasing priority order (index 0 = highest).
	Partitions []*partition.Partition
	Policy     GlobalPolicy
	Rand       *rng.Rand

	// TraceFn, when non-nil, receives every schedule segment as it is
	// produced. Segments are contiguous and non-overlapping.
	TraceFn func(Segment)
	// MeasureLatency streams the wall-clock latency of every Pick call into
	// the Counters.PolicyLatency histogram (Table IV). Off by default.
	MeasureLatency bool
	// ScanStepping selects the reference O(P) stepping implementation: full
	// partition scans for event delivery, polling-idle notification, and the
	// horizon min-reduce, exactly as the engine worked before the indexed
	// stepping path. The default (false) uses the index-min heap and the
	// runnable bitset, whose per-step cost depends on the number of due and
	// runnable partitions rather than on P. Both paths produce byte-identical
	// event streams (pinned by the gen differential suite); the scan path
	// exists as the differential/benchmark baseline, like UncachedTimeDice
	// does for the verdict cache. Toggling mid-run is safe: the heap keys and
	// the bitset are maintained in both modes.
	ScanStepping bool

	Counters Counters

	now     vtime.Time
	running int // index of last picked partition, or -1
	perPart []vtime.Duration

	// nextEv caches each partition's NextLocalEvent (earliest replenishment
	// or task arrival). An entry is exact between refreshes: a partition's
	// next event can only change when events due at or before now are
	// delivered to it, or when it executes (budget consumption schedules the
	// replacement replenishment) — both sites refresh the entry. This lets
	// step skip the full-partition delivery and horizon scans for quiescent
	// partitions. Entries start at zero so the first step touches everyone
	// (task arrival anchors are computed lazily on first delivery).
	nextEv []vtime.Time
	// evq mirrors nextEv as a 4-ary index-min heap: evq.Key(i) == nextEv[i]
	// at every instant (setNextEv writes both). The heap answers the two
	// questions step asks of nextEv — "who is due?" (CollectDue) and "what is
	// the earliest future event?" (MinKey) — in time proportional to the
	// answer instead of O(P).
	evq *eventq.IndexMin
	// ready is a two-level hierarchical bitset over partition indices with
	// bit i set iff Partitions[i].Runnable() (active server ∧ ready work). It
	// is refreshed at the only sites where runnability can change — event
	// delivery and execution — and backs Runnable, FirstRunnable, and the
	// inversion scan in indexed mode. Scans descend only into occupied
	// 64-partition groups, so at P=16384 with a handful of runnable
	// partitions a walk touches the 4 summary words plus one or two group
	// words instead of 256. NoteIdle never flips a bit: it only fires on
	// partitions with no ready work, which are not runnable before or after
	// the discard.
	ready *bitset.Hier
	// hotRemaining/hotDeadline/hotSupply are the struct-of-arrays hot-state
	// arenas: contiguous mirrors of each partition's B_i(t), budget deadline
	// d_{i,t}, and earliest future supply instant, refreshed at exactly the
	// sites that can move them — event delivery (publishHot), execution
	// (publishHot), and an idle-budget discard (remaining only). hotBudget
	// and hotPeriod are the constant B_i/T_i columns, filled once. Together
	// with nextEv they are the per-step working set: a step over a mostly
	// quiescent system reads a few contiguous cache lines here instead of
	// pointer-chasing P server/scheduler structs. core.Policy's batched
	// Algorithm-3 path reads them through Hot() — the same exactness contract
	// as nextEv applies (any engine-side mutation of a quantity mirrored here
	// must go through publishHot), and TestIndexedScanDigestsMatch pins it:
	// the scan reference path re-reads live servers, so a stale arena entry
	// flips a decision and shows up as a digest mismatch.
	hotRemaining []vtime.Duration
	hotDeadline  []vtime.Time
	hotSupply    []vtime.Time
	hotBudget    []vtime.Duration
	hotPeriod    []vtime.Duration
	// hotRecip is the constant magic-reciprocal column paired with hotPeriod:
	// the divisionless form of each partition's period, precomputed once per
	// configuration (initHotArenas) so the batched Algorithm-3 kernel's
	// interference sums run without a single hardware divide. Exactness is
	// unconditional (vtime.Reciprocal), so the arena carries no extra
	// invalidation obligations — it is as constant as hotPeriod itself.
	hotRecip []vtime.Reciprocal
	// dueBuf is the reusable scratch for the delivery phase's due set.
	dueBuf []int32

	// Sharded stepping state (SetSharding, sharding.go). When shardQ is
	// non-nil the partition universe is split into the contiguous shardRanges
	// and the per-partition-independent step phases run across shardPool:
	// each shard owns a range heap in shardQ mirroring nextEv for its range
	// (setNextEv routes writes by shardOf), due discovery collects per shard
	// into shardDue and merges in shard index order, and the horizon bound
	// folds the per-shard roots. The global evq is NOT maintained while
	// sharded — it goes stale and is resynced from nextEv when sharding is
	// disabled. shardFn is the prebuilt due-collection closure (no per-step
	// allocation); shardNow publishes the step instant to it across the
	// pool's release barrier.
	shardPool   *shard.Pool
	shardRanges []shard.Range
	shardOf     []int32
	shardQ      []*eventq.IndexMin
	shardDue    [][]int32
	shardFn     func(worker int)
	shardNow    vtime.Time
	// runnableBuf is the reusable backing array for Runnable.
	runnableBuf []*partition.Partition

	// epoch and stamps drive the incremental schedulability-verdict cache
	// (core.Cache). epoch counts discontinuous state changes; stamps[i] is the
	// epoch value at partition i's most recent one — job release, completion,
	// budget depletion, replenishment delivery, a silent period-boundary
	// advance, or a sporadic server scheduling a future supply chunk. Between
	// stamps a partition's scheduling state evolves only by the passage of
	// time (budget draining while it runs), which cached verdicts account for.
	epoch  uint64
	stamps []uint64

	sink     telemetry.Sink // nil ⇒ telemetry disabled (fast path)
	invOpen  bool           // an inversion window is currently open
	invStart vtime.Time
}

// ErrNoPartitions is returned by New when the partition list is empty.
var ErrNoPartitions = errors.New("engine: system needs at least one partition")

// New assembles a system. Partitions are sorted by priority internally; the
// priorities must be unique. A nil Rand defaults to seed 1.
func New(parts []*partition.Partition, policy GlobalPolicy, rnd *rng.Rand) (*System, error) {
	if len(parts) == 0 {
		return nil, ErrNoPartitions
	}
	if policy == nil {
		return nil, errors.New("engine: nil global policy")
	}
	ordered := make([]*partition.Partition, len(parts))
	copy(ordered, parts)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].Priority < ordered[j-1].Priority; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	for i := 1; i < len(ordered); i++ {
		if ordered[i].Priority == ordered[i-1].Priority {
			return nil, fmt.Errorf("engine: duplicate partition priority %d (%q, %q)",
				ordered[i].Priority, ordered[i-1].Name, ordered[i].Name)
		}
	}
	for i, p := range ordered {
		p.Index = i
	}
	if rnd == nil {
		rnd = rng.New(1)
	}
	s := &System{
		Partitions:   ordered,
		Policy:       policy,
		Rand:         rnd,
		running:      -1,
		perPart:      make([]vtime.Duration, len(ordered)),
		nextEv:       make([]vtime.Time, len(ordered)),
		evq:          eventq.NewIndexMin(len(ordered)),
		ready:        bitset.New(len(ordered)),
		hotRemaining: make([]vtime.Duration, len(ordered)),
		hotDeadline:  make([]vtime.Time, len(ordered)),
		hotSupply:    make([]vtime.Time, len(ordered)),
		hotBudget:    make([]vtime.Duration, len(ordered)),
		hotPeriod:    make([]vtime.Duration, len(ordered)),
		hotRecip:     make([]vtime.Reciprocal, len(ordered)),
		dueBuf:       make([]int32, 0, len(ordered)),
		runnableBuf:  make([]*partition.Partition, 0, len(ordered)),
		stamps:       make([]uint64, len(ordered)),
	}
	s.initHotArenas()
	// The lifecycle observers are installed unconditionally: they maintain
	// the always-on Counters (deadline misses) and forward to the telemetry
	// sink when one is attached. With no sink each callback is a nil check.
	for i, p := range ordered {
		obs := &partObserver{sys: s, part: i}
		p.SetObservers(obs, obs)
	}
	return s, nil
}

// AttachTelemetry connects a telemetry sink to the system. All subsequent
// scheduling activity is emitted as structured events (see package
// telemetry for the taxonomy). Pass nil to detach; detached, the emission
// paths reduce to nil checks and the engine benchmarks are unaffected.
// Attach before Run — events are not back-filled.
func (s *System) AttachTelemetry(sink telemetry.Sink) { s.sink = sink }

// Telemetry returns the attached sink, or nil.
func (s *System) Telemetry() telemetry.Sink { return s.sink }

// partObserver forwards one partition's job and budget lifecycle into the
// system: always-on counters plus the telemetry sink when attached. It
// implements task.Observer and server.Observer.
type partObserver struct {
	sys  *System
	part int
}

var (
	_ task.Observer = (*partObserver)(nil)
)

func (o *partObserver) JobReleased(j *task.Job) {
	o.sys.bumpStamp(o.part)
	if sink := o.sys.sink; sink != nil {
		sink.Event(telemetry.Event{
			Time: j.Arrival, Kind: telemetry.KindTaskArrival,
			Partition: o.part, Task: j.Task.Name, Job: j.Index,
		})
	}
}

func (o *partObserver) JobDispatched(j *task.Job, at vtime.Time, first bool) {
	if sink := o.sys.sink; sink != nil {
		var aux int64
		if first {
			aux = 1
		}
		sink.Event(telemetry.Event{
			Time: at, Kind: telemetry.KindTaskStart,
			Partition: o.part, Task: j.Task.Name, Job: j.Index, Aux: aux,
		})
	}
}

func (o *partObserver) JobPreempted(j *task.Job, at vtime.Time) {
	if sink := o.sys.sink; sink != nil {
		sink.Event(telemetry.Event{
			Time: at, Kind: telemetry.KindTaskPreempt,
			Partition: o.part, Task: j.Task.Name, Job: j.Index,
		})
	}
}

func (o *partObserver) JobCompleted(c task.Completion) {
	o.sys.bumpStamp(o.part)
	lateness := c.Response - c.Job.Task.EffectiveDeadline()
	if lateness > 0 {
		o.sys.Counters.DeadlineMisses++
	}
	if sink := o.sys.sink; sink != nil {
		sink.Event(telemetry.Event{
			Time: c.Finish, Kind: telemetry.KindTaskComplete,
			Partition: o.part, Task: c.Job.Task.Name, Job: c.Job.Index,
			Dur: c.Response,
		})
		if lateness > 0 {
			sink.Event(telemetry.Event{
				Time: c.Finish, Kind: telemetry.KindDeadlineMiss,
				Partition: o.part, Task: c.Job.Task.Name, Job: c.Job.Index,
				Dur: lateness,
			})
		}
	}
}

func (o *partObserver) Replenished(at vtime.Time, amount, remaining vtime.Duration) {
	o.sys.bumpStamp(o.part)
	if sink := o.sys.sink; sink != nil {
		sink.Event(telemetry.Event{
			Time: at, Kind: telemetry.KindBudgetReplenish,
			Partition: o.part, Dur: amount, Aux: int64(remaining),
		})
	}
}

func (o *partObserver) Depleted(at vtime.Time, discarded vtime.Duration) {
	o.sys.bumpStamp(o.part)
	if sink := o.sys.sink; sink != nil {
		var aux int64
		if discarded > 0 {
			aux = 1
		}
		sink.Event(telemetry.Event{
			Time: at, Kind: telemetry.KindBudgetDeplete,
			Partition: o.part, Dur: discarded, Aux: aux,
		})
	}
}

// StateStamps returns the per-partition state stamps (see the field doc), in
// the same priority order as Partitions. The slice is owned by the System:
// read-only, valid until the next step.
func (s *System) StateStamps() []uint64 { return s.stamps }

// Epoch returns the current state epoch. Because every stamp bump assigns
// the freshly incremented epoch to the touched partition, Epoch always
// equals the maximum of StateStamps — an O(1) substitute for scanning them.
func (s *System) Epoch() uint64 { return s.epoch }

// bumpStamp records a discontinuous state change on partition i.
func (s *System) bumpStamp(i int) {
	s.epoch++
	s.stamps[i] = s.epoch
}

// setNextEv refreshes partition i's cached next-local-event time in both the
// linear cache and the index-min heap, keeping the two views identical. Under
// sharded stepping the write routes to the owning shard's range heap instead
// of the global one (which is stale while sharded; see SetSharding).
func (s *System) setNextEv(i int, t vtime.Time) {
	s.nextEv[i] = t
	if s.shardQ != nil {
		s.shardQ[s.shardOf[i]].Update(i, t)
		return
	}
	s.evq.Update(i, t)
}

// publishHot writes one partition's freshly gathered hot-state snapshot into
// the struct-of-arrays arenas, the next-event cache/heap, and the ready
// bitset. This is the single write path for everything a decision reads from
// the arenas; the two sites that can move any of these quantities — event
// delivery and execution — both funnel through it.
func (s *System) publishHot(i int, h partition.HotState) {
	s.hotRemaining[i] = h.Remaining
	s.hotDeadline[i] = h.Deadline
	s.hotSupply[i] = h.Supply
	s.setNextEv(i, h.NextEvent)
	if h.Runnable {
		s.ready.Set(i)
	} else {
		s.ready.Clear(i)
	}
}

// initHotArenas fills the constant arena columns (budget, period, and the
// period's magic reciprocal) from the server configuration and the variable
// columns from the servers' initial state (full budget, r = 0). It
// deliberately does not touch the local schedulers: task arrival anchors stay
// lazy until the first delivery, so spec transforms that rewrite offsets
// between build and run (BLINDER's release quantization) still take effect.
// The ready bits start clear — no jobs are released before the first step —
// and nextEv entries start at zero, so the first step delivers to (and fully
// publishes) every partition. Both New and Reset run it, so the reciprocal
// constants are rederived alongside the other columns on reuse.
func (s *System) initHotArenas() {
	for i, p := range s.Partitions {
		srv := p.Server
		s.hotBudget[i] = srv.Budget()
		s.hotPeriod[i] = srv.Period()
		s.hotRecip[i] = vtime.NewReciprocal(srv.Period())
		s.hotRemaining[i] = srv.Remaining()
		s.hotDeadline[i] = srv.Deadline()
		s.hotSupply[i] = srv.NextReplenish()
	}
}

// Hot is the read-only struct-of-arrays view of the per-partition scheduling
// state the engine maintains for its own stepping and for policies: one slice
// per quantity, indexed by partition priority order. See System.Hot.
type Hot struct {
	Remaining []vtime.Duration   // B_i(t)
	Budget    []vtime.Duration   // B_i (constant)
	Period    []vtime.Duration   // T_i (constant)
	Recip     []vtime.Reciprocal // T_i as a magic reciprocal (constant)
	Deadline  []vtime.Time       // d_{i,t} = r_{i,t} + T_i
	Supply    []vtime.Time       // earliest future budget gain
	Ready     *bitset.Hier       // bit i ⇔ Partitions[i].Runnable()
}

// Hot returns the arena view. The slices and bitset are owned by the System
// and must not be mutated; values are exact at every decision point (the
// engine republishes a partition's entries whenever delivery, execution, or
// an idle discard can move them), which is when policies read them.
// core.Policy's batched Algorithm-3 path aliases these slices directly, so a
// TimeDice decision at P=16384 reads a few contiguous cache lines instead of
// pointer-chasing every server. Like the ready set, the arenas only observe
// engine-driven mutation: tests that poke servers directly must use
// ScanStepping, whose reference paths re-read live state.
func (s *System) Hot() Hot {
	return Hot{
		Remaining: s.hotRemaining,
		Budget:    s.hotBudget,
		Period:    s.hotPeriod,
		Recip:     s.hotRecip,
		Deadline:  s.hotDeadline,
		Supply:    s.hotSupply,
		Ready:     s.ready,
	}
}

// Now returns the current simulated instant.
func (s *System) Now() vtime.Time { return s.now }

// PartitionTime returns the accumulated CPU time of partition index i.
func (s *System) PartitionTime(i int) vtime.Duration { return s.perPart[i] }

// Runnable returns the partitions that are active and have ready work, in
// decreasing priority order. This is the candidate universe global policies
// choose from; under the polling server it equals the paper's list of active
// partitions L_t.
//
// The returned slice shares a scratch buffer owned by the System: it is valid
// only until the next Runnable call and must not be retained or mutated.
func (s *System) Runnable() []*partition.Partition {
	out := s.runnableBuf[:0]
	if s.ScanStepping {
		// Reference implementation: the linear scan the bitset must agree
		// with (pinned by the differential suite).
		for _, p := range s.Partitions {
			if p.Runnable() {
				out = append(out, p)
			}
		}
	} else {
		s.ready.ForEachSet(func(i int) bool {
			out = append(out, s.Partitions[i])
			return true
		})
	}
	s.runnableBuf = out
	return out
}

// FirstRunnable returns the index of the highest-priority runnable partition,
// or -1 when nothing is runnable. In indexed mode this is a summary-guided
// first-set-bit probe (O(occupied groups), not O(P)); in ScanStepping mode it
// is the reference linear scan over live partition state. sched.FixedPriority
// picks through it, so the NoRandom decision never materializes the runnable
// slice.
func (s *System) FirstRunnable() int {
	if s.ScanStepping {
		for i, p := range s.Partitions {
			if p.Runnable() {
				return i
			}
		}
		return -1
	}
	return s.ready.First()
}

// Run advances the simulation until the given instant.
func (s *System) Run(until vtime.Time) {
	// The latency histogram is allocated here, outside the hot loop, so the
	// first measured step never allocates mid-step. It survives Reset (reset
	// to empty), so a reused system replays measured trials allocation-free.
	if s.MeasureLatency && s.Counters.PolicyLatency == nil {
		s.Counters.PolicyLatency = telemetry.NewHistogram(telemetry.LatencyBuckets())
	}
	for s.now < until {
		s.step(until)
	}
}

// RunFor advances the simulation by d.
func (s *System) RunFor(d vtime.Duration) { s.Run(s.now.Add(d)) }

// Step advances the simulation by exactly one decision step (or not at all if
// the clock has already reached until). Between Step calls the system is at a
// natural step boundary — the only instants at which Snapshot and Fork are
// valid: splitting a slice artificially would re-consult randomized policies
// mid-slice and diverge from the uninterrupted schedule.
func (s *System) Step(until vtime.Time) {
	if s.MeasureLatency && s.Counters.PolicyLatency == nil {
		s.Counters.PolicyLatency = telemetry.NewHistogram(telemetry.LatencyBuckets())
	}
	if s.now < until {
		s.step(until)
	}
}

// deliver applies all events due at or before now to partition i:
// replenishment-boundary advance and job releases, then publishes the
// partition's refreshed hot state (arenas, next-event cache/heap, ready bit)
// in one gathered snapshot.
func (s *System) deliver(i int, p *partition.Partition, now vtime.Time) {
	// Delivery can change the partition's replenishment anchors even without
	// firing an observer callback (a boundary advance that restores an
	// already-full budget), so the stamp bump is unconditional here.
	s.bumpStamp(i)
	p.Server.AdvanceTo(now)
	p.Local.ReleaseUpTo(now)
	s.publishHot(i, p.Hot())
}

// noteIdleTouched gives polling servers with no pending workload the chance
// to discard their budget, visiting only the partitions that can have newly
// entered the (active ∧ no-ready-work) state this step instead of all P.
//
// The touched set is due ∪ {previously running partition}, and it is
// exhaustive: a partition's ready count only changes when jobs are released
// to it (delivery — in due) or when its jobs complete (it executed last
// step — it is s.running, still the previous pick here since the new pick
// happens after this phase), and its server only becomes active through a
// replenishment (delivery — in due). Any partition outside the set that is
// idle-active now was already idle-active when it was last touched, and its
// server discarded then. The first step after construction or Reset
// delivers to every partition (nextEv entries start at zero), which covers
// the initial full-budget/no-jobs state. Visiting in ascending index order
// replays the scan path's Depleted-event order exactly.
func (s *System) noteIdleTouched(now vtime.Time, due []int32) {
	prev := int32(-1)
	if s.running >= 0 {
		prev = int32(s.running)
	}
	merged := prev < 0
	for _, i := range due {
		if !merged && prev < i {
			s.noteIdleOne(int(prev), now)
			merged = true
		}
		if i == prev {
			merged = true
		}
		s.noteIdleOne(int(i), now)
	}
	if !merged {
		s.noteIdleOne(int(prev), now)
	}
}

func (s *System) noteIdleOne(i int, now vtime.Time) {
	p := s.Partitions[i]
	if !p.Local.HasReady() && p.Server.NoteIdle(now) {
		// Discarding leaves the partition non-runnable either way (no ready
		// work before and after), so the ready bit is already clear; only the
		// remaining-budget arena column moves.
		s.hotRemaining[i] = 0
	}
}

func (s *System) step(until vtime.Time) {
	now := s.now

	// Deliver every event due at or before now: replenishments and arrivals.
	// Partitions whose cached next event is still in the future are quiescent
	// and skipped — nothing is due for them. The indexed path finds the due
	// set by pruned heap descent and replays the scan path's ascending
	// partition-index delivery order exactly (the due set is sorted), so both
	// paths emit byte-identical event streams.
	if s.ScanStepping {
		delivered := 0
		for i, p := range s.Partitions {
			if s.nextEv[i] <= now {
				s.deliver(i, p, now)
				delivered++
			}
		}
		// Polling servers discard budget the moment they hold it with no
		// pending workload.
		for i, p := range s.Partitions {
			if !p.Local.HasReady() && p.Server.NoteIdle(now) {
				s.hotRemaining[i] = 0
			}
		}
		// Cache-traffic proxy, scan mode: the delivery scan reads nextEv for
		// every partition, NoteIdle pointer-chases every partition, and the
		// horizon reduce below reads nextEv again — O(P) bytes per step even
		// when nothing is due.
		s.Counters.ArenaBytesTouched += int64(len(s.Partitions))*(8+partVisitBytes+8) +
			int64(delivered)*(arenaStrideBytes+partVisitBytes)
	} else {
		due := s.dueBuf[:0]
		if s.shardQ != nil {
			due = s.collectDueSharded(now, due)
		} else {
			due = s.evq.CollectDue(now, due)
			slices.Sort(due)
		}
		s.dueBuf = due
		for _, i := range due {
			s.deliver(int(i), s.Partitions[i], now)
		}
		s.noteIdleTouched(now, due)
		// Cache-traffic proxy, indexed mode: due partitions pay a full visit
		// plus an arena republish, the pruned heap descent touches at most
		// 4·due+1 nodes, idle notification visits due ∪ {previous pick}, and
		// the ready-set walks read the summary words plus the occupied
		// groups. Quiescent partitions contribute nothing. Sharded stepping
		// charges the identical formula — the proxy counts algorithmic
		// touches of the one logical heap, not which physical heap served
		// them — so every Counters field is byte-identical across worker
		// counts (the shard differential pins full equality).
		touched := int64(len(due))
		if s.running >= 0 {
			touched++
		}
		s.Counters.ArenaBytesTouched += int64(len(due))*(arenaStrideBytes+partVisitBytes) +
			(4*int64(len(due))+1)*heapNodeBytes +
			touched*partVisitBytes +
			int64(s.ready.SummaryWords()+s.ready.OccupiedGroups())*8 +
			8 // MinKey root read in the horizon bound
	}

	// Global scheduling decision. The clock reads exist only under
	// MeasureLatency; the default path makes no syscalls.
	s.Counters.Decisions++
	var pick *partition.Partition
	if s.MeasureLatency {
		t0 := time.Now()
		pick = s.Policy.Pick(s, now)
		lat := time.Since(t0)
		s.Counters.PolicyTime += lat
		s.Counters.PolicySamples++
		if h := s.Counters.PolicyLatency; h != nil { // allocated by Run
			h.Observe(float64(lat.Nanoseconds()) / 1e3)
		}
	} else {
		pick = s.Policy.Pick(s, now)
	}

	pickIdx := -1
	if pick != nil {
		pickIdx = pick.Index
	}
	if s.sink != nil {
		s.observeDecision(now, pick, pickIdx)
	}
	if pickIdx != s.running {
		s.Counters.Switches++
		s.running = pickIdx
	}
	if pick == nil {
		s.Counters.IdleDecisions++
	}

	// The slice ends at the earliest of: the horizon, any partition's next
	// replenishment or arrival (from the cache — exact, see nextEv), the
	// quantum boundary, and — if a partition runs — its budget depletion or
	// current-job completion.
	horizon := until
	if s.ScanStepping {
		for _, e := range s.nextEv {
			if e < horizon {
				horizon = e
			}
		}
	} else if s.shardQ != nil {
		// Sharded horizon: each shard root already holds its range's minimum
		// (maintained in parallel by the heap writes); the reduce is a fold
		// over the O(shards) roots in shard index order — min is commutative,
		// so the order only matters for determinism of nothing, but the fixed
		// order keeps the loop trivially auditable.
		for _, q := range s.shardQ {
			if e := q.MinKey(); e < horizon {
				horizon = e
			}
		}
	} else if e := s.evq.MinKey(); e < horizon {
		// MinKey == min(nextEv): the heap mirrors the cache exactly.
		horizon = e
	}
	if q := s.Policy.Quantum(); q > 0 {
		if qe := now.Add(q); qe < horizon {
			horizon = qe
		}
	}
	if bp, ok := s.Policy.(BoundaryPolicy); ok {
		if be := bp.NextBoundary(now); be > now && be < horizon {
			horizon = be
		}
	}
	if pick != nil {
		if be := now.Add(pick.Server.Remaining()); be < horizon {
			horizon = be
		}
		if jr := pick.Local.ShortestRemaining(); jr != vtime.Forever {
			if je := now.Add(jr); je < horizon {
				horizon = je
			}
		}
	}
	if horizon <= now {
		// All events at now were already delivered, so the earliest future
		// event is strictly later; this is a defensive fallback that keeps
		// the simulation moving even if a policy misbehaves. Counted so
		// oracles can flag policies that trigger it.
		s.Counters.MinAdvances++
		horizon = now.Add(vtime.Microsecond)
		if horizon > until {
			horizon = until
		}
	}

	d := horizon.Sub(now)
	if pick != nil {
		// Never execute beyond the remaining budget: a well-behaved policy
		// ensures d <= Remaining via the depletion bound above, but a
		// misbehaving one could pick an inactive partition with pending
		// work, and the defensive minimum-advance must not overdraw it.
		used := pick.Local.Run(now, d.Min(pick.Server.Remaining()))
		pick.Server.Consume(now, used)
		// Consuming budget schedules the replacement replenishment, so the
		// executed partition's next event may have moved; republish its hot
		// state (arena columns, next-event cache/heap, ready bit). For a
		// sporadic server the consumption also queues a future supply chunk,
		// which shifts the partition's supply stream mid-epoch — a
		// discontinuous change the verdict cache must observe. Plain budget
		// draining on the other policies is the time-monotone evolution cached
		// verdicts already account for, so no stamp is needed there.
		if used > 0 && pick.Server.PolicyKind() == server.Sporadic {
			s.bumpStamp(pick.Index)
		}
		s.publishHot(pick.Index, pick.Hot())
		s.Counters.ArenaBytesTouched += arenaStrideBytes + partVisitBytes
		s.perPart[pick.Index] += used
		s.Counters.BusyTime += used
		end := now.Add(used)
		if used == 0 {
			// Defensive: a policy returned a partition with no ready work.
			end = horizon
			s.Counters.IdleTime += d
		}
		if s.TraceFn != nil {
			s.TraceFn(Segment{Start: now, End: end, Partition: pick.Index})
		}
		if s.sink != nil && end > now {
			slicePart := pick.Index
			if used == 0 {
				// Defensive branch above: the slice was actually idle.
				slicePart = -1
			}
			s.sink.Event(telemetry.Event{
				Time: now, Kind: telemetry.KindSlice,
				Partition: slicePart, Dur: end.Sub(now),
			})
		}
		s.now = end
		return
	}
	s.Counters.IdleTime += d
	if s.TraceFn != nil {
		s.TraceFn(Segment{Start: now, End: horizon, Partition: -1})
	}
	if s.sink != nil && horizon > now {
		s.sink.Event(telemetry.Event{
			Time: now, Kind: telemetry.KindSlice,
			Partition: -1, Dur: horizon.Sub(now),
		})
	}
	s.now = horizon
}

// observeDecision emits the telemetry records of one global decision:
// the decision itself, partition-level preemption of the previously running
// job on a switch, and priority-inversion window open/close edges. Called
// only with a sink attached.
func (s *System) observeDecision(now vtime.Time, pick *partition.Partition, pickIdx int) {
	candidates := int64(-1)
	if dd, ok := s.Policy.(DecisionDetailer); ok {
		candidates, _ = dd.DecisionDetail()
	}
	s.sink.Event(telemetry.Event{
		Time: now, Kind: telemetry.KindDecision,
		Partition: pickIdx, Aux: candidates,
	})

	// Partition-level preemption: the previously running partition lost the
	// CPU while one of its jobs was mid-execution.
	if pickIdx != s.running && s.running >= 0 {
		if j := s.Partitions[s.running].Local.TakeInFlight(); j != nil {
			s.sink.Event(telemetry.Event{
				Time: now, Kind: telemetry.KindTaskPreempt,
				Partition: s.running, Task: j.Task.Name, Job: j.Index,
			})
		}
	}

	// Priority inversion: the decision ran a partition (or idled) while a
	// strictly higher-priority partition was runnable. Consecutive inverted
	// decisions form one window.
	inverted := false
	upTo := len(s.Partitions)
	if pick != nil {
		upTo = pick.Index
	}
	if s.ScanStepping {
		for i := 0; i < upTo; i++ {
			if s.Partitions[i].Runnable() {
				inverted = true
				break
			}
		}
	} else {
		// The highest-priority runnable partition decides it: the decision is
		// inverted iff one exists above the pick. First shares the bitset's
		// summary-guided ForEachSet walk with Runnable and FixedPriority.
		first := s.ready.First()
		inverted = first >= 0 && first < upTo
	}
	switch {
	case inverted && !s.invOpen:
		s.invOpen, s.invStart = true, now
		s.Counters.InversionWindows++
		s.sink.Event(telemetry.Event{
			Time: now, Kind: telemetry.KindInversionOpen, Partition: pickIdx,
		})
	case !inverted && s.invOpen:
		s.closeInversion(now)
	}
}

func (s *System) closeInversion(now vtime.Time) {
	s.invOpen = false
	d := now.Sub(s.invStart)
	s.Counters.InversionTime += d
	s.sink.Event(telemetry.Event{
		Time: now, Kind: telemetry.KindInversionClose, Partition: -1, Dur: d,
	})
}

// FlushTelemetry closes any open priority-inversion window at the current
// instant and emits its close event. Call it when a run ends before reading
// final inversion statistics; it is idempotent.
func (s *System) FlushTelemetry() {
	if s.sink != nil && s.invOpen {
		s.closeInversion(s.now)
	}
}

// PolicyResetter is the optional extension a global policy implements to
// participate in deterministic system reuse: Reset must restore the policy's
// initial state (counters, caches) while retaining scratch capacity.
// core.Policy implements it; the stateless policies don't need to.
type PolicyResetter interface {
	Reset()
}

// Reset restores the system to its initial state: time zero, full budgets,
// no pending jobs, zeroed counters, and — when the policy implements
// PolicyResetter — a reset policy. Buffers everywhere retain their capacity,
// so a reset system replays a trial without allocating. The RNG is kept
// as-is; use ResetSeed to rewind it too.
func (s *System) Reset() {
	for _, p := range s.Partitions {
		p.Reset()
	}
	s.now = 0
	s.running = -1
	// The latency histogram survives (emptied): dropping it would force the
	// next measured Run to reallocate, breaking the allocation-free reuse
	// contract. A reset histogram is indistinguishable from a fresh one.
	h := s.Counters.PolicyLatency
	s.Counters = Counters{}
	if h != nil {
		h.Reset()
		s.Counters.PolicyLatency = h
	}
	s.invOpen = false
	s.invStart = 0
	s.epoch = 0
	for i := range s.perPart {
		s.perPart[i] = 0
		s.nextEv[i] = 0
		s.stamps[i] = 0
	}
	s.evq.Reset()
	for _, q := range s.shardQ {
		q.Reset() // all keys back to zero, matching the zeroed nextEv
	}
	s.ready.Reset()
	s.initHotArenas()
	if pr, ok := s.Policy.(PolicyResetter); ok {
		pr.Reset()
	}
}

// ResetSeed is Reset plus reseeding the system RNG, making the reused system
// bit-for-bit equivalent to a freshly constructed one with that seed: same
// schedule, same telemetry digests, no construction allocations.
func (s *System) ResetSeed(seed uint64) {
	s.Reset()
	s.Rand.Seed(seed)
}
