package engine_test

// The snapshot battery: differential restore over the generated scenario
// corpus (snapshot mid-run, restore into a fresh system, run both to the
// horizon — event digests and deterministic counters must match exactly), a
// golden wire-format pin, and the FuzzSnapshotBytes robustness/canonicality
// target.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"timedice/internal/check"
	"timedice/internal/engine"
	"timedice/internal/experiments/runner"
	"timedice/internal/gen"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata/golden-v*.snapshot")

// deterministicCounters extracts the Counters fields the snapshot/fork
// digest-identity contract covers (everything except the wall-clock
// measurements).
func deterministicCounters(c engine.Counters) [10]int64 {
	return [10]int64{
		c.Decisions, c.Switches, c.IdleDecisions,
		int64(c.BusyTime), int64(c.IdleTime),
		c.DeadlineMisses, c.InversionWindows, int64(c.InversionTime),
		c.MinAdvances, c.ArenaBytesTouched,
	}
}

// snapshotRoundTrip runs sc straight-line while capturing a snapshot at a
// seed-derived mid-run step boundary, restores the snapshot into a freshly
// built system, runs both to the horizon, and compares: the restored
// snapshot must re-encode byte-identically (canonical decode), the
// straight-line digest must equal prefix-digest ⊕ restored suffix, and the
// deterministic counters must match exactly. A non-empty mismatch string
// describes the first divergence; err reports setup problems (an unbuildable
// scenario, a failed restore).
func snapshotRoundTrip(sc gen.Scenario) (mismatch string, err error) {
	horizon := vtime.Time(0).Add(sc.Horizon)
	snapAt := vtime.Time(0).Add(vtime.Duration(int64(sc.Horizon) / 10 * int64(1+sc.Seed%8)))

	sys, err := gen.Build(sc)
	if err != nil {
		return "", err
	}
	rec := telemetry.NewRecorder()
	sys.AttachTelemetry(rec)
	var snap []byte
	prefixLen := -1
	for sys.Now() < horizon {
		if prefixLen < 0 && sys.Now() >= snapAt {
			var buf bytes.Buffer
			if err := sys.Snapshot(&buf); err != nil {
				return "", fmt.Errorf("snapshot: %w", err)
			}
			snap, prefixLen = buf.Bytes(), rec.Len()
		}
		sys.Step(horizon)
	}
	if prefixLen < 0 { // degenerate horizon: snapshot the final state
		var buf bytes.Buffer
		if err := sys.Snapshot(&buf); err != nil {
			return "", fmt.Errorf("snapshot: %w", err)
		}
		snap, prefixLen = buf.Bytes(), rec.Len()
	}
	sys.FlushTelemetry()
	straight := rec.Events()

	restored, err := gen.Build(sc)
	if err != nil {
		return "", err
	}
	rec2 := telemetry.NewRecorder()
	restored.AttachTelemetry(rec2)
	if err := restored.Restore(bytes.NewReader(snap)); err != nil {
		return "", fmt.Errorf("restore: %w", err)
	}
	var again bytes.Buffer
	if err := restored.Snapshot(&again); err != nil {
		return "", fmt.Errorf("re-snapshot: %w", err)
	}
	if !bytes.Equal(snap, again.Bytes()) {
		return "restored state re-encodes to different bytes", nil
	}
	restored.Run(horizon)
	restored.FlushTelemetry()

	want := check.DigestEvents(straight)
	got := check.FoldEvents(check.DigestEvents(straight[:prefixLen]), rec2.Events())
	if want != got {
		return fmt.Sprintf("event digest: straight %#016x, snapshot+restore %#016x", want, got), nil
	}
	if sc, rc := deterministicCounters(sys.Counters), deterministicCounters(restored.Counters); sc != rc {
		return fmt.Sprintf("counters: straight %v, restored %v", sc, rc), nil
	}
	return "", nil
}

// snapshotScenarios draws the corpus for the restore differential: the full
// default space plus TDMA (snapshots are policy-independent, so every policy
// must survive the round trip).
func snapshotScenarios(n int, seed uint64) []gen.Scenario {
	opts := gen.DefaultOptions()
	opts.Policies = append(opts.Policies, policies.TDMA)
	r := rng.New(seed)
	scs := make([]gen.Scenario, n)
	for i := range scs {
		scs[i] = gen.Generate(r, opts)
	}
	return scs
}

// TestSnapshotRestoreDigestsMatch is the tentpole contract pin: over ≥1k
// generated scenarios across all policies, snapshot → restore → run-to-horizon
// is digest-identical to straight-line execution, counters included.
func TestSnapshotRestoreDigestsMatch(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 150
	}
	scs := snapshotScenarios(n, 0x5a9)
	_, err := runner.Map(0, scs, func(i int, sc gen.Scenario) (struct{}, error) {
		mismatch, err := snapshotRoundTrip(sc)
		if err != nil {
			// TDMA rejects some generated systems (slot rounds to zero);
			// that is a build property, not a snapshot one.
			if _, berr := gen.Build(sc); berr != nil {
				return struct{}{}, nil
			}
			t.Errorf("scenario %d: %v", i, err)
			return struct{}{}, nil
		}
		if mismatch != "" {
			enc, _ := gen.Encode(sc)
			t.Errorf("scenario %d: %s\nscenario: %s", i, mismatch, enc)
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// goldenScenario is the fixed scenario behind the golden snapshot and the
// fuzz target: any change to it invalidates both checked-in artifacts.
func goldenScenario() gen.Scenario {
	return gen.Generate(rng.New(42), gen.DefaultOptions())
}

// goldenSnapshotBytes runs the golden scenario to its mid-run step boundary
// and returns the snapshot bytes.
func goldenSnapshotBytes(tb testing.TB) []byte {
	tb.Helper()
	sc := goldenScenario()
	sys, err := gen.Build(sc)
	if err != nil {
		tb.Fatal(err)
	}
	sys.AttachTelemetry(telemetry.NewRecorder())
	horizon := vtime.Time(0).Add(sc.Horizon)
	mid := vtime.Time(0).Add(sc.Horizon / 2)
	for sys.Now() < mid {
		sys.Step(horizon)
	}
	var buf bytes.Buffer
	if err := sys.Snapshot(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenSnapshot pins the wire format: the golden scenario's mid-run
// snapshot must be byte-identical to the checked-in artifact, whose filename
// embeds SnapshotVersion. Any layout change therefore fails loudly until the
// version is bumped AND the golden regenerated (-update-golden), never
// silently.
func TestGoldenSnapshot(t *testing.T) {
	got := goldenSnapshotBytes(t)
	path := filepath.Join("testdata", fmt.Sprintf("golden-v%d.snapshot", engine.SnapshotVersion))
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden snapshot unreadable: %v\nif the wire format changed intentionally, bump SnapshotVersion and regenerate: go test ./internal/engine -run TestGoldenSnapshot -update-golden", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot wire format drifted from %s (got %d bytes, want %d): bump SnapshotVersion and regenerate the golden", path, len(got), len(want))
	}
	// The artifact must still restore into a fresh build of its system.
	sys, err := gen.Build(goldenScenario())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Restore(bytes.NewReader(want)); err != nil {
		t.Fatalf("golden snapshot does not restore: %v", err)
	}
}

// FuzzSnapshotBytes: Restore on arbitrary bytes must return an error — never
// panic, never over-allocate — and every accepted input is canonical: it
// re-encodes byte-identically through Snapshot.
func FuzzSnapshotBytes(f *testing.F) {
	valid := goldenSnapshotBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	corrupted := bytes.Clone(valid)
	corrupted[len(corrupted)/3] ^= 0x40
	f.Add(corrupted)

	sc := goldenScenario()
	sys, err := gen.Build(sc)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := sys.Restore(bytes.NewReader(data)); err != nil {
			return
		}
		var out bytes.Buffer
		if err := sys.Snapshot(&out); err != nil {
			t.Fatalf("snapshot after successful restore: %v", err)
		}
		if !bytes.Equal(data, out.Bytes()) {
			t.Fatalf("accepted input is not canonical: %d bytes in, %d bytes re-encoded", len(data), out.Len())
		}
		if err := sys.Restore(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-restore of canonical bytes failed: %v", err)
		}
	})
}
