package engine

// This file is the engine half of multi-core sharded stepping: running the
// per-partition-independent phases of one simulated system's step loop across
// a persistent worker pool (internal/shard) with results byte-identical to
// the sequential path.
//
// The step loop has exactly three phases whose work decomposes by partition
// index with no cross-partition data flow:
//
//  1. Due-event *discovery* — which partitions have nextEv ≤ now. Under
//     sharding each contiguous shard owns a range heap (eventq.IndexMinRange)
//     mirroring its slice of nextEv; workers run the pruned CollectDue
//     descent and shard-local sort concurrently, and the merge concatenates
//     the per-shard sets in shard index order. Shards are ascending
//     contiguous ranges, so the concatenation of sorted shard-local sets is
//     globally sorted: exactly the `slices.Sort(CollectDue(...))` set the
//     sequential path delivers against. Delivery *application* stays
//     sequential — bumpStamp hands out global epoch values in delivery
//     order, so applying in parallel would scramble the stamp vector the
//     verdict cache keys on.
//
//  2. The next-event horizon — min over nextEv. Each shard root already
//     holds its range's minimum (maintained incrementally by setNextEv's
//     routed writes), so the "parallel" part is the heap maintenance the
//     shards do anyway; step folds the O(shards) roots in shard index order.
//
//  3. The batched Algorithm-3 candidate fixpoints — handled on the policy
//     side (core.Policy reads the pool and ranges through ShardExec and runs
//     its speculate-then-replay search over the read-only arenas).
//
// Everything else — delivery application, execution, the lottery draw —
// stays sequential, which is what makes the parallel run *exact* rather than
// merely statistically equivalent: every RNG draw happens on one goroutine
// in the same order as the sequential run.
//
// Memory model: workers only ever touch shard-owned state (their shards'
// heaps and due buffers) between the pool's release and join barriers; the
// engine mutates heaps only outside a dispatch. The barrier crossings give
// the happens-before edges in both directions (see shard.Pool.Run).

import (
	"slices"
	"time"

	"timedice/internal/eventq"
	"timedice/internal/shard"
	"timedice/internal/vtime"
)

// SetSharding enables or disables sharded stepping. With a non-nil pool and
// shards >= 2 the partition universe is split into `shards` contiguous
// ranges, per-shard range heaps are built and initialized from the
// authoritative nextEv cache, and subsequent steps run the shardable phases
// across the pool (the caller retains ownership of the pool and must Close
// it after the system is done with it; one pool may be shared by the
// decision phase via ShardExec but never by two systems stepping
// concurrently). With a nil pool or shards < 2 sharding is disabled and the
// global event heap is resynced from nextEv, restoring exactly the
// sequential configuration.
//
// Sharding only affects indexed stepping; a ScanStepping system ignores it
// (the scan path consults neither heap). Calling SetSharding between steps
// is always safe — the heaps are rebuilt from nextEv, which is exact at
// every step boundary. Fork drops sharding (the fork builds its own global
// heap); a restored snapshot keeps it.
func (s *System) SetSharding(pool *shard.Pool, shards int) {
	if pool == nil || shards < 2 {
		if s.shardQ != nil {
			// The global heap went stale while sharded; resync it from the
			// authoritative linear cache.
			for i, t := range s.nextEv {
				s.evq.Update(i, t)
			}
		}
		s.shardPool = nil
		s.shardRanges = nil
		s.shardOf = nil
		s.shardQ = nil
		s.shardDue = nil
		s.shardFn = nil
		return
	}
	n := len(s.Partitions)
	s.shardRanges = shard.Split(n, shards)
	s.shardOf = make([]int32, n)
	s.shardQ = make([]*eventq.IndexMin, shards)
	s.shardDue = make([][]int32, shards)
	for k, r := range s.shardRanges {
		q := eventq.NewIndexMinRange(r.Lo, r.Hi)
		for i := r.Lo; i < r.Hi; i++ {
			s.shardOf[i] = int32(k)
			q.Update(i, s.nextEv[i])
		}
		s.shardQ[k] = q
		s.shardDue[k] = make([]int32, 0, r.Len())
	}
	s.shardPool = pool
	// Prebuilt dispatch closure: worker w owns shards w, w+W, w+2W, … — a
	// pure function of the configuration, so the shard→worker assignment
	// (and with it every per-shard buffer) is scheduling-independent.
	s.shardFn = func(worker int) {
		w := s.shardPool.Workers()
		for k := worker; k < len(s.shardQ); k += w {
			d := s.shardQ[k].CollectDue(s.shardNow, s.shardDue[k][:0])
			slices.Sort(d)
			s.shardDue[k] = d
		}
	}
}

// ShardExec exposes the sharding configuration to the decision layer: the
// worker pool and the contiguous shard ranges, or (nil, nil) when sharding
// is disabled. core.Policy's parallel candidate search reads it each Pick.
func (s *System) ShardExec() (*shard.Pool, []shard.Range) {
	return s.shardPool, s.shardRanges
}

// ShardWorkers returns the worker count sharded stepping runs across, or 1
// when sharding is disabled — the value the run ledger and /metrics report.
func (s *System) ShardWorkers() int {
	if s.shardPool == nil {
		return 1
	}
	return s.shardPool.Workers()
}

// collectDueSharded is the sharded due-discovery phase: collect each shard's
// due set (parallel when worthwhile), then merge by concatenation in shard
// index order. The result is byte-identical to the sequential
// sort(CollectDue(global)) because shard ranges ascend and each shard-local
// set is sorted.
func (s *System) collectDueSharded(now vtime.Time, out []int32) []int32 {
	// Dispatch gate: a pool dispatch costs two barrier crossings, worth
	// paying only when at least two shards actually have due work. The gate
	// reads each shard's root — O(shards) loads against heaps this goroutine
	// last wrote, no synchronization needed.
	dueShards := 0
	for _, q := range s.shardQ {
		if q.MinKey() <= now {
			dueShards++
		}
	}
	if dueShards == 0 {
		return out
	}
	if dueShards >= 2 && s.shardPool.Workers() >= 2 {
		s.shardNow = now
		s.shardPool.Run(s.shardFn)
	} else {
		for k, q := range s.shardQ {
			d := q.CollectDue(now, s.shardDue[k][:0])
			slices.Sort(d)
			s.shardDue[k] = d
		}
	}
	// Deterministic merge, timed only under MeasureLatency (same contract as
	// PolicyTime: no clock syscalls on the default path).
	var t0 time.Time
	if s.MeasureLatency {
		t0 = time.Now()
	}
	for k := range s.shardDue {
		out = append(out, s.shardDue[k]...)
	}
	if s.MeasureLatency {
		s.Counters.ShardMergeTime += time.Since(t0)
	}
	return out
}
