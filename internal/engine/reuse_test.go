package engine_test

import (
	"testing"

	"timedice/internal/engine"
	"timedice/internal/policies"
	"timedice/internal/vtime"
)

// collectSegments runs the system to the given instant and returns the trace.
func collectSegments(sys *engine.System, until vtime.Duration) []engine.Segment {
	var segs []engine.Segment
	sys.TraceFn = func(s engine.Segment) { segs = append(segs, s) }
	sys.Run(vtime.Time(until))
	sys.TraceFn = nil
	return segs
}

// TestResetSeedDeterminism pins the reuse contract: a system reset with
// ResetSeed replays the exact schedule of a freshly constructed system with
// that seed — segment for segment — and repeated resets keep replaying it.
func TestResetSeedDeterminism(t *testing.T) {
	const horizon = 500 * vtime.Millisecond
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW, policies.TimeDiceU} {
		t.Run(kind.String(), func(t *testing.T) {
			fresh := buildSystem(t, kind)
			want := collectSegments(fresh, horizon)

			reused := buildSystem(t, kind)
			// Dirty the system with a different-length run first so the reset
			// has real state to clear.
			reused.RunFor(137 * vtime.Millisecond)
			for trial := 0; trial < 3; trial++ {
				reused.ResetSeed(1) // buildSystem seeds rng.New(1)
				got := collectSegments(reused, horizon)
				if len(got) != len(want) {
					t.Fatalf("trial %d: %d segments, want %d", trial, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d: segment %d = %+v, want %+v", trial, i, got[i], want[i])
					}
				}
			}

			// Counters must match a fresh run too.
			reused.ResetSeed(1)
			reused.Run(vtime.Time(horizon))
			if reused.Counters != fresh.Counters {
				t.Errorf("counters diverge after reset: %+v vs %+v", reused.Counters, fresh.Counters)
			}
		})
	}
}

// TestTrialReuseZeroAlloc pins the campaign-reuse allocation contract: once a
// system has run one warm-up trial, ResetSeed + re-run allocates nothing.
func TestTrialReuseZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
		t.Run(kind.String(), func(t *testing.T) {
			sys := buildSystem(t, kind)
			sys.RunFor(vtime.Second) // warm freelists and scratch to high-water mark
			seed := uint64(1)
			allocs := testing.AllocsPerRun(20, func() {
				sys.ResetSeed(seed)
				seed++
				sys.RunFor(100 * vtime.Millisecond)
			})
			if allocs != 0 {
				t.Errorf("reused trial allocates %.1f times, want 0", allocs)
			}
		})
	}
}

// BenchmarkTrialReuse contrasts per-trial cost with and without system reuse:
// Fresh constructs the full system every trial (the pre-reuse campaign
// behaviour), Reset reuses one system via ResetSeed. Each op is one 100ms
// trial of the Table I system under TimeDiceW.
func BenchmarkTrialReuse(b *testing.B) {
	const trial = 100 * vtime.Millisecond
	b.Run("Fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := buildSystem(b, policies.TimeDiceW)
			sys.RunFor(trial)
		}
	})
	b.Run("Reset", func(b *testing.B) {
		sys := buildSystem(b, policies.TimeDiceW)
		sys.RunFor(trial) // warm-up trial
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.ResetSeed(uint64(i) + 1)
			sys.RunFor(trial)
		}
	})
}
