//go:build race

package engine_test

// raceEnabled: see race_off_test.go.
const raceEnabled = true
