package engine_test

import (
	"fmt"
	"testing"

	"timedice/internal/engine"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// buildSystem assembles the Table I base system under the given policy with
// no trace hook and no telemetry sink — the nil-sink hot path.
func buildSystem(tb testing.TB, kind policies.Kind) *engine.System {
	tb.Helper()
	built, err := workload.TableIBase().Build()
	if err != nil {
		tb.Fatal(err)
	}
	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(1))
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// BenchmarkEngineStep measures the steady-state stepping cost of the nil-sink
// engine: one op advances the warmed Table I system by one simulated
// millisecond. The path must stay at 0 allocs/op and make no clock syscalls
// (MeasureLatency off).
func BenchmarkEngineStep(b *testing.B) {
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
		b.Run(kind.String(), func(b *testing.B) {
			sys := buildSystem(b, kind)
			// Warm past the startup transient so job freelists and scratch
			// buffers reach their steady-state capacity.
			sys.RunFor(vtime.Second)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.RunFor(vtime.Millisecond)
			}
		})
	}
}

// BenchmarkRunnable measures the candidate-universe scan; the result shares
// the system's scratch buffer, so the call is allocation-free.
func BenchmarkRunnable(b *testing.B) {
	sys := buildSystem(b, policies.TimeDiceW)
	sys.RunFor(vtime.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := sys.Runnable(); len(got) > len(sys.Partitions) {
			b.Fatal("impossible candidate count")
		}
	}
}

// TestEngineHotPathZeroAlloc pins the allocation contract of the nil-sink
// engine: once warmed, stepping allocates nothing under either policy.
func TestEngineHotPathZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
		t.Run(kind.String(), func(t *testing.T) {
			sys := buildSystem(t, kind)
			sys.RunFor(vtime.Second)
			allocs := testing.AllocsPerRun(50, func() {
				sys.RunFor(10 * vtime.Millisecond)
			})
			if allocs != 0 {
				t.Errorf("steady-state stepping allocates %.1f times per 10ms slice, want 0", allocs)
			}
		})
	}
}

// TestRunnableScratchReuse verifies Runnable reuses its backing array across
// calls (the documented validity-until-next-call contract).
func TestRunnableScratchReuse(t *testing.T) {
	sys := buildSystem(t, policies.NoRandom)
	sys.RunFor(vtime.Second)
	first := sys.Runnable()
	// The probe may land on a fully idle instant; advance until a partition
	// is runnable (Table I keeps the CPU ~80% busy, so this is immediate).
	for steps := 0; len(first) == 0 && steps < 1000; steps++ {
		sys.RunFor(100 * vtime.Microsecond)
		first = sys.Runnable()
	}
	if len(first) == 0 {
		t.Fatal("no runnable partition found within 100ms probe window")
	}
	second := sys.Runnable()
	if &first[0] != &second[0] {
		t.Error("Runnable allocated a fresh slice; want scratch-buffer reuse")
	}
}

// buildSparse assembles the n-partition sparse-activity system (three hot
// partitions, n−3 second-scale cold ones) under NoRandom, optionally on the
// reference scan-stepping path.
func buildSparse(tb testing.TB, n int, scan bool) *engine.System {
	tb.Helper()
	built, err := workload.Sparse(n).Build()
	if err != nil {
		tb.Fatal(err)
	}
	pol, err := policies.Build(policies.NoRandom, built.Partitions, policies.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(1))
	if err != nil {
		tb.Fatal(err)
	}
	sys.ScanStepping = scan
	return sys
}

// BenchmarkEngineStepScale sweeps the partition axis on the sparse-activity
// workload: one op advances the warmed system by one simulated millisecond.
// The amount of schedulable work is constant across P, so the indexed
// variant should stay near-flat while the scan variant grows linearly —
// the gap (≥10× at P=4096, CI-gated) is the tentpole speedup
// BENCH_scale.json records.
//
// Besides ns/op, each run reports B/qpart-step: the engine's deterministic
// cache-traffic proxy (Counters.ArenaBytesTouched) per step per quiescent
// partition (P−3 of the sparse workload's partitions are cold at any given
// millisecond). Indexed stepping never visits a quiescent partition, so the
// metric falls toward 0 as P grows; scan stepping pays a full visit per
// partition per step, so it stays flat — the per-partition cache-line story
// behind the ns/op curves.
func BenchmarkEngineStepScale(b *testing.B) {
	for _, n := range []int{2, 8, 64, 256, 1024, 4096, 16384} {
		for _, mode := range []struct {
			name string
			scan bool
		}{{"indexed", false}, {"scan", true}} {
			b.Run(fmt.Sprintf("P%d/%s", n, mode.name), func(b *testing.B) {
				sys := buildSparse(b, n, mode.scan)
				// Warm past two full cycles of the slowest cold partition
				// (period up to ~2.06s) so job freelists reach steady state.
				sys.RunFor(5 * vtime.Second)
				b.ReportAllocs()
				before := sys.Counters
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys.RunFor(vtime.Millisecond)
				}
				b.StopTimer()
				// One decision per step, so Decisions counts steps exactly.
				steps := sys.Counters.Decisions - before.Decisions
				bytes := sys.Counters.ArenaBytesTouched - before.ArenaBytesTouched
				if quiescent := n - 3; quiescent > 0 && steps > 0 {
					b.ReportMetric(float64(bytes)/float64(steps)/float64(quiescent), "B/qpart-step")
				}
			})
		}
	}
}

// buildDense assembles the n-partition dense-activity system (every partition
// hot, staggered releases, long candidate lists) under TimeDiceW, the policy
// whose Algorithm-3 decision kernel the workload is built to stress.
func buildDense(tb testing.TB, n int) *engine.System {
	tb.Helper()
	built, err := workload.Dense(n).Build()
	if err != nil {
		tb.Fatal(err)
	}
	pol, err := policies.Build(policies.TimeDiceW, built.Partitions, policies.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(1))
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// BenchmarkEngineStepDense is BenchmarkEngineStepScale's heavy-inversion
// sibling: one op advances the warmed dense-activity system by one simulated
// millisecond under TimeDiceW. Where the sparse sweep keeps decisions trivial
// (few candidates) to isolate the stepping machinery, the dense workload
// keeps most partitions simultaneously runnable, so each decision's candidate
// search runs deep Algorithm-3 tests — the end-to-end cost the decision
// kernel (internal/core kernel.go) optimizes. Besides ns/op it reports the
// engine's deterministic decision-cost proxies per step: fixpoint iterations
// and interference terms (Counters.FixpointIters/InterferenceTerms).
func BenchmarkEngineStepDense(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("P%d", n), func(b *testing.B) {
			sys := buildDense(b, n)
			// Warm past several replenishment cycles (period grows with n,
			// up to 1.6s at P=1024, with releases staggered across the whole
			// period) so freelists and scratch reach capacity.
			sys.RunFor(10 * vtime.Second)
			b.ReportAllocs()
			before := sys.Counters
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.RunFor(vtime.Millisecond)
			}
			b.StopTimer()
			steps := sys.Counters.Decisions - before.Decisions
			if steps > 0 {
				iters := sys.Counters.FixpointIters - before.FixpointIters
				terms := sys.Counters.InterferenceTerms - before.InterferenceTerms
				b.ReportMetric(float64(iters)/float64(steps), "fixiters/step")
				b.ReportMetric(float64(terms)/float64(steps), "terms/step")
			}
		})
	}
}

// TestEngineDenseZeroAlloc pins the allocation contract on the dense
// heavy-inversion workload: long candidate lists and deep kernel fixpoints
// must not reintroduce per-decision allocation.
func TestEngineDenseZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	for _, n := range []int{64, 1024} {
		t.Run(fmt.Sprintf("P%d", n), func(t *testing.T) {
			sys := buildDense(t, n)
			sys.RunFor(10 * vtime.Second)
			allocs := testing.AllocsPerRun(50, func() {
				sys.RunFor(10 * vtime.Millisecond)
			})
			if allocs != 0 {
				t.Errorf("dense stepping at P=%d allocates %.1f times per 10ms slice, want 0", n, allocs)
			}
		})
	}
}

// TestEngineScaleZeroAlloc pins the allocation contract of the indexed
// stepping path at scale: once warmed, stepping sparse systems up to
// P=16384 allocates nothing.
func TestEngineScaleZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	for _, n := range []int{64, 256, 1024, 16384} {
		t.Run(fmt.Sprintf("P%d", n), func(t *testing.T) {
			sys := buildSparse(t, n, false)
			// Two full cycles of the slowest cold partition (~2.06s period).
			sys.RunFor(5 * vtime.Second)
			allocs := testing.AllocsPerRun(50, func() {
				sys.RunFor(10 * vtime.Millisecond)
			})
			if allocs != 0 {
				t.Errorf("steady-state stepping at P=%d allocates %.1f times per 10ms slice, want 0", n, allocs)
			}
		})
	}
}
