package engine_test

import (
	"testing"

	"timedice/internal/analysis"
	"timedice/internal/core"
	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/rng"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// TestSoakTimeDiceHour simulates a full hour of the 10-partition system under
// TimeDice and re-verifies the budget guarantee over every complete
// replenishment period of every partition — the schedulability-preservation
// claim at scale. Skipped in -short mode.
//
// The ×2 system is the largest duplication of Table I that is
// partition-schedulable under fixed priority; at ×4 the ceil-based
// interference of 15 higher-priority partitions exceeds the last partitions'
// periods, so there is no schedulability for TimeDice to preserve (the paper
// uses ×4 only for overhead measurements, never with a schedulability
// claim). An earlier version of this test ran ×4 and "found" sporadic budget
// shortfalls — they were the baseline's own deadline misses, reproduced
// faithfully.
func TestSoakTimeDiceHour(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	spec := workload.Scale(workload.TableIBase(), 2)
	if !analysis.SystemSchedulable(spec) {
		t.Fatal("precondition: the soak workload must be partition-schedulable")
	}
	greedy := spec
	greedy.Partitions = append([]model.PartitionSpec(nil), spec.Partitions...)
	for i := range greedy.Partitions {
		p := &greedy.Partitions[i]
		p.Tasks = []model.TaskSpec{{Name: "g", Period: p.Period, WCET: p.Budget}}
	}
	built, err := greedy.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, core.NewPolicy(), rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	supply := make([]map[int64]vtime.Duration, len(greedy.Partitions))
	for i := range supply {
		supply[i] = make(map[int64]vtime.Duration)
	}
	sys.TraceFn = func(seg engine.Segment) {
		if seg.Partition < 0 {
			return
		}
		T := greedy.Partitions[seg.Partition].Period
		for t0 := seg.Start; t0 < seg.End; {
			k := int64(t0) / int64(T)
			winEnd := vtime.Time((k + 1) * int64(T))
			chunk := seg.End.Min(winEnd).Sub(t0)
			supply[seg.Partition][k] += chunk
			t0 = t0.Add(chunk)
		}
	}
	const horizon = 3600 * vtime.Second
	sys.Run(vtime.Time(horizon))

	violations := 0
	for i, p := range greedy.Partitions {
		periods := int64(horizon) / int64(p.Period)
		for k := int64(0); k < periods; k++ {
			if supply[i][k] != p.Budget {
				violations++
				if violations < 5 {
					t.Errorf("%s period %d: %v of %v", p.Name, k, supply[i][k], p.Budget)
				}
			}
		}
	}
	if violations > 0 {
		t.Fatalf("%d budget violations over one simulated hour", violations)
	}
	t.Logf("1h soak: %d decisions, %d switches, zero budget violations over %d partition-periods",
		sys.Counters.Decisions, sys.Counters.Switches, int64(horizon)/int64(vtime.MS(20)))
}
