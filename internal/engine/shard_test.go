package engine_test

import (
	"fmt"
	"testing"

	"timedice/internal/check"
	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/shard"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// buildFor assembles a system for the given spec and policy kind with no
// sink attached — the shard tests attach their own digesters.
func buildFor(tb testing.TB, spec model.SystemSpec, kind policies.Kind) *engine.System {
	tb.Helper()
	built, err := spec.Build()
	if err != nil {
		tb.Fatal(err)
	}
	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(1))
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// shardFixtures are the workload/policy mixes the exactness tests sweep:
// dense keeps most partitions runnable (deep Algorithm-3 searches, so the
// decision phase's speculate-then-replay is exercised hard), sparse keeps
// the due phase selective (shard heaps mostly empty), and the Table I base
// system is the paper's reference shape.
var shardFixtures = []struct {
	name string
	spec func() model.SystemSpec
	kind policies.Kind
	run  vtime.Duration
}{
	{"dense_P96_timedicew", func() model.SystemSpec { return workload.Dense(96) }, policies.TimeDiceW, 2 * vtime.Second},
	{"sparse_P256_timedicew", func() model.SystemSpec { return workload.Sparse(256) }, policies.TimeDiceW, 2 * vtime.Second},
	{"sparse_P256_norandom", func() model.SystemSpec { return workload.Sparse(256) }, policies.NoRandom, 2 * vtime.Second},
	{"tableI_timediceu", workload.TableIBase, policies.TimeDiceU, 2 * vtime.Second},
}

// TestShardedSteppingMatchesSequential is the engine-level exactness pin:
// for every fixture, worker count, and shard count — including shard counts
// that split unevenly, equal P (singleton shards), and exceed P (empty
// shards) — the sharded run's event-stream digest, event count, and full
// Counters struct must equal the sequential run's byte for byte. Run under
// -race (the CI race lane) it is also the concurrency test for shard
// workers sharing the hot arenas read-only.
func TestShardedSteppingMatchesSequential(t *testing.T) {
	for _, fx := range shardFixtures {
		t.Run(fx.name, func(t *testing.T) {
			ref := buildFor(t, fx.spec(), fx.kind)
			refDig := check.NewDigester()
			ref.AttachTelemetry(refDig)
			ref.RunFor(fx.run)
			if refDig.Events() == 0 {
				t.Fatal("sequential reference emitted no events")
			}
			p := len(ref.Partitions)
			for _, workers := range []int{1, 2, 4, 8} {
				pool := shard.NewPool(workers)
				for _, shards := range []int{2, 3, 7, 4 * workers, p, 3 * p} {
					sys := buildFor(t, fx.spec(), fx.kind)
					dig := check.NewDigester()
					sys.AttachTelemetry(dig)
					sys.SetSharding(pool, shards)
					if got := sys.ShardWorkers(); got != workers {
						t.Fatalf("ShardWorkers() = %d, want %d", got, workers)
					}
					sys.RunFor(fx.run)
					if dig.Digest() != refDig.Digest() || dig.Events() != refDig.Events() {
						t.Errorf("workers=%d shards=%d: digest %#x (%d events), sequential %#x (%d events)",
							workers, shards, dig.Digest(), dig.Events(), refDig.Digest(), refDig.Events())
					}
					if sys.Counters != ref.Counters {
						t.Errorf("workers=%d shards=%d: counters diverge:\n sharded    %+v\n sequential %+v",
							workers, shards, sys.Counters, ref.Counters)
					}
				}
				pool.Close()
			}
		})
	}
}

// TestShardedDisableResyncs pins SetSharding's disable path: the global
// event heap goes stale while sharded, and disabling must resync it so the
// continued sequential run matches a never-sharded one exactly.
func TestShardedDisableResyncs(t *testing.T) {
	ref := buildFor(t, workload.Dense(64), policies.TimeDiceW)
	refDig := check.NewDigester()
	ref.AttachTelemetry(refDig)
	ref.RunFor(3 * vtime.Second)

	pool := shard.NewPool(4)
	defer pool.Close()
	sys := buildFor(t, workload.Dense(64), policies.TimeDiceW)
	dig := check.NewDigester()
	sys.AttachTelemetry(dig)
	sys.SetSharding(pool, 16)
	sys.RunFor(vtime.Second)
	sys.SetSharding(nil, 0) // back to the sequential configuration mid-run
	sys.RunFor(2 * vtime.Second)
	if dig.Digest() != refDig.Digest() || sys.Counters != ref.Counters {
		t.Errorf("sharded-then-disabled run diverged from sequential: digest %#x vs %#x",
			dig.Digest(), refDig.Digest())
	}
}

// TestShardedResetReplays pins Reset under sharding: the shard heaps must
// rewind with the rest of the system so a reset run replays the first one.
func TestShardedResetReplays(t *testing.T) {
	pool := shard.NewPool(4)
	defer pool.Close()
	sys := buildFor(t, workload.Dense(64), policies.TimeDiceW)
	dig := check.NewDigester()
	sys.AttachTelemetry(dig)
	sys.SetSharding(pool, 16)
	sys.RunFor(vtime.Second)
	first := dig.Digest()
	sys.ResetSeed(1)
	dig.Reset()
	sys.RunFor(vtime.Second)
	if dig.Digest() != first {
		t.Errorf("reset sharded run digest %#x, first run %#x", dig.Digest(), first)
	}
}

// TestShardedSteppingZeroAlloc pins the steady-state cost contract of the
// sharded step loop: once warmed, stepping with a live pool dispatch — due
// collection and the speculative decision phase both crossing the barrier —
// allocates nothing.
func TestShardedSteppingZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	pool := shard.NewPool(2)
	defer pool.Close()
	sys := buildFor(t, workload.Dense(256), policies.TimeDiceW)
	sys.SetSharding(pool, 8)
	sys.RunFor(10 * vtime.Second)
	allocs := testing.AllocsPerRun(50, func() {
		sys.RunFor(10 * vtime.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("steady-state sharded stepping allocates %.1f times per 10ms slice, want 0", allocs)
	}
}

// BenchmarkEngineStepShard is the scaling matrix behind BENCH_scale.json's
// shard section: one op advances the warmed system by one simulated
// millisecond, swept over workers ∈ {1,2,4,8} with shards = 4·workers.
// dense/P1024 (TimeDiceW, deep candidate searches) is the speedup-gated
// configuration; the sparse P=4096/16384 rows probe the due/horizon phases
// at scale, where per-step work is too small to amortize a dispatch — the
// gate applies to dense only.
func BenchmarkEngineStepShard(b *testing.B) {
	type cfg struct {
		name string
		spec func() model.SystemSpec
		kind policies.Kind
		warm vtime.Duration
	}
	for _, c := range []cfg{
		{"dense_P1024", func() model.SystemSpec { return workload.Dense(1024) }, policies.TimeDiceW, 10 * vtime.Second},
		{"sparse_P4096", func() model.SystemSpec { return workload.Sparse(4096) }, policies.NoRandom, 30 * vtime.Second},
		{"sparse_P16384", func() model.SystemSpec { return workload.Sparse(16384) }, policies.NoRandom, 30 * vtime.Second},
	} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers%d", c.name, workers), func(b *testing.B) {
				pool := shard.NewPool(workers)
				defer pool.Close()
				sys := buildFor(b, c.spec(), c.kind)
				if workers > 1 {
					sys.SetSharding(pool, 4*workers)
				}
				sys.RunFor(c.warm)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys.RunFor(vtime.Millisecond)
				}
			})
		}
	}
}
