//go:build timedice_mutation

package engine

// Mutation build: the snapshot encoder silently drops the sporadic server's
// pending replenishment chunks. See mutation_off.go for the contract; the
// point of this build is proving the differential restore suite notices.
const snapshotDropsSporadicSupply = true
