package engine

// Versioned binary state serialization: Snapshot captures the complete
// dynamic state of a System at a step boundary, Restore replaces a
// same-configuration System's state with a previously captured one, and the
// two compose into the digest-identity contract the snapshot test battery
// pins: snapshot → restore → run-to-horizon is byte-identical (event stream,
// counters) to straight-line execution.
//
// What is captured vs recomputed:
//
//   - Captured verbatim: the clock, the last pick, the epoch/stamps of the
//     verdict cache, the deterministic counters, the inversion-window edge
//     state, the RNG position, per-partition consumed time, the nextEv
//     cache, and the full server/local-scheduler state (budgets,
//     replenishment chunk queues, pending job rings, arrival anchors, the
//     in-flight job). nextEv in particular must never be recomputed: its
//     entries are defined by the engine's lazy refresh discipline (arrival
//     anchors initialize on first delivery), and recomputing them would
//     deliver differently than the straight line.
//   - Recomputed on restore: the SoA hot arenas and the ready bitset, which
//     are pure functions of the restored server/scheduler state at a step
//     boundary (publishHot invariant), and the IndexMin heap layout, which is
//     rebuilt from the restored nextEv keys (heap shape among equal keys is
//     unobservable: due-set delivery is sorted and MinKey is a minimum).
//   - Flushed: the policy's decision state (verdict cache, search reuse)
//     via PolicyResetter. The cache is exact — pinned digest-identical to
//     the uncached path — so flushing it never changes a schedule.
//
// The wire format is a flat little-endian u64 stream: an 8-byte magic,
// SnapshotVersion, a configuration fingerprint (partition priorities, server
// parameters, task parameters and names, policy name and quantum), the
// partition count, then the body. Decoding is hard-capped (total size and
// per-queue lengths bounded by the remaining input) and fully validated
// against the target system's static configuration before anything is
// mutated: on any error the System is unchanged. Restore accepts only
// canonical encodings — every accepted byte stream re-encodes to itself —
// which FuzzSnapshotBytes pins.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"timedice/internal/eventq"
	"timedice/internal/server"
	"timedice/internal/task"
	"timedice/internal/vtime"
)

// SnapshotVersion is the wire-format version Snapshot writes and Restore
// requires. Bump it on any change to the serialized layout or semantics; the
// golden snapshot test (testdata/golden-v<N>.snapshot) fails loudly until the
// version and its golden artifact move together.
const SnapshotVersion = 1

var snapshotMagic = [8]byte{'T', 'D', 'I', 'C', 'E', 's', 'n', 'p'}

// maxSnapshotBytes caps the input Restore will read: well beyond any live
// state the simulator produces (a P=16384 system with deep backlogs is a few
// MiB), but small enough that hostile input cannot balloon memory.
const maxSnapshotBytes = 64 << 20

// snapshotCounters lists the Counters fields a snapshot carries: the
// deterministic ones. The wall-clock measurements (PolicyTime,
// PolicySamples, PolicyLatency) are observations of the host, not simulation
// state, and are excluded from both the snapshot and the digest-identity
// contract. The decision-cost proxies (FixpointIters, InterferenceTerms) are
// excluded for a subtler reason: Restore flushes the policy's verdict cache
// (exactly — the schedule is unchanged), so the restored run recomputes
// fixpoints the straight-line run served from cache and the proxies diverge
// by design. Like the wall-clock fields they restart at zero after Restore.
func snapshotCounters(c *Counters) [10]int64 {
	return [10]int64{
		c.Decisions, c.Switches, c.IdleDecisions,
		int64(c.BusyTime), int64(c.IdleTime),
		c.DeadlineMisses, c.InversionWindows, int64(c.InversionTime),
		c.MinAdvances, c.ArenaBytesTouched,
	}
}

// Snapshot writes the system's complete dynamic state to w in the versioned
// binary format. Call it at a step boundary (between Step/Run calls); the
// state written is exactly what Restore needs to continue the run
// digest-identically. The system is not mutated.
func (s *System) Snapshot(w io.Writer) error {
	_, err := w.Write(s.appendSnapshot(nil))
	return err
}

func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }

func boolU64(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

func (s *System) appendSnapshot(b []byte) []byte {
	b = append(b, snapshotMagic[:]...)
	b = appendU64(b, SnapshotVersion)
	b = appendU64(b, s.configFingerprint())
	b = appendU64(b, uint64(len(s.Partitions)))
	b = appendI64(b, int64(s.now))
	b = appendI64(b, int64(s.running))
	b = appendU64(b, s.epoch)
	counters := snapshotCounters(&s.Counters)
	for _, v := range counters {
		b = appendI64(b, v)
	}
	b = appendU64(b, boolU64(s.invOpen))
	b = appendI64(b, int64(s.invStart))
	st := s.Rand.State()
	for _, v := range st {
		b = appendU64(b, v)
	}
	var replBuf []eventq.Entry[vtime.Duration]
	for i, p := range s.Partitions {
		b = appendI64(b, int64(s.perPart[i]))
		b = appendI64(b, int64(s.nextEv[i]))
		b = appendU64(b, s.stamps[i])
		srv := p.Server.SaveState(replBuf[:0])
		replBuf = srv.Repl
		b = appendI64(b, int64(srv.Remaining))
		b = appendI64(b, int64(srv.LastReplenish))
		repl := srv.Repl
		if snapshotDropsSporadicSupply {
			repl = nil // mutation hook: silently lose the sporadic chunk supply
		}
		b = appendU64(b, uint64(len(repl)))
		for _, e := range repl {
			b = appendI64(b, int64(e.At))
			b = appendI64(b, int64(e.Val))
		}
		sched := p.Local.SaveState()
		b = appendI64(b, sched.Completed)
		b = appendI64(b, sched.InFlightTask)
		b = appendI64(b, sched.InFlightJob)
		for _, ts := range sched.Tasks {
			b = appendU64(b, boolU64(ts.Started))
			b = appendI64(b, int64(ts.NextArrival))
			b = appendI64(b, ts.NextIndex)
			b = appendU64(b, uint64(len(ts.Pending)))
			for _, j := range ts.Pending {
				b = appendI64(b, j.Index)
				b = appendI64(b, int64(j.Arrival))
				b = appendI64(b, int64(j.Demand))
				b = appendI64(b, int64(j.Remaining))
			}
		}
	}
	return b
}

// configFingerprint digests the static configuration a snapshot is only
// valid against: partition count, priorities, names, server parameters,
// task parameters and names, and the policy's name and quantum. FNV-1a,
// folded bytewise like the event digest.
func (s *System) configFingerprint() uint64 {
	const offset, prime = uint64(0xcbf29ce484222325), uint64(0x100000001b3)
	h := offset
	foldU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime
			v >>= 8
		}
	}
	foldStr := func(v string) {
		foldU64(uint64(len(v)))
		for i := 0; i < len(v); i++ {
			h = (h ^ uint64(v[i])) * prime
		}
	}
	foldU64(uint64(len(s.Partitions)))
	for _, p := range s.Partitions {
		foldStr(p.Name)
		foldU64(uint64(int64(p.Priority)))
		foldU64(uint64(p.Server.Budget()))
		foldU64(uint64(p.Server.Period()))
		foldU64(uint64(p.Server.PolicyKind()))
		tasks := p.Local.Tasks()
		foldU64(uint64(len(tasks)))
		for _, t := range tasks {
			foldStr(t.Name)
			foldU64(uint64(t.Period))
			foldU64(uint64(t.WCET))
			foldU64(uint64(t.Deadline))
			foldU64(uint64(t.Offset))
		}
	}
	foldStr(s.Policy.Name())
	foldU64(uint64(s.Policy.Quantum()))
	return h
}

// snapReader is a latching-error cursor over the decoded byte stream.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *snapReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.err = fmt.Errorf("engine: snapshot truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *snapReader) i64() int64 { return int64(r.u64()) }

func (r *snapReader) dur() vtime.Duration { return vtime.Duration(r.i64()) }

func (r *snapReader) time() vtime.Time { return vtime.Time(r.i64()) }

// count reads a length prefix and bounds it by the bytes actually remaining
// (each item consumes at least itemBytes), so a hostile length cannot force
// an over-allocation.
func (r *snapReader) count(itemBytes int) int {
	v := r.u64()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.off)/uint64(itemBytes) {
		r.fail("engine: snapshot count %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

func (r *snapReader) boolean() bool {
	switch r.u64() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("engine: snapshot boolean field is neither 0 nor 1")
		return false
	}
}

// snapState is the fully decoded, not-yet-applied snapshot body.
type snapState struct {
	now      vtime.Time
	running  int
	epoch    uint64
	counters [10]int64
	invOpen  bool
	invStart vtime.Time
	rand     [4]uint64
	parts    []snapPart
}

type snapPart struct {
	perPart vtime.Duration
	nextEv  vtime.Time
	stamp   uint64
	srv     server.State
	sched   task.SchedulerState
}

// Restore replaces the system's dynamic state with a snapshot previously
// written by Snapshot on a system with the identical static configuration
// (same partitions, servers, task sets, policy kind and quantum — enforced
// via the embedded fingerprint). The input is size-capped, fully decoded,
// and validated before anything is touched: on error the System is
// unchanged. On success the policy's decision state is flushed
// (PolicyResetter), the hot arenas, ready bitset, and event heap are rebuilt
// from the restored state, and continuing the run is digest-identical to the
// run the snapshot was taken from. The telemetry sink, TraceFn, and stepping
// mode are not part of the snapshot; configure them as usual around Restore.
func (s *System) Restore(r io.Reader) error {
	data, err := io.ReadAll(io.LimitReader(r, maxSnapshotBytes+1))
	if err != nil {
		return fmt.Errorf("engine: snapshot read: %w", err)
	}
	if len(data) > maxSnapshotBytes {
		return fmt.Errorf("engine: snapshot exceeds the %d-byte cap", maxSnapshotBytes)
	}
	st, err := s.decodeSnapshot(data)
	if err != nil {
		return err
	}
	return s.applySnapshot(st)
}

var errSnapshotMagic = errors.New("engine: not a snapshot (bad magic)")

// decodeSnapshot parses and validates data against s's static configuration
// without mutating s.
func (s *System) decodeSnapshot(data []byte) (*snapState, error) {
	r := &snapReader{b: data}
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != string(snapshotMagic[:]) {
		return nil, errSnapshotMagic
	}
	r.off = len(snapshotMagic)
	if v := r.u64(); r.err == nil && v != SnapshotVersion {
		return nil, fmt.Errorf("engine: snapshot version %d, this build reads %d", v, SnapshotVersion)
	}
	if fp := r.u64(); r.err == nil && fp != s.configFingerprint() {
		return nil, fmt.Errorf("engine: snapshot configuration fingerprint %#016x does not match this system (%#016x)",
			fp, s.configFingerprint())
	}
	if p := r.u64(); r.err == nil && p != uint64(len(s.Partitions)) {
		return nil, fmt.Errorf("engine: snapshot has %d partitions, system has %d", p, len(s.Partitions))
	}
	st := &snapState{}
	st.now = r.time()
	running := r.i64()
	st.epoch = r.u64()
	for i := range st.counters {
		st.counters[i] = r.i64()
	}
	st.invOpen = r.boolean()
	st.invStart = r.time()
	for i := range st.rand {
		st.rand[i] = r.u64()
	}
	if r.err != nil {
		return nil, r.err
	}
	if st.now < 0 || st.now >= vtime.Infinity {
		return nil, fmt.Errorf("engine: snapshot clock %d out of range", int64(st.now))
	}
	if running < -1 || running >= int64(len(s.Partitions)) {
		return nil, fmt.Errorf("engine: snapshot running index %d out of range", running)
	}
	st.running = int(running)
	for i, v := range st.counters {
		if v < 0 {
			return nil, fmt.Errorf("engine: snapshot counter %d is negative (%d)", i, v)
		}
	}
	if st.invStart < 0 || st.invStart > st.now {
		return nil, fmt.Errorf("engine: snapshot inversion start %v outside [0, now]", st.invStart)
	}
	if st.rand[0]|st.rand[1]|st.rand[2]|st.rand[3] == 0 {
		return nil, errors.New("engine: snapshot rng state is all-zero")
	}
	var perPartSum vtime.Duration
	st.parts = make([]snapPart, len(s.Partitions))
	for i, p := range s.Partitions {
		sp := &st.parts[i]
		sp.perPart = r.dur()
		sp.nextEv = r.time()
		sp.stamp = r.u64()
		sp.srv.Remaining = r.dur()
		sp.srv.LastReplenish = r.time()
		nRepl := r.count(16)
		for k := 0; k < nRepl; k++ {
			sp.srv.Repl = append(sp.srv.Repl, eventq.Entry[vtime.Duration]{At: r.time(), Val: r.dur()})
		}
		sp.sched.Completed = r.i64()
		sp.sched.InFlightTask = r.i64()
		sp.sched.InFlightJob = r.i64()
		nTasks := len(p.Local.Tasks())
		sp.sched.Tasks = make([]task.TaskState, nTasks)
		for t := 0; t < nTasks; t++ {
			ts := &sp.sched.Tasks[t]
			ts.Started = r.boolean()
			ts.NextArrival = r.time()
			ts.NextIndex = r.i64()
			nPend := r.count(32)
			for k := 0; k < nPend; k++ {
				ts.Pending = append(ts.Pending, task.JobState{
					Index: r.i64(), Arrival: r.time(), Demand: r.dur(), Remaining: r.dur(),
				})
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		if sp.perPart < 0 {
			return nil, fmt.Errorf("engine: snapshot partition %d has negative consumed time", i)
		}
		perPartSum += sp.perPart
		if sp.nextEv < 0 {
			return nil, fmt.Errorf("engine: snapshot partition %d has negative next-event time", i)
		}
		if sp.stamp > st.epoch {
			return nil, fmt.Errorf("engine: snapshot partition %d stamp %d exceeds epoch %d", i, sp.stamp, st.epoch)
		}
		if err := p.Server.CheckState(sp.srv); err != nil {
			return nil, fmt.Errorf("engine: snapshot partition %d: %w", i, err)
		}
		if err := p.Local.CheckState(sp.sched); err != nil {
			return nil, fmt.Errorf("engine: snapshot partition %d: %w", i, err)
		}
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("engine: %d trailing bytes after snapshot body", len(r.b)-r.off)
	}
	// Cross-field invariants the engine maintains: per-partition consumed
	// time sums to BusyTime, and busy + idle tile the clock exactly.
	if perPartSum != vtime.Duration(st.counters[3]) {
		return nil, fmt.Errorf("engine: snapshot per-partition time sums to %v, busy counter is %v",
			perPartSum, vtime.Duration(st.counters[3]))
	}
	if vtime.Duration(st.counters[3])+vtime.Duration(st.counters[4]) != vtime.Duration(st.now) {
		return nil, fmt.Errorf("engine: snapshot busy+idle (%v) does not tile the clock (%v)",
			vtime.Duration(st.counters[3])+vtime.Duration(st.counters[4]), vtime.Duration(st.now))
	}
	return st, nil
}

// applySnapshot installs a decoded-and-validated snapshot. Validation makes
// the Load* calls infallible here, so the unchanged-on-error contract holds.
func (s *System) applySnapshot(st *snapState) error {
	for i, p := range s.Partitions {
		// Re-validated inside Load*, cheaply; errors are unreachable after
		// decodeSnapshot but propagated for defense.
		if err := p.Server.LoadState(st.parts[i].srv); err != nil {
			return err
		}
		if err := p.Local.LoadState(st.parts[i].sched); err != nil {
			return err
		}
	}
	if err := s.Rand.SetState(st.rand); err != nil {
		return err
	}
	s.now = st.now
	s.running = st.running
	s.epoch = st.epoch
	h := s.Counters.PolicyLatency
	s.Counters = Counters{
		Decisions:         st.counters[0],
		Switches:          st.counters[1],
		IdleDecisions:     st.counters[2],
		BusyTime:          vtime.Duration(st.counters[3]),
		IdleTime:          vtime.Duration(st.counters[4]),
		DeadlineMisses:    st.counters[5],
		InversionWindows:  st.counters[6],
		InversionTime:     vtime.Duration(st.counters[7]),
		MinAdvances:       st.counters[8],
		ArenaBytesTouched: st.counters[9],
	}
	if h != nil {
		h.Reset()
		s.Counters.PolicyLatency = h
	}
	s.invOpen = st.invOpen
	s.invStart = st.invStart
	s.evq.Reset()
	for _, q := range s.shardQ {
		q.Reset() // the setNextEv loop below rewrites every sharded key
	}
	s.ready.Reset()
	for i, p := range s.Partitions {
		s.perPart[i] = st.parts[i].perPart
		s.stamps[i] = st.parts[i].stamp
		s.setNextEv(i, st.parts[i].nextEv)
		// The arenas and the ready bit are pure functions of the restored
		// server/scheduler state at a step boundary; recompute rather than
		// serialize (the publishHot invariant keeps them exact either way).
		s.hotRemaining[i] = p.Server.Remaining()
		s.hotDeadline[i] = p.Server.Deadline()
		s.hotSupply[i] = p.Server.NextReplenish()
		if p.Runnable() {
			s.ready.Set(i)
		}
	}
	if pr, ok := s.Policy.(PolicyResetter); ok {
		pr.Reset()
	}
	return nil
}
