//go:build !timedice_mutation

package engine

// snapshotDropsSporadicSupply enables the snapshot-encoder mutant: when true,
// Snapshot silently omits the sporadic server's pending replenishment chunks,
// producing a well-formed snapshot that restores cleanly but continues the run
// with the supply stream lost. The differential restore suite must catch the
// divergence (TestSnapshotMutationCaught, built with -tags timedice_mutation);
// in normal builds the constant is false and the branch compiles away.
const snapshotDropsSporadicSupply = false
