package analysis

import (
	"timedice/internal/model"
	"timedice/internal/vtime"
)

// This file implements the compositional schedulability machinery of the
// periodic resource model (Shin & Lee, RTSS 2003 — the paper's reference
// [15]): supply bound functions (sbf) for the partition's CPU allocation and
// demand bound functions (dbf) for its task set. It provides an independent
// cross-check of the response-time analyses in analysis.go: a task set that
// is sbf/dbf-schedulable must also have WCRTs within deadlines, and vice
// versa for the supply models that match.

// SupplyBound returns the worst-case CPU supply a partition with budget B
// and period T is guaranteed over ANY interval of length t under the
// periodic resource model Γ=(T, B): the interval starts just after a budget
// was delivered at the very beginning of a period, and every subsequent
// budget arrives at the very end of its period — an initial blackout of
// 2(T−B), then B per T delivered contiguously:
//
//	sbf(t) = 0                                   for t ≤ 2(T−B)
//	sbf(t) = k·B + min(t', B), t' = t−2(T−B)−kT  with k = ⌊(t−2(T−B))/T⌋.
//
// This is exactly the worst-case supply behind the paper's Eq. (4): solving
// sbf(t) ≥ L for the smallest t gives t = 2(T−B) + (⌈L/B⌉−1)·T +
// (L−(⌈L/B⌉−1)·B), which equals (T−B) + L + ⌈L/B⌉·(T−B), the TimeDice WCRT
// recurrence body.
func SupplyBound(B, T vtime.Duration, t vtime.Duration) vtime.Duration {
	blackout := 2 * (T - B)
	if t <= blackout {
		return 0
	}
	rem := t - blackout
	k := vtime.FloorDiv(rem, T)
	frac := rem - vtime.Duration(k)*T
	return vtime.Duration(k)*B + frac.Min(B)
}

// DemandBound returns the demand bound function of a task set under
// fixed-priority scheduling is priority-dependent; for the common EDF-style
// dbf used as a sufficient check here we use the synchronous arrival demand
// of the first tj+1 tasks over an interval t:
//
//	dbf(t) = Σ_{x ≤ tj} ⌈t / p_x⌉ · e_x   (request bound function, rbf)
//
// which upper-bounds the work the local scheduler must finish for τ_{tj}
// and its local higher-priority tasks within t of the critical instant.
func DemandBound(p model.PartitionSpec, tj int, t vtime.Duration) vtime.Duration {
	var demand vtime.Duration
	for x := 0; x <= tj; x++ {
		ts := p.Tasks[x]
		demand += vtime.Duration(vtime.CeilDiv(t, ts.Period)) * ts.WCET
	}
	return demand
}

// CompositionalSchedulable performs the sbf/rbf check for task tj of
// partition pi: the task is schedulable under the periodic resource model if
// there exists a t ≤ deadline with rbf(t) ≤ sbf(t). This is the classical
// sufficient test for fixed-priority local scheduling on a periodic
// resource; it is more conservative than the exact WCRT analysis for
// NoRandom but matches the TimeDice supply model (each budget chunk may be
// deferred to the end of its period), so:
//
//	CompositionalSchedulable ⇒ WCRTTimeDice ≤ deadline.
//
// The test checks t at all rbf step points (multiples of task periods) and
// at the deadline.
func CompositionalSchedulable(spec model.SystemSpec, pi, tj int) bool {
	p := spec.Partitions[pi]
	task := p.Tasks[tj]
	deadline := task.Deadline
	if deadline == 0 {
		deadline = task.Period
	}
	// Candidate instants: every arrival multiple of each local hp task up to
	// the deadline, plus the deadline itself.
	check := func(t vtime.Duration) bool {
		return DemandBound(p, tj, t) <= SupplyBound(p.Budget, p.Period, t)
	}
	if check(deadline) {
		return true
	}
	for x := 0; x <= tj; x++ {
		period := p.Tasks[x].Period
		for k := int64(1); ; k++ {
			t := vtime.Duration(k) * period
			if t > deadline {
				break
			}
			if check(t) {
				return true
			}
		}
	}
	return false
}
