package analysis

import (
	"timedice/internal/model"
	"timedice/internal/server"
	"timedice/internal/vtime"
)

// PartitionSchedulableConservative is PartitionSchedulable hardened for mixed
// server policies: a higher-priority deferrable server may retain its budget
// to the end of one period and replenish at the boundary, hitting a
// lower-priority partition back-to-back (Strosnider's double-hit). The plain
// level-i busy-interval test assumes periodic supply and misses that, so here
// every deferrable partition above pi contributes one extra budget of
// interference: w = B_i + Σ_{h<i} (⌈w/T_h⌉ + 1)·B_h ≤ T_i.
//
// Sporadic servers get the same extra term: their replenishment chunks trail
// consumption rather than landing on period boundaries, so while any sliding
// window of length T_h supplies at most B_h (Sprunt et al.), a window aligned
// to Π_i's period can still see one extra partial hit, exactly like the
// deferrable compression. The test is sufficient, never necessary: passing it
// guarantees the partition receives its full budget every period under
// fixed-priority global scheduling.
func PartitionSchedulableConservative(spec model.SystemSpec, pi int) bool {
	p := spec.Partitions[pi]
	bound := p.Period * 2
	w := p.Budget
	for iter := 0; iter < maxIterations; iter++ {
		next := p.Budget
		for h := 0; h < pi; h++ {
			hp := spec.Partitions[h]
			hits := vtime.CeilDiv(w, hp.Period)
			if hp.Server == server.Deferrable || hp.Server == server.Sporadic {
				hits++
			}
			next += vtime.Duration(hits) * hp.Budget
		}
		if next == w {
			return w <= p.Period
		}
		if next > bound {
			return false
		}
		w = next
	}
	return false
}

// SystemSchedulableConservative reports whether every partition passes the
// conservative (deferrable-aware) schedulability test. The scenario generator
// and the runtime oracles use this gate: a system passing it is guaranteed
// per-period budget supply regardless of the mix of server policies, which is
// the precondition for the supply-based WCRT bounds and the starvation
// oracle.
func SystemSchedulableConservative(spec model.SystemSpec) bool {
	for i := range spec.Partitions {
		if !PartitionSchedulableConservative(spec, i) {
			return false
		}
	}
	return true
}
