package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"timedice/internal/model"
	"timedice/internal/rng"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

// tableIIAnalytic holds the paper's Table II "Anal." columns in milliseconds:
// for each of the 25 tasks of the Table I system, the analytic WCRT under
// NoRandom and under TimeDice. Reproducing these exactly validates both the
// Davis & Burns hierarchical analysis and the paper's Eqs. (4)-(5).
var tableIIAnalytic = []struct {
	task     string
	noRandom float64
	timeDice float64
}{
	{"t1,1", 18.00, 34.80},
	{"t1,2", 37.20, 55.20},
	{"t1,3", 60.00, 76.80},
	{"t1,4", 158.40, 235.20},
	{"t1,5", 598.80, 616.80},
	{"t2,1", 30.20, 52.20},
	{"t2,2", 59.00, 82.80},
	{"t2,3", 93.20, 115.20},
	{"t2,4", 330.80, 352.80},
	{"t2,5", 903.20, 925.20},
	{"t3,1", 44.00, 69.60},
	{"t3,2", 84.80, 110.40},
	{"t3,3", 128.00, 153.60},
	{"t3,4", 444.80, 470.40},
	{"t3,5", 1208.00, 1233.60},
	{"t4,1", 59.40, 87.00},
	{"t4,2", 110.40, 138.00},
	{"t4,3", 167.60, 192.00},
	{"t4,4", 560.40, 588.00},
	{"t4,5", 1517.60, 1542.00},
	{"t5,1", 79.60, 104.40},
	{"t5,2", 145.60, 165.60},
	{"t5,3", 210.40, 230.40},
	{"t5,4", 685.60, 705.60},
	{"t5,5", 1830.40, 1850.40},
}

func TestTableIIGoldenValues(t *testing.T) {
	spec := workload.TableIBase()
	results, err := AnalyzeSystem(spec)
	if err != nil {
		t.Fatalf("AnalyzeSystem: %v", err)
	}
	if len(results) != len(tableIIAnalytic) {
		t.Fatalf("got %d results, want %d", len(results), len(tableIIAnalytic))
	}
	for i, want := range tableIIAnalytic {
		got := results[i]
		if got.Task != want.task {
			t.Fatalf("row %d: task %q, want %q", i, got.Task, want.task)
		}
		if nr := got.NoRandom.Milliseconds(); math.Abs(nr-want.noRandom) > 1e-9 {
			t.Errorf("%s NoRandom WCRT = %.2f ms, want %.2f ms", want.task, nr, want.noRandom)
		}
		if td := got.TimeDice.Milliseconds(); math.Abs(td-want.timeDice) > 1e-9 {
			t.Errorf("%s TimeDice WCRT = %.2f ms, want %.2f ms", want.task, td, want.timeDice)
		}
		if !got.Schedulable() {
			t.Errorf("%s reported unschedulable (deadline %v, NR %v, TD %v)",
				want.task, got.Deadline, got.NoRandom, got.TimeDice)
		}
	}
}

func TestTableIPartitionSchedulability(t *testing.T) {
	for _, spec := range []model.SystemSpec{workload.TableIBase(), workload.TableILight(), workload.Car(), workload.ThreePartition()} {
		if !SystemSchedulable(spec) {
			t.Errorf("system %q should be partition-schedulable", spec.Name)
		}
	}
}

func TestPartitionBusyIntervalHighestPriority(t *testing.T) {
	// The highest-priority partition's busy interval is exactly its budget.
	spec := workload.TableIBase()
	if w := partitionBusyInterval(spec, 0); w != spec.Partitions[0].Budget {
		t.Errorf("level-0 busy interval = %v, want %v", w, spec.Partitions[0].Budget)
	}
}

func TestUnschedulableOverload(t *testing.T) {
	// Two partitions each demanding 80% cannot both be schedulable.
	spec := model.SystemSpec{
		Name: "overload",
		Partitions: []model.PartitionSpec{
			{Name: "A", Period: vtime.MS(10), Budget: vtime.MS(8),
				Tasks: []model.TaskSpec{{Name: "a", Period: vtime.MS(20), WCET: vtime.MS(1)}}},
			{Name: "B", Period: vtime.MS(10), Budget: vtime.MS(8),
				Tasks: []model.TaskSpec{{Name: "b", Period: vtime.MS(20), WCET: vtime.MS(1)}}},
		},
	}
	if PartitionSchedulable(spec, 1) {
		t.Error("partition B should be unschedulable at 160% combined utilization")
	}
	if SystemSchedulable(spec) {
		t.Error("system should be unschedulable")
	}
	if _, err := AnalyzeSystem(spec); err == nil {
		t.Error("AnalyzeSystem should refuse an unschedulable system")
	}
}

func TestWCRTTimeDiceDominatesNoRandom(t *testing.T) {
	// §IV-B / Table II: tasks cannot have shorter WCRTs under TimeDice.
	spec := workload.TableIBase()
	for pi, p := range spec.Partitions {
		for tj := range p.Tasks {
			nr := WCRTNoRandom(spec, pi, tj)
			td := WCRTTimeDice(spec, pi, tj)
			if td < nr {
				t.Errorf("%s: TimeDice WCRT %v < NoRandom WCRT %v", p.Tasks[tj].Name, td, nr)
			}
		}
	}
}

func TestWCRTDifferenceBoundedByPeriod(t *testing.T) {
	// The paper observes the analytic difference rarely exceeds one
	// replenishment period of the task's partition; for Table I it never
	// exceeds two (the t1,4 row is the largest at 76.8ms < 2·T1 shown as a
	// loose sanity bound here).
	spec := workload.TableIBase()
	for pi, p := range spec.Partitions {
		for tj := range p.Tasks {
			nr := WCRTNoRandom(spec, pi, tj)
			td := WCRTTimeDice(spec, pi, tj)
			if diff := td - nr; diff > 4*p.Period {
				t.Errorf("%s: WCRT difference %v exceeds 4 partition periods (%v)",
					p.Tasks[tj].Name, diff, p.Period)
			}
		}
	}
}

func TestWCRTMonotoneInWCET(t *testing.T) {
	// Property: inflating a task's WCET can never shrink its WCRT.
	base := workload.TableIBase()
	for _, analyze := range []func(model.SystemSpec, int, int) vtime.Duration{WCRTNoRandom, WCRTTimeDice} {
		spec := workload.TableIBase()
		for pi := range spec.Partitions {
			for tj := range spec.Partitions[pi].Tasks {
				orig := analyze(base, pi, tj)
				spec.Partitions[pi].Tasks[tj].WCET += vtime.MS(1)
				bigger := analyze(spec, pi, tj)
				spec.Partitions[pi].Tasks[tj].WCET -= vtime.MS(1)
				if bigger != Unschedulable && bigger < orig {
					t.Errorf("task (%d,%d): WCRT shrank from %v to %v after WCET increase", pi, tj, orig, bigger)
				}
			}
		}
	}
}

func TestRandomSystemsAnalyzable(t *testing.T) {
	// Property: on random (UUniFast) systems that pass the partition-level
	// test, both task analyses terminate and TimeDice dominates NoRandom.
	r := rng.New(42)
	checked := 0
	for i := 0; i < 60; i++ {
		spec := workload.Random(r, workload.DefaultRandomOptions())
		if !SystemSchedulable(spec) {
			continue
		}
		checked++
		for pi, p := range spec.Partitions {
			for tj := range p.Tasks {
				nr := WCRTNoRandom(spec, pi, tj)
				td := WCRTTimeDice(spec, pi, tj)
				if nr != Unschedulable && td != Unschedulable && td < nr {
					t.Fatalf("system %d task (%d,%d): TD %v < NR %v", i, pi, tj, td, nr)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no random system passed the partition-level test; generator too aggressive")
	}
}

func TestCeilDivProperties(t *testing.T) {
	f := func(a int32, b uint16) bool {
		bb := vtime.Duration(b) + 1
		got := vtime.CeilDiv(vtime.Duration(a), bb)
		if a <= 0 {
			return got == 0
		}
		want := int64(math.Ceil(float64(a) / float64(bb)))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeferrableAnalysisDominatesPolling(t *testing.T) {
	specs := []model.SystemSpec{workload.TableIBase(), workload.Car()}
	r := rng.New(31)
	for i := 0; i < 20; i++ {
		specs = append(specs, workload.Random(r, workload.DefaultRandomOptions()))
	}
	for _, spec := range specs {
		for pi, p := range spec.Partitions {
			for tj := range p.Tasks {
				base := WCRTNoRandom(spec, pi, tj)
				def := WCRTNoRandomDeferrable(spec, pi, tj)
				if base == Unschedulable {
					continue
				}
				if def != Unschedulable && def < base {
					t.Errorf("%s task (%d,%d): deferrable bound %v below periodic bound %v",
						spec.Name, pi, tj, def, base)
				}
				// For the highest-priority partition the two coincide (no hp
				// interference at all).
				if pi == 0 && def != base {
					t.Errorf("%s task (0,%d): bounds differ with no hp partitions", spec.Name, tj)
				}
			}
		}
	}
}

func TestDeferrableAnalysisOnCar(t *testing.T) {
	// The car platform actually uses deferrable servers; its measured
	// response times (Table III runs) must respect the deferrable-aware
	// bounds for the tasks that fit a single budget.
	spec := workload.Car()
	for pi, p := range spec.Partitions {
		for tj, ts := range p.Tasks {
			def := WCRTNoRandomDeferrable(spec, pi, tj)
			if pi <= 1 && def == Unschedulable {
				t.Errorf("%s/%s: deferrable bound diverged", p.Name, ts.Name)
			}
		}
	}
}
