package analysis

import (
	"fmt"

	"timedice/internal/model"
	"timedice/internal/vtime"
)

// AssignPriorities finds a priority ordering of the partitions under which
// every partition passes the level-i busy-interval schedulability test, using
// Audsley's Optimal Priority Assignment: repeatedly find some partition that
// is schedulable at the lowest remaining priority level (its test depends
// only on WHICH partitions are above it, not their relative order), assign
// it there, and recurse on the rest. OPA is exact for this test: if it fails,
// no ordering works.
//
// It returns the partition indices of the input spec in decreasing priority
// order (result[0] = highest). The input is not modified.
func AssignPriorities(spec model.SystemSpec) ([]int, error) {
	n := len(spec.Partitions)
	if n == 0 {
		return nil, fmt.Errorf("analysis: empty system")
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	order := make([]int, n)
	for level := n - 1; level >= 0; level-- {
		placed := -1
		for pos, cand := range remaining {
			if schedulableAtLowest(spec, cand, remaining, pos) {
				placed = pos
				break
			}
		}
		if placed < 0 {
			return nil, fmt.Errorf("analysis: no priority ordering makes all partitions schedulable (level %d)", level)
		}
		order[level] = remaining[placed]
		remaining = append(remaining[:placed], remaining[placed+1:]...)
	}
	return order, nil
}

// schedulableAtLowest tests whether partition cand meets its deadline when
// every other partition in remaining (all but position pos) is above it.
func schedulableAtLowest(spec model.SystemSpec, cand int, remaining []int, pos int) bool {
	p := spec.Partitions[cand]
	bound := 2 * p.Period
	w := p.Budget
	for iter := 0; iter < maxIterations; iter++ {
		next := p.Budget
		for i, hp := range remaining {
			if i == pos {
				continue
			}
			h := spec.Partitions[hp]
			next += vtime.Duration(vtime.CeilDiv(w, h.Period)) * h.Budget
		}
		if next == w {
			return w <= p.Period
		}
		if next > bound {
			return false
		}
		w = next
	}
	return false
}

// Reorder returns a copy of spec with partitions permuted into the given
// decreasing-priority order (as produced by AssignPriorities).
func Reorder(spec model.SystemSpec, order []int) (model.SystemSpec, error) {
	if len(order) != len(spec.Partitions) {
		return model.SystemSpec{}, fmt.Errorf("analysis: order covers %d of %d partitions", len(order), len(spec.Partitions))
	}
	seen := make([]bool, len(order))
	out := spec
	out.Partitions = make([]model.PartitionSpec, len(order))
	for pos, idx := range order {
		if idx < 0 || idx >= len(order) || seen[idx] {
			return model.SystemSpec{}, fmt.Errorf("analysis: invalid permutation")
		}
		seen[idx] = true
		out.Partitions[pos] = spec.Partitions[idx]
	}
	return out, nil
}
