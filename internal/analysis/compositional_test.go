package analysis

import (
	"testing"

	"timedice/internal/model"
	"timedice/internal/rng"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func TestSupplyBoundShape(t *testing.T) {
	B, T := vtime.MS(2), vtime.MS(10)
	cases := []struct {
		t    vtime.Duration
		want vtime.Duration
	}{
		{0, 0},
		{vtime.MS(16), 0},           // inside the initial 2(T−B) blackout
		{vtime.MS(17), vtime.MS(1)}, // 1ms past the blackout
		{vtime.MS(18), vtime.MS(2)}, // blackout + full budget
		{vtime.MS(26), vtime.MS(2)}, // second gap
		{vtime.MS(28), vtime.MS(4)},
		{vtime.MS(36), vtime.MS(4)},
		{vtime.MS(38), vtime.MS(6)},
	}
	for _, c := range cases {
		if got := SupplyBound(B, T, c.t); got != c.want {
			t.Errorf("sbf(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSupplyBoundMonotone(t *testing.T) {
	B, T := vtime.MS(3), vtime.MS(13)
	prev := vtime.Duration(0)
	for x := vtime.Duration(0); x <= vtime.MS(100); x += vtime.FromFloatMS(0.25) {
		got := SupplyBound(B, T, x)
		if got < prev {
			t.Fatalf("sbf not monotone at %v: %v < %v", x, got, prev)
		}
		// Never exceeds the fluid bound.
		if float64(got) > float64(x)*float64(B)/float64(T)+float64(B) {
			t.Fatalf("sbf(%v)=%v exceeds fluid bound", x, got)
		}
		prev = got
	}
}

func TestDemandBound(t *testing.T) {
	p := model.PartitionSpec{
		Name: "P", Budget: vtime.MS(5), Period: vtime.MS(10),
		Tasks: []model.TaskSpec{
			{Name: "a", Period: vtime.MS(20), WCET: vtime.MS(2)},
			{Name: "b", Period: vtime.MS(50), WCET: vtime.MS(4)},
		},
	}
	if got := DemandBound(p, 0, vtime.MS(20)); got != vtime.MS(2) {
		t.Errorf("rbf for task 0 over 20ms = %v", got)
	}
	if got := DemandBound(p, 1, vtime.MS(40)); got != vtime.MS(8) { // 2·2 + 1·4
		t.Errorf("rbf for task 1 over 40ms = %v", got)
	}
}

// TestCompositionalImpliesTimeDiceWCRT is the cross-validation property: the
// sbf of the periodic resource model is exactly the TimeDice worst-case
// supply, so the compositional test passing must imply the WCRT analysis
// finds the task schedulable, on Table I and on random systems.
func TestCompositionalImpliesTimeDiceWCRT(t *testing.T) {
	specs := []model.SystemSpec{workload.TableIBase(), workload.TableILight(), workload.ThreePartition(), workload.Car()}
	r := rng.New(9)
	for i := 0; i < 30; i++ {
		specs = append(specs, workload.Random(r, workload.DefaultRandomOptions()))
	}
	checkedPass := 0
	for _, spec := range specs {
		for pi, p := range spec.Partitions {
			for tj, ts := range p.Tasks {
				deadline := ts.Deadline
				if deadline == 0 {
					deadline = ts.Period
				}
				if CompositionalSchedulable(spec, pi, tj) {
					checkedPass++
					if wcrt := WCRTTimeDice(spec, pi, tj); wcrt > deadline {
						t.Errorf("%s/%s: compositional test passes but TimeDice WCRT %v > deadline %v",
							spec.Name, ts.Name, wcrt, deadline)
					}
				}
			}
		}
	}
	if checkedPass < 30 {
		t.Fatalf("only %d tasks passed the compositional test; cross-check too weak", checkedPass)
	}
}

func TestCompositionalTableI(t *testing.T) {
	// Every Table I task is schedulable under the compositional test too
	// (consistent with Table II's all-schedulable verdict).
	spec := workload.TableIBase()
	for pi, p := range spec.Partitions {
		for tj, ts := range p.Tasks {
			if !CompositionalSchedulable(spec, pi, tj) {
				t.Errorf("%s not compositionally schedulable", ts.Name)
			}
			_ = pi
		}
	}
}

func TestCompositionalRejectsOverload(t *testing.T) {
	spec := model.SystemSpec{
		Name: "tight",
		Partitions: []model.PartitionSpec{{
			Name: "P", Budget: vtime.MS(1), Period: vtime.MS(10),
			Tasks: []model.TaskSpec{{Name: "t", Period: vtime.MS(10), WCET: vtime.MS(2)}},
		}},
	}
	// Demand 2ms per 10ms against supply 1ms per 10ms: impossible.
	if CompositionalSchedulable(spec, 0, 0) {
		t.Error("overloaded task accepted")
	}
}
