// Package analysis implements the offline schedulability and worst-case
// response time (WCRT) analyses of the paper's §IV-B:
//
//   - partition-level schedulability under fixed-priority global scheduling
//     (a level-i busy-interval test), which is the precondition TimeDice
//     preserves by construction;
//   - task-level WCRT under the non-randomized scheduler, following the
//     hierarchical fixed-priority analysis of Davis & Burns [33] that the
//     paper uses for the NoRandom columns of Table II; and
//   - task-level WCRT under TimeDice, Eqs. (4)–(5): the randomized partition
//     schedule can defer each budget chunk to the very end of its period
//     (Fig. 11), so the task load L is served at a worst-case rate of B_i per
//     T_i with a leading (T_i − B_i) delay.
//
// All arithmetic is exact integer microseconds; the analyses reproduce the
// paper's Table II "Anal." columns bit-for-bit (see the golden tests).
package analysis

import (
	"fmt"

	"timedice/internal/model"
	"timedice/internal/vtime"
)

// maxIterations bounds the fixed-point searches; real configurations converge
// in a handful of steps, and divergence (overload) is reported as
// unschedulable long before this bound.
const maxIterations = 1 << 16

// Unschedulable is returned as the WCRT when a fixed point exceeds the
// deadline bound.
const Unschedulable vtime.Duration = vtime.Forever

// PartitionSchedulable reports whether partition index pi of spec is
// guaranteed its full budget every period under fixed-priority global
// scheduling: the level-i busy interval w = B_i + Σ_{h<i} ⌈w/T_h⌉·B_h must
// not exceed T_i.
func PartitionSchedulable(spec model.SystemSpec, pi int) bool {
	w := partitionBusyInterval(spec, pi)
	return w != Unschedulable && w <= spec.Partitions[pi].Period
}

// partitionBusyInterval returns the worst-case time for partition pi to
// receive its full budget from a critical instant, or Unschedulable.
func partitionBusyInterval(spec model.SystemSpec, pi int) vtime.Duration {
	p := spec.Partitions[pi]
	bound := p.Period * 2
	w := p.Budget
	for iter := 0; iter < maxIterations; iter++ {
		next := p.Budget
		for h := 0; h < pi; h++ {
			hp := spec.Partitions[h]
			next += vtime.Duration(vtime.CeilDiv(w, hp.Period)) * hp.Budget
		}
		if next == w {
			return w
		}
		if next > bound {
			return Unschedulable
		}
		w = next
	}
	return Unschedulable
}

// SystemSchedulable reports whether every partition of spec is schedulable
// (Definition 1 for all i).
func SystemSchedulable(spec model.SystemSpec) bool {
	for i := range spec.Partitions {
		if !PartitionSchedulable(spec, i) {
			return false
		}
	}
	return true
}

// taskLoad is the paper's L_{i,j}(window): the worst-case demand of task tj
// and its local higher-priority tasks over a window (Eq. 5's summation with
// the window supplied by the caller).
func taskLoad(p model.PartitionSpec, tj int, window vtime.Duration) vtime.Duration {
	load := p.Tasks[tj].WCET
	for x := 0; x < tj; x++ {
		hp := p.Tasks[x]
		load += vtime.Duration(vtime.CeilDiv(window, hp.Period)) * hp.WCET
	}
	return load
}

// WCRTTimeDice computes the worst-case response time of task tj in partition
// pi when partitions are randomized by TimeDice, per Eqs. (4)–(5):
//
//	r^{k+1} = L_{i,j}(r^k) + ⌈L_{i,j}(r^k)/B_i⌉·(T_i − B_i),
//	wcrt    = (T_i − B_i) + r^k at the fixed point,
//
// with L evaluated over the window (T_i − B_i) + r^k. It returns
// Unschedulable if the iteration exceeds the task's deadline-based bound.
// Thanks to the schedulability preservation, the analysis depends only on
// the parameters of partition pi (the modularity the paper highlights).
func WCRTTimeDice(spec model.SystemSpec, pi, tj int) vtime.Duration {
	return WCRTTimeDiceDelayed(spec, pi, tj, 0)
}

// WCRTTimeDiceDelayed is WCRTTimeDice with an extra initial supply latency
// folded into the fixed point: the first budget is assumed to arrive up to
// `extra` later than the critical instant of Eq. (4) predicts, and the demand
// window grows accordingly (so local higher-priority releases landing inside
// the extra latency are counted, which a post-hoc "+extra" on the final bound
// would miss). Callers use it for arrival phasings and server policies whose
// supply is not anchored to the partition's period boundaries: a task
// arriving mid-period (extra = T_i) or a sporadic server whose replenishment
// chunks trail consumption (extra = T_i again, making the initial blackout
// 2T_i − B_i). extra = 0 reduces to WCRTTimeDice exactly.
func WCRTTimeDiceDelayed(spec model.SystemSpec, pi, tj int, extra vtime.Duration) vtime.Duration {
	p := spec.Partitions[pi]
	t := p.Tasks[tj]
	gap := p.Period - p.Budget
	lat := gap + extra
	bound := taskBound(t)

	r := t.WCET
	for iter := 0; iter < maxIterations; iter++ {
		load := taskLoad(p, tj, lat+r)
		next := load + vtime.Duration(vtime.CeilDiv(load, p.Budget))*gap
		if next == r {
			return lat + r
		}
		if lat+next > bound {
			return Unschedulable
		}
		r = next
	}
	return Unschedulable
}

// WCRTNoRandom computes the worst-case response time of task tj in partition
// pi under the default fixed-priority hierarchical scheduler, following
// Davis & Burns [33]. At the critical instant the task arrives together with
// its local higher-priority tasks just as the partition's budget has been
// depleted as early as possible, so it first waits (T_i − B_i); the load L is
// then served at B_i per T_i, and the completion of the final chunk within
// its period is delayed by the higher-priority partitions' budgets:
//
//	L    = L_{i,j}(R)                      (demand over the response window)
//	k    = ⌈L/B_i⌉                         (replenishments needed)
//	v    = (L − (k−1)B_i) + Σ_{h<i} ⌈v/T_h⌉·B_h   (final-chunk completion)
//	R'   = (T_i − B_i) + (k−1)·T_i + v.
func WCRTNoRandom(spec model.SystemSpec, pi, tj int) vtime.Duration {
	return wcrtNoRandom(spec, pi, tj, false)
}

// WCRTNoRandomDeferrable is WCRTNoRandom with the higher-priority partitions
// modeled as deferrable servers: retained budget allows a back-to-back
// double hit at period boundaries, so each Π_h contributes one extra B_h of
// interference to the final chunk. The bound is conservative (it is the
// standard sufficient test) and always ≥ WCRTNoRandom.
func WCRTNoRandomDeferrable(spec model.SystemSpec, pi, tj int) vtime.Duration {
	return wcrtNoRandom(spec, pi, tj, true)
}

func wcrtNoRandom(spec model.SystemSpec, pi, tj int, deferrable bool) vtime.Duration {
	p := spec.Partitions[pi]
	t := p.Tasks[tj]
	gap := p.Period - p.Budget
	bound := taskBound(t)

	r := t.WCET
	for iter := 0; iter < maxIterations; iter++ {
		load := taskLoad(p, tj, r)
		k := vtime.CeilDiv(load, p.Budget)
		rem := load - vtime.Duration(k-1)*p.Budget
		v := finalChunk(spec, pi, rem, bound, deferrable)
		if v == Unschedulable {
			return Unschedulable
		}
		next := gap + vtime.Duration(k-1)*p.Period + v
		if next == r {
			return next
		}
		if next > bound {
			return Unschedulable
		}
		r = next
	}
	return Unschedulable
}

// finalChunk solves v = rem + Σ_{h<pi} I_h(v), the response of the last
// budget chunk within its replenishment period under higher-priority
// partition interference. With deferrable=false the interference is the
// periodic-supply bound ⌈v/T_h⌉·B_h; with deferrable=true it adds the
// deferrable server's back-to-back hit (a server may run B_h at the end of
// one period and again immediately at the start of the next), the classical
// (1+⌈v/T_h⌉)·B_h bound.
func finalChunk(spec model.SystemSpec, pi int, rem, bound vtime.Duration, deferrable bool) vtime.Duration {
	v := rem
	for iter := 0; iter < maxIterations; iter++ {
		next := rem
		for h := 0; h < pi; h++ {
			hp := spec.Partitions[h]
			hits := vtime.CeilDiv(v, hp.Period)
			if deferrable {
				hits++
			}
			next += vtime.Duration(hits) * hp.Budget
		}
		if next == v {
			return v
		}
		if next > bound {
			return Unschedulable
		}
		v = next
	}
	return Unschedulable
}

// taskBound returns the divergence bound for a task's WCRT search: several
// deadlines' worth of time, beyond which we declare the task unschedulable.
func taskBound(t model.TaskSpec) vtime.Duration {
	d := t.Deadline
	if d == 0 {
		d = t.Period
	}
	return 4 * d
}

// TaskResult pairs a task with its analytic WCRTs under both schedulers.
type TaskResult struct {
	Partition, Task    string
	Deadline           vtime.Duration
	NoRandom, TimeDice vtime.Duration
}

// Schedulable reports whether both WCRTs meet the deadline.
func (r TaskResult) Schedulable() bool {
	return r.NoRandom <= r.Deadline && r.TimeDice <= r.Deadline
}

// AnalyzeSystem computes both WCRTs for every task of the system, in
// declaration order (the rows of Table II).
func AnalyzeSystem(spec model.SystemSpec) ([]TaskResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !SystemSchedulable(spec) {
		return nil, fmt.Errorf("analysis: system %q is not partition-schedulable; TimeDice preconditions unmet", spec.Name)
	}
	var out []TaskResult
	for pi, p := range spec.Partitions {
		for tj, t := range p.Tasks {
			d := t.Deadline
			if d == 0 {
				d = t.Period
			}
			out = append(out, TaskResult{
				Partition: p.Name,
				Task:      t.Name,
				Deadline:  d,
				NoRandom:  WCRTNoRandom(spec, pi, tj),
				TimeDice:  WCRTTimeDice(spec, pi, tj),
			})
		}
	}
	return out, nil
}
