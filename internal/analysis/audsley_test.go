package analysis

import (
	"testing"

	"timedice/internal/model"
	"timedice/internal/rng"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func TestAssignPrioritiesTableI(t *testing.T) {
	spec := workload.TableIBase()
	order, err := AssignPriorities(spec)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Reorder(spec, order)
	if err != nil {
		t.Fatal(err)
	}
	if !SystemSchedulable(re) {
		t.Fatal("OPA ordering is not schedulable")
	}
}

func TestAssignPrioritiesRescuesBadOrdering(t *testing.T) {
	// Reverse rate-monotonic order: the long-period heavy partition on top
	// makes the short-period one unschedulable; OPA must find the fix.
	spec := model.SystemSpec{
		Name: "reversed",
		Partitions: []model.PartitionSpec{
			{Name: "slow", Budget: vtime.MS(40), Period: vtime.MS(100),
				Tasks: []model.TaskSpec{{Name: "s", Period: vtime.MS(100), WCET: vtime.MS(40)}}},
			{Name: "fast", Budget: vtime.MS(5), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "f", Period: vtime.MS(10), WCET: vtime.MS(5)}}},
		},
	}
	if SystemSchedulable(spec) {
		t.Fatal("precondition: reversed ordering should be unschedulable")
	}
	order, err := AssignPriorities(spec)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Reorder(spec, order)
	if err != nil {
		t.Fatal(err)
	}
	if !SystemSchedulable(re) {
		t.Fatal("OPA result not schedulable")
	}
	if re.Partitions[0].Name != "fast" {
		t.Errorf("expected the fast partition on top, got %q", re.Partitions[0].Name)
	}
}

func TestAssignPrioritiesInfeasible(t *testing.T) {
	spec := model.SystemSpec{
		Name: "overload",
		Partitions: []model.PartitionSpec{
			{Name: "a", Budget: vtime.MS(8), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "x", Period: vtime.MS(10), WCET: vtime.MS(1)}}},
			{Name: "b", Budget: vtime.MS(8), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "y", Period: vtime.MS(10), WCET: vtime.MS(1)}}},
		},
	}
	if _, err := AssignPriorities(spec); err == nil {
		t.Error("infeasible system got an ordering")
	}
}

// TestOPAAgreesWithExhaustive cross-checks OPA against brute force on random
// 4-partition systems: OPA finds an ordering iff some permutation is
// schedulable.
func TestOPAAgreesWithExhaustive(t *testing.T) {
	r := rng.New(99)
	opts := workload.DefaultRandomOptions()
	opts.Partitions = 4
	opts.TotalUtil = 0.95 // stress: some systems infeasible in some orders
	agree := 0
	for trial := 0; trial < 40; trial++ {
		spec := workload.Random(r, opts)
		_, opaErr := AssignPriorities(spec)
		brute := false
		perms := permutations(len(spec.Partitions))
		for _, perm := range perms {
			re, err := Reorder(spec, perm)
			if err != nil {
				t.Fatal(err)
			}
			if SystemSchedulable(re) {
				brute = true
				break
			}
		}
		if (opaErr == nil) != brute {
			t.Fatalf("trial %d: OPA=%v brute=%v (spec %+v)", trial, opaErr == nil, brute, spec)
		}
		agree++
	}
	if agree == 0 {
		t.Fatal("no trials")
	}
}

func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cp := make([]int, n)
			copy(cp, perm)
			out = append(out, cp)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

func TestReorderValidation(t *testing.T) {
	spec := workload.ThreePartition()
	if _, err := Reorder(spec, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := Reorder(spec, []int{0, 0, 1}); err == nil {
		t.Error("duplicate order accepted")
	}
	if _, err := Reorder(spec, []int{0, 1, 5}); err == nil {
		t.Error("out-of-range order accepted")
	}
}
