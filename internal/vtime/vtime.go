// Package vtime provides the virtual time base used by the TimeDice
// simulator: absolute instants (Time) and spans (Duration), both integer
// microseconds. All scheduling and analysis arithmetic is exact integer
// arithmetic so that budget accounting never drifts.
//
// The simulated clock starts at 0. Time and Duration are distinct types to
// prevent accidentally mixing instants with spans; conversions are explicit.
package vtime

import (
	"fmt"
	"math"
)

// Time is an absolute instant on the simulated timeline, in microseconds
// since the start of the simulation.
type Time int64

// Duration is a span of simulated time in microseconds.
type Duration int64

// Convenient duration units.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Infinity is an instant later than any instant a simulation can reach.
// It is used as the "no next event" sentinel.
const Infinity Time = math.MaxInt64

// Forever is a span longer than any simulation horizon.
const Forever Duration = math.MaxInt64

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time {
	if t == Infinity || d == Forever {
		return Infinity
	}
	return t + Time(d)
}

// Sub returns the span from o to t (t - o).
func (t Time) Sub(o Time) Duration { return Duration(t - o) }

// Before reports whether t is strictly earlier than o.
func (t Time) Before(o Time) bool { return t < o }

// After reports whether t is strictly later than o.
func (t Time) After(o Time) bool { return t > o }

// Min returns the earlier of t and o.
func (t Time) Min(o Time) Time {
	if t < o {
		return t
	}
	return o
}

// Max returns the later of t and o.
func (t Time) Max(o Time) Time {
	if t > o {
		return t
	}
	return o
}

// Milliseconds returns t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders t in milliseconds, e.g. "12.345ms", or "+inf" for Infinity.
func (t Time) String() string {
	if t == Infinity {
		return "+inf"
	}
	return fmt.Sprintf("%.3fms", t.Milliseconds())
}

// Milliseconds returns d as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds returns d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Min returns the smaller of d and o.
func (d Duration) Min(o Duration) Duration {
	if d < o {
		return d
	}
	return o
}

// Max returns the larger of d and o.
func (d Duration) Max(o Duration) Duration {
	if d > o {
		return d
	}
	return o
}

// Scale returns d scaled by the rational num/den, rounding to the nearest
// microsecond. den must be positive.
func (d Duration) Scale(num, den int64) Duration {
	if den <= 0 {
		panic("vtime: Scale with non-positive denominator")
	}
	v := int64(d)*num + den/2
	return Duration(v / den)
}

// String renders d in milliseconds, e.g. "1.000ms", or "+inf" for Forever.
func (d Duration) String() string {
	if d == Forever {
		return "+inf"
	}
	return fmt.Sprintf("%.3fms", d.Milliseconds())
}

// MS constructs a Duration from a number of milliseconds.
func MS(ms int64) Duration { return Duration(ms) * Millisecond }

// US constructs a Duration from a number of microseconds.
func US(us int64) Duration { return Duration(us) }

// FromFloatMS constructs a Duration from fractional milliseconds, rounding to
// the nearest microsecond.
func FromFloatMS(ms float64) Duration {
	return Duration(math.Round(ms * float64(Millisecond)))
}

// CeilDiv returns ceil(a/b) for positive b, and 0 when a <= 0. This is the
// ⌈x⌉₀ operator of the paper's Eq. (1): the number of replenishments with
// offsets o, o+T, o+2T, ... that fall strictly inside a window of length a.
//
// The (a-1)/b + 1 form is exact over the entire int64 domain: the textbook
// (a+b-1)/b wraps for a+b-1 > MaxInt64, which matters because
// Reciprocal.CeilDiv computes the true quotient everywhere and the two must
// agree bit-for-bit (the divisionless decision kernel is pinned
// digest-identical to this reference).
func CeilDiv(a, b Duration) int64 {
	if b <= 0 {
		panic("vtime: CeilDiv with non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (int64(a)-1)/int64(b) + 1
}

// FloorDiv returns floor(a/b) for positive b, and 0 when a < 0.
func FloorDiv(a, b Duration) int64 {
	if b <= 0 {
		panic("vtime: FloorDiv with non-positive divisor")
	}
	if a < 0 {
		return 0
	}
	return int64(a) / int64(b)
}
