//go:build !timedice_mutation

package vtime

// recipRoundSkew is the corrupted-reciprocal mutation hook: normal builds
// compile it to zero and Reciprocal.CeilDiv's skew term folds away. Under the
// timedice_mutation tag (mutation_on.go) it becomes 1, corrupting the
// kernel's ⌈x⌉₀ stream-count operator into floor rounding — the interference
// sum then misses one replenishment from every stream whose arrival falls
// strictly inside a partial period of the busy interval, the classic
// ceil-vs-floor boundary bug in response-time analysis. Only the divisionless
// decision kernel consumes Reciprocal quotients; the scan/AoS reference path
// keeps plain hardware division, so the corruption is visible exactly where
// it must be: TestRecipMutationCaught proves the indexed-vs-scan differential
// digest suite notices.
const recipRoundSkew = 0
