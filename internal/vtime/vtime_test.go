package vtime

import (
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	if got := t0.Add(MS(5)); got != Time(5000) {
		t.Errorf("Add: got %d, want 5000", got)
	}
	if got := Time(7000).Sub(Time(2000)); got != MS(5) {
		t.Errorf("Sub: got %v, want 5ms", got)
	}
	if Infinity.Add(MS(1)) != Infinity {
		t.Error("Infinity.Add should stay Infinity")
	}
	if t0.Add(Forever) != Infinity {
		t.Error("Add(Forever) should be Infinity")
	}
}

func TestMinMax(t *testing.T) {
	if Time(3).Min(Time(5)) != Time(3) || Time(3).Max(Time(5)) != Time(5) {
		t.Error("Time Min/Max broken")
	}
	if MS(3).Min(MS(5)) != MS(3) || MS(3).Max(MS(5)) != MS(5) {
		t.Error("Duration Min/Max broken")
	}
}

func TestConversions(t *testing.T) {
	if MS(20).Milliseconds() != 20 {
		t.Error("Milliseconds round trip")
	}
	if Second.Seconds() != 1 {
		t.Error("Seconds round trip")
	}
	if FromFloatMS(3.2) != US(3200) {
		t.Errorf("FromFloatMS(3.2) = %v", FromFloatMS(3.2))
	}
	if FromFloatMS(0.0005) != US(1) && FromFloatMS(0.0005) != US(0) {
		t.Errorf("FromFloatMS rounding: %v", FromFloatMS(0.0005))
	}
}

func TestScale(t *testing.T) {
	cases := []struct {
		d        Duration
		num, den int64
		want     Duration
	}{
		{MS(10), 1, 2, MS(5)},
		{MS(10), 3, 4, FromFloatMS(7.5)},
		{MS(8), 150, 50, MS(24)},
		{US(1), 1, 3, US(0)}, // rounds to nearest
		{US(2), 1, 3, US(1)},
	}
	for _, c := range cases {
		if got := c.d.Scale(c.num, c.den); got != c.want {
			t.Errorf("%v.Scale(%d,%d) = %v, want %v", c.d, c.num, c.den, got, c.want)
		}
	}
}

func TestCeilDivTable(t *testing.T) {
	cases := []struct {
		a, b Duration
		want int64
	}{
		{0, 10, 0},
		{-5, 10, 0},
		{1, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{20, 10, 2},
		{21, 10, 3},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	if FloorDiv(-1, 10) != 0 || FloorDiv(9, 10) != 0 || FloorDiv(10, 10) != 1 || FloorDiv(19, 10) != 1 {
		t.Error("FloorDiv table broken")
	}
}

func TestCeilFloorRelation(t *testing.T) {
	f := func(a int32, b uint16) bool {
		bb := Duration(b) + 1
		aa := Duration(a)
		c, fl := CeilDiv(aa, bb), FloorDiv(aa, bb)
		if aa <= 0 {
			return c == 0
		}
		if int64(aa)%int64(bb) == 0 {
			return c == fl
		}
		return c == fl+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	if Infinity.String() != "+inf" || Forever.String() != "+inf" {
		t.Error("infinity rendering")
	}
	if MS(1).String() != "1.000ms" {
		t.Errorf("MS(1).String() = %q", MS(1).String())
	}
	if Time(1500).String() != "1.500ms" {
		t.Errorf("Time(1500).String() = %q", Time(1500).String())
	}
}

func TestScalePanicsOnBadDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Scale with zero denominator should panic")
		}
	}()
	MS(1).Scale(1, 0)
}

func TestFloorDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FloorDiv with non-positive divisor should panic")
		}
	}()
	FloorDiv(1, 0)
}

func TestCeilDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv with non-positive divisor should panic")
		}
	}()
	CeilDiv(1, -1)
}

func TestBeforeAfter(t *testing.T) {
	if !Time(1).Before(Time(2)) || Time(2).Before(Time(1)) {
		t.Error("Before broken")
	}
	if !Time(2).After(Time(1)) || Time(1).After(Time(2)) {
		t.Error("After broken")
	}
}

func TestSecondsHelpers(t *testing.T) {
	if Time(2_000_000).Seconds() != 2 {
		t.Error("Time.Seconds")
	}
	if (2 * Second).Seconds() != 2 {
		t.Error("Duration.Seconds")
	}
	if Time(1500).Milliseconds() != 1.5 {
		t.Error("Time.Milliseconds")
	}
}
