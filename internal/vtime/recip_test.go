package vtime

import (
	"math"
	"testing"

	"timedice/internal/rng"
)

// adversarialDivisors are the divisor shapes where magic-reciprocal schemes
// historically break: 1, powers of two and their neighbours (the three
// generation branches), small primes, and divisors near the top of the
// domain where the 128/64 derivation has one-ULP headroom.
func adversarialDivisors() []Duration {
	ds := []Duration{1, 2, 3, 5, 7, 10, 11, 641, 6700417,
		math.MaxInt64, math.MaxInt64 - 1, math.MaxInt64/2 + 1}
	for sh := 1; sh < 63; sh++ {
		p := Duration(1) << sh
		ds = append(ds, p-1, p, p+1)
	}
	return ds
}

// adversarialDividends enumerates, for divisor d, the dividends around every
// quotient discontinuity a property test must not miss: multiples of d and
// their neighbours, the domain boundaries, and the near-overflow top.
func adversarialDividends(d Duration) []Duration {
	as := []Duration{math.MinInt64, -1, 0, 1, d - 1, d, d + 1,
		math.MaxInt64 - 1, math.MaxInt64}
	for _, k := range []int64{2, 3, 63, 1 << 20, math.MaxInt64 / 2} {
		if k > math.MaxInt64/int64(d) {
			break
		}
		m := Duration(k * int64(d))
		as = append(as, m-1, m, m+1)
	}
	return as
}

// checkAgainstPlain asserts both Reciprocal quotient forms equal the plain
// hardware-division reference for (a, b).
func checkAgainstPlain(t *testing.T, r Reciprocal, a, b Duration) {
	t.Helper()
	if got, want := r.CeilDiv(a), CeilDiv(a, b); got != want {
		t.Fatalf("Reciprocal(%d).CeilDiv(%d) = %d, want %d", b, a, got, want)
	}
	if got, want := r.FloorDiv(a), FloorDiv(a, b); got != want {
		t.Fatalf("Reciprocal(%d).FloorDiv(%d) = %d, want %d", b, a, got, want)
	}
}

// TestReciprocalExhaustiveQuotients proves exactness where every quotient
// value is reachable: for each small divisor, sweep every dividend through
// several full quotient periods so each of the three generation branches
// (power-of-two shift, trivial magic, add-marker magic) sees every remainder.
func TestReciprocalExhaustiveQuotients(t *testing.T) {
	for b := Duration(1); b <= 128; b++ {
		r := NewReciprocal(b)
		for a := Duration(-2 * b); a <= 6*b+3; a++ {
			checkAgainstPlain(t, r, a, b)
		}
	}
}

// TestReciprocalAdversarial crosses the adversarial divisor and dividend
// sets: generation-branch boundaries × quotient discontinuities × the
// near-overflow top of the int64 domain.
func TestReciprocalAdversarial(t *testing.T) {
	for _, b := range adversarialDivisors() {
		r := NewReciprocal(b)
		for _, a := range adversarialDividends(b) {
			checkAgainstPlain(t, r, a, b)
		}
	}
}

// TestReciprocalRandomized cross-checks a seeded random sample of the full
// domain, biased toward small divisors (realistic periods are microseconds
// to minutes) but covering the whole range.
func TestReciprocalRandomized(t *testing.T) {
	r := rng.New(0xd1ce)
	for trial := 0; trial < 200000; trial++ {
		var b Duration
		switch trial % 3 {
		case 0:
			b = Duration(1 + r.Int63n(1<<20)) // period-scale divisors
		case 1:
			b = Duration(1 + r.Int63n(math.MaxInt64))
		default:
			b = Duration(1) << uint(r.Intn(63)) // powers of two
		}
		rec := NewReciprocal(b)
		a := Duration(r.Int63n(math.MaxInt64) - r.Int63n(1<<30))
		checkAgainstPlain(t, rec, a, b)
	}
}

// TestReciprocalPanics pins the divisor contract shared with CeilDiv.
func TestReciprocalPanics(t *testing.T) {
	for _, b := range []Duration{0, -1, math.MinInt64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewReciprocal(%d) did not panic", b)
				}
			}()
			NewReciprocal(b)
		}()
	}
}

// FuzzDivisors is the continuous-coverage version of the property tests: any
// (a, b) pair with b > 0 must divide identically through the plain and
// reciprocal paths, and the ceil/floor pair must satisfy the Euclidean
// relations. Wired into the nightly fuzz matrix next to the gen/engine
// targets; crashers land in testdata/fuzz/FuzzDivisors.
func FuzzDivisors(f *testing.F) {
	f.Add(int64(1), int64(1))
	f.Add(int64(0), int64(7))
	f.Add(int64(-5), int64(3))
	f.Add(int64(19), int64(20000))
	f.Add(int64(math.MaxInt64), int64(3))
	f.Add(int64(math.MaxInt64-1), int64(math.MaxInt64))
	f.Add(int64(1)<<62, int64(1)<<21)
	f.Add(int64(math.MaxInt64), int64(math.MaxInt64/2+1))
	f.Fuzz(func(t *testing.T, a, b int64) {
		if b <= 0 {
			// Non-positive divisors are a contract violation; both paths
			// must refuse identically.
			for _, fn := range []func(){
				func() { CeilDiv(Duration(a), Duration(b)) },
				func() { FloorDiv(Duration(a), Duration(b)) },
				func() { NewReciprocal(Duration(b)) },
			} {
				func() {
					defer func() {
						if recover() == nil {
							t.Fatalf("divisor %d did not panic", b)
						}
					}()
					fn()
				}()
			}
			return
		}
		ad, bd := Duration(a), Duration(b)
		rec := NewReciprocal(bd)
		c, fl := CeilDiv(ad, bd), FloorDiv(ad, bd)
		if rc := rec.CeilDiv(ad); rc != c {
			t.Fatalf("Reciprocal(%d).CeilDiv(%d) = %d, plain = %d", b, a, rc, c)
		}
		if rf := rec.FloorDiv(ad); rf != fl {
			t.Fatalf("Reciprocal(%d).FloorDiv(%d) = %d, plain = %d", b, a, rf, fl)
		}
		// Euclidean sanity on the clamped-at-zero operators.
		if a <= 0 {
			if c != 0 {
				t.Fatalf("CeilDiv(%d,%d) = %d, want 0", a, b, c)
			}
		} else {
			if c != fl && c != fl+1 {
				t.Fatalf("ceil %d vs floor %d diverge beyond one for %d/%d", c, fl, a, b)
			}
			if (a%b == 0) != (c == fl) {
				t.Fatalf("ceil==floor must coincide with exact division: %d/%d gave ceil %d floor %d", a, b, c, fl)
			}
		}
		if a >= 0 {
			if fl != a/b {
				t.Fatalf("FloorDiv(%d,%d) = %d, want %d", a, b, fl, a/b)
			}
		} else if fl != 0 {
			t.Fatalf("FloorDiv(%d,%d) = %d, want 0", a, b, fl)
		}
	})
}
