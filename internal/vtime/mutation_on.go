//go:build timedice_mutation

package vtime

// Mutation build: Reciprocal.CeilDiv degrades to floor rounding, so the
// divisionless kernel undercounts every partial-period replenishment while
// the plain-division reference paths stay exact. See mutation_off.go for the
// contract; the point of this build is proving the indexed-vs-scan
// differential digest suite notices.
const recipRoundSkew = 1
