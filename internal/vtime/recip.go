package vtime

// Divisionless division. The Algorithm-3 busy-interval fixpoint evaluates
// one CeilDiv per charged replenishment stream per iteration, and the
// divisors — the partition periods T_i — are constants for the lifetime of a
// run. A Reciprocal trades the per-call 64-bit hardware divide (tens of
// cycles, unpipelined) for a one-time magic-constant derivation and a
// per-call widening multiply + shift (a few cycles, fully pipelined), exactly
// in the style of libdivide / "Division by Invariant Integers using
// Multiplication" (Granlund & Montgomery, PLDI '94).
//
// Exactness is unconditional: for every dividend representable as a
// non-negative int64 the quotient equals the hardware result bit-for-bit
// (recip_test.go proves it by exhaustive small-divisor sweeps, adversarial
// near-overflow cases, and the FuzzDivisors target). The decision kernel
// depends on that — reciprocal and plain paths must produce byte-identical
// schedules, which the indexed-vs-scan differential pins end-to-end.

import "math/bits"

// Reciprocal is the precomputed magic-multiply form of a positive Duration
// divisor. The zero value is invalid; build one with NewReciprocal.
type Reciprocal struct {
	magic uint64
	shift uint8
	// add marks the overflow form q = (((n-m)>>1)+m) >> shift, needed when
	// the magic constant did not fit in 64 bits (libdivide's "add marker").
	add bool
}

// NewReciprocal derives the multiply+shift constants for divisor b. Like
// CeilDiv/FloorDiv it panics when b <= 0. The derivation costs one 128/64
// division; amortize it by computing reciprocals once per run (the engine
// stores them in a constant SoA arena next to hotPeriod).
func NewReciprocal(b Duration) Reciprocal {
	if b <= 0 {
		panic("vtime: NewReciprocal with non-positive divisor")
	}
	d := uint64(b)
	fl := uint8(63 - bits.LeadingZeros64(d))
	if d&(d-1) == 0 {
		// Power of two: a plain shift (magic 0 is the marker).
		return Reciprocal{magic: 0, shift: fl}
	}
	// m = floor(2^(64+fl) / d); the high word 1<<fl is < d (d is not a power
	// of two, so 2^fl < d), which bits.Div64 requires.
	m, rem := bits.Div64(1<<fl, 0, d)
	if e := d - rem; e < 1<<fl {
		// The magic fits in 64 bits with a rounding-up adjustment.
		return Reciprocal{magic: m + 1, shift: fl}
	}
	// 65-bit magic: fold the top bit into the add-marker evaluation form.
	magic := m + m
	if rem2 := rem + rem; rem2 >= d || rem2 < rem {
		magic++
	}
	return Reciprocal{magic: magic + 1, shift: fl, add: true}
}

// div returns n / d for the unsigned dividend n.
func (r Reciprocal) div(n uint64) uint64 {
	if r.magic == 0 {
		return n >> r.shift
	}
	q, _ := bits.Mul64(r.magic, n)
	if r.add {
		return (((n - q) >> 1) + q) >> r.shift
	}
	return q >> r.shift
}

// FloorDiv is FloorDiv(a, d) without the hardware divide: floor(a/d) for
// a >= 0, and 0 when a < 0.
func (r Reciprocal) FloorDiv(a Duration) int64 {
	if a < 0 {
		return 0
	}
	return int64(r.div(uint64(a)))
}

// CeilDiv is CeilDiv(a, d) without the hardware divide: the ⌈x⌉₀ stream-count
// operator of Eq. (1) — ceil(a/d) for a > 0, and 0 when a <= 0. For a >= 1,
// ceil(a/d) = floor((a-1)/d) + 1 with no overflow anywhere in the int64
// domain (the plain CeilDiv uses the same rearrangement). recipRoundSkew is
// the timedice_mutation hook: zero in normal builds (the term folds away),
// one under the tag, corrupting this operator into floor rounding — the
// kernel then undercounts every partial-period replenishment while the
// plain-division reference stays exact.
func (r Reciprocal) CeilDiv(a Duration) int64 {
	if a <= 0 {
		return 0
	}
	return int64(r.div(uint64(a-1))) + 1 - recipRoundSkew
}
