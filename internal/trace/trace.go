// Package trace records and renders schedule traces: the raw segment log, an
// ASCII Gantt chart like the paper's Fig. 6, execution-vector heatmaps like
// Figs. 4(b) and 13, and CSV export for external plotting.
package trace

import (
	"fmt"
	"strings"

	"timedice/internal/engine"
	"timedice/internal/vtime"
)

// Recorder collects schedule segments from an engine.System via its TraceFn
// hook. Consecutive segments of the same partition are coalesced.
type Recorder struct {
	Segments []engine.Segment
	// Keep bounds recording to a window to cap memory on long runs;
	// zero values record everything.
	From, Until vtime.Time
}

// NewRecorder records segments overlapping [from, until); until==0 means no
// upper bound.
func NewRecorder(from, until vtime.Time) *Recorder {
	return &Recorder{From: from, Until: until}
}

// Hook returns the function to install as engine.System.TraceFn.
func (r *Recorder) Hook() func(engine.Segment) {
	return func(seg engine.Segment) {
		if seg.End <= r.From {
			return
		}
		if r.Until > 0 && seg.Start >= r.Until {
			return
		}
		if n := len(r.Segments); n > 0 {
			last := &r.Segments[n-1]
			if last.Partition == seg.Partition && last.End == seg.Start {
				last.End = seg.End
				return
			}
		}
		r.Segments = append(r.Segments, seg)
	}
}

// BusyTimeOf returns the total recorded CPU time of partition index p
// (-1 for idle).
func (r *Recorder) BusyTimeOf(p int) vtime.Duration {
	var sum vtime.Duration
	for _, s := range r.Segments {
		if s.Partition == p {
			sum += s.End.Sub(s.Start)
		}
	}
	return sum
}

// Gantt renders the recorded window as one text row per partition, one
// column per cell of the given duration — the textual analogue of Fig. 6.
// A cell is marked '#' when the partition ran for the majority of the cell.
func (r *Recorder) Gantt(names []string, cell vtime.Duration) string {
	if len(r.Segments) == 0 {
		return "(empty trace)\n"
	}
	start := r.Segments[0].Start
	end := r.Segments[len(r.Segments)-1].End
	n := int(vtime.CeilDiv(end.Sub(start), cell))
	if n <= 0 {
		return "(empty trace)\n"
	}
	const maxCells = 4000
	if n > maxCells {
		n = maxCells
		end = start.Add(vtime.Duration(n) * cell)
	}
	rows := make([][]vtime.Duration, len(names))
	for i := range rows {
		rows[i] = make([]vtime.Duration, n)
	}
	for _, seg := range r.Segments {
		if seg.Partition < 0 || seg.Partition >= len(names) {
			continue
		}
		s, e := seg.Start, seg.End
		if e > end {
			e = end
		}
		for t := s; t < e; {
			ci := int(t.Sub(start) / cell)
			cellEnd := start.Add(vtime.Duration(ci+1) * cell)
			chunk := e.Min(cellEnd).Sub(t)
			rows[seg.Partition][ci] += chunk
			t = t.Add(chunk)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "time: %v .. %v, cell = %v\n", start, end, cell)
	width := 0
	for _, nm := range names {
		if len(nm) > width {
			width = len(nm)
		}
	}
	for i, nm := range names {
		fmt.Fprintf(&sb, "%-*s |", width, nm)
		for _, d := range rows[i] {
			switch {
			case d > cell/2:
				sb.WriteByte('#')
			case d > 0:
				sb.WriteByte('+')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// CSV exports the segments as "start_us,end_us,partition" rows.
func (r *Recorder) CSV() string {
	var sb strings.Builder
	sb.WriteString("start_us,end_us,partition\n")
	for _, s := range r.Segments {
		fmt.Fprintf(&sb, "%d,%d,%d\n", int64(s.Start), int64(s.End), s.Partition)
	}
	return sb.String()
}

// Heatmap renders execution vectors (one row per monitoring window, one
// column per micro-interval) in the style of Figs. 4(b)/13: '#' where the
// receiver executed, '.' where it did not. labels[i] annotates row i with the
// sender's bit. maxRows caps the output.
func Heatmap(vectors [][]float64, labels []int, maxRows int) string {
	var sb strings.Builder
	rows := len(vectors)
	if maxRows > 0 && rows > maxRows {
		rows = maxRows
	}
	for i := 0; i < rows; i++ {
		if i < len(labels) {
			fmt.Fprintf(&sb, "X=%d |", labels[i])
		} else {
			sb.WriteString("    |")
		}
		for _, v := range vectors[i] {
			if v > 0.5 {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// HeatmapDensity summarizes, for each micro-interval column, the fraction of
// windows in which the receiver executed, split by the sender's bit. The two
// resulting profiles quantify how distinguishable the bits are: under
// NoRandom they differ markedly (Fig. 4b), under TimeDice they converge
// (Fig. 13).
func HeatmapDensity(vectors [][]float64, labels []int) (d0, d1 []float64) {
	if len(vectors) == 0 {
		return nil, nil
	}
	m := len(vectors[0])
	d0 = make([]float64, m)
	d1 = make([]float64, m)
	var n0, n1 int
	for i, v := range vectors {
		if labels[i] == 0 {
			n0++
			for j := range v {
				d0[j] += v[j]
			}
		} else {
			n1++
			for j := range v {
				d1[j] += v[j]
			}
		}
	}
	for j := 0; j < m; j++ {
		if n0 > 0 {
			d0[j] /= float64(n0)
		}
		if n1 > 0 {
			d1[j] /= float64(n1)
		}
	}
	return d0, d1
}

// DensityDistance returns the mean absolute difference between two density
// profiles — a scalar "distinguishability" score for heatmap comparisons.
func DensityDistance(d0, d1 []float64) float64 {
	if len(d0) == 0 || len(d0) != len(d1) {
		return 0
	}
	var sum float64
	for i := range d0 {
		diff := d0[i] - d1[i]
		if diff < 0 {
			diff = -diff
		}
		sum += diff
	}
	return sum / float64(len(d0))
}
