package trace

import (
	"strings"
	"testing"

	"timedice/internal/engine"
	"timedice/internal/vtime"
)

func seg(start, end int64, p int) engine.Segment {
	return engine.Segment{Start: vtime.Time(vtime.MS(start)), End: vtime.Time(vtime.MS(end)), Partition: p}
}

func TestRecorderCoalesces(t *testing.T) {
	r := NewRecorder(0, 0)
	hook := r.Hook()
	hook(seg(0, 1, 0))
	hook(seg(1, 2, 0)) // same partition, contiguous → coalesce
	hook(seg(2, 3, 1))
	hook(seg(5, 6, 1)) // gap → new segment
	if len(r.Segments) != 3 {
		t.Fatalf("segments = %d, want 3: %v", len(r.Segments), r.Segments)
	}
	if r.Segments[0].End != vtime.Time(vtime.MS(2)) {
		t.Error("coalescing failed")
	}
}

func TestRecorderWindow(t *testing.T) {
	r := NewRecorder(vtime.Time(vtime.MS(10)), vtime.Time(vtime.MS(20)))
	hook := r.Hook()
	hook(seg(0, 5, 0))   // before window
	hook(seg(12, 15, 0)) // inside
	hook(seg(25, 30, 0)) // after
	if len(r.Segments) != 1 || r.Segments[0].Start != vtime.Time(vtime.MS(12)) {
		t.Fatalf("window filtering: %v", r.Segments)
	}
}

func TestBusyTimeOf(t *testing.T) {
	r := NewRecorder(0, 0)
	hook := r.Hook()
	hook(seg(0, 2, 0))
	hook(seg(2, 5, 1))
	hook(seg(5, 6, -1))
	if r.BusyTimeOf(0) != vtime.MS(2) || r.BusyTimeOf(1) != vtime.MS(3) || r.BusyTimeOf(-1) != vtime.MS(1) {
		t.Error("busy accounting wrong")
	}
}

func TestGantt(t *testing.T) {
	r := NewRecorder(0, 0)
	hook := r.Hook()
	hook(seg(0, 2, 0))
	hook(seg(2, 5, 1))
	hook(seg(5, 10, -1))
	out := r.Gantt([]string{"P1", "P2"}, vtime.Millisecond)
	if !strings.Contains(out, "P1 |##........|") {
		t.Errorf("P1 row wrong:\n%s", out)
	}
	if !strings.Contains(out, "P2 |..###.....|") {
		t.Errorf("P2 row wrong:\n%s", out)
	}
	empty := NewRecorder(0, 0)
	if empty.Gantt([]string{"P"}, vtime.Millisecond) != "(empty trace)\n" {
		t.Error("empty gantt")
	}
}

func TestCSV(t *testing.T) {
	r := NewRecorder(0, 0)
	hook := r.Hook()
	hook(seg(0, 2, 0))
	csv := r.CSV()
	if !strings.HasPrefix(csv, "start_us,end_us,partition\n") || !strings.Contains(csv, "0,2000,0\n") {
		t.Errorf("csv = %q", csv)
	}
}

func TestHeatmap(t *testing.T) {
	vectors := [][]float64{{1, 0, 1}, {0, 1, 0}}
	labels := []int{0, 1}
	out := Heatmap(vectors, labels, 10)
	want := "X=0 |#.#|\nX=1 |.#.|\n"
	if out != want {
		t.Errorf("heatmap = %q, want %q", out, want)
	}
	capped := Heatmap(vectors, labels, 1)
	if strings.Count(capped, "\n") != 1 {
		t.Error("maxRows not honored")
	}
}

func TestHeatmapDensityAndDistance(t *testing.T) {
	vectors := [][]float64{
		{1, 1, 0, 0},
		{1, 1, 0, 0},
		{0, 0, 1, 1},
		{0, 0, 1, 1},
	}
	labels := []int{0, 0, 1, 1}
	d0, d1 := HeatmapDensity(vectors, labels)
	if d0[0] != 1 || d0[2] != 0 || d1[0] != 0 || d1[2] != 1 {
		t.Errorf("densities: %v %v", d0, d1)
	}
	if got := DensityDistance(d0, d1); got != 1 {
		t.Errorf("distance = %v, want 1 (maximally distinguishable)", got)
	}
	if got := DensityDistance(d0, d0); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	if DensityDistance(nil, nil) != 0 {
		t.Error("nil distance")
	}
}
