package trace

import (
	"bytes"
	"image/png"
	"testing"

	"timedice/internal/vtime"
)

func TestHeatmapPNG(t *testing.T) {
	vectors := [][]float64{
		{1, 0, 1, 0},
		{0, 1, 0, 1},
	}
	labels := []int{0, 1}
	var buf bytes.Buffer
	if err := HeatmapPNG(vectors, labels, 2, &buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 6+4 || b.Dy() != 2*2 {
		t.Errorf("dimensions %dx%d", b.Dx(), b.Dy())
	}
	// Executed cell (row 0, col 0 → pixel x=6, y=0) must be dark.
	r, g, bb, _ := img.At(6, 0).RGBA()
	if r>>8 > 0x40 || g>>8 > 0x40 || bb>>8 > 0x40 {
		t.Errorf("executed cell not dark: %v", img.At(6, 0))
	}
	// Idle cell (row 0, col 1 → x=7) must be light.
	r, _, _, _ = img.At(7, 0).RGBA()
	if r>>8 < 0xE0 {
		t.Errorf("idle cell not light: %v", img.At(7, 0))
	}
}

func TestHeatmapPNGEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := HeatmapPNG(nil, nil, 2, &buf); err == nil {
		t.Error("empty heatmap accepted")
	}
}

func TestGanttPNG(t *testing.T) {
	r := NewRecorder(0, 0)
	hook := r.Hook()
	hook(seg(0, 2, 0))
	hook(seg(2, 5, 1))
	hook(seg(5, 10, -1))
	var buf bytes.Buffer
	if err := r.GanttPNG(2, vtime.Millisecond, 4, &buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 10 || b.Dy() != 3*4 {
		t.Errorf("dimensions %dx%d, want 10x12", b.Dx(), b.Dy())
	}
	// Partition 0 ran in [0,2): pixel (0,0) takes palette[0] (blue-ish).
	rr, gg, bb, _ := img.At(0, 0).RGBA()
	if !(bb > rr && bb > gg) {
		t.Errorf("partition 0 pixel not blue: %v", img.At(0, 0))
	}
	// Pixel at x=3 row 0 should be idle background (partition 0 not running).
	rr, _, _, _ = img.At(3, 0).RGBA()
	if rr>>8 < 0xE0 {
		t.Errorf("background pixel not light: %v", img.At(3, 0))
	}
}

func TestGanttPNGEmpty(t *testing.T) {
	r := NewRecorder(0, 0)
	var buf bytes.Buffer
	if err := r.GanttPNG(2, vtime.Millisecond, 4, &buf); err == nil {
		t.Error("empty recording accepted")
	}
}
