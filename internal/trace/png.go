package trace

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"timedice/internal/stats"
	"timedice/internal/vtime"
)

// palette provides distinguishable colors for up to 20 partitions; indexes
// wrap beyond that. Index -1 (idle) renders as near-white.
var palette = []color.RGBA{
	{0x1f, 0x77, 0xb4, 0xff}, {0xff, 0x7f, 0x0e, 0xff}, {0x2c, 0xa0, 0x2c, 0xff},
	{0xd6, 0x27, 0x28, 0xff}, {0x94, 0x67, 0xbd, 0xff}, {0x8c, 0x56, 0x4b, 0xff},
	{0xe3, 0x77, 0xc2, 0xff}, {0x7f, 0x7f, 0x7f, 0xff}, {0xbc, 0xbd, 0x22, 0xff},
	{0x17, 0xbe, 0xcf, 0xff}, {0xae, 0xc7, 0xe8, 0xff}, {0xff, 0xbb, 0x78, 0xff},
	{0x98, 0xdf, 0x8a, 0xff}, {0xff, 0x98, 0x96, 0xff}, {0xc5, 0xb0, 0xd5, 0xff},
	{0xc4, 0x9c, 0x94, 0xff}, {0xf7, 0xb6, 0xd2, 0xff}, {0xc7, 0xc7, 0xc7, 0xff},
	{0xdb, 0xdb, 0x8d, 0xff}, {0x9e, 0xda, 0xe5, 0xff},
}

var idleColor = color.RGBA{0xf4, 0xf4, 0xf4, 0xff}

// HeatmapPNG renders execution vectors as a PNG in the style of the paper's
// Figs. 4(b)/13: one row of rowHeight pixels per monitoring window, one
// column per micro-interval; executed intervals are dark, idle ones light.
// Rows are annotated by tinting the left margin with the sender's bit
// (blue = 0, orange = 1).
func HeatmapPNG(vectors [][]float64, labels []int, rowHeight int, w io.Writer) error {
	if len(vectors) == 0 || len(vectors[0]) == 0 {
		return fmt.Errorf("trace: empty heatmap")
	}
	if rowHeight <= 0 {
		rowHeight = 3
	}
	const margin = 6
	cols := len(vectors[0])
	img := image.NewRGBA(image.Rect(0, 0, margin+cols, len(vectors)*rowHeight))
	dark := color.RGBA{0x20, 0x20, 0x20, 0xff}
	light := color.RGBA{0xfb, 0xfb, 0xfb, 0xff}
	for r, v := range vectors {
		tint := palette[0]
		if r < len(labels) && labels[r]&1 == 1 {
			tint = palette[1]
		}
		for y := 0; y < rowHeight; y++ {
			py := r*rowHeight + y
			for x := 0; x < margin; x++ {
				img.SetRGBA(x, py, tint)
			}
			for c := 0; c < cols && c < len(v); c++ {
				px := margin + c
				if v[c] > 0.5 {
					img.SetRGBA(px, py, dark)
				} else {
					img.SetRGBA(px, py, light)
				}
			}
		}
	}
	return png.Encode(w, img)
}

// GanttPNG renders the recorded schedule as a PNG Gantt chart in the style
// of Fig. 6: one rowHeight-pixel row per partition plus an idle row, one
// pixel column per cell of simulated time.
func (r *Recorder) GanttPNG(nPartitions int, cell vtime.Duration, rowHeight int, w io.Writer) error {
	if len(r.Segments) == 0 {
		return fmt.Errorf("trace: empty recording")
	}
	if rowHeight <= 0 {
		rowHeight = 8
	}
	if cell <= 0 {
		cell = vtime.Millisecond
	}
	start := r.Segments[0].Start
	end := r.Segments[len(r.Segments)-1].End
	cols := int(vtime.CeilDiv(end.Sub(start), cell))
	const maxCols = 8000
	if cols > maxCols {
		cols = maxCols
		end = start.Add(vtime.Duration(cols) * cell)
	}
	rows := nPartitions + 1 // idle last
	img := image.NewRGBA(image.Rect(0, 0, cols, rows*rowHeight))
	// Background.
	for y := 0; y < rows*rowHeight; y++ {
		for x := 0; x < cols; x++ {
			img.SetRGBA(x, y, idleColor)
		}
	}
	for _, seg := range r.Segments {
		row := seg.Partition
		var col color.RGBA
		if row < 0 {
			row = nPartitions
			col = color.RGBA{0xdd, 0xdd, 0xdd, 0xff}
		} else if row >= nPartitions {
			continue
		} else {
			col = palette[row%len(palette)]
		}
		s, e := seg.Start, seg.End
		if e > end {
			e = end
		}
		x0 := int(s.Sub(start) / cell)
		x1 := int(vtime.CeilDiv(e.Sub(start), cell))
		for x := x0; x < x1 && x < cols; x++ {
			for y := 0; y < rowHeight-1; y++ { // 1px row separator
				img.SetRGBA(x, row*rowHeight+y, col)
			}
		}
	}
	return png.Encode(w, img)
}

// BoxesPNG renders grouped box-and-whisker plots in the style of Fig. 16:
// one group per label, one box per series inside each group (series share
// palette colors). Each box spans Q1..Q3 with a dark median line and a
// min..max whisker. Values are mapped linearly from zero to the global
// maximum.
func BoxesPNG(labels []string, series [][]stats.BoxPlot, w io.Writer) error {
	if len(series) == 0 || len(labels) == 0 {
		return fmt.Errorf("trace: empty box plot")
	}
	for _, s := range series {
		if len(s) != len(labels) {
			return fmt.Errorf("trace: series length %d != %d labels", len(s), len(labels))
		}
	}
	var hi float64
	for _, s := range series {
		for _, b := range s {
			if b.Max > hi {
				hi = b.Max
			}
		}
	}
	if hi <= 0 {
		hi = 1
	}
	const (
		boxW   = 9
		boxGap = 3
		grpGap = 14
		plotH  = 240
		pad    = 8
	)
	grpW := len(series)*(boxW+boxGap) - boxGap
	width := pad + len(labels)*(grpW+grpGap) - grpGap + pad
	height := pad + plotH + pad
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			img.SetRGBA(x, y, color.RGBA{0xff, 0xff, 0xff, 0xff})
		}
	}
	yOf := func(v float64) int {
		if v < 0 {
			v = 0
		}
		y := pad + plotH - int(v/hi*float64(plotH))
		if y < pad {
			y = pad
		}
		if y > pad+plotH {
			y = pad + plotH
		}
		return y
	}
	dark := color.RGBA{0x20, 0x20, 0x20, 0xff}
	for g := range labels {
		gx := pad + g*(grpW+grpGap)
		for si, s := range series {
			b := s[g]
			if b.N == 0 {
				continue
			}
			col := palette[si%len(palette)]
			x0 := gx + si*(boxW+boxGap)
			mid := x0 + boxW/2
			// Whisker min..max.
			for y := yOf(b.Max); y <= yOf(b.Min); y++ {
				img.SetRGBA(mid, y, dark)
			}
			// Box Q1..Q3.
			for y := yOf(b.Q3); y <= yOf(b.Q1); y++ {
				for x := x0; x < x0+boxW; x++ {
					img.SetRGBA(x, y, col)
				}
			}
			// Median line.
			my := yOf(b.Median)
			for x := x0; x < x0+boxW; x++ {
				img.SetRGBA(x, my, dark)
			}
		}
	}
	return png.Encode(w, img)
}
