package task

// Snapshot/restore support: a Scheduler's dynamic state as plain values, plus
// deep cloning for engine forks. Only the runtime bookkeeping is captured —
// the static Task descriptors are shared configuration the state is restored
// against, and ExecFn/PeriodFn closures are part of that configuration (a
// scheduler built without them cannot be restored into one that has them and
// vice versa; the engine's configuration fingerprint does not cover closure
// identity, so snapshot users keep closure-free systems, which everything
// model/gen-built satisfies).

import (
	"fmt"

	"timedice/internal/vtime"
)

// JobState is the serializable state of one pending job.
type JobState struct {
	Index     int64
	Arrival   vtime.Time
	Demand    vtime.Duration
	Remaining vtime.Duration
}

// TaskState is the dynamic state of one task within a Scheduler. Pending is
// the FIFO backlog, oldest job first.
type TaskState struct {
	Started     bool
	NextArrival vtime.Time
	NextIndex   int64
	Pending     []JobState
}

// SchedulerState is the dynamic state of a Scheduler. InFlightTask and
// InFlightJob identify the most recently dispatched, still-unfinished job
// (the preemption-edge tracking state) by task position and job index; both
// are -1 when no job is in flight.
type SchedulerState struct {
	Completed    int64
	InFlightTask int64
	InFlightJob  int64
	Tasks        []TaskState
}

// SaveState captures the scheduler's dynamic state. The scheduler is not
// mutated. Allocates; snapshot paths only.
func (s *Scheduler) SaveState() SchedulerState {
	out := SchedulerState{
		Completed:    s.completed,
		InFlightTask: -1,
		InFlightJob:  -1,
		Tasks:        make([]TaskState, len(s.states)),
	}
	for ti, st := range s.states {
		ts := TaskState{Started: st.started, NextArrival: st.nextArrival, NextIndex: st.nextIndex}
		for _, j := range st.queue() {
			if j == s.lastJob {
				out.InFlightTask, out.InFlightJob = int64(ti), j.Index
			}
			ts.Pending = append(ts.Pending, JobState{
				Index: j.Index, Arrival: j.Arrival, Demand: j.Demand, Remaining: j.Remaining,
			})
		}
		out.Tasks[ti] = ts
	}
	return out
}

// CheckState reports whether st is a valid state for this scheduler's task
// set. It accepts exactly the states SaveState can produce given the same
// configuration, so decoders can validate untrusted input before mutating
// anything.
func (s *Scheduler) CheckState(st SchedulerState) error {
	if len(st.Tasks) != len(s.states) {
		return fmt.Errorf("task: state covers %d tasks, scheduler has %d", len(st.Tasks), len(s.states))
	}
	if st.Completed < 0 {
		return fmt.Errorf("task: negative completed count %d", st.Completed)
	}
	if st.InFlightTask < -1 || st.InFlightTask >= int64(len(s.states)) {
		return fmt.Errorf("task: in-flight task %d out of range", st.InFlightTask)
	}
	if (st.InFlightTask < 0) != (st.InFlightJob < 0) {
		return fmt.Errorf("task: in-flight task %d and job %d must both be set or both be -1",
			st.InFlightTask, st.InFlightJob)
	}
	inFlightFound := st.InFlightTask < 0
	for ti, ts := range st.Tasks {
		tk := s.states[ti].task
		if !ts.Started {
			if len(ts.Pending) > 0 || ts.NextIndex != 0 || ts.NextArrival != 0 {
				return fmt.Errorf("task %q: unstarted task with pending/index/arrival state", tk.Name)
			}
			continue
		}
		if ts.NextArrival < 0 || ts.NextIndex < 0 {
			return fmt.Errorf("task %q: negative next arrival or index", tk.Name)
		}
		prevIdx := int64(-1)
		prevArr := vtime.Time(-1)
		for _, j := range ts.Pending {
			if j.Index <= prevIdx || j.Index >= ts.NextIndex {
				return fmt.Errorf("task %q: pending job index %d out of order or >= next index %d",
					tk.Name, j.Index, ts.NextIndex)
			}
			if j.Arrival < prevArr || j.Arrival < 0 {
				return fmt.Errorf("task %q: pending job %d arrival %v out of order", tk.Name, j.Index, j.Arrival)
			}
			if j.Demand < vtime.Microsecond || j.Demand > tk.WCET {
				return fmt.Errorf("task %q: job %d demand %v outside [1µs, %v]", tk.Name, j.Index, j.Demand, tk.WCET)
			}
			if j.Remaining <= 0 || j.Remaining > j.Demand {
				return fmt.Errorf("task %q: job %d remaining %v outside (0, %v]", tk.Name, j.Index, j.Remaining, j.Demand)
			}
			if int64(ti) == st.InFlightTask && j.Index == st.InFlightJob {
				inFlightFound = true
			}
			prevIdx, prevArr = j.Index, j.Arrival
		}
	}
	if !inFlightFound {
		return fmt.Errorf("task: in-flight job %d not pending in task %d", st.InFlightJob, st.InFlightTask)
	}
	return nil
}

// LoadState restores a state captured by SaveState on a scheduler with the
// same task set. On error the scheduler is unchanged. Current pending jobs
// are recycled into the freelist, so a load allocates only when the restored
// backlog exceeds every previous high-water mark. No Observer callbacks fire.
func (s *Scheduler) LoadState(st SchedulerState) error {
	if err := s.CheckState(st); err != nil {
		return err
	}
	for _, stt := range s.states {
		for _, j := range stt.queue() {
			s.free = append(s.free, j)
		}
		for i := range stt.pending {
			stt.pending[i] = nil
		}
		stt.pending = stt.pending[:0]
		stt.head = 0
	}
	s.completed = st.Completed
	s.ready = 0
	s.lastJob = nil
	for ti, ts := range st.Tasks {
		stt := s.states[ti]
		stt.started = ts.Started
		stt.nextArrival = ts.NextArrival
		stt.nextIndex = ts.NextIndex
		for _, js := range ts.Pending {
			var j *Job
			if n := len(s.free); n > 0 {
				j = s.free[n-1]
				s.free = s.free[:n-1]
			} else {
				j = new(Job)
			}
			*j = Job{Task: stt.task, Index: js.Index, Arrival: js.Arrival, Demand: js.Demand, Remaining: js.Remaining}
			stt.push(j)
			s.ready++
			if int64(ti) == st.InFlightTask && js.Index == st.InFlightJob {
				s.lastJob = j
			}
		}
	}
	return nil
}

// Clone returns an independent deep copy of the scheduler: fresh task states
// and job records sharing no mutable memory with s. The static *Task
// descriptors are shared (they are configuration, and mutating them mid-run
// is unsupported either way), as are the OnComplete and Shuffle callbacks.
// The Observer is not carried over; the clone's owner installs its own.
func (s *Scheduler) Clone() *Scheduler {
	c := &Scheduler{
		OnComplete: s.OnComplete,
		Shuffle:    s.Shuffle,
		completed:  s.completed,
		ready:      s.ready,
		states:     make([]*state, len(s.states)),
	}
	for i, st := range s.states {
		ns := &state{
			task:        st.task,
			prio:        st.prio,
			started:     st.started,
			nextArrival: st.nextArrival,
			nextIndex:   st.nextIndex,
		}
		for _, j := range st.queue() {
			nj := new(Job)
			*nj = *j
			ns.pending = append(ns.pending, nj)
			if j == s.lastJob {
				c.lastJob = nj
			}
		}
		c.states[i] = ns
	}
	return c
}
