package task

import (
	"testing"

	"timedice/internal/vtime"
)

func mustScheduler(t *testing.T, tasks []*Task) *Scheduler {
	t.Helper()
	s, err := NewScheduler(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		ok   bool
	}{
		{"valid", Task{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(2)}, true},
		{"zero period", Task{Name: "a", WCET: vtime.MS(2)}, false},
		{"zero wcet", Task{Name: "a", Period: vtime.MS(10)}, false},
		{"wcet > period", Task{Name: "a", Period: vtime.MS(1), WCET: vtime.MS(2)}, false},
		{"negative offset", Task{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(1), Offset: -1}, false},
	}
	for _, c := range cases {
		if err := c.task.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestEffectiveDeadline(t *testing.T) {
	a := Task{Period: vtime.MS(10), WCET: vtime.MS(1)}
	if a.EffectiveDeadline() != vtime.MS(10) {
		t.Error("implicit deadline should equal period")
	}
	a.Deadline = vtime.MS(7)
	if a.EffectiveDeadline() != vtime.MS(7) {
		t.Error("explicit deadline ignored")
	}
}

func TestReleaseAndRun(t *testing.T) {
	tk := &Task{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(3)}
	s := mustScheduler(t, []*Task{tk})

	s.ReleaseUpTo(0)
	if !s.HasReady() {
		t.Fatal("job at t=0 not released")
	}
	if got := s.ShortestRemaining(); got != vtime.MS(3) {
		t.Errorf("remaining = %v, want 3ms", got)
	}
	used := s.Run(0, vtime.MS(2))
	if used != vtime.MS(2) {
		t.Errorf("used = %v", used)
	}
	if got := s.ShortestRemaining(); got != vtime.MS(1) {
		t.Errorf("remaining after partial run = %v", got)
	}
	var done []Completion
	s.OnComplete = func(c Completion) { done = append(done, c) }
	used = s.Run(vtime.Time(vtime.MS(5)), vtime.MS(10))
	if used != vtime.MS(1) {
		t.Errorf("second run used %v, want 1ms (queue empties)", used)
	}
	if len(done) != 1 {
		t.Fatalf("completions = %d", len(done))
	}
	if done[0].Response != vtime.MS(6) {
		t.Errorf("response = %v, want 6ms", done[0].Response)
	}
	if s.Completed() != 1 {
		t.Error("Completed counter")
	}
}

func TestFixedPriorityPreemptionOrder(t *testing.T) {
	hi := &Task{Name: "hi", Period: vtime.MS(10), WCET: vtime.MS(1)}
	lo := &Task{Name: "lo", Period: vtime.MS(20), WCET: vtime.MS(5)}
	s := mustScheduler(t, []*Task{hi, lo})
	s.ReleaseUpTo(0)
	if s.Current().Task != hi {
		t.Fatal("highest-priority task should run first")
	}
	s.Run(0, vtime.MS(1)) // finish hi
	if s.Current().Task != lo {
		t.Fatal("lower-priority task should run next")
	}
	// hi arrives again at 10ms: it must preempt lo's position at the head.
	s.Run(vtime.Time(vtime.MS(1)), vtime.MS(2))
	s.ReleaseUpTo(vtime.Time(vtime.MS(10)))
	if s.Current().Task != hi {
		t.Fatal("arrival of hi must take the head of the ready order")
	}
}

func TestBacklogFIFOWithinTask(t *testing.T) {
	tk := &Task{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(8)}
	s := mustScheduler(t, []*Task{tk})
	s.ReleaseUpTo(vtime.Time(vtime.MS(25))) // releases jobs at 0, 10, 20
	var responses []vtime.Duration
	s.OnComplete = func(c Completion) { responses = append(responses, c.Response) }
	if got := s.Backlog(); got != vtime.MS(24) {
		t.Fatalf("backlog = %v, want 24ms", got)
	}
	s.Run(vtime.Time(vtime.MS(25)), vtime.MS(24))
	if len(responses) != 3 {
		t.Fatalf("completions = %d, want 3", len(responses))
	}
	// Jobs must finish in arrival order: responses strictly ordered by index.
	// job0 arrival 0 finishes at 33 → 33ms; job1 arrival 10 at 41 → 31ms;
	// job2 arrival 20 at 49 → 29ms.
	want := []vtime.Duration{vtime.MS(33), vtime.MS(31), vtime.MS(29)}
	for i, w := range want {
		if responses[i] != w {
			t.Errorf("response[%d] = %v, want %v", i, responses[i], w)
		}
	}
}

func TestExecFnClamping(t *testing.T) {
	tk := &Task{
		Name: "mod", Period: vtime.MS(10), WCET: vtime.MS(4),
		ExecFn: func(k int64, _ vtime.Time) vtime.Duration {
			if k == 0 {
				return 0 // below minimum: clamp to 1us
			}
			return vtime.MS(100) // above WCET: clamp to WCET
		},
	}
	s := mustScheduler(t, []*Task{tk})
	s.ReleaseUpTo(0)
	if got := s.Current().Demand; got != vtime.Microsecond {
		t.Errorf("job 0 demand = %v, want 1us", got)
	}
	s.Run(0, vtime.MS(1))
	s.ReleaseUpTo(vtime.Time(vtime.MS(10)))
	if got := s.Current().Demand; got != vtime.MS(4) {
		t.Errorf("job 1 demand = %v, want WCET", got)
	}
}

func TestPeriodFnControlsArrivals(t *testing.T) {
	tk := &Task{
		Name: "sporadic", Period: vtime.MS(10), WCET: vtime.MS(1),
		PeriodFn: func(k int64, _ vtime.Time) vtime.Duration {
			return vtime.MS(10 + 5*(k+1)) // growing gaps: 15, 20, ...
		},
	}
	s := mustScheduler(t, []*Task{tk})
	s.ReleaseUpTo(0)
	if s.NextArrival() != vtime.Time(vtime.MS(15)) {
		t.Errorf("second arrival at %v, want 15ms", s.NextArrival())
	}
	s.ReleaseUpTo(vtime.Time(vtime.MS(15)))
	if s.NextArrival() != vtime.Time(vtime.MS(35)) {
		t.Errorf("third arrival at %v, want 35ms", s.NextArrival())
	}
}

func TestOffset(t *testing.T) {
	tk := &Task{Name: "off", Period: vtime.MS(10), WCET: vtime.MS(1), Offset: vtime.MS(3)}
	s := mustScheduler(t, []*Task{tk})
	s.ReleaseUpTo(0)
	if s.HasReady() {
		t.Error("offset task released too early")
	}
	if s.NextArrival() != vtime.Time(vtime.MS(3)) {
		t.Errorf("first arrival at %v, want 3ms", s.NextArrival())
	}
}

func TestReset(t *testing.T) {
	tk := &Task{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(1)}
	s := mustScheduler(t, []*Task{tk})
	s.ReleaseUpTo(vtime.Time(vtime.MS(50)))
	s.Run(vtime.Time(vtime.MS(50)), vtime.MS(10))
	s.Reset()
	if s.HasReady() || s.Completed() != 0 || s.NextArrival() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestSchedulerRejectsInvalidTask(t *testing.T) {
	if _, err := NewScheduler([]*Task{{Name: "bad", Period: -1, WCET: 1}}); err == nil {
		t.Error("NewScheduler should reject invalid tasks")
	}
}

func TestRunWithNoWork(t *testing.T) {
	s := mustScheduler(t, []*Task{{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(1), Offset: vtime.MS(5)}})
	if used := s.Run(0, vtime.MS(3)); used != 0 {
		t.Errorf("Run with empty queue used %v", used)
	}
	if s.ShortestRemaining() != vtime.Forever {
		t.Error("idle ShortestRemaining should be Forever")
	}
}

func TestShuffleDispatchesAllBackloggedTasks(t *testing.T) {
	hi := &Task{Name: "hi", Period: vtime.MS(100), WCET: vtime.MS(10)}
	lo := &Task{Name: "lo", Period: vtime.MS(100), WCET: vtime.MS(10)}
	s := mustScheduler(t, []*Task{hi, lo})
	// Round-robin shuffle: alternate picks.
	turn := 0
	s.Shuffle = func(n int) int {
		turn++
		return turn % n
	}
	s.ReleaseUpTo(0)
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		job := s.Current()
		if job == nil {
			t.Fatal("no job")
		}
		seen[job.Task.Name] = true
	}
	if !seen["hi"] || !seen["lo"] {
		t.Errorf("shuffled dispatch never visited both tasks: %v", seen)
	}
	// With Shuffle nil, strict priority returns hi.
	s.Shuffle = nil
	if s.Current().Task != hi {
		t.Error("priority dispatch broken after clearing Shuffle")
	}
}

func TestShuffleEmptyQueue(t *testing.T) {
	s := mustScheduler(t, []*Task{{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(1), Offset: vtime.MS(5)}})
	s.Shuffle = func(n int) int { return 0 }
	if s.Current() != nil {
		t.Error("empty backlog should return nil under shuffle")
	}
}
