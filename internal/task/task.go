// Package task implements the partition-local task model of the paper's
// Section II: sporadic tasks τ_{i,j} = (p_{i,j}, e_{i,j}) scheduled by a
// fixed-priority preemptive local scheduler inside their partition.
//
// A Task is the static description; the scheduler owns the runtime state
// (pending jobs, next arrival). Task priorities follow declaration order:
// the first task in a scheduler has the highest local priority, matching the
// paper's Pri(τ_{i,j}) > Pri(τ_{i,j+1}) convention.
package task

import (
	"fmt"

	"timedice/internal/vtime"
)

// Task describes a sporadic real-time task. Period is the minimum
// inter-arrival time p and WCET the worst-case execution time e. The zero
// Deadline means an implicit deadline equal to Period.
//
// ExecFn and PeriodFn, when non-nil, supply the actual execution demand and
// the actual inter-arrival gap for the k-th job (k counts from 0). They allow
// noise tasks to vary their timing "by up to 20%" and allow the covert-channel
// sender to modulate its budget consumption. Values returned are clamped to
// [1µs, WCET] and [Period·(anything ≥ 1µs)] respectively by the scheduler;
// a sender signaling bit 0 returns a tiny demand, bit 1 returns the WCET.
type Task struct {
	Name     string
	Period   vtime.Duration
	WCET     vtime.Duration
	Deadline vtime.Duration // 0 ⇒ implicit (= Period)
	Offset   vtime.Duration // release offset of the first job

	// ExecFn returns the execution demand of job k at its arrival instant.
	ExecFn func(k int64, arrival vtime.Time) vtime.Duration
	// PeriodFn returns the gap between the arrivals of jobs k and k+1.
	PeriodFn func(k int64, arrival vtime.Time) vtime.Duration
}

// EffectiveDeadline returns the task's relative deadline (Period when
// implicit).
func (t *Task) EffectiveDeadline() vtime.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

// Validate reports a descriptive error when the static parameters are
// unusable.
func (t *Task) Validate() error {
	switch {
	case t.Period <= 0:
		return fmt.Errorf("task %q: period must be positive, got %v", t.Name, t.Period)
	case t.WCET <= 0:
		return fmt.Errorf("task %q: WCET must be positive, got %v", t.Name, t.WCET)
	case t.WCET > t.Period:
		return fmt.Errorf("task %q: WCET %v exceeds period %v", t.Name, t.WCET, t.Period)
	case t.Deadline < 0 || t.Offset < 0:
		return fmt.Errorf("task %q: negative deadline or offset", t.Name)
	}
	return nil
}

// Job is one pending or running invocation of a task.
type Job struct {
	Task      *Task
	Index     int64 // k-th job of the task, from 0
	Arrival   vtime.Time
	Demand    vtime.Duration // total execution required
	Remaining vtime.Duration // execution still owed
}

// Completion is reported to observers when a job finishes.
type Completion struct {
	Job      Job
	Finish   vtime.Time
	Response vtime.Duration // Finish - Arrival
}

// state is the runtime bookkeeping for one task within a Scheduler.
type state struct {
	task        *Task
	prio        int // index within scheduler; lower = higher priority
	started     bool
	nextArrival vtime.Time
	nextIndex   int64
	// pending[head:] is the FIFO backlog of this task's jobs (front =
	// oldest). The head index makes popping the front O(1) without giving up
	// the slice's capacity; push compacts when the tail hits capacity, so the
	// steady state allocates nothing.
	pending []*Job
	head    int
}

// queue returns the live backlog, front first.
func (st *state) queue() []*Job { return st.pending[st.head:] }

func (st *state) push(j *Job) {
	if st.head > 0 && len(st.pending) == cap(st.pending) {
		n := copy(st.pending, st.pending[st.head:])
		for i := n; i < len(st.pending); i++ {
			st.pending[i] = nil
		}
		st.pending = st.pending[:n]
		st.head = 0
	}
	st.pending = append(st.pending, j)
}

// popFront removes and returns the oldest pending job.
func (st *state) popFront() *Job {
	j := st.pending[st.head]
	st.pending[st.head] = nil
	st.head++
	if st.head == len(st.pending) {
		st.pending = st.pending[:0]
		st.head = 0
	}
	return j
}

// arrivalAnchor lazily initializes the first arrival from the task's Offset.
// Laziness matters: transforms such as BLINDER's release quantization rewrite
// Offset after the system is built but before the simulation starts.
func (st *state) arrivalAnchor() vtime.Time {
	if !st.started {
		st.started = true
		st.nextArrival = vtime.Time(0).Add(st.task.Offset)
	}
	return st.nextArrival
}

// Observer receives job lifecycle callbacks from a Scheduler. It is the
// low-level feed of the telemetry event stream: the hierarchical engine
// installs one per partition and forwards to the attached sink. Observer is
// separate from the public OnComplete callback so user code and telemetry
// never clobber each other.
type Observer interface {
	// JobReleased fires when a job arrives (is added to the backlog).
	JobReleased(j *Job)
	// JobDispatched fires when a job is granted the CPU; first is true on
	// the job's first-ever execution (false on a resume after preemption).
	JobDispatched(j *Job, at vtime.Time, first bool)
	// JobPreempted fires when a mid-execution job loses the CPU to another
	// job of the same partition. (Partition-level preemptions — the whole
	// partition losing the CPU — are reported by the engine, which is the
	// only layer that sees them.)
	JobPreempted(j *Job, at vtime.Time)
	// JobCompleted fires for every finished job, after OnComplete.
	JobCompleted(c Completion)
}

// Scheduler is a fixed-priority preemptive scheduler over one partition's
// tasks. It is driven by its partition's share of the CPU: the hierarchical
// engine tells it how much time passed while the partition was executing.
type Scheduler struct {
	states []*state
	// OnComplete, when non-nil, is invoked for every finished job.
	OnComplete func(Completion)
	// Observer, when non-nil, receives job lifecycle callbacks (see
	// Observer). The engine installs it; user code should prefer OnComplete
	// or a telemetry sink.
	Observer Observer
	// lastJob is the most recently dispatched, still-unfinished job; it is
	// tracked only while Observer is set (dispatch/preempt edge detection).
	lastJob *Job
	// Shuffle, when non-nil, makes the local scheduler pick uniformly among
	// the tasks with pending jobs instead of the highest-priority one — a
	// TaskShuffler-style local randomization (Yoon et al., RTAS 2016, the
	// paper's reference [8]). It randomizes the order of local tasks but
	// cannot change WHEN the partition as a whole executes, so it does not
	// affect the partition-level covert channel (a negative result the
	// experiments demonstrate). The choice is re-drawn at every dispatch.
	Shuffle   func(n int) int
	completed int64
	// ready counts pending jobs across all tasks, so the per-decision
	// HasReady probe is O(1) instead of scanning every task queue.
	ready int
	// free recycles completed Job records so the steady-state release path
	// allocates nothing. A recycled pointer is handed out again by a later
	// release: observers must not retain a *Job past their callback (the
	// Completion callbacks receive a value copy and are unaffected).
	free []*Job
	// shuffleBuf is the reusable candidate buffer for the Shuffle path.
	shuffleBuf []*state
}

// NewScheduler builds a local scheduler. Task priority is the slice order
// (index 0 = highest). The tasks are validated.
func NewScheduler(tasks []*Task) (*Scheduler, error) {
	s := &Scheduler{}
	for i, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		s.states = append(s.states, &state{task: t, prio: i})
	}
	return s, nil
}

// Tasks returns the static task list in priority order.
func (s *Scheduler) Tasks() []*Task {
	out := make([]*Task, len(s.states))
	for i, st := range s.states {
		out[i] = st.task
	}
	return out
}

// Completed returns the number of jobs finished so far.
func (s *Scheduler) Completed() int64 { return s.completed }

// ReleaseUpTo releases every job whose arrival instant is <= now.
func (s *Scheduler) ReleaseUpTo(now vtime.Time) {
	for _, st := range s.states {
		st.arrivalAnchor()
		for st.nextArrival <= now {
			arrival := st.nextArrival
			demand := st.task.WCET
			if st.task.ExecFn != nil {
				demand = st.task.ExecFn(st.nextIndex, arrival)
				if demand < vtime.Microsecond {
					demand = vtime.Microsecond
				}
				if demand > st.task.WCET {
					demand = st.task.WCET
				}
			}
			var j *Job
			if n := len(s.free); n > 0 {
				j = s.free[n-1]
				s.free = s.free[:n-1]
			} else {
				j = new(Job)
			}
			*j = Job{
				Task:      st.task,
				Index:     st.nextIndex,
				Arrival:   arrival,
				Demand:    demand,
				Remaining: demand,
			}
			st.push(j)
			s.ready++
			if s.Observer != nil {
				s.Observer.JobReleased(j)
			}
			gap := st.task.Period
			if st.task.PeriodFn != nil {
				gap = st.task.PeriodFn(st.nextIndex, arrival)
				if gap < vtime.Microsecond {
					gap = vtime.Microsecond
				}
			}
			st.nextIndex++
			st.nextArrival = arrival.Add(gap)
		}
	}
}

// NextArrival returns the earliest future job arrival, or vtime.Infinity.
func (s *Scheduler) NextArrival() vtime.Time {
	next := vtime.Infinity
	for _, st := range s.states {
		if a := st.arrivalAnchor(); a < next {
			next = a
		}
	}
	return next
}

// Current returns the job the partition would execute now (the oldest pending
// job of the highest-priority task with a backlog, or of a uniformly random
// backlogged task when Shuffle is set), or nil if the partition has no ready
// work.
func (s *Scheduler) Current() *Job {
	if s.Shuffle != nil {
		// Collect backlogged tasks and pick one at random.
		backlogged := s.shuffleBuf[:0]
		for _, st := range s.states {
			if len(st.queue()) > 0 {
				backlogged = append(backlogged, st)
			}
		}
		s.shuffleBuf = backlogged
		if len(backlogged) == 0 {
			return nil
		}
		return backlogged[s.Shuffle(len(backlogged))].queue()[0]
	}
	for _, st := range s.states {
		if q := st.queue(); len(q) > 0 {
			return q[0]
		}
	}
	return nil
}

// HasReady reports whether any job is pending.
func (s *Scheduler) HasReady() bool { return s.ready > 0 }

// ReadyAndNext returns HasReady and NextArrival in one call, with a single
// pass over the task states. The engine reads both for every partition it
// touches when refreshing the hot-state arenas (partition.Hot), so the
// combined accessor halves the per-touch walk.
func (s *Scheduler) ReadyAndNext() (ready bool, next vtime.Time) {
	next = vtime.Infinity
	for _, st := range s.states {
		if a := st.arrivalAnchor(); a < next {
			next = a
		}
	}
	return s.ready > 0, next
}

// Backlog returns the total outstanding execution demand across all pending
// jobs.
func (s *Scheduler) Backlog() vtime.Duration {
	var sum vtime.Duration
	for _, st := range s.states {
		for _, j := range st.queue() {
			sum += j.Remaining
		}
	}
	return sum
}

// Run consumes up to d of CPU time starting at instant start, executing
// pending jobs in fixed-priority order. It does NOT release new arrivals;
// the engine guarantees no arrival falls strictly inside the slice it grants
// (slices end at the next event boundary). It returns the CPU time actually
// used, which is less than d only if the ready queue empties.
func (s *Scheduler) Run(start vtime.Time, d vtime.Duration) vtime.Duration {
	var used vtime.Duration
	for used < d {
		job := s.Current()
		if job == nil {
			break
		}
		if s.Observer != nil && job != s.lastJob {
			if prev := s.lastJob; prev != nil && prev.Remaining > 0 {
				s.Observer.JobPreempted(prev, start.Add(used))
			}
			s.Observer.JobDispatched(job, start.Add(used), job.Remaining == job.Demand)
			s.lastJob = job
		}
		slice := (d - used).Min(job.Remaining)
		job.Remaining -= slice
		used += slice
		if job.Remaining == 0 {
			s.finish(job, start.Add(used))
		}
	}
	return used
}

// TakeInFlight returns the most recently dispatched still-unfinished job and
// forgets it, so the job's next dispatch is reported again. The engine calls
// it when the partition as a whole loses the CPU mid-job (a partition-level
// preemption). It returns nil when no job is mid-execution or no Observer is
// installed (the tracking only runs under an Observer).
func (s *Scheduler) TakeInFlight() *Job {
	j := s.lastJob
	s.lastJob = nil
	if j == nil || j.Remaining == 0 || j.Remaining == j.Demand {
		return nil
	}
	return j
}

// ShortestRemaining returns the remaining demand of the job that would run
// next, or vtime.Forever when idle. The engine uses it to bound a dispatch
// slice at the job-completion event.
func (s *Scheduler) ShortestRemaining() vtime.Duration {
	if job := s.Current(); job != nil {
		return job.Remaining
	}
	return vtime.Forever
}

func (s *Scheduler) finish(job *Job, at vtime.Time) {
	st := s.states[s.indexOf(job.Task)]
	// The finished job is necessarily the front of its task's backlog.
	st.popFront()
	s.ready--
	s.completed++
	if s.lastJob == job {
		s.lastJob = nil
	}
	if s.OnComplete != nil || s.Observer != nil {
		c := Completion{
			Job:      *job,
			Finish:   at,
			Response: at.Sub(job.Arrival),
		}
		if s.OnComplete != nil {
			s.OnComplete(c)
		}
		if s.Observer != nil {
			s.Observer.JobCompleted(c)
		}
	}
	s.free = append(s.free, job)
}

func (s *Scheduler) indexOf(t *Task) int {
	for i, st := range s.states {
		if st.task == t {
			return i
		}
	}
	panic("task: job for unknown task")
}

// Reset restores all tasks to their initial state (no pending jobs, first
// arrival at the task offset). Pending jobs are recycled into the freelist
// and every buffer keeps its capacity, so a reset scheduler replays a run
// without reallocating.
func (s *Scheduler) Reset() {
	for _, st := range s.states {
		st.started = false
		st.nextArrival = 0
		st.nextIndex = 0
		for _, j := range st.queue() {
			s.free = append(s.free, j)
		}
		for i := range st.pending {
			st.pending[i] = nil
		}
		st.pending = st.pending[:0]
		st.head = 0
	}
	s.completed = 0
	s.ready = 0
	s.lastJob = nil
}
