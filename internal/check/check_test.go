package check_test

import (
	"strings"
	"testing"

	"timedice/internal/check"
	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/server"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

// oneP is a single polling partition (T=10ms, B=2ms) with one aligned task
// (period 40ms, WCET 1ms). It passes the conservative test and every bound,
// so the suite arms all oracles including the differential ones.
func oneP() model.SystemSpec {
	return model.SystemSpec{
		Name: "synthetic",
		Partitions: []model.PartitionSpec{{
			Name:   "P1",
			Period: vtime.MS(10),
			Budget: vtime.MS(2),
			Server: server.Polling,
			Tasks:  []model.TaskSpec{{Name: "t1.1", Period: vtime.MS(40), WCET: vtime.MS(1)}},
		}},
	}
}

// twoP adds a second, sporadic partition below P1; t2.1 lives outside the
// task-level claim (sporadic ⇒ never certified).
func twoP() model.SystemSpec {
	spec := oneP()
	spec.Partitions = append(spec.Partitions, model.PartitionSpec{
		Name:   "P2",
		Period: vtime.MS(20),
		Budget: vtime.MS(2),
		Server: server.Sporadic,
		Tasks:  []model.TaskSpec{{Name: "t2.1", Period: vtime.MS(80), WCET: vtime.MS(1)}},
	})
	return spec
}

func newSuite(t *testing.T, spec model.SystemSpec, kind policies.Kind) *check.Suite {
	t.Helper()
	s, err := check.NewSuite(spec, kind)
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	return s
}

// oracles returns the set of distinct oracle names among the violations.
func oracles(vs []check.Violation) map[string]bool {
	m := map[string]bool{}
	for _, v := range vs {
		m[v.Oracle] = true
	}
	return m
}

func wantOnly(t *testing.T, s *check.Suite, want ...string) {
	t.Helper()
	vs, total := s.Violations()
	got := oracles(vs)
	for _, w := range want {
		if !got[w] {
			t.Errorf("oracle %q did not fire; violations: %v", w, vs)
		}
	}
	if len(got) != len(want) || total != len(vs) {
		t.Errorf("unexpected extra violations (total %d): %v", total, vs)
	}
}

// TestOraclesFire feeds each oracle a minimal synthetic event stream that
// violates exactly its invariant, proving every oracle is live and none
// fires collaterally.
func TestOraclesFire(t *testing.T) {
	ms := vtime.MS
	at := func(m int64) vtime.Time { return vtime.Time(ms(m)) }

	t.Run("conservation/overdraw", func(t *testing.T) {
		s := newSuite(t, oneP(), policies.NoRandom)
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindTaskArrival, Partition: 0, Task: "t1.1"})
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindDecision, Partition: 0})
		// 3ms slice against a 2ms budget.
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindSlice, Partition: 0, Dur: ms(3)})
		wantOnly(t, s, check.OracleConservation)
	})

	t.Run("replenish/off-boundary", func(t *testing.T) {
		s := newSuite(t, oneP(), policies.NoRandom)
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindTaskArrival, Partition: 0, Task: "t1.1"})
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindDecision, Partition: 0})
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindSlice, Partition: 0, Dur: ms(2)})
		// Full 2ms replenish at t=3ms: amount and Aux agree with the ledger,
		// but 3ms is off the 10ms boundary grid.
		s.Event(telemetry.Event{Time: at(3), Kind: telemetry.KindBudgetReplenish, Partition: 0,
			Dur: ms(2), Aux: int64(ms(2))})
		wantOnly(t, s, check.OracleReplenish)
	})

	t.Run("vtime/gap", func(t *testing.T) {
		s := newSuite(t, oneP(), policies.NoRandom)
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindDecision, Partition: -1})
		// Idle slice starting at 5ms: the schedule must tile from 0.
		s.Event(telemetry.Event{Time: at(5), Kind: telemetry.KindSlice, Partition: -1, Dur: ms(5)})
		wantOnly(t, s, check.OracleVTime)
	})

	t.Run("work/slice-vs-decision", func(t *testing.T) {
		// TimeDiceU so that the idle pick itself is legal (idle-as-candidate).
		s := newSuite(t, oneP(), policies.TimeDiceU)
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindTaskArrival, Partition: 0, Task: "t1.1"})
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindDecision, Partition: -1})
		// The slice runs P1 although the decision picked idle.
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindSlice, Partition: 0, Dur: ms(1)})
		wantOnly(t, s, check.OracleWork)
	})

	t.Run("priority/norandom-inversion", func(t *testing.T) {
		spec := twoP()
		s := newSuite(t, spec, policies.NoRandom)
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindTaskArrival, Partition: 0, Task: "t1.1"})
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindTaskArrival, Partition: 1, Task: "t2.1"})
		// Both partitions are runnable; strict priority demands P1, the
		// decision picks P2.
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindDecision, Partition: 1})
		wantOnly(t, s, check.OraclePriority)
	})

	t.Run("priority/inversion-window-under-norandom", func(t *testing.T) {
		s := newSuite(t, oneP(), policies.NoRandom)
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindInversionOpen})
		wantOnly(t, s, check.OraclePriority)
	})

	t.Run("starvation/backlogged-undersupplied", func(t *testing.T) {
		s := newSuite(t, oneP(), policies.TimeDiceU)
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindTaskArrival, Partition: 0, Task: "t1.1"})
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindDecision, Partition: -1})
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindSlice, Partition: -1, Dur: ms(25)})
		// The next arrival closes the periods [0,10) and [10,20): the second
		// was backlogged throughout yet P1 consumed nothing.
		s.Event(telemetry.Event{Time: at(25), Kind: telemetry.KindTaskArrival, Partition: 0, Task: "t1.1", Job: 1})
		wantOnly(t, s, check.OracleStarvation)
	})

	t.Run("differential/certified-miss", func(t *testing.T) {
		s := newSuite(t, twoP(), policies.NoRandom)
		// A miss by the certified P1 task falsifies the claim...
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindDeadlineMiss, Partition: 0, Task: "t1.1", Dur: ms(1)})
		// ...a miss by the sporadic-partition task is outside it.
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindDeadlineMiss, Partition: 1, Task: "t2.1", Dur: ms(1)})
		vs, total := s.Violations()
		if total != 1 || !oracles(vs)[check.OracleDifferential] {
			t.Fatalf("want exactly the certified miss to fire, got %v", vs)
		}
	})

	t.Run("differential/wcrt-exceeds-bound", func(t *testing.T) {
		s := newSuite(t, oneP(), policies.NoRandom)
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindTaskArrival, Partition: 0, Task: "t1.1"})
		// Response of 100ms dwarfs any bound for a 1ms task in a B/T=0.2
		// partition.
		s.Event(telemetry.Event{Time: at(0), Kind: telemetry.KindTaskComplete, Partition: 0, Task: "t1.1", Dur: ms(100)})
		s.Finish(at(0))
		wantOnly(t, s, check.OracleDifferential)
	})

	t.Run("counters/disagree", func(t *testing.T) {
		s := newSuite(t, oneP(), policies.NoRandom)
		s.CheckCounters(&engine.Counters{Decisions: 7}, ms(0))
		vs, _ := s.Violations()
		if !oracles(vs)[check.OracleCounters] {
			t.Fatalf("counters oracle did not fire: %v", vs)
		}
	})

	t.Run("counters/min-advance", func(t *testing.T) {
		// No built-in policy can trigger the defensive minimum-advance
		// fallback (all horizon bounds are strictly future), so a nonzero
		// count is itself a violation.
		s := newSuite(t, oneP(), policies.NoRandom)
		s.CheckCounters(&engine.Counters{MinAdvances: 3}, ms(0))
		vs, _ := s.Violations()
		if !oracles(vs)[check.OracleCounters] {
			t.Fatalf("min-advance oracle did not fire: %v", vs)
		}
	})
}

// TestSuiteCleanRun drives a real simulation through the suite and expects
// silence — the smoke half of the synthetic tests above.
func TestSuiteCleanRun(t *testing.T) {
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW} {
		t.Run(kind.String(), func(t *testing.T) {
			spec := twoP()
			suite := newSuite(t, spec, kind)
			built, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			pol, err := policies.Build(kind, built.Partitions, policies.Options{Quantum: vtime.MS(1)})
			if err != nil {
				t.Fatal(err)
			}
			sys, err := engine.New(built.Partitions, pol, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			sys.AttachTelemetry(suite)
			sys.RunFor(200 * vtime.Millisecond)
			sys.FlushTelemetry()
			suite.Finish(sys.Now())
			suite.CheckCounters(&sys.Counters, 200*vtime.Millisecond)
			if vs, total := suite.Violations(); total != 0 {
				t.Fatalf("%d violations on a certified system: %v", total, vs)
			}
			if suite.Events() == 0 {
				t.Fatal("no events reached the suite")
			}
		})
	}
}

// TestNewSuiteRejects pins the constructor's contract.
func TestNewSuiteRejects(t *testing.T) {
	if _, err := check.NewSuite(oneP(), policies.TDMA); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Errorf("TDMA accepted: %v", err)
	}
	bad := oneP()
	bad.Partitions[0].Budget = bad.Partitions[0].Period * 2
	if _, err := check.NewSuite(bad, policies.NoRandom); err == nil {
		t.Error("invalid spec accepted")
	}
}
