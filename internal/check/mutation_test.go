//go:build timedice_mutation

package check_test

import (
	"testing"

	"timedice/internal/check"
	"timedice/internal/gen"
	"timedice/internal/rng"
	"timedice/internal/server"
)

// TestMutationOraclesFire is the end-to-end sensitivity check of the oracle
// suite: built with -tags timedice_mutation, every boundary replenishment in
// the server package is shorted by 100µs (see server/mutation_on.go). That
// injected bug must be caught from the event stream alone — specifically by
// the replenishment-rule oracle ("boundary replenish must restore the full
// budget") on scenarios containing at least one backlogged polling or
// deferrable partition.
//
// Run it with:
//
//	go test -tags timedice_mutation ./internal/check -run TestMutationOraclesFire
//
// (The rest of the tree is not expected to pass under the mutation tag; CI
// selects this test alone.)
func TestMutationOraclesFire(t *testing.T) {
	r := rng.New(0xdead)
	scenarios, detected := 0, 0
	sawReplenish := false
	for i := 0; i < 40; i++ {
		sc := gen.Generate(r, gen.DefaultOptions())
		// Only boundary-replenished servers are mutated; skip all-sporadic
		// draws rather than dilute the detection rate.
		mutated := false
		for _, p := range sc.Spec.Partitions {
			if p.Server != server.Sporadic {
				mutated = true
			}
		}
		if !mutated {
			continue
		}
		scenarios++
		suite, err := gen.Run(sc)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		vs, total := suite.Violations()
		if total == 0 {
			continue
		}
		detected++
		for _, v := range vs {
			if v.Oracle == check.OracleReplenish {
				sawReplenish = true
			}
		}
	}
	if scenarios == 0 {
		t.Fatal("no scenario contained a mutated (boundary-replenished) server")
	}
	if detected == 0 {
		t.Fatalf("mutation survived: 0 of %d mutated scenarios raised a violation", scenarios)
	}
	if !sawReplenish {
		t.Errorf("no violation came from the replenish oracle; the detection is incidental")
	}
	t.Logf("mutation detected in %d/%d scenarios", detected, scenarios)
}
