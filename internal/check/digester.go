package check

import "timedice/internal/telemetry"

// Digester is the minimal telemetry sink: it folds every event into the
// canonical FNV-1a stream digest and counts them, and does nothing else — no
// oracles, no ledgers. The multicore layer attaches one per core to compute
// the per-core digests its combined check digest folds together; it is also
// the cheapest way for a test to pin "these two runs emitted byte-identical
// event streams".
type Digester struct {
	h uint64
	n int64
}

// NewDigester returns a Digester starting at DigestSeed.
func NewDigester() *Digester { return &Digester{h: DigestSeed} }

// Event implements telemetry.Sink.
func (d *Digester) Event(e telemetry.Event) {
	d.h = hashEvent(d.h, e)
	d.n++
}

// Digest returns the running stream digest — equal to DigestEvents of every
// event observed so far.
func (d *Digester) Digest() uint64 { return d.h }

// Events returns the number of events folded so far.
func (d *Digester) Events() int64 { return d.n }

// Reset rewinds the Digester to its initial state.
func (d *Digester) Reset() {
	d.h = DigestSeed
	d.n = 0
}

var _ telemetry.Sink = (*Digester)(nil)

// Fold64 folds one 64-bit word into a running FNV-1a digest, byte by byte —
// the same primitive the event digest uses. Aggregators use it to combine
// per-unit digests into one order-sensitive summary (e.g. multicore's
// combined digest, folding per-core digests in core index order).
func Fold64(h, v uint64) uint64 { return fnvFold(h, v) }
