package check

import (
	"fmt"

	"timedice/internal/analysis"
	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/server"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

// Oracle names, used in Violation.Oracle and the EXPERIMENTS.md inventory.
const (
	OracleConservation = "conservation" // budget ledger: 0 ≤ remaining ≤ B, no overdraw, event payloads consistent
	OracleReplenish    = "replenish"    // per-policy replenishment rules (boundaries, discards, sporadic ledger)
	OracleVTime        = "vtime"        // virtual-time monotonicity and slice contiguity
	OracleWork         = "work"         // only runnable partitions execute; slices match decisions
	OraclePriority     = "priority"     // NoRandom ≡ strict priority: no inversions, min-index pick
	OracleStarvation   = "starvation"   // supply guarantee: a backlogged partition drains B every period
	OracleDifferential = "differential" // schedulable ⇒ no misses, observed WCRT ≤ analytic bound
	OracleCounters     = "counters"     // engine Counters agree with the event stream
)

// Violation is one oracle failure, stamped with the virtual time at which it
// was detected.
type Violation struct {
	Oracle string
	Time   vtime.Time
	Msg    string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%v [%s] %s", v.Time, v.Oracle, v.Msg)
}

// maxViolations caps the retained violation list; beyond it only the total
// count grows (a single broken invariant fires on nearly every event).
const maxViolations = 64

// taskLedger tracks one task's observed responses against its analytic bound.
type taskLedger struct {
	bound vtime.Duration // Unschedulable ⇒ unchecked
	// certified arms the zero-deadline-miss claim for this task: the system
	// passed the conservative schedulability test and the task's analytic
	// bound fits its deadline, so any observed miss falsifies schedulability
	// preservation.
	certified   bool
	maxResp     vtime.Duration
	completions int64
}

// partLedger is the reconstructed state of one partition, rebuilt purely from
// the event stream.
type partLedger struct {
	name   string
	budget vtime.Duration
	period vtime.Duration
	srv    server.Policy

	remaining vtime.Duration // reconstructed B_i(t)
	pending   int            // released, not-yet-completed jobs
	// depleteDue is set by an execution-caused KindBudgetDeplete; the next
	// slice of this partition must drain the ledger to exactly zero.
	depleteDue bool

	// Sporadic-server ledger: cumulative consumption/replenishment plus the
	// trailing window of consumption chunks (sliding-window supply bound).
	cumConsumed    vtime.Duration
	cumReplenished vtime.Duration
	window         []sliceChunk

	// Per-period supply accounting for the starvation and supply-cap oracles.
	periodStart    vtime.Time
	consumedPeriod vtime.Duration
	everIdle       bool // partition had no backlog at some instant this period

	tasks map[string]*taskLedger
}

type sliceChunk struct {
	start vtime.Time
	dur   vtime.Duration
}

// Suite is the full oracle set attached to one simulated system as its
// telemetry sink. Construct with NewSuite, attach with AttachTelemetry, run
// the simulation, then call Finish and (optionally) CheckCounters before
// reading Violations.
type Suite struct {
	spec model.SystemSpec
	kind policies.Kind

	// missFree: the analyses certify zero deadline misses (differential gate).
	// schedulable: per-period supply is guaranteed (starvation gate).
	missFree    bool
	schedulable bool

	parts []*partLedger

	violations []Violation
	violTotal  int

	digest   uint64
	events   int64
	sliceEnd vtime.Time // frontier: end of the last slice (slices start here)
	lastPick int        // pick of the most recent decision; -2 before any

	busy, idle vtime.Duration
	decisions  int64
	misses     int64
	invOpens   int64
	finished   bool
}

var _ telemetry.Sink = (*Suite)(nil)

// NewSuite builds the oracle suite for a system about to be simulated under
// the given global policy. Only the schedulability-preserving policies are
// supported (NoRandom, TimeDiceU, TimeDiceW): TDMA is not work-conserving and
// its slot table invalidates the supply-based oracles.
func NewSuite(spec model.SystemSpec, kind policies.Kind) (*Suite, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case policies.NoRandom, policies.TimeDiceU, policies.TimeDiceW:
	default:
		return nil, fmt.Errorf("check: unsupported policy %v", kind)
	}
	s := &Suite{
		spec:        spec,
		kind:        kind,
		missFree:    GuaranteedMissFree(spec),
		schedulable: analysis.SystemSchedulableConservative(spec),
		lastPick:    -2,
		digest:      fnvOffset,
	}
	for pi, p := range spec.Partitions {
		pl := &partLedger{
			name:      p.Name,
			budget:    p.Budget,
			period:    p.Period,
			srv:       serverOf(p),
			remaining: p.Budget,
			everIdle:  true, // no backlog yet at t=0
			tasks:     make(map[string]*taskLedger, len(p.Tasks)),
		}
		for tj, t := range p.Tasks {
			if _, dup := pl.tasks[t.Name]; dup {
				return nil, fmt.Errorf("check: partition %q has duplicate task name %q", p.Name, t.Name)
			}
			b := Bound(spec, pi, tj, kind)
			pl.tasks[t.Name] = &taskLedger{
				bound:     b,
				certified: s.schedulable && b != analysis.Unschedulable && b <= effectiveDeadline(t),
			}
		}
		s.parts = append(s.parts, pl)
	}
	return s, nil
}

// MissFree reports whether the differential oracle's zero-miss gate is armed
// for this system.
func (s *Suite) MissFree() bool { return s.missFree }

// Digest returns the FNV-1a digest of every event observed so far. Two runs
// of the same scenario must produce identical digests (the determinism
// contract simfuzz cross-checks).
func (s *Suite) Digest() uint64 { return s.digest }

// Events returns the number of events observed.
func (s *Suite) Events() int64 { return s.events }

// Violations returns the retained violations (capped at maxViolations) and
// the total count observed.
func (s *Suite) Violations() ([]Violation, int) { return s.violations, s.violTotal }

func (s *Suite) fail(oracle string, at vtime.Time, format string, args ...any) {
	s.violTotal++
	if len(s.violations) < maxViolations {
		s.violations = append(s.violations, Violation{Oracle: oracle, Time: at, Msg: fmt.Sprintf(format, args...)})
	}
}

// FNV-1a 64-bit.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvFold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// hashEvent folds one event into a running FNV-1a digest. It is the single
// definition of the event-stream digest: Suite.Digest, simfuzz's combined
// campaign digest, and the post-mortem replay check (DigestEvents) all
// derive from it.
func hashEvent(h uint64, e telemetry.Event) uint64 {
	h = fnvFold(h, uint64(e.Time))
	h = fnvFold(h, uint64(e.Kind))
	h = fnvFold(h, uint64(int64(e.Partition)))
	for i := 0; i < len(e.Task); i++ {
		h = (h ^ uint64(e.Task[i])) * fnvPrime
	}
	h = fnvFold(h, uint64(e.Job))
	h = fnvFold(h, uint64(e.Dur))
	h = fnvFold(h, uint64(e.Aux))
	return h
}

// DigestEvents computes the canonical event-stream digest of a complete
// stream, identical to what a Suite attached to the live run reports. A
// post-mortem bundle whose events.jsonl covers the whole run must replay to
// the live digest — the property the flight-recorder tests pin.
func DigestEvents(events []telemetry.Event) uint64 {
	h := uint64(fnvOffset)
	for _, e := range events {
		h = hashEvent(h, e)
	}
	return h
}

// DigestSeed is the initial value of the event-stream digest (the FNV-1a
// offset basis). Folding a stream event-by-event from DigestSeed with
// FoldEvent equals DigestEvents of the whole stream — which is what lets a
// snapshot carry a prefix digest and the restored run's suffix continue it.
const DigestSeed uint64 = fnvOffset

// FoldEvent folds one event into a running digest started at DigestSeed.
func FoldEvent(h uint64, e telemetry.Event) uint64 { return hashEvent(h, e) }

// FoldEvents folds a slice of events into a running digest:
// FoldEvents(DigestSeed, all) == DigestEvents(all), and for any split point
// DigestEvents(all) == FoldEvents(DigestEvents(prefix), suffix).
func FoldEvents(h uint64, events []telemetry.Event) uint64 {
	for _, e := range events {
		h = hashEvent(h, e)
	}
	return h
}

func (s *Suite) hash(e telemetry.Event) {
	s.digest = hashEvent(s.digest, e)
}

// part resolves the event's partition index, reporting out-of-range indices.
func (s *Suite) part(e telemetry.Event) *partLedger {
	if e.Partition < 0 || e.Partition >= len(s.parts) {
		s.fail(OracleConservation, e.Time, "%v event for invalid partition index %d", e.Kind, e.Partition)
		return nil
	}
	return s.parts[e.Partition]
}

// noteBacklog records the partition's backlog state for the starvation
// oracle: observing an instant with no pending work voids the current
// period's supply guarantee (an idle partition forfeits — polling — or simply
// does not demand its budget).
func (p *partLedger) noteBacklog() {
	if p.pending == 0 {
		p.everIdle = true
	}
}

// advancePeriods closes every per-period accounting window ending at or
// before upTo (strictly before when inclusive is false — used for events
// stamped at a slice end, which precede the boundary processing of the same
// instant in the stream).
func (s *Suite) advancePeriods(p *partLedger, upTo vtime.Time, inclusive bool) {
	for {
		end := p.periodStart.Add(p.period)
		if end > upTo || (!inclusive && end == upTo) {
			return
		}
		s.closePeriod(p, end)
		p.periodStart = end
		p.consumedPeriod = 0
		p.everIdle = p.pending == 0
	}
}

func (s *Suite) closePeriod(p *partLedger, end vtime.Time) {
	// Supply cap: one replenishment period never supplies more than B. For
	// the boundary-replenished policies the aligned window [kT,(k+1)T) holds
	// at most one full budget; for the sporadic server the same window is an
	// instance of the sliding-window bound.
	if p.consumedPeriod > p.budget {
		s.fail(OracleConservation, end,
			"%s consumed %v in period ending %v, budget is %v", p.name, p.consumedPeriod, end, p.budget)
	}
	// Starvation (Theorem 1's supply guarantee): a partition that was
	// backlogged at every observed instant of the period must have drained
	// its full budget by the boundary. Gated on the conservative offline
	// test — without it the guarantee does not hold even under NoRandom —
	// and on the boundary-replenished policies (the sporadic server's budget
	// arrives in chunks, so a full B need not be available within one
	// aligned period).
	if s.schedulable && p.srv != server.Sporadic && !p.everIdle && p.consumedPeriod < p.budget {
		s.fail(OracleStarvation, end,
			"%s was backlogged all period ending %v but consumed only %v of %v",
			p.name, end, p.consumedPeriod, p.budget)
	}
}

// runnableTop returns the index of the highest-priority partition that is
// runnable per the reconstructed ledger (budget remaining and backlog), or -1.
func (s *Suite) runnableTop() int {
	for i, p := range s.parts {
		if p.remaining > 0 && p.pending > 0 {
			return i
		}
	}
	return -1
}

// Event implements telemetry.Sink: every event is hashed, checked against the
// stream-ordering contract, and dispatched to the per-kind oracles.
func (s *Suite) Event(e telemetry.Event) {
	s.events++
	s.hash(e)

	// Virtual-time contract: slices tile the timeline contiguously from 0;
	// every other event is stamped at or after the end of the last slice
	// (events inside a slice are emitted before the slice record itself).
	if e.Kind == telemetry.KindSlice {
		if e.Time != s.sliceEnd {
			s.fail(OracleVTime, e.Time, "slice starts at %v, previous slice ended at %v", e.Time, s.sliceEnd)
		}
		if e.Dur <= 0 {
			s.fail(OracleVTime, e.Time, "non-positive slice length %v", e.Dur)
		}
	} else if e.Time < s.sliceEnd {
		s.fail(OracleVTime, e.Time, "%v event at %v is before the schedule frontier %v", e.Kind, e.Time, s.sliceEnd)
	}

	switch e.Kind {
	case telemetry.KindTaskArrival:
		p := s.part(e)
		if p == nil {
			return
		}
		s.advancePeriods(p, e.Time, true)
		p.noteBacklog()
		p.pending++

	case telemetry.KindTaskComplete:
		p := s.part(e)
		if p == nil {
			return
		}
		s.advancePeriods(p, e.Time, false)
		p.pending--
		if p.pending < 0 {
			s.fail(OracleConservation, e.Time, "%s completed more jobs than arrived", p.name)
			p.pending = 0
		}
		p.noteBacklog()
		if tl := p.tasks[e.Task]; tl != nil {
			tl.completions++
			if e.Dur > tl.maxResp {
				tl.maxResp = e.Dur
			}
		}

	case telemetry.KindTaskStart, telemetry.KindTaskPreempt:
		// Lifecycle-only; no ledger effect.

	case telemetry.KindDeadlineMiss:
		s.misses++
		if p := s.part(e); p != nil {
			if tl := p.tasks[e.Task]; tl != nil && tl.certified {
				s.fail(OracleDifferential, e.Time,
					"deadline miss by %s job %d (lateness %v) despite analytic certification under %v",
					e.Task, e.Job, e.Dur, s.kind)
			}
		}

	case telemetry.KindBudgetReplenish:
		p := s.part(e)
		if p == nil {
			return
		}
		s.advancePeriods(p, e.Time, true)
		if e.Dur <= 0 {
			s.fail(OracleReplenish, e.Time, "%s replenished a non-positive amount %v", p.name, e.Dur)
		}
		p.remaining += e.Dur
		if p.remaining > p.budget {
			s.fail(OracleConservation, e.Time, "%s replenished past its budget: %v > %v", p.name, p.remaining, p.budget)
			p.remaining = p.budget
		}
		if vtime.Duration(e.Aux) != p.remaining {
			s.fail(OracleConservation, e.Time,
				"%s replenish event reports %v remaining, ledger has %v", p.name, vtime.Duration(e.Aux), p.remaining)
		}
		switch p.srv {
		case server.Polling, server.Deferrable:
			if int64(e.Time)%int64(p.period) != 0 {
				s.fail(OracleReplenish, e.Time, "%s (%v) replenished off the period boundary grid (T=%v)", p.name, p.srv, p.period)
			}
			if p.remaining != p.budget {
				s.fail(OracleReplenish, e.Time, "%s (%v) boundary replenish left %v, must restore full %v", p.name, p.srv, p.remaining, p.budget)
			}
		case server.Sporadic:
			p.cumReplenished += e.Dur
			if p.cumReplenished > p.cumConsumed {
				s.fail(OracleReplenish, e.Time,
					"%s (sporadic) replenished %v total but consumed only %v — budget created from nothing",
					p.name, p.cumReplenished, p.cumConsumed)
			}
		}
		p.noteBacklog()

	case telemetry.KindBudgetDeplete:
		p := s.part(e)
		if p == nil {
			return
		}
		if e.Aux == 1 { // idle discard
			s.advancePeriods(p, e.Time, true)
			if p.srv != server.Polling {
				s.fail(OracleReplenish, e.Time, "%s (%v) discarded budget; only the polling server discards", p.name, p.srv)
			}
			if e.Dur != p.remaining {
				s.fail(OracleConservation, e.Time, "%s discarded %v, ledger had %v", p.name, e.Dur, p.remaining)
			}
			if p.pending != 0 {
				s.fail(OracleReplenish, e.Time, "%s discarded budget with %d jobs pending", p.name, p.pending)
			}
			p.remaining = 0
			p.noteBacklog()
		} else { // consumed by execution; the matching slice record follows
			s.advancePeriods(p, e.Time, false)
			if e.Dur != 0 {
				s.fail(OracleConservation, e.Time, "%s execution-deplete event carries discard amount %v", p.name, e.Dur)
			}
			p.depleteDue = true
		}

	case telemetry.KindDecision:
		s.decisions++
		for _, p := range s.parts {
			s.advancePeriods(p, e.Time, true)
		}
		top := s.runnableTop()
		s.lastPick = e.Partition
		if e.Partition >= 0 {
			p := s.part(e)
			if p != nil && !(p.remaining > 0 && p.pending > 0) {
				s.fail(OracleWork, e.Time,
					"decision picked %s which is not runnable (remaining %v, pending %d)", p.name, p.remaining, p.pending)
			}
		}
		if s.kind == policies.NoRandom && e.Partition != top {
			s.fail(OraclePriority, e.Time,
				"NoRandom picked partition %d; strict fixed priority demands %d", e.Partition, top)
		}

	case telemetry.KindInversionOpen:
		s.invOpens++
		if s.kind == policies.NoRandom {
			s.fail(OraclePriority, e.Time, "priority-inversion window opened under NoRandom")
		}

	case telemetry.KindInversionClose:
		// Window length is cross-checked in aggregate via Counters.

	case telemetry.KindSlice:
		start := e.Time
		s.sliceEnd = e.Time.Add(e.Dur)
		if e.Partition < 0 {
			s.idle += e.Dur
			if s.lastPick != -1 {
				s.fail(OracleWork, start, "idle slice but the decision picked partition %d", s.lastPick)
			}
			return
		}
		p := s.part(e)
		if p == nil {
			return
		}
		if e.Partition != s.lastPick {
			s.fail(OracleWork, start, "slice ran %s but the decision picked %d", p.name, s.lastPick)
		}
		s.busy += e.Dur
		s.advancePeriods(p, start, true)
		if e.Dur > p.remaining {
			s.fail(OracleConservation, start,
				"%s executed %v with only %v budget remaining (overdraw)", p.name, e.Dur, p.remaining)
			p.remaining = 0
		} else {
			p.remaining -= e.Dur
		}
		p.consumedPeriod += e.Dur
		p.cumConsumed += e.Dur
		if p.srv == server.Sporadic {
			s.checkSlidingWindow(p, start, e.Dur)
		}
		if p.depleteDue {
			if p.remaining != 0 {
				s.fail(OracleConservation, s.sliceEnd,
					"%s reported budget depletion but the ledger still holds %v", p.name, p.remaining)
			}
			p.depleteDue = false
		}
		p.noteBacklog()

	default:
		s.fail(OracleVTime, e.Time, "unknown event kind %d", e.Kind)
	}
}

// checkSlidingWindow enforces the sporadic server's defining property: the
// consumption inside any window of length T never exceeds B. It is evaluated
// at every chunk end (the binding instants), counting partial overlap of the
// oldest chunk.
func (s *Suite) checkSlidingWindow(p *partLedger, start vtime.Time, dur vtime.Duration) {
	p.window = append(p.window, sliceChunk{start: start, dur: dur})
	end := start.Add(dur)
	winStart := end.Add(-p.period)
	// Drop chunks that ended at or before the window start.
	keep := 0
	for _, c := range p.window {
		if c.start.Add(c.dur) > winStart {
			p.window[keep] = c
			keep++
		}
	}
	p.window = p.window[:keep]
	var sum vtime.Duration
	for _, c := range p.window {
		cs, ce := c.start, c.start.Add(c.dur)
		if cs < winStart {
			cs = winStart
		}
		sum += ce.Sub(cs)
	}
	if sum > p.budget {
		s.fail(OracleReplenish, end,
			"%s (sporadic) consumed %v inside the window (%v, %v], budget is %v",
			p.name, sum, winStart, end, p.budget)
	}
}

// Finish closes the suite at the end of the run: the schedule must tile the
// whole horizon, and every task's observed worst response is checked against
// its analytic bound. It returns the retained violations. Finish is
// idempotent; events arriving after it are not expected.
func (s *Suite) Finish(end vtime.Time) []Violation {
	if s.finished {
		return s.violations
	}
	s.finished = true
	if s.events > 0 && s.sliceEnd != end {
		s.fail(OracleVTime, end, "schedule ends at %v, run horizon is %v", s.sliceEnd, end)
	}
	for pi, ps := range s.spec.Partitions {
		p := s.parts[pi]
		for _, ts := range ps.Tasks {
			tl := p.tasks[ts.Name]
			if tl == nil || tl.bound == analysis.Unschedulable || tl.completions == 0 {
				continue
			}
			if tl.maxResp > tl.bound {
				s.fail(OracleDifferential, end,
					"%s/%s observed WCRT %v exceeds the %v analytic bound %v",
					p.name, ts.Name, tl.maxResp, s.kind, tl.bound)
			}
		}
	}
	return s.violations
}

// CheckCounters cross-checks the engine's aggregate counters against the
// event stream: every quantity the engine tallies independently must agree
// with what the events imply. horizon is the simulated length of the run.
func (s *Suite) CheckCounters(c *engine.Counters, horizon vtime.Duration) {
	at := vtime.Time(0).Add(horizon)
	if c.DeadlineMisses != s.misses {
		s.fail(OracleCounters, at, "engine counted %d deadline misses, stream has %d", c.DeadlineMisses, s.misses)
	}
	if c.InversionWindows != s.invOpens {
		s.fail(OracleCounters, at, "engine counted %d inversion windows, stream has %d", c.InversionWindows, s.invOpens)
	}
	if c.Decisions != s.decisions {
		s.fail(OracleCounters, at, "engine counted %d decisions, stream has %d", c.Decisions, s.decisions)
	}
	if c.BusyTime != s.busy {
		s.fail(OracleCounters, at, "engine busy time %v, stream slices sum to %v", c.BusyTime, s.busy)
	}
	if c.IdleTime != s.idle {
		s.fail(OracleCounters, at, "engine idle time %v, stream idle slices sum to %v", c.IdleTime, s.idle)
	}
	if s.busy+s.idle != horizon {
		s.fail(OracleCounters, at, "slices cover %v of the %v horizon", s.busy+s.idle, horizon)
	}
	// The defensive minimum-advance fallback fires only when a policy hands
	// the engine a horizon at or before now. Every built-in bound (budget
	// exhaustion, local events, quantum, replenishments) is strictly in the
	// future, so a nonzero count means a policy bug that silently degrades
	// the simulation to tick-stepping — flag it, don't paper over it.
	if c.MinAdvances != 0 {
		s.fail(OracleCounters, at, "engine took %d minimum-advance fallback steps (policy returned a non-advancing horizon)", c.MinAdvances)
	}
}
