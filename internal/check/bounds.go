// Package check implements live invariant oracles over the telemetry event
// stream of a simulated system. A Suite is attached as a telemetry.Sink; it
// rebuilds an independent ledger of every partition's budget, backlog, and
// per-period supply from the events alone and cross-checks each event against
// the server semantics, the engine's ordering contract, and — for systems the
// offline analyses certify — the schedulability-preservation claims of the
// paper (zero deadline misses, observed WCRT within the analytic bound).
//
// The oracles never read simulator internals: everything is reconstructed
// from the event stream, so a bookkeeping bug in the engine or servers shows
// up as a divergence between the events and the ledger rather than being
// silently mirrored.
package check

import (
	"timedice/internal/analysis"
	"timedice/internal/model"
	"timedice/internal/policies"
	"timedice/internal/server"
	"timedice/internal/vtime"
)

// serverOf resolves a partition's effective server policy (zero ⇒ polling,
// matching model.Build).
func serverOf(p model.PartitionSpec) server.Policy {
	if p.Server == 0 {
		return server.Polling
	}
	return p.Server
}

// alignedTask reports whether the task's arrivals always coincide with its
// partition's replenishment boundaries: zero offset and a period that is an
// integer multiple of the partition period. Aligned tasks arrive with a full
// budget, which is the critical-instant shape the WCRT analyses assume.
func alignedTask(p model.PartitionSpec, t model.TaskSpec) bool {
	return t.Offset == 0 && t.Period%p.Period == 0
}

// effectiveDeadline returns the task's relative deadline (Period when
// implicit).
func effectiveDeadline(t model.TaskSpec) vtime.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

// UniversalBound returns an observed-response-time bound for task tj of
// partition pi that is sound under every schedulability-preserving global
// policy (NoRandom, TimeDiceU, TimeDiceW), provided the system passes
// analysis.SystemSchedulableConservative.
//
// The core is the paper's Eq. (4)–(5) bound (analysis.WCRTTimeDice): the
// partition's budget B may be deferred to the very end of each period, so the
// load is served at B per T with a leading (T − B) delay. That critical
// instant assumes the task arrives at a replenishment boundary with a full
// budget. A task arriving mid-period may additionally find the budget already
// consumed (deferrable) or discarded (polling), which delays the first supply
// by at most one extra period; non-aligned tasks therefore get an extra
// period of initial latency, folded through analysis.WCRTTimeDiceDelayed so
// the demand accruing during the extra latency is compounded inside the fixed
// point rather than bolted on after.
//
// Sporadic partitions carry no task-level claim at all (Unschedulable): their
// replenishment chunks trail consumption instead of landing on period
// boundaries, and under randomized inversion the boundary-anchored
// schedulability test lets the chunk schedule recede without bound relative
// to the periodic supply model — Theorem 1's supply argument simply does not
// apply. Sporadic partitions are still fully covered by the server-level
// oracles (cumulative conservation, sliding-window supply, replenishment
// rules); only per-task response-time claims are out of scope.
func UniversalBound(spec model.SystemSpec, pi, tj int) vtime.Duration {
	p := spec.Partitions[pi]
	if serverOf(p) == server.Sporadic {
		return analysis.Unschedulable
	}
	var extra vtime.Duration
	if !alignedTask(p, p.Tasks[tj]) {
		extra = p.Period
	}
	return analysis.WCRTTimeDiceDelayed(spec, pi, tj, extra)
}

// Bound returns the tightest sound observed-response-time bound for task tj
// of partition pi under the given global policy, or analysis.Unschedulable
// when none applies.
//
// Every policy is covered by UniversalBound. Under NoRandom the partition's
// supply is never deferred voluntarily, so the hierarchical Davis & Burns
// bound applies too and the minimum of the two is taken — with the deferrable
// variant (back-to-back interference) whenever any higher-priority partition
// retains budget. The tighter bound is restricted to aligned,
// locally-highest-priority tasks of polling/deferrable partitions: the
// sporadic server's chunked supply does not match the analysis' replenishment
// model; for mid-period arrivals the analysis' critical instant does not
// apply; and with bursty server supply the synchronous-release recurrence is
// unsound in the presence of local higher-priority siblings — a sibling job
// released before the task can leave a carry-in tail across the boundary
// while a further release still lands inside the window, exceeding the
// ⌈w/T⌉ synchronous count (the classic critical-instant argument needs a
// constant-rate processor and does not survive the supply gaps).
func Bound(spec model.SystemSpec, pi, tj int, kind policies.Kind) vtime.Duration {
	u := UniversalBound(spec, pi, tj)
	if kind != policies.NoRandom {
		return u
	}
	p := spec.Partitions[pi]
	if serverOf(p) == server.Sporadic || tj != 0 || !alignedTask(p, p.Tasks[tj]) {
		return u
	}
	anyDeferAbove := false
	for h := 0; h < pi; h++ {
		if serverOf(spec.Partitions[h]) == server.Deferrable {
			anyDeferAbove = true
			break
		}
	}
	var nr vtime.Duration
	if anyDeferAbove || serverOf(p) == server.Deferrable {
		nr = analysis.WCRTNoRandomDeferrable(spec, pi, tj)
	} else {
		nr = analysis.WCRTNoRandom(spec, pi, tj)
	}
	if nr < u {
		return nr
	}
	return u
}

// GuaranteedMissFree reports whether the offline analyses certify every
// *claimable* task of the system deadline-miss-free under every
// schedulability-preserving policy: the partitions pass the conservative
// supply test and every polling/deferrable-partition task's universal WCRT
// bound meets its deadline. This is the headline differential oracle's
// precondition — for such a system any observed deadline miss of a claimable
// task, under any TimeDice policy, falsifies schedulability preservation.
// Tasks in sporadic partitions are outside the claim (see UniversalBound) and
// are ignored here.
func GuaranteedMissFree(spec model.SystemSpec) bool {
	if !analysis.SystemSchedulableConservative(spec) {
		return false
	}
	for pi, p := range spec.Partitions {
		if serverOf(p) == server.Sporadic {
			continue
		}
		for tj, t := range p.Tasks {
			if UniversalBound(spec, pi, tj) > effectiveDeadline(t) {
				return false
			}
		}
	}
	return true
}
