package detect

import (
	"testing"

	"timedice/internal/rng"
)

func TestBimodalityScoreShapes(t *testing.T) {
	r := rng.New(1)

	// Alternating full/minimal (the sender's signature): near 1.
	var sender []float64
	for i := 0; i < 200; i++ {
		if r.Bit() == 1 {
			sender = append(sender, 4.8+0.05*r.NormFloat64())
		} else {
			sender = append(sender, 0.01)
		}
	}
	if s := BimodalityScore(sender); s < 0.8 {
		t.Errorf("sender-like series scored %.3f, want high", s)
	}

	// Unimodal jitter (a noise partition): low.
	var noise []float64
	for i := 0; i < 200; i++ {
		noise = append(noise, 4.0+0.4*r.Float64())
	}
	if s := BimodalityScore(noise); s > 0.5 {
		t.Errorf("unimodal series scored %.3f, want low", s)
	}

	// Constant consumption: exactly 0.
	constant := make([]float64, 100)
	for i := range constant {
		constant[i] = 3.2
	}
	if s := BimodalityScore(constant); s != 0 {
		t.Errorf("constant series scored %.3f", s)
	}

	// A single outlier must not look like modulation (balance damping).
	outlier := make([]float64, 100)
	for i := range outlier {
		outlier[i] = 3.2
	}
	outlier[50] = 0
	if s := BimodalityScore(outlier); s > 0.2 {
		t.Errorf("lone outlier scored %.3f, want damped", s)
	}

	// Degenerate inputs.
	if BimodalityScore(nil) != 0 || BimodalityScore([]float64{1, 2}) != 0 {
		t.Error("degenerate inputs should score 0")
	}
}

func TestBimodalityScoreBounded(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 4 + r.Intn(100)
		series := make([]float64, n)
		for i := range series {
			series[i] = 10 * r.Float64()
		}
		s := BimodalityScore(series)
		if s < 0 || s > 1 {
			t.Fatalf("score %v out of [0,1]", s)
		}
	}
}
