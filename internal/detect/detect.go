// Package detect is the defender-side complement to the covert channel: a
// monitor that watches each partition's per-period budget consumption — a
// quantity the system integrator can observe without trusting any partition —
// and flags senders by the bimodality of their consumption pattern. The
// §III sender must alternate between consuming its budget fully (bit 1) and
// minimally (bit 0); that signature survives schedule randomization, because
// TimeDice changes WHEN a partition runs, never HOW MUCH it chooses to
// consume. Mitigation (TimeDice) and detection (this package) are therefore
// complementary defenses.
package detect

import (
	"math"
	"sort"

	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/vtime"
)

// ConsumptionObserver accumulates, per partition, the CPU time consumed in
// each of its replenishment periods.
type ConsumptionObserver struct {
	spec   model.SystemSpec
	series []map[int64]vtime.Duration
}

// NewConsumptionObserver builds an observer for spec.
func NewConsumptionObserver(spec model.SystemSpec) *ConsumptionObserver {
	o := &ConsumptionObserver{spec: spec}
	o.series = make([]map[int64]vtime.Duration, len(spec.Partitions))
	for i := range o.series {
		o.series[i] = make(map[int64]vtime.Duration)
	}
	return o
}

// Hook returns the engine trace hook feeding the observer.
func (o *ConsumptionObserver) Hook() func(engine.Segment) {
	return func(seg engine.Segment) {
		if seg.Partition < 0 {
			return
		}
		T := o.spec.Partitions[seg.Partition].Period
		for t := seg.Start; t < seg.End; {
			k := int64(t) / int64(T)
			winEnd := vtime.Time((k + 1) * int64(T))
			chunk := seg.End.Min(winEnd).Sub(t)
			o.series[seg.Partition][k] += chunk
			t = t.Add(chunk)
		}
	}
}

// Series returns partition i's per-period consumption in milliseconds,
// ordered by period index. Periods with zero consumption are included up to
// the last observed period (a modulating sender's "bit 0" periods ARE the
// signal).
func (o *ConsumptionObserver) Series(i int) []float64 {
	m := o.series[i]
	var last int64 = -1
	for k := range m {
		if k > last {
			last = k
		}
	}
	out := make([]float64, 0, last+1)
	for k := int64(0); k <= last; k++ {
		out = append(out, m[k].Milliseconds())
	}
	return out
}

// BimodalityScore quantifies how two-valued a series is, in [0, 1]: a 1-D
// 2-means split is scored by the between-cluster separation relative to the
// total spread, damped by cluster imbalance. Constant or unimodal jittered
// series score near 0; an alternating full/minimal sender scores near 1.
func BimodalityScore(series []float64) float64 {
	n := len(series)
	if n < 4 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, series)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[n-1]
	if hi-lo < 1e-9 {
		return 0
	}
	// Exact optimal 1-D 2-means over sorted data: try every split point.
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
		prefixSq[i+1] = prefixSq[i] + v*v
	}
	sse := func(a, b int) float64 { // sum of squared error of sorted[a:b]
		cnt := float64(b - a)
		if cnt == 0 {
			return 0
		}
		sum := prefix[b] - prefix[a]
		sumSq := prefixSq[b] - prefixSq[a]
		return sumSq - sum*sum/cnt
	}
	totalSSE := sse(0, n)
	if totalSSE < 1e-12 {
		return 0
	}
	bestSplit, bestSSE := 1, math.Inf(1)
	for s := 1; s < n; s++ {
		if e := sse(0, s) + sse(s, n); e < bestSSE {
			bestSSE, bestSplit = e, s
		}
	}
	// Explained variance by the 2-cluster model.
	explained := 1 - bestSSE/totalSSE
	// Balance damping: a lone outlier should not look like modulation.
	p := float64(bestSplit) / float64(n)
	balance := 4 * p * (1 - p) // 1 when 50/50, →0 when degenerate
	// Valley test: true modulation leaves the region between the two
	// cluster means almost empty, while uniform or unimodal data fills it.
	// midFrac is the fraction of samples in the middle third between the
	// cluster means; a uniform distribution puts ≈1/3 of its mass there.
	m1 := (prefix[bestSplit] - prefix[0]) / float64(bestSplit)
	m2 := (prefix[n] - prefix[bestSplit]) / float64(n-bestSplit)
	gap := m2 - m1
	if gap <= 0 {
		return 0
	}
	lo3, hi3 := m1+gap/3, m2-gap/3
	mid := 0
	for _, v := range sorted {
		if v > lo3 && v < hi3 {
			mid++
		}
	}
	valley := 1 - 3*float64(mid)/float64(n)
	if valley < 0 {
		valley = 0
	}
	return explained * balance * valley
}

// Ranking is the monitor's verdict: partitions ordered by modulation score.
type Ranking struct {
	Partition string
	Score     float64
}

// Rank scores every partition's consumption series and sorts descending.
func (o *ConsumptionObserver) Rank() []Ranking {
	out := make([]Ranking, len(o.spec.Partitions))
	for i, p := range o.spec.Partitions {
		out[i] = Ranking{Partition: p.Name, Score: BimodalityScore(o.Series(i))}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}
