package entropy

import (
	"testing"

	"timedice/internal/core"
	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/rng"
	"timedice/internal/sched"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func TestHyperperiod(t *testing.T) {
	if h := Hyperperiod(workload.TableIBase(), 0); h != vtime.MS(600) {
		t.Errorf("Table I hyperperiod %v, want 600ms (lcm of 20..60)", h)
	}
	if h := Hyperperiod(workload.TableIBase(), vtime.MS(100)); h != vtime.MS(100) {
		t.Errorf("capped hyperperiod %v", h)
	}
	if h := Hyperperiod(workload.ThreePartition(), 0); h != vtime.MS(60) {
		t.Errorf("three-partition hyperperiod %v, want 60ms", h)
	}
}

// greedy builds the spec with full-budget tasks so every partition uses its
// budget every period.
func greedy(spec model.SystemSpec) model.SystemSpec {
	out := spec
	out.Partitions = append([]model.PartitionSpec(nil), spec.Partitions...)
	for i := range out.Partitions {
		p := &out.Partitions[i]
		p.Tasks = []model.TaskSpec{{Name: "g", Period: p.Period, WCET: p.Budget}}
	}
	return out
}

func runWith(t *testing.T, spec model.SystemSpec, pol engine.GlobalPolicy, seed uint64, hooks ...func(engine.Segment)) {
	t.Helper()
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	sys.TraceFn = func(seg engine.Segment) {
		for _, h := range hooks {
			h(seg)
		}
	}
	sys.Run(vtime.Time(10 * vtime.Second))
}

func TestSlotEntropyOrdering(t *testing.T) {
	spec := greedy(workload.TableILight())
	hyper := Hyperperiod(spec, 0)

	measure := func(pol engine.GlobalPolicy) float64 {
		obs := NewSlotObserver(hyper, vtime.Millisecond, len(spec.Partitions))
		runWith(t, spec, pol, 7, obs.Hook())
		return obs.MeanEntropy()
	}
	nr := measure(sched.FixedPriority{})
	tdu := measure(core.NewPolicy(core.WithSelection(core.SelectUniform)))
	tdw := measure(core.NewPolicy())

	// A strictly periodic greedy system under fixed priority settles into a
	// deterministic steady state. Its measured slot entropy is small but not
	// exactly zero: NoRandom's event-driven segments are not quantum-aligned,
	// so boundary slots carry deterministic two-partition occupancy mixes.
	if nr > 0.15 {
		t.Errorf("NoRandom slot entropy %.4f, want near 0 (deterministic schedule)", nr)
	}
	if tdu < nr+0.3 || tdw < nr+0.3 {
		t.Errorf("TimeDice entropies (U=%.3f, W=%.3f) should far exceed NoRandom (%.3f)", tdu, tdw, nr)
	}
	max := NewSlotObserver(hyper, vtime.Millisecond, len(spec.Partitions)).MaxEntropy()
	if tdu > max || tdw > max {
		t.Errorf("entropies exceed the log2(n+1) bound %v: U=%v W=%v", max, tdu, tdw)
	}
}

// TestTheorem1ExhaustionSpread validates the mechanism behind Theorem 1:
// under weighted selection the budget-exhaustion offsets of a partition
// spread across its period more than under the non-randomized scheduler,
// and weighted selection levels consumption rather than letting partitions
// finish "too early" (the uniform-selection pathology of Fig. 10).
func TestTheorem1ExhaustionSpread(t *testing.T) {
	spec := greedy(workload.TableILight())

	spread := func(pol engine.GlobalPolicy) (float64, float64) {
		obs := NewExhaustionObserver(spec)
		runWith(t, spec, pol, 11, obs.Hook())
		// Partition P4 (index 3) has period 50ms, budget 4ms.
		s := obs.Spread(3)
		return s.Std(), s.Mean()
	}
	nrStd, _ := spread(sched.FixedPriority{})
	tduStd, tduMean := spread(core.NewPolicy(core.WithSelection(core.SelectUniform)))
	tdwStd, tdwMean := spread(core.NewPolicy())

	if tdwStd <= nrStd {
		t.Errorf("TimeDiceW exhaustion spread %.3f should exceed NoRandom %.3f", tdwStd, nrStd)
	}
	if tduStd <= nrStd {
		t.Errorf("TimeDiceU exhaustion spread %.3f should exceed NoRandom %.3f", tduStd, nrStd)
	}
	// Uniform selection lets the partition win ~1/|candidates| of early
	// quanta: it exhausts budgets EARLIER on average than weighted selection,
	// whose lottery weights (u ≈ 0.08 here) defer consumption across the
	// whole period — Theorem 1's "premature budget exhaustion" contrast.
	if tdwMean <= tduMean {
		t.Errorf("TimeDiceW mean exhaustion offset %.2fms should exceed TimeDiceU's %.2fms (consumption spread across the period)",
			tdwMean, tduMean)
	}
}
