// Package entropy quantifies the "temporal locality" the paper's
// randomization attacks: how predictable a partition schedule is. Two
// complementary metrics are provided.
//
// Slot entropy: divide the timeline into quanta and, for each offset within
// a partition-set hyperperiod, build the empirical distribution of which
// partition occupied the slot across hyperperiod repetitions; the mean
// Shannon entropy over offsets is 0 for a fully deterministic schedule
// (NoRandom's steady state) and grows with randomization — the quantity
// Fig. 6 shows visually.
//
// Exhaustion spread: for each partition, the standard deviation of the
// within-period offset at which it exhausts its budget. Theorem 1 argues
// weighted selection spreads budget consumption across the period, so
// TimeDiceW should show a larger spread than uniform selection in the
// lightly loaded regime.
package entropy

import (
	"math"

	"timedice/internal/engine"
	"timedice/internal/infotheory"
	"timedice/internal/model"
	"timedice/internal/stats"
	"timedice/internal/vtime"
)

// SlotObserver accumulates, per hyperperiod offset, the counts of which
// partition (or idle) occupied each quantum.
type SlotObserver struct {
	hyper   vtime.Duration
	quantum vtime.Duration
	slots   int
	// counts[slot][partition+1] — index 0 is idle.
	counts [][]int64
	n      int
}

// NewSlotObserver builds an observer for a system with the given hyperperiod
// (use Hyperperiod(spec)) and quantum resolution.
func NewSlotObserver(hyper, quantum vtime.Duration, partitions int) *SlotObserver {
	slots := int(vtime.CeilDiv(hyper, quantum))
	counts := make([][]int64, slots)
	for i := range counts {
		counts[i] = make([]int64, partitions+1)
	}
	return &SlotObserver{hyper: hyper, quantum: quantum, slots: slots, counts: counts, n: partitions}
}

// Hook returns the engine trace hook that feeds the observer. A slot is
// attributed to the partition that occupied the majority of it; attribution
// is done incrementally per segment piece, which is exact when segments
// align to quantum boundaries (they do under quantum-driven policies).
func (o *SlotObserver) Hook() func(engine.Segment) {
	return func(seg engine.Segment) {
		for t := seg.Start; t < seg.End; {
			slotIdx := int((vtime.Duration(t) % o.hyper) / o.quantum)
			slotEnd := t.Add(o.quantum - vtime.Duration(t)%vtime.Duration(o.quantum))
			chunk := seg.End.Min(slotEnd).Sub(t)
			// Weight by occupancy: add the chunk's microseconds.
			o.counts[slotIdx][seg.Partition+1] += int64(chunk)
			t = t.Add(chunk)
		}
	}
}

// MeanEntropy returns the average Shannon entropy (bits) of the per-slot
// occupancy distributions. 0 = fully deterministic schedule.
func (o *SlotObserver) MeanEntropy() float64 {
	var sum float64
	slots := 0
	for _, c := range o.counts {
		var total int64
		for _, v := range c {
			total += v
		}
		if total == 0 {
			continue
		}
		w := make([]float64, len(c))
		for i, v := range c {
			w[i] = float64(v)
		}
		sum += infotheory.Entropy(w)
		slots++
	}
	if slots == 0 {
		return 0
	}
	return sum / float64(slots)
}

// MaxEntropy returns the upper bound log2(partitions+1) for normalization.
func (o *SlotObserver) MaxEntropy() float64 {
	return math.Log2(float64(o.n + 1))
}

// Hyperperiod returns the LCM of the partitions' replenishment periods,
// capped at cap (0 = no cap) to keep observer memory bounded for
// pathological period sets.
func Hyperperiod(spec model.SystemSpec, cap vtime.Duration) vtime.Duration {
	h := vtime.Duration(1)
	for _, p := range spec.Partitions {
		h = lcm(h, p.Period)
		if cap > 0 && h > cap {
			return cap
		}
	}
	return h
}

func gcd(a, b vtime.Duration) vtime.Duration {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b vtime.Duration) vtime.Duration {
	return a / gcd(a, b) * b
}

// ExhaustionObserver records, per partition, the within-period offset at
// which the partition's budget ran out (its last execution moment in each
// period where it consumed its full budget).
type ExhaustionObserver struct {
	spec     model.SystemSpec
	lastEnd  []map[int64]vtime.Duration // partition → period index → last execution end offset
	consumed []map[int64]vtime.Duration
}

// NewExhaustionObserver builds an observer for spec.
func NewExhaustionObserver(spec model.SystemSpec) *ExhaustionObserver {
	o := &ExhaustionObserver{spec: spec}
	o.lastEnd = make([]map[int64]vtime.Duration, len(spec.Partitions))
	o.consumed = make([]map[int64]vtime.Duration, len(spec.Partitions))
	for i := range o.lastEnd {
		o.lastEnd[i] = make(map[int64]vtime.Duration)
		o.consumed[i] = make(map[int64]vtime.Duration)
	}
	return o
}

// Hook returns the engine trace hook.
func (o *ExhaustionObserver) Hook() func(engine.Segment) {
	return func(seg engine.Segment) {
		if seg.Partition < 0 {
			return
		}
		T := o.spec.Partitions[seg.Partition].Period
		for t := seg.Start; t < seg.End; {
			k := int64(t) / int64(T)
			winEnd := vtime.Time((k + 1) * int64(T))
			chunk := seg.End.Min(winEnd).Sub(t)
			o.consumed[seg.Partition][k] += chunk
			endOffset := vtime.Duration(seg.End.Min(winEnd)) - vtime.Duration(k)*T
			if endOffset > o.lastEnd[seg.Partition][k] {
				o.lastEnd[seg.Partition][k] = endOffset
			}
			t = t.Add(chunk)
		}
	}
}

// Spread returns, for partition i, summary statistics (in milliseconds) of
// the budget-exhaustion offsets over the periods in which the partition
// consumed its full budget. A larger Std means consumption finishing at less
// predictable points — lower temporal locality.
func (o *ExhaustionObserver) Spread(i int) stats.Summary {
	var s stats.Summary
	B := o.spec.Partitions[i].Budget
	for k, used := range o.consumed[i] {
		if used >= B {
			s.Add(o.lastEnd[i][k].Milliseconds())
		}
	}
	return s
}
