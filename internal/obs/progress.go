package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"timedice/internal/stats"
)

// Progress is the live state of one campaign, updated by trial workers with
// atomic counters and read concurrently by the /metrics and /statusz
// handlers and the -progress reporter. The zero value is unusable; build
// one with NewProgress.
//
// Progress is wall-clock-side bookkeeping only: it never feeds back into
// the simulation, so campaign reports stay byte-identical whether or not
// anything is watching.
type Progress struct {
	tool  string
	total int64
	start time.Time

	done       atomic.Int64
	inflight   atomic.Int64
	violations atomic.Int64
	events     atomic.Int64
	cacheHits  atomic.Int64
	cacheMiss  atomic.Int64
	arenaBytes atomic.Int64
	engSteps   atomic.Int64
	fixIters   atomic.Int64
	interfTerm atomic.Int64

	shardWorkers atomic.Int64
	shardMergeNs atomic.Int64

	mu     sync.Mutex
	trialS *stats.Sketch // per-trial wall-clock seconds
}

// NewProgress starts the campaign clock for tool with the given planned
// trial count (0 when unknown — rate still works, ETA does not).
func NewProgress(tool string, total int64) *Progress {
	p := &Progress{tool: tool, total: total, start: time.Now(), trialS: stats.NewSketch()}
	p.shardWorkers.Store(1) // sequential until a campaign says otherwise
	return p
}

// TrialStart marks one trial as claimed by a worker.
func (p *Progress) TrialStart() { p.inflight.Add(1) }

// TrialDone marks one trial finished, folding in its event count, oracle
// violations, and wall-clock duration.
func (p *Progress) TrialDone(events int64, violations int, elapsed time.Duration) {
	p.inflight.Add(-1)
	p.done.Add(1)
	p.events.Add(events)
	p.violations.Add(int64(violations))
	p.mu.Lock()
	p.trialS.Add(elapsed.Seconds())
	p.mu.Unlock()
}

// AddCache folds one trial's schedulability-verdict cache tallies
// (core.Cache hits and misses) into the campaign totals.
func (p *Progress) AddCache(hits, misses int64) {
	p.cacheHits.Add(hits)
	p.cacheMiss.Add(misses)
}

// AddEngine folds one trial's engine-side hot-path tallies into the campaign
// totals: steps (= scheduling decisions), the deterministic cache-traffic
// proxy engine.Counters.ArenaBytesTouched, and the decision-cost proxies
// engine.Counters.FixpointIters/InterferenceTerms. The arena-bytes-per-step
// ratio is the gauge /metrics exposes — the live view of the
// BenchmarkEngineStepScale B/qpart-step story — and the interference-term
// total plays the same role for the decision kernel: the scan-vs-indexed gap
// in timedice_engine_interference_terms_total is the kernel's algorithmic
// savings, live.
func (p *Progress) AddEngine(steps, arenaBytes, fixpointIters, interferenceTerms int64) {
	p.engSteps.Add(steps)
	p.arenaBytes.Add(arenaBytes)
	p.fixIters.Add(fixpointIters)
	p.interfTerm.Add(interferenceTerms)
}

// SetShardWorkers records the sharded-stepping worker count the campaign's
// systems run with (1 = sequential, the default), for the run ledger and
// the timedice_shard_workers gauge.
func (p *Progress) SetShardWorkers(n int) { p.shardWorkers.Store(int64(n)) }

// AddShardMerge folds one trial's sharded-merge wall-clock time
// (engine.Counters.ShardMergeTime, maintained under MeasureLatency) into the
// campaign total behind timedice_shard_merge_ns_total.
func (p *Progress) AddShardMerge(d time.Duration) { p.shardMergeNs.Add(d.Nanoseconds()) }

// Status is one consistent-enough snapshot of a running campaign: the
// struct /statusz serves as JSON and the -progress reporter renders as a
// stderr line. Counters are read individually (not under one lock), so a
// snapshot taken mid-update may be off by a trial — fine for a live view.
type Status struct {
	Tool          string  `json:"tool"`
	Total         int64   `json:"total"`
	Done          int64   `json:"done"`
	InFlight      int64   `json:"inFlight"`
	Violations    int64   `json:"violations"`
	Events        int64   `json:"events"`
	CacheHits     int64   `json:"cacheHits"`
	CacheMisses   int64   `json:"cacheMisses"`
	CacheHitRatio float64 `json:"cacheHitRatio"`
	EngineSteps   int64   `json:"engineSteps"`
	ArenaBytes    int64   `json:"arenaBytes"`
	// ArenaBytesPerStep is the campaign-wide mean of the engine's
	// deterministic cache-traffic proxy (hot-state bytes touched per step).
	ArenaBytesPerStep float64 `json:"arenaBytesPerStep"`
	// FixpointIters and InterferenceTerms are the campaign totals of the
	// Algorithm-3 decision-cost proxies (engine.Counters); their per-step
	// means quantify how much busy-interval work each decision costs.
	FixpointIters     int64 `json:"fixpointIters"`
	InterferenceTerms int64 `json:"interferenceTerms"`
	// ShardWorkers is the sharded-stepping worker count (1 = sequential);
	// ShardMergeNs totals the sharded due-merge wall-clock time.
	ShardWorkers   int64   `json:"shardWorkers"`
	ShardMergeNs   int64   `json:"shardMergeNs"`
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// RatePerSecond is completed trials per elapsed second.
	RatePerSecond float64 `json:"ratePerSecond"`
	// ETASeconds extrapolates the remaining trials at the current rate; -1
	// when unknown (no total, or nothing done yet).
	ETASeconds float64 `json:"etaSeconds"`
	// TrialSeconds are per-trial wall-clock quantiles (p50/p90/p99).
	TrialSecondsP50 float64 `json:"trialSecondsP50"`
	TrialSecondsP90 float64 `json:"trialSecondsP90"`
	TrialSecondsP99 float64 `json:"trialSecondsP99"`
}

// Snapshot assembles the current Status.
func (p *Progress) Snapshot() Status {
	s := Status{
		Tool:              p.tool,
		Total:             p.total,
		Done:              p.done.Load(),
		InFlight:          p.inflight.Load(),
		Violations:        p.violations.Load(),
		Events:            p.events.Load(),
		CacheHits:         p.cacheHits.Load(),
		CacheMisses:       p.cacheMiss.Load(),
		EngineSteps:       p.engSteps.Load(),
		ArenaBytes:        p.arenaBytes.Load(),
		FixpointIters:     p.fixIters.Load(),
		InterferenceTerms: p.interfTerm.Load(),
		ShardWorkers:      p.shardWorkers.Load(),
		ShardMergeNs:      p.shardMergeNs.Load(),
		ETASeconds:        -1,
	}
	if l := s.CacheHits + s.CacheMisses; l > 0 {
		s.CacheHitRatio = float64(s.CacheHits) / float64(l)
	}
	if s.EngineSteps > 0 {
		s.ArenaBytesPerStep = float64(s.ArenaBytes) / float64(s.EngineSteps)
	}
	s.ElapsedSeconds = time.Since(p.start).Seconds()
	if s.ElapsedSeconds > 0 {
		s.RatePerSecond = float64(s.Done) / s.ElapsedSeconds
	}
	if p.total > 0 && s.Done > 0 && s.RatePerSecond > 0 {
		s.ETASeconds = float64(p.total-s.Done) / s.RatePerSecond
	}
	p.mu.Lock()
	if p.trialS.N() > 0 {
		q := p.trialS.Quantiles(0.5, 0.9, 0.99)
		s.TrialSecondsP50, s.TrialSecondsP90, s.TrialSecondsP99 = q[0], q[1], q[2]
	}
	p.mu.Unlock()
	return s
}

// Line renders the Status as the one-line -progress format:
//
//	simfuzz: 1234/10000 (12.3%) 456.7/s eta 19s violations 0
func (s Status) Line() string {
	frac := ""
	if s.Total > 0 {
		frac = fmt.Sprintf(" (%.1f%%)", 100*float64(s.Done)/float64(s.Total))
	}
	eta := "?"
	if s.ETASeconds >= 0 {
		eta = (time.Duration(s.ETASeconds*float64(time.Second)) / time.Second * time.Second).String()
	}
	total := "?"
	if s.Total > 0 {
		total = fmt.Sprintf("%d", s.Total)
	}
	return fmt.Sprintf("%s: %d/%s%s %.1f/s eta %s violations %d",
		s.Tool, s.Done, total, frac, s.RatePerSecond, eta, s.Violations)
}

// StartReporter prints a Status line to w every interval until the returned
// stop function is called (which prints one final line). It is the engine
// behind the -progress flag; the stream it writes to (stderr) is disjoint
// from the report stream, so reports stay byte-identical with it on.
func (p *Progress) StartReporter(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fmt.Fprintln(w, p.Snapshot().Line())
			case <-done:
				fmt.Fprintln(w, p.Snapshot().Line())
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
