package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"timedice/internal/experiments/runner"
)

// Server is the live-exposition endpoint behind the -http flag. It serves
//
//	/metrics      Prometheus text format: campaign progress, worker
//	              occupancy (runner pool), verdict-cache hit ratio,
//	              trial-latency quantiles, heap/GC stats
//	/statusz      the Progress Snapshot as JSON
//	/healthz      "ok\n" (liveness)
//	/debug/pprof  the standard net/http/pprof handlers, so a live campaign
//	              can be CPU/heap-profiled without stopping it
//
// A nil *Server is inert: Close and Addr are no-ops, so CLIs can wire it
// unconditionally and let the empty -http flag disable it.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	progress *Progress
}

// StartServer listens on addr (e.g. ":9090" or "127.0.0.1:0") and serves
// the exposition endpoints in a background goroutine. progress may be nil:
// the process-level metrics and pprof still work, campaign metrics read as
// absent. An empty addr returns (nil, nil) — the disabled case.
func StartServer(addr string, progress *Progress) (*Server, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, progress: progress}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address ("" on a nil server) — useful with
// ":0" for tests and for the startup log line.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.progress == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.progress.Snapshot()) //nolint:errcheck // best-effort HTTP response
}

// handleMetrics renders the Prometheus text exposition format. Metric
// families are written in a fixed order so scrapes diff cleanly.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	if s.progress != nil {
		st := s.progress.Snapshot()
		gauge("timedice_campaign_scenarios_total", "planned trials in this campaign (0 = unknown)", float64(st.Total))
		counter("timedice_campaign_scenarios_done", "trials completed", st.Done)
		gauge("timedice_campaign_scenarios_inflight", "trials currently executing", float64(st.InFlight))
		counter("timedice_campaign_violations_total", "oracle violations observed", st.Violations)
		counter("timedice_campaign_events_total", "scheduler telemetry events simulated", st.Events)
		gauge("timedice_campaign_rate_scenarios_per_second", "completed trials per wall-clock second", st.RatePerSecond)
		gauge("timedice_campaign_elapsed_seconds", "wall-clock seconds since campaign start", st.ElapsedSeconds)
		counter("timedice_cache_hits_total", "schedulability-verdict cache hits (core.Cache)", st.CacheHits)
		counter("timedice_cache_misses_total", "schedulability-verdict cache misses (core.Cache)", st.CacheMisses)
		gauge("timedice_cache_hit_ratio", "hits / (hits + misses)", st.CacheHitRatio)
		counter("timedice_engine_steps_total", "engine steps (= scheduling decisions) simulated", st.EngineSteps)
		counter("timedice_engine_arena_bytes_total", "hot-state bytes touched by the step loop (deterministic cache-traffic proxy)", st.ArenaBytes)
		gauge("timedice_engine_arena_bytes_per_step", "mean arena bytes touched per engine step", st.ArenaBytesPerStep)
		counter("timedice_engine_fixpoint_iters_total", "Algorithm-3 busy-interval fixpoint iterations run (deterministic decision-cost proxy)", st.FixpointIters)
		counter("timedice_engine_interference_terms_total", "Algorithm-3 interference terms evaluated (scan-vs-indexed gap = decision-kernel savings)", st.InterferenceTerms)
		gauge("timedice_shard_workers", "sharded-stepping worker count (1 = sequential)", float64(st.ShardWorkers))
		counter("timedice_shard_merge_ns_total", "wall-clock nanoseconds in the sharded due-phase merge (MeasureLatency runs only)", st.ShardMergeNs)
		fmt.Fprintf(w, "# HELP timedice_trial_seconds per-trial wall-clock quantiles (stats.Sketch)\n# TYPE timedice_trial_seconds summary\n")
		fmt.Fprintf(w, "timedice_trial_seconds{quantile=\"0.5\"} %g\n", st.TrialSecondsP50)
		fmt.Fprintf(w, "timedice_trial_seconds{quantile=\"0.9\"} %g\n", st.TrialSecondsP90)
		fmt.Fprintf(w, "timedice_trial_seconds{quantile=\"0.99\"} %g\n", st.TrialSecondsP99)
	}

	// Worker-pool occupancy, process-wide (runner.Map / MapPooled /
	// ReducePooled keep these regardless of which harness is running).
	m := runner.MonitorState()
	counter("timedice_runner_trials_started_total", "trials claimed by pool workers", m.Started)
	counter("timedice_runner_trials_done_total", "trials completed by pool workers", m.Done)
	counter("timedice_runner_trials_failed_total", "trials that returned an error or panicked", m.Failed)
	gauge("timedice_runner_trials_inflight", "trials executing right now (worker occupancy)", float64(m.InFlight))
	gauge("timedice_runner_workers_active", "pool worker goroutines currently alive", float64(m.Workers))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("go_heap_alloc_bytes", "bytes of allocated heap objects", float64(ms.HeapAlloc))
	gauge("go_heap_sys_bytes", "bytes of heap obtained from the OS", float64(ms.HeapSys))
	counter("go_gc_cycles_total", "completed GC cycles", int64(ms.NumGC))
	gauge("go_gc_pause_total_seconds", "cumulative GC stop-the-world pause", float64(ms.PauseTotalNs)/1e9)
	gauge("go_goroutines", "live goroutines", float64(runtime.NumGoroutine()))
}
