//go:build !race

package obs_test

// raceEnabled reports whether the race detector instruments this test
// binary; the zero-allocation pins are skipped under it (instrumentation
// allocates on paths the contract does not cover).
const raceEnabled = false
