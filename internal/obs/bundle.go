package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"timedice/internal/telemetry"
	"timedice/internal/vtime"
)

// Bundle reasons, recorded in the post-mortem meta.json.
const (
	ReasonOracleViolation = "oracle-violation"
	ReasonWorkerPanic     = "worker-panic"
)

// BundleInfo is everything a post-mortem bundle captures about a failure.
type BundleInfo struct {
	// Tool is the CLI that was running ("simfuzz", ...).
	Tool string
	// Reason is one of the Reason* constants.
	Reason string
	// Detail is free text: the violation messages or the panic value.
	Detail []string
	// Seed identifies the failing trial (the scenario seed, not the
	// campaign master seed).
	Seed uint64
	// TrialIndex is the trial's position in the campaign, -1 when unknown.
	TrialIndex int
	// Scenario is the canonical scenario JSON (gen.Encode output); omitted
	// from the bundle when nil.
	Scenario []byte
	// Events is the flight-recorder window leading up to the failure,
	// oldest first.
	Events []telemetry.Event
	// EventsTotal / EventsDropped are the recorder tallies: how many events
	// the run emitted in total and how many fell out of the window.
	EventsTotal   uint64
	EventsDropped uint64
	// Partitions are the partition names in priority order, for the Chrome
	// trace track labels.
	Partitions []string
	// LiveDigest is the event-stream digest of the failing run;
	// ReplayDigest, when non-zero, is the digest of an independent re-run
	// (the determinism cross-check a matching pair certifies).
	LiveDigest   uint64
	ReplayDigest uint64
	// Counters are headline numbers (decisions, misses, busy/idle µs, ...).
	Counters map[string]int64
	// Snapshot, when non-nil, is an engine.Snapshot taken at the last step
	// boundary before the violation (gen.CheckpointBeforeViolation), written
	// into the bundle as state.snapshot. SnapshotTime is the capture instant
	// in simulated microseconds and PrefixDigest the event-stream digest of
	// everything emitted before it: restoring the snapshot and folding the
	// replayed suffix onto PrefixDigest must reproduce LiveDigest, so a bundle
	// replays from just before the failure instead of from zero.
	Snapshot     []byte
	SnapshotTime vtime.Time
	PrefixDigest uint64
}

// bundleMeta is the JSON schema of meta.json inside a bundle.
type bundleMeta struct {
	Version       int              `json:"version"`
	Tool          string           `json:"tool"`
	Reason        string           `json:"reason"`
	Detail        []string         `json:"detail,omitempty"`
	WrittenAt     time.Time        `json:"writtenAt"`
	Seed          string           `json:"seed"` // hex, matches the CLI report format
	TrialIndex    int              `json:"trialIndex"`
	LiveDigest    string           `json:"liveDigest"`
	ReplayDigest  string           `json:"replayDigest,omitempty"`
	EventsInWin   int              `json:"eventsInWindow"`
	EventsTotal   uint64           `json:"eventsTotal"`
	EventsDropped uint64           `json:"eventsDropped"`
	Partitions    []string         `json:"partitions,omitempty"`
	Counters      map[string]int64 `json:"counters,omitempty"`
	SnapshotTime  int64            `json:"snapshotTimeMicros,omitempty"`
	PrefixDigest  string           `json:"prefixDigest,omitempty"`
	Files         []string         `json:"files"`
}

// WriteBundle dumps a post-mortem bundle into its own directory under dir
// and returns that directory's path. The bundle contains
//
//	meta.json          BundleInfo header: reason, seed, digests, counters
//	events.jsonl       the flight-recorder window (telemetry JSONL wire
//	                   format; telemetry.ReadJSONL replays it losslessly)
//	events.trace.json  the same window as Chrome trace-event JSON, loadable
//	                   in Perfetto / chrome://tracing
//	scenario.json      the failing scenario (when provided) — a valid
//	                   timedice-sim / simfuzz reproducer file
//
// The directory name encodes the tool, trial seed, and reason so repeated
// failures in one campaign land side by side.
func WriteBundle(dir string, info BundleInfo) (string, error) {
	name := fmt.Sprintf("postmortem-%s-%#x-%s", info.Tool, info.Seed, info.Reason)
	bdir := filepath.Join(dir, name)
	if err := os.MkdirAll(bdir, 0o755); err != nil {
		return "", fmt.Errorf("obs: bundle dir: %w", err)
	}

	meta := bundleMeta{
		Version:       1,
		Tool:          info.Tool,
		Reason:        info.Reason,
		Detail:        info.Detail,
		WrittenAt:     time.Now().UTC(),
		Seed:          fmt.Sprintf("%#x", info.Seed),
		TrialIndex:    info.TrialIndex,
		LiveDigest:    fmt.Sprintf("%#016x", info.LiveDigest),
		EventsInWin:   len(info.Events),
		EventsTotal:   info.EventsTotal,
		EventsDropped: info.EventsDropped,
		Partitions:    info.Partitions,
		Counters:      info.Counters,
		Files:         []string{"meta.json", "events.jsonl", "events.trace.json"},
	}
	if info.ReplayDigest != 0 {
		meta.ReplayDigest = fmt.Sprintf("%#016x", info.ReplayDigest)
	}

	jf, err := os.Create(filepath.Join(bdir, "events.jsonl"))
	if err != nil {
		return "", fmt.Errorf("obs: bundle events: %w", err)
	}
	sink := telemetry.NewJSONLSink(jf)
	for _, e := range info.Events {
		sink.Event(e)
	}
	if err := sink.Flush(); err != nil {
		jf.Close()
		return "", fmt.Errorf("obs: bundle events: %w", err)
	}
	if err := jf.Close(); err != nil {
		return "", fmt.Errorf("obs: bundle events: %w", err)
	}

	tf, err := os.Create(filepath.Join(bdir, "events.trace.json"))
	if err != nil {
		return "", fmt.Errorf("obs: bundle trace: %w", err)
	}
	if err := telemetry.WriteChromeTrace(tf, info.Events, info.Partitions); err != nil {
		tf.Close()
		return "", fmt.Errorf("obs: bundle trace: %w", err)
	}
	if err := tf.Close(); err != nil {
		return "", fmt.Errorf("obs: bundle trace: %w", err)
	}

	if info.Scenario != nil {
		meta.Files = append(meta.Files, "scenario.json")
		if err := os.WriteFile(filepath.Join(bdir, "scenario.json"), info.Scenario, 0o644); err != nil {
			return "", fmt.Errorf("obs: bundle scenario: %w", err)
		}
	}

	if info.Snapshot != nil {
		meta.SnapshotTime = int64(info.SnapshotTime)
		meta.PrefixDigest = fmt.Sprintf("%#016x", info.PrefixDigest)
		meta.Files = append(meta.Files, "state.snapshot")
		if err := os.WriteFile(filepath.Join(bdir, "state.snapshot"), info.Snapshot, 0o644); err != nil {
			return "", fmt.Errorf("obs: bundle snapshot: %w", err)
		}
	}

	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return "", fmt.Errorf("obs: bundle meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(bdir, "meta.json"), append(mb, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("obs: bundle meta: %w", err)
	}
	return bdir, nil
}
