package obs_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"timedice/internal/check"
	"timedice/internal/gen"
	"timedice/internal/obs"
	"timedice/internal/rng"
	"timedice/internal/telemetry"
)

// TestBundleRoundTrip is the acceptance check for the post-mortem path: a
// run captured by a whole-run flight recorder dumps a bundle whose
// events.jsonl replays — through the lossless JSONL round trip — to the
// exact event-stream digest the live oracle suite computed.
func TestBundleRoundTrip(t *testing.T) {
	// A real (passing) scenario stands in for a failing one: the bundle
	// machinery is identical, only the reason differs.
	sc := gen.Generate(rng.New(42), gen.DefaultOptions())
	rec := obs.NewRecorder(1 << 20) // window far larger than any run: capture everything
	suite, st, err := gen.RunRecorded(sc, rec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d events; widen the test window", rec.Dropped())
	}
	if int64(rec.Total()) != suite.Events() {
		t.Fatalf("recorder saw %d events, suite digested %d — the sinks observed different streams", rec.Total(), suite.Events())
	}

	blob, err := gen.Encode(sc)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(sc.Spec.Partitions))
	for i, p := range sc.Spec.Partitions {
		names[i] = p.Name
	}
	dir, err := obs.WriteBundle(t.TempDir(), obs.BundleInfo{
		Tool:          "obstest",
		Reason:        obs.ReasonOracleViolation,
		Detail:        []string{"synthetic"},
		Seed:          sc.Seed,
		TrialIndex:    7,
		Scenario:      blob,
		Events:        rec.Window(),
		EventsTotal:   rec.Total(),
		EventsDropped: rec.Dropped(),
		Partitions:    names,
		LiveDigest:    suite.Digest(),
		ReplayDigest:  suite.Digest(),
		Counters:      map[string]int64{"decisions": st.Counters.Decisions},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The JSONL replay must hash to the live digest: this is what makes a
	// bundle trustworthy evidence rather than a lossy log.
	jf, err := os.Open(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadJSONL(jf)
	jf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := check.DigestEvents(events); got != suite.Digest() {
		t.Fatalf("replayed bundle digest %#016x != live digest %#016x", got, suite.Digest())
	}

	// meta.json carries the cross-check so it survives without the process.
	var meta struct {
		Version      int      `json:"version"`
		Reason       string   `json:"reason"`
		LiveDigest   string   `json:"liveDigest"`
		ReplayDigest string   `json:"replayDigest"`
		EventsInWin  int      `json:"eventsInWindow"`
		Files        []string `json:"files"`
	}
	mb, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mb, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Version != 1 || meta.Reason != obs.ReasonOracleViolation {
		t.Fatalf("meta header = %+v", meta)
	}
	if meta.LiveDigest != meta.ReplayDigest || meta.LiveDigest == "" {
		t.Fatalf("meta digests live=%q replay=%q, want equal and non-empty", meta.LiveDigest, meta.ReplayDigest)
	}
	if meta.EventsInWin != len(events) {
		t.Fatalf("meta says %d events in window, jsonl has %d", meta.EventsInWin, len(events))
	}

	// Every advertised file exists; the Chrome trace and scenario are valid
	// JSON documents.
	for _, f := range meta.Files {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("advertised bundle file missing: %v", err)
		}
	}
	var anyJSON any
	tb, err := os.ReadFile(filepath.Join(dir, "events.trace.json"))
	if err != nil || json.Unmarshal(tb, &anyJSON) != nil {
		t.Fatalf("events.trace.json unreadable or invalid JSON: %v", err)
	}

	// scenario.json is a working reproducer: decode and re-run it, same
	// digest again.
	sb, err := os.ReadFile(filepath.Join(dir, "scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := gen.Decode(sb)
	if err != nil {
		t.Fatal(err)
	}
	suite2, err := gen.Run(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if suite2.Digest() != suite.Digest() {
		t.Fatalf("reproducer digest %#016x != live digest %#016x", suite2.Digest(), suite.Digest())
	}
}

// TestBundleWindowedRecorder: with a window smaller than the run, the bundle
// holds the tail and the tallies say exactly how much history was lost.
func TestBundleWindowedRecorder(t *testing.T) {
	sc := gen.Generate(rng.New(3), gen.DefaultOptions())
	rec := obs.NewRecorder(128)
	suite, _, err := gen.RunRecorded(sc, rec)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Events() <= 128 {
		t.Skipf("scenario emitted only %d events; fixture needs a longer run", suite.Events())
	}
	if rec.Len() != 128 {
		t.Fatalf("window holds %d events, want full 128", rec.Len())
	}
	if got := rec.Dropped(); got != rec.Total()-128 {
		t.Fatalf("dropped = %d, want total-128 = %d", got, rec.Total()-128)
	}
	dir, err := obs.WriteBundle(t.TempDir(), obs.BundleInfo{
		Tool: "obstest", Reason: obs.ReasonWorkerPanic, Seed: sc.Seed, TrialIndex: -1,
		Events: rec.Window(), EventsTotal: rec.Total(), EventsDropped: rec.Dropped(),
	})
	if err != nil {
		t.Fatal(err)
	}
	jf, err := os.Open(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadJSONL(jf)
	jf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 128 {
		t.Fatalf("bundle holds %d events, want the 128-event tail", len(events))
	}
	// No scenario was provided, so none may be advertised or written.
	if _, err := os.Stat(filepath.Join(dir, "scenario.json")); !os.IsNotExist(err) {
		t.Fatalf("scenario.json unexpectedly present (err=%v)", err)
	}
}
