package obs_test

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"timedice/internal/obs"
)

// TestRunLedger walks one full ledger entry: StartRun writes an open
// manifest immediately, the mutators accumulate, Finish stamps the outcome,
// and ReadManifest round-trips the schema.
func TestRunLedger(t *testing.T) {
	root := t.TempDir()
	run, err := obs.StartRun("unittest", root, []string{"unittest", "-x", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if run.Dir() == "" || filepath.Dir(run.Dir()) != root {
		t.Fatalf("run dir %q not directly under %q", run.Dir(), root)
	}
	if base := filepath.Base(run.Dir()); !strings.HasPrefix(base, "unittest-") {
		t.Fatalf("run dir name %q does not start with the tool name", base)
	}

	// The open manifest is already on disk (crash-durable provenance).
	open, err := obs.ReadManifest(filepath.Join(run.Dir(), "run.json"))
	if err != nil {
		t.Fatalf("open manifest unreadable: %v", err)
	}
	if open.ExitCode != -1 || open.End.IsZero() == false {
		t.Fatalf("open manifest should read as still-running: %+v", open)
	}

	fs := flag.NewFlagSet("unittest", flag.ContinueOnError)
	n := fs.Int("x", 0, "")
	if err := fs.Parse([]string{"-x", "1"}); err != nil {
		t.Fatal(err)
	}
	_ = n
	run.RecordFlags(fs)
	run.SetDigest(0xdeadbeef)
	run.AddCounter("scenarios", 100)
	run.AddCounter("scenarios", 50)
	inside := filepath.Join(run.Dir(), "bundle-1")
	run.AddArtifact(inside)
	run.AddArtifact("/elsewhere/report.md")
	if err := run.Finish(0); err != nil {
		t.Fatal(err)
	}

	m, err := obs.ReadManifest(filepath.Join(run.Dir(), "run.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != obs.ManifestVersion || m.Tool != "unittest" {
		t.Fatalf("header = %+v", m)
	}
	if len(m.Argv) != 3 || m.Argv[2] != "1" {
		t.Fatalf("argv = %v", m.Argv)
	}
	if m.Flags["x"] != "1" {
		t.Fatalf("flags = %v, want x=1 captured", m.Flags)
	}
	if m.GoVersion != runtime.Version() || m.NumCPU != runtime.NumCPU() {
		t.Fatalf("build/host stamp = %+v", m)
	}
	if m.ExitCode != 0 || m.End.Before(m.Start) || m.DurationSeconds < 0 {
		t.Fatalf("outcome stamp = exit %d start %v end %v", m.ExitCode, m.Start, m.End)
	}
	if m.Digest != "0x00000000deadbeef" {
		t.Fatalf("digest = %q", m.Digest)
	}
	if m.Counters["scenarios"] != 150 {
		t.Fatalf("counters = %v, want scenarios accumulated to 150", m.Counters)
	}
	// Artifacts inside the run dir are relativized, outside ones kept as-is,
	// and the list is sorted.
	want := []string{"/elsewhere/report.md", "bundle-1"}
	if len(m.Artifacts) != 2 || m.Artifacts[0] != want[0] || m.Artifacts[1] != want[1] {
		t.Fatalf("artifacts = %v, want %v", m.Artifacts, want)
	}
	// No stray temp file left behind by the atomic write.
	if _, err := os.Stat(filepath.Join(run.Dir(), ".run.json.tmp")); !os.IsNotExist(err) {
		t.Fatalf("atomic-write temp file still present (err=%v)", err)
	}
}

// TestRunLedgerDisabled: an empty runs root disables the ledger, and the nil
// *Run it returns absorbs every call.
func TestRunLedgerDisabled(t *testing.T) {
	run, err := obs.StartRun("unittest", "", os.Args)
	if err != nil || run != nil {
		t.Fatalf("StartRun(\"\") = (%v, %v), want (nil, nil)", run, err)
	}
	if run.Dir() != "" {
		t.Fatal("nil run must report an empty dir")
	}
	run.RecordFlags(flag.NewFlagSet("x", flag.ContinueOnError))
	run.SetDigest(1)
	run.AddCounter("n", 1)
	run.AddArtifact("x")
	if err := run.Finish(0); err != nil {
		t.Fatalf("nil Finish = %v", err)
	}
}
