package obs

import (
	"flag"
	"fmt"
	"os"
)

// Flags is the shared campaign-operations flag set: every campaign CLI
// registers it so operating a run looks the same everywhere.
type Flags struct {
	// HTTP is the -http listen address; empty disables the exposition
	// server.
	HTTP string
	// Runs is the -runs ledger root; empty disables the run manifest.
	Runs string
}

// AddFlags registers -http and -runs on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.HTTP, "http", "",
		"serve /metrics, /statusz, /healthz and /debug/pprof on this address (e.g. :9090) for the duration of the run")
	fs.StringVar(&f.Runs, "runs", "runs",
		"directory for run-provenance manifests (run.json per invocation); empty disables the ledger")
	return f
}

// Start opens the run ledger entry and the exposition server per the parsed
// flags. Either (or both) may come back nil when disabled. progress may be
// nil for CLIs without campaign-level progress; the server then exposes
// process metrics and pprof only. The server's bound address is announced
// on stderr so `-http :0` is usable interactively.
func (f *Flags) Start(tool string, fs *flag.FlagSet, progress *Progress) (*Run, *Server, error) {
	run, err := StartRun(tool, f.Runs, os.Args)
	if err != nil {
		return nil, nil, err
	}
	run.RecordFlags(fs)
	srv, err := StartServer(f.HTTP, progress)
	if err != nil {
		run.Finish(2) //nolint:errcheck // the listen error is the one to report
		return nil, nil, err
	}
	if srv != nil {
		fmt.Fprintf(os.Stderr, "%s: obs: serving http://%s/{metrics,statusz,healthz,debug/pprof}\n", tool, srv.Addr())
	}
	return run, srv, nil
}
