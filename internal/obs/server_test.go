package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"timedice/internal/obs"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}

// TestServerEndpoints boots the exposition server on an ephemeral port and
// exercises every route the -http flag promises.
func TestServerEndpoints(t *testing.T) {
	p := obs.NewProgress("unittest", 50)
	p.TrialStart()
	p.TrialDone(1234, 2, 3*time.Millisecond)
	p.AddCache(8, 2)
	p.AddEngine(100, 6400, 250, 900)

	srv, err := obs.StartServer("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, ct := get(t, base+"/healthz")
	if body != "ok\n" || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/healthz = %q (%s)", body, ct)
	}

	body, ct = get(t, base+"/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"timedice_campaign_scenarios_total 50",
		"timedice_campaign_scenarios_done 1",
		"timedice_campaign_violations_total 2",
		"timedice_campaign_events_total 1234",
		"timedice_cache_hits_total 8",
		"timedice_cache_misses_total 2",
		"timedice_cache_hit_ratio 0.8",
		"timedice_engine_steps_total 100",
		"timedice_engine_arena_bytes_total 6400",
		"timedice_engine_arena_bytes_per_step 64",
		"timedice_engine_fixpoint_iters_total 250",
		"timedice_engine_interference_terms_total 900",
		`timedice_trial_seconds{quantile="0.5"}`,
		"timedice_runner_workers_active",
		"go_heap_alloc_bytes",
		"go_goroutines",
		"# TYPE timedice_campaign_violations_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	body, ct = get(t, base+"/statusz")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/statusz content type %q", ct)
	}
	var st obs.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz not a Status document: %v\n%s", err, body)
	}
	if st.Tool != "unittest" || st.Done != 1 || st.Events != 1234 {
		t.Fatalf("/statusz = %+v", st)
	}

	// pprof is mounted: the index and one profile endpoint answer.
	if body, _ = get(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatal("/debug/pprof/ index does not list profiles")
	}
	if body, _ = get(t, base+"/debug/pprof/goroutine?debug=1"); !strings.Contains(body, "goroutine") {
		t.Fatal("/debug/pprof/goroutine returned no stacks")
	}
}

// TestServerNilProgress: a server without campaign progress still serves
// process metrics, pprof, and an empty statusz.
func TestServerNilProgress(t *testing.T) {
	srv, err := obs.StartServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	body, _ := get(t, base+"/metrics")
	if strings.Contains(body, "timedice_campaign_") {
		t.Fatal("campaign metrics present without a Progress")
	}
	if !strings.Contains(body, "go_heap_alloc_bytes") {
		t.Fatal("process metrics absent")
	}
	if body, _ = get(t, base+"/statusz"); strings.TrimSpace(body) != "{}" {
		t.Fatalf("/statusz = %q, want {}", body)
	}
}

// TestServerDisabled: the empty addr is the off switch, and the nil server
// it returns absorbs Close and Addr.
func TestServerDisabled(t *testing.T) {
	srv, err := obs.StartServer("", nil)
	if err != nil || srv != nil {
		t.Fatalf("StartServer(\"\") = (%v, %v), want (nil, nil)", srv, err)
	}
	if srv.Addr() != "" || srv.Close() != nil {
		t.Fatal("nil server must be inert")
	}
}

// TestServerAddrInUse: a listen failure surfaces as an error, not a panic.
func TestServerAddrInUse(t *testing.T) {
	a, err := obs.StartServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := obs.StartServer(a.Addr(), nil); err == nil {
		t.Fatal("second listen on the same address unexpectedly succeeded")
	} else if !strings.Contains(fmt.Sprint(err), a.Addr()) {
		t.Fatalf("listen error %v does not name the address", err)
	}
}
