package obs_test

import (
	"testing"

	"timedice/internal/engine"
	"timedice/internal/obs"
	"timedice/internal/policies"
	"timedice/internal/rng"
	"timedice/internal/telemetry"
	"timedice/internal/vtime"
	"timedice/internal/workload"
)

func evt(i int) telemetry.Event {
	return telemetry.Event{Time: vtime.Time(i), Kind: telemetry.KindSlice, Partition: i % 3}
}

// TestRecorderWraparound pins the ring semantics: once full, the window
// slides — oldest events fall out, Window returns the most recent Cap events
// in emission order, and Total/Dropped account for every event ever seen.
func TestRecorderWraparound(t *testing.T) {
	const window = 8
	r := obs.NewRecorder(window)
	if r.Cap() != window || r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatalf("fresh recorder: cap=%d len=%d total=%d dropped=%d", r.Cap(), r.Len(), r.Total(), r.Dropped())
	}

	// Partially filled: everything retained, in order.
	for i := 0; i < 5; i++ {
		r.Event(evt(i))
	}
	if r.Len() != 5 || r.Total() != 5 || r.Dropped() != 0 {
		t.Fatalf("after 5 events: len=%d total=%d dropped=%d", r.Len(), r.Total(), r.Dropped())
	}
	for i, e := range r.Window() {
		if e != evt(i) {
			t.Fatalf("window[%d] = %+v, want %+v", i, e, evt(i))
		}
	}

	// Push well past capacity: 5+16 = 21 events through an 8-slot ring.
	for i := 5; i < 21; i++ {
		r.Event(evt(i))
	}
	if r.Len() != window || r.Total() != 21 || r.Dropped() != 21-window {
		t.Fatalf("after 21 events: len=%d total=%d dropped=%d", r.Len(), r.Total(), r.Dropped())
	}
	win := r.Window()
	if len(win) != window {
		t.Fatalf("window length %d, want %d", len(win), window)
	}
	for i, e := range win {
		want := evt(21 - window + i) // the last `window` events, oldest first
		if e != want {
			t.Fatalf("window[%d] = %+v, want %+v", i, e, want)
		}
	}

	// Reset reuses capacity and zeroes the tallies.
	r.Reset()
	if r.Cap() != window || r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatalf("after Reset: cap=%d len=%d total=%d dropped=%d", r.Cap(), r.Len(), r.Total(), r.Dropped())
	}
	r.Event(evt(99))
	if got := r.Window(); len(got) != 1 || got[0] != evt(99) {
		t.Fatalf("post-Reset window = %+v", got)
	}
}

// TestRecorderDefaultWindow pins the window<1 fallback.
func TestRecorderDefaultWindow(t *testing.T) {
	if got := obs.NewRecorder(0).Cap(); got != obs.DefaultRecorderWindow {
		t.Fatalf("NewRecorder(0).Cap() = %d, want %d", got, obs.DefaultRecorderWindow)
	}
}

// TestRecorderEventZeroAlloc pins the flight recorder's steady-state
// contract in isolation: emitting into the ring — filling and wrapping alike
// — allocates nothing.
func TestRecorderEventZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	r := obs.NewRecorder(64)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		r.Event(evt(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("Recorder.Event allocates %v per call, want 0", allocs)
	}
}

// buildRecordedSystem assembles the Table I base system with a flight
// recorder attached as the telemetry sink — the exact configuration a
// simfuzz worker runs.
func buildRecordedSystem(tb testing.TB, kind policies.Kind, rec *obs.Recorder) *engine.System {
	tb.Helper()
	built, err := workload.TableIBase().Build()
	if err != nil {
		tb.Fatal(err)
	}
	pol, err := policies.Build(kind, built.Partitions, policies.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(1))
	if err != nil {
		tb.Fatal(err)
	}
	sys.AttachTelemetry(rec)
	return sys
}

// TestEngineStepRecorderZeroAlloc extends the engine's zero-alloc stepping
// pin to the flight-recorder configuration: with an obs.Recorder attached as
// the sink, warmed steady-state stepping still allocates nothing.
func TestEngineStepRecorderZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin runs in the non-race CI lane")
	}
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
		t.Run(kind.String(), func(t *testing.T) {
			rec := obs.NewRecorder(obs.DefaultRecorderWindow)
			sys := buildRecordedSystem(t, kind, rec)
			sys.RunFor(vtime.Second)
			allocs := testing.AllocsPerRun(50, func() {
				sys.RunFor(vtime.Millisecond)
			})
			if allocs != 0 {
				t.Fatalf("stepping with a flight recorder attached allocates %v per ms, want 0", allocs)
			}
			if rec.Total() == 0 {
				t.Fatal("recorder observed no events; the pin exercised nothing")
			}
		})
	}
}

// BenchmarkEngineStepRecorder is BenchmarkEngineStep with a flight recorder
// attached: the delta against the nil-sink benchmark is the whole cost of
// always-on post-mortem capture.
func BenchmarkEngineStepRecorder(b *testing.B) {
	for _, kind := range []policies.Kind{policies.NoRandom, policies.TimeDiceW} {
		b.Run(kind.String(), func(b *testing.B) {
			rec := obs.NewRecorder(obs.DefaultRecorderWindow)
			sys := buildRecordedSystem(b, kind, rec)
			sys.RunFor(vtime.Second)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.RunFor(vtime.Millisecond)
			}
		})
	}
}
