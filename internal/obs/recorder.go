package obs

import (
	"timedice/internal/telemetry"
)

// DefaultRecorderWindow is the flight-recorder depth campaign CLIs attach
// per worker: deep enough to span several partition periods of context
// before a failure, small enough (~64 B/event) to be negligible per worker.
const DefaultRecorderWindow = 8192

// Recorder is a bounded flight recorder: a telemetry.Sink that retains the
// most recent events in a fixed-capacity ring buffer. Unlike
// telemetry.Recorder (which appends forever and is meant for whole-run
// exports), a Recorder's memory is constant and its steady-state emission
// path performs no allocation — the zero-alloc engine-stepping pins hold
// with one attached (see TestEngineStepRecorderZeroAlloc).
//
// A Recorder is not goroutine-safe; attach one per simulated system, like
// any other sink.
type Recorder struct {
	buf   []telemetry.Event
	next  int    // ring slot the next event is written to
	fill  int    // number of valid events in buf (≤ len(buf))
	total uint64 // events ever observed, including overwritten ones
}

// NewRecorder returns a flight recorder retaining the last window events.
// window < 1 is treated as DefaultRecorderWindow.
func NewRecorder(window int) *Recorder {
	if window < 1 {
		window = DefaultRecorderWindow
	}
	return &Recorder{buf: make([]telemetry.Event, window)}
}

// Event implements telemetry.Sink. It overwrites the oldest retained event
// once the window is full and never allocates.
func (r *Recorder) Event(e telemetry.Event) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.fill < len(r.buf) {
		r.fill++
	}
	r.total++
}

// Cap returns the window capacity.
func (r *Recorder) Cap() int { return len(r.buf) }

// Len returns the number of events currently retained (≤ Cap).
func (r *Recorder) Len() int { return r.fill }

// Total returns the number of events ever observed, including those already
// overwritten.
func (r *Recorder) Total() uint64 { return r.total }

// Dropped returns how many observed events have been overwritten and are no
// longer in the window.
func (r *Recorder) Dropped() uint64 { return r.total - uint64(r.fill) }

// Window copies the retained events out in emission order (oldest first).
// It allocates; call it only at dump time, never on the hot path.
func (r *Recorder) Window() []telemetry.Event {
	out := make([]telemetry.Event, 0, r.fill)
	if r.fill == len(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf[:r.fill]...)
}

// Reset empties the window (keeping its capacity) so the recorder can be
// reused for the next trial. The total/dropped tallies are zeroed too.
func (r *Recorder) Reset() {
	r.next, r.fill, r.total = 0, 0, 0
}
