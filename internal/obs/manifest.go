package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// ManifestVersion is bumped whenever the run.json schema changes shape.
const ManifestVersion = 1

// Manifest is the run.json schema: one record of provenance per campaign
// invocation, durable enough to answer "which binary, flags, and seed
// produced this number" months later.
type Manifest struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	// Argv is the raw command line, argv[0] included.
	Argv []string `json:"argv"`
	// Flags are the effective flag values after parsing (defaults
	// included), so a manifest is replayable even when argv relied on
	// defaults that later changed.
	Flags map[string]string `json:"flags,omitempty"`
	// GoVersion / VCSRevision / VCSTime / VCSModified identify the build.
	GoVersion   string `json:"goVersion"`
	VCSRevision string `json:"vcsRevision,omitempty"`
	VCSTime     string `json:"vcsTime,omitempty"`
	VCSModified bool   `json:"vcsModified,omitempty"`
	Host        string `json:"host,omitempty"`
	NumCPU      int    `json:"numCPU"`

	Start           time.Time `json:"start"`
	End             time.Time `json:"end,omitempty"`
	DurationSeconds float64   `json:"durationSeconds,omitempty"`
	ExitCode        int       `json:"exitCode"`

	// Digest is the run's headline result digest (e.g. the simfuzz combined
	// event-stream digest), hex-formatted; empty when the tool has none.
	Digest string `json:"digest,omitempty"`
	// Counters are headline numbers: scenarios, violations, events, ...
	Counters map[string]int64 `json:"counters,omitempty"`
	// Artifacts are paths (relative to the run directory when inside it)
	// of files the run produced: post-mortem bundles, reports, figures.
	Artifacts []string `json:"artifacts,omitempty"`
}

// Run is one open ledger entry: a per-run directory under the runs/ root
// holding run.json and any artifacts the campaign drops next to it. A nil
// *Run is inert — every method is a no-op — so CLIs wire the ledger
// unconditionally and let the empty -runs flag disable it.
type Run struct {
	mu  sync.Mutex
	dir string
	m   Manifest
}

// StartRun opens a ledger entry for tool under runsDir, creating
// runsDir/<tool>-<UTC timestamp>-<pid>/ and stamping the build info. An
// empty runsDir returns (nil, nil) — the disabled case. argv should be
// os.Args.
func StartRun(tool, runsDir string, argv []string) (*Run, error) {
	if runsDir == "" {
		return nil, nil
	}
	start := time.Now()
	name := fmt.Sprintf("%s-%s-%d", tool, start.UTC().Format("20060102-150405"), os.Getpid())
	dir := filepath.Join(runsDir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: run dir: %w", err)
	}
	host, _ := os.Hostname()
	r := &Run{
		dir: dir,
		m: Manifest{
			Version:   ManifestVersion,
			Tool:      tool,
			Argv:      append([]string(nil), argv...),
			GoVersion: runtime.Version(),
			Host:      host,
			NumCPU:    runtime.NumCPU(),
			Start:     start,
			ExitCode:  -1, // still running; Finish overwrites
		},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				r.m.VCSRevision = s.Value
			case "vcs.time":
				r.m.VCSTime = s.Value
			case "vcs.modified":
				r.m.VCSModified = s.Value == "true"
			}
		}
	}
	// Write the open manifest immediately: a run killed by the OOM killer
	// or a cancelled CI job still leaves its provenance behind.
	if err := r.write(); err != nil {
		return nil, err
	}
	return r, nil
}

// Dir returns the run's artifact directory ("" on nil).
func (r *Run) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// RecordFlags captures the effective value of every flag registered on fs.
// Call it after fs.Parse.
func (r *Run) RecordFlags(fs *flag.FlagSet) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m.Flags == nil {
		r.m.Flags = make(map[string]string)
	}
	fs.VisitAll(func(f *flag.Flag) {
		r.m.Flags[f.Name] = f.Value.String()
	})
}

// SetDigest records the run's headline result digest.
func (r *Run) SetDigest(d uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m.Digest = fmt.Sprintf("%#016x", d)
}

// AddCounter adds v to the named headline counter.
func (r *Run) AddCounter(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m.Counters == nil {
		r.m.Counters = make(map[string]int64)
	}
	r.m.Counters[name] += v
}

// AddArtifact records a file or directory the run produced. Paths inside
// the run directory are stored relative to it.
func (r *Run) AddArtifact(path string) {
	if r == nil {
		return
	}
	if rel, err := filepath.Rel(r.dir, path); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
		path = rel
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m.Artifacts = append(r.m.Artifacts, path)
	sort.Strings(r.m.Artifacts)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// Finish stamps the end time, duration, and exit code, and rewrites
// run.json. Safe on nil and idempotent enough to sit in a defer alongside
// an explicit error-path call (the last write wins).
func (r *Run) Finish(exitCode int) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.m.End = time.Now()
	r.m.DurationSeconds = r.m.End.Sub(r.m.Start).Seconds()
	r.m.ExitCode = exitCode
	r.mu.Unlock()
	return r.write()
}

// write atomically replaces run.json (write temp + rename) so a scrape of
// the runs/ tree never sees a torn manifest.
func (r *Run) write() error {
	r.mu.Lock()
	b, err := json.MarshalIndent(&r.m, "", "  ")
	r.mu.Unlock()
	if err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	tmp := filepath.Join(r.dir, ".run.json.tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(r.dir, "run.json")); err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	return nil
}

// ReadManifest loads a run.json (for tests and tooling).
func ReadManifest(path string) (Manifest, error) {
	var m Manifest
	b, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("obs: manifest %s: %w", path, err)
	}
	return m, nil
}
