package obs_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"timedice/internal/obs"
)

// TestProgressSnapshot pins the campaign arithmetic: counters accumulate,
// the hit ratio derives from the cache tallies, and ETA appears once rate is
// known.
func TestProgressSnapshot(t *testing.T) {
	p := obs.NewProgress("unittest", 10)
	p.TrialStart()
	p.TrialStart()
	p.TrialDone(100, 1, 5*time.Millisecond)
	p.AddCache(30, 10)

	s := p.Snapshot()
	if s.Tool != "unittest" || s.Total != 10 {
		t.Fatalf("identity = %+v", s)
	}
	if s.Done != 1 || s.InFlight != 1 {
		t.Fatalf("done=%d inflight=%d, want 1/1", s.Done, s.InFlight)
	}
	if s.Events != 100 || s.Violations != 1 {
		t.Fatalf("events=%d violations=%d", s.Events, s.Violations)
	}
	if s.CacheHits != 30 || s.CacheMisses != 10 || s.CacheHitRatio != 0.75 {
		t.Fatalf("cache = %d/%d ratio %v", s.CacheHits, s.CacheMisses, s.CacheHitRatio)
	}
	if s.ETASeconds < 0 {
		t.Fatalf("ETA unknown (%v) despite done>0 and total>0", s.ETASeconds)
	}
	if s.TrialSecondsP50 <= 0 {
		t.Fatalf("p50 = %v, want the 5ms sample visible", s.TrialSecondsP50)
	}

	line := s.Line()
	for _, frag := range []string{"unittest: 1/10", "violations 1", "eta"} {
		if !strings.Contains(line, frag) {
			t.Fatalf("Line() = %q, missing %q", line, frag)
		}
	}
}

// TestProgressUnknownTotal: with total 0 the ETA stays -1 and Line renders
// the total as "?".
func TestProgressUnknownTotal(t *testing.T) {
	p := obs.NewProgress("unittest", 0)
	p.TrialStart()
	p.TrialDone(1, 0, time.Millisecond)
	s := p.Snapshot()
	if s.ETASeconds != -1 {
		t.Fatalf("ETA = %v, want -1 with no total", s.ETASeconds)
	}
	if !strings.Contains(s.Line(), "1/?") {
		t.Fatalf("Line() = %q, want unknown total rendered as ?", s.Line())
	}
}

// TestProgressConcurrent hammers the counters from many goroutines — the
// -race CI lane turns any unsynchronized access into a failure.
func TestProgressConcurrent(t *testing.T) {
	p := obs.NewProgress("unittest", 1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 125; i++ {
				p.TrialStart()
				p.AddCache(2, 1)
				p.TrialDone(10, 0, time.Microsecond)
				_ = p.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Done != 1000 || s.InFlight != 0 || s.Events != 10000 {
		t.Fatalf("after concurrent updates: %+v", s)
	}
}

// TestProgressReporter: the -progress goroutine emits at least the final
// line and stops cleanly (stop is idempotent).
func TestProgressReporter(t *testing.T) {
	p := obs.NewProgress("unittest", 2)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(b []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(b)
	})
	stop := p.StartReporter(w, time.Hour) // interval never fires; only the final line
	p.TrialStart()
	p.TrialDone(5, 0, time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "unittest: 1/2") {
		t.Fatalf("reporter output = %q, want a final status line", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }
