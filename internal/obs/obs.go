// Package obs is the campaign-operations layer: the observability the
// simulator fleet itself needs when a run lasts hours instead of
// milliseconds. It complements internal/telemetry — which observes one
// simulated system in virtual time — with three wall-clock-side pillars
// shared by every long-running CLI:
//
//   - Flight recorder (Recorder): a bounded ring-buffer telemetry.Sink that
//     retains the last N scheduler events of a running engine with zero
//     steady-state allocation. When an oracle fires or a worker panics deep
//     into a campaign, the window of events that led up to it is still in
//     memory and is dumped as a post-mortem bundle (WriteBundle) — a
//     replayable crash dump (Chrome trace + JSONL + scenario + digest)
//     instead of a bare shrunk reproducer.
//
//   - Live exposition (Server, Flags): an optional -http :PORT endpoint
//     serving Prometheus-text /metrics (campaign progress, worker occupancy,
//     verdict-cache hit ratio, trial-latency quantiles, heap/GC stats),
//     /healthz, /statusz (the same Progress snapshot as JSON), and
//     net/http/pprof — so a 10⁸-scenario sweep can be watched and profiled
//     without stopping it.
//
//   - Run ledger (Run, Manifest): every campaign CLI writes a versioned
//     run.json manifest (argv, flags, seeds, go version, VCS revision,
//     start/end time, result digest, headline counters, artifact paths)
//     into a runs/ directory, giving benchmark trajectories and
//     differential-digest claims durable provenance.
//
// The package deliberately has no dependency on the engine or the policies:
// it consumes telemetry.Event values and plain counters, so any layer can
// feed it without import cycles. Everything here is wall-clock-side and
// never participates in simulation determinism: all output goes to files,
// stderr, or HTTP responses, never to a CLI's report stream.
package obs
