//go:build race

package obs_test

// raceEnabled: see race_off_test.go.
const raceEnabled = true
