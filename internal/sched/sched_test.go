package sched_test

import (
	"testing"

	"timedice/internal/engine"
	"timedice/internal/model"
	"timedice/internal/partition"
	"timedice/internal/rng"
	"timedice/internal/sched"
	"timedice/internal/vtime"
)

func buildParts(t *testing.T) []*partition.Partition {
	t.Helper()
	spec := model.SystemSpec{
		Name: "s",
		Partitions: []model.PartitionSpec{
			{Name: "A", Budget: vtime.MS(2), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(2)}}},
			{Name: "B", Budget: vtime.MS(6), Period: vtime.MS(20),
				Tasks: []model.TaskSpec{{Name: "b", Period: vtime.MS(20), WCET: vtime.MS(6)}}},
		},
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return built.Partitions
}

func TestFixedPriorityBasics(t *testing.T) {
	fp := sched.FixedPriority{}
	if fp.Name() != "NoRandom" || fp.Quantum() != 0 {
		t.Error("FixedPriority identity")
	}
}

func TestTDMASlotTable(t *testing.T) {
	parts := buildParts(t)
	td, err := sched.NewTDMA(parts)
	if err != nil {
		t.Fatal(err)
	}
	// Frame = gcd(10,20) = 10ms; slots: A gets 2·10/10 = 2ms, B 6·10/20 = 3ms.
	if td.Frame() != vtime.MS(10) {
		t.Errorf("frame %v", td.Frame())
	}
	if td.Name() != "TDMA" || td.Quantum() != 0 {
		t.Error("TDMA identity")
	}
}

func TestTDMANextBoundary(t *testing.T) {
	parts := buildParts(t)
	td, err := sched.NewTDMA(parts)
	if err != nil {
		t.Fatal(err)
	}
	// Slot edges at 0, 2, 5 within a 10ms frame.
	cases := []struct{ now, want int64 }{
		{0, 2000},
		{1999, 2000},
		{2000, 5000},
		{4999, 5000},
		{5000, 10000},
		{9999, 10000},
		{10000, 12000},
	}
	for _, c := range cases {
		if got := td.NextBoundary(vtime.Time(c.now)); got != vtime.Time(c.want) {
			t.Errorf("NextBoundary(%d) = %v, want %dus", c.now, got, c.want)
		}
	}
}

func TestTDMARejectsOverfullFrame(t *testing.T) {
	spec := model.SystemSpec{
		Name: "full",
		Partitions: []model.PartitionSpec{
			{Name: "A", Budget: vtime.MS(8), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(1)}}},
			{Name: "B", Budget: vtime.MS(8), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "b", Period: vtime.MS(10), WCET: vtime.MS(1)}}},
		},
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.NewTDMA(built.Partitions); err == nil {
		t.Error("over-utilized slot table accepted")
	}
}

func TestTDMARejectsEmpty(t *testing.T) {
	if _, err := sched.NewTDMA(nil); err == nil {
		t.Error("empty partition list accepted")
	}
}

func TestNaiveRandomBasics(t *testing.T) {
	n := &sched.NaiveRandom{}
	if n.Name() != "NaiveRandom" || n.Quantum() != vtime.MS(1) {
		t.Error("NaiveRandom identity")
	}
	n2 := &sched.NaiveRandom{Slice: vtime.MS(2)}
	if n2.Quantum() != vtime.MS(2) {
		t.Error("custom slice ignored")
	}
}

func TestNaiveRandomPicksOnlyRunnable(t *testing.T) {
	parts := buildParts(t)
	sys, err := engine.New(parts, &sched.NaiveRandom{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Drive the simulation; the engine's defensive accounting plus budget
	// checks in the server would panic/detect an invalid pick.
	sys.Run(vtime.Time(vtime.MS(500)))
	if sys.Counters.Decisions == 0 {
		t.Fatal("no decisions")
	}
	// With a 1 ms quantum plus events, the decision rate is >= 1000/s.
	if sys.Counters.Decisions < 450 {
		t.Errorf("decisions = %d over 0.5s", sys.Counters.Decisions)
	}
}

func TestNaiveRandomIdleBias(t *testing.T) {
	parts := buildParts(t)
	sys, err := engine.New(parts, &sched.NaiveRandom{IdleBias: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(vtime.Time(vtime.MS(200)))
	if sys.Counters.BusyTime != 0 {
		t.Errorf("IdleBias=1 should never run anything, busy=%v", sys.Counters.BusyTime)
	}
}

func TestTDMARejectsZeroSlot(t *testing.T) {
	// A partition whose budget rounds to a zero-length slot must be rejected
	// rather than silently starved.
	spec := model.SystemSpec{
		Name: "tiny",
		Partitions: []model.PartitionSpec{
			{Name: "A", Budget: vtime.US(3), Period: vtime.MS(100),
				Tasks: []model.TaskSpec{{Name: "a", Period: vtime.MS(100), WCET: vtime.US(1)}}},
			{Name: "B", Budget: vtime.MS(1), Period: vtime.MS(7),
				Tasks: []model.TaskSpec{{Name: "b", Period: vtime.MS(7), WCET: vtime.MS(1)}}},
		},
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.NewTDMA(built.Partitions); err == nil {
		t.Error("zero-length slot accepted")
	}
}

func TestTDMAIdleWhenOwnerNotRunnable(t *testing.T) {
	// Partition A's task arrives only at 6ms: during its slot [0,2) the CPU
	// must idle (no slack donation, by design).
	spec := model.SystemSpec{
		Name: "idle-slot",
		Partitions: []model.PartitionSpec{
			{Name: "A", Budget: vtime.MS(2), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "a", Period: vtime.MS(10), WCET: vtime.MS(1), Offset: vtime.MS(6)}}},
			{Name: "B", Budget: vtime.MS(3), Period: vtime.MS(10),
				Tasks: []model.TaskSpec{{Name: "b", Period: vtime.MS(10), WCET: vtime.MS(3)}}},
		},
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := sched.NewTDMA(built.Partitions)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := engine.New(built.Partitions, pol, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.TraceFn = func(s engine.Segment) {
		if s.Partition == 1 {
			off := vtime.Duration(int64(s.Start) % int64(vtime.MS(10)))
			if off < vtime.MS(2) {
				t.Fatalf("B ran during A's idle slot: %+v", s)
			}
		}
	}
	sys.Run(vtime.Time(vtime.MS(100)))
	// A's task (offset 6, slot [0,2)) can only run in later frames' slots;
	// it must still make progress by running inside A's slots.
	if sys.PartitionTime(0) == 0 {
		t.Error("A never ran")
	}
}

func TestNaiveRandomIdleBiasPartial(t *testing.T) {
	parts := buildParts(t)
	sys, err := engine.New(parts, &sched.NaiveRandom{IdleBias: 0.5}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(vtime.Time(vtime.MS(500)))
	if sys.Counters.BusyTime == 0 {
		t.Error("IdleBias=0.5 should still run work")
	}
	if sys.Counters.IdleTime == 0 {
		t.Error("IdleBias=0.5 should also idle")
	}
}
