// Package sched provides the non-randomized global scheduling policies the
// paper compares against: the default fixed-priority scheduler of LITMUS^RT
// (NoRandom) and a static time-division (TDMA / ARINC-653-style) reference
// that removes the covert channel entirely at the cost of utilization and
// responsiveness (§III-h).
package sched

import (
	"fmt"

	"timedice/internal/engine"
	"timedice/internal/partition"
	"timedice/internal/vtime"
)

// FixedPriority is the paper's NoRandom baseline: at every decision point it
// selects the highest-priority partition that is active and has ready work,
// and lets it run until the next natural event.
type FixedPriority struct{}

var (
	_ engine.GlobalPolicy = FixedPriority{}
	_ engine.PolicyForker = FixedPriority{}
)

// ForkPolicy implements engine.PolicyForker; fixed priority is stateless.
func (FixedPriority) ForkPolicy() engine.GlobalPolicy { return FixedPriority{} }

// Name implements engine.GlobalPolicy.
func (FixedPriority) Name() string { return "NoRandom" }

// Quantum implements engine.GlobalPolicy; fixed priority is purely
// event-driven.
func (FixedPriority) Quantum() vtime.Duration { return 0 }

// Pick implements engine.GlobalPolicy. The highest-priority runnable
// partition is the pick; FirstRunnable probes the engine's hierarchical
// ready bitset (the same bitset.ForEachSet walk the inversion scan uses), so
// the NoRandom decision costs O(occupied groups) and never materializes the
// runnable slice.
func (FixedPriority) Pick(sys *engine.System, _ vtime.Time) *partition.Partition {
	if i := sys.FirstRunnable(); i >= 0 {
		return sys.Partitions[i]
	}
	return nil
}

// NaiveRandom is the strawman the paper's §IV warns about: it randomizes the
// partition schedule with the same 1 ms quantum as TimeDice but picks
// uniformly among ALL runnable partitions (plus idling) with no
// schedulability test at all. Under load, it starves high-priority
// partitions of their budgets — "unprincipled randomization may lead
// partitions to miss deadlines" — which the ablation experiment quantifies
// as per-period budget shortfalls that TimeDice never exhibits.
type NaiveRandom struct {
	// Quantum defaults to 1 ms when zero.
	Slice vtime.Duration
	// IdleBias is the probability of idling when at least one partition is
	// runnable (default: idle is one extra uniform option).
	IdleBias float64

	lastCandidates int64
}

var (
	_ engine.GlobalPolicy     = (*NaiveRandom)(nil)
	_ engine.DecisionDetailer = (*NaiveRandom)(nil)
	_ engine.PolicyForker     = (*NaiveRandom)(nil)
)

// ForkPolicy implements engine.PolicyForker. NaiveRandom draws from the
// engine's system stream, so the copy carries only configuration.
func (n *NaiveRandom) ForkPolicy() engine.GlobalPolicy {
	c := NaiveRandom{Slice: n.Slice, IdleBias: n.IdleBias}
	return &c
}

// Name implements engine.GlobalPolicy.
func (n *NaiveRandom) Name() string { return "NaiveRandom" }

// Quantum implements engine.GlobalPolicy.
func (n *NaiveRandom) Quantum() vtime.Duration {
	if n.Slice > 0 {
		return n.Slice
	}
	return vtime.Millisecond
}

// DecisionDetail implements engine.DecisionDetailer: every runnable
// partition is a candidate (no schedulability tests at all — the point of
// the strawman).
func (n *NaiveRandom) DecisionDetail() (candidates, tests int64) {
	return n.lastCandidates, 0
}

// Pick implements engine.GlobalPolicy.
func (n *NaiveRandom) Pick(sys *engine.System, _ vtime.Time) *partition.Partition {
	runnable := sys.Runnable()
	n.lastCandidates = int64(len(runnable))
	if len(runnable) == 0 {
		return nil
	}
	if n.IdleBias > 0 {
		if sys.Rand.Bool(n.IdleBias) {
			return nil
		}
		return runnable[sys.Rand.Intn(len(runnable))]
	}
	k := sys.Rand.Intn(len(runnable) + 1)
	if k == len(runnable) {
		return nil
	}
	return runnable[k]
}

// TDMA is a static-partitioning reference scheduler: a repeating major frame
// divided into one slot per partition. A partition may execute only inside
// its own slot, so no partition can observe another's time consumption —
// the table-driven scheduling of the ARINC 653 IMA architecture the paper
// cites as the (low-utilization) way to remove the channel.
type TDMA struct {
	frame vtime.Duration
	// starts[i] / ends[i] delimit partition i's slot within the frame, in
	// system priority order.
	starts, ends []vtime.Duration

	lastCandidates int64
}

var (
	_ engine.GlobalPolicy     = (*TDMA)(nil)
	_ engine.BoundaryPolicy   = (*TDMA)(nil)
	_ engine.DecisionDetailer = (*TDMA)(nil)
	_ engine.PolicyForker     = (*TDMA)(nil)
)

// ForkPolicy implements engine.PolicyForker. The slot table (starts/ends) is
// immutable after NewTDMA, so sharing the slices with the copy is safe.
func (t *TDMA) ForkPolicy() engine.GlobalPolicy {
	c := TDMA{frame: t.frame, starts: t.starts, ends: t.ends}
	return &c
}

// DecisionDetail implements engine.DecisionDetailer: the slot table leaves
// at most one candidate (the slot owner, when runnable).
func (t *TDMA) DecisionDetail() (candidates, tests int64) {
	return t.lastCandidates, 0
}

// NewTDMA builds a slot table for the given partitions (in priority order).
// The frame is the GCD of the partition periods and each partition receives a
// slot of length B_i·frame/T_i, which guarantees it B_i of CPU time per T_i.
func NewTDMA(parts []*partition.Partition) (*TDMA, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("tdma: no partitions")
	}
	frame := parts[0].Server.Period()
	for _, p := range parts[1:] {
		frame = gcd(frame, p.Server.Period())
	}
	t := &TDMA{frame: frame}
	var cursor vtime.Duration
	for _, p := range parts {
		slot := p.Server.Budget().Scale(int64(frame), int64(p.Server.Period()))
		if slot <= 0 {
			return nil, fmt.Errorf("tdma: partition %q slot rounds to zero (budget %v, period %v, frame %v)",
				p.Name, p.Server.Budget(), p.Server.Period(), frame)
		}
		t.starts = append(t.starts, cursor)
		cursor += slot
		t.ends = append(t.ends, cursor)
	}
	if cursor > frame {
		return nil, fmt.Errorf("tdma: slots (%v) exceed frame (%v); utilization too high for static partitioning", cursor, frame)
	}
	return t, nil
}

func gcd(a, b vtime.Duration) vtime.Duration {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Frame returns the major-frame length.
func (t *TDMA) Frame() vtime.Duration { return t.frame }

// Name implements engine.GlobalPolicy.
func (t *TDMA) Name() string { return "TDMA" }

// Quantum implements engine.GlobalPolicy.
func (t *TDMA) Quantum() vtime.Duration { return 0 }

// Pick implements engine.GlobalPolicy: the slot owner runs if it can;
// otherwise the CPU idles (slack is never donated, by design — donation would
// reopen the channel).
func (t *TDMA) Pick(sys *engine.System, now vtime.Time) *partition.Partition {
	off := vtime.Duration(int64(now) % int64(t.frame))
	t.lastCandidates = 0
	for i := range t.starts {
		if off >= t.starts[i] && off < t.ends[i] {
			p := sys.Partitions[i]
			if p.Runnable() {
				t.lastCandidates = 1
				return p
			}
			return nil
		}
	}
	return nil
}

// NextBoundary implements engine.BoundaryPolicy: the next slot edge.
func (t *TDMA) NextBoundary(now vtime.Time) vtime.Time {
	frameStart := now - vtime.Time(int64(now)%int64(t.frame))
	off := vtime.Duration(now.Sub(frameStart))
	for i := range t.starts {
		if off < t.starts[i] {
			return frameStart.Add(t.starts[i])
		}
		if off < t.ends[i] {
			return frameStart.Add(t.ends[i])
		}
	}
	return frameStart.Add(t.frame)
}
