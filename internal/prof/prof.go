// Package prof wires the conventional -cpuprofile/-memprofile flags into the
// benchmark CLIs (covertbench, overheadbench, simfuzz), so hot-path work can
// be profiled on the real campaign workloads rather than only on the Go
// micro-benchmarks. The output is standard runtime/pprof format:
//
//	covertbench -fig 12 -cpuprofile cpu.out
//	go tool pprof -top cpu.out
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered by AddFlags.
type Flags struct {
	CPU string
	Mem string
}

// AddFlags registers -cpuprofile and -memprofile on fs and returns the
// holder to Start after parsing.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write an allocation profile to this file at exit")
	return f
}

// Start begins CPU profiling when requested. The returned stop function ends
// the CPU profile and writes the allocation profile; the caller must invoke
// it on every exit path that should produce profiles (os.Exit skips defers).
// stop is idempotent, so `defer stop()` composes with an explicit final call
// whose error the caller checks. With neither flag set, Start and stop are
// no-ops.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if f.Mem != "" {
			memFile, err := os.Create(f.Mem)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer memFile.Close()
			runtime.GC() // flush recently freed objects out of the heap profile
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
