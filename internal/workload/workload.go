// Package workload provides the named system configurations used throughout
// the paper's evaluation: the Table I 5-partition benchmark (and its
// light-load, ×2 and ×4 variants), the 4-partition self-driving-car platform
// of Fig. 5, the 3-partition trace example of Fig. 6, and a seeded random
// task-set generator for property tests.
package workload

import (
	"fmt"
	"math"

	"timedice/internal/model"
	"timedice/internal/rng"
	"timedice/internal/server"
	"timedice/internal/vtime"
)

// Table I of the paper: partition replenishment periods 20..60 ms, task
// periods 2T..32T, with B_i = α·T_i and e_{i,j} = β·p_{i,j}.
// Defaults: α = 16% (base load, total partition utilization 80%) and β = 3%.
const (
	DefaultAlpha = 0.16
	DefaultBeta  = 0.03
	// LightAlpha is the paper's "light load" configuration: budgets (and
	// execution times in the covert-channel experiments) cut in half,
	// total utilization 40%.
	LightAlpha = 0.08
)

// tableIPeriodsMS are the partition replenishment periods T_i of Table I.
var tableIPeriodsMS = []int64{20, 30, 40, 50, 60}

// TableI builds the paper's Table I benchmark system: 5 partitions with
// T_i ∈ {20,30,40,50,60} ms, each with 5 tasks of periods {2,4,8,16,32}·T_i,
// budgets B_i = alpha·T_i, and WCETs e_{i,j} = beta·p_{i,j}. Partition and
// task priorities follow Rate Monotonic order as in the paper.
func TableI(alpha, beta float64) model.SystemSpec {
	spec := model.SystemSpec{Name: fmt.Sprintf("tableI(α=%.2f,β=%.2f)", alpha, beta)}
	for i, tms := range tableIPeriodsMS {
		T := vtime.MS(tms)
		p := model.PartitionSpec{
			Name:   fmt.Sprintf("P%d", i+1),
			Period: T,
			Budget: vtime.FromFloatMS(alpha * float64(tms)),
		}
		mult := int64(2)
		for j := 0; j < 5; j++ {
			period := vtime.Duration(mult) * T
			p.Tasks = append(p.Tasks, model.TaskSpec{
				Name:   fmt.Sprintf("t%d,%d", i+1, j+1),
				Period: period,
				WCET:   vtime.FromFloatMS(beta * period.Milliseconds()),
			})
			mult *= 2
		}
		spec.Partitions = append(spec.Partitions, p)
	}
	return spec
}

// TableIBase returns Table I with the default α=16%, β=3%.
func TableIBase() model.SystemSpec { return TableI(DefaultAlpha, DefaultBeta) }

// TableILight returns the light-load variant (α=8%, β=1.5%): "partition
// budgets and task execution times are cut by half" (§III-f).
func TableILight() model.SystemSpec { return TableI(LightAlpha, DefaultBeta/2) }

// Scale duplicates every partition of spec n times (n=2 → |Π|=10, n=4 →
// |Π|=20 for Table I), dividing budgets and task execution times by n so the
// total system utilization is unchanged, exactly as the paper's overhead
// evaluation does (§V-B3). Duplicates get distinct priorities in round-robin
// order of the originals.
func Scale(spec model.SystemSpec, n int) model.SystemSpec {
	if n <= 1 {
		return spec
	}
	out := model.SystemSpec{Name: fmt.Sprintf("%s x%d", spec.Name, n)}
	for copyIdx := 0; copyIdx < n; copyIdx++ {
		for pi, p := range spec.Partitions {
			np := model.PartitionSpec{
				Name:   fmt.Sprintf("%s.%d", p.Name, copyIdx+1),
				Period: p.Period,
				Budget: (p.Budget / vtime.Duration(n)).Max(vtime.Millisecond / 2),
				Server: p.Server,
			}
			for _, t := range p.Tasks {
				np.Tasks = append(np.Tasks, model.TaskSpec{
					Name:   t.Name,
					Period: t.Period,
					WCET:   (t.WCET / vtime.Duration(n)).Max(50 * vtime.Microsecond),
				})
			}
			_ = pi
			out.Partitions = append(out.Partitions, np)
		}
	}
	return out
}

// Car builds the 1/10th-scale self-driving car platform of Fig. 5:
//
//	Π1 behavior control      T=10ms B=1ms
//	Π2 vision-based steering T=20ms B=10ms
//	Π3 path planning         T=30ms B=3ms
//	Π4 data logging          T=50ms B=5ms
//
// Each partition runs one application task; the planner (sender) task uses a
// 50 ms period as in §III-e. The paper does not list task WCETs; ours are
// sized from the Table III response times (sub-millisecond planning work,
// vision work filling most of its generous budget). Because the application
// periods are not multiples of their partition periods, the partitions use
// deferrable servers — like the sporadic-polling server of the paper's
// implementation, they retain budget for arrivals that occur mid-period.
func Car() model.SystemSpec {
	return model.SystemSpec{
		Name: "car",
		Partitions: []model.PartitionSpec{
			{
				Name: "behavior", Period: vtime.MS(10), Budget: vtime.MS(1), Server: server.Deferrable,
				Tasks: []model.TaskSpec{{Name: "control", Period: vtime.MS(20), WCET: vtime.FromFloatMS(0.9), Deadline: vtime.MS(20)}},
			},
			{
				Name: "vision", Period: vtime.MS(20), Budget: vtime.MS(10), Server: server.Deferrable,
				Tasks: []model.TaskSpec{{Name: "steering", Period: vtime.MS(50), WCET: vtime.MS(18), Deadline: vtime.MS(50)}},
			},
			{
				Name: "planner", Period: vtime.MS(30), Budget: vtime.MS(3), Server: server.Deferrable,
				Tasks: []model.TaskSpec{{Name: "plan", Period: vtime.MS(50), WCET: vtime.FromFloatMS(1.5), Deadline: vtime.MS(50)}},
			},
			{
				Name: "logger", Period: vtime.MS(50), Budget: vtime.MS(5), Server: server.Deferrable,
				Tasks: []model.TaskSpec{{Name: "log", Period: vtime.MS(150), WCET: vtime.MS(8)}},
			},
		},
	}
}

// ThreePartition builds the small example used for the Fig. 6 schedule
// traces: three partitions with clearly visible budget windows. Each task
// demands a full budget every other replenishment period, which keeps every
// task analytically schedulable under both NoRandom and TimeDice.
func ThreePartition() model.SystemSpec {
	return model.SystemSpec{
		Name: "three",
		Partitions: []model.PartitionSpec{
			{
				Name: "P1", Period: vtime.MS(10), Budget: vtime.MS(2),
				Tasks: []model.TaskSpec{{Name: "t1", Period: vtime.MS(20), WCET: vtime.MS(2)}},
			},
			{
				Name: "P2", Period: vtime.MS(15), Budget: vtime.MS(4),
				Tasks: []model.TaskSpec{{Name: "t2", Period: vtime.MS(30), WCET: vtime.MS(4)}},
			},
			{
				Name: "P3", Period: vtime.MS(20), Budget: vtime.MS(6),
				Tasks: []model.TaskSpec{{Name: "t3", Period: vtime.MS(40), WCET: vtime.MS(6)}},
			},
		},
	}
}

// RandomOptions parameterizes the random task-set generator.
type RandomOptions struct {
	Partitions  int
	TasksPer    int
	TotalUtil   float64 // Σ B_i/T_i target
	MinPeriodMS int64
	MaxPeriodMS int64
}

// DefaultRandomOptions mirror the scale of the paper's benchmark systems.
func DefaultRandomOptions() RandomOptions {
	return RandomOptions{
		Partitions:  5,
		TasksPer:    3,
		TotalUtil:   0.6,
		MinPeriodMS: 10,
		MaxPeriodMS: 100,
	}
}

// Random generates a seeded random system: partition utilizations are drawn
// by the UUniFast algorithm (Bini & Buttazzo) so they sum to TotalUtil, and
// each partition's local tasks use harmonic-ish periods with WCETs filling a
// fraction of the budget. The result is always partition-schedulable when
// TotalUtil is feasible; callers should verify with analysis when pushing
// high utilizations.
func Random(r *rng.Rand, opts RandomOptions) model.SystemSpec {
	n := opts.Partitions
	utils := uuniFast(r, n, opts.TotalUtil)
	spec := model.SystemSpec{Name: "random"}
	for i := 0; i < n; i++ {
		tms := opts.MinPeriodMS + r.Int63n(opts.MaxPeriodMS-opts.MinPeriodMS+1)
		T := vtime.MS(tms)
		B := vtime.FromFloatMS(utils[i] * float64(tms))
		if B < vtime.FromFloatMS(0.5) {
			B = vtime.FromFloatMS(0.5)
		}
		p := model.PartitionSpec{
			Name:   fmt.Sprintf("R%d", i+1),
			Period: T,
			Budget: B,
		}
		// Local tasks: periods k·T for k in {2,4,8,...}, WCETs sized so the
		// local demand fits within the budget supply.
		mult := int64(2)
		for j := 0; j < opts.TasksPer; j++ {
			period := vtime.Duration(mult) * T
			wcet := (B * vtime.Duration(mult) / vtime.Duration(2*opts.TasksPer)).Max(100 * vtime.Microsecond)
			if wcet > period/4 {
				wcet = period / 4
			}
			p.Tasks = append(p.Tasks, model.TaskSpec{
				Name:   fmt.Sprintf("r%d,%d", i+1, j+1),
				Period: period,
				WCET:   wcet,
			})
			mult *= 2
		}
		spec.Partitions = append(spec.Partitions, p)
	}
	// Sort partitions rate-monotonically (shorter period = higher priority),
	// matching the paper's priority assignment.
	ps := spec.Partitions
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Period < ps[j-1].Period; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	return spec
}

// uuniFast draws n utilizations summing to total, uniformly over the simplex.
func uuniFast(r *rng.Rand, n int, total float64) []float64 {
	out := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(r.Float64(), 1/float64(n-i-1))
		out[i] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}

// Sparse builds an n-partition system with sparse activity: the first three
// partitions run short-period (hot) workloads while the long tail wakes on
// second-scale, mutually staggered periods, so at any instant almost every
// partition is quiescent. The cold tail's per-partition WCET shrinks with n
// (clamped to [20µs, 500µs]) so the aggregate cold demand stays ≈8–20% of the
// CPU regardless of n — the work to do is constant while the partition
// universe grows, which is the worst case for per-step O(P) scans and lets
// the system reach a true allocation-free steady state even at P=16384 (a
// constant WCET would overload the CPU above P≈2900 and grow job queues
// without bound). For n ≤ 256 the clamp leaves the historical 500µs WCET
// unchanged. The scaling benchmarks (BenchmarkEngineStepScale) step this
// system at P ∈ {2, 8, 64, 256, 1024, 4096, 16384}.
// Dense builds an n-partition system with dense activity — the opposite pole
// from Sparse and the heavy-inversion shape that stresses the Algorithm-3
// decision kernel. All partitions share one replenishment period (growing
// with n so per-partition budgets stay ≈1.2 ms at 75% total supply
// utilization) and run one task each whose releases are staggered across the
// period and whose WCET fills half the budget. At steady state a large
// fraction of partitions simultaneously hold queued work and undrained
// budget, so candidate lists are long, nearly every decision walks deep into
// the priority order, and each level-h test charges O(h) interference
// streams — the case where the divisionless incremental fixpoint matters
// most. Demand utilization is 37.5%, so queues drain every period and the
// steady state stays allocation-free. BenchmarkEngineStepDense steps this
// system next to BenchmarkEngineStepScale's Sparse sweep.
func Dense(n int) model.SystemSpec {
	spec := model.SystemSpec{Name: fmt.Sprintf("dense-%d", n)}
	period := vtime.MS(100) * vtime.Duration((n+63)/64)
	budget := period * 3 / (4 * vtime.Duration(n))
	for i := 0; i < n; i++ {
		spec.Partitions = append(spec.Partitions, model.PartitionSpec{
			Name:   fmt.Sprintf("dense%d", i),
			Budget: budget, Period: period,
			Tasks: []model.TaskSpec{{
				Name:   "t",
				Period: period,
				WCET:   budget / 2,
				Offset: period * vtime.Duration(i) / vtime.Duration(n),
			}},
		})
	}
	return spec
}

func Sparse(n int) model.SystemSpec {
	spec := model.SystemSpec{Name: fmt.Sprintf("sparse-%d", n)}
	hot := 3
	if n < hot {
		hot = n
	}
	for i := 0; i < hot; i++ {
		spec.Partitions = append(spec.Partitions, model.PartitionSpec{
			Name:   fmt.Sprintf("hot%d", i),
			Budget: vtime.MS(2), Period: vtime.MS(20),
			Tasks: []model.TaskSpec{{Name: "t", Period: vtime.MS(20), WCET: vtime.MS(1)}},
		})
	}
	// Σ_cold WCET/period ≈ (500µs·256/n)·n / 1.5s is constant in n until the
	// 20µs floor binds (n ≳ 6400), after which it grows only to ~22% at 16384.
	wcet := 500 * vtime.Microsecond * 256 / vtime.Duration(n)
	if wcet > 500*vtime.Microsecond {
		wcet = 500 * vtime.Microsecond
	}
	if wcet < 20*vtime.Microsecond {
		wcet = 20 * vtime.Microsecond
	}
	for i := hot; i < n; i++ {
		// Staggered second-scale periods: cold partitions wake rarely and
		// almost never together.
		period := vtime.Second + vtime.Duration(i%97)*vtime.MS(11)
		spec.Partitions = append(spec.Partitions, model.PartitionSpec{
			Name:   fmt.Sprintf("cold%d", i),
			Budget: vtime.MS(1), Period: period,
			Tasks: []model.TaskSpec{{Name: "t", Period: period, WCET: wcet}},
		})
	}
	return spec
}
