package workload

import (
	"math"
	"testing"

	"timedice/internal/rng"
	"timedice/internal/vtime"
)

func TestTableIBaseShape(t *testing.T) {
	spec := TableIBase()
	if len(spec.Partitions) != 5 {
		t.Fatalf("%d partitions", len(spec.Partitions))
	}
	wantT := []int64{20, 30, 40, 50, 60}
	for i, p := range spec.Partitions {
		if p.Period != vtime.MS(wantT[i]) {
			t.Errorf("P%d period %v, want %dms", i+1, p.Period, wantT[i])
		}
		if p.Budget != vtime.FromFloatMS(0.16*float64(wantT[i])) {
			t.Errorf("P%d budget %v", i+1, p.Budget)
		}
		if len(p.Tasks) != 5 {
			t.Fatalf("P%d has %d tasks", i+1, len(p.Tasks))
		}
		mult := int64(2)
		for j, tk := range p.Tasks {
			if tk.Period != vtime.Duration(mult)*p.Period {
				t.Errorf("task (%d,%d) period %v", i+1, j+1, tk.Period)
			}
			wantE := vtime.FromFloatMS(0.03 * tk.Period.Milliseconds())
			if tk.WCET != wantE {
				t.Errorf("task (%d,%d) wcet %v, want %v", i+1, j+1, tk.WCET, wantE)
			}
			mult *= 2
		}
	}
	if u := spec.Utilization(); math.Abs(u-0.8) > 1e-9 {
		t.Errorf("total utilization %v, want 0.80", u)
	}
}

func TestTableILight(t *testing.T) {
	if u := TableILight().Utilization(); math.Abs(u-0.4) > 1e-9 {
		t.Errorf("light utilization %v, want 0.40", u)
	}
}

func TestScalePreservesUtilization(t *testing.T) {
	base := TableIBase()
	for _, n := range []int{2, 4} {
		scaled := Scale(base, n)
		if len(scaled.Partitions) != 5*n {
			t.Fatalf("x%d: %d partitions", n, len(scaled.Partitions))
		}
		if du := math.Abs(scaled.Utilization() - base.Utilization()); du > 0.02 {
			t.Errorf("x%d: utilization drifted by %v", n, du)
		}
		if err := scaled.Validate(); err != nil {
			t.Errorf("x%d: %v", n, err)
		}
	}
	if got := Scale(base, 1); len(got.Partitions) != 5 {
		t.Error("Scale(1) should be identity")
	}
}

func TestCar(t *testing.T) {
	spec := Car()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.Partitions) != 4 {
		t.Fatalf("%d partitions", len(spec.Partitions))
	}
	// Fig. 5's table.
	wantT := []int64{10, 20, 30, 50}
	wantB := []int64{1, 10, 3, 5}
	for i, p := range spec.Partitions {
		if p.Period != vtime.MS(wantT[i]) || p.Budget != vtime.MS(wantB[i]) {
			t.Errorf("partition %s: (T=%v,B=%v), want (%d,%d)ms", p.Name, p.Period, p.Budget, wantT[i], wantB[i])
		}
	}
}

func TestThreePartition(t *testing.T) {
	spec := ThreePartition()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.Partitions) != 3 {
		t.Fatal("want 3 partitions")
	}
}

func TestDense(t *testing.T) {
	for _, n := range []int{1, 64, 256, 1024} {
		spec := Dense(n)
		if err := spec.Validate(); err != nil {
			t.Fatalf("Dense(%d) invalid: %v", n, err)
		}
		if len(spec.Partitions) != n {
			t.Fatalf("Dense(%d): %d partitions", n, len(spec.Partitions))
		}
		// Supply utilization stays ≈75% regardless of n so the system never
		// overloads (queues drain, steady state is allocation-free).
		if u := spec.Utilization(); math.Abs(u-0.75) > 0.02 {
			t.Errorf("Dense(%d) utilization %v, want ≈0.75", n, u)
		}
		for i, p := range spec.Partitions {
			if len(p.Tasks) != 1 {
				t.Fatalf("Dense(%d) partition %d has %d tasks", n, i, len(p.Tasks))
			}
			if tk := p.Tasks[0]; tk.WCET > p.Budget {
				t.Errorf("Dense(%d) partition %d demand %v exceeds budget %v", n, i, tk.WCET, p.Budget)
			}
		}
	}
}

func TestRandomGenerator(t *testing.T) {
	r := rng.New(77)
	opts := DefaultRandomOptions()
	for i := 0; i < 20; i++ {
		spec := Random(r, opts)
		if err := spec.Validate(); err != nil {
			t.Fatalf("random spec %d invalid: %v", i, err)
		}
		if len(spec.Partitions) != opts.Partitions {
			t.Fatalf("%d partitions", len(spec.Partitions))
		}
		// Rate-monotonic priority order.
		for j := 1; j < len(spec.Partitions); j++ {
			if spec.Partitions[j].Period < spec.Partitions[j-1].Period {
				t.Fatal("partitions not sorted rate-monotonically")
			}
		}
		// Utilization near target (quantization allows small overshoot).
		if u := spec.Utilization(); u > opts.TotalUtil+0.2 {
			t.Errorf("utilization %v far above target %v", u, opts.TotalUtil)
		}
	}
}

func TestUUniFastSumsToTotal(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 50; i++ {
		u := uuniFast(r, 6, 0.75)
		var sum float64
		for _, x := range u {
			if x < 0 {
				t.Fatal("negative utilization")
			}
			sum += x
		}
		if math.Abs(sum-0.75) > 1e-9 {
			t.Fatalf("sum %v, want 0.75", sum)
		}
	}
}
