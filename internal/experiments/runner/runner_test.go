package runner

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestMapOrderedResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(workers, items, func(i, item int) (int, error) {
			if i != item {
				return 0, fmt.Errorf("index %d got item %d", i, item)
			}
			return item * item, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(items) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, r := range got {
			if r != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(8, nil, func(i, item int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map on empty input: %v, %v", got, err)
	}
}

func TestMapFirstError(t *testing.T) {
	items := make([]int, 50)
	errAt := func(bad ...int) map[int]bool {
		m := map[int]bool{}
		for _, b := range bad {
			m[b] = true
		}
		return m
	}
	for _, workers := range []int{1, 4} {
		bad := errAt(7, 31)
		_, err := Map(workers, items, func(i, _ int) (int, error) {
			if bad[i] {
				return 0, fmt.Errorf("trial %d failed", i)
			}
			return 0, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		// Sequential must report the lowest failing index; parallel reports
		// the lowest among those observed, which here includes index 7
		// because every index is attempted before later ones finish or the
		// failure at 31 can cancel it on <= 4 workers... the contract we can
		// assert for both: the reported error is one of the failing trials.
		if got := err.Error(); got != "trial 7 failed" && got != "trial 31 failed" {
			t.Errorf("workers=%d: unexpected error %q", workers, got)
		}
		if workers == 1 && err.Error() != "trial 7 failed" {
			t.Errorf("sequential must surface the first error, got %q", err)
		}
	}
}

func TestMapCancelsAfterError(t *testing.T) {
	items := make([]int, 1000)
	var ran atomic.Int64
	_, err := Map(2, items, func(i, _ int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 100 {
		t.Errorf("ran %d trials after an immediate failure; cancellation not effective", n)
	}
}

func TestDo(t *testing.T) {
	var a, b, c int
	err := Do(4,
		func() error { a = 1; return nil },
		func() error { b = 2; return nil },
		func() error { c = 3; return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 2 || c != 3 {
		t.Errorf("thunk writes not visible: %d %d %d", a, b, c)
	}
	if err := Do(2, func() error { return nil }, func() error { return errors.New("x") }); err == nil {
		t.Error("Do should propagate thunk errors")
	}
}

// TestMapPanicRecovered covers a panicking trial function on both pool
// shapes: the panic must surface as an error naming the trial, remaining work
// must stop being claimed, and the pool must drain without deadlock (the test
// itself hangs if it doesn't). Run under -race this also proves the recovery
// path is properly synchronized.
func TestMapPanicRecovered(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 4} {
		var started atomic.Int64
		_, err := Map(workers, items, func(i, v int) (int, error) {
			started.Add(1)
			if i == 5 {
				panic(fmt.Sprintf("boom at %d", i))
			}
			return v, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic was not reported as an error", workers)
		}
		if want := "trial 5 panicked"; !contains(err.Error(), want) {
			t.Fatalf("workers=%d: error %q does not mention %q", workers, err, want)
		}
		if !contains(err.Error(), "boom at 5") {
			t.Fatalf("workers=%d: error %q lost the panic value", workers, err)
		}
		// Cancellation: with 4 workers at most a handful of trials past the
		// panic may already be in flight; the bulk must never start.
		if n := started.Load(); workers == 4 && n == int64(len(items)) {
			t.Fatalf("workers=%d: all %d trials ran despite the panic", workers, n)
		}
	}
}

// TestDoPanicRecovered pins the same containment for Do.
func TestDoPanicRecovered(t *testing.T) {
	err := Do(2,
		func() error { return nil },
		func() error { panic("thunk panic") },
	)
	if err == nil || !contains(err.Error(), "thunk panic") {
		t.Fatalf("Do did not surface the panic: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

// poolState is a MapPooled worker state that records which trials it served,
// proving state reuse within a worker and isolation between workers.
type poolState struct {
	id     int64
	served int
}

func TestMapPooledReusesPerWorkerState(t *testing.T) {
	items := make([]int, 60)
	for i := range items {
		items[i] = i
	}
	var states atomic.Int64
	newState := func() (*poolState, error) {
		return &poolState{id: states.Add(1)}, nil
	}
	for _, workers := range []int{1, 4} {
		states.Store(0)
		out, err := MapPooled(workers, newState, items, func(st *poolState, i int, item int) (int, error) {
			st.served++
			return item * item, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range out {
			if r != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
		if built := int(states.Load()); built > workers || built == 0 {
			t.Errorf("workers=%d: built %d states", workers, built)
		}
	}
}

func TestMapPooledStateError(t *testing.T) {
	boom := errors.New("no state")
	_, err := MapPooled(3, func() (int, error) { return 0, boom }, []int{1, 2, 3},
		func(st, i, item int) (int, error) { return item, nil })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

func TestMapPooledTrialErrorAndPanic(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	newState := func() (int, error) { return 0, nil }
	wantErr := errors.New("trial failed")
	_, err := MapPooled(2, newState, items, func(st, i, item int) (int, error) {
		if item == 3 {
			return 0, wantErr
		}
		return item, nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
	_, err = MapPooled(2, newState, items, func(st, i, item int) (int, error) {
		if item == 2 {
			panic("kaboom")
		}
		return item, nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("panic not contained: %v", err)
	}
}

// reduceAcc is a simple order-insensitive accumulator for the ReducePooled
// tests: an integer sum plus a count.
type reduceAcc struct {
	sum, n int64
}

func TestReducePooledSumAcrossWorkerCounts(t *testing.T) {
	items := make([]int, 500)
	var want int64
	for i := range items {
		items[i] = i + 1
		want += int64(i + 1)
	}
	for _, workers := range []int{1, 2, 7, 16} {
		acc, err := ReducePooled(workers,
			func() (struct{}, error) { return struct{}{}, nil },
			func() *reduceAcc { return &reduceAcc{} },
			items,
			func(_ struct{}, acc *reduceAcc, _ int, item int) error {
				acc.sum += int64(item)
				acc.n++
				return nil
			},
			func(dst, src *reduceAcc) { dst.sum += src.sum; dst.n += src.n })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if acc.sum != want || acc.n != int64(len(items)) {
			t.Errorf("workers=%d: sum=%d n=%d, want %d/%d", workers, acc.sum, acc.n, want, len(items))
		}
	}
}

func TestReducePooledReusesPerWorkerState(t *testing.T) {
	var built atomic.Int64
	items := make([]int, 64)
	acc, err := ReducePooled(4,
		func() (*int64, error) { built.Add(1); c := int64(0); return &c, nil },
		func() *reduceAcc { return &reduceAcc{} },
		items,
		func(st *int64, acc *reduceAcc, _ int, _ int) error {
			*st++ // per-worker trial count: no locking needed
			acc.n++
			return nil
		},
		func(dst, src *reduceAcc) { dst.n += src.n })
	if err != nil {
		t.Fatal(err)
	}
	if acc.n != 64 {
		t.Errorf("folded %d trials, want 64", acc.n)
	}
	if b := built.Load(); b > 4 {
		t.Errorf("built %d states, want <= 4", b)
	}
}

func TestReducePooledFirstErrorAndPanic(t *testing.T) {
	items := make([]int, 100)
	boom := errors.New("boom")
	_, err := ReducePooled(8,
		func() (struct{}, error) { return struct{}{}, nil },
		func() *reduceAcc { return &reduceAcc{} },
		items,
		func(_ struct{}, _ *reduceAcc, i int, _ int) error {
			if i == 42 {
				return boom
			}
			return nil
		},
		func(dst, src *reduceAcc) {})
	if !errors.Is(err, boom) {
		t.Errorf("error = %v, want boom", err)
	}
	_, err = ReducePooled(8,
		func() (struct{}, error) { return struct{}{}, nil },
		func() *reduceAcc { return &reduceAcc{} },
		items,
		func(_ struct{}, _ *reduceAcc, i int, _ int) error {
			if i == 77 {
				panic("kaboom")
			}
			return nil
		},
		func(dst, src *reduceAcc) {})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panic not contained: %v", err)
	}
	_, err = ReducePooled(4,
		func() (struct{}, error) { return struct{}{}, errors.New("no state") },
		func() *reduceAcc { return &reduceAcc{} },
		items,
		func(_ struct{}, _ *reduceAcc, _ int, _ int) error { return nil },
		func(dst, src *reduceAcc) {})
	if err == nil || !strings.Contains(err.Error(), "no state") {
		t.Errorf("state error not surfaced: %v", err)
	}
}

// TestMonitorCounters pins the occupancy monitor's deltas across one Map and
// one failing MapPooled batch: Started/Done advance by the trial count,
// Failed by the error count, and nothing stays in flight afterwards. The
// counters are process-wide, so the test asserts deltas, not absolutes.
func TestMonitorCounters(t *testing.T) {
	before := MonitorState()
	items := make([]int, 40)
	if _, err := Map(4, items, func(i, _ int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	_, err := MapPooled(4,
		func() (struct{}, error) { return struct{}{}, nil },
		items,
		func(_ struct{}, i, _ int) (int, error) {
			if i == 7 {
				return 0, errors.New("boom")
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("failing batch returned no error")
	}
	after := MonitorState()
	// The failing batch cancels remaining trials after the first error, so
	// the exact count is scheduling-dependent; the bounds are firm.
	started := after.Started - before.Started
	done := after.Done - before.Done
	if started < 41 || started > 80 {
		t.Fatalf("started delta = %d, want 41..80 (40 Map trials + 1..40 pooled)", started)
	}
	if done != started {
		t.Fatalf("done delta %d != started delta %d: trials leaked", done, started)
	}
	if failed := after.Failed - before.Failed; failed < 1 {
		t.Fatalf("failed delta = %d, want >= 1", failed)
	}
	if after.InFlight != before.InFlight {
		t.Fatalf("inflight delta = %d, want 0 at rest", after.InFlight-before.InFlight)
	}
	if after.Workers != before.Workers {
		t.Fatalf("workers delta = %d, want 0 at rest", after.Workers-before.Workers)
	}
}
