// Package runner fans independent experiment trials across a bounded pool of
// worker goroutines. Every trial in this repository is a self-contained
// deterministic simulation keyed by its own configuration and seed (the
// engine's determinism contract: same config + seed ⇒ identical schedule), so
// trials may execute in any order on any number of workers and still produce
// the exact results of a sequential run — the pool only changes wall-clock
// time, never output. The experiments harnesses rely on this: they build a
// flat trial list, Map it, and render the results in input order.
//
// Error handling is first-error-wins with cancellation: once any trial fails,
// no new trials are started, in-flight trials finish, and the error reported
// is the one with the smallest input index among those observed — the same
// error a sequential run would surface whenever the failing trial is the
// first to fail deterministically. A panicking trial is contained the same
// way: the panic is recovered into an error (with the trial index and stack),
// remaining work is cancelled, and the pool drains normally instead of
// crashing the process from a worker goroutine.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism setting to an effective worker count:
// n >= 1 means exactly n workers (1 = sequential), and n <= 0 means one
// worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Pool occupancy monitor: process-wide atomic tallies of what the pools are
// doing right now, kept unconditionally (a handful of atomic adds around a
// whole simulation trial is noise). The /metrics exposition of the campaign
// CLIs reads these to report live worker occupancy without any plumbing
// through the harnesses.
var (
	monStarted  atomic.Int64 // trials claimed
	monDone     atomic.Int64 // trials finished, success or failure
	monFailed   atomic.Int64 // trials that returned an error (incl. panics)
	monInFlight atomic.Int64 // trials executing at this instant
	monWorkers  atomic.Int64 // pool worker goroutines alive (excl. sequential fast path)
)

// MonitorSnapshot is one read of the pool occupancy counters.
type MonitorSnapshot struct {
	Started  int64 // trials claimed since process start
	Done     int64 // trials finished (success or failure)
	Failed   int64 // trials that errored or panicked
	InFlight int64 // trials executing right now
	Workers  int64 // pool worker goroutines currently alive
}

// MonitorState reads the process-wide pool occupancy. Counters are sampled
// individually, so a snapshot taken mid-claim may be off by one — it is a
// live gauge, not an accounting source.
func MonitorState() MonitorSnapshot {
	return MonitorSnapshot{
		Started:  monStarted.Load(),
		Done:     monDone.Load(),
		Failed:   monFailed.Load(),
		InFlight: monInFlight.Load(),
		Workers:  monWorkers.Load(),
	}
}

// trialBegin/trialEnd bracket one trial for the occupancy monitor.
func trialBegin() {
	monStarted.Add(1)
	monInFlight.Add(1)
}

func trialEnd(err error) {
	monInFlight.Add(-1)
	monDone.Add(1)
	if err != nil {
		monFailed.Add(1)
	}
}

// Map runs fn(i, items[i]) for every item and returns the results in input
// order. workers follows the Workers convention (<= 0 ⇒ GOMAXPROCS); with one
// worker the items run sequentially on the calling goroutine with no
// goroutine or channel overhead. fn must be safe to call concurrently with
// itself for distinct indices. A panic in fn is recovered and reported as
// that trial's error rather than crashing the pool.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	w := Workers(workers)
	if w > len(items) {
		w = len(items)
	}
	if w <= 1 {
		for i, item := range items {
			r, err := safeCall(fn, i, item)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	var (
		next   atomic.Int64 // next unclaimed input index
		failed atomic.Bool  // set once any trial errors: stop claiming work
		wg     sync.WaitGroup

		mu       sync.Mutex
		firstErr error
		errIdx   = -1
	)
	for range w {
		wg.Add(1)
		monWorkers.Add(1)
		go func() {
			defer wg.Done()
			defer monWorkers.Add(-1)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || failed.Load() {
					return
				}
				r, err := safeCall(fn, i, items[i])
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// MapPooled is Map for trials that amortize expensive per-worker state: each
// worker calls newState once when it starts and threads that state through
// every trial it claims. The canonical state is a reusable simulation harness
// (built system + buffers) that each trial resets and reruns instead of
// reconstructing. fn must leave the state ready for the next trial; states
// are never shared between workers, so fn needs no locking around them. The
// pool semantics match Map exactly: results in input order, first-error-wins
// with index tie-breaking, panics contained (in newState too), sequential
// fast path for one worker.
func MapPooled[S, T, R any](workers int, newState func() (S, error), items []T, fn func(st S, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	w := Workers(workers)
	if w > len(items) {
		w = len(items)
	}
	if w <= 1 {
		st, err := safeNew(newState)
		if err != nil {
			return nil, err
		}
		for i, item := range items {
			r, err := safeCallPooled(fn, st, i, item)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		firstErr error
		errIdx   = -1
	)
	fail := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	for range w {
		wg.Add(1)
		monWorkers.Add(1)
		go func() {
			defer wg.Done()
			defer monWorkers.Add(-1)
			st, err := safeNew(newState)
			if err != nil {
				// Attribute state-construction failure to the next unclaimed
				// index so a deterministic first trial still wins ties.
				fail(int(next.Load()), err)
				return
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || failed.Load() {
					return
				}
				r, err := safeCallPooled(fn, st, i, items[i])
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ReducePooled is MapPooled for campaigns whose per-trial results should be
// folded as they are produced instead of collected: each worker owns an
// accumulator (created by newAcc) alongside its reusable state, fn folds
// every trial it claims directly into that accumulator, and when the pool
// drains the per-worker accumulators are merged in worker-slot order into
// the first one, which is returned. Memory is O(workers · |accumulator|)
// instead of O(len(items) · |result|) — the shape streaming campaign
// statistics need.
//
// Which trials land in which accumulator depends on runtime claim order, so
// deterministic totals require merge (and fn's folding) to be insensitive
// to grouping and order — true of counters, stats.Summary merges up to
// floating-point rounding, and exactly true of stats.Sketch. On any error
// the first (by index) is returned and the partial accumulators are
// discarded. A single worker folds sequentially in input order on the
// calling goroutine.
func ReducePooled[S, T, A any](workers int, newState func() (S, error), newAcc func() A, items []T, fn func(st S, acc A, i int, item T) error, merge func(dst, src A)) (A, error) {
	var zero A
	w := Workers(workers)
	if w > len(items) {
		w = len(items)
	}
	if w <= 1 {
		st, err := safeNew(newState)
		if err != nil {
			return zero, err
		}
		acc := newAcc()
		for i, item := range items {
			if err := safeFold(fn, st, acc, i, item); err != nil {
				return zero, err
			}
		}
		return acc, nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		firstErr error
		errIdx   = -1
	)
	fail := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	accs := make([]A, w)
	for slot := range w {
		accs[slot] = newAcc()
		wg.Add(1)
		monWorkers.Add(1)
		go func() {
			defer wg.Done()
			defer monWorkers.Add(-1)
			st, err := safeNew(newState)
			if err != nil {
				fail(int(next.Load()), err)
				return
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || failed.Load() {
					return
				}
				if err := safeFold(fn, st, accs[slot], i, items[i]); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return zero, firstErr
	}
	for slot := 1; slot < w; slot++ {
		merge(accs[0], accs[slot])
	}
	return accs[0], nil
}

// safeFold invokes one folding trial with the same panic containment as
// safeCallPooled.
func safeFold[S, T, A any](fn func(S, A, int, T) error, st S, acc A, i int, item T) (err error) {
	trialBegin()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runner: trial %d panicked: %v\n%s", i, p, debug.Stack())
		}
		trialEnd(err)
	}()
	return fn(st, acc, i, item)
}

// safeNew builds one worker's state, containing panics like safeCall does.
func safeNew[S any](newState func() (S, error)) (st S, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runner: worker state construction panicked: %v\n%s", p, debug.Stack())
		}
	}()
	return newState()
}

// safeCallPooled is safeCall for stateful trials.
func safeCallPooled[S, T, R any](fn func(S, int, T) (R, error), st S, i int, item T) (r R, err error) {
	trialBegin()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runner: trial %d panicked: %v\n%s", i, p, debug.Stack())
		}
		trialEnd(err)
	}()
	return fn(st, i, item)
}

// safeCall invokes one trial, converting a panic into that trial's error so
// the first-error-wins machinery cancels and drains the pool instead of the
// process dying inside a worker goroutine.
func safeCall[T, R any](fn func(int, T) (R, error), i int, item T) (r R, err error) {
	trialBegin()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runner: trial %d panicked: %v\n%s", i, p, debug.Stack())
		}
		trialEnd(err)
	}()
	return fn(i, item)
}

// Do runs heterogeneous thunks under the same pool semantics as Map. It is
// the shape for harnesses whose trials differ in type: each thunk writes its
// own result into variables it captures; Do's return establishes the
// happens-before edge that makes those writes visible to the caller.
func Do(workers int, fns ...func() error) error {
	_, err := Map(workers, fns, func(_ int, fn func() error) (struct{}, error) {
		return struct{}{}, fn()
	})
	return err
}
