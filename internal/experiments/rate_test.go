package experiments

import (
	"io"
	"testing"

	"timedice/internal/policies"
	"timedice/internal/vtime"
)

func TestRateSweepShape(t *testing.T) {
	res, err := Rate(Scale{ProfileWindows: 200, TestWindows: 400, Seed: 1}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, k := range []int64{2, 3, 6, 12} {
		window := vtime.Duration(k) * vtime.MS(50)
		nr, ok1 := res.Point(policies.NoRandom, window)
		td, ok2 := res.Point(policies.TimeDiceW, window)
		if !ok1 || !ok2 {
			t.Fatalf("missing points for window %v", window)
		}
		// §V-B1: NoRandom carries roughly 0.8f-0.9f bits/s, TimeDice
		// 0.1f-0.2f. Allow wide tolerances; the ordering and rough bands are
		// the claim.
		f := 1 / window.Seconds()
		if nr.BitsPerS < 0.5*f {
			t.Errorf("window %v: NoRandom rate %.2f b/s below 0.5f (f=%.2f)", window, nr.BitsPerS, f)
		}
		if td.BitsPerS > 0.45*f {
			t.Errorf("window %v: TimeDice rate %.2f b/s above 0.45f (f=%.2f)", window, td.BitsPerS, f)
		}
		if td.Capacity > nr.Capacity {
			t.Errorf("window %v: TimeDice capacity above NoRandom", window)
		}
	}
	// Faster signaling (shorter window) yields a higher absolute bit rate
	// under NoRandom.
	fast, _ := res.Point(policies.NoRandom, vtime.MS(100))
	slow, _ := res.Point(policies.NoRandom, vtime.MS(600))
	if fast.BitsPerS <= slow.BitsPerS {
		t.Errorf("rate should grow with signaling frequency: %.2f vs %.2f", fast.BitsPerS, slow.BitsPerS)
	}
}
