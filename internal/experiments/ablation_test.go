package experiments

import (
	"io"
	"testing"
)

func TestAblationShapes(t *testing.T) {
	sc := Scale{ProfileWindows: 150, TestWindows: 300, SimSeconds: 5, Seed: 1}
	res, err := Ablation(sc, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	// Quantum sweep: decision rate decreases monotonically with quantum size
	// (fewer randomization points per second).
	if len(res.Quantum) != 4 {
		t.Fatalf("quantum points = %d", len(res.Quantum))
	}
	for i := 1; i < len(res.Quantum); i++ {
		if res.Quantum[i].DecisionsPerSec >= res.Quantum[i-1].DecisionsPerSec {
			t.Errorf("decisions/s should fall with quantum: %v -> %v at %v",
				res.Quantum[i-1].DecisionsPerSec, res.Quantum[i].DecisionsPerSec, res.Quantum[i].Quantum)
		}
	}

	// Server sweep: all three run; the deferrable server (budget retained
	// for mid-period arrivals) carries the strongest channel in the
	// phase-locked simulation.
	if len(res.Servers) != 3 {
		t.Fatalf("server points = %d", len(res.Servers))
	}
	var polling, deferrable float64
	for _, p := range res.Servers {
		switch p.Server.String() {
		case "polling":
			polling = p.RTAccuracy
		case "deferrable":
			deferrable = p.RTAccuracy
		}
	}
	if deferrable <= polling {
		t.Errorf("deferrable channel accuracy %.3f should exceed polling %.3f", deferrable, polling)
	}

	// Selection sweep: four cells, every TimeDice variant far below the
	// NoRandom baselines established elsewhere.
	if len(res.Selection) != 4 {
		t.Fatalf("selection points = %d", len(res.Selection))
	}
	for _, p := range res.Selection {
		if p.RTAccuracy > 0.80 {
			t.Errorf("%v/%v accuracy %.3f — randomization ineffective", p.Policy, p.Load, p.RTAccuracy)
		}
	}

	// Levels sweep: accuracy decreases with alphabet size but stays above
	// guessing.
	if len(res.Levels) != 3 {
		t.Fatalf("level points = %d", len(res.Levels))
	}
	for i, p := range res.Levels {
		if p.Accuracy < p.GuessRate+0.1 {
			t.Errorf("levels=%d accuracy %.3f barely above guess %.3f", p.Levels, p.Accuracy, p.GuessRate)
		}
		if i > 0 && p.Accuracy > res.Levels[i-1].Accuracy+0.05 {
			t.Errorf("accuracy should not grow with alphabet size: %v", res.Levels)
		}
	}

	// Noise sweep: TimeDice stays well below NoRandom at every noise level,
	// and heavy noise weakens the NoRandom channel.
	if len(res.Noise) != 4 {
		t.Fatalf("noise points = %d", len(res.Noise))
	}
	for _, p := range res.Noise {
		if p.TimeDiceWAccuracy > p.NoRandomAccuracy-0.05 {
			t.Errorf("noise %.2f: TDW %.3f vs NR %.3f — mitigation lost", p.Fraction, p.TimeDiceWAccuracy, p.NoRandomAccuracy)
		}
	}
	lowNoise, highNoise := res.Noise[0], res.Noise[len(res.Noise)-1]
	if highNoise.NoRandomCapacity > lowNoise.NoRandomCapacity+0.05 {
		t.Errorf("NoRandom capacity should not grow with noise: %.3f -> %.3f",
			lowNoise.NoRandomCapacity, highNoise.NoRandomCapacity)
	}
}
