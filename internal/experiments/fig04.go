package experiments

import (
	"io"

	"timedice/internal/covert"
	"timedice/internal/experiments/runner"
	"timedice/internal/policies"
	"timedice/internal/stats"
	"timedice/internal/trace"
)

// Fig04Result reproduces Fig. 4 of the paper: the feasibility of the covert
// timing channel under the default (NoRandom) scheduler.
type Fig04Result struct {
	// Hist, Hist0, Hist1 are Pr(R), Pr(R|X=0) and Pr(R|X=1) from the
	// profiling phase (Fig. 4a).
	Hist, Hist0, Hist1 *stats.Histogram
	// Separation is the total-variation distance between the two profiles.
	Separation float64
	// Vectors/Labels are the execution vectors of the profile phase
	// (Fig. 4b); DensityDistance summarizes their distinguishability.
	Vectors         [][]float64
	Labels          []int
	DensityDistance float64
	// Accuracy holds the Fig. 4(c) series: decoding accuracy vs the number
	// of profiling windows, for both loads and both receiver types.
	Accuracy []Fig04AccuracyPoint
}

// Fig04AccuracyPoint is one point of the Fig. 4(c) curves.
type Fig04AccuracyPoint struct {
	Load            Load
	ProfileWindows  int
	RTAccuracy      float64
	VectorAccuracy  float64
	ChannelCapacity float64
}

// Fig04 runs the full feasibility experiment. The accuracy curve sweeps
// profile-phase sizes {1/8, 1/4, 1/2, 1}·sc.ProfileWindows. The headline run
// and the eight accuracy-curve trials are independent simulations and fan
// out across sc.Parallel workers.
func Fig04(sc Scale, w io.Writer) (*Fig04Result, error) {
	sc = sc.withDefaults()
	res := &Fig04Result{}

	// Trial 0 is the (a)+(b) headline run at full profile size; the rest are
	// the Fig. 4(c) accuracy curve over both loads.
	type trial struct {
		load    Load
		profile int
	}
	trials := []trial{{load: BaseLoad, profile: sc.ProfileWindows}}
	for _, load := range []Load{BaseLoad, LightLoad} {
		for _, frac := range []int{8, 4, 2, 1} {
			p := sc.ProfileWindows / frac
			if p < 16 {
				p = 16
			}
			trials = append(trials, trial{load: load, profile: p})
		}
	}
	runs, err := runner.Map(sc.Parallel, trials, func(_ int, tr trial) (*covert.Result, error) {
		cfg := channelConfig(tr.load, policies.NoRandom, sc)
		cfg.ProfileWindows = tr.profile
		return covert.Run(cfg, defaultLearner())
	})
	if err != nil {
		return nil, err
	}

	// (a)+(b): distributions and execution vectors of the headline run.
	run := runs[0]
	res.Hist0, res.Hist1 = run.Hist0, run.Hist1
	res.Hist = stats.NewHistogram(res.Hist0.Lo, res.Hist0.Width, len(res.Hist0.Counts))
	for _, ob := range run.Profile {
		res.Hist.Add(ob.Response.Milliseconds())
		res.Vectors = append(res.Vectors, ob.Vector)
		res.Labels = append(res.Labels, ob.Label)
	}
	res.Separation = covert.Separation(res.Hist0, res.Hist1)
	d0, d1 := trace.HeatmapDensity(res.Vectors, res.Labels)
	res.DensityDistance = trace.DensityDistance(d0, d1)

	fprintf(w, "Fig 4(a): receiver response-time distribution, NoRandom, base load\n")
	fprintf(w, "Pr(R):\n%s", res.Hist.Render(40))
	fprintf(w, "separation TV(Pr(R|X=0), Pr(R|X=1)) = %.3f\n\n", res.Separation)
	fprintf(w, "Fig 4(b): execution-vector heatmap (first 24 windows)\n%s",
		trace.Heatmap(res.Vectors, res.Labels, 24))
	fprintf(w, "column-density distance between X=0 and X=1: %.3f\n\n", res.DensityDistance)

	// (c): accuracy vs profiling windows for both loads.
	fprintf(w, "Fig 4(c): channel accuracy vs #profiling windows (NoRandom)\n")
	fprintf(w, "%-12s %8s %10s %10s %10s\n", "load", "profile", "RT acc", "vec acc", "capacity")
	for i, tr := range trials[1:] {
		r := runs[i+1]
		pt := Fig04AccuracyPoint{
			Load:            tr.load,
			ProfileWindows:  tr.profile,
			RTAccuracy:      r.RTAccuracy,
			VectorAccuracy:  r.VecAccuracy[defaultLearner().Name()],
			ChannelCapacity: r.Capacity,
		}
		res.Accuracy = append(res.Accuracy, pt)
		fprintf(w, "%-12s %8d %9.2f%% %9.2f%% %10.3f\n",
			pt.Load, pt.ProfileWindows, 100*pt.RTAccuracy, 100*pt.VectorAccuracy, pt.ChannelCapacity)
	}
	return res, nil
}
